// Multi-attack campaign equivalences: the saved store must be
// byte-identical across thread counts and across the incremental/full
// engines, and every plane must match the single-attack campaign of its
// type byte for byte — the properties that make one multi-attack sweep a
// drop-in replacement for K separate campaigns.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bgp/attack_model.hpp"
#include "marcopolo/fast_campaign.hpp"
#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;
using testing_support::small_testbed_config;

std::string csv_bytes(const ResultStore& store) {
  std::ostringstream out;
  store.save_csv(out);
  return out.str();
}

FastCampaignConfig all_attacks_config() {
  FastCampaignConfig cfg;
  const auto all = bgp::all_attack_types();
  cfg.attacks.assign(all.begin(), all.end());
  return cfg;
}

TEST(MultiAttackCampaign, StoreHasOnePlanePerRequestedAttackInOrder) {
  const auto store = run_fast_campaign(shared_testbed(), all_attacks_config());
  ASSERT_EQ(store.num_attacks(), bgp::kAttackTypeCount);
  for (std::size_t i = 0; i < store.num_attacks(); ++i) {
    EXPECT_EQ(store.attack_types()[i], bgp::all_attack_types()[i]);
    EXPECT_EQ(store.attack_index(store.attack_types()[i]), i);
  }
}

TEST(MultiAttackCampaign, CoversEveryPairInEveryPlane) {
  const auto store = run_fast_campaign(shared_testbed(), all_attacks_config());
  const auto n = static_cast<SiteIndex>(store.num_sites());
  for (std::size_t ai = 0; ai < store.num_attacks(); ++ai) {
    for (SiteIndex v = 0; v < n; ++v) {
      for (SiteIndex a = 0; a < n; ++a) {
        if (v == a) continue;
        ASSERT_TRUE(store.pair_complete(ai, v, a))
            << bgp::to_cstring(store.attack_types()[ai]) << " pair " << v
            << "," << a;
      }
    }
  }
}

TEST(MultiAttackCampaign, EveryPlaneMatchesItsSingleAttackCampaign) {
  const auto multi = run_fast_campaign(shared_testbed(), all_attacks_config());
  for (std::size_t ai = 0; ai < multi.num_attacks(); ++ai) {
    FastCampaignConfig single;
    single.type = multi.attack_types()[ai];
    const auto alone = run_fast_campaign(shared_testbed(), single);
    EXPECT_EQ(csv_bytes(multi.extract_attack(ai)), csv_bytes(alone))
        << "plane " << bgp::to_cstring(multi.attack_types()[ai]);
  }
}

TEST(MultiAttackCampaign, StoreIsByteIdenticalAcrossThreadCounts) {
  FastCampaignConfig cfg = all_attacks_config();
  cfg.threads = 1;
  const std::string one = csv_bytes(run_fast_campaign(shared_testbed(), cfg));
  for (const std::size_t threads : {std::size_t{4}, std::size_t{64}}) {
    cfg.threads = threads;
    EXPECT_EQ(csv_bytes(run_fast_campaign(shared_testbed(), cfg)), one)
        << threads << " threads";
  }
}

TEST(MultiAttackCampaign, StoreIsByteIdenticalIncrementalVsFull) {
  // The acceptance gate for the route-leak delta replay: with the leak in
  // the attack list, the incremental engine (victim baseline + replay,
  // including the baseline-consulting RouteLeak plan) must reproduce the
  // full engine's store exactly.
  FastCampaignConfig cfg = all_attacks_config();
  cfg.incremental = true;
  const std::string fast = csv_bytes(run_fast_campaign(shared_testbed(), cfg));
  cfg.incremental = false;
  EXPECT_EQ(csv_bytes(run_fast_campaign(shared_testbed(), cfg)), fast);
}

TEST(MultiAttackCampaign, LegacySingleTypeConfigTagsItsPlane) {
  FastCampaignConfig cfg;
  cfg.type = bgp::AttackType::RouteLeak;  // attacks list left empty
  const auto store = run_fast_campaign(shared_testbed(), cfg);
  ASSERT_EQ(store.num_attacks(), 1u);
  EXPECT_EQ(store.attack_types()[0], bgp::AttackType::RouteLeak);
}

TEST(MultiAttackCampaign, OtcDeploymentBitesLeaksButNotOriginHijacks) {
  // Two testbeds differing only in OTC deployment: the equally-specific
  // plane must not change at all (valley-free routes never trip RFC 9234),
  // while the route-leak plane must lose hijacks.
  TestbedConfig plain_cfg = small_testbed_config();
  const Testbed plain(plain_cfg);
  TestbedConfig otc_cfg = small_testbed_config();
  otc_cfg.otc_fraction = 1.0;
  const Testbed otc(otc_cfg);

  FastCampaignConfig run;
  run.attacks = {bgp::AttackType::EquallySpecific, bgp::AttackType::RouteLeak};
  const auto store_plain = run_fast_campaign(plain, run);
  const auto store_otc = run_fast_campaign(otc, run);

  EXPECT_EQ(csv_bytes(store_plain.extract_attack(0)),
            csv_bytes(store_otc.extract_attack(0)))
      << "equally-specific outcomes must be OTC-invariant";

  const auto hijacks = [](const ResultStore& s, std::size_t ai) {
    std::size_t count = 0;
    const auto n = static_cast<SiteIndex>(s.num_sites());
    for (SiteIndex v = 0; v < n; ++v) {
      for (SiteIndex a = 0; a < n; ++a) {
        if (v == a) continue;
        for (PerspectiveIndex p = 0; p < s.num_perspectives(); ++p) {
          if (s.hijacked(ai, v, a, p)) ++count;
        }
      }
    }
    return count;
  };
  const std::size_t leak_plain = hijacks(store_plain, 1);
  const std::size_t leak_otc = hijacks(store_otc, 1);
  EXPECT_GT(leak_plain, 0u) << "leaks must capture something without OTC";
  EXPECT_LT(leak_otc, leak_plain);
}

}  // namespace
}  // namespace marcopolo::core
