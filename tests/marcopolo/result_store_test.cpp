#include "marcopolo/result_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <vector>

namespace marcopolo::core {
namespace {

using bgp::OriginReached;

TEST(ResultStore, RecordAndQuery) {
  ResultStore store(3, 2);
  EXPECT_EQ(store.num_sites(), 3u);
  EXPECT_EQ(store.num_perspectives(), 2u);
  EXPECT_EQ(store.num_pairs(), 9u);

  store.record(0, 1, 0, OriginReached::Adversary);
  store.record(0, 1, 1, OriginReached::Victim);
  EXPECT_TRUE(store.hijacked(0, 1, 0));
  EXPECT_FALSE(store.hijacked(0, 1, 1));
  EXPECT_EQ(store.outcome(0, 1, 0), OriginReached::Adversary);
  EXPECT_EQ(store.outcome(0, 1, 1), OriginReached::Victim);
  // Unrecorded reads as None / not hijacked.
  EXPECT_EQ(store.outcome(1, 0, 0), OriginReached::None);
  EXPECT_FALSE(store.hijacked(1, 0, 0));
}

TEST(ResultStore, HijackedCountOverSet) {
  ResultStore store(2, 4);
  store.record(0, 1, 0, OriginReached::Adversary);
  store.record(0, 1, 1, OriginReached::Victim);
  store.record(0, 1, 2, OriginReached::Adversary);
  store.record(0, 1, 3, OriginReached::None);
  const std::vector<PerspectiveIndex> all = {0, 1, 2, 3};
  const std::vector<PerspectiveIndex> clean = {1, 3};
  EXPECT_EQ(store.hijacked_count(0, 1, all), 2u);
  EXPECT_EQ(store.hijacked_count(0, 1, clean), 0u);
  EXPECT_EQ(store.hijacked_count(0, 1, std::span<const PerspectiveIndex>{}),
            0u);
}

TEST(ResultStore, PairCompleteness) {
  ResultStore store(2, 2);
  EXPECT_FALSE(store.pair_complete(0, 1));
  store.record(0, 1, 0, OriginReached::Victim);
  EXPECT_FALSE(store.pair_complete(0, 1));
  store.record(0, 1, 1, OriginReached::None);
  EXPECT_TRUE(store.pair_complete(0, 1))
      << "None is a recorded outcome, distinct from unrecorded";
}

TEST(ResultStore, HijackWordsLayout) {
  ResultStore store(2, 2);
  store.record(0, 1, 1, OriginReached::Adversary);
  const auto row = store.hijack_words(1);
  ASSERT_EQ(row.size(), store.words_per_row());
  const auto bit = [&](std::span<const std::uint64_t> words,
                       std::size_t pair) {
    return (words[pair / 64] >> (pair % 64)) & 1;
  };
  EXPECT_EQ(bit(row, store.pair_index(0, 1)), 1u);
  EXPECT_EQ(bit(row, store.pair_index(1, 0)), 0u);
  EXPECT_EQ(bit(store.hijack_words(0), store.pair_index(0, 1)), 0u);
  EXPECT_THROW((void)store.hijack_words(5), std::out_of_range);
}

TEST(ResultStore, HijackWordsTailBitsStayZero) {
  // 3 sites -> 9 pairs in a 64-bit word: bits 9..63 must never be set,
  // whatever is recorded (the tail-mask invariant analysis kernels rely
  // on for whole-word reductions).
  ResultStore store(3, 2);
  for (SiteIndex v = 0; v < 3; ++v) {
    for (SiteIndex a = 0; a < 3; ++a) {
      for (PerspectiveIndex p = 0; p < 2; ++p) {
        store.record(v, a, p, OriginReached::Adversary);
      }
    }
  }
  ASSERT_EQ(store.words_per_row(), 1u);
  for (PerspectiveIndex p = 0; p < 2; ++p) {
    EXPECT_EQ(store.hijack_words(p)[0] >> store.num_pairs(), 0u);
  }
}

TEST(ResultStore, HijackPlaneIsBitPacked) {
  // The packed plane must be ~8x smaller than the former byte-per-pair
  // plane: words_per_row * 8 bytes per perspective vs num_pairs bytes.
  const ResultStore store(32, 106);
  const std::size_t byte_plane = store.num_pairs() * store.num_perspectives();
  EXPECT_EQ(store.hijack_plane_bytes(),
            store.words_per_row() * sizeof(std::uint64_t) *
                store.num_perspectives());
  EXPECT_LE(store.hijack_plane_bytes() * 8, byte_plane + 63 * 8 * 106)
      << "packed plane must be within one padding word per row of 1/8th";
  // 32*32 = 1024 pairs = exactly 16 words: exactly 8x here.
  EXPECT_EQ(store.hijack_plane_bytes() * 8, byte_plane);
}

TEST(ResultStore, RecordValidatesIndices) {
  ResultStore store(2, 2);
  EXPECT_THROW(store.record(2, 0, 0, OriginReached::Victim),
               std::out_of_range);
  EXPECT_THROW(store.record(0, 2, 0, OriginReached::Victim),
               std::out_of_range);
  EXPECT_THROW(store.record(0, 1, 2, OriginReached::Victim),
               std::out_of_range);
}

TEST(ResultStore, OverwriteOnRetry) {
  ResultStore store(2, 1);
  store.record(0, 1, 0, OriginReached::Adversary);
  store.record(0, 1, 0, OriginReached::Victim);  // retry overwrites
  EXPECT_FALSE(store.hijacked(0, 1, 0));
}

TEST(ResultStore, CsvRoundtrip) {
  ResultStore store(3, 2);
  store.record(0, 1, 0, OriginReached::Adversary);
  store.record(0, 1, 1, OriginReached::Victim);
  store.record(2, 0, 0, OriginReached::None);

  std::stringstream buffer;
  store.save_csv(buffer);
  const ResultStore loaded = ResultStore::load_csv(buffer);

  EXPECT_EQ(loaded.num_sites(), 3u);
  EXPECT_EQ(loaded.num_perspectives(), 2u);
  for (SiteIndex v = 0; v < 3; ++v) {
    for (SiteIndex a = 0; a < 3; ++a) {
      for (PerspectiveIndex p = 0; p < 2; ++p) {
        EXPECT_EQ(loaded.outcome(v, a, p), store.outcome(v, a, p));
      }
    }
  }
  // Completeness survives (2,0) was explicitly None.
  EXPECT_TRUE(loaded.pair_complete(0, 1));
}

TEST(ResultStore, SaveEmitsSchemaCommentFirst) {
  ResultStore store(2, 1);
  std::stringstream buffer;
  store.save_csv(buffer);
  std::string line;
  ASSERT_TRUE(std::getline(buffer, line));
  EXPECT_EQ(line, "# schema=2");
  // The attack_types comment names every plane so the numeric attack
  // column in the rows below stays self-describing.
  ASSERT_TRUE(std::getline(buffer, line));
  EXPECT_EQ(line, "# attack_types=equally-specific");
  ASSERT_TRUE(std::getline(buffer, line));
  EXPECT_EQ(line, "sites,2,perspectives,1,attacks,1");
}

TEST(ResultStore, LoadSkipsCommentLines) {
  // The versioned format carries `# ...` comment lines; the loader must
  // accept both the new schema comment and extra comments in the body.
  std::stringstream commented(
      "# schema=1\n"
      "# produced-by: test\n"
      "sites,2,perspectives,1\n"
      "victim,adversary,perspective,outcome\n"
      "0,1,0,2\n"
      "# trailing note\n"
      "1,0,0,1\n");
  const ResultStore store = ResultStore::load_csv(commented);
  EXPECT_EQ(store.outcome(0, 1, 0), OriginReached::Adversary);
  EXPECT_EQ(store.outcome(1, 0, 0), OriginReached::Victim);
}

TEST(ResultStore, LoadAcceptsLegacyFilesWithoutSchemaComment) {
  // Pre-versioning files start directly at the sites header.
  std::stringstream legacy(
      "sites,2,perspectives,1\n"
      "victim,adversary,perspective,outcome\n"
      "0,1,0,2\n");
  const ResultStore store = ResultStore::load_csv(legacy);
  EXPECT_TRUE(store.hijacked(0, 1, 0));
}

TEST(ResultStore, LoadRejectsGarbage) {
  std::stringstream bad("nonsense\n");
  EXPECT_THROW((void)ResultStore::load_csv(bad), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW((void)ResultStore::load_csv(empty), std::runtime_error);
}

TEST(ResultStore, LoadRejectsOutOfRangeOutcome) {
  // A corrupt outcome column must not be static_cast into OriginReached:
  // 7 is not a valid enumerator and would silently poison the store.
  std::stringstream corrupt(
      "sites,2,perspectives,1\n"
      "victim,adversary,perspective,outcome\n"
      "0,1,0,7\n");
  EXPECT_THROW((void)ResultStore::load_csv(corrupt), std::runtime_error);

  std::stringstream negative(
      "sites,2,perspectives,1\n"
      "victim,adversary,perspective,outcome\n"
      "0,1,0,-1\n");
  EXPECT_THROW((void)ResultStore::load_csv(negative), std::runtime_error);

  // All legal enumerators still load.
  std::stringstream fine(
      "sites,2,perspectives,3\n"
      "victim,adversary,perspective,outcome\n"
      "0,1,0,0\n"
      "0,1,1,1\n"
      "0,1,2,2\n");
  const ResultStore store = ResultStore::load_csv(fine);
  EXPECT_EQ(store.outcome(0, 1, 0), OriginReached::None);
  EXPECT_EQ(store.outcome(0, 1, 1), OriginReached::Victim);
  EXPECT_EQ(store.outcome(0, 1, 2), OriginReached::Adversary);
}

TEST(ResultStore, LoadRejectsWrongHeaderSecondTag) {
  // Seed code never checked the second tag and read garbage counts.
  std::stringstream bad(
      "sites,2,prospectives,1\n"
      "victim,adversary,perspective,outcome\n");
  EXPECT_THROW((void)ResultStore::load_csv(bad), std::runtime_error);

  std::stringstream truncated("sites,2\n");
  EXPECT_THROW((void)ResultStore::load_csv(truncated), std::runtime_error);
}

TEST(ResultStore, CsvRoundTripPreservesEveryCellIncludingUnrecorded) {
  // A store with a mix of all three outcomes and unrecorded holes must
  // round-trip cell-exactly: unrecorded cells stay unrecorded (pair
  // incomplete), and explicit None survives as a recorded outcome.
  ResultStore store(4, 3);
  store.record(0, 1, 0, OriginReached::Adversary);
  store.record(0, 1, 1, OriginReached::Victim);
  store.record(0, 1, 2, OriginReached::None);
  store.record(1, 0, 0, OriginReached::Victim);
  store.record(3, 2, 1, OriginReached::Adversary);
  // (2, 3) left fully unrecorded; (1, 0) partially recorded.

  std::stringstream buffer;
  store.save_csv(buffer);
  const ResultStore loaded = ResultStore::load_csv(buffer);

  ASSERT_EQ(loaded.num_sites(), store.num_sites());
  ASSERT_EQ(loaded.num_perspectives(), store.num_perspectives());
  for (SiteIndex v = 0; v < 4; ++v) {
    for (SiteIndex a = 0; a < 4; ++a) {
      EXPECT_EQ(loaded.pair_complete(v, a), store.pair_complete(v, a))
          << "pair " << v << "," << a;
      for (PerspectiveIndex p = 0; p < 3; ++p) {
        EXPECT_EQ(loaded.outcome(v, a, p), store.outcome(v, a, p))
            << "cell " << v << "," << a << "," << p;
        EXPECT_EQ(loaded.hijacked(v, a, p), store.hijacked(v, a, p));
      }
    }
  }
  EXPECT_TRUE(loaded.pair_complete(0, 1));
  EXPECT_FALSE(loaded.pair_complete(1, 0));
  EXPECT_FALSE(loaded.pair_complete(2, 3));
}

TEST(ResultStore, BinaryRoundTripPreservesEveryCellIncludingUnrecorded) {
  // Odd cell count (3*3*3 = 27) exercises the pad nibble too.
  ResultStore store(3, 3);
  store.record(0, 1, 0, OriginReached::Adversary);
  store.record(0, 1, 1, OriginReached::Victim);
  store.record(0, 1, 2, OriginReached::None);
  store.record(1, 0, 0, OriginReached::Victim);
  store.record(2, 0, 2, OriginReached::Adversary);
  // (1, 2) left fully unrecorded.

  std::stringstream buffer;
  store.save_binary(buffer);
  const ResultStore loaded = ResultStore::load_binary(buffer);

  ASSERT_EQ(loaded.num_sites(), store.num_sites());
  ASSERT_EQ(loaded.num_perspectives(), store.num_perspectives());
  for (SiteIndex v = 0; v < 3; ++v) {
    for (SiteIndex a = 0; a < 3; ++a) {
      EXPECT_EQ(loaded.pair_complete(v, a), store.pair_complete(v, a));
      for (PerspectiveIndex p = 0; p < 3; ++p) {
        EXPECT_EQ(loaded.outcome(v, a, p), store.outcome(v, a, p))
            << "cell " << v << "," << a << "," << p;
        EXPECT_EQ(loaded.hijacked(v, a, p), store.hijacked(v, a, p));
      }
    }
  }
  // The rebuilt packed plane must match word-for-word.
  for (PerspectiveIndex p = 0; p < 3; ++p) {
    const auto lhs = store.hijack_words(p);
    const auto rhs = loaded.hijack_words(p);
    ASSERT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin()));
  }
}

TEST(ResultStore, BinaryIsSmallerThanCsv) {
  ResultStore store(8, 16);
  for (SiteIndex v = 0; v < 8; ++v) {
    for (SiteIndex a = 0; a < 8; ++a) {
      for (PerspectiveIndex p = 0; p < 16; ++p) {
        store.record(v, a, p,
                     (v + a + p) % 2 == 0 ? OriginReached::Adversary
                                          : OriginReached::Victim);
      }
    }
  }
  std::stringstream csv;
  store.save_csv(csv);
  std::stringstream bin;
  store.save_binary(bin);
  EXPECT_LT(bin.str().size(), csv.str().size() / 8);
}

TEST(ResultStore, BinaryRejectsBadMagic) {
  ResultStore store(2, 1);
  std::stringstream buffer;
  store.save_binary(buffer);
  std::string bytes = buffer.str();
  bytes[0] = 'X';
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)ResultStore::load_binary(corrupted), std::runtime_error);

  std::stringstream empty("");
  EXPECT_THROW((void)ResultStore::load_binary(empty), std::runtime_error);
}

TEST(ResultStore, BinaryRejectsUnknownSchema) {
  ResultStore store(2, 1);
  std::stringstream buffer;
  store.save_binary(buffer);
  std::string bytes = buffer.str();
  bytes[4] = 9;  // schema byte
  std::stringstream future(bytes);
  EXPECT_THROW((void)ResultStore::load_binary(future), std::runtime_error);
}

TEST(ResultStore, BinaryRejectsTruncation) {
  ResultStore store(4, 4);
  store.record(0, 1, 0, OriginReached::Adversary);
  std::stringstream buffer;
  store.save_binary(buffer);
  const std::string bytes = buffer.str();
  // Every strictly shorter prefix must be rejected, wherever it cuts.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{6}, std::size_t{10},
        std::size_t{15}, bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, keep));
    EXPECT_THROW((void)ResultStore::load_binary(truncated),
                 std::runtime_error)
        << "prefix of " << keep << " bytes";
  }
}

TEST(ResultStore, BinaryRejectsOutOfRangeNibble) {
  ResultStore store(2, 1);
  std::stringstream buffer;
  store.save_binary(buffer);
  std::string bytes = buffer.str();
  // First plane byte (after the 20-byte schema-2 header and 1 attack-type
  // byte): low nibble = cell 0. 0x7 is not an outcome (0xF is the
  // unrecorded sentinel, 0..2 the enumerators).
  bytes[21] = 0x07;
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)ResultStore::load_binary(corrupted), std::runtime_error);
}

// ----------------------------- attack planes and schema evolution

TEST(ResultStore, ConstructorValidatesAttackList) {
  EXPECT_THROW(ResultStore(2, 1, std::vector<bgp::AttackType>{}),
               std::invalid_argument);
  EXPECT_THROW(ResultStore(2, 1,
                           {bgp::AttackType::RouteLeak,
                            bgp::AttackType::RouteLeak}),
               std::invalid_argument);
}

TEST(ResultStore, PlanesAreIndependent) {
  ResultStore store(2, 2,
                    {bgp::AttackType::EquallySpecific,
                     bgp::AttackType::RouteLeak});
  store.record(0, 0, 1, 0, OriginReached::Adversary);
  store.record(1, 0, 1, 0, OriginReached::Victim);
  EXPECT_TRUE(store.hijacked(0, 0, 1, 0));
  EXPECT_FALSE(store.hijacked(1, 0, 1, 0));
  EXPECT_EQ(store.outcome(1, 0, 1, 0), OriginReached::Victim);
  // The attack-less accessors are plane 0.
  EXPECT_TRUE(store.hijacked(0, 1, 0));
  // Plane lookup by type.
  EXPECT_EQ(store.attack_index(bgp::AttackType::RouteLeak), 1u);
  EXPECT_FALSE(store.attack_index(bgp::AttackType::SubPrefix).has_value());
  EXPECT_THROW((void)store.outcome(2, 0, 1, 0), std::out_of_range);
  EXPECT_THROW(store.record(2, 0, 1, 0, OriginReached::None),
               std::out_of_range);
}

TEST(ResultStore, ExtractAttackCopiesOnePlaneWithItsTag) {
  ResultStore store(2, 2,
                    {bgp::AttackType::EquallySpecific,
                     bgp::AttackType::RouteLeak});
  store.record(0, 0, 1, 0, OriginReached::Adversary);
  store.record(1, 0, 1, 0, OriginReached::Victim);
  store.record(1, 1, 0, 1, OriginReached::Adversary);

  const ResultStore leak = store.extract_attack(1);
  EXPECT_EQ(leak.num_attacks(), 1u);
  EXPECT_EQ(leak.attack_types()[0], bgp::AttackType::RouteLeak);
  EXPECT_EQ(leak.num_sites(), store.num_sites());
  EXPECT_EQ(leak.num_perspectives(), store.num_perspectives());
  for (SiteIndex v = 0; v < 2; ++v) {
    for (SiteIndex a = 0; a < 2; ++a) {
      for (PerspectiveIndex p = 0; p < 2; ++p) {
        EXPECT_EQ(leak.outcome(v, a, p), store.outcome(1, v, a, p));
        EXPECT_EQ(leak.hijacked(v, a, p), store.hijacked(1, v, a, p));
        EXPECT_EQ(leak.pair_complete(v, a), store.pair_complete(1, v, a));
      }
    }
  }
  EXPECT_THROW((void)store.extract_attack(2), std::out_of_range);
}

TEST(ResultStore, MultiPlaneCsvRoundTripPreservesPlanesAndTags) {
  ResultStore store(3, 2,
                    {bgp::AttackType::ForgedOriginPrepend,
                     bgp::AttackType::RouteLeak});
  store.record(0, 0, 1, 0, OriginReached::Adversary);
  store.record(0, 2, 0, 1, OriginReached::None);
  store.record(1, 0, 1, 0, OriginReached::Victim);
  store.record(1, 1, 2, 1, OriginReached::Adversary);

  std::stringstream buffer;
  store.save_csv(buffer);
  const ResultStore loaded = ResultStore::load_csv(buffer);

  ASSERT_EQ(loaded.num_attacks(), 2u);
  EXPECT_EQ(loaded.attack_types()[0], bgp::AttackType::ForgedOriginPrepend);
  EXPECT_EQ(loaded.attack_types()[1], bgp::AttackType::RouteLeak);
  for (std::size_t t = 0; t < 2; ++t) {
    for (SiteIndex v = 0; v < 3; ++v) {
      for (SiteIndex a = 0; a < 3; ++a) {
        for (PerspectiveIndex p = 0; p < 2; ++p) {
          EXPECT_EQ(loaded.outcome(t, v, a, p), store.outcome(t, v, a, p))
              << "plane " << t << " cell " << v << "," << a << "," << p;
        }
        EXPECT_EQ(loaded.pair_complete(t, v, a), store.pair_complete(t, v, a));
      }
    }
  }
}

TEST(ResultStore, Schema1CsvLoadsAsSingleEquallySpecificPlane) {
  // The exact bytes a pre-multi-attack save_csv produced.
  std::stringstream legacy(
      "# schema=1\n"
      "sites,2,perspectives,1\n"
      "victim,adversary,perspective,outcome\n"
      "0,1,0,2\n"
      "1,0,0,1\n");
  const ResultStore store = ResultStore::load_csv(legacy);
  ASSERT_EQ(store.num_attacks(), 1u);
  EXPECT_EQ(store.attack_types()[0], bgp::AttackType::EquallySpecific);
  EXPECT_TRUE(store.hijacked(0, 1, 0));
  EXPECT_EQ(store.outcome(1, 0, 0), OriginReached::Victim);
}

TEST(ResultStore, Schema1CsvHonorsAnAttackTypeComment) {
  // A transitional file: schema-1 shape, but the comment records which
  // attack the campaign ran. The single plane takes that tag.
  std::stringstream tagged(
      "# schema=1\n"
      "# attack_types=route-leak\n"
      "sites,2,perspectives,1\n"
      "victim,adversary,perspective,outcome\n"
      "0,1,0,2\n");
  const ResultStore store = ResultStore::load_csv(tagged);
  ASSERT_EQ(store.num_attacks(), 1u);
  EXPECT_EQ(store.attack_types()[0], bgp::AttackType::RouteLeak);
}

TEST(ResultStore, CsvRejectsInconsistentAttackMetadata) {
  // Multiple comment tags but a schema-1 header: there is nowhere to put
  // the second plane.
  std::stringstream two_tags(
      "# attack_types=equally-specific,route-leak\n"
      "sites,2,perspectives,1\n"
      "victim,adversary,perspective,outcome\n");
  EXPECT_THROW((void)ResultStore::load_csv(two_tags), std::runtime_error);

  // Header plane count disagreeing with the comment list.
  std::stringstream mismatch(
      "# schema=2\n"
      "# attack_types=equally-specific\n"
      "sites,2,perspectives,1,attacks,2\n"
      "victim,adversary,perspective,attack,outcome\n");
  EXPECT_THROW((void)ResultStore::load_csv(mismatch), std::runtime_error);

  // An unknown name in the comment.
  std::stringstream unknown(
      "# schema=2\n"
      "# attack_types=warp-drive\n"
      "sites,2,perspectives,1,attacks,1\n"
      "victim,adversary,perspective,attack,outcome\n");
  EXPECT_THROW((void)ResultStore::load_csv(unknown), std::runtime_error);

  // A row addressing a plane the header never declared.
  std::stringstream bad_row(
      "# schema=2\n"
      "# attack_types=equally-specific\n"
      "sites,2,perspectives,1,attacks,1\n"
      "victim,adversary,perspective,attack,outcome\n"
      "0,1,0,1,2\n");
  EXPECT_THROW((void)ResultStore::load_csv(bad_row), std::runtime_error);
}

TEST(ResultStore, MultiPlaneBinaryRoundTripPreservesPlanesAndTags) {
  // Odd total cell count (3 planes * 9 pairs * 3 perspectives = 81): the
  // single pad nibble sits at the very end of the last plane, not per
  // plane, and must round-trip away.
  ResultStore store(3, 3,
                    {bgp::AttackType::EquallySpecific,
                     bgp::AttackType::SubPrefix,
                     bgp::AttackType::RouteLeak});
  store.record(0, 0, 1, 0, OriginReached::Adversary);
  store.record(1, 1, 2, 1, OriginReached::Victim);
  store.record(2, 2, 0, 2, OriginReached::None);

  std::stringstream buffer;
  store.save_binary(buffer);
  const ResultStore loaded = ResultStore::load_binary(buffer);

  ASSERT_EQ(loaded.num_attacks(), 3u);
  EXPECT_EQ(loaded.attack_types()[2], bgp::AttackType::RouteLeak);
  for (std::size_t t = 0; t < 3; ++t) {
    for (SiteIndex v = 0; v < 3; ++v) {
      for (SiteIndex a = 0; a < 3; ++a) {
        for (PerspectiveIndex p = 0; p < 3; ++p) {
          EXPECT_EQ(loaded.outcome(t, v, a, p), store.outcome(t, v, a, p))
              << "plane " << t << " cell " << v << "," << a << "," << p;
        }
      }
    }
  }
}

TEST(ResultStore, Schema1BinaryLoadsAsSingleEquallySpecificPlane) {
  // Handcrafted legacy bytes: "MPRS", schema byte 1 + 3 reserved zeros,
  // u32le sites=2, u32le perspectives=1, then 4 cells packed in 2 bytes —
  // no attack count, no type bytes. Cell order: pair-major, diag cells
  // unrecorded (0xF).
  const unsigned char raw[] = {
      'M', 'P', 'R', 'S', 1,   0,   0,   0,  // magic + schema
      2,   0,   0,   0,                      // sites
      1,   0,   0,   0,                      // perspectives
      0x2F,  // cell 0 (diag, 0xF) | cell 1 (pair 0,1 = Adversary) << 4
      0xF1,  // cell 2 (pair 1,0 = Victim) | cell 3 (diag, 0xF) << 4
  };
  std::stringstream in(std::string(reinterpret_cast<const char*>(raw),
                                   sizeof raw));
  const ResultStore store = ResultStore::load_binary(in);
  ASSERT_EQ(store.num_attacks(), 1u);
  EXPECT_EQ(store.attack_types()[0], bgp::AttackType::EquallySpecific);
  EXPECT_EQ(store.num_sites(), 2u);
  EXPECT_EQ(store.num_perspectives(), 1u);
  EXPECT_EQ(store.outcome(0, 1, 0), OriginReached::Adversary);
  EXPECT_EQ(store.outcome(1, 0, 0), OriginReached::Victim);
  EXPECT_FALSE(store.pair_complete(0, 0)) << "diagonal stays unrecorded";
}

TEST(ResultStore, BinaryRejectsBadAttackMetadata) {
  ResultStore store(2, 1);
  std::stringstream buffer;
  store.save_binary(buffer);
  const std::string bytes = buffer.str();

  // Zero planes (attack count u32 at offset 16).
  std::string zero = bytes;
  zero[16] = 0;
  std::stringstream zero_in(zero);
  EXPECT_THROW((void)ResultStore::load_binary(zero_in), std::runtime_error);

  // An attack-type byte no registry entry exists for (offset 20).
  std::string unknown = bytes;
  unknown[20] = static_cast<char>(200);
  std::stringstream unknown_in(unknown);
  EXPECT_THROW((void)ResultStore::load_binary(unknown_in),
               std::runtime_error);
}

TEST(ResultStore, RecordUnsynchronizedMatchesRecord) {
  ResultStore a(2, 2);
  ResultStore b(2, 2);
  a.record(0, 1, 0, OriginReached::Adversary);
  a.record(1, 0, 1, OriginReached::Victim);
  b.record_unsynchronized(0, 1, 0, OriginReached::Adversary);
  b.record_unsynchronized(1, 0, 1, OriginReached::Victim);
  for (SiteIndex v = 0; v < 2; ++v) {
    for (SiteIndex adv = 0; adv < 2; ++adv) {
      for (PerspectiveIndex p = 0; p < 2; ++p) {
        EXPECT_EQ(a.outcome(v, adv, p), b.outcome(v, adv, p));
        EXPECT_EQ(a.hijacked(v, adv, p), b.hijacked(v, adv, p));
      }
    }
  }
}

}  // namespace
}  // namespace marcopolo::core
