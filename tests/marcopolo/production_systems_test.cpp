#include "marcopolo/production_systems.hpp"

#include <gtest/gtest.h>

#include <set>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

TEST(ProductionSystems, LetsEncryptShape) {
  const auto spec = lets_encrypt_spec(shared_testbed());
  EXPECT_EQ(spec.name, "lets-encrypt");
  EXPECT_EQ(spec.remotes.size(), 4u);
  ASSERT_TRUE(spec.primary.has_value());
  EXPECT_EQ(spec.policy.to_string(), "(primary + 4, N-1)");
  EXPECT_TRUE(spec.policy.cab_compliant());
  // All on AWS, primary included.
  for (const auto p : spec.remotes) {
    EXPECT_EQ(shared_testbed().perspectives()[p].provider,
              topo::CloudProvider::Aws);
    EXPECT_NE(p, *spec.primary);
  }
  EXPECT_EQ(shared_testbed().perspectives()[*spec.primary].region_name,
            "us-east-1");
}

TEST(ProductionSystems, CloudflareShape) {
  const auto spec = cloudflare_spec(shared_testbed());
  EXPECT_EQ(spec.name, "cloudflare");
  EXPECT_EQ(spec.remotes.size(), 8u);
  EXPECT_FALSE(spec.primary.has_value());
  EXPECT_EQ(spec.policy.to_string(), "(8, N)");
  EXPECT_EQ(spec.policy.required(), 8u);  // full quorum
}

TEST(ProductionSystems, PerspectivesAreGeographicallyDiverse) {
  const auto spec = cloudflare_spec(shared_testbed());
  std::set<topo::Rir> rirs;
  for (const auto p : spec.remotes) {
    rirs.insert(shared_testbed().perspectives()[p].rir);
  }
  EXPECT_GE(rirs.size(), 4u);
}

TEST(ProductionSystems, SpecsPassValidation) {
  EXPECT_NO_THROW(lets_encrypt_spec(shared_testbed()).check());
  EXPECT_NO_THROW(cloudflare_spec(shared_testbed()).check());
}

}  // namespace
}  // namespace marcopolo::core
