#include "marcopolo/orchestrator.hpp"

#include <gtest/gtest.h>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

/// Orchestrated campaigns over a handful of pairs; the testbed is shared
/// (the orchestrator does not mutate it).
class OrchestratorTest : public ::testing::Test {
 protected:
  static Testbed& testbed() {
    static Testbed tb(testing_support::small_testbed_config());
    return tb;
  }

  static std::vector<std::pair<SiteIndex, SiteIndex>> few_pairs() {
    return {{0, 1}, {1, 0}, {2, 7}, {12, 3}, {30, 31}, {5, 9}};
  }
};

TEST_F(OrchestratorTest, CompletesAllAttacksWithoutLoss) {
  OrchestratorConfig cfg;
  cfg.pairs = few_pairs();
  Orchestrator orchestrator(testbed(), cfg);
  const auto out = orchestrator.run();

  EXPECT_EQ(out.stats.attacks_completed, few_pairs().size());
  EXPECT_EQ(out.stats.retries, 0u);
  EXPECT_EQ(out.stats.incomplete_attacks, 0u);
  EXPECT_EQ(out.stats.announcements, 2 * few_pairs().size());
  for (const auto& [v, a] : few_pairs()) {
    EXPECT_TRUE(out.results.pair_complete(v, a));
  }
}

TEST_F(OrchestratorTest, RateLimitSpacesAnnouncements) {
  OrchestratorConfig cfg;
  cfg.pairs = few_pairs();
  cfg.propagation_wait = netsim::minutes(5);
  Orchestrator orchestrator(testbed(), cfg);
  const auto out = orchestrator.run();
  // 6 attacks on one lane, >= 5 min between announcements.
  EXPECT_GE(out.stats.duration, netsim::minutes(5 * 6));
  EXPECT_LT(out.stats.duration, netsim::minutes(5 * 6 + 30));
}

TEST_F(OrchestratorTest, PrefixPartitioningParallelizes) {
  OrchestratorConfig cfg;
  cfg.pairs = few_pairs();
  cfg.prefix_lanes = 3;
  Orchestrator orchestrator(testbed(), cfg);
  const auto out = orchestrator.run();
  EXPECT_EQ(out.stats.attacks_completed, few_pairs().size());
  // 6 attacks over 3 lanes: ~2 slots instead of 6.
  EXPECT_LT(out.stats.duration, netsim::minutes(5 * 3 + 5));
}

TEST_F(OrchestratorTest, SequentialAnnouncementsStretchTheCampaign) {
  OrchestratorConfig fast_cfg;
  fast_cfg.pairs = few_pairs();
  fast_cfg.include_production_systems = false;
  Orchestrator fast(testbed(), fast_cfg);
  const auto fast_out = fast.run();

  OrchestratorConfig seq_cfg = fast_cfg;
  seq_cfg.sequential_announcements = true;
  Orchestrator seq(testbed(), seq_cfg);
  const auto seq_out = seq.run();

  const double factor = netsim::to_seconds(seq_out.stats.duration) /
                        netsim::to_seconds(fast_out.stats.duration);
  // Paper §4.4.4 puts the factor at 2.67x.
  EXPECT_GT(factor, 2.0);
  EXPECT_LT(factor, 3.2);
  EXPECT_EQ(seq_out.stats.attacks_completed, few_pairs().size());
}

TEST_F(OrchestratorTest, LossTriggersRetriesAndStillCompletes) {
  OrchestratorConfig cfg;
  cfg.pairs = {{0, 1}, {4, 9}};
  cfg.loss = netsim::LossModel{0.02, 0.02};
  cfg.max_attempts = 10;
  Orchestrator orchestrator(testbed(), cfg);
  const auto out = orchestrator.run();
  EXPECT_GT(out.stats.retries, 0u)
      << "2% loss over ~240 validations should lose something";
  EXPECT_EQ(out.stats.attacks_completed, 2u);
  EXPECT_TRUE(out.results.pair_complete(0, 1));
  EXPECT_TRUE(out.results.pair_complete(4, 9));
}

TEST_F(OrchestratorTest, ExhaustedRetriesAreReportedIncomplete) {
  OrchestratorConfig cfg;
  cfg.pairs = {{0, 1}};
  cfg.loss = netsim::LossModel{0.5, 0.0};  // brutal loss
  cfg.max_attempts = 2;
  Orchestrator orchestrator(testbed(), cfg);
  const auto out = orchestrator.run();
  EXPECT_EQ(out.stats.attacks_completed, 0u);
  EXPECT_EQ(out.stats.incomplete_attacks, 1u);
  EXPECT_EQ(out.stats.attack_attempts, 2u);
}

TEST_F(OrchestratorTest, DcvCorroborationsPassDespiteHijack) {
  // Both endpoints answer the challenge via the central store, so DCV
  // passes no matter where perspectives route — the measurement is the
  // request log, not the DCV verdict (paper §4.2.2).
  OrchestratorConfig cfg;
  cfg.pairs = few_pairs();
  Orchestrator orchestrator(testbed(), cfg);
  const auto out = orchestrator.run();
  // global sweep + LE + CF per attack.
  EXPECT_EQ(out.stats.dcv_corroborations_passed, 3 * few_pairs().size());
}

TEST_F(OrchestratorTest, ValidationCountsTracked) {
  OrchestratorConfig cfg;
  cfg.pairs = {{0, 1}};
  cfg.include_production_systems = false;
  Orchestrator orchestrator(testbed(), cfg);
  const auto out = orchestrator.run();
  EXPECT_EQ(out.stats.validations, testbed().perspectives().size());
}

}  // namespace
}  // namespace marcopolo::core
