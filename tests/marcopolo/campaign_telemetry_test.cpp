// The telemetry hub must be a pure observer, exactly like metrics, the
// flight recorder, and hw counters: hub on, off, or degraded (requested
// port already taken) may not change a single result byte, and the saved
// CSV — the canonical output artifact — must be byte-identical, not just
// cell-identical. This is the check the ASan CI job runs.
#include "marcopolo/fast_campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/telemetry_hub.hpp"
#include "obs/telemetry_server.hpp"
#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

std::string csv_bytes(const ResultStore& store) {
  std::ostringstream out;
  store.save_csv(out);
  return out.str();
}

TEST(CampaignTelemetry, HubLeavesResultBytesIdentical) {
  FastCampaignConfig plain;
  plain.threads = 1;
  const std::string baseline = csv_bytes(run_fast_campaign(
      shared_testbed(), plain));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::TelemetryConfig tcfg;
    tcfg.tick_ms = 10;  // fastest tick: maximize mid-run scrapes
    obs::TelemetryHub hub(tcfg);
    hub.start();
    FastCampaignConfig observed;
    observed.threads = threads;
    observed.telemetry = &hub;
    const std::string with_hub = csv_bytes(run_fast_campaign(
        shared_testbed(), observed));
    hub.stop();
    EXPECT_EQ(with_hub, baseline)
        << "telemetry changed the store (threads=" << threads << ")";
    EXPECT_GT(hub.latest().tasks_done, 0u) << "hub saw no completions";
  }
}

TEST(CampaignTelemetry, DegradedEndpointLeavesResultBytesIdentical) {
  // Occupy a port, then ask the hub for exactly that port: the server
  // degrades to unavailable and the campaign must not notice.
  obs::TelemetryServer squatter;
  if (!squatter.start(0)) {
    GTEST_SKIP() << "no loopback socket here: "
                 << squatter.unavailable_reason();
  }

  FastCampaignConfig plain;
  plain.threads = 1;
  const std::string baseline = csv_bytes(run_fast_campaign(
      shared_testbed(), plain));

  obs::TelemetryConfig tcfg;
  tcfg.tick_ms = 10;
  tcfg.serve_port = squatter.port();
  obs::TelemetryHub hub(tcfg);
  hub.start();
  EXPECT_FALSE(hub.serving());
  FastCampaignConfig degraded;
  degraded.threads = 1;
  degraded.telemetry = &hub;
  const std::string with_hub = csv_bytes(run_fast_campaign(
      shared_testbed(), degraded));
  hub.stop();
  squatter.stop();
  EXPECT_EQ(with_hub, baseline) << "degraded telemetry changed the store";
}

TEST(CampaignTelemetry, RegistryBytesIdenticalWithHubAttached) {
  // The hub scrapes the registry but must never write to it unless a
  // stall fires: counter names and values with the hub attached must
  // equal a hub-free run exactly (no campaign.stalls row, no marker).
  const auto counters_with = [](obs::TelemetryHub* hub) {
    obs::MetricsRegistry registry;
    FastCampaignConfig cfg;
    cfg.threads = 1;
    cfg.metrics = &registry;
    cfg.telemetry = hub;
    (void)run_fast_campaign(shared_testbed(), cfg);
    return registry.snapshot().counters;
  };

  const auto without = counters_with(nullptr);

  obs::TelemetryConfig tcfg;
  tcfg.tick_ms = 10;
  obs::TelemetryHub hub(tcfg);
  hub.start();
  const auto with = counters_with(&hub);
  hub.stop();

  EXPECT_EQ(with, without);
}

TEST(CampaignTelemetry, HubTracksPlannedAndCompletedTasks) {
  obs::TelemetryConfig tcfg;
  obs::TelemetryHub hub(tcfg);  // not started: tick_now drives it
  FastCampaignConfig cfg;
  cfg.threads = 2;
  cfg.telemetry = &hub;
  (void)run_fast_campaign(shared_testbed(), cfg);
  hub.tick_now();
  const obs::TelemetrySnapshot snap = hub.latest();
  EXPECT_GT(snap.tasks_total, 0u);
  EXPECT_EQ(snap.tasks_done, snap.tasks_total)
      << "a finished campaign must have retired every planned task";
  EXPECT_EQ(snap.workers_live, 0) << "slots must be closed after the drain";
}

}  // namespace
}  // namespace marcopolo::core
