// Tests for the DNS attack surface (§6 future work, implemented).
#include <gtest/gtest.h>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

TEST(DnsSurface, SelfHostedEqualsHttpSurface) {
  const auto& tb = shared_testbed();
  FastCampaignConfig http;
  const auto http_store = run_fast_campaign(tb, http);

  FastCampaignConfig dns;
  dns.surface = AttackSurface::Dns;  // empty host map = self-hosted
  const auto dns_store = run_fast_campaign(tb, dns);

  const auto n = static_cast<SiteIndex>(http_store.num_sites());
  for (SiteIndex v = 0; v < n; ++v) {
    for (SiteIndex a = 0; a < n; ++a) {
      if (v == a) continue;
      for (PerspectiveIndex p = 0; p < http_store.num_perspectives(); ++p) {
        ASSERT_EQ(http_store.outcome(v, a, p), dns_store.outcome(v, a, p));
      }
    }
  }
}

TEST(DnsSurface, SharedHostMakesVictimsUniform) {
  const auto& tb = shared_testbed();
  FastCampaignConfig dns;
  dns.surface = AttackSurface::Dns;
  dns.dns_host_of_victim.assign(tb.sites().size(), SiteIndex{6});
  const auto store = run_fast_campaign(tb, dns);

  // For a fixed adversary, all victims other than the host itself see the
  // identical perspective outcome vector: only the host's prefix is
  // contested.
  const SiteIndex adversary = 20;
  for (PerspectiveIndex p = 0; p < store.num_perspectives(); ++p) {
    const auto reference = store.outcome(0, adversary, p);
    for (SiteIndex v = 1; v < store.num_sites(); ++v) {
      if (v == adversary) continue;
      EXPECT_EQ(store.outcome(v, adversary, p), reference)
          << "victim " << v << " perspective " << p;
    }
  }
}

TEST(DnsSurface, AdversaryHostingTheDnsWinsOutright) {
  const auto& tb = shared_testbed();
  FastCampaignConfig dns;
  dns.surface = AttackSurface::Dns;
  dns.dns_host_of_victim.assign(tb.sites().size(), SiteIndex{6});
  const auto store = run_fast_campaign(tb, dns);
  // When the adversary *is* the DNS host, every perspective resolves
  // through it: total capture.
  for (SiteIndex v = 0; v < store.num_sites(); ++v) {
    if (v == 6) continue;
    for (PerspectiveIndex p = 0; p < store.num_perspectives(); ++p) {
      EXPECT_EQ(store.outcome(v, 6, p), bgp::OriginReached::Adversary);
    }
  }
}

TEST(DnsSurface, ValidatesHostMapSize) {
  const auto& tb = shared_testbed();
  FastCampaignConfig dns;
  dns.surface = AttackSurface::Dns;
  dns.dns_host_of_victim = {0, 1, 2};  // wrong size
  EXPECT_THROW((void)run_fast_campaign(tb, dns), std::invalid_argument);
}

TEST(SitePool, PeeringCatalogBuildsATestbed) {
  TestbedConfig cfg = testing_support::small_testbed_config();
  cfg.site_catalog = topo::peering_muxes();
  const Testbed tb(cfg);
  EXPECT_EQ(tb.sites().size(), topo::peering_muxes().size());
  EXPECT_EQ(tb.perspectives().size(), 106u);
  // Campaign runs end to end on the alternative pool.
  const auto store = run_fast_campaign(tb, FastCampaignConfig{});
  EXPECT_EQ(store.num_sites(), tb.sites().size());
  EXPECT_TRUE(store.pair_complete(0, 1));
  // Sites carry PEERING metadata.
  EXPECT_EQ(tb.sites()[0].name, "amsterdam01");
}

}  // namespace
}  // namespace marcopolo::core
