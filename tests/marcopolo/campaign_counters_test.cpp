// Hardware-counter attribution must be a pure observer, exactly like
// metrics and the flight recorder: hw_counters on, off, or degraded to
// unavailable may not change a single result byte, and the saved CSV —
// the canonical output artifact — must be byte-identical, not just
// cell-identical. This is the check the ASan CI job runs.
#include "marcopolo/fast_campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

std::string csv_bytes(const ResultStore& store) {
  std::ostringstream out;
  store.save_csv(out);
  return out.str();
}

TEST(CampaignCounters, HwCountersLeaveResultBytesIdentical) {
  FastCampaignConfig plain;
  plain.threads = 1;
  const std::string baseline = csv_bytes(run_fast_campaign(
      shared_testbed(), plain));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    FastCampaignConfig counted;
    counted.threads = threads;
    counted.hw_counters = true;
    const std::string with_counters = csv_bytes(run_fast_campaign(
        shared_testbed(), counted));
    EXPECT_EQ(with_counters, baseline)
        << "hw_counters changed the store (threads=" << threads << ")";
  }
}

TEST(CampaignCounters, MetricsShapeMatchesAvailability) {
  // With counters requested, the campaign.* counter metrics exist iff the
  // host can open perf events. On a denied host the snapshot must look
  // exactly like a counters-off run: same counter names and values (the
  // workload counts are deterministic), same histogram names — no
  // zero-valued counter rows, no availability marker, nothing. (The
  // histogram *contents* are wall-clock latencies and differ run to run,
  // so they are excluded from the identity.)
  const auto snapshot_with = [](bool hw_counters) {
    obs::MetricsRegistry registry;
    FastCampaignConfig cfg;
    cfg.threads = 1;
    cfg.metrics = &registry;
    cfg.hw_counters = hw_counters;
    (void)run_fast_campaign(shared_testbed(), cfg);
    return registry.snapshot();
  };

  const obs::MetricsSnapshot off = snapshot_with(false);
  const obs::MetricsSnapshot on = snapshot_with(true);

  std::vector<std::string> on_histograms;
  std::vector<std::string> off_histograms;
  for (const auto& h : on.histograms) on_histograms.push_back(h.name);
  for (const auto& h : off.histograms) off_histograms.push_back(h.name);
  EXPECT_EQ(on_histograms, off_histograms);

  if (obs::PerfCounterGroup::probe()) {
    EXPECT_GT(on.counter("campaign.instructions"), 0u);
    EXPECT_GT(on.counter("campaign.cycles"), 0u);
    EXPECT_GT(on.counter("campaign.phase.propagate_instructions"), 0u);
  } else {
    EXPECT_EQ(on.counters, off.counters)
        << "unavailable counters must leave the counter set identical to "
           "a counters-off run";
  }
  EXPECT_EQ(off.counter("campaign.instructions"), 0u);
  for (const auto& [name, value] : off.counters) {
    EXPECT_EQ(name.find("instructions"), std::string::npos)
        << name << "=" << value << " interned in a counters-off run";
  }
}

TEST(CampaignCounters, RecordedSpansCarryCountersOnlyWhenAvailable) {
  obs::FlightRecorder recorder;
  FastCampaignConfig cfg;
  cfg.threads = 1;
  cfg.recorder = &recorder;
  cfg.hw_counters = true;
  (void)run_fast_campaign(shared_testbed(), cfg);
  const obs::FlightJournal journal = recorder.drain();
  ASSERT_FALSE(journal.workers.empty());

  bool any_counters = false;
  for (const auto& lane : journal.workers) {
    for (const auto& task : lane.tasks) {
      any_counters = any_counters || task.instructions != 0;
    }
  }
  EXPECT_EQ(any_counters, obs::PerfCounterGroup::probe())
      << "task spans must carry instruction counts exactly when the host "
         "has counters";
}

}  // namespace
}  // namespace marcopolo::core
