// Tests for the live (event-driven) campaign runner.
#include <gtest/gtest.h>

#include "marcopolo/live_campaign.hpp"
#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

std::vector<std::pair<SiteIndex, SiteIndex>> few_pairs() {
  return {{0, 1}, {5, 20}, {13, 30}, {28, 2}};
}

TEST(LiveCampaign, RecordsEveryPerspectiveForEveryPair) {
  LiveCampaignConfig cfg;
  cfg.pairs = few_pairs();
  const auto out = run_live_campaign(shared_testbed(), cfg);
  EXPECT_EQ(out.stats.attacks, cfg.pairs.size());
  EXPECT_GT(out.stats.updates_sent, 0u);
  for (const auto& [v, a] : cfg.pairs) {
    EXPECT_TRUE(out.results.pair_complete(v, a));
  }
  // Announce + wait + withdraw + settle per attack.
  EXPECT_GE(out.stats.duration, netsim::minutes(10 * 4));
}

TEST(LiveCampaign, DeterministicAcrossRuns) {
  LiveCampaignConfig cfg;
  cfg.pairs = few_pairs();
  const auto a = run_live_campaign(shared_testbed(), cfg);
  const auto b = run_live_campaign(shared_testbed(), cfg);
  for (const auto& [v, adv] : cfg.pairs) {
    for (PerspectiveIndex p = 0; p < a.results.num_perspectives(); ++p) {
      ASSERT_EQ(a.results.outcome(v, adv, p), b.results.outcome(v, adv, p));
    }
  }
}

TEST(LiveCampaign, AgreesWithAnalyticOnTieFreeOutcomes) {
  // Cells where the analytic VictimFirst and AdversaryFirst extremes agree
  // are tie-free; the live measurement must overwhelmingly match there
  // (tiny residual differences come from the live layer merging multi-POP
  // adjacencies per neighbor).
  const auto& tb = shared_testbed();
  LiveCampaignConfig live_cfg;
  live_cfg.pairs = few_pairs();
  const auto live = run_live_campaign(tb, live_cfg);

  FastCampaignConfig vf;
  vf.tie_break = bgp::TieBreakMode::VictimFirst;
  const auto store_vf = run_fast_campaign(tb, vf);
  FastCampaignConfig af;
  af.tie_break = bgp::TieBreakMode::AdversaryFirst;
  const auto store_af = run_fast_campaign(tb, af);

  std::size_t tie_free = 0;
  std::size_t agree = 0;
  for (const auto& [v, a] : live_cfg.pairs) {
    for (PerspectiveIndex p = 0; p < live.results.num_perspectives(); ++p) {
      if (store_vf.outcome(v, a, p) != store_af.outcome(v, a, p)) continue;
      ++tie_free;
      if (live.results.outcome(v, a, p) == store_vf.outcome(v, a, p)) {
        ++agree;
      }
    }
  }
  ASSERT_GT(tie_free, 0u);
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(tie_free), 0.9)
      << agree << "/" << tie_free;
}

TEST(LiveCampaign, SequentialAnnouncementsFavorTheVictim) {
  const auto& tb = shared_testbed();
  LiveCampaignConfig simultaneous;
  simultaneous.pairs = few_pairs();
  const auto sim_out = run_live_campaign(tb, simultaneous);

  LiveCampaignConfig sequential = simultaneous;
  sequential.sequential_announcements = true;
  const auto seq_out = run_live_campaign(tb, sequential);

  std::size_t sim_hijacks = 0;
  std::size_t seq_hijacks = 0;
  for (const auto& [v, a] : simultaneous.pairs) {
    for (PerspectiveIndex p = 0; p < sim_out.results.num_perspectives();
         ++p) {
      sim_hijacks += sim_out.results.hijacked(v, a, p) ? 1 : 0;
      seq_hijacks += seq_out.results.hijacked(v, a, p) ? 1 : 0;
    }
  }
  EXPECT_LE(seq_hijacks, sim_hijacks)
      << "letting the victim settle first can only help it win age ties";
  EXPECT_GT(seq_out.stats.duration, sim_out.stats.duration);
}

TEST(LiveCampaign, PrematureDcvMisattributesWithSlowRouters) {
  const auto& tb = shared_testbed();
  LiveCampaignConfig slow;
  slow.pairs = few_pairs();
  slow.bgp.speaker.mrai = netsim::seconds(45);
  // DCV fires while the announcements are still crossing the first few
  // sessions (one inter-continental hop alone is ~50-80 ms).
  slow.propagation_wait = netsim::milliseconds(100);
  const auto early = run_live_campaign(tb, slow);

  LiveCampaignConfig patient = slow;
  patient.propagation_wait = netsim::minutes(5);
  const auto converged = run_live_campaign(tb, patient);

  std::size_t differences = 0;
  for (const auto& [v, a] : slow.pairs) {
    for (PerspectiveIndex p = 0; p < early.results.num_perspectives(); ++p) {
      if (early.results.outcome(v, a, p) !=
          converged.results.outcome(v, a, p)) {
        ++differences;
      }
    }
  }
  EXPECT_GT(differences, 0u)
      << "a 100 ms DCV snapshot must disagree with the converged state "
         "somewhere — this is exactly why the paper waits 5 minutes";
}

TEST(LiveCampaign, SubPrefixCapturesPerspectives) {
  LiveCampaignConfig cfg;
  cfg.pairs = {{3, 22}};
  cfg.type = bgp::AttackType::SubPrefix;
  const auto out = run_live_campaign(shared_testbed(), cfg);
  std::size_t captured = 0;
  for (PerspectiveIndex p = 0; p < out.results.num_perspectives(); ++p) {
    if (out.results.hijacked(3, 22, p)) ++captured;
  }
  EXPECT_GT(static_cast<double>(captured) /
                static_cast<double>(out.results.num_perspectives()),
            0.9);
}

TEST(LiveCampaign, ForgedOriginWeakerThanPlain) {
  const auto& tb = shared_testbed();
  LiveCampaignConfig plain;
  plain.pairs = few_pairs();
  const auto plain_out = run_live_campaign(tb, plain);
  LiveCampaignConfig forged = plain;
  forged.type = bgp::AttackType::ForgedOriginPrepend;
  const auto forged_out = run_live_campaign(tb, forged);

  std::size_t plain_hits = 0;
  std::size_t forged_hits = 0;
  for (const auto& [v, a] : plain.pairs) {
    for (PerspectiveIndex p = 0; p < plain_out.results.num_perspectives();
         ++p) {
      plain_hits += plain_out.results.hijacked(v, a, p) ? 1 : 0;
      forged_hits += forged_out.results.hijacked(v, a, p) ? 1 : 0;
    }
  }
  EXPECT_LT(forged_hits, plain_hits);
}

}  // namespace
}  // namespace marcopolo::core
