#include "marcopolo/testbed.hpp"

#include <gtest/gtest.h>

#include <set>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

TEST(Testbed, PaperPopulation) {
  const Testbed& tb = shared_testbed();
  EXPECT_EQ(tb.sites().size(), 32u);
  EXPECT_EQ(tb.perspectives().size(), 106u);
  EXPECT_EQ(tb.perspectives_of(topo::CloudProvider::Aws).size(), 27u);
  EXPECT_EQ(tb.perspectives_of(topo::CloudProvider::Gcp).size(), 40u);
  EXPECT_EQ(tb.perspectives_of(topo::CloudProvider::Azure).size(), 39u);
}

TEST(Testbed, PerspectiveIndicesAreDenseAndOrdered) {
  const Testbed& tb = shared_testbed();
  for (std::size_t i = 0; i < tb.perspectives().size(); ++i) {
    EXPECT_EQ(tb.perspectives()[i].index, i);
  }
}

TEST(Testbed, FindPerspectiveByName) {
  const Testbed& tb = shared_testbed();
  const auto idx = tb.find_perspective(topo::CloudProvider::Aws, "us-east-1");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(tb.perspectives()[*idx].region_name, "us-east-1");
  EXPECT_EQ(tb.perspectives()[*idx].provider, topo::CloudProvider::Aws);
  EXPECT_FALSE(
      tb.find_perspective(topo::CloudProvider::Gcp, "us-east-1").has_value());
}

TEST(Testbed, CloudModelsAccessible) {
  const Testbed& tb = shared_testbed();
  EXPECT_EQ(tb.cloud_of(topo::CloudProvider::Gcp).policy(),
            cloud::EgressPolicy::ColdPotato);
  EXPECT_EQ(tb.cloud_of(topo::CloudProvider::Aws).policy(),
            cloud::EgressPolicy::HotPotato);
}

TEST(Testbed, BackbonesAreDistinctAses) {
  const Testbed& tb = shared_testbed();
  std::set<std::uint32_t> backbones;
  for (const auto provider : topo::kPerspectiveProviders) {
    backbones.insert(tb.cloud_of(provider).backbone().value);
  }
  EXPECT_EQ(backbones.size(), 3u);
}

TEST(Testbed, PerspectiveOutcomeMatchesCloudModel) {
  const Testbed& tb = shared_testbed();
  const bgp::ScenarioConfig cfg;
  const bgp::HijackScenario scenario(
      tb.internet().graph(), tb.sites()[0].node, tb.sites()[5].node,
      *netsim::Ipv4Prefix::parse("203.0.113.0/24"), cfg);
  for (const auto& rec : tb.perspectives()) {
    const auto& model = tb.cloud_of(rec.provider);
    EXPECT_EQ(tb.perspective_outcome(rec.index, scenario),
              model.resolve(rec.local_index, scenario));
  }
  EXPECT_THROW((void)tb.perspective_outcome(9999, scenario),
               std::out_of_range);
}

TEST(Testbed, RovDeploymentFlag) {
  TestbedConfig cfg = testing_support::small_testbed_config();
  cfg.rov_fraction = 0.8;
  const Testbed tb(cfg);
  std::size_t enforcing = 0;
  for (std::uint32_t i = 0; i < tb.internet().graph().size(); ++i) {
    if (tb.internet().graph().rov_enforcing(bgp::NodeId{i})) ++enforcing;
  }
  EXPECT_GT(enforcing, 0u);
}

TEST(Testbed, SitesCarryCatalogMetadata) {
  const Testbed& tb = shared_testbed();
  std::set<std::string_view> names;
  for (const auto& site : tb.sites()) {
    EXPECT_TRUE(names.insert(site.name).second);
    EXPECT_FALSE(
        tb.internet().graph().providers_of(site.node).empty());
  }
  EXPECT_TRUE(names.contains("Tokyo"));
  EXPECT_TRUE(names.contains("Frankfurt"));
}

}  // namespace
}  // namespace marcopolo::core
