// Observability must be a pure observer: attaching a MetricsRegistry to
// the campaign (or orchestrator) may not change a single result byte,
// and the merged counters must be a pure function of the workload —
// identical for any worker-thread count. The orchestrator's registry
// counters must mirror its CampaignStats view exactly.
#include "marcopolo/fast_campaign.hpp"
#include "marcopolo/orchestrator.hpp"
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

void expect_stores_identical(const ResultStore& a, const ResultStore& b) {
  ASSERT_EQ(a.num_sites(), b.num_sites());
  ASSERT_EQ(a.num_perspectives(), b.num_perspectives());
  for (PerspectiveIndex p = 0; p < a.num_perspectives(); ++p) {
    const auto lhs = a.hijack_words(p);
    const auto rhs = b.hijack_words(p);
    ASSERT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin()))
        << "hijack words differ at perspective " << p;
  }
  for (SiteIndex v = 0; v < a.num_sites(); ++v) {
    for (SiteIndex adv = 0; adv < a.num_sites(); ++adv) {
      for (PerspectiveIndex p = 0; p < a.num_perspectives(); ++p) {
        ASSERT_EQ(a.outcome(v, adv, p), b.outcome(v, adv, p))
            << "outcome differs at (" << v << "," << adv << "," << p << ")";
      }
    }
  }
}

TEST(CampaignMetrics, RegistryDoesNotChangeResultBytes) {
  // The regression the whole design defends against: metrics on/off (and
  // with any thread count) must leave the ResultStore byte-identical.
  FastCampaignConfig plain;
  plain.threads = 1;
  const ResultStore baseline = run_fast_campaign(shared_testbed(), plain);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::MetricsRegistry registry;
    FastCampaignConfig instrumented;
    instrumented.threads = threads;
    instrumented.metrics = &registry;
    const ResultStore store = run_fast_campaign(shared_testbed(), instrumented);
    expect_stores_identical(baseline, store);
    EXPECT_GT(registry.snapshot().counter("campaign.tasks_executed"), 0u)
        << "registry attached but nothing was counted (threads=" << threads
        << ")";
  }
}

obs::MetricsSnapshot campaign_snapshot(std::size_t threads) {
  obs::MetricsRegistry registry;
  FastCampaignConfig cfg;
  cfg.threads = threads;
  cfg.metrics = &registry;
  (void)run_fast_campaign(shared_testbed(), cfg);
  return registry.snapshot();
}

TEST(CampaignMetrics, CountersAreThreadCountInvariant) {
  const obs::MetricsSnapshot serial = campaign_snapshot(1);
  const auto& tb = shared_testbed();
  const std::uint64_t sites = tb.sites().size();
  const std::uint64_t perspectives = tb.perspectives().size();

  // Closed-form expectations for the default HTTP surface: one task per
  // (announcer, adversary) ordered pair including the diagonal; one
  // propagation per off-diagonal task; one row per perspective per
  // off-diagonal pair.
  EXPECT_EQ(serial.counter("campaign.tasks_executed"), sites * sites);
  EXPECT_EQ(serial.counter("campaign.propagations"), sites * (sites - 1));
  EXPECT_EQ(serial.counter("campaign.rows_recorded"),
            sites * (sites - 1) * perspectives);
  EXPECT_EQ(serial.counter("campaign.dns_dedup_collapses"), 0u)
      << "HTTP surface has one victim per announcer — nothing collapses";
  EXPECT_EQ(serial.counter("campaign.worker_threads"), 1u);

  for (const std::size_t threads : {std::size_t{4}, std::size_t{64}}) {
    const obs::MetricsSnapshot parallel = campaign_snapshot(threads);
    for (const char* name :
         {"campaign.tasks_executed", "campaign.propagations",
          "campaign.rows_recorded", "campaign.dns_dedup_collapses",
          "campaign.total_capture_tasks"}) {
      EXPECT_EQ(parallel.counter(name), serial.counter(name))
          << name << " differs at threads=" << threads;
    }
    // Latency histograms vary in shape but never in sample count.
    const obs::HistogramSnapshot* a = serial.histogram("campaign.task_ns");
    const obs::HistogramSnapshot* b = parallel.histogram("campaign.task_ns");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->count, a->count) << "threads=" << threads;
  }
}

TEST(CampaignMetrics, DnsSurfaceCountsCollapses) {
  const auto& tb = shared_testbed();
  obs::MetricsRegistry registry;
  FastCampaignConfig cfg;
  cfg.surface = AttackSurface::Dns;
  cfg.dns_host_of_victim.resize(tb.sites().size());
  for (SiteIndex v = 0; v < tb.sites().size(); ++v) {
    cfg.dns_host_of_victim[v] = static_cast<SiteIndex>(v % 3);
  }
  cfg.threads = 1;
  cfg.metrics = &registry;
  (void)run_fast_campaign(tb, cfg);
  const obs::MetricsSnapshot snap = registry.snapshot();

  const std::uint64_t sites = tb.sites().size();
  // All victims collapse onto announcers {0, 1, 2}: every propagation
  // beyond 3 announcers x sites adversaries was saved by dedup.
  EXPECT_EQ(snap.counter("campaign.tasks_executed"), 3 * sites);
  EXPECT_EQ(snap.counter("campaign.dns_dedup_collapses"),
            (sites - 3) * sites);
  EXPECT_GT(snap.counter("campaign.total_capture_tasks"), 0u);
}

TEST(CampaignMetrics, ProgressCallbackReachesTotalSerially) {
  const auto& tb = shared_testbed();
  const std::size_t expected_total = tb.sites().size() * tb.sites().size();

  std::vector<std::pair<std::size_t, std::size_t>> calls;
  FastCampaignConfig cfg;
  cfg.threads = 1;
  cfg.progress_every = 10;
  cfg.progress = [&](std::size_t done, std::size_t total) {
    calls.emplace_back(done, total);
  };
  (void)run_fast_campaign(tb, cfg);

  ASSERT_FALSE(calls.empty());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(calls[i].second, expected_total);
    if (i > 0) {
      EXPECT_GT(calls[i].first, calls[i - 1].first);
    }
  }
  EXPECT_EQ(calls.back().first, expected_total)
      << "the final completion must always be reported";
}

TEST(CampaignMetrics, ProgressCallbackIsThreadSafeAndFinal) {
  const auto& tb = shared_testbed();
  const std::size_t expected_total = tb.sites().size() * tb.sites().size();

  std::mutex mutex;
  std::size_t last_done = 0;
  std::size_t call_count = 0;
  FastCampaignConfig cfg;
  cfg.threads = 4;
  cfg.progress_every = 16;
  cfg.progress = [&](std::size_t done, std::size_t total) {
    std::scoped_lock lock(mutex);
    EXPECT_EQ(total, expected_total);
    EXPECT_LE(done, total);
    last_done = std::max(last_done, done);
    ++call_count;
  };
  (void)run_fast_campaign(tb, cfg);
  EXPECT_GT(call_count, 0u);
  EXPECT_EQ(last_done, expected_total);
}

TEST(CampaignMetrics, OrchestratorCountersMirrorStats) {
  // The orchestrator needs a mutable testbed (it drives announcements),
  // so this test owns one instead of borrowing the shared fixture.
  Testbed testbed(testing_support::small_testbed_config());
  obs::MetricsRegistry registry;
  OrchestratorConfig cfg;
  for (SiteIndex v = 0; v < 2; ++v) {
    for (SiteIndex a = 4; a < 6; ++a) cfg.pairs.emplace_back(v, a);
  }
  cfg.loss = netsim::LossModel{0.02, 0.02};  // exercise retries and losses
  cfg.metrics = &registry;
  Orchestrator orchestrator(testbed, cfg);
  const auto out = orchestrator.run();
  const obs::MetricsSnapshot snap = registry.snapshot();

  // CampaignStats is a thin view over the registry: every field must
  // agree with its counter.
  EXPECT_EQ(snap.counter("orchestrator.attacks_completed"),
            out.stats.attacks_completed);
  EXPECT_EQ(snap.counter("orchestrator.attack_attempts"),
            out.stats.attack_attempts);
  EXPECT_EQ(snap.counter("orchestrator.retries"), out.stats.retries);
  EXPECT_EQ(snap.counter("orchestrator.incomplete_attacks"),
            out.stats.incomplete_attacks);
  EXPECT_EQ(snap.counter("orchestrator.announcements"),
            out.stats.announcements);
  EXPECT_EQ(snap.counter("orchestrator.validations"), out.stats.validations);
  EXPECT_EQ(snap.counter("orchestrator.dcv_corroborations_passed"),
            out.stats.dcv_corroborations_passed);
  EXPECT_EQ(snap.counter("orchestrator.perspective_losses"),
            out.stats.perspective_losses);

  // One virtual-duration sample per concluded attempt (retries included).
  const obs::HistogramSnapshot* h =
      snap.histogram("orchestrator.attack_virtual_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, out.stats.attack_attempts);
  EXPECT_GT(h->min, 0u) << "propagation wait makes every attack take "
                           "virtual time";

  // And the registry must not have perturbed the measurements themselves.
  OrchestratorConfig bare = cfg;
  bare.metrics = nullptr;
  Orchestrator control(testbed, bare);
  const auto control_out = control.run();
  expect_stores_identical(out.results, control_out.results);
}

}  // namespace
}  // namespace marcopolo::core
