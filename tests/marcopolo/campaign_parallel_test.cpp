// Determinism contract of the parallel campaign engine: the thread count
// must not change a single byte of the ResultStore. Every scenario is a
// pure function of (announcer, adversary, config) and workers write
// disjoint cells, so threads=1 and threads=N are required to agree
// cell-exactly — packed hijack words AND full outcomes — for every attack
// type and surface.
#include "marcopolo/fast_campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

void expect_stores_identical(const ResultStore& a, const ResultStore& b) {
  ASSERT_EQ(a.num_sites(), b.num_sites());
  ASSERT_EQ(a.num_perspectives(), b.num_perspectives());
  for (PerspectiveIndex p = 0; p < a.num_perspectives(); ++p) {
    const auto lhs = a.hijack_words(p);
    const auto rhs = b.hijack_words(p);
    EXPECT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin()))
        << "hijack words differ at perspective " << p;
  }
  for (SiteIndex v = 0; v < a.num_sites(); ++v) {
    for (SiteIndex adv = 0; adv < a.num_sites(); ++adv) {
      for (PerspectiveIndex p = 0; p < a.num_perspectives(); ++p) {
        ASSERT_EQ(a.outcome(v, adv, p), b.outcome(v, adv, p))
            << "outcome differs at (" << v << "," << adv << "," << p << ")";
      }
    }
  }
}

ResultStore run_with_threads(FastCampaignConfig cfg, std::size_t threads) {
  cfg.threads = threads;
  return run_fast_campaign(shared_testbed(), cfg);
}

TEST(CampaignParallel, EquallySpecificIsThreadCountInvariant) {
  FastCampaignConfig cfg;
  cfg.type = bgp::AttackType::EquallySpecific;
  const auto serial = run_with_threads(cfg, 1);
  const auto parallel = run_with_threads(cfg, 4);
  expect_stores_identical(serial, parallel);
}

TEST(CampaignParallel, ForgedOriginPrependIsThreadCountInvariant) {
  FastCampaignConfig cfg;
  cfg.type = bgp::AttackType::ForgedOriginPrepend;
  const auto serial = run_with_threads(cfg, 1);
  const auto parallel = run_with_threads(cfg, 4);
  expect_stores_identical(serial, parallel);
}

TEST(CampaignParallel, DnsSurfaceIsThreadCountInvariant) {
  // Shared-host DNS surface: the scenario cache groups victims by
  // announcer, which must not perturb results under parallel scheduling.
  const auto& tb = shared_testbed();
  FastCampaignConfig cfg;
  cfg.surface = AttackSurface::Dns;
  cfg.dns_host_of_victim.resize(tb.sites().size());
  for (SiteIndex v = 0; v < tb.sites().size(); ++v) {
    // A few shared hosts so multiple victims collapse onto one announcer.
    cfg.dns_host_of_victim[v] = static_cast<SiteIndex>(v % 3);
  }
  const auto serial = run_with_threads(cfg, 1);
  const auto parallel = run_with_threads(cfg, 4);
  expect_stores_identical(serial, parallel);
}

TEST(CampaignParallel, HardwareConcurrencyDefaultMatchesSerial) {
  FastCampaignConfig cfg;
  const auto serial = run_with_threads(cfg, 1);
  const auto automatic = run_with_threads(cfg, 0);  // hardware concurrency
  expect_stores_identical(serial, automatic);
}

TEST(CampaignParallel, PaperCampaignsAreThreadCountInvariant) {
  const auto& tb = shared_testbed();
  const auto serial =
      run_paper_campaigns(tb, bgp::TieBreakMode::Hashed, 0xCAFE, 1);
  const auto parallel =
      run_paper_campaigns(tb, bgp::TieBreakMode::Hashed, 0xCAFE, 4);
  expect_stores_identical(serial.no_rpki, parallel.no_rpki);
  expect_stores_identical(serial.rpki, parallel.rpki);
}

TEST(CampaignParallel, IncrementalModeIsPureOptimization) {
  // `incremental` swaps a per-pair full propagation for one baseline per
  // announcer plus delta replays; the store must be byte-identical with
  // the flag on or off, for every attack type and any thread count.
  for (const auto type :
       {bgp::AttackType::EquallySpecific, bgp::AttackType::ForgedOriginPrepend,
        bgp::AttackType::SubPrefix}) {
    FastCampaignConfig full;
    full.type = type;
    full.incremental = false;
    FastCampaignConfig inc;
    inc.type = type;
    inc.incremental = true;
    const auto reference = run_with_threads(full, 1);
    expect_stores_identical(reference, run_with_threads(inc, 1));
    expect_stores_identical(reference, run_with_threads(inc, 4));
    expect_stores_identical(reference, run_with_threads(inc, 64));
  }
}

TEST(CampaignParallel, IncrementalModeIsPureOptimizationUnderRov) {
  // Same identity with the ROV filter active in both engines: per-victim
  // prefixes, a ROA per victim, and enforcing transit ASes would surface
  // any divergence in the delta engine's validation path.
  const auto& tb = shared_testbed();
  bgp::RoaRegistry roas;
  FastCampaignConfig proto;
  proto.per_victim_prefix = true;
  for (std::size_t v = 0; v < tb.sites().size(); ++v) {
    roas.add(bgp::Roa{proto.victim_prefix(v),
                      tb.internet().graph().asn_of(tb.sites()[v].node),
                      std::nullopt});
  }
  for (const auto type : {bgp::AttackType::EquallySpecific,
                          bgp::AttackType::ForgedOriginPrepend}) {
    FastCampaignConfig cfg;
    cfg.type = type;
    cfg.per_victim_prefix = true;
    cfg.roas = &roas;
    cfg.incremental = false;
    const auto reference = run_with_threads(cfg, 1);
    cfg.incremental = true;
    expect_stores_identical(reference, run_with_threads(cfg, 1));
    expect_stores_identical(reference, run_with_threads(cfg, 4));
  }
}

TEST(CampaignParallel, OverSubscribedThreadCountStillWorks) {
  // More threads than tasks must clamp, not crash or leave holes.
  FastCampaignConfig cfg;
  const auto serial = run_with_threads(cfg, 1);
  const auto flood = run_with_threads(cfg, 64);
  expect_stores_identical(serial, flood);
  for (SiteIndex v = 0; v < flood.num_sites(); ++v) {
    for (SiteIndex adv = 0; adv < flood.num_sites(); ++adv) {
      if (v == adv) continue;
      EXPECT_TRUE(flood.pair_complete(v, adv));
    }
  }
}

}  // namespace
}  // namespace marcopolo::core
