// The flight recorder must be a pure observer: attaching it to the fast
// campaign or the orchestrator may not change a single result byte, and
// the drained journal's per-perspective provenance must agree with what
// the ResultStore recorded.
#include "marcopolo/fast_campaign.hpp"
#include "marcopolo/orchestrator.hpp"
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

void expect_stores_identical(const ResultStore& a, const ResultStore& b) {
  ASSERT_EQ(a.num_sites(), b.num_sites());
  ASSERT_EQ(a.num_perspectives(), b.num_perspectives());
  for (PerspectiveIndex p = 0; p < a.num_perspectives(); ++p) {
    const auto lhs = a.hijack_words(p);
    const auto rhs = b.hijack_words(p);
    ASSERT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin()))
        << "hijack words differ at perspective " << p;
  }
  for (SiteIndex v = 0; v < a.num_sites(); ++v) {
    for (SiteIndex adv = 0; adv < a.num_sites(); ++adv) {
      for (PerspectiveIndex p = 0; p < a.num_perspectives(); ++p) {
        ASSERT_EQ(a.outcome(v, adv, p), b.outcome(v, adv, p))
            << "outcome differs at (" << v << "," << adv << "," << p << ")";
      }
    }
  }
}

TEST(CampaignFlight, RecordingDoesNotChangeResultBytes) {
  FastCampaignConfig plain;
  plain.threads = 1;
  const ResultStore baseline = run_fast_campaign(shared_testbed(), plain);

  const auto& tb = shared_testbed();
  const std::size_t sites = tb.sites().size();
  const std::size_t perspectives = tb.perspectives().size();

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::FlightRecorder recorder;
    FastCampaignConfig recorded;
    recorded.threads = threads;
    recorded.recorder = &recorder;
    const ResultStore store = run_fast_campaign(shared_testbed(), recorded);
    expect_stores_identical(baseline, store);

    const obs::FlightJournal journal = recorder.drain();
    // Every task produces one span (diagonal tasks included); one verdict
    // per off-diagonal pair per perspective.
    EXPECT_EQ(journal.task_count(), sites * sites)
        << "threads=" << threads;
    EXPECT_EQ(journal.verdict_count(), sites * (sites - 1) * perspectives)
        << "threads=" << threads;
    EXPECT_GE(journal.workers.size(), 1u);
    EXPECT_LE(journal.workers.size(), threads);
    EXPECT_GT(journal.epoch_ns, 0u);
  }
}

TEST(CampaignFlight, VerdictProvenanceMatchesStore) {
  obs::FlightRecorder recorder;
  FastCampaignConfig cfg;
  cfg.threads = 1;
  cfg.recorder = &recorder;
  const ResultStore store = run_fast_campaign(shared_testbed(), cfg);
  const obs::FlightJournal journal = recorder.drain();

  std::size_t adversary_routed = 0;
  std::size_t contested = 0;
  for (const auto& lane : journal.workers) {
    for (const obs::VerdictRecord& v : lane.verdicts) {
      // The explained resolution shares the selection code path with the
      // plain one, so every journal outcome must equal the stored one.
      EXPECT_EQ(static_cast<std::uint8_t>(
                    store.outcome(v.victim, v.adversary, v.perspective)),
                v.outcome)
          << "verdict disagrees with store at (" << v.victim << ","
          << v.adversary << "," << v.perspective << ")";
      if (v.contested) {
        ++contested;
        // Contested verdicts carry a real decision-process step.
        EXPECT_LE(static_cast<int>(v.decided_by),
                  static_cast<int>(obs::VerdictStep::IngressPop));
      } else {
        EXPECT_TRUE(v.decided_by == obs::VerdictStep::Unopposed ||
                    v.decided_by == obs::VerdictStep::MoreSpecific)
            << "uncontested verdict claims step "
            << to_cstring(v.decided_by);
      }
      if (v.outcome == 2) ++adversary_routed;
    }
  }
  EXPECT_EQ(adversary_routed, journal.adversary_verdict_count());
  EXPECT_GT(adversary_routed, 0u) << "equally-specific hijacks capture "
                                     "some perspectives";
  EXPECT_GT(contested, 0u) << "both origins reach most ingress ASes";
}

TEST(CampaignFlight, LiveCountersTrackJournal) {
  obs::FlightRecorder recorder;
  FastCampaignConfig cfg;
  cfg.threads = 4;
  cfg.recorder = &recorder;
  (void)run_fast_campaign(shared_testbed(), cfg);

  // The live (progress-reporter) counters and the drained journal are
  // fed by the same emit sites and must agree exactly.
  const std::uint64_t live_verdicts = recorder.verdicts();
  const std::uint64_t live_adversary = recorder.adversary_verdicts();
  const obs::FlightJournal journal = recorder.drain();
  EXPECT_EQ(live_verdicts, journal.verdict_count());
  EXPECT_EQ(live_adversary, journal.adversary_verdict_count());
}

TEST(CampaignFlight, OrchestratorRecordingIsPureObserver) {
  // The orchestrator needs a mutable testbed (it drives announcements),
  // so this test owns one instead of borrowing the shared fixture.
  Testbed testbed(testing_support::small_testbed_config());
  obs::FlightRecorder recorder;
  OrchestratorConfig cfg;
  for (SiteIndex v = 0; v < 2; ++v) {
    for (SiteIndex a = 4; a < 6; ++a) cfg.pairs.emplace_back(v, a);
  }
  cfg.recorder = &recorder;
  Orchestrator orchestrator(testbed, cfg);
  const auto out = orchestrator.run();
  const obs::FlightJournal journal = recorder.drain();

  OrchestratorConfig bare = cfg;
  bare.recorder = nullptr;
  Orchestrator control(testbed, bare);
  const auto control_out = control.run();
  expect_stores_identical(out.results, control_out.results);

  // One attack span per concluded attempt, phases in virtual-time order.
  ASSERT_EQ(journal.attacks.size(), out.stats.attack_attempts);
  for (const obs::AttackSpanRecord& a : journal.attacks) {
    EXPECT_LE(a.announce_us, a.dcv_us);
    EXPECT_LE(a.dcv_us, a.conclude_us);
    EXPECT_GT(a.conclude_us, a.announce_us)
        << "propagation wait makes every attack take virtual time";
  }
  // Each attempt fans out to every configured MPIC system.
  EXPECT_GE(journal.quorums.size(), out.stats.attack_attempts);
  for (std::size_t i = 1; i < journal.quorums.size(); ++i) {
    EXPECT_GE(journal.quorums[i].virtual_us,
              journal.quorums[i - 1].virtual_us)
        << "drain() sorts quorum records by virtual time";
  }
  // Per-perspective provenance for every attempt, agreeing with the
  // recorded outcomes wherever the store has one.
  EXPECT_EQ(journal.verdict_count(),
            out.stats.attack_attempts * testbed.perspectives().size());
  for (const auto& lane : journal.workers) {
    for (const obs::VerdictRecord& v : lane.verdicts) {
      const auto stored =
          out.results.outcome(v.victim, v.adversary, v.perspective);
      if (stored != bgp::OriginReached::None) {
        EXPECT_EQ(static_cast<std::uint8_t>(stored), v.outcome);
      }
    }
  }
}

}  // namespace
}  // namespace marcopolo::core
