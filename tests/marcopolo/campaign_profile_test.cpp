// The sampling profiler must be a pure observer, exactly like metrics,
// the flight recorder, and hardware counters: profiling on, off, or
// degraded to unavailable may not change a single result byte, counter
// value, or journal record. This mirrors campaign_counters_test and is
// part of the ASan/UBSan CI job (start/stop/drain under a real
// campaign).
#include "marcopolo/fast_campaign.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/symbolize.hpp"
#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

std::string csv_bytes(const ResultStore& store) {
  std::ostringstream out;
  store.save_csv(out);
  return out.str();
}

TEST(CampaignProfile, ProfilerLeavesResultBytesIdentical) {
  FastCampaignConfig plain;
  plain.threads = 1;
  const std::string baseline =
      csv_bytes(run_fast_campaign(shared_testbed(), plain));

  obs::SamplingProfiler profiler;  // available or degraded — both legal
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    FastCampaignConfig profiled;
    profiled.threads = threads;
    profiled.profiler = &profiler;
    const std::string with_profiler =
        csv_bytes(run_fast_campaign(shared_testbed(), profiled));
    EXPECT_EQ(with_profiler, baseline)
        << "profiler changed the store (threads=" << threads << ")";
  }
  // The profile itself is a side artifact, never part of the store.
  const obs::RawProfile raw = profiler.drain();
  if (obs::SamplingProfiler::probe()) {
    EXPECT_TRUE(raw.available);
  } else {
    EXPECT_FALSE(raw.available);
    EXPECT_EQ(raw.sample_count(), 0u);
  }
}

TEST(CampaignProfile, CounterSetIdenticalWithProfilerOnOrOff) {
  // Deterministic metrics counters (task counts, propagation totals, ...)
  // must not shift by even one unit when workers run under SIGPROF.
  const auto counters_with = [](obs::SamplingProfiler* profiler) {
    obs::MetricsRegistry registry;
    FastCampaignConfig cfg;
    cfg.threads = 1;
    cfg.metrics = &registry;
    cfg.profiler = profiler;
    (void)run_fast_campaign(shared_testbed(), cfg);
    return registry.snapshot().counters;
  };

  const auto off = counters_with(nullptr);
  obs::SamplingProfiler profiler;
  const auto on = counters_with(&profiler);
  EXPECT_EQ(on, off) << "profiler perturbed the metrics counter set";
  for (const auto& [name, value] : on) {
    EXPECT_EQ(name.find("profile"), std::string::npos)
        << name << "=" << value
        << ": the profiler must not intern metrics of its own";
  }
}

TEST(CampaignProfile, JournalRecordsIdenticalWithProfilerOnOrOff) {
  // The flight journal's deterministic content — verdict records, task
  // counts, lane structure — is the same with and without a profiler
  // attached to the same workers.
  const auto journal_with = [](obs::SamplingProfiler* profiler) {
    obs::FlightRecorder recorder;
    FastCampaignConfig cfg;
    cfg.threads = 1;
    cfg.recorder = &recorder;
    cfg.profiler = profiler;
    (void)run_fast_campaign(shared_testbed(), cfg);
    return recorder.drain();
  };

  const obs::FlightJournal off = journal_with(nullptr);
  obs::SamplingProfiler profiler;
  const obs::FlightJournal on = journal_with(&profiler);

  EXPECT_EQ(on.task_count(), off.task_count());
  EXPECT_EQ(on.verdict_count(), off.verdict_count());
  EXPECT_EQ(on.adversary_verdict_count(), off.adversary_verdict_count());
  EXPECT_EQ(on.workers.size(), off.workers.size());
  ASSERT_EQ(on.workers.size(), off.workers.size());
  for (std::size_t lane = 0; lane < on.workers.size(); ++lane) {
    const auto& a = on.workers[lane];
    const auto& b = off.workers[lane];
    ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
    for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
      EXPECT_EQ(a.verdicts[i].victim, b.verdicts[i].victim);
      EXPECT_EQ(a.verdicts[i].adversary, b.verdicts[i].adversary);
      EXPECT_EQ(a.verdicts[i].perspective, b.verdicts[i].perspective);
      EXPECT_EQ(a.verdicts[i].outcome, b.verdicts[i].outcome);
    }
  }
}

TEST(CampaignProfile, CampaignSamplesAttributeToWorkers) {
  // When the host can profile at all, a profiled serial campaign must
  // actually produce samples attributed to at least one thread — the
  // attach/detach plumbing in the worker loop is live, not decorative.
  if (!obs::SamplingProfiler::probe()) {
    GTEST_SKIP() << "profiler unavailable: "
                 << obs::SamplingProfiler::probe_reason();
  }
  obs::SamplingProfiler profiler;
  FastCampaignConfig cfg;
  cfg.threads = 2;
  cfg.profiler = &profiler;
  (void)run_fast_campaign(shared_testbed(), cfg);

  const obs::CpuProfile profile = obs::symbolize_profile(profiler.drain());
  ASSERT_TRUE(profile.available);
  EXPECT_GT(profile.samples, 0u)
      << "a multi-hundred-ms campaign at 997 Hz must collect samples";
  EXPECT_FALSE(profile.symbols.empty());
  EXPECT_FALSE(profile.stacks.empty());
  std::uint64_t self_sum = 0;
  for (const obs::HotSymbol& s : profile.symbols) self_sum += s.self;
  EXPECT_EQ(self_sum, profile.samples);
}

}  // namespace
}  // namespace marcopolo::core
