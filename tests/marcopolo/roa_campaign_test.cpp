// Tests for the §4.4.1 extension: campaigns with real per-victim ROAs and
// the two independent ROV knobs (transit fraction, cloud edge).
#include <gtest/gtest.h>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

TEST(VictimPrefix, DistinctPerVictimAndCanonical) {
  FastCampaignConfig cfg;
  cfg.per_victim_prefix = true;
  std::set<netsim::Ipv4Prefix> seen;
  for (std::size_t v = 0; v < 32; ++v) {
    const auto p = cfg.victim_prefix(v);
    EXPECT_EQ(p.length(), 24);
    EXPECT_TRUE(seen.insert(p).second) << p.to_string();
  }
  // Disabled: everyone shares the base prefix.
  cfg.per_victim_prefix = false;
  EXPECT_EQ(cfg.victim_prefix(0), cfg.victim_prefix(31));
}

class RoaCampaign : public ::testing::Test {
 protected:
  RoaCampaign() {
    core::TestbedConfig tb_cfg = testing_support::small_testbed_config();
    tb_cfg.rov_fraction = 1.0;  // every transit AS enforces
    testbed_ = std::make_unique<Testbed>(tb_cfg);

    FastCampaignConfig proto;
    proto.per_victim_prefix = true;
    for (std::size_t v = 0; v < testbed_->sites().size(); ++v) {
      const auto asn =
          testbed_->internet().graph().asn_of(testbed_->sites()[v].node);
      roas_.add(bgp::Roa{proto.victim_prefix(v), asn, std::nullopt});
    }
  }

  double capture(const ResultStore& store) const {
    std::size_t hijacked = 0;
    std::size_t total = 0;
    const auto n = static_cast<SiteIndex>(store.num_sites());
    for (SiteIndex v = 0; v < n; ++v) {
      for (SiteIndex a = 0; a < n; ++a) {
        if (v == a) continue;
        for (PerspectiveIndex p = 0; p < store.num_perspectives(); ++p) {
          ++total;
          if (store.hijacked(v, a, p)) ++hijacked;
        }
      }
    }
    return static_cast<double>(hijacked) / static_cast<double>(total);
  }

  std::unique_ptr<Testbed> testbed_;
  bgp::RoaRegistry roas_;
};

TEST_F(RoaCampaign, FullRovEliminatesPlainHijacks) {
  FastCampaignConfig cfg;
  cfg.per_victim_prefix = true;
  cfg.roas = &roas_;
  cfg.cloud_edge_rov = false;  // transit filtering alone
  const auto store = run_fast_campaign(*testbed_, cfg);
  EXPECT_LT(capture(store), 0.01)
      << "with every transit AS enforcing ROV, the origin-invalid plain "
         "hijack must not reach perspectives";
}

TEST_F(RoaCampaign, CloudEdgeRovAloneProtectsPerspectives) {
  core::TestbedConfig tb_cfg = testing_support::small_testbed_config();
  tb_cfg.rov_fraction = 0.0;  // no transit filtering at all
  Testbed lax_testbed(tb_cfg);

  FastCampaignConfig cfg;
  cfg.per_victim_prefix = true;
  cfg.roas = &roas_;
  cfg.cloud_edge_rov = true;
  const auto store = run_fast_campaign(lax_testbed, cfg);
  EXPECT_DOUBLE_EQ(capture(store), 0.0)
      << "cloud edges filtering invalid routes protect every perspective";

  cfg.cloud_edge_rov = false;
  const auto unprotected = run_fast_campaign(lax_testbed, cfg);
  EXPECT_GT(capture(unprotected), 0.3)
      << "without any ROV the plain hijack must capture broadly";
}

TEST_F(RoaCampaign, ForgedOriginIsRovImmune) {
  FastCampaignConfig forged;
  forged.type = bgp::AttackType::ForgedOriginPrepend;
  forged.per_victim_prefix = true;
  forged.roas = &roas_;
  forged.cloud_edge_rov = true;
  const auto with_roas = run_fast_campaign(*testbed_, forged);

  FastCampaignConfig no_roas = forged;
  no_roas.roas = nullptr;
  const auto without = run_fast_campaign(*testbed_, no_roas);
  EXPECT_DOUBLE_EQ(capture(with_roas), capture(without))
      << "a forged-origin announcement is RPKI-Valid, so neither transit "
         "nor cloud-edge ROV may change any outcome";
}

TEST_F(RoaCampaign, MaxLenReenablesSubPrefixGlobally) {
  FastCampaignConfig proto;
  proto.per_victim_prefix = true;
  bgp::RoaRegistry maxlen;
  for (std::size_t v = 0; v < testbed_->sites().size(); ++v) {
    const auto asn =
        testbed_->internet().graph().asn_of(testbed_->sites()[v].node);
    maxlen.add(bgp::Roa{proto.victim_prefix(v), asn, std::uint8_t{25}});
  }

  FastCampaignConfig strict_cfg = proto;
  strict_cfg.type = bgp::AttackType::SubPrefix;
  strict_cfg.roas = &roas_;
  const auto strict_store = run_fast_campaign(*testbed_, strict_cfg);

  FastCampaignConfig maxlen_cfg = strict_cfg;
  maxlen_cfg.roas = &maxlen;
  const auto maxlen_store = run_fast_campaign(*testbed_, maxlen_cfg);

  // RFC 9319: strict ROAs make the /25 Invalid (blocked under full ROV);
  // MAX_LEN /25 makes it Valid (globally effective again).
  EXPECT_LT(capture(strict_store), 0.01);
  EXPECT_GT(capture(maxlen_store), 0.95);
}

}  // namespace
}  // namespace marcopolo::core
