#include "marcopolo/attack_plane.hpp"

#include <gtest/gtest.h>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_testbed;

class AttackPlaneTest : public ::testing::Test {
 protected:
  AttackPlaneTest()
      : tb(shared_testbed()),
        plane(tb),
        scenario(tb.internet().graph(), tb.sites()[0].node, tb.sites()[9].node,
                 *netsim::Ipv4Prefix::parse("100.64.0.0/24"),
                 bgp::ScenarioConfig{}) {}

  const Testbed& tb;
  AttackPlane plane;
  bgp::HijackScenario scenario;

  static constexpr netsim::EndpointId kVictimEp{100};
  static constexpr netsim::EndpointId kAdversaryEp{101};
};

TEST_F(AttackPlaneTest, StaticForwardingByAddressOwnership) {
  plane.register_static(netsim::EndpointId{7}, netsim::Ipv4Addr(1, 2, 3, 4));
  EXPECT_EQ(plane.resolve(netsim::EndpointId{0}, netsim::Ipv4Addr(1, 2, 3, 4)),
            netsim::EndpointId{7});
  EXPECT_FALSE(plane.resolve(netsim::EndpointId{0},
                             netsim::Ipv4Addr(9, 9, 9, 9)).valid());
}

TEST_F(AttackPlaneTest, AttackRoutesSitesByScenario) {
  // Register every site endpoint; ids are synthetic.
  for (std::uint16_t s = 0; s < tb.sites().size(); ++s) {
    plane.register_site(netsim::EndpointId{200u + s}, s,
                        netsim::Ipv4Addr(10, 2, 0,
                                         static_cast<std::uint8_t>(s + 1)));
  }
  const auto target = scenario.target_address();
  plane.begin_attack(target, AttackPlane::ActiveAttack{&scenario, nullptr,
                                                       kVictimEp,
                                                       kAdversaryEp});

  for (std::uint16_t s = 0; s < tb.sites().size(); ++s) {
    const auto got = plane.resolve(netsim::EndpointId{200u + s}, target);
    const auto expected = scenario.reached(tb.sites()[s].node);
    if (expected == bgp::OriginReached::Victim) {
      EXPECT_EQ(got, kVictimEp) << "site " << s;
    } else if (expected == bgp::OriginReached::Adversary) {
      EXPECT_EQ(got, kAdversaryEp) << "site " << s;
    } else {
      EXPECT_FALSE(got.valid());
    }
  }
  plane.end_attack(target);
  EXPECT_EQ(plane.active_attacks(), 0u);
}

TEST_F(AttackPlaneTest, AttackRoutesPerspectivesByCloudModel) {
  for (std::uint16_t p = 0; p < tb.perspectives().size(); ++p) {
    plane.register_perspective(
        netsim::EndpointId{400u + p}, p,
        netsim::Ipv4Addr(10, 3, static_cast<std::uint8_t>(p / 200),
                         static_cast<std::uint8_t>(p % 200 + 1)));
  }
  const auto target = scenario.target_address();
  plane.begin_attack(target, AttackPlane::ActiveAttack{&scenario, nullptr,
                                                       kVictimEp,
                                                       kAdversaryEp});
  std::size_t adversary_count = 0;
  for (std::uint16_t p = 0; p < tb.perspectives().size(); ++p) {
    const auto got = plane.resolve(netsim::EndpointId{400u + p}, target);
    const auto expected = tb.perspective_outcome(p, scenario);
    if (expected == bgp::OriginReached::Adversary) {
      EXPECT_EQ(got, kAdversaryEp);
      ++adversary_count;
    } else if (expected == bgp::OriginReached::Victim) {
      EXPECT_EQ(got, kVictimEp);
    }
  }
  // Sanity: the hijack affects some but not all perspectives.
  EXPECT_GT(adversary_count, 0u);
  EXPECT_LT(adversary_count, tb.perspectives().size());
}

TEST_F(AttackPlaneTest, UnknownSourceReachesVictimDuringAttack) {
  const auto target = scenario.target_address();
  plane.begin_attack(target, AttackPlane::ActiveAttack{&scenario, nullptr,
                                                       kVictimEp,
                                                       kAdversaryEp});
  EXPECT_EQ(plane.resolve(netsim::EndpointId{9999}, target), kVictimEp);
}

TEST_F(AttackPlaneTest, RejectsDoubleAttackOnSameTarget) {
  const auto target = scenario.target_address();
  plane.begin_attack(target, AttackPlane::ActiveAttack{&scenario, nullptr,
                                                       kVictimEp,
                                                       kAdversaryEp});
  EXPECT_THROW(plane.begin_attack(target,
                                  AttackPlane::ActiveAttack{
                                      &scenario, nullptr, kVictimEp,
                                      kAdversaryEp}),
               std::logic_error);
}

TEST_F(AttackPlaneTest, RejectsAttackWithoutScenario) {
  EXPECT_THROW(plane.begin_attack(netsim::Ipv4Addr(1, 1, 1, 1),
                                  AttackPlane::ActiveAttack{
                                      nullptr, nullptr, kVictimEp,
                                      kAdversaryEp}),
               std::invalid_argument);
}

TEST_F(AttackPlaneTest, ConcurrentAttacksOnDistinctTargets) {
  bgp::HijackScenario second(tb.internet().graph(), tb.sites()[3].node,
                             tb.sites()[12].node,
                             *netsim::Ipv4Prefix::parse("100.64.1.0/24"),
                             bgp::ScenarioConfig{});
  plane.begin_attack(scenario.target_address(),
                     AttackPlane::ActiveAttack{&scenario, nullptr, kVictimEp,
                                               kAdversaryEp});
  plane.begin_attack(second.target_address(),
                     AttackPlane::ActiveAttack{&second, nullptr,
                                               netsim::EndpointId{102},
                                               netsim::EndpointId{103}});
  EXPECT_EQ(plane.active_attacks(), 2u);
  EXPECT_EQ(plane.resolve(netsim::EndpointId{1}, second.target_address()),
            netsim::EndpointId{102});
  plane.end_attack(scenario.target_address());
  plane.end_attack(second.target_address());
}

}  // namespace
}  // namespace marcopolo::core
