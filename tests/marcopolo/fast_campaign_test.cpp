#include "marcopolo/fast_campaign.hpp"

#include <gtest/gtest.h>

#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

using testing_support::shared_dataset;
using testing_support::shared_testbed;

TEST(FastCampaign, CoversEveryOrderedPair) {
  const auto& store = shared_dataset().no_rpki;
  const auto n = static_cast<SiteIndex>(store.num_sites());
  for (SiteIndex v = 0; v < n; ++v) {
    for (SiteIndex a = 0; a < n; ++a) {
      if (v == a) continue;
      EXPECT_TRUE(store.pair_complete(v, a)) << "pair " << v << "," << a;
    }
  }
}

TEST(FastCampaign, DimensionsMatchTestbed) {
  const auto& store = shared_dataset().no_rpki;
  EXPECT_EQ(store.num_sites(), shared_testbed().sites().size());
  EXPECT_EQ(store.num_perspectives(),
            shared_testbed().perspectives().size());
}

TEST(FastCampaign, DeterministicAcrossRuns) {
  const auto again = run_fast_campaign(shared_testbed(), FastCampaignConfig{});
  const auto& first = shared_dataset().no_rpki;
  const auto n = static_cast<SiteIndex>(first.num_sites());
  for (SiteIndex v = 0; v < n; ++v) {
    for (SiteIndex a = 0; a < n; ++a) {
      if (v == a) continue;
      for (PerspectiveIndex p = 0; p < first.num_perspectives(); ++p) {
        ASSERT_EQ(first.outcome(v, a, p), again.outcome(v, a, p));
      }
    }
  }
}

TEST(FastCampaign, ForgedOriginHijacksNoMorePerspectivesOverall) {
  // Per-pair the coin can flip either way, but in aggregate the +1 AS hop
  // must strictly reduce the adversary's capture.
  const auto& plain = shared_dataset().no_rpki;
  const auto& forged = shared_dataset().rpki;
  std::size_t plain_hijacks = 0;
  std::size_t forged_hijacks = 0;
  const auto n = static_cast<SiteIndex>(plain.num_sites());
  for (SiteIndex v = 0; v < n; ++v) {
    for (SiteIndex a = 0; a < n; ++a) {
      if (v == a) continue;
      for (PerspectiveIndex p = 0; p < plain.num_perspectives(); ++p) {
        plain_hijacks += plain.hijacked(v, a, p) ? 1 : 0;
        forged_hijacks += forged.hijacked(v, a, p) ? 1 : 0;
      }
    }
  }
  EXPECT_LT(forged_hijacks, plain_hijacks);
  EXPECT_GT(plain_hijacks, 0u);
}

TEST(FastCampaign, SubPrefixCapturesEverything) {
  FastCampaignConfig cfg;
  cfg.type = bgp::AttackType::SubPrefix;
  const auto store = run_fast_campaign(shared_testbed(), cfg);
  const auto n = static_cast<SiteIndex>(store.num_sites());
  std::size_t hijacked = 0;
  std::size_t total = 0;
  for (SiteIndex v = 0; v < n; ++v) {
    for (SiteIndex a = 0; a < n; ++a) {
      if (v == a) continue;
      for (PerspectiveIndex p = 0; p < store.num_perspectives(); ++p) {
        ++total;
        if (store.hijacked(v, a, p)) ++hijacked;
      }
    }
  }
  // MPIC's documented blind spot: sub-prefix hijacks are global.
  EXPECT_GT(static_cast<double>(hijacked) / static_cast<double>(total), 0.95);
}

TEST(FastCampaign, TieBreakSeedChangesHashedOutcomes) {
  FastCampaignConfig a;
  a.tie_break_seed = 1;
  FastCampaignConfig b;
  b.tie_break_seed = 2;
  const auto sa = run_fast_campaign(shared_testbed(), a);
  const auto sb = run_fast_campaign(shared_testbed(), b);
  std::size_t differences = 0;
  const auto n = static_cast<SiteIndex>(sa.num_sites());
  for (SiteIndex v = 0; v < n; ++v) {
    for (SiteIndex adv = 0; adv < n; ++adv) {
      if (v == adv) continue;
      for (PerspectiveIndex p = 0; p < sa.num_perspectives(); ++p) {
        if (sa.outcome(v, adv, p) != sb.outcome(v, adv, p)) ++differences;
      }
    }
  }
  EXPECT_GT(differences, 0u);
}

}  // namespace
}  // namespace marcopolo::core
