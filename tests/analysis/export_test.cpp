#include "analysis/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "testbed_fixture.hpp"

namespace marcopolo::analysis {
namespace {

using testing_support::shared_testbed;

RankedDeployment sample_deployment() {
  const auto& tb = shared_testbed();
  RankedDeployment rd;
  rd.spec.name = "sample";
  const auto aws = tb.perspectives_of(topo::CloudProvider::Aws);
  rd.spec.remotes = {aws[0], aws[1], aws[2]};
  rd.spec.primary = aws[3];
  rd.spec.policy = mpic::QuorumPolicy(3, 1, true);
  rd.score = {0.9, 0.8};
  return rd;
}

TEST(JsonExport, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonExport, DeploymentIncludesAllFields) {
  const auto json = deployment_to_json(sample_deployment(), shared_testbed());
  EXPECT_NE(json.find("\"name\":\"sample\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"(primary + 3, N-1)\""),
            std::string::npos);
  EXPECT_NE(json.find("\"primary\":\"AWS:"), std::string::npos);
  EXPECT_NE(json.find("\"remotes\":[\"AWS:"), std::string::npos);
  EXPECT_NE(json.find("\"median\":0.9"), std::string::npos);
  EXPECT_NE(json.find("\"average\":0.8"), std::string::npos);
}

TEST(JsonExport, RankedListIsWellFormedArray) {
  std::vector<RankedDeployment> ranked{sample_deployment(),
                                       sample_deployment()};
  ranked[1].spec.primary.reset();
  ranked[1].spec.policy = mpic::QuorumPolicy(3, 1, false);
  std::ostringstream out;
  write_ranked_json(out, ranked, shared_testbed());
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // Two entries separated by a comma, second without a primary field.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_NE(json.find("},\n"), std::string::npos);
}

TEST(JsonExport, EvaluationIncludesPerVictimMap) {
  const auto& tb = shared_testbed();
  const auto spec = sample_deployment().spec;
  ResilienceSummary summary;
  summary.median = 0.9;
  summary.average = 0.85;
  summary.p25 = 0.7;
  summary.p5 = 0.5;
  summary.per_victim.assign(tb.sites().size(), 0.9);
  std::ostringstream out;
  write_evaluation_json(out, spec, summary, tb);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"Tokyo\":0.9"), std::string::npos);
  EXPECT_NE(json.find("\"p25\":0.7"), std::string::npos);
  // One entry per site.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(json.begin(), json.end(), ':')) >=
                tb.sites().size(),
            true);
}

}  // namespace
}  // namespace marcopolo::analysis
