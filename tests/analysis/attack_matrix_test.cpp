// The attack x defense matrix artifact: JSON writer/reader round-trip,
// reader error policy, renderer shape, and one tiny end-to-end build.
#include "analysis/attack_matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

namespace marcopolo::analysis {
namespace {

AttackMatrixReport sample_report() {
  AttackMatrixReport report;
  report.sites = 4;
  report.perspectives = 9;
  report.quorum_required = 2;
  report.attacks = {bgp::AttackType::EquallySpecific,
                    bgp::AttackType::RouteLeak};
  report.rov_levels = {0.0, 1.0};
  report.otc_levels = {0.5};
  for (std::size_t ai = 0; ai < report.attacks.size(); ++ai) {
    for (std::size_t ri = 0; ri < report.rov_levels.size(); ++ri) {
      AttackMatrixCell cell;
      cell.attack = report.attacks[ai];
      cell.rov_fraction = report.rov_levels[ri];
      cell.otc_fraction = report.otc_levels[0];
      cell.hijack_rate = 0.125 * static_cast<double>(ai + ri);
      cell.single_median = 50.0 + static_cast<double>(ai);
      cell.single_average = 51.5;
      cell.quorum_median = 75.0 + static_cast<double>(ri);
      cell.quorum_average = 76.25;
      report.cells.push_back(cell);
    }
  }
  return report;
}

TEST(AttackMatrixJson, RoundTripPreservesEveryField) {
  const AttackMatrixReport report = sample_report();
  std::stringstream buffer;
  write_attack_matrix_json(buffer, report);
  const ReadAttackMatrix read = read_attack_matrix_json(buffer);
  ASSERT_TRUE(read.ok) << read.error;

  const AttackMatrixReport& r = read.report;
  EXPECT_EQ(r.sites, report.sites);
  EXPECT_EQ(r.perspectives, report.perspectives);
  EXPECT_EQ(r.quorum_required, report.quorum_required);
  EXPECT_EQ(r.attacks, report.attacks);
  EXPECT_EQ(r.rov_levels, report.rov_levels);
  EXPECT_EQ(r.otc_levels, report.otc_levels);
  ASSERT_EQ(r.cells.size(), report.cells.size());
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    EXPECT_EQ(r.cells[i].attack, report.cells[i].attack) << "cell " << i;
    EXPECT_DOUBLE_EQ(r.cells[i].rov_fraction, report.cells[i].rov_fraction);
    EXPECT_DOUBLE_EQ(r.cells[i].otc_fraction, report.cells[i].otc_fraction);
    EXPECT_DOUBLE_EQ(r.cells[i].hijack_rate, report.cells[i].hijack_rate);
    EXPECT_DOUBLE_EQ(r.cells[i].single_median, report.cells[i].single_median);
    EXPECT_DOUBLE_EQ(r.cells[i].single_average,
                     report.cells[i].single_average);
    EXPECT_DOUBLE_EQ(r.cells[i].quorum_median, report.cells[i].quorum_median);
    EXPECT_DOUBLE_EQ(r.cells[i].quorum_average,
                     report.cells[i].quorum_average);
  }
}

TEST(AttackMatrixJson, EchoOfEchoIsByteStable) {
  // mpinspect matrix --json re-emits what it parsed; the second echo must
  // equal the first so artifacts can be piped through tooling repeatedly.
  std::stringstream first;
  write_attack_matrix_json(first, sample_report());
  const ReadAttackMatrix read = read_attack_matrix_json(first);
  ASSERT_TRUE(read.ok);
  std::stringstream second;
  write_attack_matrix_json(second, read.report);
  std::stringstream once;
  write_attack_matrix_json(once, sample_report());
  EXPECT_EQ(second.str(), once.str());
}

TEST(AttackMatrixJson, ReaderRejectsMalformedDocuments) {
  const auto read_str = [](const std::string& text) {
    std::stringstream in(text);
    return read_attack_matrix_json(in);
  };

  EXPECT_FALSE(read_str("not json").ok);
  EXPECT_FALSE(read_str("[1, 2]").ok);

  const ReadAttackMatrix future = read_str("{\"matrix_schema\": 99}");
  ASSERT_FALSE(future.ok);
  EXPECT_NE(future.error.find("matrix_schema"), std::string::npos);

  // Unknown attack name in the attacks list.
  const ReadAttackMatrix bad_name = read_str(
      "{\"matrix_schema\": 1, \"attacks\": [\"warp-drive\"],"
      " \"rov_levels\": [0], \"otc_levels\": [0], \"cells\": []}");
  ASSERT_FALSE(bad_name.ok);
  EXPECT_NE(bad_name.error.find("warp-drive"), std::string::npos);

  // Cell count disagreeing with the attacks x rov x otc grid.
  const ReadAttackMatrix short_grid = read_str(
      "{\"matrix_schema\": 1, \"attacks\": [\"route-leak\"],"
      " \"rov_levels\": [0, 1], \"otc_levels\": [0], \"cells\": []}");
  ASSERT_FALSE(short_grid.ok);
  EXPECT_NE(short_grid.error.find("cell count"), std::string::npos);

  // A cell naming an attack the registry does not know.
  const ReadAttackMatrix bad_cell = read_str(
      "{\"matrix_schema\": 1, \"attacks\": [\"route-leak\"],"
      " \"rov_levels\": [0], \"otc_levels\": [0],"
      " \"cells\": [{\"attack\": \"nope\", \"rov\": 0, \"otc\": 0}]}");
  EXPECT_FALSE(bad_cell.ok);
}

TEST(AttackMatrixRender, TablesCarryAttackNamesAndDefenseAxes) {
  const std::string text = render_attack_matrix(sample_report());
  EXPECT_NE(text.find("[equally-specific]"), std::string::npos);
  EXPECT_NE(text.find("[route-leak]"), std::string::npos);
  EXPECT_NE(text.find("ROV \\ OTC"), std::string::npos);
  EXPECT_NE(text.find("rov off"), std::string::npos);
  EXPECT_NE(text.find("rov full"), std::string::npos);
  EXPECT_NE(text.find("otc 50%"), std::string::npos);
  EXPECT_NE(text.find("quorum 2"), std::string::npos);
}

TEST(AttackMatrixBuild, RejectsEmptyDefenseAxes) {
  AttackMatrixConfig config;
  config.rov_levels.clear();
  EXPECT_THROW((void)build_attack_matrix(config), std::invalid_argument);
  AttackMatrixConfig config2;
  config2.otc_levels.clear();
  EXPECT_THROW((void)build_attack_matrix(config2), std::invalid_argument);
}

TEST(AttackMatrixBuild, TinyGridProducesSaneCells) {
  // One grid point, two attacks, reduced topology: enough to exercise the
  // testbed construction, the multi-attack campaign, and the per-plane
  // scoring without the full 3x3 sweep.
  AttackMatrixConfig config;
  config.internet.num_tier1 = 8;
  config.internet.num_tier2 = 40;
  config.internet.num_tier3 = 60;
  config.internet.num_stub = 80;
  config.attacks = {bgp::AttackType::EquallySpecific,
                    bgp::AttackType::SubPrefix};
  config.rov_levels = {1.0};
  config.otc_levels = {0.0};
  const AttackMatrixReport report = build_attack_matrix(config);

  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_GT(report.sites, 0u);
  EXPECT_GT(report.perspectives, 0u);
  for (const AttackMatrixCell& cell : report.cells) {
    EXPECT_GE(cell.hijack_rate, 0.0);
    EXPECT_LE(cell.hijack_rate, 1.0);
    EXPECT_GE(cell.single_median, 0.0);
    EXPECT_LE(cell.single_median, 100.0);
    EXPECT_GE(cell.quorum_median, cell.single_median)
        << "requiring corroboration can only raise resilience";
  }
  // Full transit ROV with minimal-length ROAs: the equally-specific forgery
  // is blunted, the sub-prefix... also Invalid (per-victim /24 ROAs admit
  // no /25), so here both should be low-capture. The discriminating cell:
  // equally-specific resilience must beat the sub-prefix's hijack-anywhere
  // profile or match it — just assert both planes are present and tagged.
  EXPECT_EQ(report.cells[0].attack, bgp::AttackType::EquallySpecific);
  EXPECT_EQ(report.cells[1].attack, bgp::AttackType::SubPrefix);
}

}  // namespace
}  // namespace marcopolo::analysis
