#include "analysis/resilience.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "netsim/random.hpp"
#include "testbed_fixture.hpp"

namespace marcopolo::analysis {
namespace {

TEST(MedianOf, PaperEquationFive) {
  EXPECT_DOUBLE_EQ(median_of({0.5}), 0.5);
  EXPECT_DOUBLE_EQ(median_of({0.2, 0.8}), 0.5);  // even: mean of middles
  EXPECT_DOUBLE_EQ(median_of({0.9, 0.1, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(median_of({0.4, 0.1, 0.3, 0.2}), 0.25);
  EXPECT_THROW((void)median_of({}), std::invalid_argument);
}

TEST(PercentileOf, NearestRank) {
  const std::vector<double> v{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                              1.0};
  EXPECT_DOUBLE_EQ(percentile_of(v, 25.0), 0.3);
  EXPECT_DOUBLE_EQ(percentile_of(v, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(percentile_of(v, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 0.0), 0.1);
  EXPECT_THROW((void)percentile_of(v, 101.0), std::invalid_argument);
}

TEST(Summarize, ComputesAllStatistics) {
  const auto s = summarize({1.0, 0.0, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(s.median, 0.5);
  EXPECT_DOUBLE_EQ(s.average, 0.5);
  EXPECT_DOUBLE_EQ(s.p25, 0.0);
  EXPECT_EQ(s.per_victim.size(), 4u);
}

/// Hand-built 3-site, 3-perspective store with known outcomes.
class HandComputedResilience : public ::testing::Test {
 protected:
  HandComputedResilience() : store(3, 3) {
    using bgp::OriginReached;
    // Pair (0,1): perspectives 0,1 hijacked; 2 safe.
    set(0, 1, {true, true, false});
    // Pair (0,2): nothing hijacked.
    set(0, 2, {false, false, false});
    // Pair (1,0): all hijacked.
    set(1, 0, {true, true, true});
    // Pair (1,2): only perspective 2.
    set(1, 2, {false, false, true});
    // Pair (2,0): perspectives 0.
    set(2, 0, {true, false, false});
    // Pair (2,1): perspectives 1,2.
    set(2, 1, {false, true, true});
  }

  void set(core::SiteIndex v, core::SiteIndex a,
           std::array<bool, 3> hijacked) {
    for (core::PerspectiveIndex p = 0; p < 3; ++p) {
      store.record(v, a, p,
                   hijacked[p] ? bgp::OriginReached::Adversary
                               : bgp::OriginReached::Victim);
    }
  }

  mpic::DeploymentSpec deployment(std::vector<core::PerspectiveIndex> remotes,
                                  std::size_t failures,
                                  std::optional<core::PerspectiveIndex>
                                      primary = std::nullopt) {
    mpic::DeploymentSpec spec;
    spec.name = "test";
    spec.remotes = std::move(remotes);
    spec.primary = primary;
    spec.policy = mpic::QuorumPolicy(spec.remotes.size(), failures,
                                     primary.has_value());
    return spec;
  }

  core::ResultStore store;
};

TEST_F(HandComputedResilience, AllThreePerspectivesFullQuorum) {
  // (3, N): attack needs all three perspectives.
  const ResilienceAnalyzer analyzer(store);
  const auto per_victim =
      analyzer.per_victim_resilience(deployment({0, 1, 2}, 0));
  // Victim 0: adversary 1 captures 2<3 -> defended; adversary 2 captures 0
  // -> defended. R=1.
  EXPECT_DOUBLE_EQ(per_victim[0], 1.0);
  // Victim 1: adversary 0 captures 3 -> success; adversary 2 captures 1 ->
  // defended. R=0.5.
  EXPECT_DOUBLE_EQ(per_victim[1], 0.5);
  // Victim 2: adversaries capture 1 and 2 perspectives -> defended. R=1.
  EXPECT_DOUBLE_EQ(per_victim[2], 1.0);

  const auto s = analyzer.evaluate(deployment({0, 1, 2}, 0));
  EXPECT_DOUBLE_EQ(s.median, 1.0);
  EXPECT_NEAR(s.average, (1.0 + 0.5 + 1.0) / 3.0, 1e-12);
}

TEST_F(HandComputedResilience, QuorumWithFailureBudgetIsWeaker) {
  // (3, N-1): attack needs only 2 perspectives.
  const ResilienceAnalyzer analyzer(store);
  const auto per_victim =
      analyzer.per_victim_resilience(deployment({0, 1, 2}, 1));
  // Victim 0: adversary 1 captures 2 >= 2 -> success. R=0.5.
  EXPECT_DOUBLE_EQ(per_victim[0], 0.5);
  // Victim 2: adversary 1 captures {1,2} -> success; adversary 0 captures 1
  // -> defended. R=0.5.
  EXPECT_DOUBLE_EQ(per_victim[2], 0.5);
}

TEST_F(HandComputedResilience, PrimaryMustAlsoBeHijacked) {
  // Remotes {0,1} quorum (2,N), primary 2.
  const ResilienceAnalyzer analyzer(store);
  const auto no_primary =
      analyzer.per_victim_resilience(deployment({0, 1}, 0));
  // Victim 0, adversary 1 captures both remotes -> success without primary.
  EXPECT_DOUBLE_EQ(no_primary[0], 0.5);
  const auto with_primary =
      analyzer.per_victim_resilience(deployment({0, 1}, 0, 2));
  // Primary (perspective 2) is NOT hijacked for pair (0,1) -> defended.
  EXPECT_DOUBLE_EQ(with_primary[0], 1.0);
  // Victim 1, adversary 0 captures everything incl. primary -> success.
  EXPECT_DOUBLE_EQ(with_primary[1], 0.5);
}

TEST_F(HandComputedResilience, SinglePerspectiveDeployment) {
  const ResilienceAnalyzer analyzer(store);
  const auto per_victim = analyzer.per_victim_resilience(deployment({2}, 0));
  // Perspective 2 hijacked for pairs (1,0), (1,2), (2,1).
  EXPECT_DOUBLE_EQ(per_victim[0], 1.0);
  EXPECT_DOUBLE_EQ(per_victim[1], 0.0);
  EXPECT_DOUBLE_EQ(per_victim[2], 0.5);
}

TEST_F(HandComputedResilience, WorkspaceAddRemoveIsExact) {
  const ResilienceAnalyzer analyzer(store);
  auto ws = analyzer.make_workspace();
  analyzer.add_perspective(ws, 0);
  analyzer.add_perspective(ws, 1);
  analyzer.add_perspective(ws, 2);
  analyzer.remove_perspective(ws, 1);
  // Equivalent to {0, 2}.
  EXPECT_EQ(ws.counts[store.pair_index(1, 0)], 2u);
  EXPECT_EQ(ws.counts[store.pair_index(0, 1)], 1u);
  EXPECT_EQ(ws.counts[store.pair_index(0, 2)], 0u);
}

TEST_F(HandComputedResilience, ScoreMatchesEvaluate) {
  const ResilienceAnalyzer analyzer(store);
  auto ws = analyzer.make_workspace();
  analyzer.add_perspective(ws, 0);
  analyzer.add_perspective(ws, 1);
  analyzer.add_perspective(ws, 2);
  const auto score = analyzer.score(ws, 3, std::nullopt);
  const auto full = analyzer.evaluate(deployment({0, 1, 2}, 0));
  EXPECT_DOUBLE_EQ(score.median, full.median);
  EXPECT_DOUBLE_EQ(score.average, full.average);
}

TEST(ResilienceAnalyzer, CountsSurvivePastTwoHundredFiftyFivePerspectives) {
  // Regression: the workspace counters were uint8_t and wrapped once a
  // deployment exceeded 255 perspectives, silently turning a hijack count
  // of 260 into 4 and inflating resilience for mega-deployments.
  core::ResultStore store(2, 300);
  for (core::PerspectiveIndex p = 0; p < 300; ++p) {
    store.record(0, 1, p,
                 p < 260 ? bgp::OriginReached::Adversary
                         : bgp::OriginReached::Victim);
    store.record(1, 0, p, bgp::OriginReached::Victim);
  }
  const ResilienceAnalyzer analyzer(store);

  auto ws = analyzer.make_workspace();
  for (core::PerspectiveIndex p = 0; p < 260; ++p) {
    analyzer.add_perspective(ws, p);
  }
  EXPECT_EQ(ws.counts[store.pair_index(0, 1)], 260u)
      << "count must not wrap modulo 256";
  EXPECT_EQ(ws.counts[store.pair_index(1, 0)], 0u);

  // Quorum (260, 258): adversary 1 captures 260 >= 258 perspectives, so
  // victim 0 is undefended (R=0); victim 1 is fully defended (R=1).
  const auto kernel = analyzer.score(ws, 258, std::nullopt);
  EXPECT_DOUBLE_EQ(kernel.median, 0.5);
  EXPECT_DOUBLE_EQ(kernel.average, 0.5);

  // The direct evaluation path shares the workspace and must agree.
  mpic::DeploymentSpec spec;
  spec.name = "mega";
  spec.remotes.resize(260);
  std::iota(spec.remotes.begin(), spec.remotes.end(),
            core::PerspectiveIndex{0});
  spec.policy = mpic::QuorumPolicy(260, 2, false);
  const auto direct = analyzer.evaluate(spec);
  EXPECT_DOUBLE_EQ(direct.median, 0.5);

  // Removal stays exact at high counts too.
  for (core::PerspectiveIndex p = 250; p < 260; ++p) {
    analyzer.remove_perspective(ws, p);
  }
  EXPECT_EQ(ws.counts[store.pair_index(0, 1)], 250u);
}

TEST(ResilienceAnalyzer, ScoreOrderingMedianThenAverage) {
  using Score = ResilienceAnalyzer::Score;
  EXPECT_LT((Score{0.5, 0.9}), (Score{0.6, 0.1}));
  EXPECT_LT((Score{0.5, 0.1}), (Score{0.5, 0.2}));
  EXPECT_FALSE((Score{0.5, 0.2}) < (Score{0.5, 0.2}));
}

// Property: the incremental kernel agrees with the direct evaluation for
// random deployments on the real campaign dataset.
class KernelVsDirect : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelVsDirect, RandomDeploymentsAgree) {
  const auto& store = testing_support::shared_dataset().no_rpki;
  const ResilienceAnalyzer analyzer(store);
  netsim::Rng rng(GetParam());

  auto ws = analyzer.make_workspace();
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t size = 1 + rng.index(8);
    std::set<core::PerspectiveIndex> chosen;
    while (chosen.size() < size) {
      chosen.insert(static_cast<core::PerspectiveIndex>(
          rng.index(store.num_perspectives())));
    }
    const std::size_t failures = rng.index(size);

    mpic::DeploymentSpec spec;
    spec.name = "random";
    spec.remotes.assign(chosen.begin(), chosen.end());
    spec.policy = mpic::QuorumPolicy(size, failures, false);

    std::fill(ws.counts.begin(), ws.counts.end(), 0);
    for (const auto p : spec.remotes) analyzer.add_perspective(ws, p);
    const auto kernel = analyzer.score(ws, spec.policy.required(),
                                       std::nullopt);
    const auto direct = analyzer.evaluate(spec);
    EXPECT_DOUBLE_EQ(kernel.median, direct.median);
    EXPECT_DOUBLE_EQ(kernel.average, direct.average);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelVsDirect,
                         ::testing::Values(1u, 7u, 99u));

}  // namespace
}  // namespace marcopolo::analysis
