#include "analysis/bootstrap.hpp"

#include <gtest/gtest.h>

#include "analysis/resilience.hpp"
#include "netsim/random.hpp"

namespace marcopolo::analysis {
namespace {

TEST(Bootstrap, PointEstimateMatchesStatistic) {
  const std::vector<double> values{0.1, 0.5, 0.9};
  const auto ci = bootstrap_median(values);
  EXPECT_DOUBLE_EQ(ci.point, 0.5);
  const auto avg = bootstrap_average(values);
  EXPECT_NEAR(avg.point, 0.5, 1e-12);
}

TEST(Bootstrap, IntervalBracketsPoint) {
  netsim::Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 32; ++i) values.push_back(rng.real());
  const auto ci = bootstrap_median(values);
  EXPECT_LE(ci.low, ci.point);
  EXPECT_GE(ci.high, ci.point);
  EXPECT_GE(ci.low, 0.0);
  EXPECT_LE(ci.high, 1.0);
}

TEST(Bootstrap, DegenerateSampleHasZeroWidth) {
  const std::vector<double> constant(32, 0.7);
  const auto ci = bootstrap_median(constant);
  EXPECT_DOUBLE_EQ(ci.low, 0.7);
  EXPECT_DOUBLE_EQ(ci.high, 0.7);
}

TEST(Bootstrap, HigherConfidenceWidensInterval) {
  netsim::Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 32; ++i) values.push_back(rng.real());
  const auto narrow = bootstrap_median(values, 4000, 0.80);
  const auto wide = bootstrap_median(values, 4000, 0.99);
  EXPECT_LE(wide.low, narrow.low + 1e-12);
  EXPECT_GE(wide.high, narrow.high - 1e-12);
}

TEST(Bootstrap, MoreSamplesNarrowTheMeanInterval) {
  netsim::Rng rng(3);
  std::vector<double> small_sample;
  for (int i = 0; i < 8; ++i) small_sample.push_back(rng.real());
  std::vector<double> large_sample;
  for (int i = 0; i < 512; ++i) large_sample.push_back(rng.real());
  const auto small_ci = bootstrap_average(small_sample, 3000);
  const auto large_ci = bootstrap_average(large_sample, 3000);
  EXPECT_LT(large_ci.high - large_ci.low, small_ci.high - small_ci.low);
}

TEST(Bootstrap, DeterministicForSeed) {
  const std::vector<double> values{0.2, 0.4, 0.6, 0.8, 1.0};
  const auto a = bootstrap_median(values, 500, 0.95, 7);
  const auto b = bootstrap_median(values, 500, 0.95, 7);
  EXPECT_DOUBLE_EQ(a.low, b.low);
  EXPECT_DOUBLE_EQ(a.high, b.high);
}

TEST(Bootstrap, ValidatesArguments) {
  const std::vector<double> values{0.5};
  EXPECT_THROW((void)bootstrap_median({}), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_median(values, 5), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_median(values, 100, 1.5),
               std::invalid_argument);
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> values{0.0, 0.25, 0.5, 0.75, 1.0};
  const auto ci = bootstrap_statistic(
      values, [](std::vector<double>& v) { return percentile_of(v, 25.0); });
  EXPECT_DOUBLE_EQ(ci.point, 0.25);
  EXPECT_LE(ci.low, ci.point);
}

}  // namespace
}  // namespace marcopolo::analysis
