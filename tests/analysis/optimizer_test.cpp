#include "analysis/optimizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "testbed_fixture.hpp"

namespace marcopolo::analysis {
namespace {

using testing_support::shared_dataset;
using testing_support::shared_testbed;

const ResilienceAnalyzer& analyzer() {
  static ResilienceAnalyzer instance(shared_dataset().no_rpki);
  return instance;
}

std::vector<PerspectiveIndex> first_n_aws(std::size_t n) {
  auto all = shared_testbed().perspectives_of(topo::CloudProvider::Aws);
  all.resize(n);
  return all;
}

/// Brute-force reference: enumerate all C(n, k) sets via evaluate().
RankedDeployment brute_force_best(std::vector<PerspectiveIndex> candidates,
                                  std::size_t k, std::size_t failures) {
  std::vector<PerspectiveIndex> best_set;
  ResilienceAnalyzer::Score best_score{-1.0, -1.0};
  std::vector<PerspectiveIndex> current;
  auto recurse = [&](auto&& self, std::size_t next) -> void {
    if (current.size() == k) {
      mpic::DeploymentSpec spec;
      spec.name = "bf";
      spec.remotes = current;
      spec.policy = mpic::QuorumPolicy(k, failures, false);
      const auto s = analyzer().evaluate(spec);
      const ResilienceAnalyzer::Score score{s.median, s.average};
      if (best_score < score) {
        best_score = score;
        best_set = current;
      }
      return;
    }
    for (std::size_t i = next; i < candidates.size(); ++i) {
      current.push_back(candidates[i]);
      self(self, i + 1);
      current.pop_back();
    }
  };
  recurse(recurse, 0);
  mpic::DeploymentSpec spec;
  spec.name = "bf";
  spec.remotes = std::move(best_set);
  spec.policy = mpic::QuorumPolicy(k, failures, false);
  return RankedDeployment{std::move(spec), best_score};
}

TEST(Optimizer, ExhaustiveMatchesBruteForce) {
  const auto candidates = first_n_aws(10);
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 4;
  cfg.max_failures = 1;
  cfg.candidates = candidates;
  const auto best = optimizer.best(cfg);
  const auto reference = brute_force_best(candidates, 4, 1);
  EXPECT_DOUBLE_EQ(best.score.median, reference.score.median);
  EXPECT_DOUBLE_EQ(best.score.average, reference.score.average);
}

TEST(Optimizer, RankedOutputIsSortedAndDeduplicated) {
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 3;
  cfg.max_failures = 1;
  cfg.candidates = first_n_aws(12);
  cfg.top_k = 40;
  const auto ranked = optimizer.optimize(cfg);
  ASSERT_FALSE(ranked.empty());
  EXPECT_LE(ranked.size(), 40u);
  std::set<std::vector<PerspectiveIndex>> seen;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_TRUE(seen.insert(ranked[i].spec.remotes).second);
    if (i > 0) {
      EXPECT_FALSE(ranked[i - 1].score < ranked[i].score)
          << "ranking must be non-increasing";
    }
    EXPECT_EQ(ranked[i].spec.remotes.size(), 3u);
  }
}

TEST(Optimizer, ScoresAreConsistentWithAnalyzer) {
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 4;
  cfg.max_failures = 1;
  cfg.candidates = first_n_aws(12);
  for (const auto& rd : optimizer.optimize(cfg)) {
    const auto s = analyzer().evaluate(rd.spec);
    EXPECT_DOUBLE_EQ(rd.score.median, s.median);
    EXPECT_DOUBLE_EQ(rd.score.average, s.average);
  }
}

TEST(Optimizer, PrimaryNeverHurts) {
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 4;
  cfg.max_failures = 1;
  cfg.candidates = shared_testbed().perspectives_of(topo::CloudProvider::Aws);
  const auto without = optimizer.best(cfg);
  cfg.with_primary = true;
  const auto with = optimizer.best(cfg);
  EXPECT_FALSE(with.score < without.score)
      << "an optimal primary can only add a failure condition for the "
         "attacker";
  EXPECT_TRUE(with.spec.primary.has_value());
  // Primary never duplicates a remote.
  for (const auto r : with.spec.remotes) {
    EXPECT_NE(r, *with.spec.primary);
  }
}

TEST(Optimizer, BeamFindsReasonableSolutions) {
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig exhaustive;
  exhaustive.set_size = 4;
  exhaustive.max_failures = 1;
  exhaustive.candidates =
      shared_testbed().perspectives_of(topo::CloudProvider::Aws);
  const auto exact = optimizer.best(exhaustive);

  OptimizerConfig beam = exhaustive;
  beam.strategy = SearchStrategy::Beam;
  beam.beam_width = 64;
  const auto approx = optimizer.best(beam);
  // Beam is a heuristic: demand it lands within 10 points of optimum.
  EXPECT_GE(approx.score.median, exact.score.median - 0.10);
}

TEST(Optimizer, MaxPerRirCapIsRespected) {
  DeploymentOptimizer optimizer(analyzer());
  std::vector<topo::Rir> rirs;
  for (const auto& rec : shared_testbed().perspectives()) {
    rirs.push_back(rec.rir);
  }
  OptimizerConfig cfg;
  cfg.set_size = 5;
  cfg.max_failures = 1;
  cfg.candidates = shared_testbed().perspectives_of(topo::CloudProvider::Aws);
  cfg.max_per_rir = 2;
  cfg.rir_of = rirs;
  cfg.top_k = 20;
  for (const auto& rd : optimizer.optimize(cfg)) {
    std::map<topo::Rir, int> counts;
    for (const auto p : rd.spec.remotes) ++counts[rirs[p]];
    for (const auto& [rir, count] : counts) {
      EXPECT_LE(count, 2) << "RIR cap violated";
    }
  }
}

TEST(Optimizer, LargerSetsNeverReduceOptimalResilience) {
  // Paper §5.1: "increasing this count always improves resilience" — at
  // equal failure budget, adding a perspective cannot hurt the optimum.
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig small;
  small.set_size = 4;
  small.max_failures = 1;
  small.candidates =
      shared_testbed().perspectives_of(topo::CloudProvider::Azure);
  OptimizerConfig large = small;
  large.set_size = 5;
  const auto s4 = optimizer.best(small);
  const auto s5 = optimizer.best(large);
  EXPECT_GE(s5.score.median, s4.score.median - 1e-12);
}

TEST(Optimizer, HillClimbNeverWorsensSeed) {
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 5;
  cfg.max_failures = 1;
  cfg.candidates = shared_testbed().perspectives_of(topo::CloudProvider::Gcp);
  const auto seed = std::vector<PerspectiveIndex>(
      cfg.candidates.begin(), cfg.candidates.begin() + 5);
  // Seed score.
  mpic::DeploymentSpec seed_spec;
  seed_spec.name = "seed";
  seed_spec.remotes = seed;
  seed_spec.policy = mpic::QuorumPolicy(5, 1, false);
  const auto seed_summary = analyzer().evaluate(seed_spec);

  const auto climbed = optimizer.hill_climb(seed, cfg);
  EXPECT_GE(climbed.score.median, seed_summary.median - 1e-12);
  EXPECT_EQ(climbed.spec.remotes.size(), 5u);
  // Result is scored consistently.
  const auto check = analyzer().evaluate(climbed.spec);
  EXPECT_DOUBLE_EQ(check.median, climbed.score.median);
}

TEST(Optimizer, HillClimbFromOptimumIsFixedPoint) {
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 4;
  cfg.max_failures = 1;
  cfg.candidates = first_n_aws(12);
  const auto exact = optimizer.best(cfg);
  const auto climbed = optimizer.hill_climb(exact.spec.remotes, cfg);
  EXPECT_DOUBLE_EQ(climbed.score.median, exact.score.median);
  EXPECT_DOUBLE_EQ(climbed.score.average, exact.score.average);
}

TEST(Optimizer, HillClimbValidatesSeedSize) {
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 4;
  cfg.max_failures = 1;
  cfg.candidates = first_n_aws(10);
  EXPECT_THROW((void)optimizer.hill_climb({0, 1}, cfg),
               std::invalid_argument);
}

TEST(Optimizer, ThreadCountDoesNotChangeResults) {
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 4;
  cfg.max_failures = 1;
  cfg.candidates = first_n_aws(14);
  cfg.top_k = 30;

  cfg.threads = 1;
  const auto single = optimizer.optimize(cfg);
  for (const std::size_t threads : {4u, 64u}) {
    cfg.threads = threads;
    const auto parallel = optimizer.optimize(cfg);
    ASSERT_EQ(single.size(), parallel.size()) << threads << " threads";
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(single[i].spec.remotes, parallel[i].spec.remotes)
          << threads << " threads, rank " << i;
      EXPECT_DOUBLE_EQ(single[i].score.median, parallel[i].score.median);
      EXPECT_DOUBLE_EQ(single[i].score.average, parallel[i].score.average);
    }
  }
}

TEST(Optimizer, DirectAndIncrementalKernelsRankIdentically) {
  // direct_kernel_max_set = 0 forces the incremental count workspace on
  // every node; the default scores small sets with the word-reduction
  // kernel. Both must produce byte-identical rankings — same sets, same
  // doubles — or the kernel-selection rule would change results.
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 4;
  cfg.max_failures = 1;
  cfg.candidates = first_n_aws(12);
  cfg.top_k = 25;

  const auto direct = optimizer.optimize(cfg);
  cfg.direct_kernel_max_set = 0;
  const auto incremental = optimizer.optimize(cfg);

  ASSERT_EQ(direct.size(), incremental.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].spec.remotes, incremental[i].spec.remotes) << i;
    EXPECT_EQ(direct[i].score.median, incremental[i].score.median) << i;
    EXPECT_EQ(direct[i].score.average, incremental[i].score.average) << i;
  }
}

TEST(Optimizer, UpperBoundPruningSkipsDominatedSubtrees) {
  // Three clean perspectives {0,1,2} are never hijacked; {3,4,5} are
  // hijacked on every pair. With required=1, any partial set touching a
  // bad perspective already scores 0, so its whole subtree is prunable.
  // Regression: the seed computed TopK::admits() but never called it, so
  // the exhaustive search visited all C(6,3)=20 leaves.
  core::ResultStore store(4, 6);
  for (core::SiteIndex v = 0; v < 4; ++v) {
    for (core::SiteIndex a = 0; a < 4; ++a) {
      if (v == a) continue;
      for (core::PerspectiveIndex p = 0; p < 6; ++p) {
        store.record(v, a, p,
                     p >= 3 ? bgp::OriginReached::Adversary
                            : bgp::OriginReached::Victim);
      }
    }
  }
  const ResilienceAnalyzer local(store);
  DeploymentOptimizer optimizer(local);
  OptimizerConfig cfg;
  cfg.set_size = 3;
  cfg.max_failures = 2;  // required = 1
  cfg.candidates = {0, 1, 2, 3, 4, 5};
  cfg.top_k = 1;
  cfg.threads = 1;
  SearchStats stats;
  cfg.stats = &stats;

  const auto ranked = optimizer.optimize(cfg);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].spec.remotes,
            (std::vector<PerspectiveIndex>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(ranked[0].score.median, 1.0);
  EXPECT_GT(stats.subtrees_pruned, 0u) << "prune must actually fire";
  EXPECT_LT(stats.complete_sets_scored, 20u)
      << "pruning must skip dominated leaves (seed scored all 20)";
}

TEST(Optimizer, PruningLeavesExhaustiveRankingUnchanged) {
  // The upper-bound prune is only sound if it never drops a set that
  // belongs in the top-k: compare the pruned search's score ranking
  // against a full brute-force enumeration on real campaign data.
  const auto candidates = first_n_aws(10);
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 4;
  cfg.max_failures = 1;
  cfg.candidates = candidates;
  cfg.top_k = 5;
  SearchStats stats;
  cfg.stats = &stats;
  const auto ranked = optimizer.optimize(cfg);
  ASSERT_EQ(ranked.size(), 5u);

  std::vector<ResilienceAnalyzer::Score> all_scores;
  std::vector<PerspectiveIndex> current;
  auto recurse = [&](auto&& self, std::size_t next) -> void {
    if (current.size() == 4) {
      mpic::DeploymentSpec spec;
      spec.name = "bf";
      spec.remotes = current;
      spec.policy = mpic::QuorumPolicy(4, 1, false);
      const auto s = analyzer().evaluate(spec);
      all_scores.push_back({s.median, s.average});
      return;
    }
    for (std::size_t i = next; i < candidates.size(); ++i) {
      current.push_back(candidates[i]);
      self(self, i + 1);
      current.pop_back();
    }
  };
  recurse(recurse, 0);
  std::sort(all_scores.begin(), all_scores.end(),
            [](const auto& a, const auto& b) { return b < a; });

  EXPECT_LE(stats.complete_sets_scored, all_scores.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_DOUBLE_EQ(ranked[i].score.median, all_scores[i].median) << i;
    EXPECT_DOUBLE_EQ(ranked[i].score.average, all_scores[i].average) << i;
  }
}

TEST(Optimizer, RejectsInvalidConfigs) {
  DeploymentOptimizer optimizer(analyzer());
  OptimizerConfig cfg;
  cfg.set_size = 0;
  cfg.candidates = first_n_aws(5);
  EXPECT_THROW((void)optimizer.optimize(cfg), std::invalid_argument);
  cfg.set_size = 6;  // > candidates
  EXPECT_THROW((void)optimizer.optimize(cfg), std::invalid_argument);
  cfg.set_size = 3;
  cfg.max_failures = 3;
  EXPECT_THROW((void)optimizer.optimize(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace marcopolo::analysis
