#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace marcopolo::analysis {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"Name", "Value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
  // Three rules + header + 2 rows = 6 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, ColumnWiderThanHeader) {
  TextTable table({"X"});
  table.add_row({"very-long-cell"});
  EXPECT_NE(table.to_string().find("| very-long-cell |"), std::string::npos);
}

TEST(FormatResilience, RoundsLikeThePaper) {
  EXPECT_EQ(format_resilience(0.0), "0");
  EXPECT_EQ(format_resilience(0.5), "50");
  EXPECT_EQ(format_resilience(0.871), "87");
  EXPECT_EQ(format_resilience(0.875), "88");
  EXPECT_EQ(format_resilience(1.0), "100");
}

TEST(FormatShare, OneDecimal) {
  EXPECT_EQ(format_share(0.5), "50.0%");
  EXPECT_EQ(format_share(0.638), "63.8%");
  EXPECT_EQ(format_share(1.0), "100.0%");
}

}  // namespace
}  // namespace marcopolo::analysis
