#include "analysis/rir_cluster.hpp"

#include <gtest/gtest.h>

namespace marcopolo::analysis {
namespace {

using topo::Rir;

mpic::DeploymentSpec spec_with(std::vector<PerspectiveIndex> remotes,
                               std::optional<PerspectiveIndex> primary =
                                   std::nullopt) {
  mpic::DeploymentSpec spec;
  spec.name = "s";
  spec.remotes = std::move(remotes);
  spec.primary = primary;
  spec.policy = mpic::QuorumPolicy(spec.remotes.size(), 2,
                                   primary.has_value());
  return spec;
}

// Perspective RIRs: 0-2 ARIN, 3-5 RIPE, 6-7 APNIC, 8 LACNIC, 9 AFRINIC.
std::vector<Rir> rirs() {
  return {Rir::Arin,   Rir::Arin,   Rir::Arin,  Rir::Ripe,   Rir::Ripe,
          Rir::Ripe,   Rir::Apnic,  Rir::Apnic, Rir::Lacnic, Rir::Afrinic};
}

TEST(RirCluster, SignatureSortedDescending) {
  const auto sig =
      cluster_signature(spec_with({0, 1, 2, 3, 4, 6}), rirs());
  EXPECT_EQ(sig, (ClusterSignature{3, 2, 1, 0, 0}));
  const auto sig2 = cluster_signature(spec_with({0, 1, 2, 3, 4, 5}), rirs());
  EXPECT_EQ(sig2, (ClusterSignature{3, 3, 0, 0, 0}));
}

TEST(RirCluster, FormatMatchesPaperNotation) {
  EXPECT_EQ(format_signature({3, 3, 0, 0, 0}, false), "(3,3,0,0,0)");
  EXPECT_EQ(format_signature({3, 2, 1, 0, 0}, false), "(3,2,1,0,0)");
  EXPECT_EQ(format_signature({3, 3, 0, 0, 0}, true), "(3,3,1*,0,0)");
  EXPECT_EQ(format_signature({2, 2, 2, 0, 0}, true), "(2,2,2,1*,0)");
}

TEST(RirCluster, StatsCountTopSignature) {
  std::vector<RankedDeployment> deployments;
  // Three (3,3) deployments, one (3,2,1).
  for (int i = 0; i < 3; ++i) {
    deployments.push_back(
        RankedDeployment{spec_with({0, 1, 2, 3, 4, 5}), {}});
  }
  deployments.push_back(RankedDeployment{spec_with({0, 1, 2, 3, 4, 6}), {}});
  const auto stats = analyze_clusters(deployments, rirs(), 2);
  EXPECT_EQ(stats.analyzed, 4u);
  EXPECT_EQ(stats.top_signature, "(3,3,0,0,0)");
  EXPECT_DOUBLE_EQ(stats.top_share, 0.75);
  EXPECT_DOUBLE_EQ(stats.quorum_cluster_share, 0.75);
  EXPECT_DOUBLE_EQ(stats.frequency.at("(3,2,1,0,0)"), 0.25);
}

TEST(RirCluster, PrimarySeparateRirDetected) {
  std::vector<RankedDeployment> deployments;
  // Remotes all in ARIN+RIPE; primary in APNIC (separate).
  deployments.push_back(
      RankedDeployment{spec_with({0, 1, 2, 3, 4, 5}, 6), {}});
  // Primary inside ARIN (not separate).
  deployments.push_back(
      RankedDeployment{spec_with({0, 1, 3, 4, 6, 7}, 2), {}});
  const auto stats = analyze_clusters(deployments, rirs(), 2);
  EXPECT_DOUBLE_EQ(stats.primary_separate_share, 0.5);
  EXPECT_DOUBLE_EQ(stats.frequency.at("(3,3,1*,0,0)"), 0.5);
  EXPECT_DOUBLE_EQ(stats.frequency.at("(2,2,2,0,0)"), 0.5);
}

TEST(RirCluster, EmptyInputYieldsEmptyStats) {
  const auto stats = analyze_clusters({}, rirs(), 2);
  EXPECT_EQ(stats.analyzed, 0u);
  EXPECT_TRUE(stats.frequency.empty());
}

}  // namespace
}  // namespace marcopolo::analysis
