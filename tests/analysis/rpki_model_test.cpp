#include "analysis/rpki_model.hpp"

#include <gtest/gtest.h>

#include "testbed_fixture.hpp"

namespace marcopolo::analysis {
namespace {

using testing_support::shared_dataset;
using testing_support::shared_testbed;

mpic::DeploymentSpec sample_deployment() {
  mpic::DeploymentSpec spec;
  spec.name = "sample";
  const auto aws = shared_testbed().perspectives_of(topo::CloudProvider::Aws);
  spec.remotes = {aws[0], aws[5], aws[10], aws[15], aws[20], aws[25]};
  spec.policy = mpic::QuorumPolicy(6, 2, false);
  return spec;
}

TEST(RpkiModel, WeightZeroEqualsPlainDataset) {
  const ResilienceAnalyzer plain(shared_dataset().no_rpki);
  const ResilienceAnalyzer rpki(shared_dataset().rpki);
  const RpkiWeightedAnalyzer weighted(plain, rpki);
  const auto spec = sample_deployment();
  const auto w0 = weighted.evaluate(spec, kNoRpki);
  const auto direct = plain.evaluate(spec);
  EXPECT_DOUBLE_EQ(w0.median, direct.median);
  EXPECT_DOUBLE_EQ(w0.average, direct.average);
}

TEST(RpkiModel, WeightOneEqualsRpkiDataset) {
  const ResilienceAnalyzer plain(shared_dataset().no_rpki);
  const ResilienceAnalyzer rpki(shared_dataset().rpki);
  const RpkiWeightedAnalyzer weighted(plain, rpki);
  const auto spec = sample_deployment();
  const auto w1 = weighted.evaluate(spec, kFullRpki);
  const auto direct = rpki.evaluate(spec);
  EXPECT_DOUBLE_EQ(w1.median, direct.median);
  EXPECT_DOUBLE_EQ(w1.average, direct.average);
}

TEST(RpkiModel, PerVictimIsExactConvexCombination) {
  const ResilienceAnalyzer plain(shared_dataset().no_rpki);
  const ResilienceAnalyzer rpki(shared_dataset().rpki);
  const RpkiWeightedAnalyzer weighted(plain, rpki);
  const auto spec = sample_deployment();
  const auto p = plain.per_victim_resilience(spec);
  const auto r = rpki.per_victim_resilience(spec);
  const auto mix = weighted.per_victim_resilience(spec, 0.56);
  for (std::size_t v = 0; v < p.size(); ++v) {
    EXPECT_NEAR(mix[v], 0.56 * r[v] + 0.44 * p[v], 1e-12);
  }
}

TEST(RpkiModel, AverageMonotoneInRpkiFraction) {
  // Per-victim the forged-origin dataset can dip below plain (coin flips),
  // but the average must not decrease as RPKI coverage grows whenever the
  // RPKI dataset dominates in aggregate — which the campaign guarantees.
  const ResilienceAnalyzer plain(shared_dataset().no_rpki);
  const ResilienceAnalyzer rpki(shared_dataset().rpki);
  const RpkiWeightedAnalyzer weighted(plain, rpki);
  const auto spec = sample_deployment();
  double last = -1.0;
  for (const double w : {0.0, 0.25, 0.56, 0.8, 1.0}) {
    const double avg = weighted.evaluate(spec, w).average;
    EXPECT_GE(avg, last - 0.02) << "w=" << w;
    last = avg;
  }
}

TEST(RpkiModel, RejectsBadFraction) {
  const ResilienceAnalyzer plain(shared_dataset().no_rpki);
  const ResilienceAnalyzer rpki(shared_dataset().rpki);
  const RpkiWeightedAnalyzer weighted(plain, rpki);
  EXPECT_THROW((void)weighted.evaluate(sample_deployment(), -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)weighted.evaluate(sample_deployment(), 1.1),
               std::invalid_argument);
}

TEST(RpkiModel, RejectsMismatchedDatasets) {
  const ResilienceAnalyzer plain(shared_dataset().no_rpki);
  core::ResultStore tiny(2, 2);
  tiny.record(0, 1, 0, bgp::OriginReached::Victim);
  const ResilienceAnalyzer other(tiny);
  EXPECT_THROW(RpkiWeightedAnalyzer(plain, other), std::invalid_argument);
}

}  // namespace
}  // namespace marcopolo::analysis
