// Differential property tests: the packed OutcomeMatrix kernels versus the
// retained byte-per-pair ScalarReference (the seed implementation).
//
// The packed plane's contract is exact double equality — not tolerance —
// because both paths must produce identical integer defended-counts and
// accumulate them in the same order. Cases deliberately cover pair counts
// that are a multiple of 64 (8 sites), below one word (5 sites), and
// straddling a word boundary (9 sites), plus empty sets, the full
// perspective roster, the primary conjunct, and every quorum shape from
// the paper's Table 2.
#include "analysis/outcome_matrix.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/resilience.hpp"
#include "analysis/scalar_reference.hpp"
#include "mpic/quorum.hpp"
#include "netsim/random.hpp"
#include "testbed_fixture.hpp"

namespace marcopolo::analysis {
namespace {

using core::PerspectiveIndex;
using core::ResultStore;
using core::SiteIndex;
using testing_support::shared_dataset;

/// A fully-populated randomized store. Diagonal cells are written too —
/// the packed kernels must mask them out via the attackable mask exactly
/// where the scalar loops `continue` past a == v.
ResultStore random_store(std::size_t sites, std::size_t perspectives,
                         std::uint64_t seed, double hijack_rate = 0.4) {
  ResultStore store(sites, perspectives);
  netsim::Rng rng(seed);
  for (SiteIndex v = 0; v < sites; ++v) {
    for (SiteIndex a = 0; a < sites; ++a) {
      for (PerspectiveIndex p = 0; p < perspectives; ++p) {
        const auto outcome = rng.chance(hijack_rate)
                                 ? bgp::OriginReached::Adversary
                                 : bgp::OriginReached::Victim;
        store.record(v, a, p, outcome);
      }
    }
  }
  return store;
}

std::vector<PerspectiveIndex> random_set(netsim::Rng& rng, std::size_t size,
                                         std::size_t perspectives) {
  std::vector<PerspectiveIndex> set;
  while (set.size() < size) {
    const auto p = static_cast<PerspectiveIndex>(rng.index(perspectives));
    bool dup = false;
    for (const auto q : set) dup = dup || q == p;
    if (!dup) set.push_back(p);
  }
  return set;
}

void expect_scores_identical(const ResilienceAnalyzer& packed,
                             const ScalarReference& scalar,
                             std::span<const PerspectiveIndex> set,
                             std::size_t required,
                             std::optional<PerspectiveIndex> primary) {
  // Scalar path: count workspace + seed scoring loop.
  auto counts = scalar.make_counts();
  for (const auto p : set) scalar.add(counts, p);
  const auto expected = scalar.score(counts, required, primary);

  // Packed incremental path.
  auto ws = packed.make_workspace();
  for (const auto p : set) packed.add_perspective(ws, p);
  const auto incremental = packed.score(ws, required, primary);
  EXPECT_EQ(incremental.median, expected.median);
  EXPECT_EQ(incremental.average, expected.average);

  // Packed direct path (word reductions, no counters).
  auto scratch = packed.make_scratch();
  const auto direct = packed.score_set(set, required, primary, scratch);
  EXPECT_EQ(direct.median, expected.median);
  EXPECT_EQ(direct.average, expected.average);

  // Per-victim vectors agree element-for-element.
  const auto pv_packed = packed.per_victim_resilience(set, required, primary);
  const auto pv_scalar = scalar.per_victim(set, required, primary);
  ASSERT_EQ(pv_packed.size(), pv_scalar.size());
  for (std::size_t v = 0; v < pv_packed.size(); ++v) {
    EXPECT_EQ(pv_packed[v], pv_scalar[v]) << "victim " << v;
  }
}

TEST(OutcomeMatrix, PackedBitsMatchScalarBytes) {
  for (const std::size_t sites : {5u, 8u, 9u}) {
    const auto store = random_store(sites, 12, 0xA0 + sites);
    const OutcomeMatrix matrix(store);
    const ScalarReference scalar(store);
    for (PerspectiveIndex p = 0; p < store.num_perspectives(); ++p) {
      const std::uint8_t* bytes = scalar.hijack_bytes(p);
      for (std::size_t pair = 0; pair < matrix.num_pairs(); ++pair) {
        EXPECT_EQ(matrix.bit(p, pair), bytes[pair] != 0)
            << "sites=" << sites << " p=" << p << " pair=" << pair;
      }
    }
  }
}

TEST(OutcomeMatrix, TailBitsBeyondNumPairsStayZero) {
  // 5 sites -> 25 pairs (partial word); 9 sites -> 81 pairs (one full word
  // plus a partial). 8 sites -> exactly 64, no tail bits at all.
  for (const std::size_t sites : {5u, 8u, 9u}) {
    const auto store = random_store(sites, 6, 0xB0 + sites, 1.0);
    const OutcomeMatrix matrix(store);
    const std::size_t pairs = matrix.num_pairs();
    for (PerspectiveIndex p = 0; p < store.num_perspectives(); ++p) {
      const auto row = matrix.row(p);
      for (std::size_t bit = pairs; bit < row.size() * 64; ++bit) {
        EXPECT_FALSE((row[bit / 64] >> (bit % 64)) & 1)
            << "sites=" << sites << " tail bit " << bit << " set";
      }
    }
    // The attackable mask shares the invariant.
    const auto attackable = matrix.attackable();
    for (std::size_t bit = pairs; bit < attackable.size() * 64; ++bit) {
      EXPECT_FALSE((attackable[bit / 64] >> (bit % 64)) & 1);
    }
  }
}

TEST(OutcomeMatrix, AttackableMaskExcludesExactlyTheDiagonal) {
  const auto store = random_store(9, 4, 0xD1);
  const OutcomeMatrix matrix(store);
  const auto attackable = matrix.attackable();
  for (std::size_t pair = 0; pair < matrix.num_pairs(); ++pair) {
    const bool diagonal = pair / 9 == pair % 9;
    const bool set = (attackable[pair / 64] >> (pair % 64)) & 1;
    EXPECT_EQ(set, !diagonal) << "pair " << pair;
  }
}

TEST(OutcomeMatrix, ScoresMatchScalarAcrossTable2Quorums) {
  // Every quorum shape from the paper's Table 2: the CAB minimum for each
  // remote count (Y=0 for 1, Y=1 for 2-5, Y=2 for >=6), plus the stricter
  // (N, N) unanimity variant at each size.
  netsim::Rng rng(0x7AB1E2);
  for (const std::size_t sites : {5u, 8u, 9u}) {
    const auto store = random_store(sites, 24, 0xC0 + sites);
    const ResilienceAnalyzer packed(store);
    const ScalarReference scalar(store);
    for (const std::size_t remotes : {1u, 2u, 3u, 5u, 6u, 9u, 14u}) {
      const auto set = random_set(rng, remotes, store.num_perspectives());
      const auto cab = mpic::QuorumPolicy::cab_minimum(remotes);
      expect_scores_identical(packed, scalar, set, cab.required(),
                              std::nullopt);
      expect_scores_identical(packed, scalar, set, remotes, std::nullopt);
      if (remotes >= 2) {
        // Intermediate thresholds exercise the bit-sliced general kernel
        // (neither the OR nor the AND fast path).
        expect_scores_identical(packed, scalar, set, remotes - 1,
                                std::nullopt);
      }
    }
  }
}

TEST(OutcomeMatrix, EmptySetMatchesScalar) {
  const auto store = random_store(9, 8, 0xE5);
  const ResilienceAnalyzer packed(store);
  const ScalarReference scalar(store);
  const std::vector<PerspectiveIndex> empty;
  // required = 0: every ordered pair is attackable (count 0 >= 0), so
  // resilience collapses to 0 everywhere. required = 1 > |set|: nothing
  // is attackable, resilience is 1 everywhere. Both must agree exactly.
  expect_scores_identical(packed, scalar, empty, 0, std::nullopt);
  expect_scores_identical(packed, scalar, empty, 1, std::nullopt);
  expect_scores_identical(packed, scalar, empty, 0, PerspectiveIndex{3});
}

TEST(OutcomeMatrix, RequiredBeyondSetSizeMatchesScalar) {
  const auto store = random_store(5, 10, 0xF7);
  const ResilienceAnalyzer packed(store);
  const ScalarReference scalar(store);
  const std::vector<PerspectiveIndex> set{1, 4, 7};
  expect_scores_identical(packed, scalar, set, 4, std::nullopt);
  expect_scores_identical(packed, scalar, set, 100, std::nullopt);
}

TEST(OutcomeMatrix, PrimaryConjunctMatchesScalar) {
  netsim::Rng rng(0x9121);
  const auto store = random_store(9, 20, 0x9122);
  const ResilienceAnalyzer packed(store);
  const ScalarReference scalar(store);
  for (int trial = 0; trial < 8; ++trial) {
    const auto set = random_set(rng, 5, store.num_perspectives());
    const auto primary =
        static_cast<PerspectiveIndex>(rng.index(store.num_perspectives()));
    const auto cab = mpic::QuorumPolicy::cab_minimum(set.size());
    expect_scores_identical(packed, scalar, set, cab.required(), primary);
    // A primary inside the remote set is legal for the kernels.
    expect_scores_identical(packed, scalar, set, cab.required(), set[0]);
  }
}

TEST(OutcomeMatrix, FullPerspectiveRosterMatchesScalarOnCampaignData) {
  // Real campaign data with the complete perspective roster deployed —
  // the largest set the kernels ever see, driving the bit-sliced counter
  // through its widest planes.
  const ResultStore& store = shared_dataset().no_rpki;
  const ResilienceAnalyzer packed(store);
  const ScalarReference scalar(store);
  std::vector<PerspectiveIndex> all(store.num_perspectives());
  for (std::size_t p = 0; p < all.size(); ++p) {
    all[p] = static_cast<PerspectiveIndex>(p);
  }
  const auto cab = mpic::QuorumPolicy::cab_minimum(all.size());
  expect_scores_identical(packed, scalar, all, cab.required(), std::nullopt);
  expect_scores_identical(packed, scalar, all, cab.required(),
                          PerspectiveIndex{0});
  expect_scores_identical(packed, scalar, all, all.size(), std::nullopt);
  expect_scores_identical(packed, scalar, all, 1, std::nullopt);
}

TEST(OutcomeMatrix, RandomSetsMatchScalarOnCampaignData) {
  const ResultStore& store = shared_dataset().no_rpki;
  const ResilienceAnalyzer packed(store);
  const ScalarReference scalar(store);
  netsim::Rng rng(0x5EED);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t size = 2 + rng.index(10);
    const auto set = random_set(rng, size, store.num_perspectives());
    const auto cab = mpic::QuorumPolicy::cab_minimum(size);
    expect_scores_identical(packed, scalar, set, cab.required(),
                            std::nullopt);
  }
}

TEST(OutcomeMatrix, WorkspaceUnpackMatchesScalarCounts) {
  const auto store = random_store(9, 16, 0xC07);
  const ResilienceAnalyzer packed(store);
  const ScalarReference scalar(store);
  netsim::Rng rng(0xC08);
  auto ws = packed.make_workspace();
  auto counts = scalar.make_counts();
  const auto set = random_set(rng, 7, store.num_perspectives());
  for (const auto p : set) {
    packed.add_perspective(ws, p);
    scalar.add(counts, p);
  }
  for (std::size_t pair = 0; pair < counts.size(); ++pair) {
    EXPECT_EQ(ws.counts[pair], counts[pair]) << "pair " << pair;
  }
  // Removing every member must return the workspace to all-zero — the
  // invariant the optimizer debug-asserts after each balanced walk.
  for (const auto p : set) packed.remove_perspective(ws, p);
  EXPECT_TRUE(ResilienceAnalyzer::is_zero(ws));
}

}  // namespace
}  // namespace marcopolo::analysis
