#include "analysis/weighted.hpp"

#include <gtest/gtest.h>

#include "testbed_fixture.hpp"

namespace marcopolo::analysis {
namespace {

TEST(Weighted, UniformWeightsMatchUnweightedAverage) {
  const std::vector<double> values{0.1, 0.5, 0.9, 0.7};
  const std::vector<double> uniform(4, 1.0);
  EXPECT_NEAR(weighted_average(values, uniform), 0.55, 1e-12);
}

TEST(Weighted, AverageFollowsMass) {
  const std::vector<double> values{0.0, 1.0};
  EXPECT_NEAR(weighted_average(values, std::vector<double>{1.0, 3.0}), 0.75,
              1e-12);
  EXPECT_NEAR(weighted_average(values, std::vector<double>{3.0, 1.0}), 0.25,
              1e-12);
}

TEST(Weighted, MedianShiftsWithWeight) {
  const std::vector<double> values{0.1, 0.5, 0.9};
  // Heavy weight on the weakest victim drags the median down.
  EXPECT_DOUBLE_EQ(
      weighted_median(values, std::vector<double>{10.0, 1.0, 1.0}), 0.1);
  // Heavy weight on the strongest drags it up.
  EXPECT_DOUBLE_EQ(
      weighted_median(values, std::vector<double>{1.0, 1.0, 10.0}), 0.9);
  // Uniform: middle element.
  EXPECT_DOUBLE_EQ(
      weighted_median(values, std::vector<double>{1.0, 1.0, 1.0}), 0.5);
}

TEST(Weighted, PercentileCumulativeRule) {
  const std::vector<double> values{0.2, 0.4, 0.6, 0.8};
  const std::vector<double> weights{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_percentile(values, weights, 25.0), 0.2);
  EXPECT_DOUBLE_EQ(weighted_percentile(values, weights, 75.0), 0.6);
  EXPECT_DOUBLE_EQ(weighted_percentile(values, weights, 100.0), 0.8);
}

TEST(Weighted, ZeroWeightVictimsAreIgnored) {
  const std::vector<double> values{0.0, 0.5, 1.0};
  const std::vector<double> weights{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(weighted_median(values, weights), 0.5);
  EXPECT_DOUBLE_EQ(weighted_average(values, weights), 0.5);
}

TEST(Weighted, ValidatesInput) {
  const std::vector<double> values{0.5, 0.5};
  EXPECT_THROW((void)weighted_average(values, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)weighted_average(values, std::vector<double>{1.0, -1.0}),
      std::invalid_argument);
  EXPECT_THROW((void)weighted_average(values, std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)weighted_percentile(values, std::vector<double>{1.0, 1.0}, 120.0),
      std::invalid_argument);
}

TEST(Weighted, EvaluateWeightedOnRealCampaign) {
  // Weighting all mass on one victim reproduces that victim's resilience
  // as every statistic.
  const auto& tb = testing_support::shared_testbed();
  const ResilienceAnalyzer analyzer(testing_support::shared_dataset().no_rpki);
  mpic::DeploymentSpec spec;
  spec.name = "w";
  const auto aws = tb.perspectives_of(topo::CloudProvider::Aws);
  spec.remotes = {aws[0], aws[7], aws[14]};
  spec.policy = mpic::QuorumPolicy(3, 1, false);

  const auto per_victim = analyzer.per_victim_resilience(spec);
  std::vector<double> weights(per_victim.size(), 0.0);
  weights[5] = 1.0;
  const auto s = evaluate_weighted(analyzer, spec, weights);
  EXPECT_DOUBLE_EQ(s.median, per_victim[5]);
  EXPECT_DOUBLE_EQ(s.average, per_victim[5]);
  EXPECT_DOUBLE_EQ(s.p25, per_victim[5]);
}

TEST(Weighted, UniformWeightsApproximateUnweightedSummary) {
  const ResilienceAnalyzer analyzer(testing_support::shared_dataset().no_rpki);
  const auto& tb = testing_support::shared_testbed();
  mpic::DeploymentSpec spec;
  spec.name = "w";
  const auto azure = tb.perspectives_of(topo::CloudProvider::Azure);
  spec.remotes = {azure[0], azure[10], azure[20], azure[30]};
  spec.policy = mpic::QuorumPolicy(4, 1, false);

  const std::vector<double> uniform(tb.sites().size(), 1.0);
  const auto weighted = evaluate_weighted(analyzer, spec, uniform);
  const auto plain = analyzer.evaluate(spec);
  EXPECT_NEAR(weighted.average, plain.average, 1e-12);
  // Weighted median uses the lower-middle rule; allow one victim of slack
  // vs eq. (5)'s averaged-middles rule.
  EXPECT_NEAR(weighted.median, plain.median, 0.05);
}

}  // namespace
}  // namespace marcopolo::analysis
