// ManifestReader: RunManifest JSON and campaign_wallclock benchmark JSON
// decode back into MetricsSnapshot-shaped data, with the same
// forward-compatibility policy as the journal reader.
#include "obs/manifest_reader.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/manifest.hpp"

namespace marcopolo::obs {
namespace {

TEST(ManifestReader, RoundTripsARunManifest) {
  MetricsRegistry reg;
  reg.counter("campaign.tasks_executed").add(2048);
  reg.counter("campaign.propagations").add(1984);
  Histogram h = reg.histogram("campaign.task_ns");
  h.observe(100);
  h.observe(1'000);
  h.observe(100'000);
  const MetricsSnapshot written = reg.snapshot();

  RunManifest manifest("quickstart");
  manifest.set("ases", 943);
  manifest.set("tie_break", "hashed");
  manifest.set("fraction", 0.25);
  manifest.set("rpki", true);
  manifest.add_phase("build_testbed", 0.125);
  manifest.add_phase("fast_campaign", 1.5);
  std::ostringstream out;
  manifest.write_json(out, written);

  const ReadManifest read = ManifestReader::read_string(out.str());
  ASSERT_TRUE(read.ok()) << read.errors.front();
  EXPECT_EQ(read.schema, 1);
  EXPECT_EQ(read.tool, "quickstart");

  // Keys come back sorted (json::Object is an ordered map); the
  // writer's insertion order is not recoverable and not needed.
  ASSERT_EQ(read.config.size(), 4u);
  EXPECT_EQ(read.config[0], (std::pair<std::string, std::string>{
                                "ases", "943"}));
  EXPECT_EQ(read.config[1].second, "0.25");
  EXPECT_EQ(read.config[2].second, "true");
  EXPECT_EQ(read.config[3].second, "hashed");

  ASSERT_EQ(read.phases.size(), 2u);
  EXPECT_EQ(read.phases[0].name, "build_testbed");
  EXPECT_EQ(read.phases[0].seconds, 0.125);
  EXPECT_EQ(read.phases[1].seconds, 1.5);
  // Plain add_phase carries no counters: the rows must read back exactly
  // as a pre-counter writer's would (forward compat both ways).
  EXPECT_FALSE(read.phases[0].has_counters);
  EXPECT_FALSE(read.phases[0].has_mem);

  // Counters come back sorted (the snapshot() contract).
  EXPECT_EQ(read.metrics.counter("campaign.tasks_executed"), 2048u);
  EXPECT_EQ(read.metrics.counter("campaign.propagations"), 1984u);
  ASSERT_EQ(read.metrics.counters.size(), 2u);
  EXPECT_LT(read.metrics.counters[0].first, read.metrics.counters[1].first);

  const HistogramSnapshot* rh = read.metrics.histogram("campaign.task_ns");
  const HistogramSnapshot* wh = written.histogram("campaign.task_ns");
  ASSERT_NE(rh, nullptr);
  ASSERT_NE(wh, nullptr);
  EXPECT_EQ(rh->count, wh->count);
  EXPECT_EQ(rh->sum, wh->sum);
  EXPECT_EQ(rh->min, wh->min);
  EXPECT_EQ(rh->max, wh->max);
  ASSERT_EQ(rh->buckets, wh->buckets);
  // Quantiles recompute identically from identical buckets.
  EXPECT_DOUBLE_EQ(rh->quantile(0.95), wh->quantile(0.95));

  EXPECT_TRUE(read.runs.empty());
  EXPECT_FALSE(read.has_recording);
}

TEST(ManifestReader, RoundTripsPhaseCounters) {
  RunManifest manifest("bench");
  PhaseStats stats;
  stats.counters.instructions = 4'000'000'000ULL;
  stats.counters.cycles = 2'000'000'000ULL;
  stats.counters.cache_references = 50'000'000ULL;
  stats.counters.cache_misses = 5'000'000ULL;
  stats.counters.branch_misses = 1'000'000ULL;
  stats.counters.valid = true;
  stats.peak_rss_kb = 262'144;
  stats.rss_delta_kb = -512;
  stats.mem_valid = true;
  manifest.add_phase("resilience_kernel_ms", 0.25, stats);
  manifest.add_phase("plain_phase", 0.5);  // counter-less row alongside

  std::ostringstream out;
  manifest.write_json(out, MetricsSnapshot{});
  const ReadManifest read = ManifestReader::read_string(out.str());
  ASSERT_TRUE(read.ok()) << read.errors.front();
  ASSERT_EQ(read.phases.size(), 2u);

  const ReadPhase& phase = read.phases[0];
  ASSERT_TRUE(phase.has_counters);
  EXPECT_EQ(phase.instructions, 4'000'000'000ULL);
  EXPECT_EQ(phase.cycles, 2'000'000'000ULL);
  EXPECT_EQ(phase.cache_references, 50'000'000ULL);
  EXPECT_EQ(phase.cache_misses, 5'000'000ULL);
  EXPECT_EQ(phase.branch_misses, 1'000'000ULL);
  // Derived quantities are recomputed from the raw counts, never trusted
  // from the document (same policy as histogram quantiles).
  EXPECT_DOUBLE_EQ(phase.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(phase.cache_miss_rate(), 0.1);
  ASSERT_TRUE(phase.has_mem);
  EXPECT_EQ(phase.peak_rss_kb, 262'144u);
  EXPECT_EQ(phase.rss_delta_kb, -512);

  EXPECT_FALSE(read.phases[1].has_counters);
  EXPECT_FALSE(read.phases[1].has_mem);
}

TEST(ManifestReader, InvalidPhaseStatsLeaveTheDocumentByteIdentical) {
  // The off/unavailable contract: a PhaseStats that never got counters
  // (counters-off run, or perf_event_open denied) must serialize exactly
  // like the counter-less overload — byte for byte, not just field for
  // field.
  RunManifest with_stats("bench");
  with_stats.add_phase("p", 0.25, PhaseStats{});
  RunManifest plain("bench");
  plain.add_phase("p", 0.25);
  std::ostringstream a;
  std::ostringstream b;
  with_stats.write_json(a, MetricsSnapshot{});
  plain.write_json(b, MetricsSnapshot{});
  EXPECT_EQ(a.str(), b.str());
}

TEST(ManifestReader, PreCounterDocumentsParseCleanly) {
  // A document written before counter support: phases carry only
  // name/seconds and there is no "perf_counters" echo. Everything reads
  // back with availability flags off and an empty echo string.
  const std::string doc = R"({
    "manifest_schema": 1, "tool": "old",
    "config": {}, "phases": [{"name": "fast_campaign", "seconds": 1.5}],
    "metrics": {"counters": {}, "histograms": {}}
  })";
  const ReadManifest read = ManifestReader::read_string(doc);
  ASSERT_TRUE(read.ok()) << read.errors.front();
  ASSERT_EQ(read.phases.size(), 1u);
  EXPECT_FALSE(read.phases[0].has_counters);
  EXPECT_FALSE(read.phases[0].has_mem);
  EXPECT_TRUE(read.perf_counters.empty());
}

TEST(ManifestReader, ReadsPerfCounterAvailabilityEcho) {
  const std::string doc = R"({
    "benchmark": "campaign_wallclock",
    "perf_counters": "unavailable",
    "perf_counters_reason": "perf_event_open: No such file or directory",
    "phases": [{"name": "resilience_kernel_ms", "seconds": 0.1,
                "instructions": 1000, "cycles": 500}]
  })";
  const ReadManifest read = ManifestReader::read_string(doc);
  ASSERT_TRUE(read.ok()) << read.errors.front();
  EXPECT_EQ(read.perf_counters, "unavailable");
  ASSERT_EQ(read.phases.size(), 1u);
  EXPECT_TRUE(read.phases[0].has_counters);
  EXPECT_EQ(read.phases[0].instructions, 1000u);
}

TEST(ManifestReader, ReadsCampaignWallclockDocuments) {
  const std::string doc = R"({
    "benchmark": "campaign_wallclock",
    "version": "abc1234",
    "config": {"ases": 943, "pairs": 2048},
    "runs": [
      {"threads": 1, "seconds": 0.5, "speedup_vs_1": 1.0,
       "tasks": 2048, "propagations": 1984, "store_identical": true},
      {"threads": 2, "seconds": 0.3, "speedup_vs_1": 1.67,
       "tasks": 2048, "propagations": 1984, "store_identical": true}
    ],
    "recording": {"seconds": 0.52, "recording_overhead": 0.04,
                  "store_identical": true, "task_spans": 2048,
                  "verdicts": 211046},
    "metrics": {"counters": {"campaign.tasks_executed": 2048},
                "histograms": {}}
  })";
  const ReadManifest read = ManifestReader::read_string(doc);
  ASSERT_TRUE(read.ok()) << read.errors.front();
  EXPECT_EQ(read.schema, 0);  // bench documents carry no manifest_schema
  EXPECT_EQ(read.tool, "campaign_wallclock");
  EXPECT_EQ(read.version, "abc1234");

  ASSERT_EQ(read.runs.size(), 2u);
  EXPECT_EQ(read.runs[0].threads, 1u);
  EXPECT_EQ(read.runs[0].seconds, 0.5);
  EXPECT_EQ(read.runs[0].tasks, 2048u);
  EXPECT_EQ(read.runs[0].propagations, 1984u);
  EXPECT_TRUE(read.runs[0].store_identical);
  EXPECT_DOUBLE_EQ(read.runs[0].throughput(), 2048.0 / 0.5);
  EXPECT_EQ(read.runs[1].threads, 2u);

  EXPECT_TRUE(read.has_recording);
  EXPECT_EQ(read.recording_overhead, 0.04);
  EXPECT_EQ(read.metrics.counter("campaign.tasks_executed"), 2048u);
}

TEST(ManifestReader, QuantileFieldsAreRecomputedNotTrusted) {
  // A document whose stored p95 is nonsense: the reader must ignore it
  // and recompute from the buckets.
  const std::string doc = R"({
    "manifest_schema": 1, "tool": "t", "config": {}, "phases": [],
    "metrics": {"counters": {},
      "histograms": {"h": {"count": 4, "sum": 40, "min": 10, "max": 10,
        "p50": 999999, "p95": 999999, "p99": 999999,
        "buckets": [{"le": 15, "count": 4}]}}}
  })";
  const ReadManifest read = ManifestReader::read_string(doc);
  ASSERT_TRUE(read.ok());
  const HistogramSnapshot* h = read.metrics.histogram("h");
  ASSERT_NE(h, nullptr);
  // All four samples are 10 (min == max == 10): every quantile clamps
  // there, regardless of the bogus stored pNN.
  EXPECT_DOUBLE_EQ(h->quantile(0.95), 10.0);
}

TEST(ManifestReader, UnknownFieldsAndSectionsAreIgnored) {
  const std::string doc = R"({
    "manifest_schema": 1, "tool": "t",
    "config": {"k": 1}, "phases": [],
    "future_section": {"a": [1, 2, 3]},
    "metrics": {"counters": {"c": 5}, "histograms": {},
                "future_subsection": true}
  })";
  const ReadManifest read = ManifestReader::read_string(doc);
  ASSERT_TRUE(read.ok()) << read.errors.front();
  EXPECT_EQ(read.metrics.counter("c"), 5u);
}

TEST(ManifestReader, MalformedDocumentsReportErrors) {
  EXPECT_FALSE(ManifestReader::read_string("{truncated").ok());
  EXPECT_FALSE(ManifestReader::read_string("[1, 2]").ok());  // not an object
  EXPECT_FALSE(ManifestReader::read_string("").ok());
  EXPECT_FALSE(
      ManifestReader::read_file("/nonexistent-dir/manifest.json").ok());
}

TEST(ManifestReader, DocumentWithNeitherToolNorBenchmarkIsAnError) {
  const ReadManifest read =
      ManifestReader::read_string(R"({"something": "else"})");
  EXPECT_FALSE(read.ok());
}

}  // namespace
}  // namespace marcopolo::obs
