// obs::json parser unit tests: strictness (trailing garbage, malformed
// escapes), integer exactness beyond double's 2^53 range, \uXXXX
// decoding, and the forward-compatible lookup helpers the readers lean
// on.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace marcopolo::obs::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").boolean(), true);
  EXPECT_EQ(parse("false").boolean(), false);
  EXPECT_EQ(parse("\"hi\"").str(), "hi");
  EXPECT_EQ(parse("42").u64(), 42u);
  EXPECT_EQ(parse("-7").i64(), -7);
  EXPECT_EQ(parse("0.5").number(), 0.5);
  EXPECT_EQ(parse("1e3").number(), 1000.0);
  EXPECT_EQ(parse("  3  ").u64(), 3u);  // surrounding whitespace ok
}

TEST(JsonParse, IntegerTokensStayExactPast2To53) {
  // Steady-clock nanoseconds on a long-uptime host: 2^53 + 1 is not
  // representable as a double, so a double-only parser corrupts it.
  const std::uint64_t big = (std::uint64_t{1} << 53) + 1;
  const Value v = parse(std::to_string(big));
  EXPECT_EQ(v.u64(), big);
  EXPECT_TRUE(std::holds_alternative<std::uint64_t>(v.v));

  const Value top = parse("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ(top.u64(), ~std::uint64_t{0});

  const Value neg = parse("-9223372036854775807");
  EXPECT_EQ(neg.i64(), -9223372036854775807LL);
}

TEST(JsonParse, NumberCoercions) {
  EXPECT_EQ(parse("42").number(), 42.0);     // int token as double
  EXPECT_EQ(parse("-2").u64(), 0u);          // negative clamps to 0
  EXPECT_EQ(parse("41.9").u64(), 41u);       // double truncates
  EXPECT_EQ(parse("42").i64(), 42);
}

TEST(JsonParse, ObjectsAndArrays) {
  const Value doc = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.is_object());
  const Array& a = doc.at("a").array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].u64(), 1u);
  EXPECT_EQ(a[2].at("b").boolean(), true);
  EXPECT_EQ(doc.at("c").str(), "x");
  EXPECT_TRUE(parse("{}").object().empty());
  EXPECT_TRUE(parse("[]").array().empty());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d")").str(), "a\"b\\c/d");
  EXPECT_EQ(parse(R"("\n\r\t\b\f")").str(), "\n\r\t\b\f");
  EXPECT_EQ(parse(R"("\u0041")").str(), "A");
  // Non-ASCII code points decode to UTF-8.
  EXPECT_EQ(parse(R"("\u00e9")").str(), "\xc3\xa9");      // é
  EXPECT_EQ(parse(R"("\u20ac")").str(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, EscapeRoundTripThroughJsonEscape) {
  const std::string nasty = "quote\" back\\slash \n\t\x01 plain";
  const Value v = parse("\"" + json_escape(nasty) + "\"");
  EXPECT_EQ(v.str(), nasty);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{\"a\": 1"), ParseError);     // unexpected end
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);     // missing colon
  EXPECT_THROW(parse("[1, ]"), ParseError);         // dangling comma
  EXPECT_THROW(parse("1 2"), ParseError);           // trailing garbage
  EXPECT_THROW(parse("\"\\x\""), ParseError);       // unknown escape
  EXPECT_THROW(parse("\"\\u00g0\""), ParseError);   // bad hex digit
  EXPECT_THROW(parse("nul"), ParseError);           // truncated literal
  EXPECT_THROW(parse("{1: 2}"), ParseError);        // non-string key
}

TEST(JsonParse, ParseErrorCarriesByteOffset) {
  try {
    (void)parse("{\"a\": 1");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.offset(), 7u);
    EXPECT_NE(std::string(e.what()).find("byte 7"), std::string::npos);
  }
}

TEST(JsonValue, ForwardCompatibleLookups) {
  const Value doc = parse(R"({"n": 5, "f": 2.5, "b": true, "s": "x"})");
  EXPECT_EQ(doc.find("n")->u64(), 5u);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.u64_or("n", 0), 5u);
  EXPECT_EQ(doc.u64_or("missing", 9), 9u);
  EXPECT_EQ(doc.u64_or("s", 9), 9u);  // wrong kind -> fallback
  EXPECT_EQ(doc.number_or("f", 0.0), 2.5);
  EXPECT_EQ(doc.number_or("missing", 1.25), 1.25);
  EXPECT_EQ(doc.bool_or("b", false), true);
  EXPECT_EQ(doc.bool_or("missing", true), true);
  EXPECT_EQ(doc.string_or("s", ""), "x");
  EXPECT_EQ(doc.string_or("missing", "dflt"), "dflt");
  EXPECT_THROW((void)doc.at("missing"), std::out_of_range);
}

}  // namespace
}  // namespace marcopolo::obs::json
