// The live telemetry plane: hub ticks, the stall watchdog's exact
// firing boundary, the localhost endpoint (and its degradation when the
// port is taken), the timeseries reader's tamper detection, and the
// LineGuard that keeps ProgressReporter and Logger from shredding each
// other's stderr lines.
#include "obs/telemetry_hub.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/timeseries_reader.hpp"

namespace marcopolo::obs {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("mp_telemetry_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(TelemetryTest, TimeseriesRoundTrip) {
  MetricsRegistry registry;
  registry.counter("campaign.tasks_executed").add(7);

  TelemetryConfig cfg;
  cfg.timeseries_path = dir_;  // directory form -> <dir>/timeseries.ndjson
  cfg.metrics = &registry;
  TelemetryHub hub(cfg);
  hub.start();
  hub.add_planned_tasks(10);
  TelemetryWorkerSlot* slot = hub.open_worker_slot();
  hub.note_task_done(slot, 3);
  hub.tick_now();
  hub.note_task_done(slot, 4);
  hub.close_worker_slot(slot);
  hub.stop();  // writes the final tick

  const ReadTimeseries read = TimeseriesReader::read_file(
      TelemetryHub::resolve_timeseries_path(dir_));
  ASSERT_TRUE(read.ok()) << read.errors.front().message;
  EXPECT_TRUE(read.has_meta);
  EXPECT_EQ(read.schema, 1);
  ASSERT_GE(read.ticks.size(), 2u);
  for (std::size_t i = 1; i < read.ticks.size(); ++i) {
    EXPECT_GT(read.ticks[i].tick, read.ticks[i - 1].tick);
  }
  EXPECT_EQ(read.ticks.front().tasks_done, 3u);
  EXPECT_EQ(read.ticks.front().tasks_total, 10u);
  EXPECT_EQ(read.ticks.front().workers_live, 1u);
  const TimeseriesTick* last = read.last_tick();
  ASSERT_NE(last, nullptr);
  EXPECT_TRUE(last->final_tick);
  EXPECT_EQ(last->tasks_done, 7u);
  EXPECT_EQ(last->workers_live, 0u);
  // The embedded counter scrape carries the registry's values.
  EXPECT_EQ(last->counter("campaign.tasks_executed"), 7u);
}

TEST_F(TelemetryTest, StallFiresAtExactlyNTicksNotNMinusOne) {
  MetricsRegistry registry;
  TelemetryConfig cfg;
  cfg.stall_ticks = 3;
  cfg.metrics = &registry;
  TelemetryHub hub(cfg);  // no start(): tick_now() drives time by hand
  TelemetryWorkerSlot* slot = hub.open_worker_slot();

  hub.note_task_done(slot);
  hub.tick_now();  // progress on this tick
  hub.tick_now();  // zero tick 1
  hub.tick_now();  // zero tick 2 == N-1: must NOT fire yet
  EXPECT_EQ(hub.stalls(), 0u);
  hub.tick_now();  // zero tick 3 == N: fires
  EXPECT_EQ(hub.stalls(), 1u);
  hub.tick_now();  // stays stalled: no refire while stuck
  EXPECT_EQ(hub.stalls(), 1u);

  // Progress resets the window; a second stall fires again.
  hub.note_task_done(slot);
  hub.tick_now();
  for (int i = 0; i < 3; ++i) hub.tick_now();
  EXPECT_EQ(hub.stalls(), 2u);
  EXPECT_EQ(registry.snapshot().counter("campaign.stalls"), 2u);
}

TEST_F(TelemetryTest, StallCounterInternedOnlyOnFirstStall) {
  // Pure-observer byte identity: a run that never stalls must leave the
  // registry without a campaign.stalls counter at all — not a zero row.
  MetricsRegistry registry;
  TelemetryConfig cfg;
  cfg.stall_ticks = 2;
  cfg.metrics = &registry;
  TelemetryHub hub(cfg);
  TelemetryWorkerSlot* slot = hub.open_worker_slot();
  for (int i = 0; i < 5; ++i) {
    hub.note_task_done(slot);
    hub.tick_now();
  }
  EXPECT_EQ(hub.stalls(), 0u);
  for (const auto& [name, value] : registry.snapshot().counters) {
    EXPECT_NE(name, "campaign.stalls") << "interned without a stall";
  }
}

TEST_F(TelemetryTest, NoStallWhileNoWorkersAreLive) {
  TelemetryConfig cfg;
  cfg.stall_ticks = 1;
  TelemetryHub hub(cfg);
  for (int i = 0; i < 4; ++i) hub.tick_now();  // idle, zero workers
  EXPECT_EQ(hub.stalls(), 0u);
}

TEST_F(TelemetryTest, MetricsEndpointAgreesWithRegistrySnapshot) {
  MetricsRegistry registry;
  registry.counter("campaign.tasks_executed").add(42);
  registry.counter("propagation.runs").add(5);
  registry.histogram("campaign.phase.propagate_ns").observe(1024);

  TelemetryConfig cfg;
  cfg.serve_port = 0;  // kernel-assigned
  cfg.metrics = &registry;
  TelemetryHub hub(cfg);
  hub.start();
  if (!hub.serving()) {
    GTEST_SKIP() << "no loopback socket here: " << hub.serve_reason();
  }
  hub.tick_now();  // publish a payload

  int status = 0;
  std::string body;
  std::string error;
  ASSERT_TRUE(
      http_get_localhost(hub.port(), "/healthz", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");

  ASSERT_TRUE(
      http_get_localhost(hub.port(), "/metrics", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);

  // Valid Prometheus text exposition: every non-empty line is a comment
  // or `name[{labels}] value`, and each sample name was declared by a
  // preceding # TYPE line.
  std::istringstream lines(body);
  std::string line;
  std::vector<std::string> typed;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      typed.push_back(rest.substr(0, rest.find(' ')));
      continue;
    }
    if (line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "bad sample line: " << line;
    std::string name = line.substr(0, space);
    if (const auto brace = name.find('{'); brace != std::string::npos) {
      name = name.substr(0, brace);
    }
    bool declared = false;
    for (const std::string& t : typed) {
      declared = declared || name.rfind(t, 0) == 0;
    }
    EXPECT_TRUE(declared) << "sample without # TYPE: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);

  // And the values agree with a direct registry scrape.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_NE(body.find("marcopolo_campaign_tasks_executed " +
                      std::to_string(snap.counter("campaign.tasks_executed"))),
            std::string::npos);
  EXPECT_NE(body.find("marcopolo_propagation_runs " +
                      std::to_string(snap.counter("propagation.runs"))),
            std::string::npos);
  EXPECT_NE(body.find("marcopolo_campaign_phase_propagate_ns_count 1"),
            std::string::npos);

  // /snapshot.json is one bare tick object.
  ASSERT_TRUE(http_get_localhost(hub.port(), "/snapshot.json", &status,
                                 &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  TimeseriesTick tick;
  ASSERT_TRUE(TimeseriesReader::parse_snapshot(body, &tick, &error)) << error;

  ASSERT_TRUE(
      http_get_localhost(hub.port(), "/nope", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 404);
  hub.stop();
}

TEST_F(TelemetryTest, PortInUseDegradesToUnavailableWithReason) {
  TelemetryServer first;
  if (!first.start(0)) {
    GTEST_SKIP() << "no loopback socket here: " << first.unavailable_reason();
  }

  TelemetryConfig cfg;
  cfg.serve_port = first.port();  // guaranteed taken
  cfg.timeseries_path = dir_;
  cfg.metrics = nullptr;
  TelemetryHub hub(cfg);
  hub.start();
  EXPECT_FALSE(hub.serving());
  EXPECT_FALSE(hub.serve_reason().empty());
  EXPECT_NE(hub.serve_reason().find(std::to_string(first.port())),
            std::string::npos)
      << "reason should name the contested endpoint: " << hub.serve_reason();

  // Degraded serving must not degrade the rest of the hub: ticks still
  // land in the time-series file.
  hub.tick_now();
  hub.stop();
  const ReadTimeseries read = TimeseriesReader::read_file(
      TelemetryHub::resolve_timeseries_path(dir_));
  EXPECT_TRUE(read.ok());
  EXPECT_GE(read.ticks.size(), 1u);
  first.stop();
}

TEST(TimeseriesReaderTest, RejectsNonMonotoneTickIdsWithLineNumbers) {
  std::istringstream in(
      "{\"type\":\"meta\",\"timeseries_schema\":1,\"tick_ms\":100}\n"
      "{\"type\":\"tick\",\"tick\":0,\"tasks_done\":1}\n"
      "{\"type\":\"tick\",\"tick\":2,\"tasks_done\":2}\n"
      "{\"type\":\"tick\",\"tick\":1,\"tasks_done\":3}\n");
  const ReadTimeseries read = TimeseriesReader::read(in);
  EXPECT_FALSE(read.ok());
  ASSERT_EQ(read.errors.size(), 1u);
  EXPECT_EQ(read.errors[0].line, 4u);
  EXPECT_NE(read.errors[0].message.find("non-monotone tick id 1"),
            std::string::npos);
  EXPECT_EQ(read.ticks.size(), 2u);  // the offending tick is dropped
}

TEST(TimeseriesReaderTest, UnsupportedSchemaIsAnErrorUnknownTypeIsNot) {
  std::istringstream in(
      "{\"type\":\"meta\",\"timeseries_schema\":99}\n"
      "{\"type\":\"sparkline\",\"whatever\":1}\n");
  const ReadTimeseries read = TimeseriesReader::read(in);
  EXPECT_FALSE(read.ok());
  ASSERT_EQ(read.errors.size(), 1u);
  EXPECT_EQ(read.errors[0].line, 1u);
  EXPECT_NE(read.errors[0].message.find("unsupported timeseries_schema 99"),
            std::string::npos);
  EXPECT_EQ(read.skipped_records, 1u);  // forward compat, not an error
}

// --- LineGuard -------------------------------------------------------------

std::string drain(std::FILE* f) {
  std::fflush(f);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<std::size_t>(size), '\0');
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  return out;
}

TEST(LineGuardTest, PrintlnBlanksAndRedrawsTheLiveLine) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  LineGuard guard(f);
  guard.live_line("12/99 tasks", /*final=*/false);
  guard.println("[warn] stalled");
  guard.finish_live_line();
  const std::string bytes = drain(f);
  std::fclose(f);

  // live line, blank-out, the log line on its own row, live redraw, and
  // a finalizing newline — in that order.
  const std::string expected =
      "\r12/99 tasks"
      "\r           \r"
      "[warn] stalled\n"
      "\r12/99 tasks"
      "\r12/99 tasks\n";
  EXPECT_EQ(bytes, expected);
}

TEST(LineGuardTest, ConcurrentWritersNeverShredALogLine) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  LineGuard guard(f);
  constexpr int kLines = 200;
  std::thread progress([&guard] {
    for (int i = 0; i < kLines; ++i) {
      guard.live_line("progress " + std::to_string(i), false);
    }
  });
  std::thread logs([&guard] {
    for (int i = 0; i < kLines; ++i) {
      guard.println("log line " + std::to_string(i));
    }
  });
  progress.join();
  logs.join();
  guard.finish_live_line();
  const std::string bytes = drain(f);
  std::fclose(f);

  // Every println line must appear intact: preceded by line start
  // (\r or \n) and followed by its newline, never torn by a redraw.
  for (int i = 0; i < kLines; ++i) {
    const std::string needle = "log line " + std::to_string(i) + "\n";
    EXPECT_NE(bytes.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace marcopolo::obs
