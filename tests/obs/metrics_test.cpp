// Contract of the sharded metrics registry: null handles drop updates,
// bucket boundaries follow 2^k - 1, and the shard merge is a sum —
// totals must be identical for any worker count executing the same
// logical workload (the property the campaign's byte-determinism
// invariant extends to its telemetry).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace marcopolo::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter c = reg.counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(reg.snapshot().counter("test.counter"), 42u);
}

TEST(Metrics, InterningIsIdempotent) {
  MetricsRegistry reg;
  Counter a = reg.counter("same.name");
  Counter b = reg.counter("same.name");
  a.add(1);
  b.add(2);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("same.name"), 3u);
  EXPECT_EQ(snap.counters.size(), 1u);
}

TEST(Metrics, NullHandlesDropUpdates) {
  Counter null_counter;
  Histogram null_histogram;
  EXPECT_FALSE(static_cast<bool>(null_counter));
  EXPECT_FALSE(static_cast<bool>(null_histogram));
  // Must not crash or touch any registry.
  null_counter.add(7);
  null_histogram.observe(7);

  // The null-safe static helpers produce null handles for null registries.
  Counter c = MetricsRegistry::counter(nullptr, "x");
  Histogram h = MetricsRegistry::histogram(nullptr, "y");
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(h));
  c.add();
  h.observe(1);
}

TEST(Metrics, SnapshotOfUnknownNameIsZero) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.snapshot().counter("never.registered"), 0u);
  EXPECT_EQ(reg.snapshot().histogram("never.registered"), nullptr);
}

TEST(Metrics, HistogramBucketBoundaries) {
  // Bucket upper bounds are 2^bit_width(v) - 1: observing v puts it in
  // the bucket with the smallest le >= v from {0, 1, 3, 7, 15, ...}.
  MetricsRegistry reg;
  Histogram h = reg.histogram("test.hist");
  h.observe(0);  // le = 0
  h.observe(1);  // le = 1
  h.observe(2);  // le = 3
  h.observe(3);  // le = 3
  h.observe(4);  // le = 7
  h.observe(7);  // le = 7
  h.observe(8);  // le = 15
  h.observe(1023);  // le = 1023
  h.observe(1024);  // le = 2047

  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot* s = snap.histogram("test.hist");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 9u);
  EXPECT_EQ(s->sum, 0u + 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024);
  EXPECT_EQ(s->min, 0u);
  EXPECT_EQ(s->max, 1024u);

  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {0, 1}, {1, 1}, {3, 2}, {7, 2}, {15, 1}, {1023, 1}, {2047, 1}};
  EXPECT_EQ(s->buckets, expected);
}

TEST(Metrics, HistogramExtremeValues) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("test.extreme");
  const std::uint64_t huge = ~std::uint64_t{0};
  h.observe(huge);
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot* s = snap.histogram("test.extreme");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->buckets.size(), 1u);
  EXPECT_EQ(s->buckets[0].first, huge);  // top bucket le saturates at 2^64-1
  EXPECT_EQ(s->min, huge);
  EXPECT_EQ(s->max, huge);
}

TEST(Metrics, EmptyHistogramHasZeroMin) {
  MetricsRegistry reg;
  (void)reg.histogram("test.empty");
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot* s = snap.histogram("test.empty");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 0u);
  EXPECT_EQ(s->min, 0u);
  EXPECT_EQ(s->max, 0u);
  EXPECT_TRUE(s->buckets.empty());
}

TEST(Metrics, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("zebra").add(1);
  reg.counter("alpha").add(1);
  reg.counter("mid").add(1);
  reg.histogram("z.hist").observe(1);
  reg.histogram("a.hist").observe(1);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "a.hist");
  EXPECT_EQ(snap.histograms[1].name, "z.hist");
}

/// Run `total_updates` counter increments and histogram observations
/// split across `n_threads` workers, and return the merged snapshot.
/// The logical workload is identical for every thread count.
MetricsSnapshot run_sharded_workload(std::size_t n_threads) {
  MetricsRegistry reg;
  Counter c = reg.counter("work.items");
  Histogram h = reg.histogram("work.latency");
  constexpr std::size_t kTotal = 4096;

  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    pool.emplace_back([&, t] {
      // Static partition of the same global iteration space.
      for (std::size_t i = t; i < kTotal; i += n_threads) {
        c.add(1);
        h.observe(i % 1000);
      }
    });
  }
  for (auto& th : pool) th.join();
  return reg.snapshot();
}

TEST(Metrics, ShardMergeIsThreadCountInvariant) {
  // The acceptance property: merged totals are a pure function of the
  // logical workload, not of how many shards it was spread over. Threads
  // join before snapshot(), and shards outlive their threads.
  const MetricsSnapshot serial = run_sharded_workload(1);
  for (const std::size_t threads : {4u, 64u}) {
    const MetricsSnapshot parallel = run_sharded_workload(threads);
    EXPECT_EQ(parallel.counter("work.items"), serial.counter("work.items"))
        << "threads=" << threads;
    const HistogramSnapshot* a = serial.histogram("work.latency");
    const HistogramSnapshot* b = parallel.histogram("work.latency");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->count, a->count) << "threads=" << threads;
    EXPECT_EQ(b->sum, a->sum) << "threads=" << threads;
    EXPECT_EQ(b->min, a->min) << "threads=" << threads;
    EXPECT_EQ(b->max, a->max) << "threads=" << threads;
    EXPECT_EQ(b->buckets, a->buckets) << "threads=" << threads;
  }
}

TEST(Metrics, ShardsSurviveThreadExit) {
  // Counts written by a thread that has already joined must appear in a
  // later snapshot (the registry owns the shards, not the threads).
  MetricsRegistry reg;
  Counter c = reg.counter("ephemeral.thread");
  std::thread worker([&] { c.add(123); });
  worker.join();
  EXPECT_EQ(reg.snapshot().counter("ephemeral.thread"), 123u);
}

TEST(Metrics, DistinctRegistriesAreIsolated) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("shared.name").add(1);
  b.counter("shared.name").add(10);
  EXPECT_EQ(a.snapshot().counter("shared.name"), 1u);
  EXPECT_EQ(b.snapshot().counter("shared.name"), 10u);
}

TEST(Metrics, SnapshotUnderInterningChurnIsMonotone) {
  // The telemetry hub scrapes mid-run: snapshot() must stay race-free
  // (TSan runs this in CI) and every counter must read as a monotone sum
  // while worker threads intern new series and bump existing ones. A
  // scrape racing an add() may land on either tick — but a value must
  // never decrease between successive scrapes.
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, &stop, t] {
      Counter mine = reg.counter("churn.fixed." + std::to_string(t));
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        mine.add(1);
        // Interning churn: new names force shard growth under the
        // scraper's feet.
        reg.counter("churn.fresh." + std::to_string(t) + "." +
                     std::to_string(i % 257))
            .add(1);
        reg.histogram("churn.hist." + std::to_string(t)).observe(
            static_cast<std::uint64_t>(i % 1024));
      }
    });
  }

  std::uint64_t prev_total = 0;
  std::size_t prev_series = 0;
  for (int scrape = 0; scrape < 50; ++scrape) {
    const MetricsSnapshot snap = reg.snapshot();
    std::uint64_t total = 0;
    for (const auto& [name, value] : snap.counters) total += value;
    EXPECT_GE(total, prev_total) << "counter sum went backwards";
    EXPECT_GE(snap.counters.size(), prev_series) << "series vanished";
    prev_total = total;
    prev_series = snap.counters.size();
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();

  // Quiesced: the fixed counters hold exactly what their writers added.
  const MetricsSnapshot final_snap = reg.snapshot();
  std::uint64_t fixed = 0;
  for (int t = 0; t < 4; ++t) {
    fixed += final_snap.counter("churn.fixed." + std::to_string(t));
  }
  std::uint64_t fresh = 0;
  for (const auto& [name, value] : final_snap.counters) {
    if (name.rfind("churn.fresh.", 0) == 0) fresh += value;
  }
  EXPECT_EQ(fixed, fresh) << "one fixed and one fresh bump per iteration";
}

}  // namespace
}  // namespace marcopolo::obs
