// RunManifest JSON round-trip: the emitted document must be valid JSON
// and decode back to the config, phases, and metrics that were written.
// Parsing goes through the shared obs::json parser — strict enough to
// reject trailing garbage and malformed escapes, which doubles as a
// syntax check on the writer.
#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace marcopolo::obs {
namespace {

json::Value parse(const std::string& text) { return json::parse(text); }

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- Tests ----------------------------------------------------------------

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(RunManifest, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("campaign.tasks_executed").add(1024);
  reg.counter("orchestrator.attack_attempts").add(7);
  Histogram h = reg.histogram("campaign.task_ns");
  h.observe(5);
  h.observe(500);
  h.observe(50000);

  RunManifest manifest("round_trip_test");
  manifest.set("tie_break", "hashed");
  manifest.set("tie_break_seed", std::uint64_t{0xCAFE});
  manifest.set("threads", 4);
  manifest.set("fraction", 0.25);
  manifest.set("rpki", true);
  manifest.set("note", "quote\" and \\slash");
  manifest.add_phase("build", 1.5);
  manifest.add_phase("campaign", 0.125);

  std::ostringstream out;
  manifest.write_json(out, reg.snapshot());

  const json::Value doc = parse(out.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("manifest_schema").u64(), 1u);
  EXPECT_EQ(doc.at("tool").str(), "round_trip_test");

  const json::Value& config = doc.at("config");
  EXPECT_EQ(config.at("tie_break").str(), "hashed");
  EXPECT_EQ(config.at("tie_break_seed").u64(), 0xCAFEu);
  EXPECT_EQ(config.at("threads").u64(), 4u);
  EXPECT_EQ(config.at("fraction").number(), 0.25);
  EXPECT_EQ(config.at("rpki").boolean(), true);
  EXPECT_EQ(config.at("note").str(), "quote\" and \\slash");

  const json::Array& phases = doc.at("phases").array();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].at("name").str(), "build");
  EXPECT_EQ(phases[0].at("seconds").number(), 1.5);
  EXPECT_EQ(phases[1].at("name").str(), "campaign");
  EXPECT_EQ(phases[1].at("seconds").number(), 0.125);

  const json::Value& metrics = doc.at("metrics");
  const json::Object& counters = metrics.at("counters").object();
  EXPECT_EQ(counters.at("campaign.tasks_executed").u64(), 1024u);
  EXPECT_EQ(counters.at("orchestrator.attack_attempts").u64(), 7u);

  const json::Value& hist = metrics.at("histograms").at("campaign.task_ns");
  EXPECT_EQ(hist.at("count").u64(), 3u);
  EXPECT_EQ(hist.at("sum").u64(), 5u + 500u + 50000u);
  EXPECT_EQ(hist.at("min").u64(), 5u);
  EXPECT_EQ(hist.at("max").u64(), 50000u);
  const json::Array& buckets = hist.at("buckets").array();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].at("le").u64(), 7u);      // 5 -> le 7
  EXPECT_EQ(buckets[1].at("le").u64(), 511u);    // 500 -> le 511
  EXPECT_EQ(buckets[2].at("le").u64(), 65535u);  // 50000 -> le 65535
  for (const json::Value& b : buckets) {
    EXPECT_EQ(b.at("count").u64(), 1u);
  }
}

TEST(RunManifest, EmptyManifestIsValidJson) {
  RunManifest manifest("empty");
  MetricsRegistry reg;
  std::ostringstream out;
  manifest.write_json(out, reg.snapshot());
  const json::Value doc = parse(out.str());
  EXPECT_TRUE(doc.at("config").object().empty());
  EXPECT_TRUE(doc.at("phases").array().empty());
  EXPECT_TRUE(doc.at("metrics").at("counters").object().empty());
  EXPECT_TRUE(doc.at("metrics").at("histograms").object().empty());
}

TEST(RunManifest, SetOverwritesExistingKey) {
  RunManifest manifest("overwrite");
  manifest.set("key", 1);
  manifest.set("key", 2);
  MetricsRegistry reg;
  std::ostringstream out;
  manifest.write_json(out, reg.snapshot());
  const json::Value doc = parse(out.str());
  EXPECT_EQ(doc.at("config").at("key").u64(), 2u);
  EXPECT_EQ(doc.at("config").object().size(), 1u);
}

TEST(RunManifest, WriteFileRejectsUnwritablePath) {
  RunManifest manifest("io");
  MetricsRegistry reg;
  EXPECT_FALSE(
      manifest.write_file("/nonexistent-dir/out.json", reg.snapshot()));
}

TEST(RunManifest, WriteFileIsAtomicAndLeavesNoTmpBehind) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mp_manifest_atomic_test")
          .string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/run.json";

  // Pre-existing content must survive intact until the rename lands.
  { std::ofstream(path) << "stale, not JSON"; }

  RunManifest manifest("atomic");
  manifest.set("key", 1);
  MetricsRegistry reg;
  ASSERT_TRUE(manifest.write_file(path, reg.snapshot()));

  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const json::Value doc = parse(slurp(path));
  EXPECT_EQ(doc.at("tool").str(), "atomic");

  std::filesystem::remove_all(dir);
}

TEST(WriteMetricsJson, StandaloneDocumentParses) {
  MetricsRegistry reg;
  reg.counter("a").add(1);
  reg.histogram("b").observe(3);
  std::ostringstream out;
  write_metrics_json(out, reg.snapshot(), "    ");
  const json::Value doc = parse(out.str());
  EXPECT_EQ(doc.at("counters").at("a").u64(), 1u);
  EXPECT_EQ(doc.at("histograms").at("b").at("count").u64(), 1u);
}

}  // namespace
}  // namespace marcopolo::obs
