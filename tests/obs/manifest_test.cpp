// RunManifest JSON round-trip: the emitted document must be valid JSON
// and decode back to the config, phases, and metrics that were written.
// The repo has no JSON dependency, so the test carries a minimal
// recursive-descent parser — strict enough to reject trailing garbage
// and malformed escapes, which doubles as a syntax check on the writer.
#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace marcopolo::obs {
namespace {

// --- Minimal JSON value + parser -----------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    return object().at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    if (consume_literal("null")) return JsonValue{nullptr};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      (*obj)[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{obj};
    }
  }

  JsonValue parse_array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{arr};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit");
          }
          pos_ += 4;
          if (code > 0x7F) fail("test parser only handles ASCII escapes");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    return JsonValue{std::stod(std::string(text_.substr(start, pos_ - start)))};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- Tests ----------------------------------------------------------------

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(RunManifest, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("campaign.tasks_executed").add(1024);
  reg.counter("orchestrator.attack_attempts").add(7);
  Histogram h = reg.histogram("campaign.task_ns");
  h.observe(5);
  h.observe(500);
  h.observe(50000);

  RunManifest manifest("round_trip_test");
  manifest.set("tie_break", "hashed");
  manifest.set("tie_break_seed", std::uint64_t{0xCAFE});
  manifest.set("threads", 4);
  manifest.set("fraction", 0.25);
  manifest.set("rpki", true);
  manifest.set("note", "quote\" and \\slash");
  manifest.add_phase("build", 1.5);
  manifest.add_phase("campaign", 0.125);

  std::ostringstream out;
  manifest.write_json(out, reg.snapshot());

  const JsonValue doc = JsonParser(out.str()).parse();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("manifest_schema").number(), 1.0);
  EXPECT_EQ(doc.at("tool").str(), "round_trip_test");

  const JsonValue& config = doc.at("config");
  EXPECT_EQ(config.at("tie_break").str(), "hashed");
  EXPECT_EQ(config.at("tie_break_seed").number(), double{0xCAFE});
  EXPECT_EQ(config.at("threads").number(), 4.0);
  EXPECT_EQ(config.at("fraction").number(), 0.25);
  EXPECT_EQ(std::get<bool>(config.at("rpki").v), true);
  EXPECT_EQ(config.at("note").str(), "quote\" and \\slash");

  const JsonArray& phases = doc.at("phases").array();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].at("name").str(), "build");
  EXPECT_EQ(phases[0].at("seconds").number(), 1.5);
  EXPECT_EQ(phases[1].at("name").str(), "campaign");
  EXPECT_EQ(phases[1].at("seconds").number(), 0.125);

  const JsonValue& metrics = doc.at("metrics");
  const JsonObject& counters = metrics.at("counters").object();
  EXPECT_EQ(counters.at("campaign.tasks_executed").number(), 1024.0);
  EXPECT_EQ(counters.at("orchestrator.attack_attempts").number(), 7.0);

  const JsonValue& hist = metrics.at("histograms").at("campaign.task_ns");
  EXPECT_EQ(hist.at("count").number(), 3.0);
  EXPECT_EQ(hist.at("sum").number(), 5.0 + 500.0 + 50000.0);
  EXPECT_EQ(hist.at("min").number(), 5.0);
  EXPECT_EQ(hist.at("max").number(), 50000.0);
  const JsonArray& buckets = hist.at("buckets").array();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].at("le").number(), 7.0);     // 5 -> le 7
  EXPECT_EQ(buckets[1].at("le").number(), 511.0);   // 500 -> le 511
  EXPECT_EQ(buckets[2].at("le").number(), 65535.0); // 50000 -> le 65535
  for (const JsonValue& b : buckets) {
    EXPECT_EQ(b.at("count").number(), 1.0);
  }
}

TEST(RunManifest, EmptyManifestIsValidJson) {
  RunManifest manifest("empty");
  MetricsRegistry reg;
  std::ostringstream out;
  manifest.write_json(out, reg.snapshot());
  const JsonValue doc = JsonParser(out.str()).parse();
  EXPECT_TRUE(doc.at("config").object().empty());
  EXPECT_TRUE(doc.at("phases").array().empty());
  EXPECT_TRUE(doc.at("metrics").at("counters").object().empty());
  EXPECT_TRUE(doc.at("metrics").at("histograms").object().empty());
}

TEST(RunManifest, SetOverwritesExistingKey) {
  RunManifest manifest("overwrite");
  manifest.set("key", 1);
  manifest.set("key", 2);
  MetricsRegistry reg;
  std::ostringstream out;
  manifest.write_json(out, reg.snapshot());
  const JsonValue doc = JsonParser(out.str()).parse();
  EXPECT_EQ(doc.at("config").at("key").number(), 2.0);
  EXPECT_EQ(doc.at("config").object().size(), 1u);
}

TEST(RunManifest, WriteFileRejectsUnwritablePath) {
  RunManifest manifest("io");
  MetricsRegistry reg;
  EXPECT_FALSE(
      manifest.write_file("/nonexistent-dir/out.json", reg.snapshot()));
}

TEST(WriteMetricsJson, StandaloneDocumentParses) {
  MetricsRegistry reg;
  reg.counter("a").add(1);
  reg.histogram("b").observe(3);
  std::ostringstream out;
  write_metrics_json(out, reg.snapshot(), "    ");
  const JsonValue doc = JsonParser(out.str()).parse();
  EXPECT_EQ(doc.at("counters").at("a").number(), 1.0);
  EXPECT_EQ(doc.at("histograms").at("b").at("count").number(), 1.0);
}

}  // namespace
}  // namespace marcopolo::obs
