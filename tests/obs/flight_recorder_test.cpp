// FlightRecorder buffer ownership / drain merge semantics, the trace
// exporters (Chrome trace_event, NDJSON journal, Prometheus text), and
// HistogramSnapshot quantile estimation.
#include "obs/flight_recorder.hpp"
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace marcopolo::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(FlightRecorder, DrainMergesConcurrentWorkerLanes) {
  FlightRecorder recorder;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kTasksPerThread = 50;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      // The contract: each worker opens its own buffer on its own thread
      // and appends without synchronization.
      FlightBuffer* buffer = recorder.open_buffer();
      for (std::size_t i = 0; i < kTasksPerThread; ++i) {
        TaskSpanRecord task;
        task.announcer = static_cast<std::uint32_t>(t);
        task.adversary = static_cast<std::uint32_t>(i);
        task.victim_rows = 3;
        task.start_ns = flight_now_ns();
        task.duration_ns = 10;
        buffer->record_task(task);
        VerdictRecord verdict;
        verdict.victim = static_cast<std::uint16_t>(t);
        verdict.outcome = i % 2 == 0 ? 2 : 1;
        verdict.decided_by = VerdictStep::RouteAge;
        verdict.contested = true;
        buffer->record_verdict(verdict);
        recorder.note_verdicts(1, i % 2 == 0 ? 1 : 0);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(recorder.verdicts(), kThreads * kTasksPerThread);
  EXPECT_EQ(recorder.adversary_verdicts(), kThreads * kTasksPerThread / 2);

  const FlightJournal journal = recorder.drain();
  ASSERT_EQ(journal.workers.size(), kThreads);
  for (std::size_t w = 0; w < journal.workers.size(); ++w) {
    // drain() sorts lanes by worker id and ids are dense.
    EXPECT_EQ(journal.workers[w].worker, w);
    EXPECT_EQ(journal.workers[w].tasks.size(), kTasksPerThread);
    EXPECT_EQ(journal.workers[w].verdicts.size(), kTasksPerThread);
  }
  EXPECT_EQ(journal.task_count(), kThreads * kTasksPerThread);
  EXPECT_EQ(journal.verdict_count(), kThreads * kTasksPerThread);
  EXPECT_EQ(journal.adversary_verdict_count(),
            kThreads * kTasksPerThread / 2);
  EXPECT_GT(journal.epoch_ns, 0u);
  for (const auto& lane : journal.workers) {
    for (const auto& task : lane.tasks) {
      EXPECT_GE(task.start_ns, journal.epoch_ns)
          << "epoch must be the earliest wall start";
    }
  }

  // Drain resets: counters zeroed, lanes gone.
  EXPECT_EQ(recorder.verdicts(), 0u);
  EXPECT_EQ(recorder.drain().workers.size(), 0u);
}

TEST(FlightRecorder, EmptyLanesAreDroppedFromJournal) {
  FlightRecorder recorder;
  FlightBuffer* active = recorder.open_buffer();
  (void)recorder.open_buffer();  // never written — must not become a lane
  active->record_task(TaskSpanRecord{});
  const FlightJournal journal = recorder.drain();
  ASSERT_EQ(journal.workers.size(), 1u);
  EXPECT_EQ(journal.task_count(), 1u);
}

TEST(VerdictRecord, RouteAgeSensitivityNeedsContest) {
  VerdictRecord v;
  v.decided_by = VerdictStep::RouteAge;
  v.contested = false;
  EXPECT_FALSE(v.route_age_sensitive());
  v.contested = true;
  EXPECT_TRUE(v.route_age_sensitive());
  v.decided_by = VerdictStep::PathLength;
  EXPECT_FALSE(v.route_age_sensitive());
}

TEST(VerdictStep, Names) {
  EXPECT_STREQ(to_cstring(VerdictStep::LocalPref), "local_pref");
  EXPECT_STREQ(to_cstring(VerdictStep::RouteAge), "route_age");
  EXPECT_STREQ(to_cstring(VerdictStep::MoreSpecific), "more_specific");
  EXPECT_STREQ(to_cstring(VerdictStep::Unopposed), "unopposed");
}

FlightJournal sample_journal() {
  FlightRecorder recorder;
  FlightBuffer* wall = recorder.open_buffer();
  TaskSpanRecord task;
  task.announcer = 1;
  task.adversary = 2;
  task.victim_rows = 1;
  task.start_ns = 1'000'000;
  task.duration_ns = 5'500;
  wall->record_task(task);
  PropagationRunRecord prop;
  prop.start_ns = 1'000'100;
  prop.duration_ns = 4'000;
  prop.delivered = 42;
  prop.decided[2] = 7;
  wall->record_propagation(prop);
  VerdictRecord verdict;
  verdict.victim = 1;
  verdict.adversary = 2;
  verdict.perspective = 9;
  verdict.outcome = 2;
  verdict.decided_by = VerdictStep::RouteAge;
  verdict.contested = true;
  wall->record_verdict(verdict);

  FlightBuffer* sim = recorder.open_buffer();
  AttackSpanRecord attack;
  attack.lane = 3;
  attack.victim = 1;
  attack.adversary = 2;
  attack.attempt = 1;
  attack.complete = true;
  attack.announce_us = 100;
  attack.dcv_us = 400;
  attack.conclude_us = 450;
  sim->record_attack(attack);
  sim->record_quorum(QuorumRecord{"cloudflare", 3, 1, 2, true, 460});
  return recorder.drain();
}

TEST(ChromeTrace, EmitsLanesSpansAndInstants) {
  const FlightJournal journal = sample_journal();
  std::ostringstream out;
  write_chrome_trace(out, journal);
  const std::string trace = out.str();

  EXPECT_NE(trace.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // One thread_name per worker lane, plus both process names.
  EXPECT_NE(trace.find("fast_campaign workers (wall clock)"),
            std::string::npos);
  EXPECT_NE(trace.find("orchestrator (virtual time)"), std::string::npos);
  EXPECT_NE(trace.find("worker 0"), std::string::npos);
  // The task span: µs timestamps relative to the epoch with ns decimals.
  EXPECT_NE(trace.find("task 1\\u21922"), std::string::npos);
  EXPECT_NE(trace.find("\"ts\": 0.000, \"dur\": 5.500"), std::string::npos);
  // Propagation child span and the orchestrator side.
  EXPECT_NE(trace.find("\"name\": \"propagate\""), std::string::npos);
  EXPECT_NE(trace.find("attack 1\\u21922 #1"), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"propagation_wait\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"dcv_fanout\""), std::string::npos);
  EXPECT_NE(trace.find("quorum cloudflare pass"), std::string::npos);
  // Every event object closes: balanced braces make valid JSON likely;
  // the CI job parses it for real.
  EXPECT_EQ(count_occurrences(trace, "{"), count_occurrences(trace, "}"));
}

TEST(NdjsonJournal, OneObjectPerLineWithMetaHeader) {
  const FlightJournal journal = sample_journal();
  std::ostringstream out;
  write_journal_ndjson(out, journal);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> parsed;
  while (std::getline(lines, line)) parsed.push_back(line);

  // meta + task + propagation + verdict + attack + quorum.
  ASSERT_EQ(parsed.size(), 6u);
  for (const std::string& l : parsed) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  EXPECT_NE(parsed[0].find("\"journal_schema\": 1"), std::string::npos);
  EXPECT_NE(parsed[0].find("\"adversary_verdicts\": 1"), std::string::npos);
  const std::string all = out.str();
  EXPECT_NE(all.find("\"decided_by\": \"route_age\""), std::string::npos);
  EXPECT_NE(all.find("\"route_age_sensitive\": true"), std::string::npos);
  EXPECT_NE(all.find("\"outcome\": \"adversary\""), std::string::npos);
  EXPECT_NE(all.find("\"type\": \"quorum\""), std::string::npos);
}

TEST(PrometheusText, CumulativeBucketsAndSanitizedNames) {
  MetricsRegistry registry;
  registry.counter("campaign.tasks_executed").add(7);
  Histogram h = registry.histogram("campaign.task_ns");
  h.observe(1);   // bucket le=1
  h.observe(2);   // bucket le=3
  h.observe(3);   // bucket le=3
  const MetricsSnapshot snap = registry.snapshot();

  std::ostringstream out;
  write_prometheus_text(out, snap);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE marcopolo_campaign_tasks_executed counter"),
            std::string::npos);
  EXPECT_NE(text.find("marcopolo_campaign_tasks_executed 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE marcopolo_campaign_task_ns histogram"),
            std::string::npos);
  // Buckets are cumulative and end with +Inf == count.
  EXPECT_NE(text.find("marcopolo_campaign_task_ns_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("marcopolo_campaign_task_ns_bucket{le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("marcopolo_campaign_task_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("marcopolo_campaign_task_ns_sum 6"), std::string::npos);
  EXPECT_NE(text.find("marcopolo_campaign_task_ns_count 3"),
            std::string::npos);
}

TEST(TraceDir, WritesAllThreeFiles) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "marcopolo_trace_test";
  std::filesystem::remove_all(dir);

  MetricsRegistry registry;
  registry.counter("x").add(1);
  const MetricsSnapshot snap = registry.snapshot();
  const FlightJournal journal = sample_journal();
  ASSERT_TRUE(write_trace_dir(dir.string(), journal, &snap));
  EXPECT_TRUE(std::filesystem::exists(dir / "trace.json"));
  EXPECT_TRUE(std::filesystem::exists(dir / "journal.ndjson"));
  EXPECT_TRUE(std::filesystem::exists(dir / "metrics.prom"));
  EXPECT_GT(std::filesystem::file_size(dir / "trace.json"), 0u);
  std::filesystem::remove_all(dir);
}

TEST(HistogramQuantile, InterpolatesWithinLog2Buckets) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("q");
  // 100 samples uniform in [1, 100]: p50 ~ 50, p95 ~ 95 — the log2
  // interpolation is coarse, so just require the right bucket region.
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  const MetricsSnapshot metrics = registry.snapshot();
  const HistogramSnapshot* snap = metrics.histogram("q");
  ASSERT_NE(snap, nullptr);
  const double p50 = snap->quantile(0.50);
  const double p95 = snap->quantile(0.95);
  const double p99 = snap->quantile(0.99);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 63.0);
  EXPECT_GE(p95, 64.0);
  EXPECT_LE(p95, 100.0) << "clamped to the observed max";
  EXPECT_GE(p99, p95);
  EXPECT_LE(snap->quantile(0.0), snap->quantile(1.0));
  EXPECT_DOUBLE_EQ(snap->quantile(1.0), 100.0);
}

TEST(HistogramQuantile, EmptyAndSingleSample) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  MetricsRegistry registry;
  registry.histogram("one").observe(42);
  const MetricsSnapshot metrics = registry.snapshot();
  const HistogramSnapshot* snap = metrics.histogram("one");
  ASSERT_NE(snap, nullptr);
  // One sample: every quantile collapses to it (clamped to [min, max]).
  EXPECT_DOUBLE_EQ(snap->quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(snap->quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(snap->quantile(1.0), 42.0);
}

TEST(HistogramQuantile, DocumentedEdgeBehavior) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("edges");
  h.observe(10);
  h.observe(1000);
  const MetricsSnapshot metrics = registry.snapshot();
  const HistogramSnapshot* snap = metrics.histogram("edges");
  ASSERT_NE(snap, nullptr);

  // q outside [0, 1] clamps: q<=0 -> min, q>=1 -> max.
  EXPECT_DOUBLE_EQ(snap->quantile(-0.5), 10.0);
  EXPECT_DOUBLE_EQ(snap->quantile(2.0), 1000.0);
  // NaN never selects a rank.
  EXPECT_DOUBLE_EQ(snap->quantile(std::nan("")), 0.0);
  // Empty histogram answers 0 for every q, including the weird ones.
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(2.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(std::nan("")), 0.0);
}

TEST(HistogramQuantile, SingleBucketInterpolatesWithinItsBounds) {
  // Every sample in one log2 bucket (le=15 covers (7, 15]): estimates
  // move monotonically through the bucket and clamp to [min, max].
  MetricsRegistry registry;
  Histogram h = registry.histogram("single_bucket");
  for (std::uint64_t v = 9; v <= 14; ++v) h.observe(v);
  const MetricsSnapshot metrics = registry.snapshot();
  const HistogramSnapshot* snap = metrics.histogram("single_bucket");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->buckets.size(), 1u);
  const double p25 = snap->quantile(0.25);
  const double p75 = snap->quantile(0.75);
  EXPECT_GE(p25, 9.0);
  EXPECT_LE(p75, 14.0);
  EXPECT_LT(p25, p75);
}

TEST(ProgressReporter, PrintsFinalLineAndRespectsRateLimit) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  FlightRecorder recorder;
  recorder.note_verdicts(10, 4);
  {
    ProgressReporter reporter(&recorder, /*min_interval_s=*/3600.0, tmp);
    reporter.update(1, 4);    // first call always prints
    reporter.update(2, 4);    // rate-limited away
    reporter.update(4, 4);    // final line always prints
    reporter.update(4, 4);    // duplicate final suppressed
  }
  std::fflush(tmp);
  std::rewind(tmp);
  std::string text(1 << 12, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), tmp));
  std::fclose(tmp);

  EXPECT_EQ(count_occurrences(text, "[campaign]"), 2u);
  EXPECT_NE(text.find("4/4 tasks (100.0%)"), std::string::npos);
  EXPECT_NE(text.find("hijacked 40.0%"), std::string::npos);
}

TEST(ProgressReporter, LiveLinesOverwriteAndFinalLineIsNewlineTerminated) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    ProgressReporter reporter(nullptr, /*min_interval_s=*/0.0, tmp);
    reporter.update(1, 4);
    reporter.update(2, 4);
    reporter.update(4, 4);
  }
  std::fflush(tmp);
  std::rewind(tmp);
  std::string text(1 << 12, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), tmp));
  std::fclose(tmp);

  ASSERT_FALSE(text.empty());
  // Every update (live or final) starts with \r so it overwrites the
  // previous live line in place...
  EXPECT_EQ(count_occurrences(text, "\r"), 3u);
  // ...and only the final 100% summary carries a newline, as the very
  // last byte: the terminal is never left mid-line.
  EXPECT_EQ(count_occurrences(text, "\n"), 1u);
  EXPECT_EQ(text.back(), '\n');
  const std::string final_line =
      text.substr(text.find_last_of('\r') + 1);
  EXPECT_NE(final_line.find("4/4 tasks (100.0%)"), std::string::npos);
  EXPECT_NE(final_line.find("done in"), std::string::npos);
}

TEST(ProgressReporter, ShorterLinesBlankOutLongerPredecessors) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    ProgressReporter reporter(nullptr, /*min_interval_s=*/0.0, tmp);
    reporter.update(1000000, 2000000);  // long live line
    reporter.update(2, 2);              // shorter final line
  }
  std::fflush(tmp);
  std::rewind(tmp);
  std::string text(1 << 12, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), tmp));
  std::fclose(tmp);

  // The final write is padded to at least the previous line's width, so
  // leftover characters from the longer live line cannot survive it.
  const std::size_t first_len = text.find('\r', 1) - 1;
  const std::string final_line = text.substr(text.find_last_of('\r') + 1);
  EXPECT_GE(final_line.size(), first_len);
}

}  // namespace
}  // namespace marcopolo::obs
