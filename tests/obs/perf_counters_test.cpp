// PerfCounterGroup / PhaseCounters / mem_stats: the hardware-counter and
// memory attribution layer. These tests must pass identically on hosts
// with and without a PMU — every availability-dependent assertion
// branches on probe(), and the unavailable path's invariants (invalid
// samples, empty stats, no crashes) are asserted unconditionally.
#include "obs/perf_counters.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/mem_stats.hpp"

namespace marcopolo::obs {
namespace {

TEST(CounterSample, DeltaAndAccumulateTrackValidity) {
  CounterSample a;
  a.instructions = 1'000;
  a.cycles = 500;
  a.cache_references = 100;
  a.cache_misses = 10;
  a.branch_misses = 5;
  a.valid = true;
  CounterSample b = a;
  b.instructions = 3'000;
  b.cycles = 2'000;

  const CounterSample d = b - a;
  EXPECT_TRUE(d.valid);
  EXPECT_EQ(d.instructions, 2'000u);
  EXPECT_EQ(d.cycles, 1'500u);
  EXPECT_EQ(d.cache_references, 0u);

  // A delta against an invalid sample is invalid, whatever the numbers.
  CounterSample invalid;
  EXPECT_FALSE((b - invalid).valid);
  EXPECT_FALSE((invalid - a).valid);

  // Accumulation ORs validity: one valid worker makes the total valid.
  CounterSample total;
  total += d;
  EXPECT_TRUE(total.valid);
  EXPECT_EQ(total.instructions, 2'000u);
  total += invalid;
  EXPECT_TRUE(total.valid);
}

TEST(CounterSample, DerivedRatesGuardAgainstZeroDenominators) {
  CounterSample s;
  EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.0);
  s.instructions = 3'000;
  s.cycles = 1'500;
  s.cache_references = 200;
  s.cache_misses = 50;
  EXPECT_DOUBLE_EQ(s.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.25);
}

TEST(PerfCounterGroup, ProbeIsStableAndMatchesConstruction) {
  const bool first = PerfCounterGroup::probe();
  EXPECT_EQ(PerfCounterGroup::probe(), first);  // cached, not re-opened
  // Reason and verdict must agree: empty iff available.
  EXPECT_EQ(PerfCounterGroup::probe_reason().empty(), first);

  PerfCounterGroup group;
  EXPECT_EQ(group.available(), first);
  EXPECT_EQ(group.unavailable_reason().empty(), first);
}

TEST(PerfCounterGroup, ReadContractMatchesAvailability) {
  PerfCounterGroup group;
  const CounterSample sample = group.read();
  EXPECT_EQ(sample.valid, group.available());
  if (group.available()) {
    // The group counts this thread: a second read after doing some work
    // must show instructions moving forward, never backward.
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 100'000; ++i) sink = sink + i;
    const CounterSample later = group.read();
    ASSERT_TRUE(later.valid);
    EXPECT_GT(later.instructions, sample.instructions);
    const CounterSample delta = later - sample;
    EXPECT_TRUE(delta.valid);
    EXPECT_GT(delta.instructions, 0u);
  }
}

TEST(PhaseCounters, FillsStatsOnDestruction) {
  PerfCounterGroup group;
  PhaseStats stats;
  {
    PhaseCounters scope(group.available() ? &group : nullptr, &stats);
    std::vector<std::uint64_t> touch(1 << 16, 1);
    volatile std::uint64_t sink = 0;
    for (const std::uint64_t v : touch) sink = sink + v;
  }
  EXPECT_EQ(stats.counters.valid, group.available());
  if (group.available()) EXPECT_GT(stats.counters.instructions, 0u);
#if defined(__linux__)
  // /proc/self/status is always readable on Linux regardless of PMU.
  EXPECT_TRUE(stats.mem_valid);
  EXPECT_GT(stats.peak_rss_kb, 0u);
#endif
}

TEST(PhaseCounters, NullGroupAndNullOutputAreSafe) {
  PhaseStats stats;
  stats.counters.instructions = 42;  // must be overwritten
  stats.counters.valid = true;
  {
    PhaseCounters scope(nullptr, &stats);
  }
  EXPECT_FALSE(stats.counters.valid);
  EXPECT_EQ(stats.counters.instructions, 0u);

  {
    PhaseCounters scope(nullptr, nullptr);  // pure no-op, must not crash
  }
  PerfCounterGroup group;
  {
    PhaseCounters scope(&group, nullptr);
  }
}

TEST(MemStats, ParsesProcStatusFields) {
  const std::string status =
      "Name:\tcampaign_wallcl\n"
      "VmPeak:\t  123456 kB\n"
      "VmRSS:\t   65536 kB\n"
      "VmHWM:\t  100000 kB\n"
      "NotVmRSS:\t 999 kB\n";
  EXPECT_EQ(parse_proc_status_kb(status, "VmRSS"),
            std::optional<std::uint64_t>{65'536});
  EXPECT_EQ(parse_proc_status_kb(status, "VmHWM"),
            std::optional<std::uint64_t>{100'000});
  EXPECT_EQ(parse_proc_status_kb(status, "VmPeak"),
            std::optional<std::uint64_t>{123'456});
  // A missing key is nullopt, not zero — and "NotVmRSS" must not match a
  // "VmRSS" lookup (keys anchor at line starts).
  EXPECT_EQ(parse_proc_status_kb(status, "VmSwap"), std::nullopt);
  EXPECT_EQ(parse_proc_status_kb("", "VmRSS"), std::nullopt);
}

TEST(MemStats, ReadsLiveProcessMemory) {
  const MemorySample sample = read_memory_sample();
#if defined(__linux__)
  ASSERT_TRUE(sample.valid);
  EXPECT_GT(sample.rss_kb, 0u);
  // The high-water mark can never sit below current RSS.
  EXPECT_GE(sample.peak_rss_kb, sample.rss_kb);
#else
  (void)sample;
#endif
}

TEST(MemStats, AllocCountingMatchesBuildFlag) {
  const AllocStats stats = alloc_stats();
#if defined(MARCOPOLO_COUNT_ALLOCS)
  EXPECT_TRUE(stats.enabled);
  std::vector<int>* v = new std::vector<int>(1'000);
  delete v;
  const AllocStats after = alloc_stats();
  EXPECT_GT(after.allocs, stats.allocs);
  EXPECT_GT(after.frees, stats.frees);
  EXPECT_GT(after.bytes, stats.bytes);
#else
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.allocs, 0u);
  EXPECT_EQ(stats.frees, 0u);
  EXPECT_EQ(stats.bytes, 0u);
#endif
}

}  // namespace
}  // namespace marcopolo::obs
