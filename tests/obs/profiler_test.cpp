// Sampling-profiler unit tests: ring encoding, signal-in-drain drops,
// offline symbolization, folded-format round trips, manifest
// compatibility, and hot-symbol regression attribution — plus a live
// injected-hotspot test (skipped where the host cannot arm per-thread
// CPU timers) asserting the planted symbol tops the diff ranking.
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/manifest_reader.hpp"
#include "obs/metrics.hpp"
#include "obs/run_compare.hpp"
#include "obs/symbolize.hpp"
#include "obs/trace_export.hpp"

// Exported (the build sets ENABLE_EXPORTS) so dladdr can claim it.
// noipa matters as much as noinline: without it GCC emits per-callsite
// .constprop.isra clones that are LOCAL symbols — invisible to dladdr —
// so every sample would fall back to a hex address. Volatile sink
// defeats constant folding.
#if defined(__GNUC__) && !defined(__clang__)
#define MARCOPOLO_TEST_HOT __attribute__((noinline, noipa))
#else
#define MARCOPOLO_TEST_HOT __attribute__((noinline))
#endif
extern "C" MARCOPOLO_TEST_HOT std::uint64_t
marcopolo_profiler_test_hotspot(std::uint64_t iters) {
  volatile std::uint64_t acc = 1;
  for (std::uint64_t i = 0; i < iters; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

extern "C" MARCOPOLO_TEST_HOT std::uint64_t
marcopolo_profiler_test_mild(std::uint64_t iters) {
  volatile std::uint64_t acc = 2;
  for (std::uint64_t i = 0; i < iters; ++i) acc = acc ^ (acc << 13);
  return acc;
}

namespace marcopolo::obs {
namespace {

RawSample make_sample(std::uint64_t ns,
                      std::vector<std::uintptr_t> frames,
                      bool truncated = false) {
  RawSample s;
  s.ns = ns;
  s.depth = static_cast<std::uint16_t>(frames.size());
  s.truncated = truncated;
  for (std::size_t i = 0; i < frames.size(); ++i) s.pc[i] = frames[i];
  return s;
}

TEST(SampleRing, EncodeDecodeRoundTrip) {
  SampleRing ring(64);
  const RawSample a = make_sample(100, {0x1000, 0x2001, 0x3001});
  const RawSample b = make_sample(200, {0x4000}, /*truncated=*/true);
  EXPECT_TRUE(ring.try_append(a));
  EXPECT_TRUE(ring.try_append(b));
  ring.close();

  const std::vector<RawSample> decoded = ring.decode();
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].ns, 100u);
  EXPECT_EQ(decoded[0].depth, 3u);
  EXPECT_FALSE(decoded[0].truncated);
  EXPECT_EQ(decoded[0].pc[0], 0x1000u);
  EXPECT_EQ(decoded[0].pc[1], 0x2001u);
  EXPECT_EQ(decoded[0].pc[2], 0x3001u);
  EXPECT_EQ(decoded[1].ns, 200u);
  EXPECT_EQ(decoded[1].depth, 1u);
  EXPECT_TRUE(decoded[1].truncated);
  EXPECT_EQ(ring.samples(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SampleRing, ClosedRingDropsLateSignal) {
  // A signal the kernel queued before timer_delete can fire while the
  // drain path owns the ring; close() must make that append a counted
  // no-op instead of a race.
  SampleRing ring(64);
  EXPECT_TRUE(ring.try_append(make_sample(1, {0x1000})));
  ring.close();
  EXPECT_FALSE(ring.try_append(make_sample(2, {0x2000})));
  EXPECT_EQ(ring.samples(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_EQ(ring.decode().size(), 1u);
}

TEST(SampleRing, FullRingCountsDrops) {
  // Each 1-frame sample costs 3 words (header, ns, pc); a 7-word ring
  // holds exactly two.
  SampleRing ring(7);
  EXPECT_TRUE(ring.try_append(make_sample(1, {0x1000})));
  EXPECT_TRUE(ring.try_append(make_sample(2, {0x2000})));
  EXPECT_FALSE(ring.try_append(make_sample(3, {0x3000})));
  EXPECT_FALSE(ring.try_append(make_sample(4, {0x4000})));
  EXPECT_EQ(ring.samples(), 2u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SampleRing, ZeroDepthSampleIsDropped) {
  SampleRing ring(64);
  RawSample empty;
  empty.ns = 5;
  EXPECT_FALSE(ring.try_append(empty));
  EXPECT_EQ(ring.samples(), 0u);
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(Symbolize, UnsymbolizablePcFallsBackToHex) {
  // Page 1 is never mapped; dladdr must fail and the hex form keeps the
  // frame in the fold instead of losing it.
  EXPECT_EQ(symbolize_pc(0x1000, /*adjust_return_address=*/false),
            "[0x1000]");
  // Return-address adjustment applies before formatting.
  EXPECT_EQ(symbolize_pc(0x1001, /*adjust_return_address=*/true),
            "[0x1000]");
}

TEST(Symbolize, ResolvesExportedSymbol) {
  const std::string name = symbolize_pc(
      reinterpret_cast<std::uintptr_t>(&marcopolo_profiler_test_hotspot) + 1,
      /*adjust_return_address=*/false);
  EXPECT_EQ(name, "marcopolo_profiler_test_hotspot");
}

RawProfile synthetic_profile() {
  // Two threads; all PCs unsymbolizable so names are deterministic hex.
  // Leaf-first frames: {leaf, caller_ret, root_ret}; return addresses
  // carry +1 so the symbolizer's -1 adjustment lands on round numbers.
  RawProfile raw;
  raw.hz = 997;
  raw.available = true;
  ThreadSamples t0;
  t0.thread_id = 0;
  t0.samples.push_back(make_sample(100, {0x1000, 0x2001, 0x3001}));
  t0.samples.push_back(make_sample(200, {0x1000, 0x2001, 0x3001}));
  t0.samples.push_back(make_sample(300, {0x2000, 0x3001}));
  ThreadSamples t1;
  t1.thread_id = 1;
  // Recursive stack: 0x1000 appears twice; total must count it once.
  t1.samples.push_back(
      make_sample(150, {0x1000, 0x1001, 0x3001}, /*truncated=*/true));
  t1.dropped = 4;
  raw.threads.push_back(t0);
  raw.threads.push_back(t1);
  return raw;
}

TEST(Symbolize, AggregatesSelfTotalAndFoldedStacks) {
  const CpuProfile profile = symbolize_profile(synthetic_profile());
  EXPECT_TRUE(profile.available);
  EXPECT_EQ(profile.hz, 997u);
  EXPECT_EQ(profile.samples, 4u);
  EXPECT_EQ(profile.dropped, 4u);
  EXPECT_EQ(profile.truncated, 1u);

  // Folded stacks are root-first and sorted lexically.
  ASSERT_EQ(profile.stacks.size(), 3u);
  EXPECT_EQ(profile.stacks[0].stack, "[0x3000];[0x1000];[0x1000]");
  EXPECT_EQ(profile.stacks[0].count, 1u);
  EXPECT_EQ(profile.stacks[1].stack, "[0x3000];[0x2000]");
  EXPECT_EQ(profile.stacks[1].count, 1u);
  EXPECT_EQ(profile.stacks[2].stack, "[0x3000];[0x2000];[0x1000]");
  EXPECT_EQ(profile.stacks[2].count, 2u);

  // Self sums to the sample count; recursion counts total once.
  std::uint64_t self_sum = 0;
  for (const HotSymbol& s : profile.symbols) self_sum += s.self;
  EXPECT_EQ(self_sum, profile.samples);
  ASSERT_FALSE(profile.symbols.empty());
  EXPECT_EQ(profile.symbols[0].name, "[0x1000]");
  EXPECT_EQ(profile.symbols[0].self, 3u);
  EXPECT_EQ(profile.symbols[0].total, 3u) << "recursive frame double-counted";
  for (const HotSymbol& s : profile.symbols) {
    if (s.name == "[0x3000]") {
      EXPECT_EQ(s.self, 0u);
      EXPECT_EQ(s.total, 4u);
    }
  }

  // Timeline events cover every sample, ordered (thread, ns), and index
  // valid stacks.
  ASSERT_EQ(profile.events.size(), 4u);
  for (std::size_t i = 1; i < profile.events.size(); ++i) {
    const SampleEvent& a = profile.events[i - 1];
    const SampleEvent& b = profile.events[i];
    EXPECT_TRUE(a.thread_id < b.thread_id ||
                (a.thread_id == b.thread_id && a.ns <= b.ns));
  }
  for (const SampleEvent& e : profile.events) {
    ASSERT_LT(e.stack, profile.stacks.size());
  }
}

TEST(Symbolize, UnavailableProfileStaysEmpty) {
  RawProfile raw;  // available defaults false
  const CpuProfile profile = symbolize_profile(raw);
  EXPECT_FALSE(profile.available);
  EXPECT_EQ(profile.samples, 0u);
  EXPECT_TRUE(profile.stacks.empty());
  EXPECT_TRUE(profile.symbols.empty());
}

TEST(Folded, WriterParserRoundTrip) {
  const CpuProfile profile = symbolize_profile(synthetic_profile());
  std::ostringstream out;
  write_folded_profile(out, profile);
  std::istringstream in(out.str());
  const FoldedProfile parsed = read_folded_profile(in);
  EXPECT_TRUE(parsed.ok()) << (parsed.problems.empty()
                                   ? ""
                                   : parsed.problems.front());
  EXPECT_EQ(parsed.total, profile.samples);
  ASSERT_EQ(parsed.stacks.size(), profile.stacks.size());
  for (std::size_t i = 0; i < parsed.stacks.size(); ++i) {
    EXPECT_EQ(parsed.stacks[i].first, profile.stacks[i].stack);
    EXPECT_EQ(parsed.stacks[i].second, profile.stacks[i].count);
  }
  // The parser's aggregated symbol table agrees with the symbolizer's.
  ASSERT_FALSE(parsed.symbols.empty());
  EXPECT_EQ(parsed.symbols[0].name, profile.symbols[0].name);
  EXPECT_EQ(parsed.symbols[0].self, profile.symbols[0].self);
  EXPECT_EQ(parsed.symbols[0].total, profile.symbols[0].total);
}

TEST(Folded, ParserReportsFormatBreaches) {
  const auto problems_of = [](const std::string& text) {
    std::istringstream in(text);
    return read_folded_profile(in).problems;
  };
  EXPECT_FALSE(problems_of("").empty()) << "empty file must not validate";
  EXPECT_FALSE(problems_of("a;b\n").empty()) << "missing count";
  EXPECT_FALSE(problems_of("a;b 0\n").empty()) << "zero count";
  EXPECT_FALSE(problems_of("a;b x\n").empty()) << "non-numeric count";
  EXPECT_FALSE(problems_of("a;;b 3\n").empty()) << "empty frame";
  EXPECT_FALSE(problems_of("a;b 2\n\na 1\n").empty()) << "blank line";
  EXPECT_TRUE(problems_of("a;b 2\nmain 1\n").empty());
  // Problems carry 1-based line numbers for direct CI output.
  const auto problems = problems_of("ok 1\nbad 0\n");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("line 2"), std::string::npos) << problems[0];
}

TEST(ManifestProfile, RoundTripsThroughWriterAndReader) {
  const CpuProfile profile = symbolize_profile(synthetic_profile());
  RunManifest manifest("profiler_test");
  manifest.add_phase("work", 1.0);
  manifest.set_profile(profile);
  std::ostringstream out;
  manifest.write_json(out, MetricsSnapshot{});

  const ReadManifest read = ManifestReader::read_string(out.str());
  ASSERT_TRUE(read.ok()) << (read.errors.empty() ? "" : read.errors[0]);
  ASSERT_TRUE(read.has_profile);
  EXPECT_EQ(read.profile.hz, 997u);
  EXPECT_EQ(read.profile.samples, 4u);
  EXPECT_EQ(read.profile.dropped, 4u);
  EXPECT_EQ(read.profile.truncated, 1u);
  ASSERT_FALSE(read.profile.symbols.empty());
  EXPECT_EQ(read.profile.symbols[0].name, "[0x1000]");
  EXPECT_EQ(read.profile.symbols[0].self, 3u);
}

TEST(ManifestProfile, PreProfilerManifestsStillParse) {
  // Backward compat: a manifest written before the profiler existed has
  // no "profile" key and must read back with has_profile == false.
  RunManifest manifest("old_tool");
  manifest.add_phase("work", 1.0);
  std::ostringstream out;
  manifest.write_json(out, MetricsSnapshot{});
  EXPECT_EQ(out.str().find("\"profile\""), std::string::npos);

  const ReadManifest read = ManifestReader::read_string(out.str());
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.has_profile);
  EXPECT_EQ(read.profile.samples, 0u);
}

TEST(ManifestProfile, UnknownProfileFieldsAreIgnored) {
  // Forward compat: a future writer may add fields to the profile
  // section; today's reader must skip them without erroring.
  const std::string doc = R"({
    "manifest_schema": 1,
    "tool": "future",
    "config": {},
    "phases": [],
    "profile": {"hz": 500, "samples": 7, "dropped": 0, "truncated": 0,
                "flavor": "spicy",
                "symbols": [{"name": "f", "self": 7, "total": 7,
                             "color": "red"}]},
    "metrics": {"counters": {}, "histograms": []}
  })";
  const ReadManifest read = ManifestReader::read_string(doc);
  ASSERT_TRUE(read.ok()) << (read.errors.empty() ? "" : read.errors[0]);
  ASSERT_TRUE(read.has_profile);
  EXPECT_EQ(read.profile.hz, 500u);
  EXPECT_EQ(read.profile.samples, 7u);
  ASSERT_EQ(read.profile.symbols.size(), 1u);
  EXPECT_EQ(read.profile.symbols[0].name, "f");
}

std::string manifest_with_profile(const char* tool,
                                  const CpuProfile& profile) {
  RunManifest manifest(tool);
  manifest.add_phase("work", 1.0);
  manifest.set_profile(profile);
  std::ostringstream out;
  manifest.write_json(out, MetricsSnapshot{});
  return out.str();
}

TEST(HotSymbolDiff, RanksPlantedRiserFirst) {
  // Synthetic regression: "steady" holds 50% in both runs, "planted"
  // grows from 5% to 45%. The diff must put the riser first regardless
  // of differing sample totals.
  CpuProfile base;
  base.hz = 997;
  base.available = true;
  base.samples = 100;
  base.symbols = {{"steady", 50, 100}, {"other", 45, 45}, {"planted", 5, 5}};
  CpuProfile cand;
  cand.hz = 997;
  cand.available = true;
  cand.samples = 200;
  cand.symbols = {{"steady", 100, 200}, {"planted", 90, 90},
                  {"other", 10, 10}};

  const ReadManifest base_read =
      ManifestReader::read_string(manifest_with_profile("base", base));
  const ReadManifest cand_read =
      ManifestReader::read_string(manifest_with_profile("cand", cand));
  ASSERT_TRUE(base_read.ok());
  ASSERT_TRUE(cand_read.ok());

  const RunComparison comparison = compare_runs(base_read, cand_read);
  ASSERT_TRUE(comparison.base_has_profile);
  ASSERT_TRUE(comparison.cand_has_profile);
  EXPECT_EQ(comparison.base_profile_samples, 100u);
  EXPECT_EQ(comparison.cand_profile_samples, 200u);
  ASSERT_FALSE(comparison.hot_symbols.empty());
  EXPECT_EQ(comparison.hot_symbols[0].name, "planted");
  EXPECT_NEAR(comparison.hot_symbols[0].share_delta_pp(), 40.0, 1e-9);
  // Shares are per-run fractions, not raw counts, so the 2x sample total
  // cancels out.
  EXPECT_NEAR(comparison.hot_symbols.back().share_delta_pp(), -40.0, 1e-9)
      << "the faller ('other') belongs at the bottom";
}

TEST(HotSymbolDiff, GateBreachNoteNamesTheRiser) {
  // An instructions-gate breach plus profiles on both sides must produce
  // a note attributing the growth to the biggest riser.
  ReadManifest base;
  base.tool = "bench";
  ReadPhase phase;
  phase.name = "hot_phase";
  phase.seconds = 1.0;
  phase.has_counters = true;
  phase.instructions = 1'000'000'000;
  base.phases.push_back(phase);
  base.has_profile = true;
  base.profile.samples = 100;
  base.profile.symbols = {{"steady", 90, 100}, {"planted", 10, 10}};

  ReadManifest cand = base;
  cand.phases[0].instructions = 1'100'000'000;  // +10% > 3% gate
  cand.profile.symbols = {{"planted", 60, 60}, {"steady", 40, 100}};

  const RunComparison comparison = compare_runs(base, cand);
  const DiffGateResult gate = evaluate_gate(comparison, DiffGateConfig{});
  EXPECT_FALSE(gate.pass);
  bool attributed = false;
  for (const std::string& note : gate.notes) {
    if (note.find("hot symbols") != std::string::npos) {
      attributed = true;
      EXPECT_NE(note.find("planted"), std::string::npos) << note;
    }
  }
  EXPECT_TRUE(attributed)
      << "instructions breach with profiles must emit an attribution note";
}

TEST(TraceExport, SampleSectionsOnlyWithProfileData) {
  // A null/empty profile leaves trace.json byte-identical to the
  // pre-profiler format; real samples add stackFrames + samples.
  FlightJournal journal;
  std::ostringstream without;
  write_chrome_trace(without, journal, nullptr);
  CpuProfile empty;
  empty.available = true;  // available but zero samples
  std::ostringstream with_empty;
  write_chrome_trace(with_empty, journal, &empty);
  EXPECT_EQ(without.str(), with_empty.str());

  const CpuProfile profile = symbolize_profile(synthetic_profile());
  std::ostringstream with_samples;
  write_chrome_trace(with_samples, journal, &profile);
  EXPECT_NE(with_samples.str().find("\"stackFrames\""), std::string::npos);
  EXPECT_NE(with_samples.str().find("\"samples\""), std::string::npos);
  EXPECT_NE(with_samples.str().find("cpu_sample"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live profiler tests — need a host that can arm per-thread CPU timers.

TEST(SamplingProfiler, ProbeReasonIsStableWhenUnavailable) {
  if (SamplingProfiler::probe()) {
    EXPECT_TRUE(SamplingProfiler::probe_reason().empty());
  } else {
    EXPECT_FALSE(SamplingProfiler::probe_reason().empty());
    SamplingProfiler profiler;
    EXPECT_FALSE(profiler.available());
    // Unavailable profilers drain to an unavailable profile: downstream
    // consumers emit nothing, matching a null profiler byte for byte.
    const RawProfile raw = profiler.drain();
    EXPECT_FALSE(raw.available);
    EXPECT_EQ(raw.sample_count(), 0u);
  }
}

TEST(SamplingProfiler, InjectedHotspotDominatesProfile) {
  if (!SamplingProfiler::probe()) {
    GTEST_SKIP() << "profiler unavailable: "
                 << SamplingProfiler::probe_reason();
  }
  SamplingProfiler profiler(1997);  // high rate keeps the test short
  ASSERT_TRUE(profiler.available()) << profiler.unavailable_reason();

  std::thread worker([&profiler] {
    ProfiledThread guard(&profiler);
    // ~150ms of CPU on typical hardware — thousands of samples at 2kHz.
    (void)marcopolo_profiler_test_hotspot(80'000'000);
  });
  worker.join();

  const CpuProfile profile = symbolize_profile(profiler.drain());
  ASSERT_TRUE(profile.available);
  ASSERT_GT(profile.samples, 20u)
      << "a 150ms spin at 1997 Hz must collect real samples";
  ASSERT_FALSE(profile.symbols.empty());
  // The spin loop must dominate self time — and thanks to ENABLE_EXPORTS
  // its name must symbolize, not fall back to hex.
  EXPECT_EQ(profile.symbols[0].name, "marcopolo_profiler_test_hotspot")
      << "hottest symbol was " << profile.symbols[0].name;
  EXPECT_GT(static_cast<double>(profile.symbols[0].self) /
                static_cast<double>(profile.samples),
            0.5);
}

TEST(SamplingProfiler, DiffRanksInjectedHotspotFirst) {
  // The end-to-end acceptance path: profile a mild run and a run with a
  // planted hot function, write both as manifests, and assert the diff's
  // hot-symbol ranking names the plant.
  if (!SamplingProfiler::probe()) {
    GTEST_SKIP() << "profiler unavailable: "
                 << SamplingProfiler::probe_reason();
  }
  const auto profiled_run = [](bool with_hotspot) {
    SamplingProfiler profiler(1997);
    std::thread worker([&profiler, with_hotspot] {
      ProfiledThread guard(&profiler);
      (void)marcopolo_profiler_test_mild(150'000'000);
      if (with_hotspot) {
        (void)marcopolo_profiler_test_hotspot(120'000'000);
      }
    });
    worker.join();
    return symbolize_profile(profiler.drain());
  };
  const CpuProfile base = profiled_run(false);
  const CpuProfile cand = profiled_run(true);
  ASSERT_GT(base.samples, 10u);
  ASSERT_GT(cand.samples, 10u);

  const ReadManifest base_read =
      ManifestReader::read_string(manifest_with_profile("base", base));
  const ReadManifest cand_read =
      ManifestReader::read_string(manifest_with_profile("cand", cand));
  ASSERT_TRUE(base_read.has_profile);
  ASSERT_TRUE(cand_read.has_profile);

  const RunComparison comparison = compare_runs(base_read, cand_read);
  ASSERT_FALSE(comparison.hot_symbols.empty());
  EXPECT_EQ(comparison.hot_symbols[0].name,
            "marcopolo_profiler_test_hotspot")
      << "diff must attribute the regression to the planted symbol; got "
      << comparison.hot_symbols[0].name << " (+"
      << comparison.hot_symbols[0].share_delta_pp() << "pp)";
}

TEST(SamplingProfiler, DrainWhileTimerArmedElsewhereIsSafe) {
  // drain() after guards die, immediately re-attach, drain again: the
  // second profile must only contain the second attachment's rings.
  if (!SamplingProfiler::probe()) {
    GTEST_SKIP() << "profiler unavailable: "
                 << SamplingProfiler::probe_reason();
  }
  SamplingProfiler profiler(1997);
  {
    ProfiledThread guard(&profiler);
    (void)marcopolo_profiler_test_hotspot(20'000'000);
  }
  const RawProfile first = profiler.drain();
  {
    ProfiledThread guard(&profiler);
    (void)marcopolo_profiler_test_hotspot(20'000'000);
  }
  const RawProfile second = profiler.drain();
  EXPECT_TRUE(first.available);
  EXPECT_TRUE(second.available);
  ASSERT_LE(second.threads.size(), 1u)
      << "drain must reset the ring set";
}

}  // namespace
}  // namespace marcopolo::obs
