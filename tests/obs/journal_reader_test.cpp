// JournalReader: FlightJournal -> write_journal_ndjson -> read back must
// preserve every record, and the forward-compat / error policy must hold
// (unknown types skipped, malformed lines reported with line numbers,
// truncation detected).
#include "obs/journal_reader.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace_export.hpp"

namespace marcopolo::obs {
namespace {

/// A journal exercising every record type and field: two worker lanes
/// with distinct task/propagation/verdict shapes, virtual-time attacks
/// and quorum decisions, timestamps past double's 2^53 exact range.
FlightJournal rich_journal() {
  FlightRecorder recorder;
  // Lane 0: two tasks, a propagation, three verdicts covering the
  // provenance space (adversary/contested/route-age, victim, unopposed).
  FlightBuffer* w0 = recorder.open_buffer();
  TaskSpanRecord t0;
  t0.announcer = 11;
  t0.adversary = 22;
  t0.victim_rows = 5;
  t0.total_capture = true;
  t0.start_ns = (std::uint64_t{1} << 53) + 123;  // must survive exactly
  t0.duration_ns = 7'000;
  t0.propagate_ns = 4'000;
  t0.classify_ns = 2'000;
  t0.record_ns = 500;
  t0.instructions = 123'456'789;  // hw-counter args (omitted when zero)
  t0.cycles = 98'765'432;
  w0->record_task(t0);
  TaskSpanRecord t1 = t0;
  t1.announcer = 12;
  t1.total_capture = false;
  t1.start_ns += 10'000;
  t1.instructions = 0;  // counters-off task: fields absent from NDJSON
  t1.cycles = 0;
  w0->record_task(t1);
  PropagationRunRecord p0;
  p0.start_ns = t0.start_ns + 100;
  p0.duration_ns = 3'500;
  p0.delivered = 321;
  p0.loop_dropped = 4;
  p0.rov_dropped = 9;
  p0.decided = {10, 20, 30, 40, 50};
  w0->record_propagation(p0);
  VerdictRecord v0;
  v0.victim = 1;
  v0.adversary = 2;
  v0.perspective = 33;
  v0.outcome = 2;
  v0.decided_by = VerdictStep::RouteAge;
  v0.contested = true;
  w0->record_verdict(v0);
  VerdictRecord v1;
  v1.victim = 1;
  v1.adversary = 2;
  v1.perspective = 34;
  v1.outcome = 1;
  v1.decided_by = VerdictStep::LocalPref;
  v1.contested = true;
  w0->record_verdict(v1);
  VerdictRecord v2;
  v2.victim = 3;
  v2.adversary = 4;
  v2.perspective = 35;
  v2.outcome = 1;
  v2.decided_by = VerdictStep::Unopposed;
  v2.contested = false;
  w0->record_verdict(v2);

  // Lane 1: one task plus the virtual-time records.
  FlightBuffer* w1 = recorder.open_buffer();
  TaskSpanRecord t2;
  t2.announcer = 90;
  t2.adversary = 91;
  t2.start_ns = t0.start_ns + 50;
  t2.duration_ns = 1'000;
  w1->record_task(t2);
  AttackSpanRecord a0;
  a0.lane = 7;
  a0.victim = 1;
  a0.adversary = 2;
  a0.attempt = 3;
  a0.complete = true;
  a0.announce_us = 1'000;
  a0.dcv_us = 5'000;
  a0.conclude_us = 5'400;
  w1->record_attack(a0);
  AttackSpanRecord a1 = a0;
  a1.attempt = 4;
  a1.complete = false;
  a1.announce_us = 6'000;
  a1.dcv_us = 9'000;
  a1.conclude_us = 9'100;
  w1->record_attack(a1);
  w1->record_quorum(QuorumRecord{"letsencrypt", 7, 1, 2, true, 5'500});
  w1->record_quorum(QuorumRecord{"cloudflare", 7, 1, 2, false, 5'600});

  return recorder.drain();
}

std::string to_ndjson(const FlightJournal& journal) {
  std::ostringstream out;
  write_journal_ndjson(out, journal);
  return out.str();
}

void expect_task_eq(const TaskSpanRecord& got, const TaskSpanRecord& want) {
  EXPECT_EQ(got.announcer, want.announcer);
  EXPECT_EQ(got.adversary, want.adversary);
  EXPECT_EQ(got.victim_rows, want.victim_rows);
  EXPECT_EQ(got.total_capture, want.total_capture);
  EXPECT_EQ(got.start_ns, want.start_ns);
  EXPECT_EQ(got.duration_ns, want.duration_ns);
  EXPECT_EQ(got.propagate_ns, want.propagate_ns);
  EXPECT_EQ(got.classify_ns, want.classify_ns);
  EXPECT_EQ(got.record_ns, want.record_ns);
  EXPECT_EQ(got.instructions, want.instructions);
  EXPECT_EQ(got.cycles, want.cycles);
}

TEST(JournalReader, RoundTripPreservesEveryRecord) {
  const FlightJournal original = rich_journal();
  std::istringstream in(to_ndjson(original));
  const ReadJournal read = JournalReader::read(in);

  ASSERT_TRUE(read.ok()) << (read.errors.empty()
                                 ? ""
                                 : read.errors.front().message);
  EXPECT_TRUE(read.has_meta);
  EXPECT_EQ(read.schema, 1);
  EXPECT_EQ(read.skipped_records, 0u);
  EXPECT_EQ(read.meta_workers, original.workers.size());
  EXPECT_EQ(read.meta_tasks, original.task_count());
  EXPECT_EQ(read.meta_verdicts, original.verdict_count());
  EXPECT_EQ(read.meta_adversary_verdicts,
            original.adversary_verdict_count());

  const FlightJournal& got = read.journal;
  EXPECT_EQ(got.epoch_ns, original.epoch_ns);
  ASSERT_EQ(got.workers.size(), original.workers.size());
  for (std::size_t w = 0; w < got.workers.size(); ++w) {
    const auto& glane = got.workers[w];
    const auto& olane = original.workers[w];
    EXPECT_EQ(glane.worker, olane.worker);
    ASSERT_EQ(glane.tasks.size(), olane.tasks.size());
    for (std::size_t i = 0; i < glane.tasks.size(); ++i) {
      expect_task_eq(glane.tasks[i], olane.tasks[i]);
    }
    ASSERT_EQ(glane.propagations.size(), olane.propagations.size());
    for (std::size_t i = 0; i < glane.propagations.size(); ++i) {
      const auto& gp = glane.propagations[i];
      const auto& op = olane.propagations[i];
      EXPECT_EQ(gp.start_ns, op.start_ns);
      EXPECT_EQ(gp.duration_ns, op.duration_ns);
      EXPECT_EQ(gp.delivered, op.delivered);
      EXPECT_EQ(gp.loop_dropped, op.loop_dropped);
      EXPECT_EQ(gp.rov_dropped, op.rov_dropped);
      EXPECT_EQ(gp.decided, op.decided);
    }
    ASSERT_EQ(glane.verdicts.size(), olane.verdicts.size());
    for (std::size_t i = 0; i < glane.verdicts.size(); ++i) {
      const auto& gv = glane.verdicts[i];
      const auto& ov = olane.verdicts[i];
      EXPECT_EQ(gv.victim, ov.victim);
      EXPECT_EQ(gv.adversary, ov.adversary);
      EXPECT_EQ(gv.perspective, ov.perspective);
      EXPECT_EQ(gv.outcome, ov.outcome);
      EXPECT_EQ(gv.decided_by, ov.decided_by);
      EXPECT_EQ(gv.contested, ov.contested);
      EXPECT_EQ(gv.route_age_sensitive(), ov.route_age_sensitive());
    }
  }

  ASSERT_EQ(got.attacks.size(), original.attacks.size());
  for (std::size_t i = 0; i < got.attacks.size(); ++i) {
    const auto& ga = got.attacks[i];
    const auto& oa = original.attacks[i];
    EXPECT_EQ(ga.lane, oa.lane);
    EXPECT_EQ(ga.victim, oa.victim);
    EXPECT_EQ(ga.adversary, oa.adversary);
    EXPECT_EQ(ga.attempt, oa.attempt);
    EXPECT_EQ(ga.complete, oa.complete);
    EXPECT_EQ(ga.announce_us, oa.announce_us);
    EXPECT_EQ(ga.dcv_us, oa.dcv_us);
    EXPECT_EQ(ga.conclude_us, oa.conclude_us);
  }

  ASSERT_EQ(read.quorums.size(), original.quorums.size());
  for (std::size_t i = 0; i < read.quorums.size(); ++i) {
    const auto& gq = read.quorums[i];
    const auto& oq = original.quorums[i];
    EXPECT_EQ(gq.system, oq.system);
    EXPECT_EQ(gq.lane, oq.lane);
    EXPECT_EQ(gq.victim, oq.victim);
    EXPECT_EQ(gq.adversary, oq.adversary);
    EXPECT_EQ(gq.corroborated, oq.corroborated);
    EXPECT_EQ(gq.virtual_us, oq.virtual_us);
  }

  // Derived counts agree, so run-compare summaries see the same data
  // whether they come from a live drain or a reread journal.
  EXPECT_EQ(got.task_count(), original.task_count());
  EXPECT_EQ(got.verdict_count(), original.verdict_count());
  EXPECT_EQ(got.adversary_verdict_count(),
            original.adversary_verdict_count());
}

TEST(JournalReader, TruncatedLineIsAnErrorWithItsLineNumber) {
  std::string text = to_ndjson(rich_journal());
  // Chop mid-way through the final line (no trailing newline either).
  text.resize(text.size() - 25);
  std::istringstream in(text);
  const ReadJournal read = JournalReader::read(in);
  ASSERT_FALSE(read.ok());
  ASSERT_EQ(read.errors.size(), 1u);
  EXPECT_EQ(read.errors[0].line, read.lines);
  EXPECT_NE(read.errors[0].message.find("JSON error"), std::string::npos);
}

TEST(JournalReader, UnknownRecordTypesAreSkippedNotErrors) {
  std::string text = to_ndjson(rich_journal());
  text += "{\"type\": \"future_record\", \"field\": 1}\n";
  text += "{\"type\": \"another_one\"}\n";
  std::istringstream in(text);
  const ReadJournal read = JournalReader::read(in);
  EXPECT_TRUE(read.ok());
  EXPECT_EQ(read.skipped_records, 2u);
  EXPECT_EQ(read.journal.task_count(), rich_journal().task_count());
}

TEST(JournalReader, UnknownFieldsInKnownRecordsAreIgnored) {
  std::istringstream in(
      "{\"type\": \"meta\", \"journal_schema\": 1, \"epoch_ns\": 5,"
      " \"future_field\": [1, 2]}\n"
      "{\"type\": \"task\", \"worker\": 0, \"announcer\": 1,"
      " \"adversary\": 2, \"start_ns\": 5, \"duration_ns\": 10,"
      " \"shiny_new_field\": {\"x\": 1}}\n");
  const ReadJournal read = JournalReader::read(in);
  ASSERT_TRUE(read.ok()) << read.errors.front().message;
  ASSERT_EQ(read.journal.task_count(), 1u);
  EXPECT_EQ(read.journal.workers[0].tasks[0].announcer, 1u);
}

TEST(JournalReader, FutureSchemaIsRejected) {
  std::istringstream in(
      "{\"type\": \"meta\", \"journal_schema\": 2, \"epoch_ns\": 0}\n");
  const ReadJournal read = JournalReader::read(in);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.errors[0].line, 1u);
  EXPECT_NE(read.errors[0].message.find("journal_schema"),
            std::string::npos);
}

TEST(JournalReader, MissingMetaIsAnError) {
  std::istringstream in(
      "{\"type\": \"task\", \"worker\": 0, \"start_ns\": 1,"
      " \"duration_ns\": 2}\n");
  const ReadJournal read = JournalReader::read(in);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.errors[0].line, 1u);
}

TEST(JournalReader, MalformedLinesCarryTheirLineNumbers) {
  std::string text =
      "{\"type\": \"meta\", \"journal_schema\": 1, \"epoch_ns\": 0}\n";
  text += "not json at all\n";                       // line 2
  text += "[1, 2, 3]\n";                             // line 3: not an object
  text += "{\"no_type_field\": true}\n";             // line 4: no "type"
  std::istringstream in(text);
  const ReadJournal read = JournalReader::read(in);
  ASSERT_EQ(read.errors.size(), 3u);
  EXPECT_EQ(read.errors[0].line, 2u);
  EXPECT_EQ(read.errors[1].line, 3u);
  EXPECT_EQ(read.errors[2].line, 4u);
}

TEST(JournalReader, EmptyStreamIsOkAndEmpty) {
  std::istringstream in("");
  const ReadJournal read = JournalReader::read(in);
  EXPECT_TRUE(read.ok());
  EXPECT_FALSE(read.has_meta);
  EXPECT_EQ(read.lines, 0u);
  EXPECT_EQ(read.journal.task_count(), 0u);
}

TEST(JournalReader, UnopenableFileReportsLineZero) {
  const ReadJournal read =
      JournalReader::read_file("/nonexistent-dir/journal.ndjson");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.errors[0].line, 0u);
}

TEST(JournalReader, AttackTagRoundTripsAndDefaultsToZero) {
  FlightRecorder recorder;
  FlightBuffer* lane = recorder.open_buffer();
  TaskSpanRecord tagged;
  tagged.announcer = 1;
  tagged.adversary = 2;
  tagged.start_ns = 10;
  tagged.duration_ns = 5;
  tagged.attack = 3;  // route-leak plane
  lane->record_task(tagged);
  TaskSpanRecord untagged = tagged;
  untagged.attack = 0;
  lane->record_task(untagged);
  VerdictRecord verdict;
  verdict.victim = 1;
  verdict.adversary = 2;
  verdict.perspective = 9;
  verdict.outcome = 2;
  verdict.attack = 2;
  lane->record_verdict(verdict);
  const std::string text = to_ndjson(recorder.drain());

  // The tag is written only when nonzero, so single-attack journals keep
  // their pre-multi-attack bytes: exactly the two tagged records carry it.
  std::size_t occurrences = 0;
  for (std::size_t at = text.find("\"attack\":"); at != std::string::npos;
       at = text.find("\"attack\":", at + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 2u);

  std::istringstream in(text);
  const ReadJournal read = JournalReader::read(in);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.journal.workers[0].tasks.size(), 2u);
  EXPECT_EQ(read.journal.workers[0].tasks[0].attack, 3);
  EXPECT_EQ(read.journal.workers[0].tasks[1].attack, 0)
      << "an absent tag must read back as the pre-multi-attack default";
  ASSERT_EQ(read.journal.workers[0].verdicts.size(), 1u);
  EXPECT_EQ(read.journal.workers[0].verdicts[0].attack, 2);
}

TEST(JournalReader, TaskAndVerdictWithoutAttackFieldDefaultToZero) {
  // A journal written before the attack tag existed.
  std::istringstream in(
      "{\"type\": \"meta\", \"journal_schema\": 1, \"epoch_ns\": 0}\n"
      "{\"type\": \"task\", \"worker\": 0, \"announcer\": 1,"
      " \"adversary\": 2, \"start_ns\": 5, \"duration_ns\": 10}\n"
      "{\"type\": \"verdict\", \"worker\": 0, \"victim\": 1,"
      " \"adversary\": 2, \"perspective\": 3, \"outcome\": \"adversary\","
      " \"decided_by\": \"local_pref\", \"contested\": true}\n");
  const ReadJournal read = JournalReader::read(in);
  ASSERT_TRUE(read.ok()) << (read.errors.empty()
                                 ? ""
                                 : read.errors.front().message);
  ASSERT_EQ(read.journal.task_count(), 1u);
  EXPECT_EQ(read.journal.workers[0].tasks[0].attack, 0);
  ASSERT_EQ(read.journal.workers[0].verdicts.size(), 1u);
  EXPECT_EQ(read.journal.workers[0].verdicts[0].attack, 0);
}

TEST(VerdictStep, FromStringInvertsToCstring) {
  for (const VerdictStep step :
       {VerdictStep::LocalPref, VerdictStep::PathLength,
        VerdictStep::RouteAge, VerdictStep::NeighborAsn,
        VerdictStep::IngressPop, VerdictStep::MoreSpecific,
        VerdictStep::Unopposed}) {
    VerdictStep decoded = VerdictStep::LocalPref;
    ASSERT_TRUE(verdict_step_from_string(to_cstring(step), decoded));
    EXPECT_EQ(decoded, step);
  }
  VerdictStep untouched = VerdictStep::IngressPop;
  EXPECT_FALSE(verdict_step_from_string("not_a_step", untouched));
  EXPECT_EQ(untouched, VerdictStep::IngressPop);
}

}  // namespace
}  // namespace marcopolo::obs
