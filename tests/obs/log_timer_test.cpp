// Logger level gating / sink capture and ScopedTimer + TraceRing spans.
// The global logger is process-wide state, so every test restores the
// null-sink, level-Off default before returning.
#include "obs/log.hpp"
#include "obs/timer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace marcopolo::obs {
namespace {

struct LoggerReset {
  ~LoggerReset() {
    Logger::global().set_sink(nullptr);
    Logger::global().set_level(LogLevel::Off);
  }
};

TEST(Log, SilentByDefault) {
  LoggerReset reset;
  // Level Off: nothing is enabled, nothing is formatted.
  EXPECT_FALSE(Logger::global().enabled(LogLevel::Error));
  bool evaluated = false;
  const auto touch = [&] {
    evaluated = true;
    return 1;
  };
  MARCOPOLO_LOG(Error) << "dropped" << touch();
  EXPECT_FALSE(evaluated) << "disabled level must not evaluate operands";
}

TEST(Log, LevelGatingAndSinkCapture) {
  LoggerReset reset;
  std::vector<std::pair<LogLevel, std::string>> captured;
  Logger::global().set_sink([&](LogLevel level, std::string_view msg) {
    captured.emplace_back(level, std::string(msg));
  });
  Logger::global().set_level(LogLevel::Warn);

  MARCOPOLO_LOG(Debug) << "nope";
  MARCOPOLO_LOG(Info) << "nope";
  MARCOPOLO_LOG(Warn) << "campaign stalled" << field("tasks", 7);
  MARCOPOLO_LOG(Error) << "boom";

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::Warn);
  EXPECT_EQ(captured[0].second, "campaign stalled tasks=7");
  EXPECT_EQ(captured[1].first, LogLevel::Error);
  EXPECT_EQ(captured[1].second, "boom");
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(to_cstring(LogLevel::Debug), "debug");
  EXPECT_STREQ(to_cstring(LogLevel::Error), "error");
  EXPECT_STREQ(to_cstring(LogLevel::Off), "off");
}

TEST(ScopedTimer, FeedsHistogramOnDestruction) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("span.ns");
  { ScopedTimer timer(h); }
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot* s = snap.histogram("span.ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
}

TEST(ScopedTimer, StopIsIdempotent) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("span.ns");
  {
    ScopedTimer timer(h);
    timer.stop();
    timer.stop();  // second stop and the destructor must not re-report
  }
  const HistogramSnapshot* s = reg.snapshot().histogram("span.ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
}

TEST(ScopedTimer, NullHandleObservesNothing) {
  // Must be a no-op (and, per the header contract, read no clock).
  ScopedTimer timer(Histogram{});
  timer.stop();
}

TEST(TraceRing, DisabledByDefault) {
  TraceRing ring;
  EXPECT_FALSE(ring.enabled());
  ring.record("span", 0, 1);
  EXPECT_TRUE(ring.drain().empty());
}

TEST(TraceRing, KeepsNewestSpansOldestFirst) {
  TraceRing ring(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.record("s" + std::to_string(i), i, i * 10);
  }
  const auto spans = ring.drain();
  ASSERT_EQ(spans.size(), 3u);  // capacity bounds retention
  EXPECT_EQ(spans[0].name, "s2");
  EXPECT_EQ(spans[1].name, "s3");
  EXPECT_EQ(spans[2].name, "s4");
  EXPECT_EQ(spans[2].duration_ns, 40u);
  EXPECT_TRUE(ring.drain().empty()) << "drain resets the ring";
}

TEST(TraceRing, ScopedTimerRecordsSpan) {
  MetricsRegistry reg;
  TraceRing ring(8);
  {
    ScopedTimer timer(reg.histogram("span.ns"), &ring, "propagate");
  }
  const auto spans = ring.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "propagate");
}

TEST(TraceRing, ConcurrentScopedTimersWrapWithoutCorruption) {
  // Many writers racing through a small ring: wraparound must keep the
  // ring internally consistent (exactly `capacity` retained spans, every
  // one a real span, histogram sample count exact).
  constexpr std::size_t kCapacity = 64;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSpansPerThread = 100;

  MetricsRegistry reg;
  Histogram h = reg.histogram("span.ns");
  TraceRing ring(kCapacity);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &ring, t] {
      const std::string name = "w" + std::to_string(t);
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        ScopedTimer timer(h, &ring, name);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto spans = ring.drain();
  ASSERT_EQ(spans.size(), kCapacity) << "ring must be exactly full after "
                                        "400 racing records into 64 slots";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].name.size(), 2u) << "slot " << i << " corrupted";
    EXPECT_EQ(spans[i].name[0], 'w') << "slot " << i << " corrupted";
  }
  const MetricsSnapshot metrics = reg.snapshot();
  const HistogramSnapshot* snap = metrics.histogram("span.ns");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, kThreads * kSpansPerThread);
  EXPECT_TRUE(ring.drain().empty()) << "drain resets the ring";
}

}  // namespace
}  // namespace marcopolo::obs
