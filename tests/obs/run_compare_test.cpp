// Run comparison / CI gate / bundle check: the analysis layer mpinspect
// is built on. A run diffed against itself must be all-zero and pass;
// an injected regression must fail with a violation naming the quantity.
#include "obs/run_compare.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace marcopolo::obs {
namespace {

FlightJournal provenance_journal() {
  FlightRecorder recorder;
  FlightBuffer* w = recorder.open_buffer();
  TaskSpanRecord task;
  task.start_ns = 1'000;
  task.duration_ns = 10'000;
  task.propagate_ns = 6'000;
  task.classify_ns = 2'000;
  task.record_ns = 1'000;
  w->record_task(task);
  task.start_ns = 20'000;
  w->record_task(task);

  VerdictRecord v;
  v.outcome = 2;
  v.decided_by = VerdictStep::RouteAge;
  v.contested = true;
  w->record_verdict(v);  // adversary, contested, route-age-sensitive
  v.outcome = 1;
  v.decided_by = VerdictStep::PathLength;
  w->record_verdict(v);  // victim, contested
  v.decided_by = VerdictStep::Unopposed;
  v.contested = false;
  w->record_verdict(v);  // victim, uncontested
  v.decided_by = VerdictStep::RouteAge;
  w->record_verdict(v);  // route-age but uncontested: NOT sensitive
  return recorder.drain();
}

TEST(ProvenanceSummary, CountsOutcomesAndDecisionSteps) {
  const ProvenanceSummary prov =
      summarize_provenance(provenance_journal());
  EXPECT_EQ(prov.verdicts, 4u);
  EXPECT_EQ(prov.adversary, 1u);
  EXPECT_EQ(prov.contested, 2u);
  EXPECT_EQ(prov.route_age_sensitive, 1u);
  EXPECT_EQ(prov.decided_by.at("route_age"), 2u);
  EXPECT_EQ(prov.decided_by.at("path_length"), 1u);
  EXPECT_EQ(prov.decided_by.at("unopposed"), 1u);
  EXPECT_DOUBLE_EQ(prov.contested_rate(), 0.5);
  EXPECT_DOUBLE_EQ(prov.route_age_sensitive_rate(), 0.25);
  EXPECT_DOUBLE_EQ(ProvenanceSummary{}.contested_rate(), 0.0);
}

TEST(PhaseAttribution, SumsSpansAndDerivesOther) {
  const PhaseAttribution phases =
      attribute_phases(provenance_journal());
  EXPECT_EQ(phases.total_ns, 20'000u);
  EXPECT_EQ(phases.propagate_ns, 12'000u);
  EXPECT_EQ(phases.classify_ns, 4'000u);
  EXPECT_EQ(phases.record_ns, 2'000u);
  EXPECT_EQ(phases.other_ns(), 2'000u);
}

/// A campaign_wallclock-shaped document with adjustable timing.
ReadManifest bench_doc(double t1_seconds, double t2_seconds,
                       std::uint64_t task_ns_scale = 1,
                       std::uint64_t tasks = 2048) {
  std::string doc = R"({"benchmark": "campaign_wallclock", "runs": [)";
  doc += R"({"threads": 1, "seconds": )" + std::to_string(t1_seconds) +
         R"(, "tasks": )" + std::to_string(tasks) +
         R"(, "propagations": 1984},)";
  doc += R"({"threads": 2, "seconds": )" + std::to_string(t2_seconds) +
         R"(, "tasks": )" + std::to_string(tasks) +
         R"(, "propagations": 1984}],)";
  // One log2 bucket per sample keeps the quantile shift proportional to
  // the bucket bound scale.
  const std::uint64_t le = (std::uint64_t{1} << 18) - 1;
  doc += R"("metrics": {"counters": {"campaign.tasks_executed": )" +
         std::to_string(tasks) + R"(},
    "histograms": {"campaign.task_ns": {"count": 100, "sum": 0,
      "min": )" +
         std::to_string((le >> 1) * task_ns_scale + 1) + R"(, "max": )" +
         std::to_string(le * task_ns_scale) + R"(,
      "buckets": [{"le": )" +
         std::to_string(le * task_ns_scale) + R"(, "count": 100}]}}}})";
  const ReadManifest read = ManifestReader::read_string(doc);
  EXPECT_TRUE(read.ok()) << (read.ok() ? "" : read.errors.front());
  return read;
}

TEST(CompareRuns, SelfComparisonIsAllZeroAndPasses) {
  const ReadManifest doc = bench_doc(0.5, 0.3);
  const RunComparison comparison = compare_runs(doc, doc);

  ASSERT_EQ(comparison.runs.size(), 2u);
  for (const BenchRunDelta& run : comparison.runs) {
    EXPECT_DOUBLE_EQ(run.seconds_pct(), 0.0);
    EXPECT_DOUBLE_EQ(run.base_throughput, run.cand_throughput);
  }
  ASSERT_EQ(comparison.quantiles.size(), 3u);  // one histogram x 3 q's
  for (const QuantileDelta& quantile : comparison.quantiles) {
    EXPECT_DOUBLE_EQ(quantile.pct(), 0.0);
  }
  for (const CounterDelta& counter : comparison.counters) {
    EXPECT_EQ(counter.delta(), 0);
    EXPECT_TRUE(counter.in_base && counter.in_cand);
  }

  const DiffGateResult gate = evaluate_gate(comparison, DiffGateConfig{});
  EXPECT_TRUE(gate.pass);
  EXPECT_TRUE(gate.violations.empty());
  EXPECT_TRUE(gate.notes.empty());
}

TEST(CompareRuns, WallClockRegressionFailsTheGate) {
  const ReadManifest base = bench_doc(0.5, 0.3);
  const ReadManifest cand = bench_doc(0.8, 0.3);  // threads=1: +60%
  const DiffGateResult gate =
      evaluate_gate(compare_runs(base, cand), DiffGateConfig{25.0});
  EXPECT_FALSE(gate.pass);
  ASSERT_EQ(gate.violations.size(), 1u);
  EXPECT_NE(gate.violations[0].find("threads=1"), std::string::npos);
  EXPECT_NE(gate.violations[0].find("+60.0%"), std::string::npos);
}

TEST(CompareRuns, QuantileRegressionOnTimeHistogramFailsTheGate) {
  const ReadManifest base = bench_doc(0.5, 0.3, /*task_ns_scale=*/1);
  const ReadManifest cand = bench_doc(0.5, 0.3, /*task_ns_scale=*/2);
  const DiffGateResult gate =
      evaluate_gate(compare_runs(base, cand), DiffGateConfig{25.0});
  EXPECT_FALSE(gate.pass);
  ASSERT_FALSE(gate.violations.empty());
  // p95 and p99 of campaign.task_ns roughly doubled; p50 is not gated.
  for (const std::string& violation : gate.violations) {
    EXPECT_NE(violation.find("campaign.task_ns"), std::string::npos);
    EXPECT_EQ(violation.find("p50"), std::string::npos);
  }
}

TEST(CompareRuns, ImprovementAndThresholdRespectTheConfig) {
  const ReadManifest base = bench_doc(0.5, 0.3);
  const ReadManifest faster = bench_doc(0.2, 0.1);
  EXPECT_TRUE(
      evaluate_gate(compare_runs(base, faster), DiffGateConfig{25.0}).pass);
  // +60% passes a 100% threshold.
  const ReadManifest slower = bench_doc(0.8, 0.3);
  EXPECT_TRUE(
      evaluate_gate(compare_runs(base, slower), DiffGateConfig{100.0}).pass);
}

/// A minimal doc whose single time histogram has all mass at `ns`.
ReadManifest tiny_hist_doc(std::uint64_t ns) {
  const std::string doc =
      R"({"tool": "t", "metrics": {"histograms": {"campaign.phase.classify_ns":
         {"count": 100, "sum": 0, "min": )" +
      std::to_string(ns) + R"(, "max": )" + std::to_string(ns) +
      R"(, "buckets": [{"le": )" + std::to_string(ns) +
      R"(, "count": 100}]}}}})";
  const ReadManifest read = ManifestReader::read_string(doc);
  EXPECT_TRUE(read.ok()) << (read.ok() ? "" : read.errors.front());
  return read;
}

TEST(CompareRuns, QuantilesBelowTheJitterFloorAreNotGated) {
  // Single-digit-microsecond quantiles double — scheduler noise at that
  // scale, so the gate must not fire while both sides sit under the floor.
  const DiffGateResult below = evaluate_gate(
      compare_runs(tiny_hist_doc(2'000), tiny_hist_doc(4'000)),
      DiffGateConfig{25.0});
  EXPECT_TRUE(below.pass) << below.violations.front();

  // The same relative regression crossing the floor is real and gated.
  const DiffGateResult across = evaluate_gate(
      compare_runs(tiny_hist_doc(2'000), tiny_hist_doc(50'000)),
      DiffGateConfig{25.0});
  EXPECT_FALSE(across.pass);
}

TEST(CompareRuns, WorkloadDriftIsANoteNeverAViolation) {
  const ReadManifest base = bench_doc(0.5, 0.3, 1, /*tasks=*/2048);
  const ReadManifest cand = bench_doc(0.5, 0.3, 1, /*tasks=*/4096);
  const DiffGateResult gate =
      evaluate_gate(compare_runs(base, cand), DiffGateConfig{25.0});
  EXPECT_TRUE(gate.pass);
  ASSERT_FALSE(gate.notes.empty());
  EXPECT_NE(gate.notes[0].find("workload drift"), std::string::npos);
  EXPECT_NE(gate.notes[0].find("campaign.tasks_executed"),
            std::string::npos);
}

TEST(CompareRuns, OneSidedCountersAreNoted) {
  const ReadManifest base = ManifestReader::read_string(
      R"({"tool": "t", "metrics": {"counters": {"only.in.base": 1}}})");
  const ReadManifest cand = ManifestReader::read_string(
      R"({"tool": "t", "metrics": {"counters": {"only.in.cand": 2}}})");
  const RunComparison comparison = compare_runs(base, cand);
  ASSERT_EQ(comparison.counters.size(), 2u);
  const DiffGateResult gate = evaluate_gate(comparison, DiffGateConfig{});
  EXPECT_TRUE(gate.pass);
  EXPECT_EQ(gate.notes.size(), 2u);
}

/// A bench-shaped document carrying only named phases.
ReadManifest phase_doc(const std::vector<std::pair<std::string, double>>&
                           phases) {
  std::string doc = R"({"benchmark": "campaign_wallclock", "phases": [)";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    doc += std::string(i ? "," : "") + R"({"name": ")" + phases[i].first +
           R"(", "seconds": )" + std::to_string(phases[i].second) + "}";
  }
  doc += "]}";
  const ReadManifest read = ManifestReader::read_string(doc);
  EXPECT_TRUE(read.ok()) << (read.ok() ? "" : read.errors.front());
  return read;
}

TEST(CompareRuns, PhaseSelfComparisonIsAllZeroAndPasses) {
  const ReadManifest doc =
      phase_doc({{"optimizer_exhaustive_ms", 2.5}, {"setup", 0.1}});
  const RunComparison comparison = compare_runs(doc, doc);
  ASSERT_EQ(comparison.phases.size(), 2u);
  for (const PhaseDelta& phase : comparison.phases) {
    EXPECT_TRUE(phase.in_base && phase.in_cand);
    EXPECT_DOUBLE_EQ(phase.pct(), 0.0);
  }
  const DiffGateResult gate = evaluate_gate(comparison, DiffGateConfig{});
  EXPECT_TRUE(gate.pass);
  EXPECT_TRUE(gate.notes.empty());
}

TEST(CompareRuns, PhaseRegressionFailsTheGateByName) {
  const ReadManifest base = phase_doc({{"optimizer_exhaustive_ms", 2.0}});
  const ReadManifest cand = phase_doc({{"optimizer_exhaustive_ms", 3.0}});
  const DiffGateResult gate =
      evaluate_gate(compare_runs(base, cand), DiffGateConfig{25.0});
  EXPECT_FALSE(gate.pass);
  ASSERT_EQ(gate.violations.size(), 1u);
  EXPECT_NE(gate.violations[0].find("phase optimizer_exhaustive_ms"),
            std::string::npos);
  EXPECT_NE(gate.violations[0].find("+50.0%"), std::string::npos);
  // A phase speedup and a within-threshold slowdown both pass.
  EXPECT_TRUE(
      evaluate_gate(compare_runs(cand, base), DiffGateConfig{25.0}).pass);
  EXPECT_TRUE(
      evaluate_gate(compare_runs(base, cand), DiffGateConfig{75.0}).pass);
}

TEST(CompareRuns, OneSidedPhaseIsANoteNeverAViolation) {
  // An old baseline predating a new phase must not fail the gate — the
  // CI diff of the first run after adding a measurement still gates
  // everything else.
  const ReadManifest base = phase_doc({});
  const ReadManifest cand = phase_doc({{"optimizer_exhaustive_ms", 2.0}});
  const RunComparison comparison = compare_runs(base, cand);
  ASSERT_EQ(comparison.phases.size(), 1u);
  EXPECT_FALSE(comparison.phases[0].in_base);
  EXPECT_TRUE(comparison.phases[0].in_cand);
  const DiffGateResult gate = evaluate_gate(comparison, DiffGateConfig{});
  EXPECT_TRUE(gate.pass);
  ASSERT_EQ(gate.notes.size(), 1u);
  EXPECT_NE(gate.notes[0].find("only in candidate"), std::string::npos);

  const DiffGateResult reverse =
      evaluate_gate(compare_runs(cand, base), DiffGateConfig{});
  EXPECT_TRUE(reverse.pass);
  ASSERT_EQ(reverse.notes.size(), 1u);
  EXPECT_NE(reverse.notes[0].find("only in baseline"), std::string::npos);
}

/// A bench-shaped document with one counter-bearing phase. `availability`
/// becomes the top-level "perf_counters" echo ("" omits the field, like a
/// pre-counter writer).
ReadManifest counter_phase_doc(std::uint64_t instructions,
                               std::uint64_t cycles,
                               std::uint64_t cache_references = 0,
                               std::uint64_t cache_misses = 0,
                               const std::string& availability =
                                   "available") {
  std::string doc = R"({"benchmark": "campaign_wallclock", )";
  if (!availability.empty()) {
    doc += R"("perf_counters": ")" + availability + R"(", )";
  }
  doc += R"("phases": [{"name": "resilience_kernel_ms", "seconds": 0.25)";
  if (instructions != 0) {
    doc += R"(, "instructions": )" + std::to_string(instructions) +
           R"(, "cycles": )" + std::to_string(cycles) +
           R"(, "cache_references": )" + std::to_string(cache_references) +
           R"(, "cache_misses": )" + std::to_string(cache_misses);
  }
  doc += "}]}";
  const ReadManifest read = ManifestReader::read_string(doc);
  EXPECT_TRUE(read.ok()) << (read.ok() ? "" : read.errors.front());
  return read;
}

TEST(CompareRuns, CounterSelfComparisonIsAllZeroAndPasses) {
  const ReadManifest doc = counter_phase_doc(1'000'000'000, 500'000'000,
                                             10'000'000, 1'000'000);
  const RunComparison comparison = compare_runs(doc, doc);
  ASSERT_EQ(comparison.phases.size(), 1u);
  EXPECT_TRUE(comparison.phases[0].base_has_counters);
  EXPECT_TRUE(comparison.phases[0].cand_has_counters);
  EXPECT_DOUBLE_EQ(comparison.phases[0].instructions_pct(), 0.0);
  const DiffGateResult gate = evaluate_gate(comparison, DiffGateConfig{});
  EXPECT_TRUE(gate.pass);
  EXPECT_TRUE(gate.violations.empty());
  EXPECT_TRUE(gate.notes.empty());
}

TEST(CompareRuns, InstructionsRegressionFailsTheGateAtThreePercent) {
  const ReadManifest base = counter_phase_doc(1'000'000'000, 500'000'000);
  // +4% instructions, wall clock unchanged: invisible to the 25%
  // wall-clock gate, caught by the 3% counter gate.
  const ReadManifest cand = counter_phase_doc(1'040'000'000, 500'000'000);
  const DiffGateResult gate =
      evaluate_gate(compare_runs(base, cand), DiffGateConfig{});
  EXPECT_FALSE(gate.pass);
  ASSERT_EQ(gate.violations.size(), 1u);
  EXPECT_NE(gate.violations[0].find("resilience_kernel_ms"),
            std::string::npos);
  EXPECT_NE(gate.violations[0].find("instructions"), std::string::npos);

  // +2% stays under the default 3% threshold; an instruction-count
  // improvement always passes.
  const ReadManifest small = counter_phase_doc(1'020'000'000, 500'000'000);
  EXPECT_TRUE(evaluate_gate(compare_runs(base, small), DiffGateConfig{})
                  .pass);
  EXPECT_TRUE(evaluate_gate(compare_runs(cand, base), DiffGateConfig{})
                  .pass);
  // And the threshold is configurable.
  DiffGateConfig loose;
  loose.counter_max_regress_pct = 10.0;
  EXPECT_TRUE(evaluate_gate(compare_runs(base, cand), loose).pass);
}

TEST(CompareRuns, IpcAndCacheShiftsAreNotesNeverViolations) {
  // Same instruction count, half the IPC and a 10x cache-miss-rate jump:
  // microarchitectural context, not a code-size regression — the gate
  // notes it and passes.
  const ReadManifest base = counter_phase_doc(1'000'000'000, 500'000'000,
                                              100'000'000, 1'000'000);
  const ReadManifest cand = counter_phase_doc(1'000'000'000, 1'000'000'000,
                                              100'000'000, 10'000'000);
  const DiffGateResult gate =
      evaluate_gate(compare_runs(base, cand), DiffGateConfig{});
  EXPECT_TRUE(gate.pass) << gate.violations.front();
  EXPECT_GE(gate.notes.size(), 2u);
  bool ipc_note = false;
  bool cache_note = false;
  for (const std::string& note : gate.notes) {
    ipc_note = ipc_note || note.find("ipc") != std::string::npos;
    cache_note =
        cache_note || note.find("cache") != std::string::npos;
  }
  EXPECT_TRUE(ipc_note);
  EXPECT_TRUE(cache_note);
}

TEST(CompareRuns, OneSidedPhaseCountersAreNotedNotGated) {
  // Baseline recorded on a PMU-less host (counters unavailable): the
  // candidate's counters have nothing to gate against. Must pass with a
  // note explaining why, in both directions.
  const ReadManifest without =
      counter_phase_doc(0, 0, 0, 0, "unavailable");
  const ReadManifest with = counter_phase_doc(1'000'000'000, 500'000'000);
  const DiffGateResult gate =
      evaluate_gate(compare_runs(without, with), DiffGateConfig{});
  EXPECT_TRUE(gate.pass);
  ASSERT_FALSE(gate.notes.empty());
  EXPECT_NE(gate.notes[0].find("unavailable"), std::string::npos);

  const DiffGateResult reverse =
      evaluate_gate(compare_runs(with, without), DiffGateConfig{});
  EXPECT_TRUE(reverse.pass);
  EXPECT_FALSE(reverse.notes.empty());

  // A baseline predating counter support entirely (no availability echo)
  // is also one-sided, with the "predates" explanation.
  const ReadManifest old = counter_phase_doc(0, 0, 0, 0, "");
  const DiffGateResult vs_old =
      evaluate_gate(compare_runs(old, with), DiffGateConfig{});
  EXPECT_TRUE(vs_old.pass);
  ASSERT_FALSE(vs_old.notes.empty());
  EXPECT_NE(vs_old.notes[0].find("predates"), std::string::npos);
}

// --- check_trace_bundle ---------------------------------------------------

class BundleCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("mp_bundle_check_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Write a coherent bundle: journal + trace + metrics whose
  /// campaign.tasks_executed matches the journal's task spans.
  FlightJournal write_good_bundle() {
    FlightRecorder recorder;
    FlightBuffer* w = recorder.open_buffer();
    for (int i = 0; i < 3; ++i) {
      TaskSpanRecord task;
      task.start_ns = 1'000 + static_cast<std::uint64_t>(i) * 100;
      task.duration_ns = 50;
      w->record_task(task);
      VerdictRecord v;
      v.outcome = i == 0 ? 2 : 1;
      w->record_verdict(v);
    }
    FlightJournal journal = recorder.drain();
    MetricsRegistry reg;
    reg.counter("campaign.tasks_executed").add(3);
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_TRUE(write_trace_dir(dir_, journal, &snap));
    return journal;
  }

  std::string dir_;
};

TEST_F(BundleCheckTest, PassesOnACoherentBundle) {
  write_good_bundle();
  const BundleCheckResult result = check_trace_bundle(dir_);
  EXPECT_TRUE(result.ok) << (result.problems.empty()
                                 ? ""
                                 : result.problems.front());
  EXPECT_EQ(result.tasks, 3u);
  EXPECT_EQ(result.verdicts, 3u);
  EXPECT_EQ(result.journal_lines, 7u);  // meta + 3 tasks + 3 verdicts
}

TEST_F(BundleCheckTest, TruncatedJournalFailsWithLineNumber) {
  write_good_bundle();
  const std::string path = dir_ + "/journal.ndjson";
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  text.resize(text.size() / 2);
  std::ofstream(path, std::ios::trunc) << text;

  const BundleCheckResult result = check_trace_bundle(dir_);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("journal.ndjson line"),
            std::string::npos);
}

TEST_F(BundleCheckTest, MetaDisagreementFails) {
  write_good_bundle();
  const std::string path = dir_ + "/journal.ndjson";
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Drop the final line (a verdict), leaving the meta header's counts
  // claiming one more verdict than the journal carries.
  text.erase(text.find_last_of('\n', text.size() - 2) + 1);
  std::ofstream(path, std::ios::trunc) << text;

  const BundleCheckResult result = check_trace_bundle(dir_);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("meta"), std::string::npos);
}

TEST_F(BundleCheckTest, NonMonotoneLaneFails) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ + "/journal.ndjson")
      << R"({"type": "meta", "journal_schema": 1, "epoch_ns": 100, )"
      << R"("workers": 1, "tasks": 2, "verdicts": 0, )"
      << R"("adversary_verdicts": 0})" << "\n"
      << R"({"type": "task", "worker": 0, "start_ns": 500, )"
      << R"("duration_ns": 10})" << "\n"
      << R"({"type": "task", "worker": 0, "start_ns": 100, )"
      << R"("duration_ns": 10})" << "\n";
  const BundleCheckResult result = check_trace_bundle(dir_);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("not monotone"), std::string::npos);
}

TEST_F(BundleCheckTest, TimeseriesIsValidatedWhenPresent) {
  write_good_bundle();
  std::ofstream(dir_ + "/timeseries.ndjson")
      << R"({"type":"meta","timeseries_schema":1,"tick_ms":100})" << "\n"
      << R"({"type":"tick","tick":0,"tasks_done":1})" << "\n"
      << R"({"type":"tick","tick":1,"tasks_done":3,"final":true,)"
      << R"("counters":{"campaign.tasks_executed":3}})" << "\n";
  const BundleCheckResult result = check_trace_bundle(dir_);
  EXPECT_TRUE(result.ok) << (result.problems.empty()
                                 ? ""
                                 : result.problems.front());
  EXPECT_TRUE(result.has_timeseries);
  EXPECT_EQ(result.timeseries_ticks, 2u);
}

TEST_F(BundleCheckTest, TamperedTimeseriesFailsWithLineNumber) {
  write_good_bundle();
  // Tick ids that fail to strictly increase are the tamper/corruption
  // signature the checker must reject, naming the line.
  std::ofstream(dir_ + "/timeseries.ndjson")
      << R"({"type":"meta","timeseries_schema":1,"tick_ms":100})" << "\n"
      << R"({"type":"tick","tick":5,"tasks_done":1})" << "\n"
      << R"({"type":"tick","tick":2,"tasks_done":3})" << "\n";
  const BundleCheckResult result = check_trace_bundle(dir_);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("timeseries.ndjson line 3"),
            std::string::npos)
      << result.problems[0];
  EXPECT_NE(result.problems[0].find("non-monotone"), std::string::npos);
}

TEST_F(BundleCheckTest, TimeseriesFinalCounterDisagreementFails) {
  write_good_bundle();
  std::ofstream(dir_ + "/timeseries.ndjson")
      << R"({"type":"meta","timeseries_schema":1,"tick_ms":100})" << "\n"
      << R"({"type":"tick","tick":0,"final":true,)"
      << R"("counters":{"campaign.tasks_executed":999}})" << "\n";
  const BundleCheckResult result = check_trace_bundle(dir_);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("timeseries"), std::string::npos);
  EXPECT_NE(result.problems[0].find("campaign.tasks_executed"),
            std::string::npos);
}

TEST_F(BundleCheckTest, ManifestCounterDisagreementFails) {
  write_good_bundle();
  const std::string manifest = dir_ + "/run.json";
  std::ofstream(manifest)
      << R"({"tool": "t", "metrics": )"
      << R"({"counters": {"campaign.tasks_executed": 999}}})";
  const BundleCheckResult result = check_trace_bundle(dir_, manifest);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("campaign.tasks_executed"),
            std::string::npos);

  // And an agreeing manifest passes.
  std::ofstream(manifest, std::ios::trunc)
      << R"({"tool": "t", "metrics": )"
      << R"({"counters": {"campaign.tasks_executed": 3}}})";
  EXPECT_TRUE(check_trace_bundle(dir_, manifest).ok);
}

TEST_F(BundleCheckTest, MissingJournalFails) {
  std::filesystem::create_directories(dir_);
  const BundleCheckResult result = check_trace_bundle(dir_);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("missing"), std::string::npos);
}

TEST_F(BundleCheckTest, MalformedTraceJsonFails) {
  write_good_bundle();
  std::ofstream(dir_ + "/trace.json", std::ios::trunc) << "{\"oops\": ";
  const BundleCheckResult result = check_trace_bundle(dir_);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("trace.json"), std::string::npos);
}

}  // namespace
}  // namespace marcopolo::obs
