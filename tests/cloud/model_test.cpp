#include "cloud/model.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace marcopolo::cloud {
namespace {

topo::InternetConfig small_config() {
  topo::InternetConfig cfg;
  cfg.num_tier2 = 40;
  cfg.num_tier3 = 40;
  cfg.num_stub = 40;
  return cfg;
}

TEST(CloudDefaults, MatchPaperPolicies) {
  const auto aws = default_config(topo::CloudProvider::Aws);
  EXPECT_EQ(aws.policy, EgressPolicy::HotPotato);
  EXPECT_EQ(aws.asn, bgp::Asn{16509});

  const auto gcp = default_config(topo::CloudProvider::Gcp);
  EXPECT_EQ(gcp.policy, EgressPolicy::ColdPotato);  // Premium Tier
  EXPECT_EQ(gcp.asn, bgp::Asn{15169});

  const auto azure = default_config(topo::CloudProvider::Azure);
  EXPECT_EQ(azure.policy, EgressPolicy::HotPotato);
  EXPECT_GT(azure.peers_per_pop, aws.peers_per_pop);  // densest peering

  EXPECT_THROW((void)default_config(topo::CloudProvider::Vultr),
               std::invalid_argument);
}

TEST(ZoneGranularity, SuperRegionFoldsContinents) {
  using topo::Continent;
  EXPECT_EQ(zone_of(Continent::NorthAmerica, ZoneGranularity::SuperRegion),
            zone_of(Continent::SouthAmerica, ZoneGranularity::SuperRegion));
  EXPECT_EQ(zone_of(Continent::Europe, ZoneGranularity::SuperRegion),
            zone_of(Continent::Africa, ZoneGranularity::SuperRegion));
  EXPECT_EQ(zone_of(Continent::Asia, ZoneGranularity::SuperRegion),
            zone_of(Continent::Oceania, ZoneGranularity::SuperRegion));
  EXPECT_NE(zone_of(Continent::NorthAmerica, ZoneGranularity::SuperRegion),
            zone_of(Continent::Europe, ZoneGranularity::SuperRegion));
  // Continent granularity keeps them apart.
  EXPECT_NE(zone_of(Continent::NorthAmerica, ZoneGranularity::Continent),
            zone_of(Continent::SouthAmerica, ZoneGranularity::Continent));
}

class CloudModelTest : public ::testing::Test {
 protected:
  CloudModelTest() : internet_(small_config()) {
    victim_ = internet_.add_leaf_as(bgp::Asn{64512}, {35.68, 139.69},
                                    topo::Continent::Asia);
    adversary_ = internet_.add_leaf_as(bgp::Asn{64513}, {40.71, -74.01},
                                       topo::Continent::NorthAmerica);
    internet_.graph().add_provider_customer(internet_.tier1_for(3), victim_);
    internet_.graph().add_provider_customer(internet_.tier1_for(4),
                                            adversary_);
    for (const auto t2 : internet_.nearest_tier2({35.68, 139.69}, 2)) {
      internet_.graph().add_provider_customer(t2, victim_);
    }
    for (const auto t2 : internet_.nearest_tier2({40.71, -74.01}, 2)) {
      internet_.graph().add_provider_customer(t2, adversary_);
    }
  }

  bgp::HijackScenario make_scenario(bgp::AttackType type =
                                        bgp::AttackType::EquallySpecific) {
    bgp::ScenarioConfig cfg;
    cfg.type = type;
    cfg.tie_break = bgp::TieBreakMode::Hashed;
    return bgp::HijackScenario(internet_.graph(), victim_, adversary_,
                               *netsim::Ipv4Prefix::parse("203.0.113.0/24"),
                               cfg);
  }

  topo::Internet internet_;
  bgp::NodeId victim_;
  bgp::NodeId adversary_;
};

TEST_F(CloudModelTest, WiresOnePopPerRegion) {
  const CloudProviderModel model(internet_,
                                 default_config(topo::CloudProvider::Aws));
  EXPECT_EQ(model.perspective_count(), topo::aws_regions().size());
  // Every neighbor entry on the backbone names a valid POP or transit.
  std::set<std::uint16_t> pops;
  for (const auto& nb : internet_.graph().neighbors(model.backbone())) {
    if (nb.local_pop.valid()) {
      EXPECT_LT(nb.local_pop.value, model.perspective_count());
      pops.insert(nb.local_pop.value);
    }
  }
  // Peering exists at many POPs (27 regions x 2 peers, some dedup).
  EXPECT_GT(pops.size(), model.perspective_count() / 2);
}

TEST_F(CloudModelTest, BackboneIsStub) {
  const CloudProviderModel model(internet_,
                                 default_config(topo::CloudProvider::Gcp));
  EXPECT_TRUE(internet_.graph().customers_of(model.backbone()).empty());
  EXPECT_FALSE(internet_.graph().providers_of(model.backbone()).empty());
}

TEST_F(CloudModelTest, EveryPerspectiveResolvesUnderAttack) {
  const CloudProviderModel model(internet_,
                                 default_config(topo::CloudProvider::Aws));
  const auto scenario = make_scenario();
  std::size_t victims = 0;
  std::size_t adversaries = 0;
  for (std::size_t p = 0; p < model.perspective_count(); ++p) {
    switch (model.resolve(p, scenario)) {
      case bgp::OriginReached::Victim: ++victims; break;
      case bgp::OriginReached::Adversary: ++adversaries; break;
      case bgp::OriginReached::None: break;
    }
  }
  EXPECT_EQ(victims + adversaries, model.perspective_count())
      << "backbone must have a route for every perspective";
}

TEST_F(CloudModelTest, ColdPotatoPerspectivesMoveByZone) {
  auto cfg = default_config(topo::CloudProvider::Gcp);
  const CloudProviderModel model(internet_, cfg);
  const auto scenario = make_scenario();
  // Within one zone every perspective must agree.
  std::map<std::uint8_t, bgp::OriginReached> zone_outcome;
  for (std::size_t p = 0; p < model.perspective_count(); ++p) {
    const auto zone = zone_of(model.regions()[p].continent, cfg.zones);
    const auto outcome = model.resolve(p, scenario);
    const auto [it, fresh] = zone_outcome.emplace(zone, outcome);
    if (!fresh) {
      EXPECT_EQ(it->second, outcome)
          << "cold-potato zone " << int(zone) << " split at perspective "
          << model.regions()[p].name;
    }
  }
}

TEST_F(CloudModelTest, HotPotatoCanSplitWithinContinent) {
  // Not guaranteed per-scenario, but across many pairs hot potato must
  // produce at least one intra-continent split — otherwise it would be
  // indistinguishable from cold potato.
  const CloudProviderModel model(internet_,
                                 default_config(topo::CloudProvider::Aws));
  bool split_seen = false;
  for (std::uint64_t salt = 0; salt < 20 && !split_seen; ++salt) {
    bgp::ScenarioConfig cfg;
    cfg.tie_break = bgp::TieBreakMode::Hashed;
    cfg.tie_break_seed = salt;
    const bgp::HijackScenario scenario(
        internet_.graph(), victim_, adversary_,
        *netsim::Ipv4Prefix::parse("203.0.113.0/24"), cfg);
    std::map<topo::Continent, std::set<bgp::OriginReached>> per_continent;
    for (std::size_t p = 0; p < model.perspective_count(); ++p) {
      per_continent[model.regions()[p].continent].insert(
          model.resolve(p, scenario));
    }
    for (const auto& [cont, outcomes] : per_continent) {
      if (outcomes.size() > 1) split_seen = true;
    }
  }
  EXPECT_TRUE(split_seen);
}

TEST_F(CloudModelTest, GeoMarginControlsColdPotatoDeterminism) {
  // geo_margin ~1 lets geography decide almost every zone (origins are
  // rarely equidistant); geo_margin 0 makes every zone a coin. The two
  // extremes must disagree somewhere across attack pairs.
  auto decisive_cfg = default_config(topo::CloudProvider::Gcp);
  decisive_cfg.geo_margin = 0.999;
  decisive_cfg.asn = bgp::Asn{65101};
  const CloudProviderModel decisive(internet_, decisive_cfg);

  auto coin_cfg = default_config(topo::CloudProvider::Gcp);
  coin_cfg.geo_margin = 0.0;
  coin_cfg.asn = bgp::Asn{65102};
  const CloudProviderModel coin(internet_, coin_cfg);

  bool differs = false;
  for (std::uint64_t seed = 0; seed < 6 && !differs; ++seed) {
    bgp::ScenarioConfig cfg;
    cfg.tie_break = bgp::TieBreakMode::Hashed;
    cfg.tie_break_seed = seed;
    const bgp::HijackScenario scenario(
        internet_.graph(), victim_, adversary_,
        *netsim::Ipv4Prefix::parse("203.0.113.0/24"), cfg);
    for (std::size_t p = 0; p < decisive.perspective_count(); ++p) {
      if (decisive.resolve(p, scenario) != coin.resolve(p, scenario)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(CloudModelTest, SubPrefixCapturesAllPerspectives) {
  const CloudProviderModel model(internet_,
                                 default_config(topo::CloudProvider::Aws));
  const auto scenario = make_scenario(bgp::AttackType::SubPrefix);
  for (std::size_t p = 0; p < model.perspective_count(); ++p) {
    EXPECT_EQ(model.resolve(p, scenario), bgp::OriginReached::Adversary);
  }
}

TEST_F(CloudModelTest, RovAtCloudEdgeDropsInvalidCandidates) {
  const CloudProviderModel model(internet_,
                                 default_config(topo::CloudProvider::Aws));
  bgp::RoaRegistry roas;
  roas.add(bgp::Roa{*netsim::Ipv4Prefix::parse("203.0.113.0/24"),
                    bgp::Asn{64512}, std::nullopt});
  const auto scenario = make_scenario();  // plain hijack: adversary invalid
  for (std::size_t p = 0; p < model.perspective_count(); ++p) {
    EXPECT_EQ(model.resolve(p, scenario, &roas), bgp::OriginReached::Victim);
  }
}

TEST_F(CloudModelTest, SelectEgressEmptyRibReturnsNull) {
  const CloudProviderModel model(internet_,
                                 default_config(topo::CloudProvider::Aws));
  const bgp::RouteComparator cmp(bgp::TieBreakMode::Hashed, 1);
  EXPECT_EQ(model.select_egress(0, {}, cmp), nullptr);
  EXPECT_THROW((void)model.select_egress(10000, {}, cmp), std::out_of_range);
}

TEST_F(CloudModelTest, SelectEgressPrefersPeerOverProvider) {
  const CloudProviderModel model(internet_,
                                 default_config(topo::CloudProvider::Aws));
  const bgp::RouteComparator cmp(bgp::TieBreakMode::VictimFirst, 1);
  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  std::vector<bgp::RouteCandidate> rib;
  rib.push_back(bgp::RouteCandidate{
      bgp::Announcement{prefix, {bgp::Asn{1}, bgp::Asn{9}},
                        bgp::OriginRole::Adversary},
      bgp::RouteSource::Peer, bgp::NodeId{0}, bgp::Asn{1}, bgp::PopId{0}});
  rib.push_back(bgp::RouteCandidate{
      bgp::Announcement{prefix, {bgp::Asn{2}, bgp::Asn{8}},
                        bgp::OriginRole::Victim},
      bgp::RouteSource::Provider, bgp::NodeId{1}, bgp::Asn{2}, bgp::PopId{1}});
  const auto* chosen = model.select_egress(0, rib, cmp);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->source, bgp::RouteSource::Peer)
      << "local preference must dominate even against the victim role";
}

TEST_F(CloudModelTest, SelectEgressShorterPathWinsWithinClass) {
  const CloudProviderModel model(internet_,
                                 default_config(topo::CloudProvider::Aws));
  const bgp::RouteComparator cmp(bgp::TieBreakMode::AdversaryFirst, 1);
  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  std::vector<bgp::RouteCandidate> rib;
  rib.push_back(bgp::RouteCandidate{
      bgp::Announcement{prefix, {bgp::Asn{1}, bgp::Asn{7}, bgp::Asn{9}},
                        bgp::OriginRole::Adversary},
      bgp::RouteSource::Peer, bgp::NodeId{0}, bgp::Asn{1}, bgp::PopId{0}});
  rib.push_back(bgp::RouteCandidate{
      bgp::Announcement{prefix, {bgp::Asn{2}, bgp::Asn{8}},
                        bgp::OriginRole::Victim},
      bgp::RouteSource::Peer, bgp::NodeId{1}, bgp::Asn{2}, bgp::PopId{1}});
  const auto* chosen = model.select_egress(0, rib, cmp);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->ann.role, bgp::OriginRole::Victim)
      << "path length must beat the route-age preference";
}

}  // namespace
}  // namespace marcopolo::cloud
