#include "dcv/validator.hpp"

#include <gtest/gtest.h>

#include "dcv/webserver.hpp"

namespace marcopolo::dcv {
namespace {

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() {
    dns.add("victim.test", netsim::Ipv4Addr(10, 0, 0, 1));
  }

  netsim::Simulator sim;
  netsim::Network net{sim, 1};
  netsim::DnsTable dns;
};

TEST_F(ValidatorTest, SucceedsOnMatchingToken) {
  SimWebServer server(net, netsim::Ipv4Addr(10, 0, 0, 1), {}, "victim");
  server.serve("/.well-known/acme-challenge/tok", "tok.auth");
  PerspectiveAgent agent(net, dns, netsim::Ipv4Addr(10, 1, 0, 1),
                         {48.86, 2.35}, "eu-west");
  DcvResult result;
  agent.validate({"victim.test", "/.well-known/acme-challenge/tok",
                  "tok.auth"},
                 [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.responded);
  EXPECT_TRUE(result.success);
  ASSERT_EQ(server.requests().size(), 1u);
  EXPECT_EQ(server.requests()[0].source, agent.address());
}

TEST_F(ValidatorTest, FailsOnWrongContent) {
  SimWebServer server(net, netsim::Ipv4Addr(10, 0, 0, 1), {}, "victim");
  server.serve("/.well-known/acme-challenge/tok", "wrong");
  PerspectiveAgent agent(net, dns, netsim::Ipv4Addr(10, 1, 0, 1), {}, "p");
  DcvResult result;
  agent.validate({"victim.test", "/.well-known/acme-challenge/tok", "right"},
                 [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.responded);
  EXPECT_FALSE(result.success);
}

TEST_F(ValidatorTest, FailsOnMissingToken) {
  SimWebServer server(net, netsim::Ipv4Addr(10, 0, 0, 1), {}, "victim");
  PerspectiveAgent agent(net, dns, netsim::Ipv4Addr(10, 1, 0, 1), {}, "p");
  DcvResult result;
  agent.validate({"victim.test", "/.well-known/acme-challenge/none", "x"},
                 [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.responded);  // 404 is still a response
  EXPECT_FALSE(result.success);
}

TEST_F(ValidatorTest, FailsOnUnresolvableDomain) {
  PerspectiveAgent agent(net, dns, netsim::Ipv4Addr(10, 1, 0, 1), {}, "p");
  DcvResult result{true, true};
  agent.validate({"nxdomain.test", "/x", "y"},
                 [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_FALSE(result.responded);
  EXPECT_FALSE(result.success);
}

TEST_F(ValidatorTest, FailsOnNetworkLoss) {
  net.set_loss_model(netsim::LossModel{1.0, 0.0});
  SimWebServer server(net, netsim::Ipv4Addr(10, 0, 0, 1), {}, "victim");
  server.serve("/t", "x");
  PerspectiveAgent agent(net, dns, netsim::Ipv4Addr(10, 1, 0, 1), {}, "p");
  DcvResult result{true, true};
  agent.validate({"victim.test", "/t", "x"},
                 [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_FALSE(result.responded);
  EXPECT_FALSE(result.success);
}

}  // namespace
}  // namespace marcopolo::dcv
