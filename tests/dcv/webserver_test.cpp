#include "dcv/webserver.hpp"

#include <gtest/gtest.h>

namespace marcopolo::dcv {
namespace {

class WebServerTest : public ::testing::Test {
 protected:
  netsim::Simulator sim;
  netsim::Network net{sim, 1};

  netsim::HttpResponse fetch(SimWebServer& server, const std::string& path,
                             netsim::Ipv4Addr from = netsim::Ipv4Addr(9, 9, 9,
                                                                      9)) {
    const auto client = net.attach(from, {}, [](const netsim::HttpRequest&) {
      return netsim::HttpResponse::not_found();
    });
    netsim::HttpRequest req;
    req.path = path;
    req.host = "victim.test";
    netsim::HttpResponse out;
    net.send(client, server.address(), std::move(req),
             [&](std::optional<netsim::HttpResponse> resp) {
               ASSERT_TRUE(resp.has_value());
               out = *resp;
             });
    sim.run();
    return out;
  }
};

TEST_F(WebServerTest, ServesLocalPaths) {
  SimWebServer server(net, netsim::Ipv4Addr(10, 0, 0, 1), {}, "victim");
  server.serve("/token1", "content1");
  EXPECT_EQ(fetch(server, "/token1").body, "content1");
  EXPECT_EQ(fetch(server, "/other").status, 404);
  server.stop_serving("/token1");
  EXPECT_EQ(fetch(server, "/token1").status, 404);
}

TEST_F(WebServerTest, FallsBackToCentralStore) {
  // The paper's §4.2.2 workaround: unknown challenges answered from the
  // central token store so either attack endpoint passes pre-flight.
  auto store = std::make_shared<TokenStore>();
  store->put("/central-token", "central-content");
  SimWebServer server(net, netsim::Ipv4Addr(10, 0, 0, 1), {}, "adversary");
  server.set_fallback(store);
  EXPECT_EQ(fetch(server, "/central-token").body, "central-content");
  store->remove("/central-token");
  EXPECT_EQ(fetch(server, "/central-token").status, 404);
}

TEST_F(WebServerTest, LocalPathShadowsStore) {
  auto store = std::make_shared<TokenStore>();
  store->put("/t", "from-store");
  SimWebServer server(net, netsim::Ipv4Addr(10, 0, 0, 1), {}, "s");
  server.set_fallback(store);
  server.serve("/t", "local");
  EXPECT_EQ(fetch(server, "/t").body, "local");
}

TEST_F(WebServerTest, LogsEveryRequestWithSource) {
  SimWebServer server(net, netsim::Ipv4Addr(10, 0, 0, 1), {}, "victim");
  server.serve("/a", "x");
  fetch(server, "/a", netsim::Ipv4Addr(1, 1, 1, 1));
  fetch(server, "/missing", netsim::Ipv4Addr(2, 2, 2, 2));
  ASSERT_EQ(server.requests().size(), 2u);
  EXPECT_EQ(server.requests()[0].source, netsim::Ipv4Addr(1, 1, 1, 1));
  EXPECT_EQ(server.requests()[0].path, "/a");
  EXPECT_EQ(server.requests()[1].source, netsim::Ipv4Addr(2, 2, 2, 2));
  EXPECT_EQ(server.requests()[1].host, "victim.test");
  server.clear_requests();
  EXPECT_TRUE(server.requests().empty());
}

TEST(TokenStore, PutGetClear) {
  TokenStore store;
  EXPECT_FALSE(store.get("/x").has_value());
  store.put("/x", "v");
  EXPECT_EQ(store.get("/x"), "v");
  EXPECT_EQ(store.size(), 1u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace marcopolo::dcv
