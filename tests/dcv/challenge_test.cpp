#include "dcv/challenge.hpp"

#include <gtest/gtest.h>

#include <set>

namespace marcopolo::dcv {
namespace {

TEST(Challenge, IssueProducesWellFormedChallenge) {
  ChallengeIssuer issuer(1);
  const auto ch = issuer.issue("example.test");
  EXPECT_EQ(ch.domain, "example.test");
  EXPECT_EQ(ch.token.size(), 32u);
  EXPECT_EQ(ch.url_path(),
            std::string(kChallengePathPrefix) + ch.token);
  // Key authorization is token-bound.
  EXPECT_EQ(ch.key_authorization.substr(0, ch.token.size()), ch.token);
  EXPECT_EQ(ch.key_authorization[ch.token.size()], '.');
}

TEST(Challenge, TokensAreUnique) {
  ChallengeIssuer issuer(2);
  std::set<std::string> tokens;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(tokens.insert(issuer.issue("d.test").token).second);
  }
}

TEST(Challenge, DeterministicForSeed) {
  ChallengeIssuer a(7);
  ChallengeIssuer b(7);
  EXPECT_EQ(a.issue("x").token, b.issue("x").token);
}

TEST(Challenge, RandomLabelRespectsLength) {
  ChallengeIssuer issuer(3);
  EXPECT_EQ(issuer.random_label(10).size(), 10u);
  for (const char c : issuer.random_label(64)) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

}  // namespace
}  // namespace marcopolo::dcv
