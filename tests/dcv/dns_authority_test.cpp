#include "dcv/dns_authority.hpp"

#include <gtest/gtest.h>

#include "dcv/validator.hpp"
#include "dcv/webserver.hpp"

namespace marcopolo::dcv {
namespace {

class DnsAuthorityTest : public ::testing::Test {
 protected:
  DnsAuthorityTest()
      : victim_web(net, netsim::Ipv4Addr(10, 0, 0, 1), {}, "victim-web"),
        attacker_web(net, netsim::Ipv4Addr(10, 0, 9, 9), {}, "attacker-web"),
        victim_ns(net, netsim::Ipv4Addr(10, 0, 0, 53), {}, "victim-ns"),
        attacker_ns(net, netsim::Ipv4Addr(10, 0, 9, 53), {}, "attacker-ns"),
        agent(net, static_dns, netsim::Ipv4Addr(10, 1, 0, 1), {}, "p0") {
    victim_web.serve("/.well-known/acme-challenge/t", "t.auth");
    attacker_web.serve("/.well-known/acme-challenge/t", "t.auth");
    victim_ns.add_record("victim.test", victim_web.address());
    attacker_ns.add_record("victim.test", attacker_web.address());
  }

  netsim::Simulator sim;
  netsim::Network net{sim, 1};
  netsim::DnsTable static_dns;
  SimWebServer victim_web;
  SimWebServer attacker_web;
  DnsAuthority victim_ns;
  DnsAuthority attacker_ns;
  PerspectiveAgent agent;
  const ValidationJob job{"victim.test", "/.well-known/acme-challenge/t",
                          "t.auth"};
};

TEST_F(DnsAuthorityTest, AnswersRecordsAndLogsQueries) {
  DcvResult result;
  agent.validate_routed(victim_ns.address(), job,
                        [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
  ASSERT_EQ(victim_ns.queries().size(), 1u);
  EXPECT_EQ(victim_ns.queries()[0].name, "victim.test");
  EXPECT_EQ(victim_ns.queries()[0].source, agent.address());
  // The web fetch landed on the victim's server.
  ASSERT_EQ(victim_web.requests().size(), 1u);
  EXPECT_TRUE(attacker_web.requests().empty());
}

TEST_F(DnsAuthorityTest, HijackedResolutionSteersTheWholeValidation) {
  // The perspective believes it is asking the victim's nameserver, but the
  // (hijacked) query lands at the attacker's authority — equivalently, we
  // point the query at the attacker's address. The fetch then goes to the
  // attacker's web server even though the victim's web prefix is untouched.
  DcvResult result;
  agent.validate_routed(attacker_ns.address(), job,
                        [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success) << "the attacker serves a valid token";
  EXPECT_TRUE(victim_web.requests().empty());
  ASSERT_EQ(attacker_web.requests().size(), 1u);
  EXPECT_EQ(attacker_web.requests()[0].source, agent.address());
}

TEST_F(DnsAuthorityTest, NxdomainFailsValidation) {
  DcvResult result{true, false};
  agent.validate_routed(victim_ns.address(),
                        {"unknown.test", "/x", "y"},
                        [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.responded);  // NXDOMAIN is still an answer
}

TEST_F(DnsAuthorityTest, WildcardZonesResolveSubdomains) {
  victim_ns.add_wildcard("victim.test", victim_web.address());
  victim_web.serve("/c", "body");
  DcvResult result;
  agent.validate_routed(victim_ns.address(),
                        {"rand0m.victim.test", "/c", "body"},
                        [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.success);
}

TEST_F(DnsAuthorityTest, NonDnsMethodRejected) {
  const auto client = net.attach(netsim::Ipv4Addr(10, 2, 0, 1), {},
                                 [](const netsim::HttpRequest&) {
                                   return netsim::HttpResponse::not_found();
                                 });
  int status = 0;
  netsim::HttpRequest req;
  req.method = "GET";
  req.path = "victim.test";
  net.send(client, victim_ns.address(), std::move(req),
           [&](std::optional<netsim::HttpResponse> resp) {
             status = resp ? resp->status : -1;
           });
  sim.run();
  EXPECT_EQ(status, 400);
}

TEST_F(DnsAuthorityTest, UnreachableNameserverFails) {
  DcvResult result{true, true};
  agent.validate_routed(netsim::Ipv4Addr(99, 99, 99, 99), job,
                        [&](DcvResult r) { result = r; });
  sim.run();
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.responded);
}

}  // namespace
}  // namespace marcopolo::dcv
