#include "topo/region_catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace marcopolo::topo {
namespace {

TEST(RegionCatalog, PaperNodeCounts) {
  // Paper §4.3 / Table 4: 27 AWS, 40 GCP, 39 Azure perspectives (106 total)
  // and 32 Vultr victim/adversary sites.
  EXPECT_EQ(aws_regions().size(), 27u);
  EXPECT_EQ(gcp_regions().size(), 40u);
  EXPECT_EQ(azure_regions().size(), 39u);
  EXPECT_EQ(vultr_sites().size(), 32u);
  EXPECT_EQ(aws_regions().size() + gcp_regions().size() +
                azure_regions().size(),
            106u);
}

TEST(RegionCatalog, NamesUniquePerProvider) {
  for (const auto provider :
       {CloudProvider::Aws, CloudProvider::Gcp, CloudProvider::Azure,
        CloudProvider::Vultr}) {
    std::set<std::string_view> names;
    for (const RegionInfo& r : regions_of(provider)) {
      EXPECT_TRUE(names.insert(r.name).second)
          << "duplicate region " << r.name;
      EXPECT_EQ(r.provider, provider);
    }
  }
}

TEST(RegionCatalog, CoordinatesInRange) {
  for (const auto provider :
       {CloudProvider::Aws, CloudProvider::Gcp, CloudProvider::Azure,
        CloudProvider::Vultr}) {
    for (const RegionInfo& r : regions_of(provider)) {
      EXPECT_GE(r.location.lat, -90.0) << r.name;
      EXPECT_LE(r.location.lat, 90.0) << r.name;
      EXPECT_GE(r.location.lon, -180.0) << r.name;
      EXPECT_LE(r.location.lon, 180.0) << r.name;
    }
  }
}

TEST(RegionCatalog, SpotCheckKnownRegions) {
  const auto tokyo = find_region(CloudProvider::Aws, "ap-northeast-1");
  ASSERT_TRUE(tokyo.has_value());
  EXPECT_EQ(tokyo->rir, Rir::Apnic);
  EXPECT_NEAR(tokyo->location.lat, 35.68, 0.5);

  const auto london = find_region(CloudProvider::Azure, "uk-south");
  ASSERT_TRUE(london.has_value());
  EXPECT_EQ(london->rir, Rir::Ripe);

  const auto saopaulo = find_region(CloudProvider::Gcp, "southamerica-east1");
  ASSERT_TRUE(saopaulo.has_value());
  EXPECT_EQ(saopaulo->rir, Rir::Lacnic);

  const auto capetown = find_region(CloudProvider::Aws, "af-south-1");
  ASSERT_TRUE(capetown.has_value());
  EXPECT_EQ(capetown->rir, Rir::Afrinic);

  EXPECT_FALSE(find_region(CloudProvider::Aws, "mars-north-1").has_value());
}

TEST(RegionCatalog, EveryRirRepresentedAmongPerspectives) {
  std::set<Rir> rirs;
  for (const auto provider : kPerspectiveProviders) {
    for (const RegionInfo& r : regions_of(provider)) rirs.insert(r.rir);
  }
  EXPECT_EQ(rirs.size(), kAllRirs.size());
}

TEST(RegionCatalog, VultrSitesSpanTierOneCones) {
  // Paper §4.4.2: sites spread over distinct geographies; at least the five
  // RIRs must all appear in the node pool.
  std::set<Rir> rirs;
  for (const RegionInfo& r : vultr_sites()) rirs.insert(r.rir);
  EXPECT_EQ(rirs.size(), 5u);
}

TEST(RegionCatalog, PeeringMuxesWellFormed) {
  const auto muxes = peering_muxes();
  EXPECT_GE(muxes.size(), 10u);
  std::set<std::string_view> names;
  std::set<Rir> rirs;
  for (const RegionInfo& m : muxes) {
    EXPECT_TRUE(names.insert(m.name).second);
    EXPECT_EQ(m.provider, CloudProvider::Peering);
    rirs.insert(m.rir);
  }
  EXPECT_GE(rirs.size(), 3u) << "the PEERING pool must span several RIRs";
  EXPECT_TRUE(find_region(CloudProvider::Peering, "amsterdam01").has_value());
}

TEST(Rir, ContinentMapping) {
  EXPECT_EQ(rir_of(Continent::NorthAmerica), Rir::Arin);
  EXPECT_EQ(rir_of(Continent::Europe), Rir::Ripe);
  EXPECT_EQ(rir_of(Continent::Asia), Rir::Apnic);
  EXPECT_EQ(rir_of(Continent::Oceania), Rir::Apnic);
  EXPECT_EQ(rir_of(Continent::SouthAmerica), Rir::Lacnic);
  EXPECT_EQ(rir_of(Continent::Africa), Rir::Afrinic);
}

}  // namespace
}  // namespace marcopolo::topo
