#include "topo/vultr.hpp"

#include <gtest/gtest.h>

#include <set>

namespace marcopolo::topo {
namespace {

InternetConfig small_config() {
  InternetConfig cfg;
  cfg.num_tier2 = 30;
  cfg.num_tier3 = 30;
  cfg.num_stub = 30;
  return cfg;
}

TEST(VultrSites, BuildsAllCatalogSites) {
  Internet net(small_config());
  const auto sites = build_vultr_sites(net, 1);
  EXPECT_EQ(sites.size(), vultr_sites().size());
  std::set<std::uint32_t> nodes;
  for (const VultrSite& s : sites) {
    EXPECT_TRUE(nodes.insert(s.node.value).second);
  }
}

TEST(VultrSites, EverySiteHasTierOneAndRegionalTransit) {
  Internet net(small_config());
  const auto sites = build_vultr_sites(net, 1);
  for (const VultrSite& s : sites) {
    const auto providers = net.graph().providers_of(s.node);
    ASSERT_GE(providers.size(), 2u) << s.name;
    bool has_tier1 = false;
    for (const auto& p : providers) {
      if (net.tier(p.id) == AsTier::Tier1) has_tier1 = true;
    }
    EXPECT_TRUE(has_tier1) << s.name;
    EXPECT_TRUE(net.graph().customers_of(s.node).empty()) << s.name;
  }
}

TEST(VultrSites, SitesLandInDifferentTierOneCones) {
  // Paper §4.4.2: e.g. Tokyo under NTT, Bangalore under Tata. The builder
  // must not put all sites under the same tier-1.
  Internet net(small_config());
  const auto sites = build_vultr_sites(net, 1);
  std::set<std::uint32_t> tier1_cones;
  for (const VultrSite& s : sites) {
    for (const auto& p : net.graph().providers_of(s.node)) {
      if (net.tier(p.id) == AsTier::Tier1) tier1_cones.insert(p.id.value);
    }
  }
  EXPECT_GE(tier1_cones.size(), 4u);
}

TEST(VultrSites, DeterministicWiring) {
  Internet a(small_config());
  Internet b(small_config());
  const auto sa = build_vultr_sites(a, 5);
  const auto sb = build_vultr_sites(b, 5);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(a.graph().providers_of(sa[i].node).size(),
              b.graph().providers_of(sb[i].node).size());
  }
}

TEST(VultrSites, MetadataMatchesCatalog) {
  Internet net(small_config());
  const auto sites = build_vultr_sites(net, 1);
  const auto catalog = vultr_sites();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(sites[i].name, catalog[i].name);
    EXPECT_EQ(sites[i].rir, catalog[i].rir);
    EXPECT_EQ(sites[i].location, catalog[i].location);
  }
}

}  // namespace
}  // namespace marcopolo::topo
