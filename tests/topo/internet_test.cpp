#include "topo/internet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace marcopolo::topo {
namespace {

InternetConfig small_config(std::uint64_t seed = 42) {
  InternetConfig cfg;
  cfg.seed = seed;
  cfg.num_tier1 = 8;
  cfg.num_tier2 = 30;
  cfg.num_tier3 = 40;
  cfg.num_stub = 50;
  return cfg;
}

TEST(Internet, GeneratesRequestedPopulation) {
  Internet net(small_config());
  EXPECT_EQ(net.tier1().size(), 8u);
  EXPECT_EQ(net.tier2().size(), 30u);
  EXPECT_EQ(net.tier3().size(), 40u);
  EXPECT_EQ(net.stubs().size(), 50u);
  EXPECT_EQ(net.graph().size(), 128u);
}

TEST(Internet, GraphValidates) {
  Internet net(small_config());
  EXPECT_NO_THROW(net.graph().validate());
}

TEST(Internet, Tier1FormsFullPeeringClique) {
  Internet net(small_config());
  for (const auto a : net.tier1()) {
    EXPECT_EQ(net.graph().peers_of(a).size() +
                  net.graph().providers_of(a).size(),
              net.graph().peers_of(a).size())
        << "tier-1 must have no providers";
    std::size_t tier1_peers = 0;
    for (const auto& nb : net.graph().peers_of(a)) {
      if (net.tier(nb.id) == AsTier::Tier1) ++tier1_peers;
    }
    EXPECT_EQ(tier1_peers, net.tier1().size() - 1);
  }
}

TEST(Internet, EveryTransitAsHasUplinkOrIsTier1) {
  Internet net(small_config());
  for (const auto n : net.tier2()) {
    EXPECT_FALSE(net.graph().providers_of(n).empty())
        << "tier-2 AS" << net.graph().asn_of(n).value << " has no transit";
  }
  for (const auto n : net.tier3()) {
    EXPECT_FALSE(net.graph().providers_of(n).empty());
  }
  for (const auto n : net.stubs()) {
    EXPECT_FALSE(net.graph().providers_of(n).empty());
    EXPECT_TRUE(net.graph().customers_of(n).empty());
  }
}

TEST(Internet, DeterministicForSameSeed) {
  Internet a(small_config(7));
  Internet b(small_config(7));
  ASSERT_EQ(a.graph().size(), b.graph().size());
  ASSERT_EQ(a.graph().edge_count(), b.graph().edge_count());
  for (std::uint32_t i = 0; i < a.graph().size(); ++i) {
    const bgp::NodeId n{i};
    EXPECT_EQ(a.graph().asn_of(n), b.graph().asn_of(n));
    EXPECT_EQ(a.location(n), b.location(n));
    EXPECT_EQ(a.continent(n), b.continent(n));
    ASSERT_EQ(a.graph().neighbors(n).size(), b.graph().neighbors(n).size());
  }
}

TEST(Internet, DifferentSeedsProduceDifferentWiring) {
  Internet a(small_config(1));
  Internet b(small_config(2));
  // Same sizes, different edges (overwhelmingly likely).
  EXPECT_EQ(a.graph().size(), b.graph().size());
  bool differs = a.graph().edge_count() != b.graph().edge_count();
  for (std::uint32_t i = 0; !differs && i < a.graph().size(); ++i) {
    const bgp::NodeId n{i};
    if (a.graph().neighbors(n).size() != b.graph().neighbors(n).size()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Internet, NearestTier2SortedByDistance) {
  Internet net(small_config());
  const netsim::GeoPoint here{48.86, 2.35};  // Paris
  const auto nearest = net.nearest_tier2(here, 10);
  ASSERT_EQ(nearest.size(), 10u);
  for (std::size_t i = 1; i < nearest.size(); ++i) {
    EXPECT_LE(netsim::great_circle_km(here, net.location(nearest[i - 1])),
              netsim::great_circle_km(here, net.location(nearest[i])) + 1e-9);
  }
}

TEST(Internet, AddLeafAsExtendsGraph) {
  Internet net(small_config());
  const auto before = net.graph().size();
  const auto leaf = net.add_leaf_as(bgp::Asn{64512}, {1.35, 103.82},
                                    Continent::Asia);
  EXPECT_EQ(net.graph().size(), before + 1);
  EXPECT_EQ(net.tier(leaf), AsTier::Stub);
  EXPECT_EQ(net.rir(leaf), Rir::Apnic);
}

TEST(Internet, Tier1ForSpreadsAcrossClique) {
  Internet net(small_config());
  std::set<std::uint32_t> chosen;
  for (std::uint64_t salt = 0; salt < 64; ++salt) {
    chosen.insert(net.tier1_for(salt).value);
  }
  // 64 salts over 8 tier-1s: expect near-full coverage.
  EXPECT_GE(chosen.size(), 6u);
}

TEST(Internet, DeployRovMarksRequestedFraction) {
  Internet net(small_config());
  net.deploy_rov(0.5, 99);
  std::size_t enforcing = 0;
  std::size_t transit = 0;
  for (std::uint32_t i = 0; i < net.graph().size(); ++i) {
    const bgp::NodeId n{i};
    if (net.tier(n) != AsTier::Stub) {
      ++transit;
      if (net.graph().rov_enforcing(n)) ++enforcing;
    } else {
      EXPECT_FALSE(net.graph().rov_enforcing(n));
    }
  }
  EXPECT_NEAR(static_cast<double>(enforcing) / static_cast<double>(transit),
              0.5, 0.15);
}

TEST(Internet, NearestTier2MatchesBruteForce) {
  // The spatial bucket index must select exactly what the old full sort
  // did: the k closest tier-2s, ties broken by insertion order.
  Internet net(small_config());
  const std::vector<netsim::GeoPoint> queries = {
      {48.86, 2.35},    // Paris
      {1.35, 103.82},   // Singapore
      {-23.55, -46.63}, // São Paulo
      {40.71, -74.0},   // New York
      {-36.85, 174.76}, // Auckland (sparse bucket neighborhood)
      {78.22, 15.64},   // Svalbard (far from every tier-2)
  };
  for (const auto& q : queries) {
    for (const std::size_t k :
         {std::size_t{1}, std::size_t{4}, std::size_t{10},
          net.tier2().size(), net.tier2().size() + 5}) {
      const auto got = net.nearest_tier2(q, k);
      auto expected = net.tier2();
      std::stable_sort(expected.begin(), expected.end(),
                       [&](bgp::NodeId a, bgp::NodeId b) {
                         return netsim::great_circle_km(q, net.location(a)) <
                                netsim::great_circle_km(q, net.location(b));
                       });
      expected.resize(std::min(k, expected.size()));
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].value, expected[i].value)
            << "rank " << i << " for k=" << k;
      }
    }
  }
}

TEST(Internet, RedrawPreservesConfiguredMultihoming) {
  // Small provider pools maximize draw collisions; the generator must
  // redraw on a duplicate, not silently drop the uplink (which left
  // ~1/pool of the layer single-homed).
  InternetConfig cfg;
  cfg.seed = 7;
  cfg.num_tier1 = 5;
  cfg.num_tier2 = 8;
  cfg.num_tier3 = 2;
  cfg.num_stub = 400;
  Internet net(cfg);

  // Every tier-3 is configured for 2 tier-2 uplinks and has 8 candidates.
  for (const auto n : net.tier3()) {
    std::size_t tier2_providers = 0;
    for (const auto& nb : net.graph().providers_of(n)) {
      if (net.tier(nb.id) == AsTier::Tier2) ++tier2_providers;
    }
    EXPECT_GE(tier2_providers, 2u)
        << "tier-3 AS" << net.graph().asn_of(n).value << " lost an uplink";
  }

  // Stubs draw 1 or 2 uplinks (mean 1.5). Dropped collisions drag the
  // mean toward ~1.4 with pools this small.
  std::size_t links = 0;
  for (const auto n : net.stubs()) {
    links += net.graph().providers_of(n).size();
  }
  const double mean =
      static_cast<double>(links) / static_cast<double>(net.stubs().size());
  EXPECT_GE(mean, 1.45);
  EXPECT_LE(mean, 1.58);
}

TEST(Internet, ScaledConfigKeepsTierProportions) {
  for (const int total : {600, 5000, 50000}) {
    const InternetConfig cfg = scaled_internet_config(total);
    const int sum =
        cfg.num_tier1 + cfg.num_tier2 + cfg.num_tier3 + cfg.num_stub;
    EXPECT_EQ(sum, total);
    EXPECT_GE(cfg.num_tier1, 12);
    EXPECT_LE(cfg.num_tier1, 16);
    EXPECT_GE(cfg.num_stub, total * 3 / 5) << "stubs must dominate";
  }
  EXPECT_THROW((void)scaled_internet_config(32), std::invalid_argument);
}

TEST(Internet, RejectsDegenerateConfig) {
  InternetConfig cfg;
  cfg.num_tier1 = 1;
  EXPECT_THROW(Internet net(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace marcopolo::topo
