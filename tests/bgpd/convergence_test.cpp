// Cross-validation of the event-driven BGP layer against the analytic
// Gao-Rexford engine, on the full synthetic Internet.
#include <gtest/gtest.h>

#include "bgp/propagation.hpp"
#include "bgpd/network.hpp"
#include "topo/internet.hpp"
#include "topo/vultr.hpp"

namespace marcopolo::bgpd {
namespace {

const netsim::Ipv4Prefix kPrefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");

struct World {
  topo::Internet internet;
  std::vector<topo::VultrSite> sites;
  std::vector<netsim::GeoPoint> locations;

  World() : internet(config()) {
    sites = topo::build_vultr_sites(internet, 0xB612);
    for (std::uint32_t i = 0; i < internet.graph().size(); ++i) {
      locations.push_back(internet.location(bgp::NodeId{i}));
    }
  }

  static topo::InternetConfig config() {
    topo::InternetConfig cfg;
    cfg.num_tier1 = 8;
    cfg.num_tier2 = 40;
    cfg.num_tier3 = 60;
    cfg.num_stub = 80;
    return cfg;
  }
};

World& world() {
  static World instance;
  return instance;
}

TEST(BgpdConvergence, SingleOriginMatchesAnalyticEngine) {
  // With one origin there are no route-age ties that matter for the final
  // role, and the converged event-driven state must match the fixed point
  // node-for-node (reachability and path length).
  auto& w = world();
  const auto victim = w.sites[4].node;

  const bgp::SeededRoute seed{victim,
                              bgp::Announcement{kPrefix, {},
                                                bgp::OriginRole::Victim}};
  const auto analytic =
      bgp::propagate(w.internet.graph(), {seed}, bgp::PropagationConfig{});

  netsim::Simulator sim;
  BgpNetwork net(w.internet.graph(), w.locations, sim);
  net.announce(victim, bgp::Announcement{kPrefix, {},
                                         bgp::OriginRole::Victim});
  net.run_to_convergence();

  for (std::uint32_t i = 0; i < w.internet.graph().size(); ++i) {
    const bgp::NodeId n{i};
    const auto event_best = net.speaker(n).best(kPrefix);
    ASSERT_EQ(event_best.has_value(), analytic.reachable(n))
        << "reachability mismatch at node " << i;
    if (event_best) {
      EXPECT_EQ(event_best->route.path_length(),
                analytic.best[i]->ann.path_length())
          << "path length mismatch at node " << i << ": event "
          << event_best->route.path_string() << " vs analytic "
          << analytic.best[i]->ann.path_string();
      EXPECT_EQ(event_best->source, analytic.best[i]->source);
    }
  }
}

TEST(BgpdConvergence, TwoOriginOutcomesBracketedByTieBreakModes) {
  // For simultaneous announcements the event-driven outcome at each node
  // must agree with at least one of the analytic extremes: nodes where
  // VictimFirst and AdversaryFirst agree are tie-free and must match
  // exactly; tie-broken nodes may land either way.
  auto& w = world();
  const auto victim = w.sites[2].node;
  const auto adversary = w.sites[19].node;

  const bgp::SeededRoute vseed{victim,
                               bgp::Announcement{kPrefix, {},
                                                 bgp::OriginRole::Victim}};
  const bgp::SeededRoute aseed{
      adversary,
      bgp::Announcement{kPrefix, {}, bgp::OriginRole::Adversary}};

  bgp::PropagationConfig vf;
  vf.tie_break = bgp::TieBreakMode::VictimFirst;
  const auto r_vf = bgp::propagate(w.internet.graph(), {vseed, aseed}, vf);
  bgp::PropagationConfig af;
  af.tie_break = bgp::TieBreakMode::AdversaryFirst;
  const auto r_af = bgp::propagate(w.internet.graph(), {vseed, aseed}, af);

  netsim::Simulator sim;
  BgpNetwork net(w.internet.graph(), w.locations, sim);
  net.announce(victim, vseed.announcement);
  net.announce(adversary, aseed.announcement);
  net.run_to_convergence();

  std::size_t tie_free = 0;
  std::size_t tie_broken = 0;
  for (std::uint32_t i = 0; i < w.internet.graph().size(); ++i) {
    const bgp::NodeId n{i};
    const auto event_role = net.role_reached(n, kPrefix);
    const auto role_vf = r_vf.role_reached(n);
    const auto role_af = r_af.role_reached(n);
    if (role_vf == role_af) {
      ++tie_free;
      EXPECT_EQ(event_role, role_vf) << "tie-free node " << i;
    } else {
      ++tie_broken;
      ASSERT_TRUE(event_role.has_value());
      EXPECT_TRUE(event_role == role_vf || event_role == role_af);
    }
  }
  // Both populations exist in a realistic hijack.
  EXPECT_GT(tie_free, 0u);
  EXPECT_GT(tie_broken, 0u);
}

TEST(BgpdConvergence, ConvergesWellInsideFiveMinutes) {
  // Paper §4.2.1: a 5-minute wait "produced stable BGP routes". Verify the
  // event-driven model settles far inside that budget.
  auto& w = world();
  netsim::Simulator sim;
  BgpNetwork net(w.internet.graph(), w.locations, sim);
  const auto start = sim.now();
  net.announce(w.sites[0].node,
               bgp::Announcement{kPrefix, {}, bgp::OriginRole::Victim});
  net.announce(w.sites[13].node,
               bgp::Announcement{kPrefix, {}, bgp::OriginRole::Adversary});
  const auto end = net.run_to_convergence();
  EXPECT_LT(end - start, netsim::minutes(5));
  EXPECT_GT(end - start, netsim::milliseconds(100));
}

TEST(BgpdConvergence, SequentialAnnouncementFavorsTheFirstOrigin) {
  // §4.4.4: announcing the victim first and letting it settle biases every
  // route-age tie toward the victim — the adversary then captures no more
  // nodes than under a simultaneous start.
  auto& w = world();
  const auto victim = w.sites[7].node;
  const auto adversary = w.sites[28].node;

  const auto count_captured = [&](BgpNetwork& net) {
    std::size_t captured = 0;
    for (std::uint32_t i = 0; i < w.internet.graph().size(); ++i) {
      if (net.role_reached(bgp::NodeId{i}, kPrefix) ==
          bgp::OriginRole::Adversary) {
        ++captured;
      }
    }
    return captured;
  };

  netsim::Simulator sim1;
  BgpNetwork simultaneous(w.internet.graph(), w.locations, sim1);
  simultaneous.announce(victim, bgp::Announcement{kPrefix, {},
                                                  bgp::OriginRole::Victim});
  simultaneous.announce(
      adversary, bgp::Announcement{kPrefix, {}, bgp::OriginRole::Adversary});
  simultaneous.run_to_convergence();

  netsim::Simulator sim2;
  BgpNetwork sequential(w.internet.graph(), w.locations, sim2);
  sequential.announce(victim, bgp::Announcement{kPrefix, {},
                                                bgp::OriginRole::Victim});
  sim2.run_until(sim2.now() + netsim::minutes(5));
  sequential.announce(
      adversary, bgp::Announcement{kPrefix, {}, bgp::OriginRole::Adversary});
  sequential.run_to_convergence();

  EXPECT_LE(count_captured(sequential), count_captured(simultaneous));
}

}  // namespace
}  // namespace marcopolo::bgpd
