#include "bgpd/speaker.hpp"

#include <gtest/gtest.h>

#include "bgpd/network.hpp"

namespace marcopolo::bgpd {
namespace {

const netsim::Ipv4Prefix kPrefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");

bgp::Announcement origin_route(bgp::OriginRole role = bgp::OriginRole::Victim) {
  return bgp::Announcement{kPrefix, {}, role};
}

/// Minimal harness: a three-AS chain t1 <- t2 <- stub with zero-jitter
/// sessions.
class ChainFixture : public ::testing::Test {
 protected:
  ChainFixture() {
    t1 = graph.add_as(bgp::Asn{1});
    t2 = graph.add_as(bgp::Asn{2});
    stub = graph.add_as(bgp::Asn{3});
    graph.add_provider_customer(t1, t2);
    graph.add_provider_customer(t2, stub);
    net = std::make_unique<BgpNetwork>(
        graph, std::vector<netsim::GeoPoint>(3), sim, config());
  }

  static BgpNetworkConfig config() {
    BgpNetworkConfig cfg;
    cfg.jitter = netsim::milliseconds(1);
    return cfg;
  }

  bgp::AsGraph graph;
  bgp::NodeId t1, t2, stub;
  netsim::Simulator sim;
  std::unique_ptr<BgpNetwork> net;
};

TEST_F(ChainFixture, RouteClimbsAndPathsGrow) {
  net->announce(stub, origin_route());
  net->run_to_convergence();

  const auto at_t2 = net->speaker(t2).best(kPrefix);
  ASSERT_TRUE(at_t2.has_value());
  EXPECT_EQ(at_t2->route.path_string(), "3");
  EXPECT_EQ(at_t2->source, bgp::RouteSource::Customer);

  const auto at_t1 = net->speaker(t1).best(kPrefix);
  ASSERT_TRUE(at_t1.has_value());
  EXPECT_EQ(at_t1->route.path_string(), "2 3");
}

TEST_F(ChainFixture, WithdrawPropagates) {
  net->announce(stub, origin_route());
  net->run_to_convergence();
  ASSERT_TRUE(net->speaker(t1).best(kPrefix).has_value());

  net->withdraw(stub, kPrefix);
  net->run_to_convergence();
  EXPECT_FALSE(net->speaker(t1).best(kPrefix).has_value());
  EXPECT_FALSE(net->speaker(t2).best(kPrefix).has_value());
}

TEST_F(ChainFixture, ConvergenceTakesPropagationTime) {
  const auto start = sim.now();
  net->announce(stub, origin_route());
  const auto end = net->run_to_convergence();
  EXPECT_GT(end - start, netsim::Duration::zero());
  // Two hops of ~2ms processing + jitter: well under a second here.
  EXPECT_LT(end - start, netsim::seconds(1));
}

TEST_F(ChainFixture, UpdateCountsAreTracked) {
  net->announce(stub, origin_route());
  net->run_to_convergence();
  EXPECT_GE(net->total_updates_sent(), 2u);  // stub->t2, t2->t1
  EXPECT_GE(net->speaker(t2).updates_received(), 1u);
}

TEST(BgpdValleyFree, PeerRoutesDoNotTransitPeers) {
  bgp::AsGraph graph;
  const auto p1 = graph.add_as(bgp::Asn{1});
  const auto p2 = graph.add_as(bgp::Asn{2});
  const auto p3 = graph.add_as(bgp::Asn{3});
  const auto stub = graph.add_as(bgp::Asn{4});
  graph.add_peering(p1, p2);
  graph.add_peering(p2, p3);
  graph.add_provider_customer(p1, stub);

  netsim::Simulator sim;
  BgpNetwork net(graph, std::vector<netsim::GeoPoint>(4), sim);
  net.announce(stub, bgp::Announcement{*netsim::Ipv4Prefix::parse(
                                           "203.0.113.0/24"),
                                       {},
                                       bgp::OriginRole::Victim});
  net.run_to_convergence();
  EXPECT_TRUE(net.speaker(p2)
                  .best(*netsim::Ipv4Prefix::parse("203.0.113.0/24"))
                  .has_value());
  EXPECT_FALSE(net.speaker(p3)
                   .best(*netsim::Ipv4Prefix::parse("203.0.113.0/24"))
                   .has_value());
}

TEST(BgpdRouteAge, EarlierAnnouncementWinsTies) {
  // obs has two customers announcing the same prefix: identical localpref
  // and path length, so arrival order decides.
  bgp::AsGraph graph;
  const auto obs = graph.add_as(bgp::Asn{1});
  const auto va = graph.add_as(bgp::Asn{10});
  const auto vb = graph.add_as(bgp::Asn{20});
  graph.add_provider_customer(obs, va);
  graph.add_provider_customer(obs, vb);

  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");

  // Victim first.
  {
    netsim::Simulator sim;
    BgpNetwork net(graph, std::vector<netsim::GeoPoint>(3), sim);
    net.announce(va, bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
    sim.run_until(sim.now() + netsim::seconds(30));
    net.announce(vb,
                 bgp::Announcement{prefix, {}, bgp::OriginRole::Adversary});
    net.run_to_convergence();
    EXPECT_EQ(net.role_reached(obs, prefix), bgp::OriginRole::Victim);
  }
  // Adversary first.
  {
    netsim::Simulator sim;
    BgpNetwork net(graph, std::vector<netsim::GeoPoint>(3), sim);
    net.announce(vb,
                 bgp::Announcement{prefix, {}, bgp::OriginRole::Adversary});
    sim.run_until(sim.now() + netsim::seconds(30));
    net.announce(va, bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
    net.run_to_convergence();
    EXPECT_EQ(net.role_reached(obs, prefix), bgp::OriginRole::Adversary);
  }
}

TEST(BgpdRouteAge, BetterPathDisplacesOlderRoute) {
  // Age only breaks full ties: a later-but-shorter route must win.
  bgp::AsGraph graph;
  const auto obs = graph.add_as(bgp::Asn{1});
  const auto mid = graph.add_as(bgp::Asn{2});
  const auto far_origin = graph.add_as(bgp::Asn{10});
  const auto near_origin = graph.add_as(bgp::Asn{20});
  graph.add_provider_customer(obs, mid);
  graph.add_provider_customer(mid, far_origin);
  graph.add_provider_customer(obs, near_origin);

  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  netsim::Simulator sim;
  BgpNetwork net(graph, std::vector<netsim::GeoPoint>(4), sim);
  net.announce(far_origin,
               bgp::Announcement{prefix, {}, bgp::OriginRole::Adversary});
  net.run_to_convergence();
  ASSERT_EQ(net.role_reached(obs, prefix), bgp::OriginRole::Adversary);

  net.announce(near_origin,
               bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
  net.run_to_convergence();
  EXPECT_EQ(net.role_reached(obs, prefix), bgp::OriginRole::Victim)
      << "shorter path must displace the older route";
}

TEST(BgpdMrai, BatchingSuppressesIntermediateChurn) {
  // A prefix that flaps rapidly at the origin should reach a distant
  // speaker as far fewer updates than the origin generated, thanks to
  // MRAI batching at each hop.
  bgp::AsGraph graph;
  const auto top = graph.add_as(bgp::Asn{1});
  const auto mid = graph.add_as(bgp::Asn{2});
  const auto origin = graph.add_as(bgp::Asn{3});
  graph.add_provider_customer(top, mid);
  graph.add_provider_customer(mid, origin);

  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  netsim::Simulator sim;
  BgpNetworkConfig cfg;
  cfg.speaker.mrai = netsim::seconds(30);
  BgpNetwork net(graph, std::vector<netsim::GeoPoint>(3), sim, cfg);

  // Flap 10 times within one MRAI window.
  for (int i = 0; i < 10; ++i) {
    net.announce(origin,
                 bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
    sim.run_until(sim.now() + netsim::milliseconds(200));
    net.withdraw(origin, prefix);
    sim.run_until(sim.now() + netsim::milliseconds(200));
  }
  net.announce(origin, bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
  net.run_to_convergence();

  EXPECT_TRUE(net.speaker(top).best(prefix).has_value());
  // origin sent up to 21 updates; mid batched them heavily.
  EXPECT_LT(net.speaker(mid).updates_sent(),
            net.speaker(origin).updates_sent());
}

TEST(BgpdRfd, FlappingPrefixGetsSuppressed) {
  bgp::AsGraph graph;
  const auto obs = graph.add_as(bgp::Asn{1});
  const auto origin = graph.add_as(bgp::Asn{2});
  graph.add_provider_customer(obs, origin);

  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  netsim::Simulator sim;
  BgpNetworkConfig cfg;
  cfg.speaker.mrai = netsim::milliseconds(1);  // let every flap through
  cfg.speaker.rfd_suppress_threshold = 3.0;
  cfg.speaker.rfd_reuse = 1.0;
  cfg.speaker.rfd_half_life = netsim::minutes(5);
  BgpNetwork net(graph, std::vector<netsim::GeoPoint>(2), sim, cfg);

  for (int i = 0; i < 5; ++i) {
    net.announce(origin,
                 bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
    sim.run_until(sim.now() + netsim::seconds(1));
    net.withdraw(origin, prefix);
    sim.run_until(sim.now() + netsim::seconds(1));
  }
  net.announce(origin, bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
  net.run_to_convergence();

  EXPECT_TRUE(net.speaker(obs).suppressed(prefix))
      << "penalty " << net.speaker(obs).flap_penalty(prefix);
  EXPECT_FALSE(net.speaker(obs).best(prefix).has_value())
      << "suppressed prefixes must not be used";

  // After the penalty decays, re-evaluation lifts the suppression. This is
  // exactly why MarcoPolo limits announcements to one per five minutes
  // (§4.2.1): staying under RFD thresholds.
  sim.run_until(sim.now() + netsim::hours(2));
  net.speaker(obs).reevaluate(prefix);
  net.run_to_convergence();
  EXPECT_FALSE(net.speaker(obs).suppressed(prefix));
  EXPECT_TRUE(net.speaker(obs).best(prefix).has_value());
}

TEST(BgpdRfd, PacedAnnouncementsAvoidSuppression) {
  // MarcoPolo's cadence: one announcement change per 5 minutes. With a
  // 15-minute half-life the penalty never reaches the threshold.
  bgp::AsGraph graph;
  const auto obs = graph.add_as(bgp::Asn{1});
  const auto origin = graph.add_as(bgp::Asn{2});
  graph.add_provider_customer(obs, origin);

  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  netsim::Simulator sim;
  BgpNetworkConfig cfg;
  cfg.speaker.mrai = netsim::milliseconds(1);
  cfg.speaker.rfd_suppress_threshold = 3.0;
  BgpNetwork net(graph, std::vector<netsim::GeoPoint>(2), sim, cfg);

  for (int i = 0; i < 12; ++i) {
    net.announce(origin,
                 bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
    sim.run_until(sim.now() + netsim::minutes(5));
    net.withdraw(origin, prefix);
    sim.run_until(sim.now() + netsim::minutes(5));
  }
  net.announce(origin, bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
  net.run_to_convergence();
  EXPECT_FALSE(net.speaker(obs).suppressed(prefix));
  EXPECT_TRUE(net.speaker(obs).best(prefix).has_value());
}

TEST(BgpdExportPolicy, PeerLosesRouteWhenBestShiftsToProvider) {
  // mid has a customer route (exportable to its peer) and a provider
  // route. When the customer withdraws, mid's best becomes the provider
  // route — NOT exportable to peers — so the peer must receive a WITHDRAW
  // even though mid still has a route.
  bgp::AsGraph graph;
  const auto provider = graph.add_as(bgp::Asn{1});
  const auto mid = graph.add_as(bgp::Asn{2});
  const auto peer = graph.add_as(bgp::Asn{3});
  const auto customer = graph.add_as(bgp::Asn{4});
  const auto far_origin = graph.add_as(bgp::Asn{5});
  graph.add_provider_customer(provider, mid);
  graph.add_provider_customer(mid, customer);
  graph.add_peering(mid, peer);
  graph.add_provider_customer(provider, far_origin);

  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  netsim::Simulator sim;
  BgpNetwork net(graph, std::vector<netsim::GeoPoint>(5), sim);

  // Both origins announce; mid prefers its customer.
  net.announce(customer,
               bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
  net.announce(far_origin,
               bgp::Announcement{prefix, {}, bgp::OriginRole::Adversary});
  net.run_to_convergence();
  ASSERT_TRUE(net.speaker(peer).best(prefix).has_value());
  EXPECT_EQ(net.speaker(peer).best(prefix)->route.role,
            bgp::OriginRole::Victim);

  net.withdraw(customer, prefix);
  net.run_to_convergence();
  // mid now routes via its provider...
  ASSERT_TRUE(net.speaker(mid).best(prefix).has_value());
  EXPECT_EQ(net.speaker(mid).best(prefix)->source,
            bgp::RouteSource::Provider);
  // ...but the peer must no longer hear anything from mid (valley-free).
  EXPECT_FALSE(net.speaker(peer).best(prefix).has_value());
}

TEST(BgpdExportPolicy, SplitHorizonNeverEchoesToSender) {
  bgp::AsGraph graph;
  const auto provider = graph.add_as(bgp::Asn{1});
  const auto customer = graph.add_as(bgp::Asn{2});
  graph.add_provider_customer(provider, customer);

  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  netsim::Simulator sim;
  BgpNetwork net(graph, std::vector<netsim::GeoPoint>(2), sim);
  net.announce(customer,
               bgp::Announcement{prefix, {}, bgp::OriginRole::Victim});
  net.run_to_convergence();
  // The provider's best is the customer route; exporting it back to the
  // customer is suppressed, so the customer received zero updates (its own
  // Self route aside, the provider had nothing else to offer).
  EXPECT_EQ(net.speaker(customer).updates_received(), 0u);
}

TEST(BgpdRov, EnforcingSpeakerDropsInvalid) {
  bgp::AsGraph graph;
  const auto enforcing = graph.add_as(bgp::Asn{1});
  const auto hijacker = graph.add_as(bgp::Asn{666});
  graph.add_provider_customer(enforcing, hijacker);
  graph.set_rov_enforcing(enforcing, true);

  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  bgp::RoaRegistry roas;
  roas.add(bgp::Roa{prefix, bgp::Asn{10}, std::nullopt});

  netsim::Simulator sim;
  BgpNetworkConfig cfg;
  cfg.speaker.roas = &roas;
  BgpNetwork net(graph, std::vector<netsim::GeoPoint>(2), sim, cfg);
  net.announce(hijacker,
               bgp::Announcement{prefix, {}, bgp::OriginRole::Adversary});
  net.run_to_convergence();
  EXPECT_FALSE(net.speaker(enforcing).best(prefix).has_value());
}

}  // namespace
}  // namespace marcopolo::bgpd
