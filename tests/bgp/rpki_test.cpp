#include "bgp/rpki.hpp"

#include <gtest/gtest.h>

namespace marcopolo::bgp {
namespace {

netsim::Ipv4Prefix pfx(const char* text) {
  return *netsim::Ipv4Prefix::parse(text);
}

TEST(Rpki, NotFoundWithoutCoveringRoa) {
  RoaRegistry reg;
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{64512}),
            RpkiValidity::NotFound);
  reg.add(Roa{pfx("10.0.0.0/8"), Asn{1}, std::nullopt});
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{64512}),
            RpkiValidity::NotFound);
}

TEST(Rpki, ValidExactMatch) {
  RoaRegistry reg;
  reg.add(Roa{pfx("203.0.113.0/24"), Asn{64512}, std::nullopt});
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{64512}),
            RpkiValidity::Valid);
}

TEST(Rpki, InvalidWrongOrigin) {
  RoaRegistry reg;
  reg.add(Roa{pfx("203.0.113.0/24"), Asn{64512}, std::nullopt});
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{666}),
            RpkiValidity::Invalid);
}

TEST(Rpki, InvalidMoreSpecificWithoutMaxLen) {
  // RFC 9319's point: without MAX_LEN, a /25 under a /24 ROA is Invalid —
  // which is exactly what blocks sub-prefix hijacks at ROV ASes.
  RoaRegistry reg;
  reg.add(Roa{pfx("203.0.113.0/24"), Asn{64512}, std::nullopt});
  EXPECT_EQ(reg.validate(pfx("203.0.113.128/25"), Asn{64512}),
            RpkiValidity::Invalid);
}

TEST(Rpki, MaxLenPermitsMoreSpecifics) {
  RoaRegistry reg;
  reg.add(Roa{pfx("203.0.113.0/24"), Asn{64512}, std::uint8_t{26}});
  EXPECT_EQ(reg.validate(pfx("203.0.113.128/25"), Asn{64512}),
            RpkiValidity::Valid);
  EXPECT_EQ(reg.validate(pfx("203.0.113.192/26"), Asn{64512}),
            RpkiValidity::Valid);
  EXPECT_EQ(reg.validate(pfx("203.0.113.192/27"), Asn{64512}),
            RpkiValidity::Invalid);
}

TEST(Rpki, AnyMatchingRoaValidates) {
  // Multiple ROAs may cover a prefix; one match suffices.
  RoaRegistry reg;
  reg.add(Roa{pfx("203.0.113.0/24"), Asn{1}, std::nullopt});
  reg.add(Roa{pfx("203.0.113.0/24"), Asn{2}, std::nullopt});
  reg.add(Roa{pfx("203.0.0.0/16"), Asn{3}, std::uint8_t{24}});
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{2}), RpkiValidity::Valid);
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{3}), RpkiValidity::Valid);
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{9}),
            RpkiValidity::Invalid);
}

TEST(Rpki, ForgedOriginIsValidByConstruction) {
  // The core RPKI limitation the paper leans on: ROV cannot catch a hijack
  // whose path *claims* the authorized origin.
  RoaRegistry reg;
  reg.add(Roa{pfx("203.0.113.0/24"), Asn{64512}, std::nullopt});
  // Adversary AS 666 announces path {666, 64512}: origin = 64512 -> Valid.
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{64512}),
            RpkiValidity::Valid);
}

TEST(Rpki, RemoveRestoresNotFound) {
  RoaRegistry reg;
  reg.add(Roa{pfx("203.0.113.0/24"), Asn{64512}, std::nullopt});
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.remove(pfx("203.0.113.0/24"), Asn{64512}));
  EXPECT_FALSE(reg.remove(pfx("203.0.113.0/24"), Asn{64512}));
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{64512}),
            RpkiValidity::NotFound);
}

TEST(Rpki, LessSpecificAnnouncementNotCoveredBySpecificRoa) {
  RoaRegistry reg;
  reg.add(Roa{pfx("203.0.113.0/25"), Asn{1}, std::nullopt});
  // A /24 announcement is less specific than the ROA prefix: not covered.
  EXPECT_EQ(reg.validate(pfx("203.0.113.0/24"), Asn{1}),
            RpkiValidity::NotFound);
}

}  // namespace
}  // namespace marcopolo::bgp
