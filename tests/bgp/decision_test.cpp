#include "bgp/decision.hpp"

#include <gtest/gtest.h>

namespace marcopolo::bgp {
namespace {

RouteCandidate candidate(RouteSource src, std::size_t path_len,
                         OriginRole role, std::uint32_t from_asn = 10,
                         std::uint16_t pop = 0) {
  RouteCandidate c;
  c.ann.prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  for (std::size_t i = 0; i < path_len; ++i) {
    c.ann.as_path.push_back(Asn{static_cast<std::uint32_t>(100 + i)});
  }
  c.ann.role = role;
  c.source = src;
  c.from_asn = Asn{from_asn};
  c.ingress_pop = PopId{pop};
  return c;
}

const NodeId kNode{3};

TEST(Decision, LocalPreferenceDominates) {
  const RouteComparator cmp(TieBreakMode::VictimFirst, 1);
  const auto customer = candidate(RouteSource::Customer, 5,
                                  OriginRole::Adversary);
  const auto peer = candidate(RouteSource::Peer, 1, OriginRole::Victim);
  const auto provider = candidate(RouteSource::Provider, 1,
                                  OriginRole::Victim);
  EXPECT_TRUE(cmp.prefer(customer, peer, kNode));
  EXPECT_TRUE(cmp.prefer(peer, provider, kNode));
  EXPECT_TRUE(cmp.prefer(customer, provider, kNode));
}

TEST(Decision, SelfBeatsEverything) {
  const RouteComparator cmp(TieBreakMode::AdversaryFirst, 1);
  const auto self = candidate(RouteSource::Self, 0, OriginRole::Victim);
  const auto customer = candidate(RouteSource::Customer, 1,
                                  OriginRole::Adversary);
  EXPECT_TRUE(cmp.prefer(self, customer, kNode));
  EXPECT_FALSE(cmp.prefer(customer, self, kNode));
}

TEST(Decision, PathLengthBreaksEqualPreference) {
  const RouteComparator cmp(TieBreakMode::AdversaryFirst, 1);
  const auto short_victim = candidate(RouteSource::Peer, 2,
                                      OriginRole::Victim);
  const auto long_adversary = candidate(RouteSource::Peer, 3,
                                        OriginRole::Adversary);
  EXPECT_TRUE(cmp.prefer(short_victim, long_adversary, kNode))
      << "path length must beat the route-age preference";
}

TEST(Decision, RouteAgeBreaksFullAttributeTies) {
  const auto victim = candidate(RouteSource::Peer, 2, OriginRole::Victim);
  const auto adversary = candidate(RouteSource::Peer, 2,
                                   OriginRole::Adversary);
  const RouteComparator vf(TieBreakMode::VictimFirst, 1);
  EXPECT_TRUE(vf.prefer(victim, adversary, kNode));
  const RouteComparator af(TieBreakMode::AdversaryFirst, 1);
  EXPECT_TRUE(af.prefer(adversary, victim, kNode));
}

TEST(Decision, HashedCoinIsDeterministicPerSeed) {
  const RouteComparator a(TieBreakMode::Hashed, 42);
  const RouteComparator b(TieBreakMode::Hashed, 42);
  for (std::uint32_t n = 0; n < 50; ++n) {
    EXPECT_EQ(a.preferred_role(NodeId{n}), b.preferred_role(NodeId{n}));
  }
}

TEST(Decision, HashedCoinVariesAcrossNodes) {
  const RouteComparator cmp(TieBreakMode::Hashed, 42);
  std::size_t victims = 0;
  for (std::uint32_t n = 0; n < 200; ++n) {
    if (cmp.preferred_role(NodeId{n}) == OriginRole::Victim) ++victims;
  }
  // Roughly fair coin.
  EXPECT_GT(victims, 60u);
  EXPECT_LT(victims, 140u);
}

TEST(Decision, SaltedCoinIndependentPerZone) {
  const RouteComparator cmp(TieBreakMode::Hashed, 42);
  bool any_difference = false;
  for (std::uint32_t n = 0; n < 32 && !any_difference; ++n) {
    if (cmp.preferred_role(NodeId{n}, 0) != cmp.preferred_role(NodeId{n}, 1)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Decision, FixedModesIgnoreSalt) {
  const RouteComparator vf(TieBreakMode::VictimFirst, 42);
  const RouteComparator af(TieBreakMode::AdversaryFirst, 42);
  for (std::uint64_t salt = 0; salt < 8; ++salt) {
    EXPECT_EQ(vf.preferred_role(kNode, salt), OriginRole::Victim);
    EXPECT_EQ(af.preferred_role(kNode, salt), OriginRole::Adversary);
  }
}

TEST(Decision, FinalTieBreakByNeighborAsnThenPop) {
  const RouteComparator cmp(TieBreakMode::VictimFirst, 1);
  const auto low_asn = candidate(RouteSource::Peer, 2, OriginRole::Victim,
                                 /*from_asn=*/5);
  const auto high_asn = candidate(RouteSource::Peer, 2, OriginRole::Victim,
                                  /*from_asn=*/9);
  EXPECT_TRUE(cmp.prefer(low_asn, high_asn, kNode));

  const auto pop0 = candidate(RouteSource::Peer, 2, OriginRole::Victim, 5, 0);
  const auto pop1 = candidate(RouteSource::Peer, 2, OriginRole::Victim, 5, 1);
  EXPECT_TRUE(cmp.prefer(pop0, pop1, kNode));
  EXPECT_FALSE(cmp.prefer(pop1, pop0, kNode));
}

}  // namespace
}  // namespace marcopolo::bgp
