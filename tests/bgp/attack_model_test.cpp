// The attack-model registry and the RouteLeak scenario it introduced.
//
// Registry: every enumerator has a model, a unique name, and a string
// round-trip; parse_attack_list is the one CLI entry point. Semantics: a
// route leak captures traffic without OTC, shrinks monotonically as OTC
// deploys, and is invisible to ROV (the real origin stays in the path).
// Equivalence: the incremental (delta-replay) evaluation of a route leak
// answers every query exactly like the full engine, across ROV and OTC
// deployments — the property the multi-attack campaign's byte-identity
// rests on.
#include "bgp/attack_model.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/delta.hpp"
#include "bgp/propagation.hpp"
#include "netsim/random.hpp"
#include "topo/internet.hpp"

namespace marcopolo::bgp {
namespace {

const netsim::Ipv4Prefix kPrefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");

// ---------------------------------------------------------------- registry

TEST(AttackRegistry, EveryTypeHasAModelWithItsOwnTag) {
  const auto all = all_attack_types();
  ASSERT_EQ(all.size(), kAttackTypeCount);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(all[i]), i)
        << "registry order must match enumerator order";
    EXPECT_EQ(attack_model(all[i]).type(), all[i]);
  }
}

TEST(AttackRegistry, NamesAreUniqueAndRoundTrip) {
  std::set<std::string> seen;
  for (const AttackType t : all_attack_types()) {
    const char* name = attack_model(t).name();
    ASSERT_NE(name, nullptr);
    EXPECT_STREQ(name, to_cstring(t));
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    const auto back = attack_type_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(attack_type_from_string("no-such-attack").has_value());
  EXPECT_FALSE(attack_type_from_string("").has_value());
}

TEST(AttackRegistry, OnlyRouteLeakNeedsTheBaseline) {
  EXPECT_TRUE(attack_model(AttackType::RouteLeak).needs_baseline());
  EXPECT_FALSE(attack_model(AttackType::EquallySpecific).needs_baseline());
  EXPECT_FALSE(
      attack_model(AttackType::ForgedOriginPrepend).needs_baseline());
  EXPECT_FALSE(attack_model(AttackType::SubPrefix).needs_baseline());
}

TEST(AttackRegistry, ParseAttackListExpandsAndValidates) {
  const auto all = parse_attack_list("all");
  ASSERT_EQ(all.size(), kAttackTypeCount);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], all_attack_types()[i]);
  }

  const auto two = parse_attack_list("route-leak,equally-specific");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], AttackType::RouteLeak);
  EXPECT_EQ(two[1], AttackType::EquallySpecific);

  EXPECT_THROW((void)parse_attack_list(""), std::invalid_argument);
  try {
    (void)parse_attack_list("equally-specific,bogus");
    FAIL() << "unknown token must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos)
        << "message must name the offending token: " << e.what();
  }
}

// ------------------------------------------------------ leak semantics

/// Victim and adversary as multi-homed leaf customers of the transit core,
/// the configuration where a leak is textbook: the adversary learns the
/// victim's route from one provider and (mis)advertises it to the others,
/// which prefer the customer route.
class RouteLeakTest : public ::testing::Test {
 protected:
  static topo::InternetConfig make_config() {
    topo::InternetConfig cfg;
    cfg.num_tier2 = 40;
    cfg.num_tier3 = 50;
    cfg.num_stub = 60;
    cfg.seed = 9;
    return cfg;
  }

  static void attach(topo::Internet& net, NodeId leaf, netsim::GeoPoint at,
                     std::uint64_t salt) {
    net.graph().add_provider_customer(net.tier1_for(salt), leaf);
    for (const auto t2 : net.nearest_tier2(at, 2)) {
      net.graph().add_provider_customer(t2, leaf);
    }
  }

  /// Attach the two leafs and deploy defenses into a fresh topology
  /// (Internet is not movable, so callers construct it in place).
  void build(topo::Internet& net, double otc_fraction, double rov_fraction) {
    victim_ = net.add_leaf_as(Asn{64512}, {35.68, 139.69},
                              topo::Continent::Asia);
    adversary_ = net.add_leaf_as(Asn{64513}, {50.11, 8.68},
                                 topo::Continent::Europe);
    attach(net, victim_, {35.68, 139.69}, 1);
    attach(net, adversary_, {50.11, 8.68}, 2);
    if (otc_fraction > 0.0) net.deploy_otc(otc_fraction, 0x07C);
    if (rov_fraction > 0.0) net.deploy_rov(rov_fraction, 0xA2);
  }

  double leak_capture(const topo::Internet& net,
                      const RoaRegistry* roas = nullptr) {
    ScenarioConfig cfg;
    cfg.type = AttackType::RouteLeak;
    cfg.tie_break = TieBreakMode::Hashed;
    cfg.tie_break_seed = 0xCAFE;
    cfg.roas = roas;
    const HijackScenario s(net.graph(), victim_, adversary_, kPrefix, cfg);
    return s.adversary_capture_fraction();
  }

  NodeId victim_;
  NodeId adversary_;
};

TEST_F(RouteLeakTest, LeakCapturesTrafficWithoutOtc) {
  topo::Internet net(make_config());
  build(net, 0.0, 0.0);
  ScenarioConfig cfg;
  cfg.type = AttackType::RouteLeak;
  const HijackScenario s(net.graph(), victim_, adversary_, kPrefix, cfg);
  EXPECT_EQ(s.reached(victim_), OriginReached::Victim);
  EXPECT_EQ(s.reached(adversary_), OriginReached::Adversary);
  EXPECT_EQ(s.sub_prefix(), nullptr) << "a leak contests only the /24";
  // The adversary's providers prefer the leaked customer route, so the
  // capture is material — but the victim's own cone holds.
  EXPECT_GT(s.adversary_capture_fraction(), 0.05);
  EXPECT_LT(s.adversary_capture_fraction(), 0.95);
}

TEST_F(RouteLeakTest, OtcDeploymentShrinksTheLeakMonotonically) {
  topo::Internet net_none(make_config());
  build(net_none, 0.0, 0.0);
  topo::Internet net_half(make_config());
  build(net_half, 0.5, 0.0);
  topo::Internet net_full(make_config());
  build(net_full, 1.0, 0.0);
  const double none = leak_capture(net_none);
  const double half = leak_capture(net_half);
  const double full = leak_capture(net_full);
  // Same RNG stream: the half deployment's enforcing set is a subset of
  // the full one, so capture is monotone along the axis.
  EXPECT_LE(full, half);
  EXPECT_LE(half, none);
  EXPECT_LT(full, none) << "full OTC must visibly reduce the leak";
  // With every transit AS enforcing, the leak dies at the adversary's own
  // providers; only the adversary itself still routes to itself.
  EXPECT_LT(full, 0.05);
}

TEST_F(RouteLeakTest, RovIsBlindToLeaksButNotToOriginHijacks) {
  topo::Internet net(make_config());
  build(net, 0.0, 1.0);
  RoaRegistry roas;
  roas.add(Roa{kPrefix, Asn{64512}, std::nullopt});

  // The leaked route carries the victim's genuine origination, so every
  // enforcing AS sees a Valid route: outcomes are identical with the
  // registry consulted or absent.
  ScenarioConfig leak;
  leak.type = AttackType::RouteLeak;
  leak.tie_break = TieBreakMode::Hashed;
  leak.tie_break_seed = 0xCAFE;
  const HijackScenario without(net.graph(), victim_, adversary_, kPrefix,
                               leak);
  leak.roas = &roas;
  const HijackScenario with(net.graph(), victim_, adversary_, kPrefix, leak);
  for (std::uint32_t i = 0; i < net.graph().size(); ++i) {
    ASSERT_EQ(with.reached(NodeId{i}), without.reached(NodeId{i}))
        << "node " << i;
  }

  // Control: the same deployment does bite an equally-specific forgery,
  // so the invariance above is a property of the leak, not a broken ROV.
  ScenarioConfig forge;
  forge.tie_break = TieBreakMode::Hashed;
  forge.tie_break_seed = 0xCAFE;
  const HijackScenario forged_plain(net.graph(), victim_, adversary_,
                                    kPrefix, forge);
  forge.roas = &roas;
  const HijackScenario forged_rov(net.graph(), victim_, adversary_, kPrefix,
                                  forge);
  EXPECT_LT(forged_rov.adversary_capture_fraction(),
            forged_plain.adversary_capture_fraction());
}

TEST_F(RouteLeakTest, AdversaryWithNoLearnedRouteCannotLeak) {
  topo::Internet net(make_config());
  victim_ = net.add_leaf_as(Asn{64512}, {35.68, 139.69},
                            topo::Continent::Asia);
  // The adversary stays unattached: nothing reaches it, so there is no
  // route to re-export and the plan degenerates to "victim unopposed".
  adversary_ = net.add_leaf_as(Asn{64513}, {50.11, 8.68},
                               topo::Continent::Europe);
  attach(net, victim_, {35.68, 139.69}, 1);

  ScenarioConfig cfg;
  cfg.type = AttackType::RouteLeak;
  const HijackScenario s(net.graph(), victim_, adversary_, kPrefix, cfg);
  EXPECT_EQ(s.adversary_capture_fraction(), 0.0);
  for (std::uint32_t i = 0; i < net.graph().size(); ++i) {
    EXPECT_NE(s.reached(NodeId{i}), OriginReached::Adversary) << "node " << i;
  }
}

// --------------------------------------------- sub-prefix x ROA MAX_LEN

TEST(SubPrefixMaxLen, RoaMaxLenDecidesWhetherTheSubPrefixSurvivesRov) {
  topo::InternetConfig icfg;
  icfg.num_tier2 = 40;
  icfg.num_tier3 = 50;
  icfg.num_stub = 60;
  icfg.seed = 9;
  topo::Internet net(icfg);
  const NodeId victim = net.add_leaf_as(Asn{64512}, {35.68, 139.69},
                                        topo::Continent::Asia);
  const NodeId adversary = net.add_leaf_as(Asn{64513}, {50.11, 8.68},
                                           topo::Continent::Europe);
  net.graph().add_provider_customer(net.tier1_for(1), victim);
  net.graph().add_provider_customer(net.tier1_for(2), adversary);
  for (const auto t2 : net.nearest_tier2({35.68, 139.69}, 2)) {
    net.graph().add_provider_customer(t2, victim);
  }
  for (const auto t2 : net.nearest_tier2({50.11, 8.68}, 2)) {
    net.graph().add_provider_customer(t2, adversary);
  }
  net.deploy_rov(1.0, 0xA2);

  const auto capture = [&](const RoaRegistry& roas) {
    ScenarioConfig cfg;
    cfg.type = AttackType::SubPrefix;
    cfg.tie_break = TieBreakMode::Hashed;
    cfg.tie_break_seed = 0xCAFE;
    cfg.roas = &roas;
    const HijackScenario s(net.graph(), victim, adversary, kPrefix, cfg);
    return s.adversary_capture_fraction();
  };

  // Minimal-length ROA (RFC 9319's recommendation): the adversary's /25 is
  // longer than the authorized /24, Invalid at every enforcing AS — the
  // forged victim origin does not help.
  RoaRegistry tight;
  tight.add(Roa{kPrefix, Asn{64512}, std::nullopt});
  const double tight_capture = capture(tight);
  EXPECT_LT(tight_capture, 0.1)
      << "an Invalid sub-prefix must die in the enforcing transit core";

  // A MAX_LEN 25 ROA authorizes the victim to announce /25s — and because
  // the sub-prefix hijack forges the victim's origin, it rides the same
  // authorization straight through ROV and wins by longest-prefix match.
  RoaRegistry loose;
  loose.add(Roa{kPrefix, Asn{64512}, 25});
  const double loose_capture = capture(loose);
  EXPECT_GT(loose_capture, 0.8)
      << "the MAX_LEN footgun (RFC 9319) must re-enable the hijack";
  EXPECT_GT(loose_capture, tight_capture);
}

// ------------------------------------- full vs incremental equivalence

/// Small-but-real topology, as the delta-engine differential tests use.
topo::Internet small_internet(std::uint64_t seed) {
  topo::InternetConfig cfg;
  cfg.seed = seed;
  cfg.num_tier1 = 6;
  cfg.num_tier2 = 24;
  cfg.num_tier3 = 60;
  cfg.num_stub = 110;
  return topo::Internet(cfg);
}

bool candidate_eq(const RouteCandidate& a, const RouteCandidate& b) {
  return a.ann.prefix == b.ann.prefix && a.ann.as_path == b.ann.as_path &&
         a.ann.role == b.ann.role && a.source == b.source && a.from == b.from &&
         a.from_asn == b.from_asn && a.ingress_pop == b.ingress_pop;
}

/// Evaluates one route-leak pair through both paths — a full reset() and a
/// reset_incremental() over a freshly-baselined delta engine — and checks
/// they answer every query identically.
void expect_incremental_matches_full(const AsGraph& g, NodeId victim,
                                     NodeId adversary,
                                     const RoaRegistry* roas,
                                     std::uint64_t seed) {
  ScenarioConfig sc;
  sc.type = AttackType::RouteLeak;
  sc.tie_break = TieBreakMode::Hashed;
  sc.tie_break_seed = seed;
  sc.roas = roas;

  PropagationWorkspace ws;
  HijackScenario full;
  full.reset(g, victim, adversary, kPrefix, sc, ws);

  PropagationConfig pc;
  pc.tie_break = sc.tie_break;
  pc.tie_break_seed = sc.tie_break_seed;
  pc.roas = roas;
  DeltaPropagation delta;
  delta.set_victim_baseline(g, victim, kPrefix, pc);
  HijackScenario incremental;
  incremental.reset_incremental(delta, adversary, sc, ws);

  EXPECT_EQ(incremental.target_address(), full.target_address());
  EXPECT_DOUBLE_EQ(incremental.adversary_capture_fraction(),
                   full.adversary_capture_fraction());
  for (std::uint32_t i = 0; i < g.size(); ++i) {
    const NodeId n{i};
    ASSERT_EQ(incremental.reached(n), full.reached(n)) << "node " << i;
    const auto& ibest = incremental.primary_best(n);
    const auto& fbest = full.primary_best(n);
    ASSERT_EQ(ibest.has_value(), fbest.has_value()) << "node " << i;
    if (ibest.has_value()) {
      ASSERT_TRUE(candidate_eq(*ibest, *fbest))
          << "best route diverges at node " << i << ": incremental path ["
          << ibest->ann.path_string() << "] vs full ["
          << fbest->ann.path_string() << "]";
    }
  }
}

TEST(RouteLeakDelta, IncrementalReplayMatchesFullEngine) {
  const topo::Internet net = small_internet(7);
  const AsGraph& g = net.graph();
  netsim::Rng rng(0x1EAC);
  for (int trial = 0; trial < 6; ++trial) {
    const NodeId victim{static_cast<std::uint32_t>(rng.index(g.size()))};
    NodeId adversary{static_cast<std::uint32_t>(rng.index(g.size()))};
    while (adversary == victim) {
      adversary = NodeId{static_cast<std::uint32_t>(rng.index(g.size()))};
    }
    expect_incremental_matches_full(
        g, victim, adversary, nullptr,
        netsim::hash_combine(0xCAFE, static_cast<std::uint64_t>(trial)));
  }
}

TEST(RouteLeakDelta, IncrementalMatchesFullUnderRovAndOtc) {
  // The deployment matrix the attack x defense sweep exercises: the two
  // engines must agree under every combination, not just the bare graph.
  for (const bool with_rov : {false, true}) {
    for (const bool with_otc : {false, true}) {
      topo::Internet net = small_internet(11);
      if (with_rov) net.deploy_rov(0.5, 0xA2);
      if (with_otc) net.deploy_otc(0.5, 0x07C);
      const AsGraph& g = net.graph();
      RoaRegistry roas;
      netsim::Rng rng(0x5EED);
      for (int trial = 0; trial < 4; ++trial) {
        const NodeId victim{static_cast<std::uint32_t>(rng.index(g.size()))};
        NodeId adversary{static_cast<std::uint32_t>(rng.index(g.size()))};
        while (adversary == victim) {
          adversary = NodeId{static_cast<std::uint32_t>(rng.index(g.size()))};
        }
        roas.add(Roa{kPrefix, g.asn_of(victim), std::nullopt});
        expect_incremental_matches_full(
            g, victim, adversary, with_rov ? &roas : nullptr,
            netsim::hash_combine(0xBEEF, static_cast<std::uint64_t>(trial)));
        roas.remove(kPrefix, g.asn_of(victim));
      }
    }
  }
}

}  // namespace
}  // namespace marcopolo::bgp
