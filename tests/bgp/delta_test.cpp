// Differential oracle for the incremental (baseline + delta) engine: for
// randomized victim/adversary pairs — with and without ROV deployment —
// DeltaPropagation must answer every query exactly as a full two-origin
// propagation does: same reachability and role at every node, the same
// best route (full value equality), and the same Adj-RIB-In as a multiset.
#include "bgp/delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "bgp/propagation.hpp"
#include "netsim/random.hpp"
#include "topo/internet.hpp"

namespace marcopolo::bgp {
namespace {

const netsim::Ipv4Prefix kPrefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");

bool candidate_eq(const RouteCandidate& a, const RouteCandidate& b) {
  return a.ann.prefix == b.ann.prefix && a.ann.as_path == b.ann.as_path &&
         a.ann.role == b.ann.role && a.source == b.source && a.from == b.from &&
         a.from_asn == b.from_asn && a.ingress_pop == b.ingress_pop;
}

/// Sorts a rib into a canonical order so two deliveries of the same
/// multiset compare equal element-wise regardless of delivery order.
void canonicalize(std::vector<RouteCandidate>& rib) {
  std::sort(rib.begin(), rib.end(),
            [](const RouteCandidate& a, const RouteCandidate& b) {
              return std::tie(a.source, a.ann.role, a.ann.as_path, a.from_asn,
                              a.ingress_pop, a.from) <
                     std::tie(b.source, b.ann.role, b.ann.as_path, b.from_asn,
                              b.ingress_pop, b.from);
            });
}

/// Replays `adv_ann` over `delta`'s baseline and checks every node's state
/// against a from-scratch two-origin propagation under the same config.
void expect_matches_full(const AsGraph& g, DeltaPropagation& delta,
                         NodeId victim, NodeId adversary,
                         const Announcement& adv_ann,
                         const PropagationConfig& pc) {
  const auto full = propagate(
      g,
      {SeededRoute{victim, Announcement{kPrefix, {}, OriginRole::Victim}},
       SeededRoute{adversary, adv_ann}},
      pc);
  const RouteComparator cmp(pc.tie_break, pc.tie_break_seed);
  delta.replay(adversary, adv_ann, cmp);

  std::optional<RouteCandidate> best;
  std::vector<RouteCandidate> rib;
  for (std::uint32_t i = 0; i < g.size(); ++i) {
    const NodeId n{i};
    ASSERT_EQ(delta.reachable(n), full.reachable(n)) << "node " << i;
    ASSERT_EQ(delta.role_reached(n), full.role_reached(n)) << "node " << i;

    delta.materialize_best(n, best);
    ASSERT_EQ(best.has_value(), full.best[i].has_value()) << "node " << i;
    if (best.has_value()) {
      ASSERT_TRUE(candidate_eq(*best, *full.best[i]))
          << "best route diverges at node " << i << ": delta path ["
          << best->ann.path_string() << "] vs full ["
          << full.best[i]->ann.path_string() << "]";
    }

    delta.materialize_rib(n, rib);
    std::vector<RouteCandidate> expected = full.rib_in[i];
    canonicalize(rib);
    canonicalize(expected);
    ASSERT_EQ(rib.size(), expected.size()) << "rib size at node " << i;
    for (std::size_t k = 0; k < rib.size(); ++k) {
      ASSERT_TRUE(candidate_eq(rib[k], expected[k]))
          << "rib entry " << k << " diverges at node " << i;
    }
  }
}

/// Small-but-real topology: every tier, peering mesh, geographic bias.
topo::Internet small_internet(std::uint64_t seed) {
  topo::InternetConfig cfg;
  cfg.seed = seed;
  cfg.num_tier1 = 6;
  cfg.num_tier2 = 24;
  cfg.num_tier3 = 60;
  cfg.num_stub = 110;
  return topo::Internet(cfg);
}

TEST(DeltaPropagation, RandomPairsMatchFullPropagation) {
  const topo::Internet net = small_internet(7);
  const AsGraph& g = net.graph();
  netsim::Rng rng(0xD1FF);

  for (int trial = 0; trial < 8; ++trial) {
    const NodeId victim{static_cast<std::uint32_t>(rng.index(g.size()))};
    NodeId adversary{static_cast<std::uint32_t>(rng.index(g.size()))};
    while (adversary == victim) {
      adversary = NodeId{static_cast<std::uint32_t>(rng.index(g.size()))};
    }
    // Per-pair salted comparator, as a campaign would use.
    PropagationConfig pc;
    pc.tie_break = TieBreakMode::Hashed;
    pc.tie_break_seed =
        netsim::hash_combine(0xCAFE, static_cast<std::uint64_t>(trial));

    DeltaPropagation delta;
    delta.set_victim_baseline(g, victim, kPrefix, pc);
    // Equally-specific origination, then a forged-origin prepend replayed
    // over the same baseline.
    expect_matches_full(g, delta, victim, adversary,
                        Announcement{kPrefix, {}, OriginRole::Adversary}, pc);
    expect_matches_full(
        g, delta, victim, adversary,
        Announcement{kPrefix, {g.asn_of(victim)}, OriginRole::Adversary}, pc);
  }
}

TEST(DeltaPropagation, RovTopologyMatchesFullPropagation) {
  topo::Internet net = small_internet(11);
  net.deploy_rov(0.5, 0xA2);
  const AsGraph& g = net.graph();
  RoaRegistry roas;
  netsim::Rng rng(0x5EED);

  for (int trial = 0; trial < 6; ++trial) {
    const NodeId victim{static_cast<std::uint32_t>(rng.index(g.size()))};
    NodeId adversary{static_cast<std::uint32_t>(rng.index(g.size()))};
    while (adversary == victim) {
      adversary = NodeId{static_cast<std::uint32_t>(rng.index(g.size()))};
    }
    // The victim holds the only ROA for the prefix: the adversary's plain
    // origination is Invalid at every enforcing AS, while its forged-origin
    // prepend stays Valid.
    roas.add(Roa{kPrefix, g.asn_of(victim), std::nullopt});

    PropagationConfig pc;
    pc.tie_break = TieBreakMode::Hashed;
    pc.tie_break_seed =
        netsim::hash_combine(0xBEEF, static_cast<std::uint64_t>(trial));
    pc.roas = &roas;

    DeltaPropagation delta;
    delta.set_victim_baseline(g, victim, kPrefix, pc);
    expect_matches_full(g, delta, victim, adversary,
                        Announcement{kPrefix, {}, OriginRole::Adversary}, pc);
    expect_matches_full(
        g, delta, victim, adversary,
        Announcement{kPrefix, {g.asn_of(victim)}, OriginRole::Adversary}, pc);

    roas.remove(kPrefix, g.asn_of(victim));
  }
}

TEST(DeltaPropagation, ManyReplaysOverOneBaseline) {
  // The campaign pattern: one victim baseline, every adversary replayed
  // over it in sequence (with a replay_none interleaved, as SubPrefix
  // attacks do). Each replay must be independent of its predecessors.
  const topo::Internet net = small_internet(23);
  const AsGraph& g = net.graph();

  const NodeId victim = net.stubs().front();
  PropagationConfig pc;
  pc.tie_break = TieBreakMode::Hashed;
  pc.tie_break_seed = 0xABCD;

  DeltaPropagation delta;
  delta.set_victim_baseline(g, victim, kPrefix, pc);

  netsim::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    NodeId adversary{static_cast<std::uint32_t>(rng.index(g.size()))};
    while (adversary == victim) {
      adversary = NodeId{static_cast<std::uint32_t>(rng.index(g.size()))};
    }
    if (trial == 5) delta.replay_none();
    expect_matches_full(g, delta, victim, adversary,
                        Announcement{kPrefix, {}, OriginRole::Adversary}, pc);
    EXPECT_GT(delta.stats().up_recomputed, 0u);
  }
}

TEST(DeltaPropagation, ReplayNoneRestoresVictimOnlyBaseline) {
  const topo::Internet net = small_internet(31);
  const AsGraph& g = net.graph();
  const NodeId victim = net.tier3().front();
  const NodeId adversary = net.stubs().back();

  PropagationConfig pc;
  const auto victim_only = propagate(
      g, {SeededRoute{victim, Announcement{kPrefix, {}, OriginRole::Victim}}},
      pc);

  DeltaPropagation delta;
  delta.set_victim_baseline(g, victim, kPrefix, pc);
  const RouteComparator cmp(pc.tie_break, pc.tie_break_seed);
  delta.replay(adversary, Announcement{kPrefix, {}, OriginRole::Adversary},
               cmp);
  delta.replay_none();

  std::optional<RouteCandidate> best;
  for (std::uint32_t i = 0; i < g.size(); ++i) {
    const NodeId n{i};
    ASSERT_EQ(delta.reachable(n), victim_only.reachable(n)) << "node " << i;
    ASSERT_EQ(delta.role_reached(n), victim_only.role_reached(n))
        << "node " << i;
    delta.materialize_best(n, best);
    ASSERT_EQ(best.has_value(), victim_only.best[i].has_value());
    if (best.has_value()) {
      ASSERT_TRUE(candidate_eq(*best, *victim_only.best[i])) << "node " << i;
    }
  }
  EXPECT_EQ(delta.stats().up_recomputed, 0u)
      << "replay_none re-runs no decision process";
}

TEST(DeltaPropagation, RebindingRecyclesStorage) {
  // One engine object across victims, as a campaign worker uses it.
  const topo::Internet net = small_internet(47);
  const AsGraph& g = net.graph();
  PropagationConfig pc;
  pc.tie_break = TieBreakMode::Hashed;
  pc.tie_break_seed = 7;

  DeltaPropagation delta;
  for (const NodeId victim : {net.stubs()[0], net.stubs()[5], net.tier2()[1]}) {
    delta.set_victim_baseline(g, victim, kPrefix, pc);
    const NodeId adversary =
        victim == net.stubs()[0] ? net.stubs()[5] : net.stubs()[0];
    expect_matches_full(g, delta, victim, adversary,
                        Announcement{kPrefix, {}, OriginRole::Adversary}, pc);
  }
}

TEST(DeltaPropagation, GuardsAgainstMisuse) {
  const topo::Internet net = small_internet(3);
  const AsGraph& g = net.graph();
  const RouteComparator cmp(TieBreakMode::VictimFirst, 0);

  DeltaPropagation delta;
  EXPECT_THROW(delta.replay(net.stubs()[0],
                            Announcement{kPrefix, {}, OriginRole::Adversary},
                            cmp),
               std::logic_error);
  EXPECT_THROW(delta.replay_none(), std::logic_error);

  delta.set_victim_baseline(g, net.stubs()[0], kPrefix, PropagationConfig{});
  EXPECT_THROW(
      delta.replay(net.stubs()[0],
                   Announcement{kPrefix, {}, OriginRole::Adversary}, cmp),
      std::invalid_argument)
      << "adversary == victim";
  const netsim::Ipv4Prefix other = *netsim::Ipv4Prefix::parse("198.51.100.0/24");
  EXPECT_THROW(
      delta.replay(net.stubs()[1], Announcement{other, {}, OriginRole::Adversary},
                   cmp),
      std::invalid_argument)
      << "prefix mismatch";
}

}  // namespace
}  // namespace marcopolo::bgp
