#include "bgp/as_graph.hpp"

#include <gtest/gtest.h>

namespace marcopolo::bgp {
namespace {

TEST(AsGraph, AddAndFind) {
  AsGraph g;
  const NodeId a = g.add_as(Asn{100});
  const NodeId b = g.add_as(Asn{200});
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.asn_of(a), Asn{100});
  EXPECT_EQ(g.find(Asn{200}), b);
  EXPECT_FALSE(g.find(Asn{999}).has_value());
}

TEST(AsGraph, RejectsDuplicateAsn) {
  AsGraph g;
  g.add_as(Asn{100});
  EXPECT_THROW(g.add_as(Asn{100}), std::invalid_argument);
}

TEST(AsGraph, ProviderCustomerIsMirrored) {
  AsGraph g;
  const NodeId p = g.add_as(Asn{1});
  const NodeId c = g.add_as(Asn{2});
  g.add_provider_customer(p, c);
  ASSERT_EQ(g.customers_of(p).size(), 1u);
  EXPECT_EQ(g.customers_of(p)[0].id, c);
  ASSERT_EQ(g.providers_of(c).size(), 1u);
  EXPECT_EQ(g.providers_of(c)[0].id, p);
  EXPECT_TRUE(g.peers_of(p).empty());
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AsGraph, PeeringIsSymmetric) {
  AsGraph g;
  const NodeId a = g.add_as(Asn{1});
  const NodeId b = g.add_as(Asn{2});
  g.add_peering(a, b);
  ASSERT_EQ(g.peers_of(a).size(), 1u);
  ASSERT_EQ(g.peers_of(b).size(), 1u);
  EXPECT_EQ(g.peers_of(a)[0].id, b);
}

TEST(AsGraph, RejectsSelfLoops) {
  AsGraph g;
  const NodeId a = g.add_as(Asn{1});
  EXPECT_THROW(g.add_peering(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_provider_customer(a, a), std::invalid_argument);
}

TEST(AsGraph, PopAnnotationsStoredPerSide) {
  AsGraph g;
  const NodeId cloud = g.add_as(Asn{15169});
  const NodeId peer = g.add_as(Asn{2});
  g.add_peering(cloud, peer, PopId{7}, PopId{});
  EXPECT_EQ(g.peers_of(cloud)[0].local_pop, PopId{7});
  EXPECT_FALSE(g.peers_of(peer)[0].local_pop.valid());
}

TEST(AsGraph, CustomerRanksRespectHierarchy) {
  AsGraph g;
  const NodeId t1 = g.add_as(Asn{1});
  const NodeId t2 = g.add_as(Asn{2});
  const NodeId stub = g.add_as(Asn{3});
  g.add_provider_customer(t1, t2);
  g.add_provider_customer(t2, stub);
  const auto ranks = g.customer_ranks();
  EXPECT_EQ(ranks[stub.value], 0u);
  EXPECT_EQ(ranks[t2.value], 1u);
  EXPECT_EQ(ranks[t1.value], 2u);
}

TEST(AsGraph, RanksDetectCycles) {
  AsGraph g;
  const NodeId a = g.add_as(Asn{1});
  const NodeId b = g.add_as(Asn{2});
  g.add_provider_customer(a, b);
  g.add_provider_customer(b, a);  // mutual transit: a cycle
  EXPECT_THROW((void)g.customer_ranks(), std::logic_error);
}

TEST(AsGraph, MultiHomedRankIsAboveAllCustomers) {
  AsGraph g;
  const NodeId p1 = g.add_as(Asn{1});
  const NodeId p2 = g.add_as(Asn{2});
  const NodeId mid = g.add_as(Asn{3});
  const NodeId leaf = g.add_as(Asn{4});
  g.add_provider_customer(p1, mid);
  g.add_provider_customer(p2, leaf);
  g.add_provider_customer(mid, leaf);
  const auto ranks = g.customer_ranks();
  EXPECT_GT(ranks[p1.value], ranks[mid.value]);
  EXPECT_GT(ranks[p2.value], ranks[leaf.value]);
  EXPECT_GT(ranks[mid.value], ranks[leaf.value]);
}

TEST(AsGraph, ValidatePassesOnWellFormedGraph) {
  AsGraph g;
  const NodeId a = g.add_as(Asn{1});
  const NodeId b = g.add_as(Asn{2});
  const NodeId c = g.add_as(Asn{3});
  g.add_peering(a, b);
  g.add_provider_customer(a, c);
  EXPECT_NO_THROW(g.validate());
}

TEST(AsGraph, RovFlagDefaultsOff) {
  AsGraph g;
  const NodeId a = g.add_as(Asn{1});
  EXPECT_FALSE(g.rov_enforcing(a));
  g.set_rov_enforcing(a, true);
  EXPECT_TRUE(g.rov_enforcing(a));
}

}  // namespace
}  // namespace marcopolo::bgp
