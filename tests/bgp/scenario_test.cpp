#include "bgp/scenario.hpp"

#include <gtest/gtest.h>

#include "topo/internet.hpp"
#include "topo/vultr.hpp"

namespace marcopolo::bgp {
namespace {

const netsim::Ipv4Prefix kPrefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");

/// Shared small Internet with two leaf sites for victim/adversary.
class ScenarioTest : public ::testing::Test {
 protected:
  ScenarioTest() : internet_(make_config()) {
    victim_ = internet_.add_leaf_as(Asn{64512}, {35.68, 139.69},
                                    topo::Continent::Asia);
    adversary_ = internet_.add_leaf_as(Asn{64513}, {50.11, 8.68},
                                       topo::Continent::Europe);
    internet_.graph().add_provider_customer(internet_.tier1_for(1), victim_);
    internet_.graph().add_provider_customer(internet_.tier1_for(2),
                                            adversary_);
    for (const auto t2 : internet_.nearest_tier2({35.68, 139.69}, 2)) {
      internet_.graph().add_provider_customer(t2, victim_);
    }
    for (const auto t2 : internet_.nearest_tier2({50.11, 8.68}, 2)) {
      internet_.graph().add_provider_customer(t2, adversary_);
    }
  }

  static topo::InternetConfig make_config() {
    topo::InternetConfig cfg;
    cfg.num_tier2 = 40;
    cfg.num_tier3 = 50;
    cfg.num_stub = 60;
    cfg.seed = 9;
    return cfg;
  }

  topo::Internet internet_;
  NodeId victim_;
  NodeId adversary_;
};

TEST_F(ScenarioTest, RejectsSelfAttack) {
  EXPECT_THROW(HijackScenario(internet_.graph(), victim_, victim_, kPrefix,
                              ScenarioConfig{}),
               std::invalid_argument);
}

TEST_F(ScenarioTest, EquallySpecificSplitsTheInternet) {
  const HijackScenario s(internet_.graph(), victim_, adversary_, kPrefix,
                         ScenarioConfig{});
  EXPECT_EQ(s.reached(victim_), OriginReached::Victim);
  EXPECT_EQ(s.reached(adversary_), OriginReached::Adversary);
  const double captured = s.adversary_capture_fraction();
  EXPECT_GT(captured, 0.05);
  EXPECT_LT(captured, 0.95);
  EXPECT_TRUE(kPrefix.contains(s.target_address()));
}

TEST_F(ScenarioTest, ForgedOriginPropagatesLessThanPlain) {
  ScenarioConfig plain_cfg;
  plain_cfg.tie_break = TieBreakMode::Hashed;
  const HijackScenario plain(internet_.graph(), victim_, adversary_, kPrefix,
                             plain_cfg);
  ScenarioConfig forged_cfg = plain_cfg;
  forged_cfg.type = AttackType::ForgedOriginPrepend;
  const HijackScenario forged(internet_.graph(), victim_, adversary_, kPrefix,
                              forged_cfg);
  EXPECT_LT(forged.adversary_capture_fraction(),
            plain.adversary_capture_fraction());
  // The forged path carries the victim's ASN as origin.
  const auto& rib = forged.primary().rib_in[victim_.value];
  (void)rib;
  for (std::uint32_t i = 0; i < internet_.graph().size(); ++i) {
    const auto& best = forged.primary().best[i];
    if (best && best->ann.role == OriginRole::Adversary &&
        !best->ann.as_path.empty()) {
      EXPECT_EQ(best->ann.origin(), Asn{64512});
    }
  }
}

TEST_F(ScenarioTest, SubPrefixHijackIsGlobal) {
  ScenarioConfig cfg;
  cfg.type = AttackType::SubPrefix;
  const HijackScenario s(internet_.graph(), victim_, adversary_, kPrefix,
                         cfg);
  ASSERT_NE(s.sub_prefix(), nullptr);
  // The target sits inside the adversary's more-specific half.
  const auto [lower, upper] = kPrefix.split();
  (void)lower;
  EXPECT_TRUE(upper.contains(s.target_address()));
  // Nearly every AS (everything the sub-prefix reaches) goes to the
  // adversary — MPIC cannot defend this (paper §2).
  EXPECT_GT(s.adversary_capture_fraction(), 0.9);
  EXPECT_EQ(s.reached(victim_), OriginReached::Victim);  // loop prevention
}

TEST_F(ScenarioTest, VictimFirstModeWeaklyDominatesAdversaryFirst) {
  ScenarioConfig vf;
  vf.tie_break = TieBreakMode::VictimFirst;
  ScenarioConfig af;
  af.tie_break = TieBreakMode::AdversaryFirst;
  const HijackScenario sv(internet_.graph(), victim_, adversary_, kPrefix, vf);
  const HijackScenario sa(internet_.graph(), victim_, adversary_, kPrefix, af);
  EXPECT_LE(sv.adversary_capture_fraction(),
            sa.adversary_capture_fraction());
}

TEST_F(ScenarioTest, HashedCoinVariesAcrossPairs) {
  // The per-pair salt must differ between (v, a) orderings.
  ScenarioConfig cfg;
  cfg.tie_break = TieBreakMode::Hashed;
  const HijackScenario s1(internet_.graph(), victim_, adversary_, kPrefix,
                          cfg);
  const HijackScenario s2(internet_.graph(), adversary_, victim_, kPrefix,
                          cfg);
  // Same node: the two scenarios may roll different coins. We can't assert
  // inequality for one node (50% chance), but across many nodes the coin
  // streams must differ somewhere.
  bool any_difference = false;
  for (std::uint32_t i = 0; i < internet_.graph().size(); ++i) {
    if (s1.comparator().preferred_role(NodeId{i}) !=
        s2.comparator().preferred_role(NodeId{i})) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(ScenarioTest, DeterministicAcrossRuns) {
  ScenarioConfig cfg;
  cfg.tie_break = TieBreakMode::Hashed;
  const HijackScenario s1(internet_.graph(), victim_, adversary_, kPrefix,
                          cfg);
  const HijackScenario s2(internet_.graph(), victim_, adversary_, kPrefix,
                          cfg);
  for (std::uint32_t i = 0; i < internet_.graph().size(); ++i) {
    EXPECT_EQ(s1.reached(NodeId{i}), s2.reached(NodeId{i}));
  }
}

// Sweep all attack types: basic invariants hold for each.
class AttackTypeSweep : public ::testing::TestWithParam<AttackType> {};

TEST_P(AttackTypeSweep, VictimAlwaysReachesItself) {
  topo::InternetConfig icfg;
  icfg.num_tier2 = 30;
  icfg.num_tier3 = 30;
  icfg.num_stub = 30;
  topo::Internet internet(icfg);
  const auto victim = internet.add_leaf_as(Asn{64512}, {0, 0},
                                           topo::Continent::Europe);
  const auto adversary = internet.add_leaf_as(Asn{64513}, {10, 10},
                                              topo::Continent::Europe);
  internet.graph().add_provider_customer(internet.tier1_for(5), victim);
  internet.graph().add_provider_customer(internet.tier1_for(6), adversary);

  ScenarioConfig cfg;
  cfg.type = GetParam();
  const HijackScenario s(internet.graph(), victim, adversary, kPrefix, cfg);
  EXPECT_EQ(s.reached(victim), OriginReached::Victim);
  EXPECT_EQ(s.reached(adversary), OriginReached::Adversary);
  EXPECT_EQ(s.type(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllTypes, AttackTypeSweep,
                         ::testing::Values(AttackType::EquallySpecific,
                                           AttackType::ForgedOriginPrepend,
                                           AttackType::SubPrefix));

}  // namespace
}  // namespace marcopolo::bgp
