// RFC 9234 OTC rules, tested directly against the two pure functions both
// propagation engines funnel every inter-AS delivery through, plus the
// topology-level deployment knob. The RouteSource convention throughout is
// the *receiver's* view: Customer = the receiver learned the route from
// its customer, i.e. the sender advertised provider-ward.
#include "bgp/rfc9234.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "topo/internet.hpp"

namespace marcopolo::bgp {
namespace {

constexpr Asn kUnset{0};
constexpr Asn kSender{64500};
constexpr Asn kOther{64999};

// ---------------------------------------------------------------- egress

TEST(Rfc9234Egress, NonEnforcingSenderPassesAttributeVerbatim) {
  for (const RouteSource src :
       {RouteSource::Customer, RouteSource::Peer, RouteSource::Provider}) {
    EXPECT_EQ(otc_egress(kUnset, kSender, false, src), kUnset);
    EXPECT_EQ(otc_egress(kOther, kSender, false, src), kOther);
  }
}

TEST(Rfc9234Egress, ToProviderDropsMarkedRoutes) {
  // Sender -> its provider (receiver sees Customer). A route already below
  // the ridge line must not climb back up (§5 rule 2).
  EXPECT_EQ(otc_egress(kOther, kSender, true, RouteSource::Customer),
            std::nullopt);
  // An unmarked route is the sender's own customer cone: fine, unmarked.
  EXPECT_EQ(otc_egress(kUnset, kSender, true, RouteSource::Customer), kUnset);
}

TEST(Rfc9234Egress, ToPeerDropsMarkedAndMarksUnmarked) {
  EXPECT_EQ(otc_egress(kOther, kSender, true, RouteSource::Peer),
            std::nullopt);
  // Lateral moves start the customer-ward descent: stamp sender's ASN.
  EXPECT_EQ(otc_egress(kUnset, kSender, true, RouteSource::Peer), kSender);
}

TEST(Rfc9234Egress, ToCustomerMarksUnmarkedAndPreservesExisting) {
  EXPECT_EQ(otc_egress(kUnset, kSender, true, RouteSource::Provider),
            kSender);
  // An existing mark names the AS where the descent began; keep it.
  EXPECT_EQ(otc_egress(kOther, kSender, true, RouteSource::Provider), kOther);
}

// --------------------------------------------------------------- ingress

TEST(Rfc9234Ingress, NonEnforcingReceiverStoresAttributeVerbatim) {
  for (const RouteSource src :
       {RouteSource::Customer, RouteSource::Peer, RouteSource::Provider}) {
    EXPECT_EQ(otc_ingress(kUnset, kSender, false, src), kUnset);
    EXPECT_EQ(otc_ingress(kOther, kSender, false, src), kOther);
  }
}

TEST(Rfc9234Ingress, FromCustomerWithMarkIsALeak) {
  // A customer advertising a marked route is re-exporting something it
  // learned from a provider or peer: the definition of a leak (§5 rule 3).
  EXPECT_EQ(otc_ingress(kOther, kSender, true, RouteSource::Customer),
            std::nullopt);
  EXPECT_EQ(otc_ingress(kSender, kSender, true, RouteSource::Customer),
            std::nullopt)
      << "even a mark naming the customer itself is a leak from below";
  EXPECT_EQ(otc_ingress(kUnset, kSender, true, RouteSource::Customer),
            kUnset);
}

TEST(Rfc9234Ingress, FromPeerForeignMarkIsALeakOwnMarkIsNot) {
  // Marked by someone other than the advertising peer: the peer is passing
  // along a route that already went customer-ward elsewhere (§5 rule 4).
  EXPECT_EQ(otc_ingress(kOther, kSender, true, RouteSource::Peer),
            std::nullopt);
  // The peer's own mark is the legitimate §5 rule 1 stamp it just applied.
  EXPECT_EQ(otc_ingress(kSender, kSender, true, RouteSource::Peer), kSender);
  // Unmarked from a peer: mark on ingress so a later leak of this route is
  // detectable even if nobody below enforces (§5 rule 5).
  EXPECT_EQ(otc_ingress(kUnset, kSender, true, RouteSource::Peer), kSender);
}

TEST(Rfc9234Ingress, FromProviderMarksUnmarkedAndPreservesExisting) {
  EXPECT_EQ(otc_ingress(kUnset, kSender, true, RouteSource::Provider),
            kSender);
  EXPECT_EQ(otc_ingress(kOther, kSender, true, RouteSource::Provider),
            kOther);
}

TEST(Rfc9234, RulesAreUsableAtCompileTime) {
  // Both functions are constexpr so the engines' hot paths can fold the
  // non-enforcing case away entirely.
  static_assert(otc_egress(Asn{7}, Asn{1}, true, RouteSource::Customer) ==
                std::nullopt);
  static_assert(otc_ingress(Asn{0}, Asn{1}, true, RouteSource::Provider) ==
                Asn{1});
}

// ------------------------------------------------------------ deployment

TEST(Rfc9234Deploy, FractionZeroMarksNobody) {
  topo::Internet net{topo::InternetConfig{}};
  net.deploy_otc(0.0, 42);
  for (std::uint32_t i = 0; i < net.graph().size(); ++i) {
    EXPECT_FALSE(net.graph().otc_enforcing(NodeId{i}));
  }
}

TEST(Rfc9234Deploy, FullDeploymentMarksEveryTransitButNoStub) {
  topo::Internet net{topo::InternetConfig{}};
  net.deploy_otc(1.0, 42);
  for (const NodeId n : net.tier1()) {
    EXPECT_TRUE(net.graph().otc_enforcing(n));
  }
  for (const NodeId n : net.tier2()) {
    EXPECT_TRUE(net.graph().otc_enforcing(n));
  }
  for (const NodeId n : net.tier3()) {
    EXPECT_TRUE(net.graph().otc_enforcing(n));
  }
  // Stub networks do not enforce (same modeling choice as deploy_rov: the
  // defense lives in the transit core).
  for (const NodeId n : net.stubs()) {
    EXPECT_FALSE(net.graph().otc_enforcing(n));
  }
}

TEST(Rfc9234Deploy, PartialDeploymentIsDeterministicPerSeed) {
  const auto enforcing_set = [](std::uint64_t seed) {
    topo::Internet net{topo::InternetConfig{}};
    net.deploy_otc(0.5, seed);
    std::vector<bool> out(net.graph().size());
    for (std::uint32_t i = 0; i < net.graph().size(); ++i) {
      out[i] = net.graph().otc_enforcing(NodeId{i});
    }
    return out;
  };
  const auto a = enforcing_set(7);
  EXPECT_EQ(a, enforcing_set(7)) << "same seed, same deployment";
  EXPECT_NE(a, enforcing_set(8)) << "different seed, different deployment";
  const std::size_t marked =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(marked, 0u);
  // Strictly fewer than the full transit core (the half not picked).
  topo::Internet net{topo::InternetConfig{}};
  const std::size_t transit =
      net.tier1().size() + net.tier2().size() + net.tier3().size();
  EXPECT_LT(marked, transit);
}

}  // namespace
}  // namespace marcopolo::bgp
