#include "bgp/propagation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topo/internet.hpp"

namespace marcopolo::bgp {
namespace {

const netsim::Ipv4Prefix kPrefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");

SeededRoute origin_at(NodeId n, OriginRole role = OriginRole::Victim) {
  return SeededRoute{n, Announcement{kPrefix, {}, role}};
}

TEST(Propagation, LinearChainReachesEveryone) {
  // t1 <- t2 <- stub(origin): route climbs and descends.
  AsGraph g;
  const NodeId t1 = g.add_as(Asn{1});
  const NodeId t2 = g.add_as(Asn{2});
  const NodeId stub = g.add_as(Asn{3});
  g.add_provider_customer(t1, t2);
  g.add_provider_customer(t2, stub);

  const auto result = propagate(g, {origin_at(stub)}, PropagationConfig{});
  ASSERT_TRUE(result.reachable(t1));
  ASSERT_TRUE(result.reachable(t2));
  EXPECT_EQ(result.best[t1.value]->ann.path_string(), "2 3");
  EXPECT_EQ(result.best[t2.value]->ann.path_string(), "3");
  EXPECT_EQ(result.best[t2.value]->source, RouteSource::Customer);
}

TEST(Propagation, ValleyFreeBlocksPeerToPeerTransit) {
  //   p1 -- p2 -- p3  (peerings); origin under p1.
  // p3 must NOT learn the route: p2 may not re-export a peer route.
  AsGraph g;
  const NodeId p1 = g.add_as(Asn{1});
  const NodeId p2 = g.add_as(Asn{2});
  const NodeId p3 = g.add_as(Asn{3});
  const NodeId stub = g.add_as(Asn{4});
  g.add_peering(p1, p2);
  g.add_peering(p2, p3);
  g.add_provider_customer(p1, stub);

  const auto result = propagate(g, {origin_at(stub)}, PropagationConfig{});
  EXPECT_TRUE(result.reachable(p1));
  EXPECT_TRUE(result.reachable(p2));
  EXPECT_FALSE(result.reachable(p3));
}

TEST(Propagation, ProviderRouteNotExportedToOtherProvider) {
  // stub has two providers; a route learned FROM provider A must not be
  // re-announced TO provider B.
  AsGraph g;
  const NodeId pa = g.add_as(Asn{1});
  const NodeId pb = g.add_as(Asn{2});
  const NodeId mid = g.add_as(Asn{3});
  const NodeId src = g.add_as(Asn{4});
  g.add_provider_customer(pa, mid);
  g.add_provider_customer(pb, mid);
  g.add_provider_customer(pa, src);

  const auto result = propagate(g, {origin_at(src)}, PropagationConfig{});
  ASSERT_TRUE(result.reachable(mid));
  EXPECT_EQ(result.best[mid.value]->source, RouteSource::Provider);
  // pb heard nothing: its only path would be a valley through mid.
  EXPECT_FALSE(result.reachable(pb));
}

TEST(Propagation, CustomerRoutePreferredOverPeerAndProvider) {
  // x has the origin as customer AND hears it via a peer: customer wins.
  AsGraph g;
  const NodeId top = g.add_as(Asn{1});
  const NodeId x = g.add_as(Asn{2});
  const NodeId y = g.add_as(Asn{3});
  const NodeId src = g.add_as(Asn{4});
  g.add_provider_customer(top, x);
  g.add_provider_customer(top, y);
  g.add_peering(x, y);
  g.add_provider_customer(x, src);
  g.add_provider_customer(y, src);

  const auto result = propagate(g, {origin_at(src)}, PropagationConfig{});
  ASSERT_TRUE(result.reachable(x));
  EXPECT_EQ(result.best[x.value]->source, RouteSource::Customer);
  EXPECT_EQ(result.best[x.value]->ann.path_string(), "4");
}

TEST(Propagation, ShorterPathWinsWithinSameClass) {
  //        top
  //       /    \
  //      a      b
  //      |      |
  //      src    c
  //             |
  //             src2? — use one origin, two provider paths of different len.
  AsGraph g;
  const NodeId top = g.add_as(Asn{1});
  const NodeId a = g.add_as(Asn{2});
  const NodeId b = g.add_as(Asn{3});
  const NodeId c = g.add_as(Asn{4});
  const NodeId src = g.add_as(Asn{5});
  g.add_provider_customer(top, a);
  g.add_provider_customer(top, b);
  g.add_provider_customer(b, c);
  g.add_provider_customer(a, src);
  g.add_provider_customer(c, src);

  const auto result = propagate(g, {origin_at(src)}, PropagationConfig{});
  ASSERT_TRUE(result.reachable(top));
  // top hears "2 5" (len 2) from a and "3 4 5" (len 3) from b.
  EXPECT_EQ(result.best[top.value]->ann.path_string(), "2 5");
}

TEST(Propagation, TwoOriginsSplitTheTopology) {
  // Two tier-1 peers, each with its own origin below: each side keeps its
  // customer route (customer > peer).
  AsGraph g;
  const NodeId t1a = g.add_as(Asn{1});
  const NodeId t1b = g.add_as(Asn{2});
  const NodeId va = g.add_as(Asn{10});
  const NodeId vb = g.add_as(Asn{20});
  g.add_peering(t1a, t1b);
  g.add_provider_customer(t1a, va);
  g.add_provider_customer(t1b, vb);

  const auto result = propagate(
      g,
      {origin_at(va, OriginRole::Victim), origin_at(vb, OriginRole::Adversary)},
      PropagationConfig{});
  EXPECT_EQ(result.role_reached(t1a), OriginRole::Victim);
  EXPECT_EQ(result.role_reached(t1b), OriginRole::Adversary);
}

TEST(Propagation, TieBreakModesPickTheConfiguredOrigin) {
  // An observer equidistant from both origins through the same relationship
  // class: the route-age mode decides.
  AsGraph g;
  const NodeId obs = g.add_as(Asn{1});
  const NodeId va = g.add_as(Asn{10});
  const NodeId vb = g.add_as(Asn{20});
  g.add_provider_customer(obs, va);
  g.add_provider_customer(obs, vb);

  PropagationConfig victim_first;
  victim_first.tie_break = TieBreakMode::VictimFirst;
  auto r1 = propagate(g,
                      {origin_at(va, OriginRole::Victim),
                       origin_at(vb, OriginRole::Adversary)},
                      victim_first);
  EXPECT_EQ(r1.role_reached(obs), OriginRole::Victim);

  PropagationConfig adversary_first;
  adversary_first.tie_break = TieBreakMode::AdversaryFirst;
  auto r2 = propagate(g,
                      {origin_at(va, OriginRole::Victim),
                       origin_at(vb, OriginRole::Adversary)},
                      adversary_first);
  EXPECT_EQ(r2.role_reached(obs), OriginRole::Adversary);
}

TEST(Propagation, RovDropsInvalidAnnouncements) {
  RoaRegistry roas;
  roas.add(Roa{kPrefix, Asn{10}, std::nullopt});

  AsGraph g;
  const NodeId enforcing = g.add_as(Asn{1});
  const NodeId hijacker = g.add_as(Asn{666});
  g.add_provider_customer(enforcing, hijacker);
  g.set_rov_enforcing(enforcing, true);

  PropagationConfig cfg;
  cfg.roas = &roas;
  const auto result =
      propagate(g, {origin_at(hijacker, OriginRole::Adversary)}, cfg);
  EXPECT_FALSE(result.reachable(enforcing));

  // Same topology, non-enforcing: the invalid route is accepted.
  AsGraph g2;
  const NodeId lax = g2.add_as(Asn{1});
  const NodeId hijacker2 = g2.add_as(Asn{666});
  g2.add_provider_customer(lax, hijacker2);
  const auto result2 =
      propagate(g2, {origin_at(hijacker2, OriginRole::Adversary)}, cfg);
  EXPECT_TRUE(result2.reachable(lax));
}

TEST(Propagation, ForgedOriginBypassesRovAtPathCost) {
  RoaRegistry roas;
  roas.add(Roa{kPrefix, Asn{10}, std::nullopt});

  AsGraph g;
  const NodeId enforcing = g.add_as(Asn{1});
  const NodeId hijacker = g.add_as(Asn{666});
  g.add_provider_customer(enforcing, hijacker);
  g.set_rov_enforcing(enforcing, true);

  PropagationConfig cfg;
  cfg.roas = &roas;
  // Forged-origin seed: path already ends in the authorized origin.
  const SeededRoute forged{
      hijacker, Announcement{kPrefix, {Asn{10}}, OriginRole::Adversary}};
  const auto result = propagate(g, {forged}, cfg);
  ASSERT_TRUE(result.reachable(enforcing));
  EXPECT_EQ(result.best[enforcing.value]->ann.path_string(), "666 10");
  EXPECT_EQ(result.best[enforcing.value]->ann.path_length(), 2u);
}

TEST(Propagation, LoopPreventionDropsOwnAsn) {
  // The victim never accepts the forged-origin announcement carrying its
  // own ASN.
  AsGraph g;
  const NodeId top = g.add_as(Asn{1});
  const NodeId victim = g.add_as(Asn{10});
  const NodeId hijacker = g.add_as(Asn{666});
  g.add_provider_customer(top, victim);
  g.add_provider_customer(top, hijacker);

  const SeededRoute forged{
      hijacker, Announcement{kPrefix, {Asn{10}}, OriginRole::Adversary}};
  const auto result = propagate(g, {forged}, PropagationConfig{});
  EXPECT_TRUE(result.reachable(top));
  EXPECT_FALSE(result.reachable(victim));
}

TEST(Propagation, RejectsMismatchedSeeds) {
  AsGraph g;
  const NodeId a = g.add_as(Asn{1});
  const NodeId b = g.add_as(Asn{2});
  g.add_peering(a, b);
  const SeededRoute s1{a, Announcement{kPrefix, {}, OriginRole::Victim}};
  const SeededRoute s2{
      b, Announcement{*netsim::Ipv4Prefix::parse("198.51.100.0/24"),
                      {},
                      OriginRole::Adversary}};
  EXPECT_THROW((void)propagate(g, {s1, s2}, PropagationConfig{}),
               std::invalid_argument);
  EXPECT_THROW((void)propagate(g, {}, PropagationConfig{}),
               std::invalid_argument);
}

// Structural properties over the full synthetic Internet, for several
// origin placements: every best path is loop-free and valley-free.
class PropagationProperties : public ::testing::TestWithParam<int> {};

TEST_P(PropagationProperties, PathsAreLoopFreeAndValleyFree) {
  topo::InternetConfig cfg;
  cfg.num_tier2 = 40;
  cfg.num_tier3 = 60;
  cfg.num_stub = 80;
  cfg.seed = 77;
  topo::Internet internet(cfg);
  const auto& g = internet.graph();

  const auto origin =
      internet.stubs()[static_cast<std::size_t>(GetParam()) %
                       internet.stubs().size()];
  const auto result = propagate(g, {origin_at(origin)}, PropagationConfig{});

  std::size_t reached = 0;
  for (std::uint32_t i = 0; i < g.size(); ++i) {
    const auto& best = result.best[i];
    if (!best) continue;
    ++reached;
    // Loop-free: no repeated ASN, and the local ASN is absent.
    std::set<std::uint32_t> seen;
    for (const Asn asn : best->ann.as_path) {
      EXPECT_TRUE(seen.insert(asn.value).second)
          << "repeated ASN in path " << best->ann.path_string();
    }
    EXPECT_FALSE(best->ann.path_contains(g.asn_of(NodeId{i})));
    // Every received route must terminate in the true origin (the origin
    // itself holds a Self route with an empty path).
    if (best->source != RouteSource::Self) {
      EXPECT_EQ(best->ann.origin(), g.asn_of(origin));
    } else {
      EXPECT_EQ(NodeId{i}, origin);
    }
  }
  // The origin's route reaches the overwhelming majority of a connected
  // hierarchy.
  EXPECT_GT(reached, g.size() * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Origins, PropagationProperties,
                         ::testing::Range(0, 8));

TEST(Propagation, ParallelLinksDeliverDistinctIngressPops) {
  // Cloud backbones attach the same neighbor at several POPs. Each link's
  // candidate must carry the receiver-side POP of ITS OWN link — a scan of
  // the receiver's neighbor list for the sender finds only the first link
  // and mislabels the rest.
  AsGraph g;
  const NodeId cloud = g.add_as(Asn{1});
  const NodeId edge = g.add_as(Asn{2});
  const PopId fra{10};
  const PopId sin{11};
  g.add_provider_customer(cloud, edge, /*provider_pop=*/fra,
                          /*customer_pop=*/PopId{20});
  g.add_provider_customer(cloud, edge, /*provider_pop=*/sin,
                          /*customer_pop=*/PopId{21});

  const auto result = propagate(g, {origin_at(edge)}, PropagationConfig{});
  ASSERT_TRUE(result.reachable(cloud));
  const auto& rib = result.rib_in[cloud.value];
  ASSERT_EQ(rib.size(), 2u);
  std::set<std::uint16_t> pops;
  for (const auto& cand : rib) pops.insert(cand.ingress_pop.value);
  EXPECT_EQ(pops, (std::set<std::uint16_t>{fra.value, sin.value}))
      << "both cloud-side POPs must appear, not the first one twice";

  // Down direction too: the edge hears the cloud's (non-)routes at its own
  // side of each link. Seed at the cloud instead.
  const auto down = propagate(g, {origin_at(cloud)}, PropagationConfig{});
  ASSERT_TRUE(down.reachable(edge));
  std::set<std::uint16_t> edge_pops;
  for (const auto& cand : down.rib_in[edge.value]) {
    edge_pops.insert(cand.ingress_pop.value);
  }
  EXPECT_EQ(edge_pops, (std::set<std::uint16_t>{20, 21}));
}

}  // namespace
}  // namespace marcopolo::bgp
