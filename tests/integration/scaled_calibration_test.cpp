// Integration: the single-perspective calibration (~50% of the Internet
// routes to the victim under an equally-specific hijack, DESIGN.md §2)
// must hold across topology scales, not just the ~900-AS default. This is
// the property that lets scaled campaigns reuse the paper's resilience
// bands. Runs the incremental engine, so the 50k-AS delta path is
// exercised end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bgp/delta.hpp"
#include "netsim/random.hpp"
#include "topo/internet.hpp"

namespace marcopolo {
namespace {

const netsim::Ipv4Prefix kPrefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");

/// Fraction of all ASes whose best route leads to the victim after an
/// equally-specific hijack replayed over the victim's baseline.
double victim_fraction(const bgp::DeltaPropagation& delta) {
  const auto& g = delta.graph();
  std::size_t victim_side = 0;
  for (std::uint32_t i = 0; i < g.size(); ++i) {
    const auto role = delta.role_reached(bgp::NodeId{i});
    if (role == bgp::OriginRole::Victim) ++victim_side;
  }
  return static_cast<double>(victim_side) / static_cast<double>(g.size());
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

class ScaledCalibration : public ::testing::TestWithParam<int> {};

TEST_P(ScaledCalibration, EquallySpecificHijackSplitsNearHalf) {
  const int total = GetParam();
  const topo::Internet net(topo::scaled_internet_config(total));
  const bgp::AsGraph& g = net.graph();
  ASSERT_EQ(g.size(), static_cast<std::size_t>(total));
  ASSERT_NO_THROW(g.validate());

  // Sample (victim, adversary) pairs from the stub layer — the paper's
  // victims and adversaries are edge networks — one baseline per victim,
  // several adversaries replayed over it.
  netsim::Rng rng(0x5CA1ED);
  bgp::PropagationConfig pc;
  pc.tie_break = bgp::TieBreakMode::Hashed;
  pc.tie_break_seed = 0xCAFE;
  const bgp::RouteComparator cmp(pc.tie_break, pc.tie_break_seed);

  std::vector<double> fractions;
  bgp::DeltaPropagation delta;
  for (int v = 0; v < 4; ++v) {
    const bgp::NodeId victim = net.stubs()[rng.index(net.stubs().size())];
    delta.set_victim_baseline(g, victim, kPrefix, pc);
    for (int a = 0; a < 3; ++a) {
      bgp::NodeId adversary = net.stubs()[rng.index(net.stubs().size())];
      while (adversary == victim) {
        adversary = net.stubs()[rng.index(net.stubs().size())];
      }
      delta.replay(adversary,
                   bgp::Announcement{kPrefix, {}, bgp::OriginRole::Adversary},
                   cmp);
      fractions.push_back(victim_fraction(delta));
    }
  }

  // Same acceptance band as the paper-properties single-perspective check:
  // the median split stays near one half at every scale.
  const double m = median(fractions);
  EXPECT_GE(m, 0.35) << "victim keeps too little of a " << total
                     << "-AS Internet";
  EXPECT_LE(m, 0.65) << "victim keeps too much of a " << total
                     << "-AS Internet";
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScaledCalibration,
                         ::testing::Values(600, 5000, 50000),
                         [](const auto& size_info) {
                           return "ases" + std::to_string(size_info.param);
                         });

}  // namespace
}  // namespace marcopolo
