// Integration: the calibrated qualitative invariants from the paper's
// evaluation (DESIGN.md §6), checked on the full-size default testbed.
// These are the properties a correct reproduction must exhibit regardless
// of absolute numbers.
#include <gtest/gtest.h>

#include <map>

#include "analysis/optimizer.hpp"
#include "analysis/rpki_model.hpp"
#include "marcopolo/fast_campaign.hpp"
#include "marcopolo/production_systems.hpp"

namespace marcopolo {
namespace {

struct PaperEnv {
  core::Testbed testbed;
  core::CampaignDataset data;
  analysis::ResilienceAnalyzer plain;
  analysis::ResilienceAnalyzer rpki;

  PaperEnv()
      : testbed(core::TestbedConfig{}),
        data(core::run_paper_campaigns(testbed, bgp::TieBreakMode::Hashed,
                                       0xCAFE)),
        plain(data.no_rpki),
        rpki(data.rpki) {}
};

const PaperEnv& env() {
  static PaperEnv instance;
  return instance;
}

analysis::RankedDeployment best_beam(topo::CloudProvider provider,
                                     std::size_t size, std::size_t failures,
                                     const analysis::ResilienceAnalyzer& an) {
  analysis::DeploymentOptimizer optimizer(an);
  analysis::OptimizerConfig cfg;
  cfg.set_size = size;
  cfg.max_failures = failures;
  cfg.candidates = env().testbed.perspectives_of(provider);
  cfg.strategy = analysis::SearchStrategy::Beam;
  cfg.beam_width = 48;
  return optimizer.best(cfg);
}

/// Exhaustive (6, N-2) optimum per provider, cached (it is the expensive
/// eqs. (6)-(7) search the paper's Table 2 runs).
const analysis::RankedDeployment& best_exhaustive62(
    topo::CloudProvider provider) {
  static std::map<topo::CloudProvider, analysis::RankedDeployment> cache;
  const auto it = cache.find(provider);
  if (it != cache.end()) return it->second;
  analysis::DeploymentOptimizer optimizer(env().plain);
  analysis::OptimizerConfig cfg;
  cfg.set_size = 6;
  cfg.max_failures = 2;
  cfg.candidates = env().testbed.perspectives_of(provider);
  return cache.emplace(provider, optimizer.best(cfg)).first->second;
}

TEST(PaperProperties, SinglePerspectiveResilienceNearOneHalf) {
  // Paper Table 2: (1, N) medians 50-53 across providers.
  for (const auto provider : topo::kPerspectiveProviders) {
    const auto best = best_beam(provider, 1, 0, env().plain);
    const auto s = env().plain.evaluate(best.spec);
    EXPECT_GE(s.median, 0.40) << topo::to_string_view(provider);
    EXPECT_LE(s.median, 0.65) << topo::to_string_view(provider);
    EXPECT_NEAR(s.average, 0.5, 0.12) << topo::to_string_view(provider);
  }
}

TEST(PaperProperties, OptimalMpicDeploymentsAreStrong) {
  // Paper §5.1: optimal compliant (6, N-2) deployments reach >= 87% median.
  for (const auto provider : topo::kPerspectiveProviders) {
    EXPECT_GE(best_exhaustive62(provider).score.median, 0.80)
        << topo::to_string_view(provider) << " best (6, N-2)";
  }
}

TEST(PaperProperties, ColdPotatoProviderIsWeakest) {
  // Paper §5.2: GCP (cold potato) yields the lowest optimal resilience.
  const auto& azure = best_exhaustive62(topo::CloudProvider::Azure);
  const auto& aws = best_exhaustive62(topo::CloudProvider::Aws);
  const auto& gcp = best_exhaustive62(topo::CloudProvider::Gcp);
  EXPECT_LE(gcp.score.median, aws.score.median + 1e-9);
  EXPECT_LE(gcp.score.median, azure.score.median + 1e-9);
  EXPECT_LT(gcp.score.average, std::max(aws.score.average,
                                        azure.score.average));
}

TEST(PaperProperties, ForgedOriginAttacksAreWeakerInAggregate) {
  const auto cf = core::cloudflare_spec(env().testbed);
  const auto le = core::lets_encrypt_spec(env().testbed);
  for (const auto& spec : {cf, le}) {
    EXPECT_GE(env().rpki.evaluate(spec).average,
              env().plain.evaluate(spec).average - 0.02)
        << spec.name;
  }
}

TEST(PaperProperties, RpkiModelsAreMonotone) {
  // Paper Fig. 2: none -> current -> full never hurts.
  const analysis::RpkiWeightedAnalyzer weighted(env().plain, env().rpki);
  for (const auto& spec : {core::cloudflare_spec(env().testbed),
                           core::lets_encrypt_spec(env().testbed)}) {
    const auto none = weighted.evaluate(spec, analysis::kNoRpki);
    const auto current =
        weighted.evaluate(spec, analysis::kCurrentRpkiFraction);
    const auto full = weighted.evaluate(spec, analysis::kFullRpki);
    EXPECT_GE(current.median, none.median - 1e-9) << spec.name;
    EXPECT_GE(full.median, current.median - 1e-9) << spec.name;
    EXPECT_GE(current.p25, none.p25 - 1e-9) << spec.name;
  }
}

TEST(PaperProperties, FullRpkiReachesPerfectMedian) {
  // Paper Fig. 2c: full RPKI lifts every evaluated deployment to 100.
  const analysis::RpkiWeightedAnalyzer weighted(env().plain, env().rpki);
  const auto cf = core::cloudflare_spec(env().testbed);
  EXPECT_GE(weighted.evaluate(cf, analysis::kFullRpki).median, 0.995);
}

TEST(PaperProperties, ProductionSystemsMatchPaperBand) {
  // Let's Encrypt: paper median 82; Cloudflare: 97 (no RPKI).
  const auto le = env().plain.evaluate(core::lets_encrypt_spec(env().testbed));
  EXPECT_GE(le.median, 0.70);
  EXPECT_LE(le.median, 1.0);
  const auto cf = env().plain.evaluate(core::cloudflare_spec(env().testbed));
  EXPECT_GE(cf.median, 0.90);
}

TEST(PaperProperties, SubPrefixHijackDefeatsMpic) {
  // Paper §2: MPIC does not protect against more-specific hijacks.
  core::FastCampaignConfig cfg;
  cfg.type = bgp::AttackType::SubPrefix;
  const auto store = core::run_fast_campaign(env().testbed, cfg);
  const analysis::ResilienceAnalyzer analyzer(store);
  const auto s = analyzer.evaluate(core::cloudflare_spec(env().testbed));
  EXPECT_LE(s.median, 0.05)
      << "even the strongest deployment must fall to sub-prefix hijacks";
}

TEST(PaperProperties, TieBreakBoundsBracketHashedRun) {
  // §4.4.4: R_min (AdversaryFirst) <= Hashed <= R_max (VictimFirst).
  const auto spec = core::lets_encrypt_spec(env().testbed);
  core::FastCampaignConfig worst;
  worst.tie_break = bgp::TieBreakMode::AdversaryFirst;
  core::FastCampaignConfig best;
  best.tie_break = bgp::TieBreakMode::VictimFirst;
  const auto worst_store = core::run_fast_campaign(env().testbed, worst);
  const auto best_store = core::run_fast_campaign(env().testbed, best);
  const double r_min =
      analysis::ResilienceAnalyzer(worst_store).evaluate(spec).median;
  const double r_max =
      analysis::ResilienceAnalyzer(best_store).evaluate(spec).median;
  const double hashed = env().plain.evaluate(spec).median;
  EXPECT_LE(r_min, hashed + 1e-9);
  EXPECT_LE(hashed, r_max + 1e-9);
  EXPECT_LT(r_min, r_max);
}

TEST(PaperProperties, RovDeploymentBlocksPlainHijacksAtCloudEdge) {
  // §5.4's implementation-level suggestion: perspectives behind ROV-
  // enforcing edges see no invalid (plain hijack) routes once a ROA exists.
  bgp::RoaRegistry roas;
  const auto prefix = *netsim::Ipv4Prefix::parse("203.0.113.0/24");
  const auto& sites = env().testbed.sites();
  // ROA authorizes only the victim's origin: the plain hijack is Invalid
  // and a cloud edge that filters on the registry always routes to the
  // victim.
  roas.add(bgp::Roa{prefix,
                    env().testbed.internet().graph().asn_of(sites[0].node),
                    std::nullopt});
  const bgp::ScenarioConfig sc;
  const bgp::HijackScenario scenario(env().testbed.internet().graph(),
                                     sites[0].node, sites[7].node, prefix, sc);
  for (const auto& rec : env().testbed.perspectives()) {
    EXPECT_EQ(env().testbed.perspective_outcome(rec.index, scenario, &roas),
              bgp::OriginReached::Victim);
  }
}

}  // namespace
}  // namespace marcopolo
