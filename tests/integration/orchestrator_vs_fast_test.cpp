// Integration: the full five-step orchestrated protocol (virtual network,
// DCV requests, request-log classification) must agree exactly with the
// fast campaign runner (direct scenario evaluation) — the two are the same
// measurement at different fidelity.
#include <gtest/gtest.h>

#include "marcopolo/orchestrator.hpp"
#include "testbed_fixture.hpp"

namespace marcopolo::core {
namespace {

class OrchestratorVsFast : public ::testing::Test {
 protected:
  static Testbed& testbed() {
    static Testbed tb(testing_support::small_testbed_config());
    return tb;
  }
};

TEST_F(OrchestratorVsFast, OutcomesAgreePairwise) {
  const std::vector<std::pair<SiteIndex, SiteIndex>> pairs = {
      {0, 1}, {1, 0}, {3, 17}, {8, 25}, {30, 2}, {14, 15}, {9, 31}, {22, 6}};

  OrchestratorConfig ocfg;
  ocfg.pairs = pairs;
  ocfg.seed = 0x5EED;
  ocfg.tie_break = bgp::TieBreakMode::Hashed;
  Orchestrator orchestrator(testbed(), ocfg);
  const auto orchestrated = orchestrator.run();
  ASSERT_EQ(orchestrated.stats.attacks_completed, pairs.size());

  FastCampaignConfig fcfg;
  fcfg.tie_break = bgp::TieBreakMode::Hashed;
  // The orchestrator derives its scenario seed from (seed, 0x40).
  fcfg.tie_break_seed = netsim::hash_combine(0x5EED, 0x40);
  const auto fast = run_fast_campaign(testbed(), fcfg);

  for (const auto& [v, a] : pairs) {
    for (PerspectiveIndex p = 0; p < fast.num_perspectives(); ++p) {
      EXPECT_EQ(orchestrated.results.outcome(v, a, p), fast.outcome(v, a, p))
          << "pair (" << v << "," << a << ") perspective " << p << " ("
          << testbed().perspectives()[p].region_name << ")";
    }
  }
}

TEST_F(OrchestratorVsFast, AgreementHoldsForForgedOriginAttacks) {
  const std::vector<std::pair<SiteIndex, SiteIndex>> pairs = {{2, 5},
                                                              {19, 28}};
  OrchestratorConfig ocfg;
  ocfg.pairs = pairs;
  ocfg.type = bgp::AttackType::ForgedOriginPrepend;
  ocfg.seed = 0x5EED;
  Orchestrator orchestrator(testbed(), ocfg);
  const auto orchestrated = orchestrator.run();

  FastCampaignConfig fcfg;
  fcfg.type = bgp::AttackType::ForgedOriginPrepend;
  fcfg.tie_break_seed = netsim::hash_combine(0x5EED, 0x40);
  const auto fast = run_fast_campaign(testbed(), fcfg);

  for (const auto& [v, a] : pairs) {
    for (PerspectiveIndex p = 0; p < fast.num_perspectives(); ++p) {
      EXPECT_EQ(orchestrated.results.outcome(v, a, p), fast.outcome(v, a, p));
    }
  }
}

TEST_F(OrchestratorVsFast, AgreementSurvivesLossAndRetries) {
  // Packet loss delays measurement but must never corrupt it.
  const std::vector<std::pair<SiteIndex, SiteIndex>> pairs = {{7, 23}};
  OrchestratorConfig ocfg;
  ocfg.pairs = pairs;
  ocfg.seed = 0x5EED;
  ocfg.loss = netsim::LossModel{0.03, 0.03};
  ocfg.max_attempts = 12;
  Orchestrator orchestrator(testbed(), ocfg);
  const auto orchestrated = orchestrator.run();
  ASSERT_EQ(orchestrated.stats.attacks_completed, 1u);

  FastCampaignConfig fcfg;
  fcfg.tie_break_seed = netsim::hash_combine(0x5EED, 0x40);
  const auto fast = run_fast_campaign(testbed(), fcfg);
  for (PerspectiveIndex p = 0; p < fast.num_perspectives(); ++p) {
    EXPECT_EQ(orchestrated.results.outcome(7, 23, p), fast.outcome(7, 23, p));
  }
}

}  // namespace
}  // namespace marcopolo::core
