// Robustness: the qualitative findings must not be artifacts of one
// particular synthetic Internet. Re-derive the headline invariants on
// testbeds generated from different topology seeds.
#include <gtest/gtest.h>

#include "analysis/optimizer.hpp"
#include "marcopolo/fast_campaign.hpp"
#include "marcopolo/production_systems.hpp"

namespace marcopolo {
namespace {

class TopologySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologySeedSweep, HeadlineInvariantsHold) {
  core::TestbedConfig cfg;
  cfg.internet.seed = GetParam();
  const core::Testbed testbed(cfg);
  const auto store =
      core::run_fast_campaign(testbed, core::FastCampaignConfig{});
  const analysis::ResilienceAnalyzer analyzer(store);
  analysis::DeploymentOptimizer optimizer(analyzer);

  // 1. Single-perspective resilience is near a coin flip on every seed.
  for (const auto provider : topo::kPerspectiveProviders) {
    analysis::OptimizerConfig single;
    single.set_size = 1;
    single.max_failures = 0;
    single.candidates = testbed.perspectives_of(provider);
    const auto best = optimizer.best(single);
    EXPECT_GE(best.score.median, 0.35)
        << topo::to_string_view(provider) << " seed " << GetParam();
    EXPECT_LE(best.score.median, 0.70)
        << topo::to_string_view(provider) << " seed " << GetParam();
  }

  // 2. A compliant multi-perspective deployment beats any single
  //    perspective by a wide margin (beam lower bound).
  analysis::OptimizerConfig six;
  six.set_size = 6;
  six.max_failures = 2;
  six.candidates = testbed.perspectives_of(topo::CloudProvider::Azure);
  six.strategy = analysis::SearchStrategy::Beam;
  six.beam_width = 48;
  const auto best6 = optimizer.best(six);
  EXPECT_GE(best6.score.median, 0.72) << "seed " << GetParam();

  // 3. The production-style systems stay in a sane band.
  const auto cf = analyzer.evaluate(core::cloudflare_spec(testbed));
  EXPECT_GE(cf.median, 0.85) << "seed " << GetParam();
  const auto le = analyzer.evaluate(core::lets_encrypt_spec(testbed));
  EXPECT_GE(le.median, 0.60) << "seed " << GetParam();

  // 4. Forged-origin attacks capture strictly less in aggregate.
  core::FastCampaignConfig forged;
  forged.type = bgp::AttackType::ForgedOriginPrepend;
  const auto forged_store = core::run_fast_campaign(testbed, forged);
  std::size_t plain_hits = 0;
  std::size_t forged_hits = 0;
  for (core::SiteIndex v = 0; v < store.num_sites(); ++v) {
    for (core::SiteIndex a = 0; a < store.num_sites(); ++a) {
      if (v == a) continue;
      for (core::PerspectiveIndex p = 0; p < store.num_perspectives(); ++p) {
        plain_hits += store.hijacked(v, a, p) ? 1 : 0;
        forged_hits += forged_store.hijacked(v, a, p) ? 1 : 0;
      }
    }
  }
  EXPECT_LT(forged_hits, plain_hits) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologySeedSweep,
                         ::testing::Values(42u, 1337u, 20260704u));

}  // namespace
}  // namespace marcopolo
