// Shared testbed fixtures for core/analysis/integration tests.
//
// Building a testbed and running a campaign is the expensive part of these
// tests, so suites share one lazily-built instance (tests must treat it as
// read-only).
#pragma once

#include "marcopolo/fast_campaign.hpp"
#include "marcopolo/testbed.hpp"

namespace marcopolo::testing_support {

/// A reduced synthetic Internet: same structure, ~3x fewer ASes.
inline core::TestbedConfig small_testbed_config() {
  core::TestbedConfig cfg;
  cfg.internet.num_tier1 = 8;
  cfg.internet.num_tier2 = 40;
  cfg.internet.num_tier3 = 60;
  cfg.internet.num_stub = 80;
  return cfg;
}

inline const core::Testbed& shared_testbed() {
  static core::Testbed testbed(small_testbed_config());
  return testbed;
}

inline const core::CampaignDataset& shared_dataset() {
  static core::CampaignDataset dataset = core::run_paper_campaigns(
      shared_testbed(), bgp::TieBreakMode::Hashed, 0xCAFE);
  return dataset;
}

}  // namespace marcopolo::testing_support
