#include "cost/model.hpp"

#include <gtest/gtest.h>

namespace marcopolo::cost {
namespace {

TEST(CostModel, ZeroShapeCostsNothing) {
  const CostModel model;
  const auto bill = model.estimate(ExperimentShape{});
  EXPECT_DOUBLE_EQ(bill.total_usd, 0.0);
  ASSERT_EQ(bill.lines.size(), 4u);
  for (const auto& line : bill.lines) EXPECT_DOUBLE_EQ(line.usd, 0.0);
}

TEST(CostModel, LinesCoverAllProviders) {
  const CostModel model;
  ExperimentShape shape;
  shape.provisioned = netsim::hours(24);
  shape.aws_nodes = 27;
  shape.azure_nodes = 39;
  shape.gcp_nodes = 40;
  shape.vultr_nodes = 32;
  shape.aws_api_calls = 1000;
  const auto bill = model.estimate(shape);
  ASSERT_EQ(bill.lines.size(), 4u);
  EXPECT_EQ(bill.lines[0].provider, "AWS");
  EXPECT_EQ(bill.lines[1].provider, "Azure");
  EXPECT_EQ(bill.lines[2].provider, "GCP");
  EXPECT_EQ(bill.lines[3].provider, "Vultr");
  EXPECT_EQ(bill.lines[0].node_count, 27u);
  EXPECT_EQ(bill.lines[3].node_count, 32u);
}

TEST(CostModel, VmCostScalesWithDurationAndNodes) {
  const CostModel model;
  ExperimentShape one_day;
  one_day.provisioned = netsim::hours(24);
  one_day.azure_nodes = 10;
  ExperimentShape two_days = one_day;
  two_days.provisioned = netsim::hours(48);
  const double c1 = model.estimate(one_day).total_usd;
  const double c2 = model.estimate(two_days).total_usd;
  EXPECT_NEAR(c2, 2.0 * c1, 0.02);

  ExperimentShape more_nodes = one_day;
  more_nodes.azure_nodes = 20;
  EXPECT_NEAR(model.estimate(more_nodes).total_usd, 2.0 * c1, 0.02);
}

TEST(CostModel, AwsBilledPerApiCallOnly) {
  // Paper Appendix D: Lambda rides the free tier; only API Gateway bills.
  const CostModel model;
  ExperimentShape shape;
  shape.provisioned = netsim::hours(24 * 30);
  shape.aws_nodes = 27;  // nodes alone cost nothing
  EXPECT_DOUBLE_EQ(model.estimate(shape).total_usd, 0.0);
  shape.aws_api_calls = 10'000'000;
  EXPECT_NEAR(model.estimate(shape).total_usd, 35.0, 0.5);
}

TEST(CostModel, CatalogOverridesApply) {
  PriceCatalog catalog;
  catalog.vultr_vc2_monthly = 100.0;
  const CostModel model(catalog);
  ExperimentShape shape;
  shape.provisioned = netsim::hours(30 * 24);  // exactly one month
  shape.vultr_nodes = 2;
  EXPECT_NEAR(model.estimate(shape).total_usd, 200.0, 0.5);
}

TEST(CostModel, TotalIsSumOfLines) {
  const CostModel model;
  ExperimentShape shape;
  shape.provisioned = netsim::hours(100);
  shape.aws_nodes = 27;
  shape.azure_nodes = 39;
  shape.gcp_nodes = 40;
  shape.vultr_nodes = 32;
  shape.aws_api_calls = 236096;
  const auto bill = model.estimate(shape);
  double sum = 0.0;
  for (const auto& line : bill.lines) sum += line.usd;
  EXPECT_NEAR(bill.total_usd, sum, 1e-9);
  // The paper's cost ordering: Azure > GCP > Vultr > AWS.
  EXPECT_GT(bill.lines[1].usd, bill.lines[2].usd);
  EXPECT_GT(bill.lines[2].usd, bill.lines[0].usd);
}

}  // namespace
}  // namespace marcopolo::cost
