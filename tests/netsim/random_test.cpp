#include "netsim/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace marcopolo::netsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = Rng(7).fork(1);
  EXPECT_EQ(c1.next(), c1_again.next());
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, ForkDoesNotDisturbParentStream) {
  Rng a(9);
  Rng b(9);
  (void)a.fork(5);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, IndexCoversDomain) {
  Rng rng(4);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, IndexOfEmptyDomainThrows) {
  // index(0) used to wrap to SIZE_MAX (bound - 1 underflow) and return
  // garbage indices; an empty domain is a caller bug and must be loud.
  Rng rng(4);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(SplitMix, StableHashValues) {
  // Regression anchors: these must never change across refactors, or every
  // seeded campaign dataset silently shifts.
  EXPECT_EQ(splitmix64(0), 16294208416658607535ULL);
  EXPECT_EQ(splitmix64(1), 10451216379200822465ULL);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace marcopolo::netsim
