#include "netsim/geo.hpp"

#include <gtest/gtest.h>

namespace marcopolo::netsim {
namespace {

constexpr GeoPoint kNewYork{40.71, -74.01};
constexpr GeoPoint kLondon{51.51, -0.13};
constexpr GeoPoint kTokyo{35.68, 139.69};
constexpr GeoPoint kSydney{-33.87, 151.21};

TEST(Geo, ZeroDistanceToSelf) {
  EXPECT_DOUBLE_EQ(great_circle_km(kTokyo, kTokyo), 0.0);
}

TEST(Geo, KnownDistances) {
  // NYC-London ~5570 km; Tokyo-Sydney ~7820 km (city-center approximations).
  EXPECT_NEAR(great_circle_km(kNewYork, kLondon), 5570.0, 120.0);
  EXPECT_NEAR(great_circle_km(kTokyo, kSydney), 7820.0, 150.0);
}

TEST(Geo, Symmetry) {
  EXPECT_DOUBLE_EQ(great_circle_km(kNewYork, kTokyo),
                   great_circle_km(kTokyo, kNewYork));
}

TEST(Geo, AntipodalIsBounded) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(great_circle_km(a, b), 20015.0, 10.0);  // half circumference
}

TEST(Geo, LatencyIncludesFixedOverhead) {
  EXPECT_GE(propagation_latency(0.0), milliseconds(2));
}

TEST(Geo, LatencyMonotoneInDistance) {
  EXPECT_LT(propagation_latency(100.0), propagation_latency(1000.0));
  EXPECT_LT(propagation_latency(1000.0), propagation_latency(10000.0));
}

TEST(Geo, TransatlanticLatencyRealistic) {
  // ~5570 km * 1.4 stretch / 200 km/ms ~ 39 ms one-way + overhead.
  const Duration d = latency_between(kNewYork, kLondon);
  EXPECT_GT(d, milliseconds(30));
  EXPECT_LT(d, milliseconds(60));
}

}  // namespace
}  // namespace marcopolo::netsim
