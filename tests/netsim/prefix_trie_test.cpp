#include "netsim/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <map>

#include "netsim/random.hpp"

namespace marcopolo::netsim {
namespace {

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  const auto p = *Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(trie.insert(p, 42));
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(p), nullptr);
  EXPECT_EQ(*trie.find(p), 42);
  EXPECT_FALSE(trie.insert(p, 43));  // overwrite, not insert
  EXPECT_EQ(*trie.find(p), 43);
  EXPECT_TRUE(trie.erase(p));
  EXPECT_FALSE(trie.erase(p));
  EXPECT_EQ(trie.find(p), nullptr);
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, ExactMatchDistinguishesLengths) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/16"), 16);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/24"), 24);
  EXPECT_EQ(*trie.find(*Ipv4Prefix::parse("10.0.0.0/16")), 16);
  EXPECT_EQ(trie.find(*Ipv4Prefix::parse("10.0.0.0/12")), nullptr);
}

TEST(PrefixTrie, LongestMatchPrefersMoreSpecific) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("0.0.0.0/0"), 0);
  trie.insert(*Ipv4Prefix::parse("203.0.113.0/24"), 24);
  trie.insert(*Ipv4Prefix::parse("203.0.113.128/25"), 25);

  const auto m1 = trie.longest_match(Ipv4Addr(203, 0, 113, 200));
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(*m1->value, 25);
  EXPECT_EQ(m1->prefix.to_string(), "203.0.113.128/25");

  const auto m2 = trie.longest_match(Ipv4Addr(203, 0, 113, 5));
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(*m2->value, 24);

  const auto m3 = trie.longest_match(Ipv4Addr(8, 8, 8, 8));
  ASSERT_TRUE(m3.has_value());
  EXPECT_EQ(*m3->value, 0);
}

TEST(PrefixTrie, NoMatchWithoutDefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_FALSE(trie.longest_match(Ipv4Addr(11, 0, 0, 1)).has_value());
}

TEST(PrefixTrie, SlashThirtyTwoEntries) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("1.2.3.4/32"), 7);
  EXPECT_TRUE(trie.longest_match(Ipv4Addr(1, 2, 3, 4)).has_value());
  EXPECT_FALSE(trie.longest_match(Ipv4Addr(1, 2, 3, 5)).has_value());
}

TEST(PrefixTrie, ForEachCoveringOrderedBySpecificity) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("0.0.0.0/0"), 0);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 16);
  std::vector<int> seen;
  trie.for_each_covering(Ipv4Addr(10, 1, 2, 3),
                         [&](const Ipv4Prefix&, const int& v) {
                           seen.push_back(v);
                         });
  EXPECT_EQ(seen, (std::vector<int>{0, 8, 16}));
}

TEST(PrefixTrie, ForEachVisitsAll) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("192.168.0.0/16"), 2);
  trie.insert(*Ipv4Prefix::parse("0.0.0.0/0"), 3);
  std::size_t count = 0;
  int sum = 0;
  trie.for_each([&](const Ipv4Prefix&, const int& v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(sum, 6);
}

// Property test: trie longest-prefix match agrees with a naive reference
// over random prefix sets, across several seeds.
class TrieVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieVsReference, RandomizedAgreement) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::map<Ipv4Prefix, int> reference;

  for (int i = 0; i < 400; ++i) {
    const Ipv4Prefix p(Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                       static_cast<std::uint8_t>(rng.index(33)));
    trie.insert(p, i);
    reference[p] = i;
  }
  // Random erasures.
  for (int i = 0; i < 60; ++i) {
    if (reference.empty()) break;
    auto it = reference.begin();
    std::advance(it, static_cast<long>(rng.index(reference.size())));
    EXPECT_TRUE(trie.erase(it->first));
    reference.erase(it);
  }
  EXPECT_EQ(trie.size(), reference.size());

  for (int probe = 0; probe < 1000; ++probe) {
    const Ipv4Addr addr(static_cast<std::uint32_t>(rng.next()));
    // Naive reference LPM.
    const Ipv4Prefix* best = nullptr;
    int best_value = -1;
    for (const auto& [prefix, value] : reference) {
      if (prefix.contains(addr) &&
          (best == nullptr || prefix.length() > best->length())) {
        best = &prefix;
        best_value = value;
      }
    }
    const auto got = trie.longest_match(addr);
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->prefix, *best);
      EXPECT_EQ(*got->value, best_value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsReference,
                         ::testing::Values(1u, 2u, 3u, 42u, 0xFEEDu));

}  // namespace
}  // namespace marcopolo::netsim
