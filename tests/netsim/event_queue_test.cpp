#include "netsim/event_queue.hpp"

#include <gtest/gtest.h>

namespace marcopolo::netsim {
namespace {

TEST(Simulator, StartsAtEpoch) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kEpoch);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ProcessesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(kEpoch + seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(kEpoch + seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(kEpoch + seconds(2), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), kEpoch + seconds(3));
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(kEpoch + seconds(5), [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterAdvancesRelativeToNow) {
  Simulator sim;
  TimePoint fired{};
  sim.schedule_after(seconds(2), [&] {
    sim.schedule_after(seconds(3), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, kEpoch + seconds(5));
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  bool late_ran = false;
  sim.schedule_at(kEpoch + seconds(10), [&] {
    // Scheduling in the past runs "next", not backwards in time.
    sim.schedule_at(kEpoch + seconds(1), [&] {
      late_ran = true;
      EXPECT_EQ(sim.now(), kEpoch + seconds(10));
    });
  });
  sim.run();
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(kEpoch + seconds(i), [&] { ++count; });
  }
  EXPECT_EQ(sim.run_until(kEpoch + seconds(3)), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), kEpoch + seconds(3));
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(count, 5);
}

TEST(Simulator, RunUntilAdvancesTimeOnEmptyQueue) {
  Simulator sim;
  sim.run_until(kEpoch + minutes(5));
  EXPECT_EQ(sim.now(), kEpoch + minutes(5));
}

TEST(Simulator, StepProcessesOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_after(seconds(1), [&] { ++count; });
  sim.schedule_after(seconds(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ReentrantSchedulingCascades) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(milliseconds(1), recurse);
  };
  sim.schedule_after(milliseconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.processed(), 100u);
}

}  // namespace
}  // namespace marcopolo::netsim
