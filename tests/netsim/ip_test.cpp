#include "netsim/ip.hpp"

#include <gtest/gtest.h>

namespace marcopolo::netsim {
namespace {

TEST(Ipv4Addr, ParsesDottedQuad) {
  const auto a = Ipv4Addr::parse("203.0.113.7");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xCB007107u);
}

TEST(Ipv4Addr, ParsesBoundaries) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Addr, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4x"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse(" 1.2.3.4"));
}

TEST(Ipv4Addr, FormatRoundtrip) {
  for (const char* text : {"0.0.0.0", "10.1.2.3", "192.168.254.1",
                           "255.255.255.255", "100.64.0.1"}) {
    const auto a = Ipv4Addr::parse(text);
    ASSERT_TRUE(a.has_value()) << text;
    EXPECT_EQ(a->to_string(), text);
  }
}

TEST(Ipv4Addr, OrderingAndEquality) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4), *Ipv4Addr::parse("1.2.3.4"));
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix p(Ipv4Addr(192, 168, 1, 200), 24);
  EXPECT_EQ(p.network(), Ipv4Addr(192, 168, 1, 0));
  EXPECT_EQ(p.to_string(), "192.168.1.0/24");
}

TEST(Ipv4Prefix, RejectsBadLength) {
  EXPECT_THROW(Ipv4Prefix(Ipv4Addr(1, 2, 3, 4), 33), std::invalid_argument);
}

TEST(Ipv4Prefix, ParseAndFormat) {
  const auto p = Ipv4Prefix::parse("203.0.113.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 24);
  EXPECT_EQ(p->to_string(), "203.0.113.0/24");
  EXPECT_FALSE(Ipv4Prefix::parse("203.0.113.0"));
  EXPECT_FALSE(Ipv4Prefix::parse("203.0.113.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("203.0.113.0/"));
  EXPECT_FALSE(Ipv4Prefix::parse("bogus/8"));
}

TEST(Ipv4Prefix, ZeroLengthCoversEverything) {
  const Ipv4Prefix all(Ipv4Addr(0, 0, 0, 0), 0);
  EXPECT_TRUE(all.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_TRUE(all.contains(Ipv4Addr(0, 0, 0, 0)));
  EXPECT_EQ(all.mask(), 0u);
}

TEST(Ipv4Prefix, ContainsAndCovers) {
  const auto p24 = *Ipv4Prefix::parse("203.0.113.0/24");
  const auto p25 = *Ipv4Prefix::parse("203.0.113.128/25");
  EXPECT_TRUE(p24.contains(Ipv4Addr(203, 0, 113, 129)));
  EXPECT_FALSE(p24.contains(Ipv4Addr(203, 0, 114, 1)));
  EXPECT_TRUE(p24.covers(p25));
  EXPECT_FALSE(p25.covers(p24));
  EXPECT_TRUE(p24.covers(p24));
}

TEST(Ipv4Prefix, SplitHalves) {
  const auto p24 = *Ipv4Prefix::parse("203.0.113.0/24");
  const auto [lower, upper] = p24.split();
  EXPECT_EQ(lower.to_string(), "203.0.113.0/25");
  EXPECT_EQ(upper.to_string(), "203.0.113.128/25");
  EXPECT_TRUE(p24.covers(lower));
  EXPECT_TRUE(p24.covers(upper));
  EXPECT_THROW((void)Ipv4Prefix(Ipv4Addr(1, 1, 1, 1), 32).split(),
               std::logic_error);
}

TEST(Ipv4Prefix, AddressAtAndSize) {
  const auto p30 = *Ipv4Prefix::parse("10.0.0.0/30");
  EXPECT_EQ(p30.size(), 4u);
  EXPECT_EQ(p30.address_at(1), Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(p30.address_at(3), Ipv4Addr(10, 0, 0, 3));
  EXPECT_THROW((void)p30.address_at(4), std::out_of_range);
}

// Property sweep: canonicalization is idempotent and contains() agrees with
// mask arithmetic for every length.
class PrefixLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixLengthSweep, MaskConsistency) {
  const auto len = static_cast<std::uint8_t>(GetParam());
  const Ipv4Prefix p(Ipv4Addr(0xDEADBEEF), len);
  // Canonical: network has no host bits.
  EXPECT_EQ(p.network().value() & ~p.mask(), 0u);
  // Idempotent.
  const Ipv4Prefix q(p.network(), len);
  EXPECT_EQ(p, q);
  // contains agrees with mask math on a probe.
  const Ipv4Addr probe(0xDEADBEEF ^ 0x1234u);
  EXPECT_EQ(p.contains(probe),
            (probe.value() & p.mask()) == p.network().value());
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixLengthSweep,
                         ::testing::Range(0, 33));

}  // namespace
}  // namespace marcopolo::netsim
