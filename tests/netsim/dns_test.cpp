#include "netsim/dns.hpp"

#include <gtest/gtest.h>

namespace marcopolo::netsim {
namespace {

TEST(Dns, ExactResolution) {
  DnsTable dns;
  dns.add("victim.example", Ipv4Addr(10, 0, 0, 1));
  const auto got = dns.resolve("victim.example");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Ipv4Addr(10, 0, 0, 1));
  EXPECT_FALSE(dns.resolve("other.example").has_value());
}

TEST(Dns, WildcardMatchesSubdomains) {
  DnsTable dns;
  dns.add_wildcard("lane0.test", Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(*dns.resolve("abc123.lane0.test"), Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(*dns.resolve("a.b.lane0.test"), Ipv4Addr(10, 0, 0, 2));
  // The zone apex itself is not covered by the wildcard.
  EXPECT_FALSE(dns.resolve("lane0.test").has_value());
}

TEST(Dns, ExactBeatsWildcard) {
  DnsTable dns;
  dns.add_wildcard("zone.test", Ipv4Addr(1, 1, 1, 1));
  dns.add("special.zone.test", Ipv4Addr(2, 2, 2, 2));
  EXPECT_EQ(*dns.resolve("special.zone.test"), Ipv4Addr(2, 2, 2, 2));
  EXPECT_EQ(*dns.resolve("other.zone.test"), Ipv4Addr(1, 1, 1, 1));
}

TEST(Dns, OverwriteUpdatesAddress) {
  DnsTable dns;
  dns.add("a.test", Ipv4Addr(1, 0, 0, 1));
  dns.add("a.test", Ipv4Addr(1, 0, 0, 2));
  EXPECT_EQ(*dns.resolve("a.test"), Ipv4Addr(1, 0, 0, 2));
}

TEST(Dns, RemoveDeletesBothKinds) {
  DnsTable dns;
  dns.add("a.test", Ipv4Addr(1, 0, 0, 1));
  dns.add_wildcard("a.test", Ipv4Addr(1, 0, 0, 1));
  EXPECT_EQ(dns.size(), 2u);
  dns.remove("a.test");
  EXPECT_EQ(dns.size(), 0u);
  EXPECT_FALSE(dns.resolve("x.a.test").has_value());
}

TEST(Dns, RandomizedSubdomainsAllResolve) {
  // The paper's cache-busting pattern: every fresh label must resolve.
  DnsTable dns;
  dns.add_wildcard("victim.example", Ipv4Addr(10, 9, 8, 7));
  for (const char* label : {"a1b2", "deadbeef", "xyz", "0f0f0f0f0f"}) {
    EXPECT_EQ(*dns.resolve(std::string(label) + ".victim.example"),
              Ipv4Addr(10, 9, 8, 7));
  }
}

}  // namespace
}  // namespace marcopolo::netsim
