#include "netsim/network.hpp"

#include <gtest/gtest.h>

namespace marcopolo::netsim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  Simulator sim;
  Network net{sim, /*loss_seed=*/1};
};

TEST_F(NetworkTest, RequestResponseRoundtrip) {
  const auto server = net.attach(Ipv4Addr(10, 0, 0, 1), {51.5, -0.1},
                                 [](const HttpRequest& req) {
                                   EXPECT_EQ(req.path, "/hello");
                                   return HttpResponse::text("world");
                                 });
  (void)server;
  const auto client = net.attach(Ipv4Addr(10, 0, 0, 2), {40.7, -74.0},
                                 [](const HttpRequest&) {
                                   return HttpResponse::not_found();
                                 });
  bool got = false;
  net.send(client, Ipv4Addr(10, 0, 0, 1), HttpRequest{"GET", "h", "/hello",
                                                      {}, "", {}},
           [&](std::optional<HttpResponse> resp) {
             ASSERT_TRUE(resp.has_value());
             EXPECT_EQ(resp->body, "world");
             EXPECT_TRUE(resp->ok());
             got = true;
           });
  sim.run();
  EXPECT_TRUE(got);
}

TEST_F(NetworkTest, ServerSeesClientSourceAddress) {
  Ipv4Addr seen{};
  net.attach(Ipv4Addr(10, 0, 0, 1), {}, [&](const HttpRequest& req) {
    seen = req.source;
    return HttpResponse::text("ok");
  });
  const auto client =
      net.attach(Ipv4Addr(10, 9, 9, 9), {}, [](const HttpRequest&) {
        return HttpResponse::not_found();
      });
  net.send(client, Ipv4Addr(10, 0, 0, 1), HttpRequest{},
           [](std::optional<HttpResponse>) {});
  sim.run();
  EXPECT_EQ(seen, Ipv4Addr(10, 9, 9, 9));
}

TEST_F(NetworkTest, UnknownDestinationReportsFailure) {
  const auto client = net.attach(Ipv4Addr(10, 0, 0, 2), {},
                                 [](const HttpRequest&) {
                                   return HttpResponse::not_found();
                                 });
  bool failed = false;
  net.send(client, Ipv4Addr(99, 99, 99, 99), HttpRequest{},
           [&](std::optional<HttpResponse> resp) {
             EXPECT_FALSE(resp.has_value());
             failed = true;
           });
  sim.run();
  EXPECT_TRUE(failed);
}

TEST_F(NetworkTest, LatencyScalesWithDistance) {
  net.attach(Ipv4Addr(10, 0, 0, 1), {35.68, 139.69},  // Tokyo server
             [](const HttpRequest&) { return HttpResponse::text("x"); });
  const auto near_client = net.attach(Ipv4Addr(10, 0, 0, 2), {34.69, 135.50},
                                      [](const HttpRequest&) {
                                        return HttpResponse::not_found();
                                      });
  const auto far_client = net.attach(Ipv4Addr(10, 0, 0, 3), {40.71, -74.01},
                                     [](const HttpRequest&) {
                                       return HttpResponse::not_found();
                                     });
  TimePoint near_done{};
  TimePoint far_done{};
  net.send(near_client, Ipv4Addr(10, 0, 0, 1), HttpRequest{},
           [&](std::optional<HttpResponse>) { near_done = sim.now(); });
  net.send(far_client, Ipv4Addr(10, 0, 0, 1), HttpRequest{},
           [&](std::optional<HttpResponse>) { far_done = sim.now(); });
  sim.run();
  EXPECT_LT(near_done - kEpoch, far_done - kEpoch);
}

TEST_F(NetworkTest, FullRequestLossTimesOut) {
  net.set_loss_model(LossModel{1.0, 0.0});
  net.set_timeout(seconds(5));
  net.attach(Ipv4Addr(10, 0, 0, 1), {},
             [](const HttpRequest&) { return HttpResponse::text("x"); });
  const auto client = net.attach(Ipv4Addr(10, 0, 0, 2), {},
                                 [](const HttpRequest&) {
                                   return HttpResponse::not_found();
                                 });
  bool failed = false;
  net.send(client, Ipv4Addr(10, 0, 0, 1), HttpRequest{},
           [&](std::optional<HttpResponse> resp) {
             EXPECT_FALSE(resp.has_value());
             failed = true;
           });
  sim.run();
  EXPECT_TRUE(failed);
  EXPECT_GE(sim.now() - kEpoch, seconds(5));
}

TEST_F(NetworkTest, ResponseLossStillReachesServer) {
  net.set_loss_model(LossModel{0.0, 1.0});
  int server_hits = 0;
  net.attach(Ipv4Addr(10, 0, 0, 1), {}, [&](const HttpRequest&) {
    ++server_hits;
    return HttpResponse::text("x");
  });
  const auto client = net.attach(Ipv4Addr(10, 0, 0, 2), {},
                                 [](const HttpRequest&) {
                                   return HttpResponse::not_found();
                                 });
  bool failed = false;
  net.send(client, Ipv4Addr(10, 0, 0, 1), HttpRequest{},
           [&](std::optional<HttpResponse> resp) {
             failed = !resp.has_value();
           });
  sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(server_hits, 1);  // the request arrived; only the reply vanished
}

// A plane that reroutes one address to a chosen endpoint — the shape the
// attack plane uses.
class PinnedPlane final : public ForwardingPlane {
 public:
  Ipv4Addr target;
  EndpointId destination;
  EndpointId fallback;
  [[nodiscard]] EndpointId resolve(EndpointId, Ipv4Addr dst) const override {
    return dst == target ? destination : fallback;
  }
};

TEST_F(NetworkTest, ForwardingPlaneOverridesOwnership) {
  const auto legit = net.attach(Ipv4Addr(10, 0, 0, 1), {},
                                [](const HttpRequest&) {
                                  return HttpResponse::text("legit");
                                });
  const auto hijacker = net.attach(Ipv4Addr(10, 0, 0, 1), {},
                                   [](const HttpRequest&) {
                                     return HttpResponse::text("hijacked");
                                   });
  (void)legit;
  const auto client = net.attach(Ipv4Addr(10, 0, 0, 2), {},
                                 [](const HttpRequest&) {
                                   return HttpResponse::not_found();
                                 });
  PinnedPlane plane;
  plane.target = Ipv4Addr(10, 0, 0, 1);
  plane.destination = hijacker;
  net.set_forwarding_plane(&plane);

  std::string body;
  net.send(client, Ipv4Addr(10, 0, 0, 1), HttpRequest{},
           [&](std::optional<HttpResponse> resp) { body = resp->body; });
  sim.run();
  EXPECT_EQ(body, "hijacked");

  // Restoring default forwarding reaches the first owner again.
  net.set_forwarding_plane(nullptr);
  net.send(client, Ipv4Addr(10, 0, 0, 1), HttpRequest{},
           [&](std::optional<HttpResponse> resp) { body = resp->body; });
  sim.run();
  EXPECT_EQ(body, "legit");
}

TEST_F(NetworkTest, HandlerSwapAffectsInFlightDelivery) {
  const auto server = net.attach(Ipv4Addr(10, 0, 0, 1), {},
                                 [](const HttpRequest&) {
                                   return HttpResponse::text("old");
                                 });
  const auto client = net.attach(Ipv4Addr(10, 0, 0, 2), {},
                                 [](const HttpRequest&) {
                                   return HttpResponse::not_found();
                                 });
  std::string body;
  net.send(client, Ipv4Addr(10, 0, 0, 1), HttpRequest{},
           [&](std::optional<HttpResponse> resp) { body = resp->body; });
  // Swap before the request delivers: handler lookup happens at delivery.
  net.set_handler(server, [](const HttpRequest&) {
    return HttpResponse::text("new");
  });
  sim.run();
  EXPECT_EQ(body, "new");
}

}  // namespace
}  // namespace marcopolo::netsim
