#include "mpic/certbot_client.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dcv/webserver.hpp"

namespace marcopolo::mpic {
namespace {

class CertbotClientTest : public ::testing::Test {
 protected:
  CertbotClientTest() {
    dns.add_wildcard("victim.test", netsim::Ipv4Addr(10, 0, 0, 1));
    dns.add("victim.test", netsim::Ipv4Addr(10, 0, 0, 1));
    store = std::make_shared<dcv::TokenStore>();
    server = std::make_unique<dcv::SimWebServer>(
        net, netsim::Ipv4Addr(10, 0, 0, 1), netsim::GeoPoint{}, "victim");
    server->set_fallback(store);
    primary = std::make_unique<dcv::PerspectiveAgent>(
        net, dns, netsim::Ipv4Addr(10, 1, 0, 1), netsim::GeoPoint{},
        "primary");
    for (int i = 0; i < 4; ++i) {
      remotes.push_back(std::make_unique<dcv::PerspectiveAgent>(
          net, dns,
          netsim::Ipv4Addr(10, 1, 1, static_cast<std::uint8_t>(i + 1)),
          netsim::GeoPoint{}, "remote" + std::to_string(i)));
    }
    std::vector<dcv::PerspectiveAgent*> remote_ptrs;
    for (const auto& r : remotes) remote_ptrs.push_back(r.get());
    AcmeCaConfig cfg;
    cfg.policy = QuorumPolicy(4, 1, true);
    ca = std::make_unique<AcmeCa>(sim, primary.get(), remote_ptrs, cfg);
  }

  netsim::Simulator sim;
  netsim::Network net{sim, 1};
  netsim::DnsTable dns;
  std::shared_ptr<dcv::TokenStore> store;
  std::unique_ptr<dcv::SimWebServer> server;
  std::unique_ptr<dcv::PerspectiveAgent> primary;
  std::vector<std::unique_ptr<dcv::PerspectiveAgent>> remotes;
  std::unique_ptr<AcmeCa> ca;
};

TEST_F(CertbotClientTest, RandomizedSubdomainsAreFreshEachRequest) {
  CertbotClient client(*ca, *store, "victim.test", 11);
  std::set<std::string> domains;
  for (int i = 0; i < 5; ++i) {
    CertbotClient::Attempt attempt;
    client.request([&](CertbotClient::Attempt a) { attempt = std::move(a); });
    sim.run();
    EXPECT_EQ(attempt.result.status, OrderStatus::Ready);
    EXPECT_FALSE(attempt.result.from_cached_authorization);
    EXPECT_FALSE(attempt.finalized);
    EXPECT_NE(attempt.domain, "victim.test");
    EXPECT_TRUE(attempt.domain.ends_with(".victim.test"));
    EXPECT_TRUE(domains.insert(attempt.domain).second)
        << "randomized subdomains must not repeat";
  }
}

TEST_F(CertbotClientTest, FixedDomainHitsAuthorizationCache) {
  CertbotClient client(*ca, *store, "victim.test", 11);
  CertbotClient::Attempt first;
  client.request([&](CertbotClient::Attempt a) { first = std::move(a); },
                 /*randomize_subdomain=*/false);
  sim.run();
  ASSERT_EQ(first.result.status, OrderStatus::Ready);
  EXPECT_FALSE(first.result.from_cached_authorization);

  CertbotClient::Attempt second;
  client.request([&](CertbotClient::Attempt a) { second = std::move(a); },
                 /*randomize_subdomain=*/false);
  sim.run();
  EXPECT_TRUE(second.result.from_cached_authorization)
      << "without randomization the CA reuses the valid authorization";
}

TEST_F(CertbotClientTest, PublishesTokenToCentralStore) {
  CertbotClient client(*ca, *store, "victim.test", 11);
  client.request([](CertbotClient::Attempt) {});
  // Immediately after the synchronous publish, before validation finishes,
  // the token is in the store.
  EXPECT_GE(store->size(), 1u);
  sim.run();
}

TEST_F(CertbotClientTest, NeverFinalizesInStaging) {
  CertbotClient client(*ca, *store, "victim.test", 11);
  CertbotClient::Attempt attempt;
  client.request([&](CertbotClient::Attempt a) { attempt = std::move(a); });
  sim.run();
  EXPECT_FALSE(attempt.finalized);
  EXPECT_FALSE(ca->finalize(attempt.domain));
}

}  // namespace
}  // namespace marcopolo::mpic
