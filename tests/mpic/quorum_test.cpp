#include "mpic/quorum.hpp"

#include <gtest/gtest.h>

namespace marcopolo::mpic {
namespace {

TEST(Quorum, RequiredSuccesses) {
  EXPECT_EQ(QuorumPolicy(5, 1).required(), 4u);
  EXPECT_EQ(QuorumPolicy(6, 2).required(), 4u);
  EXPECT_EQ(QuorumPolicy(8, 0).required(), 8u);
  EXPECT_EQ(QuorumPolicy(1, 0).required(), 1u);
}

TEST(Quorum, RejectsAllowAllFailures) {
  EXPECT_THROW(QuorumPolicy(3, 3), std::invalid_argument);
  EXPECT_THROW(QuorumPolicy(3, 5), std::invalid_argument);
}

TEST(Quorum, CabMinimumFollowsBallot) {
  // SC-067: Y=1 for 2-5 remotes, Y=2 for 6+.
  EXPECT_EQ(QuorumPolicy::cab_minimum(2).max_failures, 1u);
  EXPECT_EQ(QuorumPolicy::cab_minimum(5).max_failures, 1u);
  EXPECT_EQ(QuorumPolicy::cab_minimum(6).max_failures, 2u);
  EXPECT_EQ(QuorumPolicy::cab_minimum(12).max_failures, 2u);
  EXPECT_EQ(QuorumPolicy::cab_minimum(1).max_failures, 0u);
}

TEST(Quorum, CabCompliance) {
  EXPECT_TRUE(QuorumPolicy(5, 1).cab_compliant());
  EXPECT_TRUE(QuorumPolicy(6, 2).cab_compliant());
  EXPECT_TRUE(QuorumPolicy(6, 1).cab_compliant());
  EXPECT_FALSE(QuorumPolicy(5, 2).cab_compliant());
  EXPECT_FALSE(QuorumPolicy(1, 0).cab_compliant());  // single perspective
  EXPECT_FALSE(QuorumPolicy(8, 3).cab_compliant());
}

TEST(Quorum, AllowsIssuanceCountsSuccesses) {
  const QuorumPolicy policy(4, 1);
  const bool three_ok[] = {true, true, true, false};
  const bool two_ok[] = {true, false, true, false};
  EXPECT_TRUE(policy.allows_issuance(three_ok));
  EXPECT_FALSE(policy.allows_issuance(two_ok));
  const bool wrong_size[] = {true, true};
  EXPECT_THROW((void)policy.allows_issuance(wrong_size),
               std::invalid_argument);
}

TEST(Quorum, PrimaryRequiredBlocksIssuance) {
  const QuorumPolicy policy(4, 1, /*primary=*/true);
  const bool all_ok[] = {true, true, true, true};
  EXPECT_TRUE(policy.allows_issuance(all_ok, /*primary_success=*/true));
  EXPECT_FALSE(policy.allows_issuance(all_ok, /*primary_success=*/false));
}

TEST(Quorum, AttackSucceedsMirrorsIssuance) {
  const QuorumPolicy policy(6, 2);
  EXPECT_FALSE(policy.attack_succeeds(3));
  EXPECT_TRUE(policy.attack_succeeds(4));
  EXPECT_TRUE(policy.attack_succeeds(6));

  const QuorumPolicy with_primary(6, 2, true);
  EXPECT_FALSE(with_primary.attack_succeeds(6, /*primary_hijacked=*/false));
  EXPECT_TRUE(with_primary.attack_succeeds(4, /*primary_hijacked=*/true));
}

TEST(Quorum, NotationMatchesPaper) {
  EXPECT_EQ(QuorumPolicy(5, 1).to_string(), "(5, N-1)");
  EXPECT_EQ(QuorumPolicy(6, 2).to_string(), "(6, N-2)");
  EXPECT_EQ(QuorumPolicy(8, 0).to_string(), "(8, N)");
  EXPECT_EQ(QuorumPolicy(4, 1, true).to_string(), "(primary + 4, N-1)");
}

// Property sweep: for every (X, Y) combination, the attack succeeds iff at
// least X - Y perspectives are captured.
class QuorumSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QuorumSweep, ThresholdIsExact) {
  const auto [x, y] = GetParam();
  if (y >= x) GTEST_SKIP();
  const QuorumPolicy policy(static_cast<std::size_t>(x),
                            static_cast<std::size_t>(y));
  for (int captured = 0; captured <= x; ++captured) {
    EXPECT_EQ(policy.attack_succeeds(static_cast<std::size_t>(captured)),
              captured >= x - y)
        << "X=" << x << " Y=" << y << " captured=" << captured;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, QuorumSweep,
                         ::testing::Combine(::testing::Range(1, 10),
                                            ::testing::Range(0, 4)));

}  // namespace
}  // namespace marcopolo::mpic
