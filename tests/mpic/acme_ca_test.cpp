#include "mpic/acme_ca.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dcv/webserver.hpp"

namespace marcopolo::mpic {
namespace {

/// ACME CA against one victim server; the primary and remotes all resolve
/// to the same server, and challenges are published to the central store
/// the server falls back to (the paper's §4.2.2 setup).
class AcmeCaTest : public ::testing::Test {
 protected:
  AcmeCaTest() {
    dns.add_wildcard("victim.test", netsim::Ipv4Addr(10, 0, 0, 1));
    dns.add("victim.test", netsim::Ipv4Addr(10, 0, 0, 1));
    store = std::make_shared<dcv::TokenStore>();
    server = std::make_unique<dcv::SimWebServer>(
        net, netsim::Ipv4Addr(10, 0, 0, 1), netsim::GeoPoint{}, "victim");
    server->set_fallback(store);
    primary = std::make_unique<dcv::PerspectiveAgent>(
        net, dns, netsim::Ipv4Addr(10, 1, 0, 1), netsim::GeoPoint{},
        "primary");
    for (int i = 0; i < 4; ++i) {
      remotes.push_back(std::make_unique<dcv::PerspectiveAgent>(
          net, dns,
          netsim::Ipv4Addr(10, 1, 1, static_cast<std::uint8_t>(i + 1)),
          netsim::GeoPoint{}, "remote" + std::to_string(i)));
    }
  }

  AcmeCaConfig base_config() {
    AcmeCaConfig cfg;
    cfg.policy = QuorumPolicy(4, 1, /*primary=*/true);
    return cfg;
  }

  std::unique_ptr<AcmeCa> make_ca(AcmeCaConfig cfg) {
    std::vector<dcv::PerspectiveAgent*> remote_ptrs;
    for (const auto& r : remotes) remote_ptrs.push_back(r.get());
    return std::make_unique<AcmeCa>(sim, primary.get(),
                                    std::move(remote_ptrs), std::move(cfg));
  }

  /// Standard publish hook: serve the challenge via the central store.
  std::function<void(const dcv::Http01Challenge&)> publish_to_store() {
    return [this](const dcv::Http01Challenge& ch) {
      store->put(ch.url_path(), ch.key_authorization);
    };
  }

  netsim::Simulator sim;
  netsim::Network net{sim, 1};
  netsim::DnsTable dns;
  std::shared_ptr<dcv::TokenStore> store;
  std::unique_ptr<dcv::SimWebServer> server;
  std::unique_ptr<dcv::PerspectiveAgent> primary;
  std::vector<std::unique_ptr<dcv::PerspectiveAgent>> remotes;
};

TEST_F(AcmeCaTest, HappyPathReachesQuorum) {
  auto ca = make_ca(base_config());
  OrderResult result;
  ca->order("a.victim.test", publish_to_store(),
            [&](OrderResult r) { result = std::move(r); });
  sim.run();
  EXPECT_EQ(result.status, OrderStatus::Ready);
  EXPECT_TRUE(result.preflight_ran);
  EXPECT_TRUE(result.preflight_ok);
  EXPECT_EQ(result.remote_successes, 4u);
  EXPECT_FALSE(result.from_cached_authorization);
}

TEST_F(AcmeCaTest, PreflightFailureSkipsRemotes) {
  auto ca = make_ca(base_config());
  OrderResult result;
  // Publish nothing: the pre-flight 404s and remotes never run.
  ca->order("a.victim.test", [](const dcv::Http01Challenge&) {},
            [&](OrderResult r) { result = std::move(r); });
  sim.run();
  EXPECT_EQ(result.status, OrderStatus::PreflightFailed);
  EXPECT_TRUE(result.preflight_ran);
  EXPECT_FALSE(result.preflight_ok);
  EXPECT_TRUE(result.remotes.empty());
  EXPECT_TRUE(server->requests().size() == 1u)
      << "only the pre-flight request should have hit the server";
}

TEST_F(AcmeCaTest, CachedAuthorizationSkipsDcv) {
  // The paper's challenge-caching complication: a repeat order for the SAME
  // domain inside the TTL revalidates nothing.
  auto ca = make_ca(base_config());
  OrderResult first;
  ca->order("a.victim.test", publish_to_store(),
            [&](OrderResult r) { first = std::move(r); });
  sim.run();
  ASSERT_EQ(first.status, OrderStatus::Ready);
  const auto requests_after_first = server->requests().size();

  OrderResult second;
  ca->order("a.victim.test", publish_to_store(),
            [&](OrderResult r) { second = std::move(r); });
  sim.run();
  EXPECT_EQ(second.status, OrderStatus::Ready);
  EXPECT_TRUE(second.from_cached_authorization);
  EXPECT_EQ(server->requests().size(), requests_after_first)
      << "cached authorization must not trigger DCV traffic";
}

TEST_F(AcmeCaTest, RandomizedSubdomainsDefeatCache) {
  auto ca = make_ca(base_config());
  OrderResult first;
  ca->order("aaaa.victim.test", publish_to_store(),
            [&](OrderResult r) { first = std::move(r); });
  sim.run();
  OrderResult second;
  ca->order("bbbb.victim.test", publish_to_store(),
            [&](OrderResult r) { second = std::move(r); });
  sim.run();
  EXPECT_FALSE(first.from_cached_authorization);
  EXPECT_FALSE(second.from_cached_authorization);
  EXPECT_EQ(second.remote_successes, 4u);
}

TEST_F(AcmeCaTest, CacheExpiresAfterTtl) {
  auto cfg = base_config();
  cfg.authz_cache_ttl = netsim::minutes(30);
  auto ca = make_ca(std::move(cfg));
  OrderResult result;
  ca->order("a.victim.test", publish_to_store(),
            [&](OrderResult r) { result = std::move(r); });
  sim.run();
  ASSERT_EQ(result.status, OrderStatus::Ready);

  sim.run_until(sim.now() + netsim::hours(1));
  OrderResult later;
  ca->order("a.victim.test", publish_to_store(),
            [&](OrderResult r) { later = std::move(r); });
  sim.run();
  EXPECT_EQ(later.status, OrderStatus::Ready);
  EXPECT_FALSE(later.from_cached_authorization);
}

TEST_F(AcmeCaTest, RateLimitBlocksExcessOrders) {
  auto cfg = base_config();
  cfg.per_domain_order_limit = 2;
  auto ca = make_ca(std::move(cfg));
  std::vector<OrderStatus> statuses;
  for (int i = 0; i < 3; ++i) {
    ca->order("a.victim.test", publish_to_store(),
              [&](OrderResult r) { statuses.push_back(r.status); });
    sim.run();
  }
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[2], OrderStatus::RateLimited);
  EXPECT_EQ(ca->orders_seen("a.victim.test"), 2u);
}

TEST_F(AcmeCaTest, StagingNeverFinalizes) {
  // The experiment's key safety invariant (paper §3).
  auto ca = make_ca(base_config());
  OrderResult result;
  ca->order("a.victim.test", publish_to_store(),
            [&](OrderResult r) { result = std::move(r); });
  sim.run();
  ASSERT_EQ(result.status, OrderStatus::Ready);
  EXPECT_FALSE(ca->finalize("a.victim.test"));
}

TEST_F(AcmeCaTest, NonStagingFinalizesOnlyAfterDcv) {
  auto cfg = base_config();
  cfg.staging = false;
  auto ca = make_ca(std::move(cfg));
  EXPECT_FALSE(ca->finalize("a.victim.test"));
  OrderResult result;
  ca->order("a.victim.test", publish_to_store(),
            [&](OrderResult r) { result = std::move(r); });
  sim.run();
  ASSERT_EQ(result.status, OrderStatus::Ready);
  EXPECT_TRUE(ca->finalize("a.victim.test"));
}

TEST_F(AcmeCaTest, ConstructionValidatesConfig) {
  std::vector<dcv::PerspectiveAgent*> remote_ptrs;
  for (const auto& r : remotes) remote_ptrs.push_back(r.get());
  AcmeCaConfig cfg;
  cfg.policy = QuorumPolicy(4, 1, /*primary=*/false);
  EXPECT_THROW(AcmeCa(sim, primary.get(), remote_ptrs, cfg),
               std::invalid_argument);
  cfg.policy = QuorumPolicy(3, 1, true);
  EXPECT_THROW(AcmeCa(sim, primary.get(), remote_ptrs, cfg),
               std::invalid_argument);
  cfg.policy = QuorumPolicy(4, 1, true);
  EXPECT_THROW(AcmeCa(sim, nullptr, remote_ptrs, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace marcopolo::mpic
