#include "mpic/rest_service.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dcv/webserver.hpp"

namespace marcopolo::mpic {
namespace {

class RestServiceTest : public ::testing::Test {
 protected:
  RestServiceTest() {
    dns.add("victim.test", netsim::Ipv4Addr(10, 0, 0, 1));
    server = std::make_unique<dcv::SimWebServer>(
        net, netsim::Ipv4Addr(10, 0, 0, 1), netsim::GeoPoint{}, "victim");
    for (int i = 0; i < 4; ++i) {
      agents.push_back(std::make_unique<dcv::PerspectiveAgent>(
          net, dns, netsim::Ipv4Addr(10, 1, 0, static_cast<std::uint8_t>(i + 1)),
          netsim::GeoPoint{}, "p" + std::to_string(i)));
    }
  }

  std::vector<dcv::PerspectiveAgent*> agent_ptrs() {
    std::vector<dcv::PerspectiveAgent*> out;
    for (const auto& a : agents) out.push_back(a.get());
    return out;
  }

  netsim::Simulator sim;
  netsim::Network net{sim, 1};
  netsim::DnsTable dns;
  std::unique_ptr<dcv::SimWebServer> server;
  std::vector<std::unique_ptr<dcv::PerspectiveAgent>> agents;
};

TEST_F(RestServiceTest, AllPerspectivesSucceedCorroborates) {
  server->serve("/t", "auth");
  RestMpicService service(sim, agent_ptrs(), QuorumPolicy(4, 1));
  CorroborationResult result;
  service.corroborate({"victim.test", "/t", "auth"},
                      [&](CorroborationResult r) { result = std::move(r); });
  sim.run();
  EXPECT_TRUE(result.corroborated);
  EXPECT_EQ(result.successes, 4u);
  ASSERT_EQ(result.outcomes.size(), 4u);
  for (const auto& o : result.outcomes) {
    EXPECT_TRUE(o.success);
    EXPECT_TRUE(o.responded);
  }
}

TEST_F(RestServiceTest, MissingTokenFailsQuorum) {
  RestMpicService service(sim, agent_ptrs(), QuorumPolicy(4, 1));
  CorroborationResult result;
  service.corroborate({"victim.test", "/missing", "auth"},
                      [&](CorroborationResult r) { result = std::move(r); });
  sim.run();
  EXPECT_FALSE(result.corroborated);
  EXPECT_EQ(result.successes, 0u);
}

TEST_F(RestServiceTest, QuorumToleratesAllowedFailures) {
  // One perspective cannot resolve (we point it at a bad domain by serving
  // the token but testing partial failure through loss on one agent is
  // complex; instead use quorum (4, N-1) with all success = corroborated,
  // and a high threshold (4, N) requiring unanimity).
  server->serve("/t", "auth");
  RestMpicService strict(sim, agent_ptrs(), QuorumPolicy(4, 0));
  CorroborationResult result;
  strict.corroborate({"victim.test", "/t", "auth"},
                     [&](CorroborationResult r) { result = std::move(r); });
  sim.run();
  EXPECT_TRUE(result.corroborated);
  EXPECT_EQ(result.successes, 4u);
}

TEST_F(RestServiceTest, LossyNetworkFailuresCountAgainstQuorum) {
  // With total request loss nothing succeeds; a lenient quorum still
  // cannot corroborate because failures exceed the budget.
  net.set_loss_model(netsim::LossModel{1.0, 0.0});
  net.set_timeout(netsim::seconds(2));
  server->serve("/t", "auth");
  RestMpicService service(sim, agent_ptrs(), QuorumPolicy(4, 1));
  CorroborationResult result;
  service.corroborate({"victim.test", "/t", "auth"},
                      [&](CorroborationResult r) { result = std::move(r); });
  sim.run();
  EXPECT_FALSE(result.corroborated);
  for (const auto& o : result.outcomes) {
    EXPECT_FALSE(o.responded);
    EXPECT_FALSE(o.success);
  }
}

TEST_F(RestServiceTest, PartialLossWithinFailureBudgetStillCorroborates) {
  // Roughly half the exchanges fail; (4, N-3) only needs one success, so
  // across several attempts at this seed at least one run corroborates
  // while individual perspectives do fail.
  net.set_loss_model(netsim::LossModel{0.4, 0.0});
  net.set_timeout(netsim::seconds(2));
  server->serve("/t", "auth");
  RestMpicService service(sim, agent_ptrs(), QuorumPolicy(4, 3));
  bool some_failure = false;
  bool some_corroboration = false;
  for (int round = 0; round < 8; ++round) {
    CorroborationResult result;
    service.corroborate({"victim.test", "/t", "auth"},
                        [&](CorroborationResult r) { result = std::move(r); });
    sim.run();
    if (result.corroborated) some_corroboration = true;
    for (const auto& o : result.outcomes) {
      if (!o.success) some_failure = true;
    }
  }
  EXPECT_TRUE(some_failure);
  EXPECT_TRUE(some_corroboration);
}

TEST_F(RestServiceTest, RejectsMismatchedPolicy) {
  EXPECT_THROW(RestMpicService(sim, agent_ptrs(), QuorumPolicy(3, 1)),
               std::invalid_argument);
  EXPECT_THROW(RestMpicService(sim, agent_ptrs(), QuorumPolicy(4, 1, true)),
               std::invalid_argument);
}

TEST_F(RestServiceTest, PerspectiveNamesCarriedThrough) {
  server->serve("/t", "auth");
  RestMpicService service(sim, agent_ptrs(), QuorumPolicy(4, 1), "svc");
  EXPECT_EQ(service.name(), "svc");
  CorroborationResult result;
  service.corroborate({"victim.test", "/t", "auth"},
                      [&](CorroborationResult r) { result = std::move(r); });
  sim.run();
  EXPECT_EQ(result.outcomes[0].perspective, "p0");
  EXPECT_EQ(result.outcomes[3].perspective, "p3");
}

}  // namespace
}  // namespace marcopolo::mpic
