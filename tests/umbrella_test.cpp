// The umbrella header must compile standalone and expose the public API.
#include "marcopolo.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, PublicTypesAreVisible) {
  marcopolo::netsim::Simulator sim;
  EXPECT_TRUE(sim.empty());
  marcopolo::mpic::QuorumPolicy policy(6, 2);
  EXPECT_EQ(policy.to_string(), "(6, N-2)");
  EXPECT_EQ(marcopolo::topo::vultr_sites().size(), 32u);
  EXPECT_EQ(marcopolo::analysis::format_resilience(0.87), "87");
}

}  // namespace
