// JournalReader: parse a journal.ndjson written by write_journal_ndjson
// back into FlightJournal-shaped data.
//
// The journal is the recorded run's ground truth — per-task spans,
// per-verdict decision provenance, virtual-time attack spans — and this
// reader closes the loop: `mpinspect` and the run-compare layer
// interrogate recorded runs instead of re-running them, the same way the
// paper's analysis sections (§5–§7) work from the recorded hijack corpus.
//
// Schema policy (journal_schema 1, forward-compatible reads):
//   - Records whose "type" is unknown are counted and skipped, never an
//     error — a newer writer may add record types.
//   - Unknown fields inside a known record are ignored; missing fields
//     default to zero-values. Only a structurally broken line (not a
//     JSON object, no "type", malformed number/string) is an error.
//   - Every error carries its 1-based line number, so a truncated file
//     (the classic interrupted-run artifact) is reported as "line N:
//     unexpected end" rather than a silent partial read.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace marcopolo::obs {

/// One problem found while reading, anchored to its journal line.
struct JournalIssue {
  std::size_t line = 0;  ///< 1-based.
  std::string message;
};

/// QuorumRecord with an owned system name (the in-memory record borrows
/// static storage, which a reader cannot reproduce).
struct ReadQuorumRecord {
  std::string system;
  std::uint32_t lane = 0;
  std::uint16_t victim = 0;
  std::uint16_t adversary = 0;
  bool corroborated = false;
  std::uint64_t virtual_us = 0;
};

/// Everything read back from one journal.ndjson.
struct ReadJournal {
  /// From the meta header line (schema stays 0 when no meta line seen).
  int schema = 0;
  bool has_meta = false;
  std::uint64_t meta_workers = 0;
  std::uint64_t meta_tasks = 0;
  std::uint64_t meta_verdicts = 0;
  std::uint64_t meta_adversary_verdicts = 0;

  /// Reconstructed records, grouped into worker lanes exactly like the
  /// in-memory journal (lanes sorted by worker id; quorums live in
  /// `quorums` below because of the owned-string difference).
  FlightJournal journal;
  std::vector<ReadQuorumRecord> quorums;

  std::vector<JournalIssue> errors;    ///< Malformed lines.
  std::size_t skipped_records = 0;     ///< Unknown "type" (forward compat).
  std::size_t lines = 0;               ///< Non-empty lines consumed.

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parses journal.ndjson streams. Stateless; the static methods are the
/// whole interface.
class JournalReader {
 public:
  [[nodiscard]] static ReadJournal read(std::istream& in);
  /// read() on the file's contents; an unopenable path is reported as an
  /// error on line 0.
  [[nodiscard]] static ReadJournal read_file(const std::string& path);
};

}  // namespace marcopolo::obs
