#include "obs/manifest.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>

namespace marcopolo::obs {

namespace {

/// Shortest round-trippable decimal for a double, with a guaranteed
/// fraction or exponent so JSON consumers keep the number floating.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  std::string text(buf);
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  return text;
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot,
                        std::string_view indent) {
  out << "{\n" << indent << "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& [name, value] = snapshot.counters[i];
    out << (i == 0 ? "\n" : ",\n") << indent << "    \""
        << json_escape(name) << "\": " << value;
  }
  if (!snapshot.counters.empty()) out << "\n" << indent << "  ";
  out << "},\n" << indent << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << indent << "    \""
        << json_escape(h.name) << "\": {\"count\": " << h.count
        << ", \"sum\": " << h.sum << ", \"min\": " << h.min
        << ", \"max\": " << h.max
        << ", \"p50\": " << format_double(h.quantile(0.50))
        << ", \"p95\": " << format_double(h.quantile(0.95))
        << ", \"p99\": " << format_double(h.quantile(0.99))
        << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out << ", ";
      out << "{\"le\": " << h.buckets[b].first
          << ", \"count\": " << h.buckets[b].second << "}";
    }
    out << "]}";
  }
  if (!snapshot.histograms.empty()) out << "\n" << indent << "  ";
  out << "}\n" << indent << "}";
}

void RunManifest::set(std::string_view key, std::string_view value) {
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  config_.emplace_back(std::string(key), std::string(value));
}

void RunManifest::set(std::string_view key, std::int64_t value) {
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  config_.emplace_back(std::string(key), value);
}

void RunManifest::set(std::string_view key, double value) {
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  config_.emplace_back(std::string(key), value);
}

void RunManifest::set(std::string_view key, bool value) {
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  config_.emplace_back(std::string(key), value);
}

void write_phase_stats_json(std::ostream& out, const PhaseStats& stats) {
  if (stats.counters.valid) {
    const CounterSample& c = stats.counters;
    out << ", \"instructions\": " << c.instructions
        << ", \"cycles\": " << c.cycles
        << ", \"cache_references\": " << c.cache_references
        << ", \"cache_misses\": " << c.cache_misses
        << ", \"branch_misses\": " << c.branch_misses
        << ", \"ipc\": " << format_double(c.ipc())
        << ", \"cache_miss_rate\": " << format_double(c.cache_miss_rate());
  }
  if (stats.mem_valid) {
    out << ", \"peak_rss_kb\": " << stats.peak_rss_kb
        << ", \"rss_delta_kb\": " << stats.rss_delta_kb;
  }
}

void RunManifest::add_phase(std::string_view name, double seconds) {
  phases_.push_back(Phase{std::string(name), seconds, PhaseStats{}});
}

void RunManifest::add_phase(std::string_view name, double seconds,
                            const PhaseStats& stats) {
  phases_.push_back(Phase{std::string(name), seconds, stats});
}

void write_profile_json(std::ostream& out, const CpuProfile& profile,
                        std::string_view indent, std::size_t top_n) {
  out << "{\n"
      << indent << "  \"hz\": " << profile.hz << ",\n"
      << indent << "  \"samples\": " << profile.samples << ",\n"
      << indent << "  \"dropped\": " << profile.dropped << ",\n"
      << indent << "  \"truncated\": " << profile.truncated << ",\n"
      << indent << "  \"symbols\": [";
  const std::size_t n = std::min(top_n, profile.symbols.size());
  for (std::size_t i = 0; i < n; ++i) {
    const HotSymbol& s = profile.symbols[i];
    out << (i == 0 ? "\n" : ",\n") << indent << "    {\"name\": \""
        << json_escape(s.name) << "\", \"self\": " << s.self
        << ", \"total\": " << s.total << "}";
  }
  if (n > 0) out << "\n" << indent << "  ";
  out << "]\n" << indent << "}";
}

void RunManifest::set_profile(const CpuProfile& profile) {
  profile_ = profile;
}

void RunManifest::write_json(std::ostream& out,
                             const MetricsSnapshot& snapshot) const {
  out << "{\n"
      << "  \"manifest_schema\": 1,\n"
      << "  \"tool\": \"" << json_escape(tool_) << "\",\n"
      << "  \"config\": {";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    const auto& [key, value] = config_[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(key) << "\": ";
    std::visit(
        [&out](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, std::string>) {
            out << '"' << json_escape(v) << '"';
          } else if constexpr (std::is_same_v<T, bool>) {
            out << (v ? "true" : "false");
          } else if constexpr (std::is_same_v<T, double>) {
            out << format_double(v);
          } else {
            out << v;
          }
        },
        value);
  }
  if (!config_.empty()) out << "\n  ";
  out << "},\n"
      << "  \"phases\": [";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
        << json_escape(phases_[i].name)
        << "\", \"seconds\": " << format_double(phases_[i].seconds);
    write_phase_stats_json(out, phases_[i].stats);
    out << "}";
  }
  if (!phases_.empty()) out << "\n  ";
  out << "],\n";
  if (profile_.available && profile_.samples > 0) {
    out << "  \"profile\": ";
    write_profile_json(out, profile_, "  ");
    out << ",\n";
  }
  out << "  \"metrics\": ";
  write_metrics_json(out, snapshot, "  ");
  out << "\n}\n";
}

bool RunManifest::write_file(const std::string& path,
                             const MetricsSnapshot& snapshot) const {
  // Same crash-safety discipline as write_trace_dir: no truncated
  // manifest ever appears at the final name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    write_json(out, snapshot);
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

}  // namespace marcopolo::obs
