// Campaign flight recorder: a structured, low-overhead event journal.
//
// Where the sharded MetricsRegistry answers "how many / how long in
// aggregate", the flight recorder answers per-request questions: why did
// perspective P route to the adversary in attack (v, a)? which worker ran
// that task, and when? did the route-age coin (§4.4.4) decide the
// outcome, so a rerun could flip it?
//
// Design, mirroring the metrics layer's contract:
//   - Null by default. Pipelines carry a `FlightRecorder*` that defaults
//     to nullptr; every emit site is guarded by one predictable branch,
//     and with no recorder attached the hot path reads no clock.
//   - Per-thread buffers. A worker calls open_buffer() once at startup
//     and appends plain structs to its private FlightBuffer — no locks,
//     no atomics on the emit path. The recorder owns the buffers, so
//     records from joined workers survive into drain().
//   - Pure observer. Recording may not perturb results: the ResultStore
//     is byte-identical with recording on or off (asserted by tests).
//
// Records carry two clock domains. Fast-campaign task spans and
// propagation runs use wall-clock steady nanoseconds (one Chrome-trace
// lane per worker thread); orchestrator attack spans use virtual
// simulation microseconds (one lane per prefix lane). trace_export.hpp
// turns a drained FlightJournal into Chrome trace_event JSON and an
// NDJSON journal.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace marcopolo::obs {

class LineGuard;  // obs/log.hpp

/// Which decision point produced a perspective verdict. Values 0..4
/// mirror bgp::DecisionStep (static_asserted at the emit sites); the
/// journal-only sentinels cover outcomes no comparator decided.
enum class VerdictStep : std::uint8_t {
  LocalPref = 0,   ///< Business relationship split the origins.
  PathLength = 1,  ///< Shorter AS path.
  RouteAge = 2,    ///< The "heard first" coin — rerun-sensitive (§4.4.4).
  NeighborAsn = 3, ///< Lowest neighbor ASN.
  IngressPop = 4,  ///< Egress geography (ingress-POP proximity).
  MoreSpecific,    ///< Longest-prefix match on a sub-prefix hijack.
  Unopposed,       ///< Only one origin's routes reached the ingress AS.
};

[[nodiscard]] constexpr const char* to_cstring(VerdictStep step) {
  switch (step) {
    case VerdictStep::LocalPref: return "local_pref";
    case VerdictStep::PathLength: return "path_length";
    case VerdictStep::RouteAge: return "route_age";
    case VerdictStep::NeighborAsn: return "neighbor_asn";
    case VerdictStep::IngressPop: return "ingress_pop";
    case VerdictStep::MoreSpecific: return "more_specific";
    case VerdictStep::Unopposed: return "unopposed";
  }
  return "?";
}

/// Inverse of to_cstring (the journal reader's decoder). Returns false
/// and leaves `step` untouched on an unrecognized name.
[[nodiscard]] constexpr bool verdict_step_from_string(std::string_view name,
                                                      VerdictStep& step) {
  for (const VerdictStep candidate :
       {VerdictStep::LocalPref, VerdictStep::PathLength, VerdictStep::RouteAge,
        VerdictStep::NeighborAsn, VerdictStep::IngressPop,
        VerdictStep::MoreSpecific, VerdictStep::Unopposed}) {
    if (name == to_cstring(candidate)) {
      step = candidate;
      return true;
    }
  }
  return false;
}

/// One fast-campaign task: the (announcer, adversary) propagation plus
/// classification and row recording, timed on the worker's wall clock.
struct TaskSpanRecord {
  std::uint32_t announcer = 0;
  std::uint32_t adversary = 0;
  std::uint32_t victim_rows = 0;  ///< Store rows written by this task.
  bool total_capture = false;     ///< DNS host == adversary, no propagation.
  std::uint64_t start_ns = 0;     ///< Steady-clock epoch.
  std::uint64_t duration_ns = 0;
  std::uint64_t propagate_ns = 0;
  std::uint64_t classify_ns = 0;
  std::uint64_t record_ns = 0;
  /// Hardware counters across the whole task, from the worker's own
  /// perf group (fast_campaign `hw_counters`); 0 when counters were off
  /// or unavailable — the journal omits zero fields, keeping output
  /// byte-identical to pre-counter runs (schema-1 forward-compatible,
  /// same policy as the worker id).
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  /// bgp::AttackType value of the attack this task evaluated (0 =
  /// equally-specific, the only type pre-multi-attack journals could
  /// carry). Omitted from the journal when 0, so single-attack runs stay
  /// byte-identical to pre-attack-tag output (same policy as the
  /// hardware counters above).
  std::uint8_t attack = 0;
};

/// One propagation-engine run (a task runs 1–2: SubPrefix attacks two).
struct PropagationRunRecord {
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint64_t delivered = 0;
  std::uint64_t loop_dropped = 0;
  std::uint64_t rov_dropped = 0;
  /// Comparisons resolved per bgp::DecisionStep value.
  std::array<std::uint64_t, 5> decided{};
};

/// Decision provenance of one perspective verdict: which rule of the
/// decision process picked the winning origin at the perspective's
/// ingress AS. `contested` means both origins' routes survived to the
/// ingress RIB; an uncontested verdict is `Unopposed` by definition.
struct VerdictRecord {
  std::uint16_t victim = 0;
  std::uint16_t adversary = 0;
  std::uint16_t perspective = 0;
  std::uint8_t outcome = 0;  ///< bgp::OriginReached value (0 none/1 victim/2 adversary).
  /// bgp::AttackType value; 0 (equally-specific) is omitted from the
  /// journal so single-attack runs keep their pre-attack-tag bytes.
  std::uint8_t attack = 0;
  VerdictStep decided_by = VerdictStep::Unopposed;
  bool contested = false;

  [[nodiscard]] bool route_age_sensitive() const {
    return contested && decided_by == VerdictStep::RouteAge;
  }
};

/// One orchestrator attack attempt in virtual simulation time:
/// announce -> (propagation wait) -> DCV fan-out -> conclusion.
struct AttackSpanRecord {
  std::uint32_t lane = 0;
  std::uint16_t victim = 0;
  std::uint16_t adversary = 0;
  std::uint8_t attempt = 0;
  bool complete = false;  ///< Every perspective recorded after this attempt.
  std::uint64_t announce_us = 0;  ///< Virtual time since sim epoch.
  std::uint64_t dcv_us = 0;
  std::uint64_t conclude_us = 0;
};

/// One MPIC system's quorum decision for an attack (virtual time).
struct QuorumRecord {
  const char* system = "";  ///< Static-storage system name.
  std::uint32_t lane = 0;
  std::uint16_t victim = 0;
  std::uint16_t adversary = 0;
  bool corroborated = false;
  std::uint64_t virtual_us = 0;
};

/// Steady-clock nanoseconds (the wall-record time base).
[[nodiscard]] inline std::uint64_t flight_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class FlightRecorder;

/// One thread's private append buffer. Not thread-safe: exactly one
/// worker appends to a given buffer, and drain() happens after workers
/// finish (the recorder owns the storage either way).
class FlightBuffer {
 public:
  void record_task(const TaskSpanRecord& rec) { tasks_.push_back(rec); }
  void record_propagation(const PropagationRunRecord& rec) {
    propagations_.push_back(rec);
  }
  void record_verdict(const VerdictRecord& rec) { verdicts_.push_back(rec); }
  void record_attack(const AttackSpanRecord& rec) { attacks_.push_back(rec); }
  void record_quorum(const QuorumRecord& rec) { quorums_.push_back(rec); }

  [[nodiscard]] std::uint32_t worker_id() const { return worker_id_; }

 private:
  friend class FlightRecorder;
  std::uint32_t worker_id_ = 0;
  std::vector<TaskSpanRecord> tasks_;
  std::vector<PropagationRunRecord> propagations_;
  std::vector<VerdictRecord> verdicts_;
  std::vector<AttackSpanRecord> attacks_;
  std::vector<QuorumRecord> quorums_;
};

/// Everything one run recorded, merged per worker lane. Wall-clock
/// records keep their per-worker grouping (one trace lane each); the
/// virtual-time records are merged flat (their lane id is explicit).
struct FlightJournal {
  struct WorkerLane {
    std::uint32_t worker = 0;
    std::vector<TaskSpanRecord> tasks;
    std::vector<PropagationRunRecord> propagations;
    std::vector<VerdictRecord> verdicts;
  };
  std::vector<WorkerLane> workers;
  std::vector<AttackSpanRecord> attacks;
  std::vector<QuorumRecord> quorums;
  /// Earliest wall-clock start across all records (trace time zero);
  /// 0 when no wall record exists.
  std::uint64_t epoch_ns = 0;

  [[nodiscard]] std::size_t task_count() const;
  [[nodiscard]] std::size_t verdict_count() const;
  [[nodiscard]] std::size_t adversary_verdict_count() const;
};

/// Owns the per-thread buffers plus a pair of live counters cheap enough
/// for the progress reporter to poll mid-run.
class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Open a new lane. Each worker thread calls this once and appends to
  /// the returned buffer without synchronization; the recorder keeps
  /// ownership, so the pointer stays valid after the worker joins.
  [[nodiscard]] FlightBuffer* open_buffer();

  /// Live verdict tally for progress reporting. Workers flush locally
  /// accumulated counts once per task, so this is two relaxed adds per
  /// task, not per verdict.
  void note_verdicts(std::uint64_t total, std::uint64_t adversary) {
    if (total != 0) verdicts_.fetch_add(total, std::memory_order_relaxed);
    if (adversary != 0) {
      adversary_verdicts_.fetch_add(adversary, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t verdicts() const {
    return verdicts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t adversary_verdicts() const {
    return adversary_verdicts_.load(std::memory_order_relaxed);
  }

  /// Live instructions-retired tally (hw_counters runs only). Workers
  /// flush one per-task delta, so the progress line can show live
  /// instructions/s next to tasks/s; stays 0 — and the line unchanged —
  /// when counters are off or unavailable.
  void note_instructions(std::uint64_t delta) {
    if (delta != 0) instructions_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t instructions() const {
    return instructions_.load(std::memory_order_relaxed);
  }

  /// Merge every buffer into one journal and reset the recorder. Call
  /// after all writers have finished their final task.
  [[nodiscard]] FlightJournal drain();

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<FlightBuffer>> buffers_;
  std::atomic<std::uint64_t> verdicts_{0};
  std::atomic<std::uint64_t> adversary_verdicts_{0};
  std::atomic<std::uint64_t> instructions_{0};
};

/// Periodic stderr progress line driven from the campaign progress hook
/// and, when a recorder is attached, its live verdict counters (plus
/// live instructions/s on hw_counters runs):
///
///   [campaign] 512/992 tasks (51.6%)  324.1 tasks/s  2.1G instr/s  ETA 1.5s  hijacked 34.2%
///
/// Thread-safe and rate-limited (at most one update per interval). Live
/// updates overwrite a single line via \r; completion always emits a
/// newline-terminated 100% summary line, so the terminal is never left
/// with a stale partial line. Null-cost when never called.
class ProgressReporter {
 public:
  explicit ProgressReporter(const FlightRecorder* recorder = nullptr,
                            double min_interval_s = 0.5,
                            std::FILE* out = stderr);
  ~ProgressReporter();

  /// Report `done` of `total` tasks. Safe to call from any worker.
  void update(std::size_t done, std::size_t total);

 private:
  const FlightRecorder* recorder_;
  double min_interval_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::chrono::steady_clock::time_point last_{};
  bool printed_final_ = false;
  // Output goes through a LineGuard so verbose Logger lines blank and
  // redraw the live line instead of splicing into it. stderr shares the
  // process-wide guard with the Logger sink; other streams (tests write
  // to a tmpfile) get a private guard with identical byte behavior.
  LineGuard* guard_;
  std::unique_ptr<LineGuard> owned_guard_;
};

}  // namespace marcopolo::obs
