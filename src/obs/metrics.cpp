#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace marcopolo::obs {

namespace {

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache mapping registry uid -> this thread's shard. The
/// registry owns the shard; the cache only holds a borrowed pointer keyed
/// by a never-reused uid, so entries for destroyed registries are inert.
struct TlsShardCache {
  std::vector<std::pair<std::uint64_t, void*>> entries;

  [[nodiscard]] void* find(std::uint64_t uid) const {
    for (const auto& [key, shard] : entries) {
      if (key == uid) return shard;
    }
    return nullptr;
  }
};

TlsShardCache& tls_cache() {
  thread_local TlsShardCache cache;
  return cache;
}

/// Relaxed atomic max/min (no CAS loop precision needed beyond this).
void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur > v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (std::isnan(q)) return 0.0;  // NaN never selects a rank.
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, midpoint convention).
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (const auto& [le, bucket_count] : buckets) {
    const std::uint64_t after = seen + bucket_count;
    if (static_cast<double>(after) >= rank) {
      // Bucket with inclusive upper bound `le` covers (le >> 1, le].
      const double lo = static_cast<double>(le >> 1);
      const double hi = static_cast<double>(le);
      const double frac =
          bucket_count == 0
              ? 1.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(bucket_count);
      const double est = lo + frac * (hi - lo);
      return std::clamp(est, static_cast<double>(min),
                        static_cast<double>(max));
    }
    seen = after;
  }
  return static_cast<double>(max);
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsRegistry::MetricsRegistry() : uid_(next_registry_uid()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

Counter MetricsRegistry::counter(std::string_view name) {
  {
    std::shared_lock lock(names_mutex_);
    if (const auto it = counter_ids_.find(std::string(name));
        it != counter_ids_.end()) {
      return Counter(this, it->second);
    }
  }
  std::unique_lock lock(names_mutex_);
  const auto [it, inserted] =
      counter_ids_.try_emplace(std::string(name), counter_names_.size());
  if (inserted) counter_names_.emplace_back(name);
  return Counter(this, it->second);
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  {
    std::shared_lock lock(names_mutex_);
    if (const auto it = histogram_ids_.find(std::string(name));
        it != histogram_ids_.end()) {
      return Histogram(this, it->second);
    }
  }
  std::unique_lock lock(names_mutex_);
  const auto [it, inserted] =
      histogram_ids_.try_emplace(std::string(name), histogram_names_.size());
  if (inserted) histogram_names_.emplace_back(name);
  return Histogram(this, it->second);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  TlsShardCache& cache = tls_cache();
  if (void* hit = cache.find(uid_)) return *static_cast<Shard*>(hit);
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    std::scoped_lock lock(shards_mutex_);
    shards_.push_back(std::move(owned));
  }
  cache.entries.emplace_back(uid_, shard);
  return *shard;
}

void MetricsRegistry::counter_add(std::size_t id, std::uint64_t delta) {
  Shard& shard = local_shard();
  if (id >= shard.counters.size()) {
    // Growth is owner-only and guarded against concurrent snapshot reads;
    // deque growth never moves the atomics already being updated.
    std::scoped_lock lock(shard.grow_mutex);
    while (shard.counters.size() <= id) shard.counters.emplace_back(0);
  }
  shard.counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::histogram_observe(std::size_t id, std::uint64_t value) {
  Shard& shard = local_shard();
  if (id >= shard.histograms.size()) {
    std::scoped_lock lock(shard.grow_mutex);
    while (shard.histograms.size() <= id) shard.histograms.emplace_back();
  }
  HistogramShard& h = shard.histograms[id];
  const auto bucket = static_cast<std::size_t>(std::bit_width(value));
  h.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  atomic_min(h.min, value);
  atomic_max(h.max, value);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::vector<std::string> counter_names;
  std::vector<std::string> histogram_names;
  {
    std::shared_lock lock(names_mutex_);
    counter_names = counter_names_;
    histogram_names = histogram_names_;
  }
  std::vector<std::uint64_t> counter_totals(counter_names.size(), 0);
  struct HistTotal {
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t sum = 0;
    std::uint64_t min = ~std::uint64_t{0};
    std::uint64_t max = 0;
  };
  std::vector<HistTotal> hist_totals(histogram_names.size());

  {
    std::scoped_lock shards_lock(shards_mutex_);
    for (const auto& shard : shards_) {
      // Excludes concurrent owner-side growth; concurrent relaxed updates
      // to existing slots are fine. Live scrapes (the telemetry hub ticks
      // while workers run) therefore race-free: every value read is one
      // some writer actually stored, and since all series are monotone
      // sums, a mid-update read only shifts work between adjacent ticks —
      // never loses or invents it. Cross-metric consistency (counter A
      // seen with counter B's matching value) is only guaranteed once
      // writers have quiesced, which end-of-run callers ensure.
      std::scoped_lock grow_lock(shard->grow_mutex);
      const std::size_t nc =
          std::min(counter_totals.size(), shard->counters.size());
      for (std::size_t i = 0; i < nc; ++i) {
        counter_totals[i] +=
            shard->counters[i].load(std::memory_order_relaxed);
      }
      const std::size_t nh =
          std::min(hist_totals.size(), shard->histograms.size());
      for (std::size_t i = 0; i < nh; ++i) {
        const HistogramShard& hs = shard->histograms[i];
        HistTotal& total = hist_totals[i];
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          total.buckets[b] += hs.buckets[b].load(std::memory_order_relaxed);
        }
        total.sum += hs.sum.load(std::memory_order_relaxed);
        total.min = std::min(total.min, hs.min.load(std::memory_order_relaxed));
        total.max = std::max(total.max, hs.max.load(std::memory_order_relaxed));
      }
    }
  }

  snap.counters.reserve(counter_names.size());
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    snap.counters.emplace_back(counter_names[i], counter_totals[i]);
  }
  std::sort(snap.counters.begin(), snap.counters.end());

  snap.histograms.reserve(histogram_names.size());
  for (std::size_t i = 0; i < histogram_names.size(); ++i) {
    HistogramSnapshot h;
    h.name = histogram_names[i];
    const HistTotal& total = hist_totals[i];
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (total.buckets[b] == 0) continue;
      h.count += total.buckets[b];
      // Inclusive upper bound of bucket b: 2^b - 1 (b = bit_width).
      const std::uint64_t le =
          b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
      h.buckets.emplace_back(le, total.buckets[b]);
    }
    h.sum = total.sum;
    h.min = h.count > 0 ? total.min : 0;
    h.max = total.max;
    snap.histograms.push_back(std::move(h));
  }
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace marcopolo::obs
