#include "obs/journal_reader.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"

namespace marcopolo::obs {

namespace {

/// Lane lookup/creation while reading: records arrive grouped by worker
/// in writer output, but the reader tolerates any interleaving.
class LaneIndex {
 public:
  explicit LaneIndex(FlightJournal& journal) : journal_(journal) {}

  FlightJournal::WorkerLane& lane(std::uint32_t worker) {
    const auto it = index_.find(worker);
    if (it != index_.end()) return journal_.workers[it->second];
    index_.emplace(worker, journal_.workers.size());
    journal_.workers.emplace_back();
    journal_.workers.back().worker = worker;
    return journal_.workers.back();
  }

 private:
  FlightJournal& journal_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
};

bool decode_outcome(const std::string& name, std::uint8_t& outcome) {
  if (name == "none") outcome = 0;
  else if (name == "victim") outcome = 1;
  else if (name == "adversary") outcome = 2;
  else return false;
  return true;
}

void decode_meta(const json::Value& rec, ReadJournal& out,
                 std::size_t line_no) {
  out.has_meta = true;
  out.schema = static_cast<int>(rec.u64_or("journal_schema", 0));
  if (out.schema != 1) {
    out.errors.push_back(
        {line_no, "unsupported journal_schema " + std::to_string(out.schema)});
  }
  out.journal.epoch_ns = rec.u64_or("epoch_ns", 0);
  out.meta_workers = rec.u64_or("workers", 0);
  out.meta_tasks = rec.u64_or("tasks", 0);
  out.meta_verdicts = rec.u64_or("verdicts", 0);
  out.meta_adversary_verdicts = rec.u64_or("adversary_verdicts", 0);
}

void decode_task(const json::Value& rec, LaneIndex& lanes) {
  TaskSpanRecord t;
  t.announcer = static_cast<std::uint32_t>(rec.u64_or("announcer", 0));
  t.adversary = static_cast<std::uint32_t>(rec.u64_or("adversary", 0));
  t.victim_rows = static_cast<std::uint32_t>(rec.u64_or("victim_rows", 0));
  t.total_capture = rec.bool_or("total_capture", false);
  t.start_ns = rec.u64_or("start_ns", 0);
  t.duration_ns = rec.u64_or("duration_ns", 0);
  t.propagate_ns = rec.u64_or("propagate_ns", 0);
  t.classify_ns = rec.u64_or("classify_ns", 0);
  t.record_ns = rec.u64_or("record_ns", 0);
  t.instructions = rec.u64_or("instructions", 0);
  t.cycles = rec.u64_or("cycles", 0);
  // Absent in pre-multi-attack journals: 0 = equally-specific.
  t.attack = static_cast<std::uint8_t>(rec.u64_or("attack", 0));
  lanes.lane(static_cast<std::uint32_t>(rec.u64_or("worker", 0)))
      .tasks.push_back(t);
}

void decode_propagation(const json::Value& rec, LaneIndex& lanes) {
  PropagationRunRecord p;
  p.start_ns = rec.u64_or("start_ns", 0);
  p.duration_ns = rec.u64_or("duration_ns", 0);
  p.delivered = rec.u64_or("delivered", 0);
  p.loop_dropped = rec.u64_or("loop_dropped", 0);
  p.rov_dropped = rec.u64_or("rov_dropped", 0);
  if (const json::Value* decided = rec.find("decided");
      decided != nullptr && decided->is_object()) {
    static constexpr const char* kSteps[5] = {
        "local_pref", "path_length", "route_age", "neighbor_asn",
        "ingress_pop"};
    for (std::size_t s = 0; s < p.decided.size(); ++s) {
      p.decided[s] = decided->u64_or(kSteps[s], 0);
    }
  }
  lanes.lane(static_cast<std::uint32_t>(rec.u64_or("worker", 0)))
      .propagations.push_back(p);
}

bool decode_verdict(const json::Value& rec, LaneIndex& lanes,
                    std::string& why) {
  VerdictRecord v;
  v.victim = static_cast<std::uint16_t>(rec.u64_or("victim", 0));
  v.adversary = static_cast<std::uint16_t>(rec.u64_or("adversary", 0));
  v.perspective = static_cast<std::uint16_t>(rec.u64_or("perspective", 0));
  // Absent in pre-multi-attack journals: 0 = equally-specific.
  v.attack = static_cast<std::uint8_t>(rec.u64_or("attack", 0));
  const std::string outcome = rec.string_or("outcome", "none");
  if (!decode_outcome(outcome, v.outcome)) {
    why = "unknown outcome \"" + outcome + "\"";
    return false;
  }
  const std::string decided_by = rec.string_or("decided_by", "unopposed");
  if (!verdict_step_from_string(decided_by, v.decided_by)) {
    why = "unknown decided_by \"" + decided_by + "\"";
    return false;
  }
  v.contested = rec.bool_or("contested", false);
  lanes.lane(static_cast<std::uint32_t>(rec.u64_or("worker", 0)))
      .verdicts.push_back(v);
  return true;
}

void decode_attack(const json::Value& rec, FlightJournal& journal) {
  AttackSpanRecord a;
  a.lane = static_cast<std::uint32_t>(rec.u64_or("lane", 0));
  a.victim = static_cast<std::uint16_t>(rec.u64_or("victim", 0));
  a.adversary = static_cast<std::uint16_t>(rec.u64_or("adversary", 0));
  a.attempt = static_cast<std::uint8_t>(rec.u64_or("attempt", 0));
  a.complete = rec.bool_or("complete", false);
  a.announce_us = rec.u64_or("announce_us", 0);
  a.dcv_us = rec.u64_or("dcv_us", 0);
  a.conclude_us = rec.u64_or("conclude_us", 0);
  journal.attacks.push_back(a);
}

void decode_quorum(const json::Value& rec, ReadJournal& out) {
  ReadQuorumRecord q;
  q.system = rec.string_or("system", "");
  q.lane = static_cast<std::uint32_t>(rec.u64_or("lane", 0));
  q.victim = static_cast<std::uint16_t>(rec.u64_or("victim", 0));
  q.adversary = static_cast<std::uint16_t>(rec.u64_or("adversary", 0));
  q.corroborated = rec.bool_or("corroborated", false);
  q.virtual_us = rec.u64_or("virtual_us", 0);
  out.quorums.push_back(q);
}

}  // namespace

ReadJournal JournalReader::read(std::istream& in) {
  ReadJournal out;
  LaneIndex lanes(out.journal);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ++out.lines;
    json::Value rec;
    try {
      rec = json::parse(line);
    } catch (const json::ParseError& error) {
      out.errors.push_back({line_no, error.what()});
      continue;
    }
    if (!rec.is_object()) {
      out.errors.push_back({line_no, "record is not a JSON object"});
      continue;
    }
    const json::Value* type = rec.find("type");
    if (type == nullptr || !type->is_string()) {
      out.errors.push_back({line_no, "record has no \"type\" string"});
      continue;
    }
    const std::string& kind = type->str();
    if (kind == "meta") {
      decode_meta(rec, out, line_no);
    } else if (kind == "task") {
      decode_task(rec, lanes);
    } else if (kind == "propagation") {
      decode_propagation(rec, lanes);
    } else if (kind == "verdict") {
      std::string why;
      if (!decode_verdict(rec, lanes, why)) {
        out.errors.push_back({line_no, why});
      }
    } else if (kind == "attack") {
      decode_attack(rec, out.journal);
    } else if (kind == "quorum") {
      decode_quorum(rec, out);
    } else {
      // Forward compatibility: a newer writer's record types are skipped.
      ++out.skipped_records;
    }
  }
  // A truncated final line (no trailing newline, cut mid-record) still
  // arrives via getline and fails json::parse above, so interruption is
  // always surfaced as a line-numbered error.
  std::sort(out.journal.workers.begin(), out.journal.workers.end(),
            [](const auto& a, const auto& b) { return a.worker < b.worker; });
  if (!out.has_meta && out.lines > 0) {
    out.errors.push_back({1, "missing meta header line"});
  }
  if (out.journal.epoch_ns == 0) {
    // Meta-less or zero-epoch journal: recompute like drain() does.
    std::uint64_t epoch = ~std::uint64_t{0};
    for (const auto& lane : out.journal.workers) {
      for (const TaskSpanRecord& t : lane.tasks) {
        epoch = std::min(epoch, t.start_ns);
      }
      for (const PropagationRunRecord& p : lane.propagations) {
        epoch = std::min(epoch, p.start_ns);
      }
    }
    out.journal.epoch_ns = epoch == ~std::uint64_t{0} ? 0 : epoch;
  }
  return out;
}

ReadJournal JournalReader::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ReadJournal out;
    out.errors.push_back({0, "cannot open " + path});
    return out;
  }
  return read(in);
}

}  // namespace marcopolo::obs
