// ManifestReader: parse run-manifest JSON (`--metrics-out`, RunManifest)
// and campaign_wallclock benchmark JSON back into MetricsSnapshot-shaped
// data.
//
// Both document families share the top-level "metrics" section written
// by write_metrics_json(); the reader reconstructs counters and
// histograms (buckets, count, sum, min, max — the pNN fields are derived
// and recomputed via HistogramSnapshot::quantile, never trusted from the
// file). Manifest-only sections (config echo, phases) and bench-only
// sections (per-thread-count runs, recording overhead) are optional:
// whatever is present is read, everything else defaults. Unknown fields
// are skipped — same forward-compatibility policy as the journal reader.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace marcopolo::obs {

/// One wall-clock phase row, with hardware-counter / memory attribution
/// when the writing host had them (has_counters / has_mem distinguish
/// "zero" from "absent" — pre-counter documents parse with both false).
struct ReadPhase {
  std::string name;
  double seconds = 0.0;

  bool has_counters = false;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;

  bool has_mem = false;
  std::uint64_t peak_rss_kb = 0;
  std::int64_t rss_delta_kb = 0;

  /// Recomputed from the raw counts (like the pNN quantiles, the derived
  /// ipc/cache_miss_rate fields in the file are never trusted).
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] double cache_miss_rate() const {
    return cache_references == 0 ? 0.0
                                 : static_cast<double>(cache_misses) /
                                       static_cast<double>(cache_references);
  }
};

/// One campaign_wallclock thread-count run row.
struct BenchRunRow {
  std::uint64_t threads = 0;
  double seconds = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t propagations = 0;
  bool store_identical = true;

  /// Tasks retired per wall-clock second; 0 when unmeasurable.
  [[nodiscard]] double throughput() const {
    return seconds > 0.0 ? static_cast<double>(tasks) / seconds : 0.0;
  }
};

/// One row of a manifest's hot-symbol table ("profile"."symbols").
struct ReadHotSymbol {
  std::string name;
  std::uint64_t self = 0;   ///< Samples with this symbol as leaf.
  std::uint64_t total = 0;  ///< Samples with this symbol anywhere.
};

/// The "profile" section written by write_profile_json (manifests and
/// campaign_wallclock documents share the shape).
struct ReadProfile {
  std::uint32_t hz = 0;
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  std::uint64_t truncated = 0;
  /// Top-N by self samples, in document (descending-self) order.
  std::vector<ReadHotSymbol> symbols;

  /// Self share of the run, in [0,1]; 0 when the sample total is 0.
  [[nodiscard]] double self_share(std::uint64_t self) const {
    return samples == 0 ? 0.0
                        : static_cast<double>(self) /
                              static_cast<double>(samples);
  }
};

/// Everything read back from one manifest/benchmark JSON document.
struct ReadManifest {
  int schema = 0;       ///< manifest_schema; 0 for bench documents.
  std::string tool;     ///< "tool" (manifest) or "benchmark" (bench) name.
  std::string version;  ///< Bench "version" (git describe); may be empty.

  /// Config echo, values re-serialized as display strings.
  std::vector<std::pair<std::string, std::string>> config;
  /// Wall-clock phases in document order.
  std::vector<ReadPhase> phases;

  /// Counter availability echoed by the writer ("available" /
  /// "unavailable"); empty for documents that predate counters. Lets
  /// diff explain *why* counter columns are missing.
  std::string perf_counters;

  MetricsSnapshot metrics;

  std::vector<BenchRunRow> runs;  ///< campaign_wallclock only.
  bool has_recording = false;
  double recording_overhead = 0.0;

  /// CPU-profile summary; has_profile distinguishes "absent" (profiler
  /// off/unavailable, or a pre-profiler document) from an empty table.
  bool has_profile = false;
  ReadProfile profile;

  std::vector<std::string> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

class ManifestReader {
 public:
  [[nodiscard]] static ReadManifest read(std::istream& in);
  [[nodiscard]] static ReadManifest read_string(const std::string& text);
  [[nodiscard]] static ReadManifest read_file(const std::string& path);
};

}  // namespace marcopolo::obs
