// Process memory accounting: RSS snapshots from /proc/self/status and an
// optional allocation-count hook.
//
// The campaign's memory story is phase-shaped — the 50k-AS testbed build
// allocates a path arena the delta-replay phase then mutates in place —
// so the observability layer reports memory per phase, not per process:
// PhaseCounters (perf_counters.hpp) captures an RSS sample at scope entry
// and exit and reports the delta plus the process peak (VmHWM high-water,
// which only the kernel tracks reliably across frees).
//
// Sampling reads /proc/self/status, one syscall + a short parse (~5µs):
// cheap enough for bench phases, far too hot for per-task scopes — the
// campaign workers therefore never sample memory, only counters.
//
// When /proc is absent (non-Linux, restricted mounts) samples come back
// `valid == false` and every consumer renders the fields as unavailable;
// nothing throws and nothing changes behavior — the same off/unavailable
// contract as the flight recorder.
//
// The allocation hook is compile-time opt-in (-DMARCOPOLO_COUNT_ALLOCS,
// CMake option of the same name): it replaces global operator new/delete
// with relaxed-atomic tallies of calls and requested bytes. Off (the
// default) the hook compiles to nothing and alloc_stats() returns zeros
// with `enabled == false`.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace marcopolo::obs {

/// One point-in-time memory reading.
struct MemorySample {
  std::uint64_t rss_kb = 0;       ///< VmRSS: resident set right now.
  std::uint64_t peak_rss_kb = 0;  ///< VmHWM: process-lifetime high-water.
  bool valid = false;             ///< False when /proc/self/status is absent.
};

/// Read VmRSS/VmHWM from /proc/self/status. Never throws; an unreadable
/// or unparsable file yields an invalid (all-zero) sample.
[[nodiscard]] MemorySample read_memory_sample();

/// Extract the kB value of one `Key:  <n> kB` line from /proc/self/status
/// text. Exposed for tests (the parser must not depend on a live /proc).
[[nodiscard]] std::optional<std::uint64_t> parse_proc_status_kb(
    std::string_view status_text, std::string_view key);

/// Cumulative allocation tallies from the operator new/delete hook.
struct AllocStats {
  std::uint64_t allocs = 0;  ///< operator new calls.
  std::uint64_t frees = 0;   ///< operator delete calls.
  std::uint64_t bytes = 0;   ///< Sum of requested allocation sizes.
  bool enabled = false;      ///< Compiled with MARCOPOLO_COUNT_ALLOCS.
};

/// Current process-wide tallies; all-zero with enabled == false unless
/// the hook was compiled in.
[[nodiscard]] AllocStats alloc_stats();

}  // namespace marcopolo::obs
