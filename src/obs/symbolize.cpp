#include "obs/symbolize.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <unordered_map>

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#define MARCOPOLO_HAVE_DLADDR 1
#else
#define MARCOPOLO_HAVE_DLADDR 0
#endif

namespace marcopolo::obs {

namespace {

std::string hex_fallback(std::uintptr_t pc) {
  char buf[2 + 2 * sizeof(std::uintptr_t) + 4];
  std::snprintf(buf, sizeof(buf), "[0x%llx]",
                static_cast<unsigned long long>(pc));
  return buf;
}

}  // namespace

std::string symbolize_pc(std::uintptr_t pc, bool adjust_return_address) {
  // A return address points to the instruction *after* the call; step
  // back one byte so a call that ends a function attributes to the
  // caller, not its lexical successor.
  const std::uintptr_t lookup = adjust_return_address && pc != 0 ? pc - 1 : pc;
#if MARCOPOLO_HAVE_DLADDR
  Dl_info info;
  if (lookup != 0 && dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // ';' is the folded-stack frame separator and must never appear
    // inside a frame name.
    std::replace(name.begin(), name.end(), ';', ':');
    return name;
  }
#endif
  // Unresolvable frames still fold/diff stably: emit the *adjusted*
  // address so a call site names the call, not the return point.
  return hex_fallback(lookup);
}

CpuProfile symbolize_profile(const RawProfile& raw) {
  CpuProfile out;
  out.hz = raw.hz;
  out.available = raw.available;
  out.dropped = raw.dropped_count();

  // Cache per (pc, adjusted) — profiles revisit the same few hundred PCs
  // thousands of times.
  std::unordered_map<std::uint64_t, std::string> cache;
  const auto name_of = [&cache](std::uintptr_t pc,
                                bool adjust) -> const std::string& {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(pc) << 1) | (adjust ? 1u : 0u);
    auto it = cache.find(key);
    if (it == cache.end()) {
      it = cache.emplace(key, symbolize_pc(pc, adjust)).first;
    }
    return it->second;
  };

  // folded maps each stack line to {count, discovery id}; events record
  // discovery ids and are remapped once the final (sorted) order exists.
  std::map<std::string, std::pair<std::uint64_t, std::uint32_t>> folded;
  std::map<std::string, HotSymbol> symbols;
  for (const ThreadSamples& thread : raw.threads) {
    for (const RawSample& sample : thread.samples) {
      if (sample.depth == 0) continue;
      ++out.samples;
      if (sample.truncated) ++out.truncated;

      // pc[0] is the leaf, pc[depth-1] the outermost frame; folded
      // stacks read root-first.
      std::string line;
      std::set<const std::string*> seen;  // count `total` once per sample
      for (std::size_t i = sample.depth; i-- > 0;) {
        const bool leaf = i == 0;
        const std::string& frame = name_of(sample.pc[i], /*adjust=*/!leaf);
        if (!line.empty()) line += ';';
        line += frame;
        auto [it, inserted] = symbols.try_emplace(frame);
        if (inserted) it->second.name = frame;
        if (leaf) ++it->second.self;
        if (seen.insert(&it->first).second) ++it->second.total;
      }
      auto [fit, fresh] = folded.try_emplace(
          line, std::pair<std::uint64_t, std::uint32_t>{
                    0, static_cast<std::uint32_t>(folded.size())});
      (void)fresh;
      fit->second.first += 1;
      out.events.push_back(
          SampleEvent{thread.thread_id, sample.ns, fit->second.second});
    }
  }

  out.stacks.reserve(folded.size());
  std::vector<std::uint32_t> remap(folded.size(), 0);
  for (auto& [stack, entry] : folded) {
    remap[entry.second] = static_cast<std::uint32_t>(out.stacks.size());
    out.stacks.push_back(FoldedStack{stack, entry.first});
  }
  for (SampleEvent& e : out.events) e.stack = remap[e.stack];
  std::sort(out.events.begin(), out.events.end(),
            [](const SampleEvent& a, const SampleEvent& b) {
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              if (a.ns != b.ns) return a.ns < b.ns;
              return a.stack < b.stack;
            });
  out.symbols.reserve(symbols.size());
  for (auto& [name, sym] : symbols) out.symbols.push_back(std::move(sym));
  std::sort(out.symbols.begin(), out.symbols.end(),
            [](const HotSymbol& a, const HotSymbol& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.name < b.name;
            });
  return out;
}

}  // namespace marcopolo::obs
