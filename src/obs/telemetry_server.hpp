// Minimal in-process HTTP server for the telemetry hub — and the
// substrate the future MPIC corroboration service will grow on.
//
// Scope is deliberately tiny: localhost-only (binds 127.0.0.1, never a
// routable interface), GET-only, three routes, one serving thread with a
// poll()-gated accept so stop() never races a blocking accept. The hub
// publishes an immutable payload snapshot per tick; requests serve
// whatever snapshot is current, so a slow client never blocks the
// sampler and the server touches no campaign state at all (pure
// observer, like everything else in obs/).
//
// Routes:
//   /metrics       Prometheus text exposition (write_prometheus_text).
//   /healthz       "ok" — liveness for curl loops and CI smoke.
//   /snapshot.json the latest tick as one JSON object (what a tick line
//                  in timeseries.ndjson carries, minus the "type" tag).
//
// Degradation follows the PR 7 hw-counter pattern: a port that cannot be
// bound (in use, no socket API, sandbox) leaves the server unavailable
// with a reason string the CLIs echo once — never an error, never a
// changed exit code.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace marcopolo::obs {

/// One immutable published snapshot; requests share it via shared_ptr so
/// a publish never invalidates an in-flight response.
struct TelemetryPayload {
  std::string prometheus;     ///< /metrics body.
  std::string snapshot_json;  ///< /snapshot.json body.
};

class TelemetryServer {
 public:
  TelemetryServer() = default;
  ~TelemetryServer() { stop(); }
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = kernel-assigned, see port()) and start
  /// the serving thread. Returns false — with unavailable_reason() set —
  /// when the socket cannot be created, bound, or listened on.
  bool start(int port);

  /// Join the serving thread and close the socket. Idempotent.
  void stop();

  /// Swap the payload served to subsequent requests.
  void publish(std::shared_ptr<const TelemetryPayload> payload);

  [[nodiscard]] bool available() const {
    return available_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::string unavailable_reason() const;

 private:
  void serve_loop();
  void handle_client(int fd);

  int listen_fd_ = -1;
  int port_ = -1;
  std::thread thread_;
  std::atomic<bool> available_{false};
  std::atomic<bool> stop_{false};
  mutable std::mutex mutex_;  ///< Guards reason_ and payload_.
  std::string reason_;
  std::shared_ptr<const TelemetryPayload> payload_;
};

/// Blocking one-shot HTTP GET against 127.0.0.1:`port` (the client side
/// of the server above; used by `mpinspect watch` and the tests).
/// Returns false with `*error` set on connect/IO failure; on success
/// `*status` is the response code and `*body` the entity body.
[[nodiscard]] bool http_get_localhost(int port, const std::string& path,
                                      int* status, std::string* body,
                                      std::string* error = nullptr);

}  // namespace marcopolo::obs
