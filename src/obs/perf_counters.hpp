// Hardware performance-counter attribution for gated bench phases.
//
// Wall-clock regression gates bottom out at scheduler jitter — PR 6 had
// to add a 10µs quantile floor to `evaluate_gate` just to keep CI quiet.
// Instructions retired have no such floor: for a deterministic user-mode
// workload the count is stable to ~0.01% run-to-run, which lets the perf
// gate fail 3% regressions on the resilience kernels and delta-replay
// paths that a 25% wall-clock gate cannot see.
//
// `PerfCounterGroup` opens one perf_event_open(2) group on the calling
// thread — leader: instructions; members: cycles, cache-references,
// cache-misses, branch-misses — and reads all five in a single group
// read (PERF_FORMAT_GROUP), so every sample is a consistent snapshot.
// Counters are user-mode only (exclude_kernel/exclude_hv) to keep them
// deterministic, and per-thread scoped: a group opened on the main
// thread does not see worker threads. All gated counter phases are
// single-threaded; the parallel campaign instead gives each worker its
// own group (fast_campaign.cpp, `hw_counters`).
//
// Availability is a property of the host, not the build: containers and
// VMs commonly deny perf_event_open (EACCES under perf_event_paranoid,
// ENOENT with no PMU). The contract mirrors the flight recorder's
// off/unavailable rule — when the group cannot open, `available()` is
// false, reads return invalid samples, every consumer renders
// "unavailable", and no observable output changes shape beyond that
// annotation. Nothing throws, nothing retries.
//
// `PhaseCounters` is the RAII scope benches wrap around each gated
// phase: it samples counters and RSS (mem_stats.hpp) at entry and on
// destruction fills a `PhaseStats` with the deltas plus the process
// peak-RSS high-water. A null group is valid and yields counter-invalid
// stats, so call sites need no availability branches.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/mem_stats.hpp"

namespace marcopolo::obs {

/// One consistent reading (or delta) of the five-event group.
struct CounterSample {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  bool valid = false;

  /// Instructions per cycle; 0 when cycles did not count.
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }

  /// cache-misses / cache-references; 0 when references did not count.
  [[nodiscard]] double cache_miss_rate() const {
    return cache_references == 0 ? 0.0
                                 : static_cast<double>(cache_misses) /
                                       static_cast<double>(cache_references);
  }

  /// Delta between two samples; valid only when both inputs are.
  [[nodiscard]] CounterSample operator-(const CounterSample& start) const {
    CounterSample d;
    d.instructions = instructions - start.instructions;
    d.cycles = cycles - start.cycles;
    d.cache_references = cache_references - start.cache_references;
    d.cache_misses = cache_misses - start.cache_misses;
    d.branch_misses = branch_misses - start.branch_misses;
    d.valid = valid && start.valid;
    return d;
  }

  CounterSample& operator+=(const CounterSample& other) {
    instructions += other.instructions;
    cycles += other.cycles;
    cache_references += other.cache_references;
    cache_misses += other.cache_misses;
    branch_misses += other.branch_misses;
    valid = valid || other.valid;
    return *this;
  }
};

/// A perf_event_open group scoped to the constructing thread.
///
/// The leader (instructions) is required: if it cannot open, the whole
/// group is unavailable. Member events are individually optional — a
/// PMU without a cache-miss event still yields instructions/cycles, and
/// the missing members read as zero.
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when the leader opened and reads will produce valid samples.
  [[nodiscard]] bool available() const { return fds_[0] >= 0; }

  /// Human-readable reason when unavailable ("" when available), e.g.
  /// "perf_event_open: Permission denied (perf_event_paranoid=2)".
  [[nodiscard]] const std::string& unavailable_reason() const {
    return reason_;
  }

  /// Current cumulative counts via one group read; invalid sample when
  /// unavailable or the read fails.
  [[nodiscard]] CounterSample read() const;

  /// Whole-process probe: opens (and closes) a throwaway group once and
  /// caches the verdict. Lets call sites skip per-worker setup cost and
  /// lets CLIs report availability without constructing a group.
  static bool probe();

  /// Reason string matching probe(); "" when counters are available.
  static const std::string& probe_reason();

  /// Value of /proc/sys/kernel/perf_event_paranoid, or -1 when the file
  /// is unreadable (non-Linux).
  static int paranoid_level();

  static constexpr int kEvents = 5;

 private:
  std::array<int, kEvents> fds_;  // [0] leader; -1 where open failed.
  std::array<std::uint64_t, kEvents> ids_{};
  std::string reason_;
};

/// Everything a gated phase reports besides wall-clock.
struct PhaseStats {
  CounterSample counters;        ///< Deltas across the phase.
  std::int64_t rss_delta_kb = 0; ///< VmRSS change across the phase.
  std::uint64_t peak_rss_kb = 0; ///< Process VmHWM at phase end.
  bool mem_valid = false;        ///< /proc/self/status was readable.
};

/// RAII scope: samples counters + RSS at construction, fills `*out` with
/// the deltas at destruction. `group` may be null (counters invalid) and
/// `out` may be null (scope is a no-op) — call sites stay branch-free.
class PhaseCounters {
 public:
  PhaseCounters(const PerfCounterGroup* group, PhaseStats* out)
      : group_(group), out_(out) {
    if (out_ == nullptr) return;
    if (group_ != nullptr) start_counters_ = group_->read();
    start_mem_ = read_memory_sample();
  }

  ~PhaseCounters() {
    if (out_ == nullptr) return;
    PhaseStats stats;
    if (group_ != nullptr) stats.counters = group_->read() - start_counters_;
    MemorySample end_mem = read_memory_sample();
    if (start_mem_.valid && end_mem.valid) {
      stats.rss_delta_kb = static_cast<std::int64_t>(end_mem.rss_kb) -
                           static_cast<std::int64_t>(start_mem_.rss_kb);
      stats.peak_rss_kb = end_mem.peak_rss_kb;
      stats.mem_valid = true;
    }
    *out_ = stats;
  }

  PhaseCounters(const PhaseCounters&) = delete;
  PhaseCounters& operator=(const PhaseCounters&) = delete;

 private:
  const PerfCounterGroup* group_;
  PhaseStats* out_;
  CounterSample start_counters_;
  MemorySample start_mem_;
};

}  // namespace marcopolo::obs
