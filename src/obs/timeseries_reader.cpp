#include "obs/timeseries_reader.hpp"

#include <fstream>
#include <istream>
#include <sstream>

#include "obs/json.hpp"

namespace marcopolo::obs {

namespace {

constexpr int kSupportedSchema = 1;

void fail(ReadTimeseries* out, std::size_t line, std::string message) {
  out->errors.push_back({line, std::move(message)});
}

void decode_meta(const json::Value& value, std::size_t line,
                 ReadTimeseries* out) {
  const std::uint64_t schema = value.u64_or("timeseries_schema", 0);
  if (schema != kSupportedSchema) {
    fail(out, line,
         "unsupported timeseries_schema " + std::to_string(schema) +
             " (reader supports " + std::to_string(kSupportedSchema) + ")");
    return;
  }
  out->schema = static_cast<int>(schema);
  out->has_meta = true;
  out->tick_ms = value.u64_or("tick_ms", 0);
  out->start_ns = value.u64_or("start_ns", 0);
}

TimeseriesTick fill_tick(const json::Value& value) {
  TimeseriesTick tick;
  tick.tick = value.u64_or("tick", 0);
  tick.t_ns = value.u64_or("t_ns", 0);
  tick.tasks_done = value.u64_or("tasks_done", 0);
  tick.tasks_total = value.u64_or("tasks_total", 0);
  tick.tasks_per_s = value.number_or("tasks_per_s", 0.0);
  tick.workers_live = value.u64_or("workers_live", 0);
  tick.stalls = value.u64_or("stalls", 0);
  tick.verdicts = value.u64_or("verdicts", 0);
  tick.adversary_verdicts = value.u64_or("adversary_verdicts", 0);
  tick.instructions = value.u64_or("instructions", 0);
  tick.instructions_per_s = value.number_or("instructions_per_s", 0.0);
  if (const json::Value* rss = value.find("rss_kb"); rss != nullptr) {
    tick.has_mem = true;
    tick.rss_kb = rss->is_number() ? rss->u64() : 0;
    tick.peak_rss_kb = value.u64_or("peak_rss_kb", 0);
  }
  tick.hot_phase = value.string_or("hot_phase", "");
  if (const json::Value* eta = value.find("eta_s");
      eta != nullptr && eta->is_number()) {
    tick.has_eta = true;
    tick.eta_s = eta->number();
  }
  tick.final_tick = value.bool_or("final", false);
  if (const json::Value* counters = value.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, v] : counters->object()) {
      tick.counters.emplace_back(name, v.is_number() ? v.u64() : 0);
    }
  }
  return tick;
}

void decode_tick(const json::Value& value, std::size_t line,
                 ReadTimeseries* out) {
  TimeseriesTick tick = fill_tick(value);

  // Tick ids must strictly increase — the invariant check_trace_bundle
  // leans on to reject tampered or interleaved-writer files.
  if (!out->ticks.empty() && tick.tick <= out->ticks.back().tick) {
    fail(out, line,
         "non-monotone tick id " + std::to_string(tick.tick) +
             " (previous was " + std::to_string(out->ticks.back().tick) +
             ")");
    return;
  }
  out->ticks.push_back(std::move(tick));
}

}  // namespace

std::uint64_t TimeseriesTick::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

ReadTimeseries TimeseriesReader::read(std::istream& in) {
  ReadTimeseries out;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++out.lines;
    json::Value value;
    try {
      value = json::parse(line);
    } catch (const json::ParseError& err) {
      fail(&out, line_number, err.what());
      continue;
    }
    if (!value.is_object()) {
      fail(&out, line_number, "record is not a JSON object");
      continue;
    }
    const json::Value* type = value.find("type");
    if (type == nullptr || !type->is_string()) {
      fail(&out, line_number, "record has no string \"type\" field");
      continue;
    }
    if (type->str() == "meta") {
      decode_meta(value, line_number, &out);
    } else if (type->str() == "tick") {
      decode_tick(value, line_number, &out);
    } else {
      ++out.skipped_records;  // a newer writer's record type
    }
  }
  return out;
}

ReadTimeseries TimeseriesReader::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    ReadTimeseries out;
    fail(&out, 0, "cannot open " + path);
    return out;
  }
  return read(in);
}

bool TimeseriesReader::parse_snapshot(const std::string& text,
                                      TimeseriesTick* out,
                                      std::string* error) {
  json::Value value;
  try {
    value = json::parse(text);
  } catch (const json::ParseError& err) {
    if (error != nullptr) *error = err.what();
    return false;
  }
  if (!value.is_object()) {
    if (error != nullptr) *error = "snapshot is not a JSON object";
    return false;
  }
  *out = fill_tick(value);
  return true;
}

}  // namespace marcopolo::obs
