// Minimal JSON support shared by every obs writer and reader.
//
// The repo deliberately carries no external JSON dependency; what it
// needs is small and stable: escape strings on the write side
// (manifests, NDJSON journal, Chrome trace) and parse its *own* output
// on the read side (JournalReader, ManifestReader, `mpinspect`). The
// parser is a strict recursive-descent one — it rejects trailing
// garbage and malformed escapes, which doubles as a syntax check on the
// writers — and preserves integer precision: a token without '.' or an
// exponent is stored as a 64-bit integer, so nanosecond timestamps
// (which exceed double's 2^53 exact-integer range on long-uptime hosts)
// round-trip bit-exactly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace marcopolo::obs {

/// Escape `text` for inclusion inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

namespace json {

/// Parse failure: `what()` describes the problem, `offset()` is the
/// byte position in the input where it was detected.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& why, std::size_t offset)
      : std::runtime_error("JSON error at byte " + std::to_string(offset) +
                           ": " + why),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One parsed JSON value. Numbers keep their lexical class: integer
/// tokens parse to uint64/int64 (exact), everything else to double.
struct Value {
  std::variant<std::nullptr_t, bool, std::uint64_t, std::int64_t, double,
               std::string, std::shared_ptr<Array>, std::shared_ptr<Object>>
      v;

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<std::uint64_t>(v) ||
           std::holds_alternative<std::int64_t>(v) ||
           std::holds_alternative<double>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<Array>>(v);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<Object>>(v);
  }

  /// Typed accessors; throw std::bad_variant_access on the wrong kind.
  [[nodiscard]] bool boolean() const { return std::get<bool>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] const Array& array() const {
    return *std::get<std::shared_ptr<Array>>(v);
  }
  [[nodiscard]] const Object& object() const {
    return *std::get<std::shared_ptr<Object>>(v);
  }

  /// Any number as double (integers converted).
  [[nodiscard]] double number() const;
  /// Any number as uint64: exact for integer tokens, truncated for
  /// doubles, 0 for negative values.
  [[nodiscard]] std::uint64_t u64() const;
  [[nodiscard]] std::int64_t i64() const;

  /// Object member access. at() throws std::out_of_range on a missing
  /// key; find() returns nullptr (the forward-compatible lookup: readers
  /// use it so unknown/missing fields degrade to defaults).
  [[nodiscard]] const Value& at(const std::string& key) const {
    return object().at(key);
  }
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Convenience over find(): the member's value, or `fallback` when the
  /// key is absent or holds a different kind.
  [[nodiscard]] std::uint64_t u64_or(const std::string& key,
                                     std::uint64_t fallback) const;
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;
};

/// Parse one complete JSON document (throws ParseError). Input must be
/// exactly one value plus optional surrounding whitespace.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace json
}  // namespace marcopolo::obs
