// In-process sampling CPU profiler: which *function* ate the budget.
//
// The perf-counter gate (perf_counters.hpp) says *that* a build regressed
// — instructions retired grew past 3% — and per-phase attribution says in
// which bench phase. This profiler closes the remaining gap down to
// function granularity without reaching for external tooling: a per-thread
// CPU-time sampling profiler whose output feeds the same bundle/diff
// workflow as every other observability artifact (`profile.folded` for
// flamegraphs, sample events in trace.json for Perfetto, a top-N
// hot-symbol table in the run manifest for `mpinspect hotspots` / `diff`).
//
// Mechanism, per attached thread:
//   - timer_create(CLOCK_THREAD_CPUTIME_ID, SIGEV_THREAD_ID) arms a POSIX
//     timer that counts the thread's own CPU time — a blocked worker is
//     never sampled, so sample counts are CPU shares, not wall shares.
//   - The timer fires SIGPROF at `hz` (default 997 Hz — a prime, so the
//     sampler cannot phase-lock onto millisecond-periodic work).
//   - The SA_SIGINFO handler receives the thread's SampleRing through
//     sival_ptr, reads PC and frame pointer from the interrupted ucontext,
//     and walks the frame-pointer chain (the build keeps
//     -fno-omit-frame-pointer for exactly this) into the ring. The walk is
//     async-signal-safe by construction: no allocation, no locks, no
//     library calls except clock_gettime (a vDSO read); every dereference
//     is bounds-checked against the thread's stack extent.
//   - Symbolization happens entirely offline, after drain(): dladdr +
//     __cxa_demangle over the unique PCs, with a "[0xADDR]" fallback for
//     addresses no loaded object claims.
//
// Contract (the flight recorder's null-by-default / pure-observer rule):
// pipelines carry a `SamplingProfiler*` defaulting to nullptr; a null or
// unavailable profiler makes ProfiledThread a no-op. Profiling on, off,
// or unavailable leaves the ResultStore, manifest counters, and journal
// records byte-identical (test-enforced) — the profiler only ever *adds*
// its own artifacts (profile.folded, trace.json sample events, the
// manifest "profile" section), never perturbs anyone else's.
//
// Availability is a property of host and architecture, not the build:
// frame-pointer walking is implemented for x86-64 and aarch64 on Linux;
// elsewhere probe() is false with a reason and everything degrades to
// off. Nothing throws, nothing retries.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace marcopolo::obs {

/// Default sampling rate. Prime, so periodic workloads cannot alias.
inline constexpr std::uint32_t kDefaultProfileHz = 997;

/// One decoded sample: the interrupted PC plus its return-address chain.
struct RawSample {
  static constexpr std::size_t kMaxDepth = 64;
  std::uint64_t ns = 0;     ///< CLOCK_MONOTONIC at sample time.
  std::uint16_t depth = 0;  ///< Frames stored in pc[] (>= 1 when valid).
  bool truncated = false;   ///< Walk stopped at kMaxDepth, frames remained.
  /// pc[0] is the interrupted instruction (leaf); pc[i>0] are return
  /// addresses, callee to caller. Symbolization subtracts 1 from return
  /// addresses to land inside the call instruction.
  std::array<std::uintptr_t, kMaxDepth> pc{};
};

/// Lock-free fixed-capacity sample sink owned by one profiled thread.
///
/// The writer is the SIGPROF handler, which always runs on the ring's own
/// thread (SIGEV_THREAD_ID targets the signal), so appends never race
/// each other; `close()` is the only cross-path edge — it is set before
/// timer_delete(), and a signal the kernel already queued when the timer
/// died sees the closed flag and drops the sample instead of writing
/// into a ring being drained. Samples are stored word-encoded
/// ([header][ns][pc...]) so a deep stack costs depth+2 words, not a
/// fixed-size slot.
class SampleRing {
 public:
  /// Storage is allocated *uninitialized*: decode() only ever reads words
  /// the handler wrote, and zero-filling a 16 MiB ring would eagerly
  /// fault every page at attach time — measurable per-worker cost in the
  /// recording-overhead budget, where lazy faulting of the few touched
  /// pages is nearly free.
  explicit SampleRing(std::size_t capacity_words)
      : words_(new std::uint64_t[capacity_words]),
        capacity_(capacity_words) {}

  /// Append one sample. Async-signal-safe: bounded work, no allocation.
  /// Returns false (and counts the drop) when the ring is closed or full.
  bool try_append(const RawSample& sample);

  /// Refuse all further appends. Called before the timer is torn down so
  /// a signal arriving inside the drain path cannot touch the storage.
  void close() { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Decode everything appended so far. Only meaningful after close()
  /// (drain-time; the recorder-style owner guarantees the ordering).
  [[nodiscard]] std::vector<RawSample> decode() const;

  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Stack extent of the owning thread, set at attach time; the handler
  /// rejects any frame pointer outside [stack_lo, stack_hi).
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;

 private:
  std::unique_ptr<std::uint64_t[]> words_;
  std::size_t capacity_ = 0;   ///< Ring capacity in words.
  std::size_t used_ = 0;       ///< Words written (owner thread only).
  std::uint64_t samples_ = 0;  ///< Samples encoded (owner thread only).
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> closed_{false};
};

/// Everything one profiled thread produced.
struct ThreadSamples {
  std::uint32_t thread_id = 0;  ///< Attach order, 0-based.
  std::vector<RawSample> samples;
  std::uint64_t dropped = 0;
};

/// A drained run's raw (unsymbolized) profile.
struct RawProfile {
  std::uint32_t hz = 0;
  /// False when the profiler never opened (probe failed); consumers emit
  /// nothing, so an unavailable profiler matches a null one byte for byte.
  bool available = false;
  std::vector<ThreadSamples> threads;

  [[nodiscard]] std::uint64_t sample_count() const {
    std::uint64_t n = 0;
    for (const ThreadSamples& t : threads) n += t.samples.size();
    return n;
  }
  [[nodiscard]] std::uint64_t dropped_count() const {
    std::uint64_t n = 0;
    for (const ThreadSamples& t : threads) n += t.dropped;
    return n;
  }
};

class SamplingProfiler;

/// RAII thread attachment: arms the per-thread CPU-time timer for the
/// scope of the guard. Null or unavailable profiler = complete no-op, so
/// worker loops attach unconditionally.
class ProfiledThread {
 public:
  explicit ProfiledThread(SamplingProfiler* profiler);
  ~ProfiledThread();
  ProfiledThread(const ProfiledThread&) = delete;
  ProfiledThread& operator=(const ProfiledThread&) = delete;

 private:
  SamplingProfiler* profiler_ = nullptr;
  SampleRing* ring_ = nullptr;
  /// Opaque timer handle (timer_t) — stored as pointer-sized storage so
  /// the header needs no <time.h>.
  void* timer_ = nullptr;
  bool timer_armed_ = false;
};

/// Owns the per-thread rings plus the process-wide SIGPROF handler
/// registration. One live instance at a time (a second concurrent
/// profiler reports unavailable); mirrors FlightRecorder's shape —
/// threads attach, the owner drains after they finish.
class SamplingProfiler {
 public:
  explicit SamplingProfiler(std::uint32_t hz = kDefaultProfileHz);
  ~SamplingProfiler();
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// True when this instance can arm timers and record samples.
  [[nodiscard]] bool available() const { return available_; }
  /// Human-readable reason when unavailable ("" when available).
  [[nodiscard]] const std::string& unavailable_reason() const {
    return reason_;
  }
  [[nodiscard]] std::uint32_t hz() const { return hz_; }

  /// Whole-process probe: is sampling possible on this host/arch at all?
  /// Cached after the first call; lets CLIs report availability without
  /// constructing a profiler.
  static bool probe();
  static const std::string& probe_reason();

  /// Merge every ring into one RawProfile and reset the profiler. Call
  /// after all ProfiledThread guards have been destroyed (mirrors
  /// FlightRecorder::drain()).
  [[nodiscard]] RawProfile drain();

  /// Ring capacity per attached thread, in words (~8 bytes each; a
  /// sample costs depth + 2). The default holds ~2 minutes at 997 Hz for
  /// typical 15-frame stacks; overflow is counted, never resized.
  static constexpr std::size_t kRingWords = 1u << 21;  // 16 MiB / thread

 private:
  friend class ProfiledThread;
  /// Called by ProfiledThread on its own thread. Returns the ring (owned
  /// by the profiler, alive past the thread's exit) or nullptr when
  /// unavailable.
  SampleRing* attach_current_thread(void** timer_out, bool* armed_out);
  void detach_current_thread(SampleRing* ring, void* timer, bool armed);

  std::uint32_t hz_;
  bool available_ = false;
  std::string reason_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<SampleRing>> rings_;
};

}  // namespace marcopolo::obs
