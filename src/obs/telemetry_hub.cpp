#include "obs/telemetry_hub.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <filesystem>
#include <sstream>

#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/mem_stats.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/trace_export.hpp"

namespace marcopolo::obs {

namespace {

constexpr int kTimeseriesSchema = 1;

/// The phase histograms whose per-tick ns deltas pick the hot phase.
constexpr const char* kPhaseNames[3] = {"propagate", "classify", "record"};
constexpr const char* kPhaseHistograms[3] = {"campaign.phase.propagate_ns",
                                             "campaign.phase.classify_ns",
                                             "campaign.phase.record_ns"};

[[nodiscard]] std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// JSON number for a rate/ETA double: finite shortest-form, never
/// inf/nan (which JSON lacks) — those render as 0.
void append_double(std::string* out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out->append(buf);
}

void append_u64_field(std::string* out, const char* key,
                      std::uint64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"%s\":%" PRIu64, key, value);
  out->append(buf);
}

}  // namespace

TelemetryHub::TelemetryHub(TelemetryConfig config)
    : config_(std::move(config)) {
  config_.tick_ms = std::max(config_.tick_ms, 10);
  config_.stall_ticks = std::max(config_.stall_ticks, 1);
}

TelemetryHub::~TelemetryHub() { stop(); }

std::string TelemetryHub::resolve_timeseries_path(
    const std::string& configured) {
  if (configured.empty()) return {};
  const std::string suffix = ".ndjson";
  if (configured.size() >= suffix.size() &&
      configured.compare(configured.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return configured;
  }
  return configured + "/timeseries.ndjson";
}

void TelemetryHub::start() {
  {
    std::scoped_lock lock(tick_mutex_);
    if (started_) return;
    started_ = true;
    stop_requested_ = false;
    start_time_ = std::chrono::steady_clock::now();
    next_tick_ = 0;
    prev_t_ns_ = 0;
    prev_tasks_done_ = 0;
    prev_instructions_ = 0;
    prev_phase_ns_[0] = prev_phase_ns_[1] = prev_phase_ns_[2] = 0;
    zero_progress_ticks_ = 0;

    if (!config_.timeseries_path.empty()) {
      const std::string path =
          resolve_timeseries_path(config_.timeseries_path);
      std::error_code ec;
      const auto parent = std::filesystem::path(path).parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent, ec);
      timeseries_ = std::fopen(path.c_str(), "wb");
      if (timeseries_ == nullptr) {
        MARCOPOLO_LOG(Warn) << "telemetry: cannot open time-series file"
                            << field("path", path);
      } else {
        const std::uint64_t start_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        std::fprintf(timeseries_,
                     "{\"type\":\"meta\",\"timeseries_schema\":%d,"
                     "\"tick_ms\":%d,\"start_ns\":%" PRIu64 "}\n",
                     kTimeseriesSchema, config_.tick_ms, start_ns);
        std::fflush(timeseries_);
      }
    }
    if (config_.serve_port >= 0) {
      server_ = std::make_unique<TelemetryServer>();
      server_->start(config_.serve_port);  // failure = degraded, not fatal
    }
    // Created under the lock (the thread's first step is to take it), so
    // a racing stop() always sees a joinable sampler.
    sampler_ = std::thread([this] { sampler_loop(); });
  }
}

void TelemetryHub::stop() {
  {
    std::scoped_lock lock(tick_mutex_);
    if (!started_) return;
    stop_requested_ = true;
  }
  tick_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  {
    std::scoped_lock lock(tick_mutex_);
    tick_locked(/*final_tick=*/true);
    if (timeseries_ != nullptr) {
      std::fclose(timeseries_);
      timeseries_ = nullptr;
    }
    started_ = false;
  }
  if (server_ != nullptr) server_->stop();
}

void TelemetryHub::sampler_loop() {
  std::unique_lock lock(tick_mutex_);
  while (!stop_requested_) {
    const bool stopping = tick_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.tick_ms),
        [this] { return stop_requested_; });
    if (stopping) break;
    tick_locked(/*final_tick=*/false);
  }
}

void TelemetryHub::set_metrics(MetricsRegistry* metrics) {
  std::scoped_lock lock(tick_mutex_);
  config_.metrics = metrics;
  // Handles and phase baselines belong to the old registry.
  stall_counter_ = Counter{};
  prev_phase_ns_[0] = prev_phase_ns_[1] = prev_phase_ns_[2] = 0;
}

void TelemetryHub::add_planned_tasks(std::uint64_t n) {
  planned_tasks_.fetch_add(n, std::memory_order_relaxed);
}

TelemetryWorkerSlot* TelemetryHub::open_worker_slot() {
  std::scoped_lock lock(slots_mutex_);
  slots_.push_back(std::make_unique<TelemetryWorkerSlot>());
  return slots_.back().get();
}

void TelemetryHub::close_worker_slot(TelemetryWorkerSlot* slot) {
  if (slot != nullptr) slot->live.store(false, std::memory_order_relaxed);
}

void TelemetryHub::note_task_done(TelemetryWorkerSlot* slot,
                                  std::uint64_t n) {
  if (slot == nullptr) return;
  slot->completed.fetch_add(n, std::memory_order_relaxed);
  slot->last_complete_ns.store(steady_now_ns(), std::memory_order_relaxed);
}

void TelemetryHub::tick_now() {
  std::scoped_lock lock(tick_mutex_);
  if (start_time_ == std::chrono::steady_clock::time_point{}) {
    start_time_ = std::chrono::steady_clock::now();
  }
  tick_locked(/*final_tick=*/false);
}

TelemetrySnapshot TelemetryHub::latest() const {
  std::scoped_lock lock(latest_mutex_);
  return latest_;
}

bool TelemetryHub::serving() const {
  return server_ != nullptr && server_->available();
}

int TelemetryHub::port() const {
  return server_ != nullptr ? server_->port() : -1;
}

std::string TelemetryHub::serve_reason() const {
  if (config_.serve_port < 0) return "not configured";
  if (server_ == nullptr) return "not started";
  return server_->unavailable_reason();
}

void TelemetryHub::tick_locked(bool final_tick) {
  const auto now = std::chrono::steady_clock::now();

  TelemetrySnapshot snap;
  snap.tick = next_tick_++;
  snap.t_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_time_)
          .count());
  snap.final_tick = final_tick;

  // Worker progress. Completed counts are monotone, so summing relaxed
  // loads mid-churn only shifts a task between adjacent ticks.
  struct WorkerAge {
    std::size_t index;
    std::uint64_t completed;
    std::uint64_t last_ns;  ///< 0 = never completed a task.
  };
  std::vector<WorkerAge> live_workers;
  {
    std::scoped_lock slots(slots_mutex_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const TelemetryWorkerSlot& slot = *slots_[i];
      const std::uint64_t completed =
          slot.completed.load(std::memory_order_relaxed);
      snap.tasks_done += completed;
      if (slot.live.load(std::memory_order_relaxed)) {
        ++snap.workers_live;
        live_workers.push_back(
            {i, completed,
             slot.last_complete_ns.load(std::memory_order_relaxed)});
      }
    }
  }
  snap.tasks_total = planned_tasks_.load(std::memory_order_relaxed);

  const std::uint64_t dt_ns =
      snap.t_ns > prev_t_ns_ ? snap.t_ns - prev_t_ns_ : 0;
  const double dt_s = static_cast<double>(dt_ns) / 1e9;
  const std::uint64_t done_delta =
      snap.tasks_done > prev_tasks_done_
          ? snap.tasks_done - prev_tasks_done_
          : 0;
  if (dt_s > 0.0) {
    snap.tasks_per_s = static_cast<double>(done_delta) / dt_s;
  }

  if (config_.recorder != nullptr) {
    snap.verdicts = config_.recorder->verdicts();
    snap.adversary_verdicts = config_.recorder->adversary_verdicts();
    snap.instructions = config_.recorder->instructions();
    if (dt_s > 0.0 && snap.instructions > prev_instructions_) {
      snap.instructions_per_s =
          static_cast<double>(snap.instructions - prev_instructions_) / dt_s;
    }
  }

  const MemorySample mem = read_memory_sample();
  snap.mem_valid = mem.valid;
  snap.rss_kb = mem.rss_kb;
  snap.peak_rss_kb = mem.peak_rss_kb;

  // Full registry scrape: hot phase from ns-histogram deltas, counters
  // embedded in the tick line and served as /metrics.
  MetricsSnapshot counters;
  bool have_counters = false;
  if (config_.metrics != nullptr) {
    counters = config_.metrics->snapshot();
    have_counters = true;
    std::uint64_t best_delta = 0;
    for (int p = 0; p < 3; ++p) {
      const HistogramSnapshot* hist =
          counters.histogram(kPhaseHistograms[p]);
      const std::uint64_t sum = hist != nullptr ? hist->sum : 0;
      const std::uint64_t delta =
          sum > prev_phase_ns_[p] ? sum - prev_phase_ns_[p] : 0;
      prev_phase_ns_[p] = sum;
      if (delta > best_delta) {
        best_delta = delta;
        snap.hot_phase = kPhaseNames[p];
      }
    }
  }

  if (snap.tasks_total > snap.tasks_done && snap.tasks_per_s > 0.0) {
    snap.eta_s = static_cast<double>(snap.tasks_total - snap.tasks_done) /
                 snap.tasks_per_s;
  }

  // Stall watchdog: fires once per zero-progress episode, at exactly
  // stall_ticks consecutive no-progress ticks with live workers.
  if (!final_tick && snap.workers_live > 0 && done_delta == 0) {
    ++zero_progress_ticks_;
    if (zero_progress_ticks_ == config_.stall_ticks) {
      stalls_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t now_ns = steady_now_ns();
      std::ostringstream ages;
      for (const WorkerAge& w : live_workers) {
        if (!ages.str().empty()) ages << ' ';
        ages << 'w' << w.index << '=';
        if (w.last_ns == 0) {
          ages << "never";
        } else {
          ages << (static_cast<double>(now_ns - w.last_ns) / 1e9) << 's';
        }
      }
      MARCOPOLO_LOG(Warn)
          << "campaign stalled: no task completed"
          << field("zero_ticks", zero_progress_ticks_)
          << field("tick_ms", config_.tick_ms)
          << field("workers_live", snap.workers_live)
          << field("tasks_done", snap.tasks_done)
          << field("last_completed_ages", ages.str());
      // Interned lazily so never-stalled runs leave the registry — and
      // therefore the manifest — untouched (pure-observer proof).
      if (config_.metrics != nullptr && !stall_counter_) {
        stall_counter_ = config_.metrics->counter("campaign.stalls");
      }
      stall_counter_.add(1);
    }
  } else if (done_delta != 0) {
    zero_progress_ticks_ = 0;
  }
  snap.stalls = stalls_.load(std::memory_order_relaxed);

  write_tick_line(snap, have_counters ? &counters : nullptr);

  if (server_ != nullptr && server_->available()) {
    auto payload = std::make_shared<TelemetryPayload>();
    if (have_counters) {
      std::ostringstream prom;
      write_prometheus_text(prom, counters);
      payload->prometheus = prom.str();
    }
    payload->snapshot_json = "{";
    {
      // Same fields as the tick line minus the "type" tag.
      std::string body;
      append_tick_fields(&body, snap, have_counters ? &counters : nullptr);
      payload->snapshot_json += body;
    }
    payload->snapshot_json += "}";
    server_->publish(std::move(payload));
  }

  {
    std::scoped_lock latest(latest_mutex_);
    latest_ = snap;
  }

  prev_t_ns_ = snap.t_ns;
  prev_tasks_done_ = snap.tasks_done;
  prev_instructions_ = snap.instructions;
}

void TelemetryHub::append_tick_fields(std::string* out,
                                      const TelemetrySnapshot& snap,
                                      const MetricsSnapshot* counters) {
  char head[160];
  std::snprintf(head, sizeof head,
                "\"tick\":%" PRIu64 ",\"t_ns\":%" PRIu64, snap.tick,
                snap.t_ns);
  out->append(head);
  append_u64_field(out, "tasks_done", snap.tasks_done);
  append_u64_field(out, "tasks_total", snap.tasks_total);
  out->append(",\"tasks_per_s\":");
  append_double(out, snap.tasks_per_s);
  append_u64_field(out, "workers_live",
                   static_cast<std::uint64_t>(snap.workers_live));
  append_u64_field(out, "stalls", snap.stalls);
  append_u64_field(out, "verdicts", snap.verdicts);
  append_u64_field(out, "adversary_verdicts", snap.adversary_verdicts);
  append_u64_field(out, "instructions", snap.instructions);
  out->append(",\"instructions_per_s\":");
  append_double(out, snap.instructions_per_s);
  if (snap.mem_valid) {
    append_u64_field(out, "rss_kb", snap.rss_kb);
    append_u64_field(out, "peak_rss_kb", snap.peak_rss_kb);
  }
  if (!snap.hot_phase.empty()) {
    out->append(",\"hot_phase\":\"");
    out->append(json_escape(snap.hot_phase));
    out->append("\"");
  }
  if (snap.eta_s >= 0.0) {
    out->append(",\"eta_s\":");
    append_double(out, snap.eta_s);
  }
  if (snap.final_tick) out->append(",\"final\":true");
  if (counters != nullptr) {
    out->append(",\"counters\":{");
    bool first = true;
    for (const auto& [name, value] : counters->counters) {
      if (!first) out->append(",");
      first = false;
      out->append("\"");
      out->append(json_escape(name));
      out->append("\":");
      out->append(std::to_string(value));
    }
    out->append("}");
  }
}

void TelemetryHub::write_tick_line(const TelemetrySnapshot& snap,
                                   const MetricsSnapshot* counters) {
  if (timeseries_ == nullptr) return;
  std::string line = "{\"type\":\"tick\",";
  append_tick_fields(&line, snap, counters);
  line += "}\n";
  std::fputs(line.c_str(), timeseries_);
  // Flush per tick: a killed run keeps every completed tick (the
  // crash-safe-append half of the contract; atomic rename is wrong here
  // because the file grows for the whole run).
  std::fflush(timeseries_);
}

}  // namespace marcopolo::obs
