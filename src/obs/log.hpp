// Leveled structured logging with a null sink by default.
//
//   MARCOPOLO_LOG(Info) << "campaign started" << obs::field("tasks", n);
//
// The macro short-circuits on level before constructing the message, so a
// disabled level costs one relaxed atomic load and no formatting. The
// default sink drops everything (the library is silent unless the host
// program opts in via set_stderr_sink() or set_sink()); messages are
// rendered as `LEVEL message key=value key=value`.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace marcopolo::obs {

/// Coordinates a `\r`-overwritten live status line (ProgressReporter,
/// `mpinspect watch`) with whole-line writers (the Logger stderr sink)
/// sharing one FILE*. Without coordination a log line emitted while the
/// progress line is active splices into it mid-line and the next redraw
/// leaves the tail of the longer line on screen.
///
/// All writers route through one guard per stream:
///   - live_line() renders the current status line: leading \r, padded to
///     blank any longer predecessor, newline only when `final`.
///   - println() emits a full newline-terminated line, blanking the live
///     line first and redrawing it after, so logs scroll above an intact
///     status line.
///
/// Thread-safe (one mutex per guard). stderr_guard() is the process-wide
/// instance every stderr writer shares.
class LineGuard {
 public:
  explicit LineGuard(std::FILE* out) : out_(out) {}
  LineGuard(const LineGuard&) = delete;
  LineGuard& operator=(const LineGuard&) = delete;

  /// Overwrite the live status line with `line`. With `final` the line is
  /// newline-terminated and the live state cleared (the next println()
  /// does not redraw it).
  void live_line(std::string_view line, bool final);

  /// Blank the live line, write `text` + '\n', redraw the live line.
  void println(std::string_view text);

  /// Newline-terminate and forget the live line, if any (e.g. before the
  /// process prints a non-guarded report).
  void finish_live_line();

  /// The shared guard for stderr.
  [[nodiscard]] static LineGuard& stderr_guard();

 private:
  std::FILE* out_;
  std::mutex mutex_;
  std::string live_;       ///< Current live line ("" = none).
  int last_len_ = 0;       ///< For blanking a longer predecessor.
};

enum class LogLevel : std::uint8_t { Debug = 0, Info, Warn, Error, Off };

[[nodiscard]] constexpr const char* to_cstring(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Process-wide logger (null sink, level Off until configured).
  [[nodiscard]] static Logger& global();

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed) &&
           level != LogLevel::Off;
  }

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// Replace the sink (pass nullptr to silence again). The sink is called
  /// under a mutex: it may be called from any thread but never
  /// concurrently with itself.
  void set_sink(Sink sink) {
    std::scoped_lock lock(sink_mutex_);
    sink_ = std::move(sink);
  }

  /// Convenience: level + line-buffered stderr sink. With `timestamps`,
  /// every line is prefixed with local wall-clock time
  /// (`HH:MM:SS.mmm`), the format --verbose CLI runs use.
  void set_stderr_sink(LogLevel level = LogLevel::Info,
                       bool timestamps = false);

  void write(LogLevel level, std::string_view message) {
    std::scoped_lock lock(sink_mutex_);
    if (sink_) sink_(level, message);
  }

 private:
  std::atomic<LogLevel> level_{LogLevel::Off};
  std::mutex sink_mutex_;
  Sink sink_;
};

/// A `key=value` pair streamed into a log message.
template <typename T>
struct Field {
  std::string_view key;
  const T& value;
};

template <typename T>
[[nodiscard]] Field<T> field(std::string_view key, const T& value) {
  return Field<T>{key, value};
}

/// One in-flight log statement; flushes to the global logger on
/// destruction (end of the full-expression).
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { Logger::global().write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  template <typename T>
  LogMessage& operator<<(const Field<T>& f) {
    stream_ << ' ' << f.key << '=' << f.value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace marcopolo::obs

/// Usage: MARCOPOLO_LOG(Info) << ...; — the body is skipped entirely
/// (operands unevaluated) when the level is disabled.
#define MARCOPOLO_LOG(level)                                              \
  for (bool marcopolo_log_once = ::marcopolo::obs::Logger::global().enabled( \
           ::marcopolo::obs::LogLevel::level);                            \
       marcopolo_log_once; marcopolo_log_once = false)                    \
  ::marcopolo::obs::LogMessage(::marcopolo::obs::LogLevel::level)
