#include "obs/manifest_reader.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>

#include "obs/json.hpp"

namespace marcopolo::obs {

namespace {

/// Config-echo value rendered for display (the reader does not need the
/// original variant type back, only a faithful string).
std::string display_string(const json::Value& value) {
  if (value.is_string()) return value.str();
  if (value.is_bool()) return value.boolean() ? "true" : "false";
  if (value.is_number()) {
    if (std::holds_alternative<std::uint64_t>(value.v) ||
        std::holds_alternative<std::int64_t>(value.v)) {
      return std::to_string(value.i64());
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%g", value.number());
    return buf;
  }
  return value.is_null() ? "null" : "<composite>";
}

void read_metrics(const json::Value& metrics, MetricsSnapshot& out) {
  if (const json::Value* counters = metrics.find("counters");
      counters != nullptr && counters->is_object()) {
    // json::Object is an ordered map, so this matches snapshot()'s
    // sorted-by-name contract.
    for (const auto& [name, value] : counters->object()) {
      if (value.is_number()) out.counters.emplace_back(name, value.u64());
    }
  }
  if (const json::Value* histograms = metrics.find("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, h] : histograms->object()) {
      if (!h.is_object()) continue;
      HistogramSnapshot snap;
      snap.name = name;
      snap.count = h.u64_or("count", 0);
      snap.sum = h.u64_or("sum", 0);
      snap.min = h.u64_or("min", 0);
      snap.max = h.u64_or("max", 0);
      if (const json::Value* buckets = h.find("buckets");
          buckets != nullptr && buckets->is_array()) {
        for (const json::Value& bucket : buckets->array()) {
          if (!bucket.is_object()) continue;
          snap.buckets.emplace_back(bucket.u64_or("le", 0),
                                    bucket.u64_or("count", 0));
        }
      }
      out.histograms.push_back(std::move(snap));
    }
  }
}

}  // namespace

ReadManifest ManifestReader::read_string(const std::string& text) {
  ReadManifest out;
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const json::ParseError& error) {
    out.errors.emplace_back(error.what());
    return out;
  }
  if (!doc.is_object()) {
    out.errors.emplace_back("document is not a JSON object");
    return out;
  }

  out.schema = static_cast<int>(doc.u64_or("manifest_schema", 0));
  out.tool = doc.string_or("tool", doc.string_or("benchmark", ""));
  out.version = doc.string_or("version", "");
  if (out.tool.empty()) {
    out.errors.emplace_back(
        "document has neither \"tool\" nor \"benchmark\" — not a run "
        "manifest or campaign_wallclock output");
    return out;
  }

  if (const json::Value* config = doc.find("config");
      config != nullptr && config->is_object()) {
    for (const auto& [key, value] : config->object()) {
      out.config.emplace_back(key, display_string(value));
    }
  }
  out.perf_counters = doc.string_or("perf_counters", "");
  if (const json::Value* phases = doc.find("phases");
      phases != nullptr && phases->is_array()) {
    for (const json::Value& phase : phases->array()) {
      if (!phase.is_object()) continue;
      ReadPhase row;
      row.name = phase.string_or("name", "?");
      row.seconds = phase.number_or("seconds", 0.0);
      // "instructions" is the group leader: its presence marks a
      // counter-bearing row (a phase that retired zero instructions
      // does not occur — the scope itself retires some).
      if (phase.find("instructions") != nullptr) {
        row.has_counters = true;
        row.instructions = phase.u64_or("instructions", 0);
        row.cycles = phase.u64_or("cycles", 0);
        row.cache_references = phase.u64_or("cache_references", 0);
        row.cache_misses = phase.u64_or("cache_misses", 0);
        row.branch_misses = phase.u64_or("branch_misses", 0);
      }
      if (phase.find("peak_rss_kb") != nullptr) {
        row.has_mem = true;
        row.peak_rss_kb = phase.u64_or("peak_rss_kb", 0);
        row.rss_delta_kb =
            static_cast<std::int64_t>(phase.number_or("rss_delta_kb", 0.0));
      }
      out.phases.push_back(std::move(row));
    }
  }
  if (const json::Value* metrics = doc.find("metrics");
      metrics != nullptr && metrics->is_object()) {
    read_metrics(*metrics, out.metrics);
  }
  if (const json::Value* runs = doc.find("runs");
      runs != nullptr && runs->is_array()) {
    for (const json::Value& run : runs->array()) {
      if (!run.is_object()) continue;
      BenchRunRow row;
      row.threads = run.u64_or("threads", 0);
      row.seconds = run.number_or("seconds", 0.0);
      row.tasks = run.u64_or("tasks", 0);
      row.propagations = run.u64_or("propagations", 0);
      row.store_identical = run.bool_or("store_identical", true);
      out.runs.push_back(row);
    }
  }
  if (const json::Value* recording = doc.find("recording");
      recording != nullptr && recording->is_object()) {
    out.has_recording = true;
    out.recording_overhead =
        recording->number_or("recording_overhead", 0.0);
  }
  if (const json::Value* profile = doc.find("profile");
      profile != nullptr && profile->is_object()) {
    out.has_profile = true;
    out.profile.hz = static_cast<std::uint32_t>(profile->u64_or("hz", 0));
    out.profile.samples = profile->u64_or("samples", 0);
    out.profile.dropped = profile->u64_or("dropped", 0);
    out.profile.truncated = profile->u64_or("truncated", 0);
    if (const json::Value* symbols = profile->find("symbols");
        symbols != nullptr && symbols->is_array()) {
      for (const json::Value& symbol : symbols->array()) {
        if (!symbol.is_object()) continue;
        ReadHotSymbol row;
        row.name = symbol.string_or("name", "?");
        row.self = symbol.u64_or("self", 0);
        row.total = symbol.u64_or("total", 0);
        out.profile.symbols.push_back(std::move(row));
      }
    }
  }
  return out;
}

ReadManifest ManifestReader::read(std::istream& in) {
  std::ostringstream text;
  text << in.rdbuf();
  return read_string(text.str());
}

ReadManifest ManifestReader::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ReadManifest out;
    out.errors.emplace_back("cannot open " + path);
    return out;
  }
  return read(in);
}

}  // namespace marcopolo::obs
