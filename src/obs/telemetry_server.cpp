#include "obs/telemetry_server.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define MARCOPOLO_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define MARCOPOLO_HAVE_SOCKETS 0
#endif

namespace marcopolo::obs {

namespace {

#if MARCOPOLO_HAVE_SOCKETS

// Write all of `data`; short writes (signals, socket buffers) resume.
// Best-effort: a client that hangs up mid-response is its own problem.
void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, int status, const char* status_text,
                   const char* content_type, const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     status_text +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  send_all(fd, head.data(), head.size());
  send_all(fd, body.data(), body.size());
}

#endif  // MARCOPOLO_HAVE_SOCKETS

}  // namespace

bool TelemetryServer::start(int port) {
#if !MARCOPOLO_HAVE_SOCKETS
  std::scoped_lock lock(mutex_);
  reason_ = "no socket API on this platform";
  (void)port;
  return false;
#else
  stop();  // restartable; also clears a previous failed attempt
  stop_.store(false, std::memory_order_release);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::scoped_lock lock(mutex_);
    reason_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    std::scoped_lock lock(mutex_);
    reason_ = "bind 127.0.0.1:" + std::to_string(port) + ": " +
              std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) < 0) {
    std::scoped_lock lock(mutex_);
    reason_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  // Resolve the actual port (port 0 requests a kernel-assigned one).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  available_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
#endif
}

void TelemetryServer::stop() {
#if MARCOPOLO_HAVE_SOCKETS
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  available_.store(false, std::memory_order_release);
#endif
}

void TelemetryServer::publish(std::shared_ptr<const TelemetryPayload> payload) {
  std::scoped_lock lock(mutex_);
  payload_ = std::move(payload);
}

std::string TelemetryServer::unavailable_reason() const {
  std::scoped_lock lock(mutex_);
  return reason_;
}

void TelemetryServer::serve_loop() {
#if MARCOPOLO_HAVE_SOCKETS
  while (!stop_.load(std::memory_order_acquire)) {
    // poll() gates the accept so stop() only ever waits <= 250ms.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 250);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_client(client);
    ::close(client);
  }
#endif
}

void TelemetryServer::handle_client(int fd) {
#if MARCOPOLO_HAVE_SOCKETS
  // Read until the header terminator or a small cap; only the request
  // line matters. A 1s receive timeout bounds a stalled client.
  timeval tv{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line.compare(0, 4, "GET ") != 0) {
    send_response(fd, 405, "Method Not Allowed", "text/plain",
                  "only GET is supported\n");
    return;
  }
  std::string path = line.substr(4);
  const std::size_t sp = path.find(' ');
  if (sp != std::string::npos) path.resize(sp);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::shared_ptr<const TelemetryPayload> payload;
  {
    std::scoped_lock lock(mutex_);
    payload = payload_;
  }
  if (path == "/healthz") {
    send_response(fd, 200, "OK", "text/plain", "ok\n");
  } else if (path == "/metrics") {
    send_response(fd, 200, "OK", "text/plain; version=0.0.4",
                  payload != nullptr ? payload->prometheus : std::string());
  } else if (path == "/snapshot.json") {
    send_response(fd, 200, "OK", "application/json",
                  payload != nullptr ? payload->snapshot_json : "{}");
  } else {
    send_response(fd, 404, "Not Found", "text/plain", "not found\n");
  }
#else
  (void)fd;
#endif
}

bool http_get_localhost(int port, const std::string& path, int* status,
                        std::string* body, std::string* error) {
#if !MARCOPOLO_HAVE_SOCKETS
  (void)port;
  (void)path;
  (void)status;
  (void)body;
  if (error != nullptr) *error = "no socket API on this platform";
  return false;
#else
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    if (error != nullptr) {
      *error = "connect 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  send_all(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos ||
      response.compare(0, 5, "HTTP/") != 0) {
    if (error != nullptr) *error = "malformed HTTP response";
    return false;
  }
  const std::size_t status_at = response.find(' ');
  int code = 0;
  if (status_at != std::string::npos) {
    code = std::atoi(response.c_str() + status_at + 1);
  }
  if (code == 0) {
    if (error != nullptr) *error = "missing HTTP status code";
    return false;
  }
  if (status != nullptr) *status = code;
  if (body != nullptr) *body = response.substr(header_end + 4);
  return true;
#endif
}

}  // namespace marcopolo::obs
