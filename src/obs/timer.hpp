// RAII phase timing and an optional structured trace ring.
//
// ScopedTimer measures one span with the steady clock and feeds the
// elapsed nanoseconds into a Histogram on destruction; with a null
// histogram handle it never reads the clock at all. Spans can also be
// mirrored into a TraceRing — a fixed-capacity in-memory ring of recent
// spans for post-mortem inspection. The ring is mutex-guarded and OFF by
// default (capacity 0): unlike the sharded counters it is not
// zero-overhead, so hot loops should only attach one when debugging.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace marcopolo::obs {

/// Fixed-capacity ring of completed spans (newest overwrite oldest).
class TraceRing {
 public:
  struct Span {
    std::string name;
    std::uint64_t start_ns = 0;  ///< Steady-clock epoch, comparable in-run.
    std::uint64_t duration_ns = 0;
  };

  TraceRing() = default;
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  void set_capacity(std::size_t capacity) {
    std::scoped_lock lock(mutex_);
    capacity_ = capacity;
    spans_.clear();
    next_ = 0;
  }

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  void record(std::string name, std::uint64_t start_ns,
              std::uint64_t duration_ns) {
    if (capacity_ == 0) return;
    std::scoped_lock lock(mutex_);
    if (spans_.size() < capacity_) {
      spans_.push_back(Span{std::move(name), start_ns, duration_ns});
    } else {
      spans_[next_ % capacity_] = Span{std::move(name), start_ns, duration_ns};
    }
    ++next_;
  }

  /// Spans oldest-first (copy; the ring keeps running).
  [[nodiscard]] std::vector<Span> drain() {
    std::scoped_lock lock(mutex_);
    std::vector<Span> out;
    out.reserve(spans_.size());
    const std::size_t start = spans_.size() < capacity_ ? 0 : next_;
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      out.push_back(spans_[(start + i) % spans_.size()]);
    }
    spans_.clear();
    next_ = 0;
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;
  std::vector<Span> spans_;
};

/// Times its own lifetime into `histogram` (nanoseconds) and, optionally,
/// a trace ring. Null histogram + null ring = no clock reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram histogram, TraceRing* ring = nullptr,
                       std::string_view span_name = {})
      : histogram_(histogram),
        ring_(ring != nullptr && ring->enabled() ? ring : nullptr),
        span_name_(span_name) {
    if (histogram_ || ring_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Stop early (idempotent); reports the span once.
  void stop() {
    if (stopped_) return;
    stopped_ = true;
    if (!histogram_ && ring_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count());
    if (histogram_) histogram_.observe(ns);
    if (ring_ != nullptr) {
      ring_->record(std::string(span_name_),
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            start_.time_since_epoch())
                            .count()),
                    ns);
    }
  }

 private:
  Histogram histogram_;
  TraceRing* ring_ = nullptr;
  std::string_view span_name_;
  std::chrono::steady_clock::time_point start_{};
  bool stopped_ = false;
};

/// Wall-clock stopwatch for manifest phases (seconds as double).
class PhaseClock {
 public:
  PhaseClock() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace marcopolo::obs
