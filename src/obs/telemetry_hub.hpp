// Live telemetry plane: a background sampler that turns the passive obs
// layer (sharded MetricsRegistry, FlightRecorder live tallies, mem_stats)
// into an in-flight time-series and a scrapeable snapshot.
//
// Every artifact the obs layer produced before this existed — manifest,
// trace bundle, folded profile — is written *after* the run ends. A
// multi-hour sharded sweep or the long-running MPIC corroboration
// service needs the opposite: "is it stalled, is it on pace, which phase
// is hot" answered while the process runs. The hub is that answer:
//
//   - A sampler thread ticks on a configurable period (default 1s).
//     Each tick scrapes the metrics registry, the recorder's live
//     verdict/instruction tallies, per-worker completion slots, and
//     VmRSS/VmHWM, derives rates from the previous tick, and
//     (a) appends one schema-versioned NDJSON record to
//         `timeseries.ndjson` (crash-safe: append + flush per tick, so a
//         killed run keeps every completed tick), and
//     (b) publishes the snapshot to the optional TelemetryServer
//         (`/metrics` Prometheus text, `/healthz`, `/snapshot.json` on
//         localhost).
//   - A stall watchdog rides the same tick: when zero tasks complete for
//     `stall_ticks` consecutive ticks while workers are live, it logs a
//     Warn line with per-worker last-completed-task ages and raises a
//     `campaign.stalls` counter (interned lazily, so runs that never
//     stall keep byte-identical manifests).
//
// Contract, same as the recorder/profiler/hw-counter layers: the hub is
// a pure observer and null by default. Pipelines carry a `TelemetryHub*`
// defaulting to nullptr; hub on, off, or degraded (port in use) leaves
// ResultStore, manifest, and journal bytes identical. Worker-side cost
// is two relaxed atomic stores per completed task.
//
// NDJSON schema (timeseries_schema 1, journal-style evolution policy:
// unknown types skipped, unknown fields ignored, missing fields default):
//   {"type":"meta","timeseries_schema":1,"tick_ms":...,"start_ns":...}
//   {"type":"tick","tick":0,"t_ns":...,"tasks_done":...,"tasks_total":...,
//    "tasks_per_s":...,"workers_live":...,"stalls":...,"verdicts":...,
//    "adversary_verdicts":...,"instructions":...,"instructions_per_s":...,
//    "rss_kb":...,"peak_rss_kb":...,"hot_phase":"classify","eta_s":...,
//    "counters":{"campaign.tasks_executed":...,...}}
// Tick ids are monotone from 0; the last record of a clean shutdown adds
// "final":true. rss/peak_rss are omitted when /proc is unavailable,
// eta_s when unknown, counters when no registry is attached.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace marcopolo::obs {

class FlightRecorder;
class TelemetryServer;

/// Per-worker completion slot. Workers stamp it through
/// TelemetryHub::note_task_done(); the sampler thread reads it each tick
/// (all fields relaxed atomics — tick totals are monotone counters, so
/// a torn read across workers only shifts work between adjacent ticks).
struct TelemetryWorkerSlot {
  std::atomic<std::uint64_t> completed{0};        ///< Tasks finished.
  std::atomic<std::uint64_t> last_complete_ns{0}; ///< steady_clock stamp.
  std::atomic<bool> live{true};                   ///< Cleared on close.
};

struct TelemetryConfig {
  int tick_ms = 1000;          ///< Sampler period; clamped to >= 10.
  /// Where timeseries.ndjson goes: a directory (the trace-bundle dir;
  /// the file is created inside it) or a path ending in ".ndjson".
  /// Empty = no time-series file.
  std::string timeseries_path;
  int serve_port = -1;         ///< <0 = no server, 0 = ephemeral port.
  int stall_ticks = 5;         ///< Zero-progress ticks before a warning.
  MetricsRegistry* metrics = nullptr;     ///< Scraped per tick (optional).
  const FlightRecorder* recorder = nullptr;  ///< Live tallies (optional).
};

/// One tick's derived state; latest() returns a copy for tests and the
/// `/snapshot.json` endpoint.
struct TelemetrySnapshot {
  std::uint64_t tick = 0;
  std::uint64_t t_ns = 0;        ///< Nanoseconds since hub start.
  std::uint64_t tasks_done = 0;
  std::uint64_t tasks_total = 0;
  double tasks_per_s = 0.0;
  int workers_live = 0;
  std::uint64_t stalls = 0;
  std::uint64_t verdicts = 0;
  std::uint64_t adversary_verdicts = 0;
  std::uint64_t instructions = 0;
  double instructions_per_s = 0.0;
  std::uint64_t rss_kb = 0;
  std::uint64_t peak_rss_kb = 0;
  bool mem_valid = false;
  std::string hot_phase;         ///< Phase with the largest ns delta.
  double eta_s = -1.0;           ///< < 0 = unknown.
  bool final_tick = false;
};

class TelemetryHub {
 public:
  explicit TelemetryHub(TelemetryConfig config);
  ~TelemetryHub();
  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Open the time-series file (writing the meta record), bind the
  /// server when configured, and start the sampler thread. A port that
  /// cannot be bound degrades the server to unavailable (serving() false,
  /// serve_reason() says why) without failing the run. Idempotent.
  void start();

  /// Emit one last tick (marked "final":true), join the sampler, stop
  /// the server, close the file. Idempotent; also run by the destructor.
  void stop();

  /// Rebind the scraped registry mid-run (the bench harness builds a
  /// fresh registry per rep). Synchronized with the tick, so the old
  /// registry may be destroyed as soon as this returns. Pass nullptr to
  /// detach before the current registry dies.
  void set_metrics(MetricsRegistry* metrics);

  /// Grow the denominator for progress/ETA. Campaigns call this once
  /// with tasks*sites before workers start; multiple campaigns sharing
  /// one hub accumulate.
  void add_planned_tasks(std::uint64_t n);

  /// Register a worker. The returned slot stays valid until the hub is
  /// destroyed (slots are pooled and never handed out twice).
  [[nodiscard]] TelemetryWorkerSlot* open_worker_slot();
  /// Mark the worker done; its completed count keeps contributing.
  void close_worker_slot(TelemetryWorkerSlot* slot);

  /// Worker hot path: two relaxed stores. Null-safe on the hub pointer
  /// at the call site (the usual `if (hub)` guard).
  void note_task_done(TelemetryWorkerSlot* slot, std::uint64_t n = 1);

  /// Run one tick synchronously on the calling thread (works without
  /// start(); tests use this for deterministic watchdog timing).
  void tick_now();

  [[nodiscard]] TelemetrySnapshot latest() const;
  [[nodiscard]] std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// Server state echo (PR 7 "unavailable (reason)" style).
  [[nodiscard]] bool serving() const;
  /// Bound port (meaningful when serving(); resolves port 0 requests).
  [[nodiscard]] int port() const;
  [[nodiscard]] std::string serve_reason() const;

  /// Resolve a timeseries_path the way the hub does: a path ending in
  /// ".ndjson" is used as-is, anything else is treated as a bundle
  /// directory and gets "/timeseries.ndjson" appended.
  [[nodiscard]] static std::string resolve_timeseries_path(
      const std::string& configured);

 private:
  void sampler_loop();
  void tick_locked(bool final_tick);
  static void append_tick_fields(std::string* out,
                                 const TelemetrySnapshot& snap,
                                 const MetricsSnapshot* counters);
  void write_tick_line(const TelemetrySnapshot& snap,
                       const MetricsSnapshot* counters);

  TelemetryConfig config_;

  std::mutex tick_mutex_;  ///< Serializes ticks, set_metrics, start/stop.
  std::condition_variable tick_cv_;
  std::thread sampler_;
  bool started_ = false;
  bool stop_requested_ = false;

  std::FILE* timeseries_ = nullptr;
  std::unique_ptr<TelemetryServer> server_;

  std::chrono::steady_clock::time_point start_time_{};
  std::uint64_t next_tick_ = 0;
  std::atomic<std::uint64_t> planned_tasks_{0};
  std::atomic<std::uint64_t> stalls_{0};

  mutable std::mutex slots_mutex_;
  std::vector<std::unique_ptr<TelemetryWorkerSlot>> slots_;

  // Previous-tick state for rate/hot-phase derivation (sampler only).
  std::uint64_t prev_t_ns_ = 0;
  std::uint64_t prev_tasks_done_ = 0;
  std::uint64_t prev_instructions_ = 0;
  std::uint64_t prev_phase_ns_[3] = {0, 0, 0};
  int zero_progress_ticks_ = 0;
  Counter stall_counter_;  ///< Interned lazily on first stall.

  mutable std::mutex latest_mutex_;
  TelemetrySnapshot latest_;
};

}  // namespace marcopolo::obs
