#include "obs/run_compare.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/json.hpp"
#include "obs/timeseries_reader.hpp"

namespace marcopolo::obs {

ProvenanceSummary summarize_provenance(const FlightJournal& journal) {
  ProvenanceSummary out;
  for (const auto& lane : journal.workers) {
    for (const VerdictRecord& v : lane.verdicts) {
      ++out.verdicts;
      if (v.outcome == 2) ++out.adversary;
      if (v.contested) ++out.contested;
      if (v.route_age_sensitive()) ++out.route_age_sensitive;
      ++out.decided_by[to_cstring(v.decided_by)];
    }
  }
  return out;
}

PhaseAttribution attribute_phases(const FlightJournal& journal) {
  PhaseAttribution out;
  for (const auto& lane : journal.workers) {
    for (const TaskSpanRecord& t : lane.tasks) {
      out.total_ns += t.duration_ns;
      out.propagate_ns += t.propagate_ns;
      out.classify_ns += t.classify_ns;
      out.record_ns += t.record_ns;
    }
  }
  return out;
}

namespace {

std::string format_seconds(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3fs", seconds);
  return buf;
}

std::string format_pct(double pct) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  return buf;
}

/// True for histograms whose samples are durations — the ones whose
/// upper quantiles the perf gate guards.
bool is_time_histogram(const std::string& name) {
  return name.ends_with("_ns") || name.ends_with("_ms") ||
         name.ends_with("_us");
}

/// Sample value in nanoseconds, inferred from the histogram's unit suffix.
double to_nanoseconds(const std::string& name, double value) {
  if (name.ends_with("_us")) return value * 1e3;
  if (name.ends_with("_ms")) return value * 1e6;
  return value;
}

}  // namespace

RunComparison compare_runs(const ReadManifest& base,
                           const ReadManifest& cand) {
  RunComparison out;

  // Counters: sorted-name merge over the union (snapshots are sorted).
  std::size_t bi = 0;
  std::size_t ci = 0;
  while (bi < base.metrics.counters.size() ||
         ci < cand.metrics.counters.size()) {
    CounterDelta delta;
    const bool take_base =
        bi < base.metrics.counters.size() &&
        (ci >= cand.metrics.counters.size() ||
         base.metrics.counters[bi].first <= cand.metrics.counters[ci].first);
    const bool take_cand =
        ci < cand.metrics.counters.size() &&
        (bi >= base.metrics.counters.size() ||
         cand.metrics.counters[ci].first <= base.metrics.counters[bi].first);
    if (take_base) {
      delta.name = base.metrics.counters[bi].first;
      delta.base = base.metrics.counters[bi].second;
      delta.in_base = true;
      ++bi;
    }
    if (take_cand) {
      delta.name = cand.metrics.counters[ci].first;
      delta.cand = cand.metrics.counters[ci].second;
      delta.in_cand = true;
      ++ci;
    }
    out.counters.push_back(std::move(delta));
  }

  // Histogram quantiles: common names only (a quantile shift needs both
  // sides), p50/p95/p99 recomputed from buckets via the log2
  // interpolation — never read from the stored pNN fields.
  for (const HistogramSnapshot& bh : base.metrics.histograms) {
    const HistogramSnapshot* ch = cand.metrics.histogram(bh.name);
    if (ch == nullptr) continue;
    for (const double q : {0.50, 0.95, 0.99}) {
      out.quantiles.push_back(
          QuantileDelta{bh.name, q, bh.quantile(q), ch->quantile(q)});
    }
  }

  // Bench runs matched by thread count.
  for (const BenchRunRow& brow : base.runs) {
    for (const BenchRunRow& crow : cand.runs) {
      if (crow.threads != brow.threads) continue;
      out.runs.push_back(BenchRunDelta{brow.threads, brow.seconds,
                                       crow.seconds, brow.throughput(),
                                       crow.throughput()});
      break;
    }
  }

  // Phases: union of names, baseline document order first, then
  // candidate-only names. First occurrence of a name wins on each side.
  const auto find_phase = [](const ReadManifest& m,
                             const std::string& name) -> const ReadPhase* {
    for (const ReadPhase& phase : m.phases) {
      if (phase.name == name) return &phase;
    }
    return nullptr;
  };
  const auto emitted = [&out](const std::string& name) {
    return std::any_of(out.phases.begin(), out.phases.end(),
                       [&](const PhaseDelta& p) { return p.name == name; });
  };
  const auto fill_base = [](PhaseDelta& delta, const ReadPhase& phase) {
    delta.base_seconds = phase.seconds;
    delta.in_base = true;
    delta.base_has_counters = phase.has_counters;
    delta.base_instructions = phase.instructions;
    delta.base_ipc = phase.ipc();
    delta.base_cache_miss_rate = phase.cache_miss_rate();
    delta.base_has_mem = phase.has_mem;
    delta.base_peak_rss_kb = phase.peak_rss_kb;
  };
  const auto fill_cand = [](PhaseDelta& delta, const ReadPhase& phase) {
    delta.cand_seconds = phase.seconds;
    delta.in_cand = true;
    delta.cand_has_counters = phase.has_counters;
    delta.cand_instructions = phase.instructions;
    delta.cand_ipc = phase.ipc();
    delta.cand_cache_miss_rate = phase.cache_miss_rate();
    delta.cand_has_mem = phase.has_mem;
    delta.cand_peak_rss_kb = phase.peak_rss_kb;
  };
  for (const ReadPhase& bphase : base.phases) {
    if (emitted(bphase.name)) continue;
    PhaseDelta delta;
    delta.name = bphase.name;
    fill_base(delta, bphase);
    if (const ReadPhase* cand_phase = find_phase(cand, bphase.name)) {
      fill_cand(delta, *cand_phase);
    }
    out.phases.push_back(std::move(delta));
  }
  for (const ReadPhase& cphase : cand.phases) {
    if (emitted(cphase.name)) continue;
    PhaseDelta delta;
    delta.name = cphase.name;
    fill_cand(delta, cphase);
    out.phases.push_back(std::move(delta));
  }
  out.base_perf_counters = base.perf_counters;
  out.cand_perf_counters = cand.perf_counters;

  // Hot symbols: union of both top-N tables, ranked by share growth.
  // Shares normalize by each run's own sample total, so a longer
  // candidate run does not read as "everything regressed".
  out.base_has_profile = base.has_profile;
  out.cand_has_profile = cand.has_profile;
  out.base_profile_samples = base.profile.samples;
  out.cand_profile_samples = cand.profile.samples;
  if (base.has_profile && cand.has_profile) {
    std::map<std::string, HotSymbolDelta> merged;
    for (const ReadHotSymbol& s : base.profile.symbols) {
      HotSymbolDelta& d = merged[s.name];
      d.name = s.name;
      d.in_base = true;
      d.base_self = s.self;
      d.base_share = base.profile.self_share(s.self);
    }
    for (const ReadHotSymbol& s : cand.profile.symbols) {
      HotSymbolDelta& d = merged[s.name];
      d.name = s.name;
      d.in_cand = true;
      d.cand_self = s.self;
      d.cand_share = cand.profile.self_share(s.self);
    }
    out.hot_symbols.reserve(merged.size());
    for (auto& [name, delta] : merged) {
      out.hot_symbols.push_back(std::move(delta));
    }
    std::sort(out.hot_symbols.begin(), out.hot_symbols.end(),
              [](const HotSymbolDelta& a, const HotSymbolDelta& b) {
                if (a.share_delta_pp() != b.share_delta_pp()) {
                  return a.share_delta_pp() > b.share_delta_pp();
                }
                return a.name < b.name;
              });
  }
  return out;
}

DiffGateResult evaluate_gate(const RunComparison& comparison,
                             const DiffGateConfig& config) {
  DiffGateResult out;
  bool instructions_breached = false;
  for (const BenchRunDelta& run : comparison.runs) {
    if (run.seconds_pct() > config.max_regress_pct) {
      out.pass = false;
      out.violations.push_back(
          "threads=" + std::to_string(run.threads) + " wall-clock " +
          format_pct(run.seconds_pct()) + " (" +
          format_seconds(run.base_seconds) + " -> " +
          format_seconds(run.cand_seconds) + ") exceeds " +
          format_pct(config.max_regress_pct).substr(1));
    }
  }
  for (const PhaseDelta& phase : comparison.phases) {
    if (!phase.in_base || !phase.in_cand) {
      out.notes.push_back("phase " + phase.name + " only in " +
                          (phase.in_base ? "baseline" : "candidate"));
      continue;
    }
    if (phase.pct() > config.max_regress_pct) {
      out.pass = false;
      out.violations.push_back(
          "phase " + phase.name + " wall-clock " + format_pct(phase.pct()) +
          " (" + format_seconds(phase.base_seconds) + " -> " +
          format_seconds(phase.cand_seconds) + ") exceeds " +
          format_pct(config.max_regress_pct).substr(1));
    }
    if (phase.base_has_counters && phase.cand_has_counters) {
      // Instructions retired: deterministic, so gated far below the
      // wall-clock threshold. Improvements and sub-threshold drift pass
      // silently; the mpinspect tables still show the numbers.
      if (phase.instructions_pct() > config.counter_max_regress_pct) {
        out.pass = false;
        instructions_breached = true;
        out.violations.push_back(
            "phase " + phase.name + " instructions " +
            format_pct(phase.instructions_pct()) + " (" +
            std::to_string(phase.base_instructions) + " -> " +
            std::to_string(phase.cand_instructions) + ") exceeds " +
            format_pct(config.counter_max_regress_pct).substr(1));
      }
      // IPC / cache-miss-rate attribute *why*, but depend on the CPU the
      // runs happened to land on — diagnostic notes, never violations.
      if (phase.base_ipc > 0.0) {
        const double ipc_pct =
            100.0 * (phase.cand_ipc - phase.base_ipc) / phase.base_ipc;
        if (ipc_pct < -10.0 || ipc_pct > 10.0) {
          char row[160];
          std::snprintf(row, sizeof row, "phase %s ipc %.2f -> %.2f (%s)",
                        phase.name.c_str(), phase.base_ipc, phase.cand_ipc,
                        format_pct(ipc_pct).c_str());
          out.notes.emplace_back(row);
        }
      }
      const double miss_shift =
          phase.cand_cache_miss_rate - phase.base_cache_miss_rate;
      if (miss_shift > 0.05 || miss_shift < -0.05) {
        char row[160];
        std::snprintf(row, sizeof row,
                      "phase %s cache-miss rate %.1f%% -> %.1f%%",
                      phase.name.c_str(), 100.0 * phase.base_cache_miss_rate,
                      100.0 * phase.cand_cache_miss_rate);
        out.notes.emplace_back(row);
      }
    } else if (phase.base_has_counters != phase.cand_has_counters) {
      // One side has no counters — explain why when the document says.
      const bool missing_in_cand = phase.base_has_counters;
      const std::string& availability = missing_in_cand
                                            ? comparison.cand_perf_counters
                                            : comparison.base_perf_counters;
      std::string note = "phase " + phase.name + " counters only in " +
                         (missing_in_cand ? "baseline" : "candidate");
      if (availability == "unavailable") {
        note += missing_in_cand ? " (candidate host: perf counters "
                                  "unavailable)"
                                : " (baseline host: perf counters "
                                  "unavailable)";
      } else if (availability.empty()) {
        note += missing_in_cand
                    ? " (candidate predates counter support)"
                    : " (baseline predates counter support)";
      }
      out.notes.push_back(std::move(note));
    }
  }
  for (const QuantileDelta& quantile : comparison.quantiles) {
    if (quantile.q < 0.95 || !is_time_histogram(quantile.name)) continue;
    if (to_nanoseconds(quantile.name, quantile.base) <
            config.quantile_floor_ns &&
        to_nanoseconds(quantile.name, quantile.cand) <
            config.quantile_floor_ns) {
      continue;  // Below the jitter floor on both sides — noise, not signal.
    }
    if (quantile.pct() > config.max_regress_pct) {
      out.pass = false;
      char row[160];
      std::snprintf(row, sizeof row, "%s p%.0f %s (%.0f -> %.0f) exceeds %s",
                    quantile.name.c_str(), quantile.q * 100.0,
                    format_pct(quantile.pct()).c_str(), quantile.base,
                    quantile.cand,
                    format_pct(config.max_regress_pct).substr(1).c_str());
      out.violations.emplace_back(row);
    }
  }
  for (const CounterDelta& counter : comparison.counters) {
    if (counter.in_base != counter.in_cand) {
      out.notes.push_back("counter " + counter.name + " only in " +
                          (counter.in_base ? "baseline" : "candidate"));
    } else if (counter.name.find("tasks") != std::string::npos &&
               counter.delta() != 0) {
      // Workload-size drift: the timing comparison above may not be
      // apples-to-apples. Surfaced, not gated.
      out.notes.push_back("workload drift: " + counter.name + " " +
                          std::to_string(counter.base) + " -> " +
                          std::to_string(counter.cand));
    }
  }
  // When the instruction gate fired and both runs carry profiles, name
  // the likeliest culprits right in the gate output: the symbols whose
  // CPU share grew the most (the diff table has the full ranking).
  if (instructions_breached && !comparison.hot_symbols.empty()) {
    std::string note = "hot symbols explaining the instruction growth:";
    std::size_t named = 0;
    for (const HotSymbolDelta& s : comparison.hot_symbols) {
      if (s.share_delta_pp() <= 0.0 || named == 3) break;
      char item[192];
      std::snprintf(item, sizeof item, "%s %s (%+.1fpp)",
                    named == 0 ? "" : ",", s.name.c_str(),
                    s.share_delta_pp());
      note += item;
      ++named;
    }
    if (named > 0) out.notes.push_back(std::move(note));
  }
  return out;
}

FoldedProfile read_folded_profile(std::istream& in) {
  FoldedProfile out;
  std::map<std::string, ReadHotSymbol> symbols;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      out.problems.push_back("line " + std::to_string(lineno) + ": empty");
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      out.problems.push_back("line " + std::to_string(lineno) +
                             ": expected \"stack count\"");
      continue;
    }
    const std::string stack = line.substr(0, space);
    std::uint64_t count = 0;
    bool numeric = true;
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      if (line[i] < '0' || line[i] > '9') {
        numeric = false;
        break;
      }
      count = count * 10 + static_cast<std::uint64_t>(line[i] - '0');
    }
    if (!numeric || count == 0) {
      out.problems.push_back("line " + std::to_string(lineno) +
                             ": count must be a positive integer");
      continue;
    }

    // Frames: ';'-separated, none may be empty.
    std::vector<std::string> frames;
    std::size_t begin = 0;
    bool frames_ok = true;
    while (begin <= stack.size()) {
      std::size_t end = stack.find(';', begin);
      if (end == std::string::npos) end = stack.size();
      if (end == begin) {
        out.problems.push_back("line " + std::to_string(lineno) +
                               ": empty frame in stack");
        frames_ok = false;
        break;
      }
      frames.push_back(stack.substr(begin, end - begin));
      if (end == stack.size()) break;
      begin = end + 1;
    }
    if (!frames_ok) continue;

    out.total += count;
    out.stacks.emplace_back(stack, count);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      auto [it, fresh] = symbols.try_emplace(frames[i]);
      if (fresh) it->second.name = frames[i];
      if (i + 1 == frames.size()) it->second.self += count;  // leaf
      // `total` once per stack even if the frame recurses.
      if (std::find(frames.begin(), frames.begin() + static_cast<std::ptrdiff_t>(i),
                    frames[i]) == frames.begin() + static_cast<std::ptrdiff_t>(i)) {
        it->second.total += count;
      }
    }
  }
  if (out.stacks.empty() && out.problems.empty()) {
    out.problems.emplace_back("no stacks");
  }
  out.symbols.reserve(symbols.size());
  for (auto& [name, sym] : symbols) out.symbols.push_back(std::move(sym));
  std::sort(out.symbols.begin(), out.symbols.end(),
            [](const ReadHotSymbol& a, const ReadHotSymbol& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.name < b.name;
            });
  return out;
}

FoldedProfile read_folded_profile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    FoldedProfile out;
    out.problems.push_back("cannot open " + path);
    return out;
  }
  return read_folded_profile(in);
}

namespace {

/// Minimal Prometheus text parse: plain `name value` sample lines
/// (comments and labeled series like `..._bucket{le="1"}` skipped).
std::map<std::string, std::uint64_t> read_prometheus_counters(
    const std::string& path) {
  std::map<std::string, std::uint64_t> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' ||
        line.find('{') != std::string::npos) {
      continue;
    }
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    try {
      out[line.substr(0, space)] =
          static_cast<std::uint64_t>(std::stoull(line.substr(space + 1)));
    } catch (const std::exception&) {
      // Non-integer sample (histogram _sum can be large but is integral
      // here; anything unparseable is simply not cross-checked).
    }
  }
  return out;
}

void check_monotone_lanes(const ReadJournal& read, BundleCheckResult& out) {
  for (const auto& lane : read.journal.workers) {
    for (std::size_t i = 1; i < lane.tasks.size(); ++i) {
      if (lane.tasks[i].start_ns < lane.tasks[i - 1].start_ns) {
        out.fail("worker " + std::to_string(lane.worker) +
                 ": task start_ns not monotone at index " +
                 std::to_string(i));
        break;
      }
    }
  }
  for (std::size_t i = 1; i < read.journal.attacks.size(); ++i) {
    if (read.journal.attacks[i].announce_us <
        read.journal.attacks[i - 1].announce_us) {
      out.fail("attack announce_us not monotone at index " +
               std::to_string(i));
      break;
    }
  }
  for (std::size_t i = 1; i < read.quorums.size(); ++i) {
    if (read.quorums[i].virtual_us < read.quorums[i - 1].virtual_us) {
      out.fail("quorum virtual_us not monotone at index " +
               std::to_string(i));
      break;
    }
  }
}

void check_meta_agreement(const ReadJournal& read, BundleCheckResult& out) {
  const auto expect_eq = [&out](const char* what, std::uint64_t declared,
                                std::uint64_t actual) {
    if (declared != actual) {
      out.fail(std::string("meta ") + what + " declares " +
               std::to_string(declared) + " but journal carries " +
               std::to_string(actual));
    }
  };
  expect_eq("workers", read.meta_workers, read.journal.workers.size());
  expect_eq("tasks", read.meta_tasks, read.journal.task_count());
  expect_eq("verdicts", read.meta_verdicts, read.journal.verdict_count());
  expect_eq("adversary_verdicts", read.meta_adversary_verdicts,
            read.journal.adversary_verdict_count());
}

}  // namespace

BundleCheckResult check_trace_bundle(const std::string& dir,
                                     const std::string& manifest_path) {
  BundleCheckResult out;
  const std::filesystem::path base(dir);

  const std::string journal_path = (base / "journal.ndjson").string();
  if (!std::filesystem::exists(journal_path)) {
    out.fail("missing " + journal_path);
    return out;
  }
  const ReadJournal read = JournalReader::read_file(journal_path);
  for (const JournalIssue& issue : read.errors) {
    out.fail("journal.ndjson line " + std::to_string(issue.line) + ": " +
             issue.message);
  }
  out.journal_lines = read.lines;
  out.tasks = read.journal.task_count();
  out.verdicts = read.journal.verdict_count();
  out.attacks = read.journal.attacks.size();
  out.quorums = read.quorums.size();
  if (read.ok()) {
    check_meta_agreement(read, out);
    check_monotone_lanes(read, out);
  }

  const std::filesystem::path trace_path = base / "trace.json";
  if (std::filesystem::exists(trace_path)) {
    std::ifstream in(trace_path);
    std::ostringstream text;
    text << in.rdbuf();
    try {
      const json::Value doc = json::parse(text.str());
      const json::Value* events = doc.find("traceEvents");
      if (events == nullptr || !events->is_array()) {
        out.fail("trace.json has no traceEvents array");
      }
    } catch (const json::ParseError& error) {
      out.fail(std::string("trace.json: ") + error.what());
    }
  }

  const std::filesystem::path folded_path = base / "profile.folded";
  if (std::filesystem::exists(folded_path)) {
    const FoldedProfile folded =
        read_folded_profile_file(folded_path.string());
    out.has_profile = true;
    out.profile_samples = folded.total;
    for (const std::string& problem : folded.problems) {
      out.fail("profile.folded " + problem);
    }
  }

  const std::filesystem::path prom_path = base / "metrics.prom";
  if (std::filesystem::exists(prom_path)) {
    const auto samples = read_prometheus_counters(prom_path.string());
    const auto it = samples.find("marcopolo_campaign_tasks_executed");
    if (it != samples.end() && out.tasks != 0 && it->second != out.tasks) {
      out.fail("metrics.prom campaign_tasks_executed " +
               std::to_string(it->second) + " != journal task spans " +
               std::to_string(out.tasks));
    }
  }

  const std::filesystem::path timeseries_path = base / "timeseries.ndjson";
  const TimeseriesTick* last_tick = nullptr;
  ReadTimeseries timeseries;
  if (std::filesystem::exists(timeseries_path)) {
    timeseries = TimeseriesReader::read_file(timeseries_path.string());
    out.has_timeseries = true;
    out.timeseries_ticks = timeseries.ticks.size();
    for (const TimeseriesIssue& issue : timeseries.errors) {
      out.fail("timeseries.ndjson line " + std::to_string(issue.line) +
               ": " + issue.message);
    }
    if (timeseries.ok() && !timeseries.has_meta) {
      out.fail("timeseries.ndjson has no meta record");
    }
    // Final-tick counter agreement: the hub's last registry scrape must
    // tell the same story as the post-run artifacts. (A crashed run has
    // no "final":true tick — that's legitimate; the last completed tick
    // still has to agree when it carries counters.)
    last_tick = timeseries.last_tick();
    if (last_tick != nullptr) {
      const std::uint64_t ts_tasks =
          last_tick->counter("campaign.tasks_executed");
      if (ts_tasks != 0 && out.tasks != 0 && ts_tasks != out.tasks) {
        out.fail("timeseries final tick campaign.tasks_executed " +
                 std::to_string(ts_tasks) + " != journal task spans " +
                 std::to_string(out.tasks));
      }
    }
  }

  if (!manifest_path.empty()) {
    const ReadManifest manifest = ManifestReader::read_file(manifest_path);
    for (const std::string& error : manifest.errors) {
      out.fail(manifest_path + ": " + error);
    }
    if (manifest.ok()) {
      const std::uint64_t tasks =
          manifest.metrics.counter("campaign.tasks_executed");
      if (tasks != 0 && out.tasks != 0 && tasks != out.tasks) {
        out.fail("manifest campaign.tasks_executed " + std::to_string(tasks) +
                 " != journal task spans " + std::to_string(out.tasks));
      }
      const std::uint64_t attempts =
          manifest.metrics.counter("orchestrator.attack_attempts");
      if (attempts != 0 && out.attacks != 0 && attempts != out.attacks) {
        out.fail("manifest orchestrator.attack_attempts " +
                 std::to_string(attempts) + " != journal attack spans " +
                 std::to_string(out.attacks));
      }
      if (out.has_profile && manifest.has_profile &&
          manifest.profile.samples != out.profile_samples) {
        out.fail("manifest profile samples " +
                 std::to_string(manifest.profile.samples) +
                 " != profile.folded total " +
                 std::to_string(out.profile_samples));
      }
      if (last_tick != nullptr) {
        const std::uint64_t ts_tasks =
            last_tick->counter("campaign.tasks_executed");
        const std::uint64_t manifest_tasks =
            manifest.metrics.counter("campaign.tasks_executed");
        if (ts_tasks != 0 && manifest_tasks != 0 &&
            ts_tasks != manifest_tasks) {
          out.fail("timeseries final tick campaign.tasks_executed " +
                   std::to_string(ts_tasks) + " != manifest counter " +
                   std::to_string(manifest_tasks));
        }
      }
    }
  }
  return out;
}

}  // namespace marcopolo::obs
