// TimeseriesReader: parse a timeseries.ndjson written by TelemetryHub
// back into tick records.
//
// Same schema policy as the journal reader (timeseries_schema 1,
// forward-compatible reads): unknown "type" records are counted and
// skipped; unknown fields inside a tick are ignored; missing fields
// default to zero-values. Structural problems — a non-object line, a
// missing "type", an unsupported schema, a tick id that fails to
// strictly increase (the tamper/corruption signature) — are errors
// carrying their 1-based line number.
//
// Consumers: `mpinspect tail` / `mpinspect watch` (render ticks),
// `check_trace_bundle` (monotonicity + final-tick counter agreement).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace marcopolo::obs {

/// One problem found while reading, anchored to its line.
struct TimeseriesIssue {
  std::size_t line = 0;  ///< 1-based.
  std::string message;
};

/// One decoded tick record.
struct TimeseriesTick {
  std::uint64_t tick = 0;
  std::uint64_t t_ns = 0;
  std::uint64_t tasks_done = 0;
  std::uint64_t tasks_total = 0;
  double tasks_per_s = 0.0;
  std::uint64_t workers_live = 0;
  std::uint64_t stalls = 0;
  std::uint64_t verdicts = 0;
  std::uint64_t adversary_verdicts = 0;
  std::uint64_t instructions = 0;
  double instructions_per_s = 0.0;
  bool has_mem = false;  ///< rss fields present (writer had /proc).
  std::uint64_t rss_kb = 0;
  std::uint64_t peak_rss_kb = 0;
  std::string hot_phase;  ///< Empty when the writer had no registry.
  bool has_eta = false;
  double eta_s = 0.0;
  bool final_tick = false;
  /// Embedded registry counter scrape, in file (name-sorted) order;
  /// empty when the writer had no registry attached.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  /// Counter value by name; 0 if absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
};

/// Everything read back from one timeseries.ndjson.
struct ReadTimeseries {
  /// From the meta header line (0 when no meta line was seen).
  int schema = 0;
  bool has_meta = false;
  std::uint64_t tick_ms = 0;
  std::uint64_t start_ns = 0;

  std::vector<TimeseriesTick> ticks;

  std::vector<TimeseriesIssue> errors;  ///< Malformed/non-monotone lines.
  std::size_t skipped_records = 0;      ///< Unknown "type" (forward compat).
  std::size_t lines = 0;                ///< Non-empty lines consumed.

  [[nodiscard]] bool ok() const { return errors.empty(); }
  /// The last tick, or nullptr when the file held none.
  [[nodiscard]] const TimeseriesTick* last_tick() const {
    return ticks.empty() ? nullptr : &ticks.back();
  }
};

/// Parses timeseries.ndjson streams. Stateless; the static methods are
/// the whole interface.
class TimeseriesReader {
 public:
  [[nodiscard]] static ReadTimeseries read(std::istream& in);
  /// read() on the file's contents; an unopenable path is reported as an
  /// error on line 0.
  [[nodiscard]] static ReadTimeseries read_file(const std::string& path);
  /// Decode one bare tick object — the shape /snapshot.json serves (a
  /// tick record without the "type" tag). Returns false with *error set
  /// on malformed input; "{}" (no tick published yet) decodes to a
  /// default tick.
  [[nodiscard]] static bool parse_snapshot(const std::string& text,
                                           TimeseriesTick* out,
                                           std::string* error);
};

}  // namespace marcopolo::obs
