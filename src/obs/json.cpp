#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace marcopolo::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace json {

double Value::number() const {
  if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    return static_cast<double>(*u);
  }
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return std::get<double>(v);
}

std::uint64_t Value::u64() const {
  if (const auto* u = std::get_if<std::uint64_t>(&v)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return *i < 0 ? 0 : static_cast<std::uint64_t>(*i);
  }
  const double d = std::get<double>(v);
  return d < 0.0 ? 0 : static_cast<std::uint64_t>(d);
}

std::int64_t Value::i64() const {
  if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    return static_cast<std::int64_t>(*u);
  }
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  return static_cast<std::int64_t>(std::get<double>(v));
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& obj = object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::uint64_t Value::u64_or(const std::string& key,
                            std::uint64_t fallback) const {
  const Value* member = find(key);
  return member != nullptr && member->is_number() ? member->u64() : fallback;
}

double Value::number_or(const std::string& key, double fallback) const {
  const Value* member = find(key);
  return member != nullptr && member->is_number() ? member->number()
                                                  : fallback;
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value* member = find(key);
  return member != nullptr && member->is_bool() ? member->boolean()
                                                : fallback;
}

std::string Value::string_or(const std::string& key,
                             std::string fallback) const {
  const Value* member = find(key);
  return member != nullptr && member->is_string() ? member->str()
                                                  : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError(why, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value{parse_string()};
    if (consume_literal("true")) return Value{true};
    if (consume_literal("false")) return Value{false};
    if (consume_literal("null")) return Value{nullptr};
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    auto obj = std::make_shared<Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{obj};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      (*obj)[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{obj};
    }
  }

  Value parse_array() {
    expect('[');
    auto arr = std::make_shared<Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{arr};
    }
    while (true) {
      arr->push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{arr};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit");
            }
          }
          pos_ += 4;
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  /// The writers only emit \uXXXX for control characters and BMP arrows
  /// (no surrogate pairs), so plain UTF-8 encoding of the code point is
  /// the complete inverse.
  static void append_utf8(std::string& out, unsigned code) {
    if (code <= 0x7F) {
      out += static_cast<char>(code);
    } else if (code <= 0x7FF) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      fail("expected value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      if (token[0] == '-') {
        const long long parsed = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          return Value{static_cast<std::int64_t>(parsed)};
        }
      } else {
        const unsigned long long parsed =
            std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          return Value{static_cast<std::uint64_t>(parsed)};
        }
      }
      // Out-of-range integer literal: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    return Value{parsed};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace json
}  // namespace marcopolo::obs
