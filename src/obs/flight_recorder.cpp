#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "obs/log.hpp"

namespace marcopolo::obs {

std::size_t FlightJournal::task_count() const {
  std::size_t n = 0;
  for (const WorkerLane& lane : workers) n += lane.tasks.size();
  return n;
}

std::size_t FlightJournal::verdict_count() const {
  std::size_t n = 0;
  for (const WorkerLane& lane : workers) n += lane.verdicts.size();
  return n;
}

std::size_t FlightJournal::adversary_verdict_count() const {
  std::size_t n = 0;
  for (const WorkerLane& lane : workers) {
    for (const VerdictRecord& v : lane.verdicts) {
      if (v.outcome == 2) ++n;
    }
  }
  return n;
}

FlightBuffer* FlightRecorder::open_buffer() {
  std::scoped_lock lock(mutex_);
  auto buffer = std::make_unique<FlightBuffer>();
  buffer->worker_id_ = static_cast<std::uint32_t>(buffers_.size());
  buffers_.push_back(std::move(buffer));
  return buffers_.back().get();
}

FlightJournal FlightRecorder::drain() {
  std::scoped_lock lock(mutex_);
  FlightJournal journal;
  std::uint64_t epoch = ~std::uint64_t{0};
  for (auto& buffer : buffers_) {
    for (const TaskSpanRecord& t : buffer->tasks_) {
      epoch = std::min(epoch, t.start_ns);
    }
    for (const PropagationRunRecord& p : buffer->propagations_) {
      epoch = std::min(epoch, p.start_ns);
    }
    if (!buffer->tasks_.empty() || !buffer->propagations_.empty() ||
        !buffer->verdicts_.empty()) {
      FlightJournal::WorkerLane lane;
      lane.worker = buffer->worker_id_;
      lane.tasks = std::move(buffer->tasks_);
      lane.propagations = std::move(buffer->propagations_);
      lane.verdicts = std::move(buffer->verdicts_);
      journal.workers.push_back(std::move(lane));
    }
    journal.attacks.insert(journal.attacks.end(), buffer->attacks_.begin(),
                           buffer->attacks_.end());
    journal.quorums.insert(journal.quorums.end(), buffer->quorums_.begin(),
                           buffer->quorums_.end());
  }
  buffers_.clear();
  // Lanes in worker-id order and virtual records in time order, so the
  // journal (and the exported trace) is stable for a given run.
  std::sort(journal.workers.begin(), journal.workers.end(),
            [](const auto& a, const auto& b) { return a.worker < b.worker; });
  std::stable_sort(journal.attacks.begin(), journal.attacks.end(),
                   [](const AttackSpanRecord& a, const AttackSpanRecord& b) {
                     return a.announce_us < b.announce_us;
                   });
  std::stable_sort(journal.quorums.begin(), journal.quorums.end(),
                   [](const QuorumRecord& a, const QuorumRecord& b) {
                     return a.virtual_us < b.virtual_us;
                   });
  journal.epoch_ns = epoch == ~std::uint64_t{0} ? 0 : epoch;
  verdicts_.store(0, std::memory_order_relaxed);
  adversary_verdicts_.store(0, std::memory_order_relaxed);
  instructions_.store(0, std::memory_order_relaxed);
  return journal;
}

ProgressReporter::ProgressReporter(const FlightRecorder* recorder,
                                   double min_interval_s, std::FILE* out)
    : recorder_(recorder),
      min_interval_(min_interval_s),
      start_(std::chrono::steady_clock::now()) {
  if (out == stderr) {
    guard_ = &LineGuard::stderr_guard();
  } else {
    owned_guard_ = std::make_unique<LineGuard>(out);
    guard_ = owned_guard_.get();
  }
}

ProgressReporter::~ProgressReporter() = default;

void ProgressReporter::update(std::size_t done, std::size_t total) {
  const auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(mutex_);
  const bool final = total != 0 && done >= total;
  if (final && printed_final_) return;
  if (!final) printed_final_ = false;  // a new run started; allow its final
  if (!final &&
      std::chrono::duration<double>(now - last_).count() < min_interval_) {
    return;
  }
  last_ = now;
  if (final) printed_final_ = true;

  const double elapsed =
      std::chrono::duration<double>(now - start_).count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const double pct =
      total != 0 ? 100.0 * static_cast<double>(done) / static_cast<double>(total)
                 : 0.0;
  char eta[32];
  if (final) {
    std::snprintf(eta, sizeof eta, "done in %.1fs", elapsed);
  } else if (rate > 0.0) {
    std::snprintf(eta, sizeof eta, "ETA %.1fs",
                  static_cast<double>(total - done) / rate);
  } else {
    std::snprintf(eta, sizeof eta, "ETA ?");
  }
  char instr[48] = "";
  char hijacked[48] = "";
  if (recorder_ != nullptr) {
    // Live instructions/s, present only on hw_counters runs (the tally
    // stays 0 otherwise, and the line keeps its counter-less shape).
    const std::uint64_t instructions = recorder_->instructions();
    if (instructions != 0 && elapsed > 0.0) {
      const double per_s = static_cast<double>(instructions) / elapsed;
      if (per_s >= 1e9) {
        std::snprintf(instr, sizeof instr, "  %.1fG instr/s", per_s / 1e9);
      } else if (per_s >= 1e6) {
        std::snprintf(instr, sizeof instr, "  %.1fM instr/s", per_s / 1e6);
      } else {
        std::snprintf(instr, sizeof instr, "  %.0f instr/s", per_s);
      }
    }
    const std::uint64_t verdicts = recorder_->verdicts();
    if (verdicts != 0) {
      std::snprintf(hijacked, sizeof hijacked, "  hijacked %.1f%%",
                    100.0 *
                        static_cast<double>(recorder_->adversary_verdicts()) /
                        static_cast<double>(verdicts));
    }
  }
  // Live updates overwrite one stderr line (leading \r, no newline); the
  // final 100% summary is newline-terminated so a completed campaign
  // never leaves a stale partial line behind. The LineGuard pads shorter
  // lines to blank out the previous one and interleaves Logger writes.
  char line[224];
  int len = std::snprintf(line, sizeof line,
                          "[campaign] %zu/%zu tasks (%.1f%%)  %.1f tasks/s"
                          "%s  %s%s",
                          done, total, pct, rate, instr, eta, hijacked);
  if (len < 0) len = 0;
  guard_->live_line(std::string_view(line, static_cast<std::size_t>(len)),
                    final);
}

}  // namespace marcopolo::obs
