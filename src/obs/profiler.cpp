#include "obs/profiler.hpp"

#include <cstring>

#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
#define MARCOPOLO_PROFILER_SUPPORTED 1
#else
#define MARCOPOLO_PROFILER_SUPPORTED 0
#endif

#if MARCOPOLO_PROFILER_SUPPORTED
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
#endif

namespace marcopolo::obs {

namespace {

// Word encoding inside SampleRing:
//   word 0: header — depth in the low 16 bits, truncated flag at bit 16
//   word 1: CLOCK_MONOTONIC nanoseconds
//   words 2..2+depth: program counters, leaf first
constexpr std::uint64_t kTruncatedBit = 1ull << 16;
constexpr std::uint64_t kDepthMask = 0xffffull;

}  // namespace

bool SampleRing::try_append(const RawSample& sample) {
  if (closed_.load(std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::size_t depth = sample.depth;
  const std::size_t need = depth + 2;
  if (depth == 0 || depth > RawSample::kMaxDepth ||
      used_ + need > capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::uint64_t* out = words_.get() + used_;
  out[0] = static_cast<std::uint64_t>(depth) |
           (sample.truncated ? kTruncatedBit : 0);
  out[1] = sample.ns;
  for (std::size_t i = 0; i < depth; ++i) {
    out[2 + i] = static_cast<std::uint64_t>(sample.pc[i]);
  }
  used_ += need;
  ++samples_;
  return true;
}

std::vector<RawSample> SampleRing::decode() const {
  std::vector<RawSample> out;
  out.reserve(samples_);
  std::size_t at = 0;
  while (at < used_) {
    const std::uint64_t header = words_[at];
    const std::size_t depth = static_cast<std::size_t>(header & kDepthMask);
    if (depth == 0 || depth > RawSample::kMaxDepth ||
        at + depth + 2 > used_) {
      break;  // corrupt tail; keep what decoded cleanly
    }
    RawSample s;
    s.depth = static_cast<std::uint16_t>(depth);
    s.truncated = (header & kTruncatedBit) != 0;
    s.ns = words_[at + 1];
    for (std::size_t i = 0; i < depth; ++i) {
      s.pc[i] = static_cast<std::uintptr_t>(words_[at + 2 + i]);
    }
    out.push_back(s);
    at += depth + 2;
  }
  return out;
}

#if MARCOPOLO_PROFILER_SUPPORTED

namespace {

// One live profiler at a time: the SIGPROF disposition is process-wide.
std::atomic<SamplingProfiler*> g_active_profiler{nullptr};
std::atomic<bool> g_handler_installed{false};

/// The SIGPROF handler. Runs on the thread whose timer fired
/// (SIGEV_THREAD_ID); the ring arrives through sival_ptr, so the handler
/// touches no globals beyond what the kernel hands it. Everything here
/// must stay async-signal-safe: fixed work, no allocation, no locks.
void profiler_signal_handler(int /*signo*/, siginfo_t* info, void* ucontext) {
  if (info == nullptr || ucontext == nullptr) return;
  auto* ring = static_cast<SampleRing*>(info->si_value.sival_ptr);
  if (ring == nullptr) return;

  const auto* uc = static_cast<const ucontext_t*>(ucontext);
#if defined(__x86_64__)
  auto pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  auto fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  auto pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  auto fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#endif

  RawSample sample;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);  // vDSO read; async-signal-safe
  sample.ns = static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
              static_cast<std::uint64_t>(ts.tv_nsec);
  sample.pc[sample.depth++] = pc;

  // Frame-pointer walk. Each frame stores [saved fp][return address] at
  // *fp; the chain must stay inside the thread's stack, stay aligned,
  // and grow strictly toward the stack base, or we stop.
  const std::uintptr_t lo = ring->stack_lo;
  const std::uintptr_t hi = ring->stack_hi;
  while (sample.depth < RawSample::kMaxDepth) {
    if (fp < lo || fp + 2 * sizeof(std::uintptr_t) > hi ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    std::uintptr_t next_fp;
    std::uintptr_t ret;
    std::memcpy(&next_fp, reinterpret_cast<const void*>(fp),
                sizeof(next_fp));
    std::memcpy(&ret,
                reinterpret_cast<const void*>(fp + sizeof(std::uintptr_t)),
                sizeof(ret));
    if (ret == 0) break;
    sample.pc[sample.depth++] = ret;
    if (next_fp <= fp) break;  // must move toward the stack base
    fp = next_fp;
  }
  if (sample.depth == RawSample::kMaxDepth) sample.truncated = true;

  ring->try_append(sample);
}

/// Stack extent of the calling thread via pthread_getattr_np (works for
/// the main thread too on glibc/musl). Zeroes on failure — the handler
/// then rejects every frame pointer, yielding depth-1 samples rather
/// than risking a wild read.
void current_stack_extent(std::uintptr_t* lo, std::uintptr_t* hi) {
  *lo = 0;
  *hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  std::size_t size = 0;
  if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
    *lo = reinterpret_cast<std::uintptr_t>(addr);
    *hi = *lo + size;
  }
  pthread_attr_destroy(&attr);
}

}  // namespace

SamplingProfiler::SamplingProfiler(std::uint32_t hz)
    : hz_(hz == 0 ? kDefaultProfileHz : hz) {
  if (!probe()) {
    reason_ = probe_reason();
    return;
  }
  SamplingProfiler* expected = nullptr;
  if (!g_active_profiler.compare_exchange_strong(expected, this)) {
    reason_ = "another SamplingProfiler instance is active";
    return;
  }
  // Install the SIGPROF disposition once per process and leave it in
  // place: a handler finding a null/closed ring is a no-op, whereas
  // restoring SIG_DFL would turn a late-queued SIGPROF into process
  // death.
  if (!g_handler_installed.load(std::memory_order_acquire)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = profiler_signal_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      reason_ = "sigaction(SIGPROF) failed";
      g_active_profiler.store(nullptr);
      return;
    }
    g_handler_installed.store(true, std::memory_order_release);
  }
  available_ = true;
}

SamplingProfiler::~SamplingProfiler() {
  SamplingProfiler* self = this;
  g_active_profiler.compare_exchange_strong(self, nullptr);
}

bool SamplingProfiler::probe() {
  // Creating and deleting a per-thread CPU-time timer is the whole
  // requirement; no privileges are involved (unlike perf_event_open).
  static const bool ok = [] {
    struct sigevent sev;
    std::memset(&sev, 0, sizeof(sev));
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev._sigev_un._tid = static_cast<pid_t>(syscall(SYS_gettid));
    timer_t timer;
    if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &timer) != 0) {
      return false;
    }
    timer_delete(timer);
    return true;
  }();
  return ok;
}

const std::string& SamplingProfiler::probe_reason() {
  static const std::string reason =
      probe() ? std::string{}
              : "timer_create(CLOCK_THREAD_CPUTIME_ID, SIGEV_THREAD_ID) "
                "failed";
  return reason;
}

SampleRing* SamplingProfiler::attach_current_thread(void** timer_out,
                                                    bool* armed_out) {
  *timer_out = nullptr;
  *armed_out = false;
  if (!available_) return nullptr;

  auto ring = std::make_unique<SampleRing>(kRingWords);
  current_stack_extent(&ring->stack_lo, &ring->stack_hi);
  SampleRing* raw = ring.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(std::move(ring));
  }

  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_value.sival_ptr = raw;
  sev._sigev_un._tid = static_cast<pid_t>(syscall(SYS_gettid));
  timer_t timer;
  if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &timer) != 0) {
    // Ring stays registered (empty); the thread just goes unsampled.
    return raw;
  }
  *timer_out = reinterpret_cast<void*>(timer);

  const long interval_ns = 1'000'000'000l / static_cast<long>(hz_);
  struct itimerspec spec;
  spec.it_interval.tv_sec = 0;
  spec.it_interval.tv_nsec = interval_ns;
  spec.it_value = spec.it_interval;
  if (timer_settime(timer, 0, &spec, nullptr) == 0) {
    *armed_out = true;
  }
  return raw;
}

void SamplingProfiler::detach_current_thread(SampleRing* ring, void* timer,
                                             bool armed) {
  // Close before tearing the timer down: timer_delete leaves a pending
  // SIGPROF's fate unspecified, so one may still land afterwards — the
  // closed flag turns it into a counted drop instead of a late write.
  if (ring != nullptr) ring->close();
  if (timer != nullptr) {
    (void)armed;
    timer_delete(reinterpret_cast<timer_t>(timer));
  }
}

#else  // !MARCOPOLO_PROFILER_SUPPORTED

SamplingProfiler::SamplingProfiler(std::uint32_t hz)
    : hz_(hz == 0 ? kDefaultProfileHz : hz) {
  reason_ = probe_reason();
}

SamplingProfiler::~SamplingProfiler() = default;

bool SamplingProfiler::probe() { return false; }

const std::string& SamplingProfiler::probe_reason() {
  static const std::string reason =
      "sampling profiler requires Linux on x86-64 or aarch64";
  return reason;
}

SampleRing* SamplingProfiler::attach_current_thread(void** timer_out,
                                                    bool* armed_out) {
  *timer_out = nullptr;
  *armed_out = false;
  return nullptr;
}

void SamplingProfiler::detach_current_thread(SampleRing* /*ring*/,
                                             void* /*timer*/,
                                             bool /*armed*/) {}

#endif  // MARCOPOLO_PROFILER_SUPPORTED

RawProfile SamplingProfiler::drain() {
  RawProfile profile;
  profile.hz = hz_;
  profile.available = available_;
  std::vector<std::unique_ptr<SampleRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings.swap(rings_);
  }
  profile.threads.reserve(rings.size());
  for (std::size_t i = 0; i < rings.size(); ++i) {
    SampleRing& ring = *rings[i];
    ring.close();  // defensive; ProfiledThread already closed it
    ThreadSamples t;
    t.thread_id = static_cast<std::uint32_t>(i);
    t.samples = ring.decode();
    t.dropped = ring.dropped();
    profile.threads.push_back(std::move(t));
  }
  // Rings are freed here: every timer that could reference them was
  // deleted when its ProfiledThread guard died.
  return profile;
}

ProfiledThread::ProfiledThread(SamplingProfiler* profiler)
    : profiler_(profiler) {
  if (profiler_ == nullptr || !profiler_->available()) {
    profiler_ = nullptr;
    return;
  }
  ring_ = profiler_->attach_current_thread(&timer_, &timer_armed_);
}

ProfiledThread::~ProfiledThread() {
  if (profiler_ == nullptr) return;
  profiler_->detach_current_thread(ring_, timer_, timer_armed_);
}

}  // namespace marcopolo::obs
