#include "obs/trace_export.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <ostream>

#include "obs/json.hpp"

namespace marcopolo::obs {

namespace {

constexpr int kWallPid = 1;     ///< Wall-clock worker lanes.
constexpr int kVirtualPid = 2;  ///< Orchestrator virtual-time lanes.
constexpr int kProfilePid = 3;  ///< CPU-profiler sample lanes.
/// Profiled threads are not the same ids as worker lanes; offset their
/// tids so the flat tid namespace of the legacy "samples" array cannot
/// collide with pid-1 workers.
constexpr int kProfileTidBase = 1000;

/// Sample sections are emitted only for a real profile; null, probe-failed,
/// or empty profiles leave trace.json byte-identical (pure observer).
bool has_profile_data(const CpuProfile* profile) {
  return profile != nullptr && profile->available && profile->samples > 0;
}

/// Microsecond timestamp (3 decimals keeps nanosecond precision) for the
/// Chrome trace, relative to the journal epoch.
void write_wall_ts(std::ostream& out, std::uint64_t ns, std::uint64_t epoch) {
  const std::uint64_t rel = ns >= epoch ? ns - epoch : 0;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(rel / 1000),
                static_cast<unsigned long long>(rel % 1000));
  out << buf;
}

void write_duration_us(std::ostream& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out << buf;
}

class EventList {
 public:
  explicit EventList(std::ostream& out) : out_(out) {}

  /// Start one event object; the caller streams the fields and calls
  /// close(). Handles the comma discipline of the surrounding array.
  std::ostream& open() {
    out_ << (first_ ? "\n  {" : ",\n  {");
    first_ = false;
    return out_;
  }
  void close() { out_ << "}"; }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void metadata_event(EventList& events, int pid, int tid, const char* kind,
                    const std::string& name) {
  events.open() << "\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
                << ", \"name\": \"" << kind << "\", \"args\": {\"name\": \""
                << json_escape(name) << "\"}";
  events.close();
}

const char* outcome_name(std::uint8_t outcome) {
  switch (outcome) {
    case 0: return "none";
    case 1: return "victim";
    case 2: return "adversary";
  }
  return "?";
}

/// Prometheus metric name: `marcopolo_` + name with every character
/// outside [a-zA-Z0-9_:] replaced by '_'.
std::string prometheus_name(std::string_view name) {
  std::string out = "marcopolo_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

namespace {

/// Build the legacy "stackFrames" trie from the folded stacks and emit
/// it plus the "samples" array. Frame ids are allocated in first-visit
/// order walking the (sorted) stacks root-first, so output is
/// deterministic. Returns nothing; writes both top-level sections
/// (caller supplies the separating commas).
void write_sample_sections(std::ostream& out, const CpuProfile& profile,
                           std::uint64_t epoch_ns) {
  struct Frame {
    std::string name;
    std::uint32_t parent;  // 0 = root (no parent); ids are 1-based
  };
  std::vector<Frame> frames;
  // (parent id, frame name) -> frame id
  std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> interned;
  std::vector<std::uint32_t> leaf_of(profile.stacks.size(), 0);

  for (std::size_t s = 0; s < profile.stacks.size(); ++s) {
    const std::string& line = profile.stacks[s].stack;
    std::uint32_t parent = 0;
    std::size_t begin = 0;
    while (begin <= line.size()) {
      std::size_t end = line.find(';', begin);
      if (end == std::string::npos) end = line.size();
      std::string name = line.substr(begin, end - begin);
      auto [it, fresh] = interned.try_emplace(
          {parent, name}, static_cast<std::uint32_t>(frames.size() + 1));
      if (fresh) frames.push_back(Frame{std::move(name), parent});
      parent = it->second;
      if (end == line.size()) break;
      begin = end + 1;
    }
    leaf_of[s] = parent;
  }

  out << "\"stackFrames\": {";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    out << (i == 0 ? "\n  " : ",\n  ") << "\"" << (i + 1)
        << "\": {\"name\": \"" << json_escape(frames[i].name)
        << "\", \"category\": \"cpu\"";
    if (frames[i].parent != 0) {
      out << ", \"parent\": \"" << frames[i].parent << "\"";
    }
    out << "}";
  }
  out << "\n},\n\"samples\": [";
  bool first = true;
  for (const SampleEvent& e : profile.events) {
    out << (first ? "\n  {" : ",\n  {");
    first = false;
    out << "\"cpu\": 0, \"tid\": " << (kProfileTidBase + e.thread_id)
        << ", \"ts\": ";
    write_wall_ts(out, e.ns, epoch_ns);
    out << ", \"name\": \"cpu_sample\", \"sf\": " << leaf_of[e.stack]
        << ", \"weight\": 1}";
  }
  out << "\n]";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const FlightJournal& journal,
                        const CpuProfile* profile) {
  const bool with_samples = has_profile_data(profile);
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  EventList events(out);

  if (with_samples) {
    metadata_event(events, kProfilePid, 0, "process_name",
                   "cpu profiler (" + std::to_string(profile->hz) + " Hz)");
    std::uint32_t last_tid = ~0u;
    for (const SampleEvent& e : profile->events) {
      if (e.thread_id == last_tid) continue;
      last_tid = e.thread_id;
      metadata_event(events, kProfilePid,
                     kProfileTidBase + static_cast<int>(e.thread_id),
                     "thread_name",
                     "profiled thread " + std::to_string(e.thread_id));
    }
  }
  if (!journal.workers.empty()) {
    metadata_event(events, kWallPid, 0, "process_name",
                   "fast_campaign workers (wall clock)");
    for (const auto& lane : journal.workers) {
      metadata_event(events, kWallPid, static_cast<int>(lane.worker),
                     "thread_name",
                     "worker " + std::to_string(lane.worker));
    }
  }
  if (!journal.attacks.empty() || !journal.quorums.empty()) {
    metadata_event(events, kVirtualPid, 0, "process_name",
                   "orchestrator (virtual time)");
  }

  for (const auto& lane : journal.workers) {
    const int tid = static_cast<int>(lane.worker);
    for (const TaskSpanRecord& t : lane.tasks) {
      events.open() << "\"ph\": \"X\", \"pid\": " << kWallPid
                    << ", \"tid\": " << tid << ", \"name\": \""
                    << (t.total_capture ? "capture " : "task ") << t.announcer
                    << "\\u2192" << t.adversary << "\", \"ts\": ";
      write_wall_ts(out, t.start_ns, journal.epoch_ns);
      out << ", \"dur\": ";
      write_duration_us(out, t.duration_ns);
      out << ", \"args\": {\"announcer\": " << t.announcer
          << ", \"adversary\": " << t.adversary
          << ", \"victim_rows\": " << t.victim_rows
          << ", \"propagate_ns\": " << t.propagate_ns
          << ", \"classify_ns\": " << t.classify_ns
          << ", \"record_ns\": " << t.record_ns;
      if (t.attack != 0) {
        out << ", \"attack\": " << static_cast<int>(t.attack);
      }
      if (t.instructions != 0) {
        // Counter args only when the worker had a perf group: traces
        // from counter-less runs stay byte-identical.
        out << ", \"instructions\": " << t.instructions
            << ", \"cycles\": " << t.cycles;
        if (t.cycles != 0) {
          char ipc[32];
          std::snprintf(ipc, sizeof ipc, "%.3f",
                        static_cast<double>(t.instructions) /
                            static_cast<double>(t.cycles));
          out << ", \"ipc\": " << ipc;
        }
      }
      out << "}";
      events.close();
    }
    for (const PropagationRunRecord& p : lane.propagations) {
      events.open() << "\"ph\": \"X\", \"pid\": " << kWallPid
                    << ", \"tid\": " << tid
                    << ", \"name\": \"propagate\", \"ts\": ";
      write_wall_ts(out, p.start_ns, journal.epoch_ns);
      out << ", \"dur\": ";
      write_duration_us(out, p.duration_ns);
      out << ", \"args\": {\"delivered\": " << p.delivered
          << ", \"loop_dropped\": " << p.loop_dropped
          << ", \"rov_dropped\": " << p.rov_dropped
          << ", \"decided_route_age\": " << p.decided[2] << "}";
      events.close();
    }
  }

  for (const AttackSpanRecord& a : journal.attacks) {
    const int tid = static_cast<int>(a.lane);
    const std::uint64_t dur =
        a.conclude_us >= a.announce_us ? a.conclude_us - a.announce_us : 0;
    events.open() << "\"ph\": \"X\", \"pid\": " << kVirtualPid
                  << ", \"tid\": " << tid << ", \"name\": \"attack "
                  << a.victim << "\\u2192" << a.adversary << " #"
                  << static_cast<int>(a.attempt) << "\", \"ts\": "
                  << a.announce_us << ", \"dur\": " << dur
                  << ", \"args\": {\"victim\": " << a.victim
                  << ", \"adversary\": " << a.adversary
                  << ", \"attempt\": " << static_cast<int>(a.attempt)
                  << ", \"complete\": " << (a.complete ? "true" : "false")
                  << "}";
    events.close();
    if (a.dcv_us >= a.announce_us && a.conclude_us >= a.dcv_us) {
      events.open() << "\"ph\": \"X\", \"pid\": " << kVirtualPid
                    << ", \"tid\": " << tid
                    << ", \"name\": \"propagation_wait\", \"ts\": "
                    << a.announce_us
                    << ", \"dur\": " << a.dcv_us - a.announce_us << "";
      events.close();
      events.open() << "\"ph\": \"X\", \"pid\": " << kVirtualPid
                    << ", \"tid\": " << tid
                    << ", \"name\": \"dcv_fanout\", \"ts\": " << a.dcv_us
                    << ", \"dur\": " << a.conclude_us - a.dcv_us << "";
      events.close();
    }
  }

  for (const QuorumRecord& q : journal.quorums) {
    events.open() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << kVirtualPid
                  << ", \"tid\": " << static_cast<int>(q.lane)
                  << ", \"name\": \"quorum " << json_escape(q.system) << " "
                  << (q.corroborated ? "pass" : "fail")
                  << "\", \"ts\": " << q.virtual_us
                  << ", \"args\": {\"victim\": " << q.victim
                  << ", \"adversary\": " << q.adversary
                  << ", \"corroborated\": "
                  << (q.corroborated ? "true" : "false") << "}";
    events.close();
  }

  if (with_samples) {
    // Samples need an epoch even when the journal is empty (profile-only
    // runs): fall back to the earliest sample.
    std::uint64_t epoch = journal.epoch_ns;
    if (epoch == 0) {
      for (const SampleEvent& e : profile->events) {
        if (epoch == 0 || e.ns < epoch) epoch = e.ns;
      }
    }
    out << "\n],\n";
    write_sample_sections(out, *profile, epoch);
    out << "\n}\n";
  } else {
    out << "\n]\n}\n";
  }
}

void write_folded_profile(std::ostream& out, const CpuProfile& profile) {
  for (const FoldedStack& s : profile.stacks) {
    out << s.stack << ' ' << s.count << '\n';
  }
}

void write_journal_ndjson(std::ostream& out, const FlightJournal& journal) {
  out << "{\"type\": \"meta\", \"journal_schema\": 1, \"epoch_ns\": "
      << journal.epoch_ns << ", \"workers\": " << journal.workers.size()
      << ", \"tasks\": " << journal.task_count()
      << ", \"verdicts\": " << journal.verdict_count()
      << ", \"adversary_verdicts\": " << journal.adversary_verdict_count()
      << "}\n";
  for (const auto& lane : journal.workers) {
    for (const TaskSpanRecord& t : lane.tasks) {
      out << "{\"type\": \"task\", \"worker\": " << lane.worker
          << ", \"announcer\": " << t.announcer
          << ", \"adversary\": " << t.adversary
          << ", \"victim_rows\": " << t.victim_rows
          << ", \"total_capture\": " << (t.total_capture ? "true" : "false")
          << ", \"start_ns\": " << t.start_ns
          << ", \"duration_ns\": " << t.duration_ns
          << ", \"propagate_ns\": " << t.propagate_ns
          << ", \"classify_ns\": " << t.classify_ns
          << ", \"record_ns\": " << t.record_ns;
      if (t.attack != 0) {
        // Attack-type tag (bgp::AttackType value), omitted for the
        // pre-multi-attack default so single-attack journals keep their
        // old bytes; readers default an absent tag to 0.
        out << ", \"attack\": " << static_cast<int>(t.attack);
      }
      if (t.instructions != 0) {
        // Forward-compatible addition (schema 1, unknown fields are
        // ignored by old readers); omitted when counters were off so
        // recorded output stays byte-identical.
        out << ", \"instructions\": " << t.instructions
            << ", \"cycles\": " << t.cycles;
      }
      out << "}\n";
    }
    for (const PropagationRunRecord& p : lane.propagations) {
      out << "{\"type\": \"propagation\", \"worker\": " << lane.worker
          << ", \"start_ns\": " << p.start_ns
          << ", \"duration_ns\": " << p.duration_ns
          << ", \"delivered\": " << p.delivered
          << ", \"loop_dropped\": " << p.loop_dropped
          << ", \"rov_dropped\": " << p.rov_dropped << ", \"decided\": {";
      static constexpr const char* kSteps[5] = {
          "local_pref", "path_length", "route_age", "neighbor_asn",
          "ingress_pop"};
      for (std::size_t s = 0; s < p.decided.size(); ++s) {
        out << (s == 0 ? "" : ", ") << "\"" << kSteps[s]
            << "\": " << p.decided[s];
      }
      out << "}}\n";
    }
    for (const VerdictRecord& v : lane.verdicts) {
      out << "{\"type\": \"verdict\", \"worker\": " << lane.worker
          << ", \"victim\": " << v.victim
          << ", \"adversary\": " << v.adversary
          << ", \"perspective\": " << v.perspective;
      if (v.attack != 0) {
        out << ", \"attack\": " << static_cast<int>(v.attack);
      }
      out << ", \"outcome\": \""
          << outcome_name(v.outcome) << "\", \"decided_by\": \""
          << to_cstring(v.decided_by) << "\", \"contested\": "
          << (v.contested ? "true" : "false")
          << ", \"route_age_sensitive\": "
          << (v.route_age_sensitive() ? "true" : "false") << "}\n";
    }
  }
  for (const AttackSpanRecord& a : journal.attacks) {
    out << "{\"type\": \"attack\", \"lane\": " << a.lane
        << ", \"victim\": " << a.victim << ", \"adversary\": " << a.adversary
        << ", \"attempt\": " << static_cast<int>(a.attempt)
        << ", \"complete\": " << (a.complete ? "true" : "false")
        << ", \"announce_us\": " << a.announce_us
        << ", \"dcv_us\": " << a.dcv_us
        << ", \"conclude_us\": " << a.conclude_us << "}\n";
  }
  for (const QuorumRecord& q : journal.quorums) {
    out << "{\"type\": \"quorum\", \"system\": \"" << json_escape(q.system)
        << "\", \"lane\": " << q.lane << ", \"victim\": " << q.victim
        << ", \"adversary\": " << q.adversary << ", \"corroborated\": "
        << (q.corroborated ? "true" : "false")
        << ", \"virtual_us\": " << q.virtual_us << "}\n";
  }
}

void write_prometheus_text(std::ostream& out,
                           const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prometheus_name(name);
    out << "# HELP " << metric << " Counter " << name << "\n";
    out << "# TYPE " << metric << " counter\n";
    out << metric << " " << value << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string metric = prometheus_name(h.name);
    out << "# HELP " << metric << " Log2-bucketed histogram " << h.name
        << "\n";
    out << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [le, count] : h.buckets) {
      cumulative += count;
      out << metric << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    out << metric << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << metric << "_sum " << h.sum << "\n";
    out << metric << "_count " << h.count << "\n";
  }
}

namespace {

/// Crash-safe single-file write: stream into `<path>.tmp`, then rename
/// into place. An interrupted run leaves at worst a stale .tmp behind —
/// never a truncated file at the final name, so `mpinspect check` and CI
/// can treat existence as completeness.
bool write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& emit) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    emit(out);
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

}  // namespace

bool write_trace_dir(const std::string& dir, const FlightJournal& journal,
                     const MetricsSnapshot* snapshot,
                     const CpuProfile* profile) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  bool ok = true;

  ok &= write_file_atomic(dir + "/trace.json",
                          [&journal, profile](std::ostream& out) {
                            write_chrome_trace(out, journal, profile);
                          });
  if (has_profile_data(profile)) {
    ok &= write_file_atomic(dir + "/profile.folded",
                            [profile](std::ostream& out) {
                              write_folded_profile(out, *profile);
                            });
  }
  ok &= write_file_atomic(dir + "/journal.ndjson",
                          [&journal](std::ostream& out) {
                            write_journal_ndjson(out, journal);
                          });
  if (snapshot != nullptr) {
    ok &= write_file_atomic(dir + "/metrics.prom",
                            [snapshot](std::ostream& out) {
                              write_prometheus_text(out, *snapshot);
                            });
  }
  return ok;
}

}  // namespace marcopolo::obs
