// Export a drained FlightJournal (and a MetricsSnapshot) in standard
// formats:
//
//   - Chrome trace_event JSON: loads in Perfetto (ui.perfetto.dev) or
//     chrome://tracing. Wall-clock records appear under process 1
//     ("fast_campaign workers"), one lane per worker thread, propagation
//     spans nested inside their task spans. Orchestrator records appear
//     under process 2 ("orchestrator, virtual time"), one lane per
//     prefix lane, with attack attempts split into propagation-wait and
//     DCV-fan-out slices and quorum decisions as instant events.
//   - NDJSON journal: one self-describing JSON object per line
//     (`{"type": "task" | "propagation" | "verdict" | "attack" |
//     "quorum", ...}`), greppable and trivially parseable line-wise.
//     Verdict lines carry the decision provenance (`decided_by`,
//     `contested`, `route_age_sensitive`).
//   - Prometheus text exposition format for a MetricsSnapshot
//     (`# TYPE` / `# HELP`, cumulative histogram buckets), so the same
//     counters the manifest embeds can be scraped or pushed.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/symbolize.hpp"

namespace marcopolo::obs {

/// Chrome trace_event JSON ("traceEvents" array form). When `profile` is
/// non-null, available, and non-empty, the output also carries the
/// legacy sampling sections Perfetto imports — a "stackFrames" dict plus
/// a "samples" array under process 3 ("cpu profiler") — so flame data
/// lands on the same timeline as the worker spans. A null, unavailable,
/// or empty profile leaves the output byte-identical to the two-argument
/// form.
void write_chrome_trace(std::ostream& out, const FlightJournal& journal,
                        const CpuProfile* profile = nullptr);

/// flamegraph.pl collapsed format: one "frame;frame;frame count" line
/// per unique stack, root-first, sorted by stack string.
void write_folded_profile(std::ostream& out, const CpuProfile& profile);

/// Newline-delimited JSON, one record per line, ordered: a `meta` line,
/// then tasks/propagations/verdicts per worker lane, then virtual-time
/// attacks and quorum decisions.
void write_journal_ndjson(std::ostream& out, const FlightJournal& journal);

/// Prometheus text exposition format. Metric names are prefixed with
/// `marcopolo_` and sanitized ('.' and other invalid characters become
/// '_'); histograms emit cumulative `_bucket{le="..."}` series plus
/// `_sum` and `_count` as the protocol requires.
void write_prometheus_text(std::ostream& out, const MetricsSnapshot& snapshot);

/// Write the standard trace bundle into directory `dir` (created if
/// missing): trace.json (Chrome trace), journal.ndjson, and — when
/// `snapshot` is non-null — metrics.prom. A non-null, available,
/// non-empty `profile` additionally writes profile.folded and merges
/// sample events into trace.json; otherwise the bundle is byte-identical
/// to a profile-less call (the pure-observer contract). Returns false on
/// any I/O failure (after attempting all files). Each file is written to
/// `<name>.tmp` and renamed into place, so a crashed or interrupted run
/// never leaves a truncated file at the final name.
[[nodiscard]] bool write_trace_dir(const std::string& dir,
                                   const FlightJournal& journal,
                                   const MetricsSnapshot* snapshot,
                                   const CpuProfile* profile = nullptr);

}  // namespace marcopolo::obs
