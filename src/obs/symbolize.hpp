// Offline symbolization for the sampling profiler (profiler.hpp).
//
// Runs strictly after the profiled workload — never in a signal handler —
// so it is free to allocate, demangle, and cache. dladdr resolves each
// unique PC against the loaded objects (executables set ENABLE_EXPORTS /
// -rdynamic so their own symbols are visible), __cxa_demangle prettifies
// C++ names, and anything no object claims becomes "[0xADDR]" so a
// stripped or JIT frame still folds into a stable stack line instead of
// vanishing.
//
// The symbolized form, CpuProfile, is the single model all three exports
// consume: folded stacks for profile.folded / flamegraph.pl, the stack
// table for trace.json sample events, and the self/total symbol table for
// the run manifest and `mpinspect hotspots` / `diff`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace marcopolo::obs {

/// Aggregate cost of one symbol across the profile.
struct HotSymbol {
  std::string name;
  /// Samples with this symbol on top of the stack (leaf): CPU spent *in*
  /// the function.
  std::uint64_t self = 0;
  /// Samples with this symbol anywhere on the stack, counted once per
  /// sample even under recursion: CPU spent in or below the function.
  std::uint64_t total = 0;
};

/// One aggregated call stack, root-first, plus how often it was seen.
struct FoldedStack {
  /// "root;caller;...;leaf" — frames joined with ';' in flamegraph.pl's
  /// collapsed format. Frame names never contain ';' (symbolize_pc
  /// replaces any with ':').
  std::string stack;
  std::uint64_t count = 0;
};

/// One sample occurrence, kept so trace.json can place samples on the
/// timeline; `stack` indexes CpuProfile::stacks.
struct SampleEvent {
  std::uint32_t thread_id = 0;
  std::uint64_t ns = 0;  ///< CLOCK_MONOTONIC, same clock as flight spans.
  std::uint32_t stack = 0;
};

/// A fully symbolized profile: what the exporters and readers consume.
struct CpuProfile {
  std::uint32_t hz = 0;
  bool available = false;  ///< Mirrors RawProfile::available.
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  std::uint64_t truncated = 0;  ///< Samples cut at RawSample::kMaxDepth.
  /// Sorted by stack string for deterministic output.
  std::vector<FoldedStack> stacks;
  /// Sorted by self descending, then name; sum(self) == samples.
  std::vector<HotSymbol> symbols;
  /// Per-sample timeline, ordered (thread_id, ns).
  std::vector<SampleEvent> events;
};

/// Resolve one PC to a display name: demangled symbol via dladdr, else
/// "[0xADDR]". `adjust_return_address` subtracts 1 first (return
/// addresses point after the call; the call site is the frame we want).
std::string symbolize_pc(std::uintptr_t pc, bool adjust_return_address);

/// Symbolize and aggregate a drained RawProfile. Deterministic given the
/// same raw samples: stacks sort lexically, symbols by self share.
CpuProfile symbolize_profile(const RawProfile& raw);

}  // namespace marcopolo::obs
