#include "obs/perf_counters.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace marcopolo::obs {

#if defined(__linux__)

namespace {

constexpr int kEvents = PerfCounterGroup::kEvents;
constexpr std::uint32_t kEventConfigs[kEvents] = {
    PERF_COUNT_HW_INSTRUCTIONS, PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES};

int open_event(std::uint32_t config, int group_fd, std::uint64_t* id_out) {
  perf_event_attr attr{};
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  if (group_fd < 0) attr.disabled = 1;  // Leader starts disabled.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  // pid=0, cpu=-1: this thread, any CPU — counts migrate with the thread.
  int fd = static_cast<int>(::syscall(SYS_perf_event_open, &attr, 0, -1,
                                      group_fd, 0UL));
  if (fd >= 0 && id_out != nullptr) {
    if (::ioctl(fd, PERF_EVENT_IOC_ID, id_out) != 0) *id_out = 0;
  }
  return fd;
}

std::string describe_errno(int err) {
  std::string reason = "perf_event_open: ";
  reason += std::strerror(err);
  if (err == EACCES || err == EPERM) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " (perf_event_paranoid=%d)",
                  PerfCounterGroup::paranoid_level());
    reason += buf;
  }
  return reason;
}

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  fds_.fill(-1);
  int leader = open_event(kEventConfigs[0], -1, &ids_[0]);
  if (leader < 0) {
    reason_ = describe_errno(errno);
    return;
  }
  fds_[0] = leader;
  for (std::size_t i = 1; i < kEvents; ++i) {
    // Optional members: a PMU missing one event degrades, not disables.
    fds_[i] = open_event(kEventConfigs[i], leader, &ids_[i]);
  }
  ::ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

CounterSample PerfCounterGroup::read() const {
  CounterSample sample;
  if (!available()) return sample;
  // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout:
  //   u64 nr; { u64 value; u64 id; } values[nr];
  std::uint64_t buf[1 + 2 * kEvents] = {};
  ssize_t n = ::read(fds_[0], buf, sizeof(buf));
  if (n < static_cast<ssize_t>(sizeof(std::uint64_t))) return sample;
  std::uint64_t nr = buf[0];
  if (nr > kEvents) nr = kEvents;
  std::uint64_t counts[kEvents] = {};
  for (std::uint64_t v = 0; v < nr; ++v) {
    std::uint64_t value = buf[1 + 2 * v];
    std::uint64_t id = buf[2 + 2 * v];
    for (std::size_t i = 0; i < kEvents; ++i) {
      if (fds_[i] >= 0 && ids_[i] == id) {
        counts[i] = value;
        break;
      }
    }
  }
  sample.instructions = counts[0];
  sample.cycles = counts[1];
  sample.cache_references = counts[2];
  sample.cache_misses = counts[3];
  sample.branch_misses = counts[4];
  sample.valid = true;
  return sample;
}

int PerfCounterGroup::paranoid_level() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r");
  if (f == nullptr) return -1;
  int level = -1;
  if (std::fscanf(f, "%d", &level) != 1) level = -1;
  std::fclose(f);
  return level;
}

#else  // !__linux__

PerfCounterGroup::PerfCounterGroup() {
  fds_.fill(-1);
  reason_ = "perf_event_open: unsupported platform";
}

PerfCounterGroup::~PerfCounterGroup() = default;

CounterSample PerfCounterGroup::read() const { return CounterSample{}; }

int PerfCounterGroup::paranoid_level() { return -1; }

#endif  // __linux__

namespace {
struct ProbeResult {
  bool available = false;
  std::string reason;
};

const ProbeResult& cached_probe() {
  static const ProbeResult result = [] {
    ProbeResult r;
    PerfCounterGroup group;
    r.available = group.available();
    r.reason = group.unavailable_reason();
    return r;
  }();
  return result;
}
}  // namespace

bool PerfCounterGroup::probe() { return cached_probe().available; }

const std::string& PerfCounterGroup::probe_reason() {
  return cached_probe().reason;
}

}  // namespace marcopolo::obs
