// RunManifest: one self-describing JSON document per run.
//
// Serializes (1) a config echo — whatever key/value pairs the host
// program records, in insertion order, (2) named wall-clock phases, and
// (3) a full MetricsSnapshot (every counter and histogram), so a single
// `--metrics-out run.json` file answers "what ran, with what settings,
// how long each phase took, and what the instrumented subsystems
// counted" without re-running anything. The format is plain JSON with a
// `manifest_schema` version field; `write_metrics_json()` is exposed
// separately so benches can embed the metrics section inside their own
// documents (campaign_wallclock does).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "obs/json.hpp"  // json_escape (the writers' shared escaper)
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/symbolize.hpp"

namespace marcopolo::obs {

/// Write one MetricsSnapshot as a JSON object:
///   {"counters": {...}, "histograms": {name: {count, sum, min, max,
///    p50, p95, p99, buckets: [{"le": ..., "count": ...}]}}}
/// The pNN fields are log2-bucket interpolation estimates
/// (HistogramSnapshot::quantile).
/// `indent` is prepended to every line after the first.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot,
                        std::string_view indent = {});

/// Append the counter/memory fields of one PhaseStats to a JSON object
/// under construction (emits ", \"instructions\": N, ..." — caller owns
/// the braces). Counter fields appear only when the sample is valid and
/// memory fields only when /proc was readable, so counter-less hosts
/// produce phase rows byte-identical to the pre-counter format. Shared
/// between RunManifest and the campaign_wallclock bench so both emit the
/// exact field names manifest_reader parses.
void write_phase_stats_json(std::ostream& out, const PhaseStats& stats);

/// Write a CpuProfile's summary as a JSON object: sampling rate, sample
/// accounting, and the top-`top_n` hot symbols by self samples
/// ({"name", "self", "total"} each). Shared between RunManifest and the
/// campaign_wallclock bench so both emit the exact field names
/// manifest_reader parses. `indent` is prepended to every line after the
/// first.
void write_profile_json(std::ostream& out, const CpuProfile& profile,
                        std::string_view indent = {},
                        std::size_t top_n = 20);

class RunManifest {
 public:
  explicit RunManifest(std::string tool) : tool_(std::move(tool)) {}

  /// Config echo (insertion order preserved; re-setting a key overwrites).
  void set(std::string_view key, std::string_view value);
  void set(std::string_view key, const char* value) {
    set(key, std::string_view(value));
  }
  void set(std::string_view key, std::int64_t value);
  void set(std::string_view key, std::uint64_t value) {
    set(key, static_cast<std::int64_t>(value));
  }
  void set(std::string_view key, int value) {
    set(key, static_cast<std::int64_t>(value));
  }
  void set(std::string_view key, double value);
  void set(std::string_view key, bool value);

  /// Record a completed wall-clock phase.
  void add_phase(std::string_view name, double seconds);

  /// Record a phase with hardware-counter / memory attribution. Invalid
  /// stats (counters unavailable, /proc unreadable) degrade to the plain
  /// wall-clock row — call sites never branch on availability.
  void add_phase(std::string_view name, double seconds,
                 const PhaseStats& stats);

  /// Attach a CPU profile summary. Serialized as a "profile" section
  /// only when the profile is available and non-empty, so profiler
  /// off/unavailable manifests stay byte-identical to pre-profiler ones
  /// — call sites never branch on availability.
  void set_profile(const CpuProfile& profile);

  /// Serialize config + phases + `snapshot` as one JSON document.
  void write_json(std::ostream& out, const MetricsSnapshot& snapshot) const;

  /// write_json() to `path`; returns false (and writes nothing) on I/O
  /// failure.
  [[nodiscard]] bool write_file(const std::string& path,
                                const MetricsSnapshot& snapshot) const;

 private:
  using Value = std::variant<std::string, std::int64_t, double, bool>;

  struct Phase {
    std::string name;
    double seconds = 0.0;
    PhaseStats stats;  // counters.valid / mem_valid gate serialization
  };

  std::string tool_;
  std::vector<std::pair<std::string, Value>> config_;
  std::vector<Phase> phases_;
  CpuProfile profile_;  // available && samples > 0 gates serialization
};

}  // namespace marcopolo::obs
