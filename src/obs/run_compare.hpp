// Run comparison and bundle validation: the analysis layer over the
// readers.
//
// Three consumers share this code:
//   - `mpinspect summarize` renders one recorded run (provenance
//     distribution, phase attribution, histogram quantiles);
//   - `mpinspect diff` compares a candidate run against a baseline and
//     gates CI on regressions (counter deltas, quantile shifts,
//     throughput per thread count);
//   - `mpinspect check` (and quickstart's --trace-out self-check)
//     structurally validates a trace bundle: schema tag, monotone
//     timestamps within each lane, meta-vs-actual and
//     journal-vs-manifest counter agreement.
//
// All comparisons are pure functions of already-read data — nothing here
// re-runs a campaign, exactly the paper's post-hoc posture (§5–§7 work
// from the recorded hijack corpus, not live announcements).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/journal_reader.hpp"
#include "obs/manifest_reader.hpp"

namespace marcopolo::obs {

// ---------------------------------------------------------------------------
// Single-run summaries (from a journal).

/// Verdict provenance distribution over one journal.
struct ProvenanceSummary {
  std::uint64_t verdicts = 0;
  std::uint64_t adversary = 0;       ///< outcome == adversary.
  std::uint64_t contested = 0;
  std::uint64_t route_age_sensitive = 0;
  /// decided_by name -> verdict count (names from to_cstring).
  std::map<std::string, std::uint64_t> decided_by;

  [[nodiscard]] double contested_rate() const {
    return verdicts == 0 ? 0.0
                         : static_cast<double>(contested) /
                               static_cast<double>(verdicts);
  }
  [[nodiscard]] double route_age_sensitive_rate() const {
    return verdicts == 0 ? 0.0
                         : static_cast<double>(route_age_sensitive) /
                               static_cast<double>(verdicts);
  }
};

[[nodiscard]] ProvenanceSummary summarize_provenance(
    const FlightJournal& journal);

/// Wall-clock attribution summed over all task spans: where did worker
/// time actually go? `other_ns` is span time outside the three
/// instrumented phases (scenario setup, queue overhead).
struct PhaseAttribution {
  std::uint64_t total_ns = 0;
  std::uint64_t propagate_ns = 0;
  std::uint64_t classify_ns = 0;
  std::uint64_t record_ns = 0;

  [[nodiscard]] std::uint64_t other_ns() const {
    const std::uint64_t accounted = propagate_ns + classify_ns + record_ns;
    return total_ns > accounted ? total_ns - accounted : 0;
  }
};

[[nodiscard]] PhaseAttribution attribute_phases(const FlightJournal& journal);

// ---------------------------------------------------------------------------
// Two-run comparison (from manifests, optionally journals).

struct CounterDelta {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t cand = 0;
  bool in_base = false;
  bool in_cand = false;

  [[nodiscard]] std::int64_t delta() const {
    return static_cast<std::int64_t>(cand) - static_cast<std::int64_t>(base);
  }
  /// Relative change in percent; 0 when the base is 0.
  [[nodiscard]] double pct() const {
    return base == 0 ? 0.0
                     : 100.0 * static_cast<double>(delta()) /
                           static_cast<double>(base);
  }
};

/// One histogram quantile (p50/p95/p99) in both runs.
struct QuantileDelta {
  std::string name;   ///< Histogram name.
  double q = 0.0;     ///< Quantile in [0, 1].
  double base = 0.0;
  double cand = 0.0;

  [[nodiscard]] double pct() const {
    return base == 0.0 ? 0.0 : 100.0 * (cand - base) / base;
  }
};

/// One thread-count-matched campaign_wallclock run row in both runs.
struct BenchRunDelta {
  std::uint64_t threads = 0;
  double base_seconds = 0.0;
  double cand_seconds = 0.0;
  double base_throughput = 0.0;  ///< tasks/s.
  double cand_throughput = 0.0;

  /// Wall-clock change in percent (positive = candidate slower).
  [[nodiscard]] double seconds_pct() const {
    return base_seconds == 0.0
               ? 0.0
               : 100.0 * (cand_seconds - base_seconds) / base_seconds;
  }
};

/// One named wall-clock phase (union of both runs, baseline order first).
/// Bench documents use phases for single-shot measurements that have no
/// thread-count axis — e.g. campaign_wallclock's exhaustive optimizer
/// search — so the gate covers phases present in both runs like run rows;
/// a one-sided phase (old baseline predating the measurement) is only a
/// note.
struct PhaseDelta {
  std::string name;
  double base_seconds = 0.0;
  double cand_seconds = 0.0;
  bool in_base = false;
  bool in_cand = false;

  /// Hardware-counter attribution, present only when the writing host
  /// had a PMU (ReadPhase::has_counters). Instructions retired are the
  /// gated quantity — deterministic for a fixed user-mode workload, so
  /// gateable far below the wall-clock noise floor.
  bool base_has_counters = false;
  bool cand_has_counters = false;
  std::uint64_t base_instructions = 0;
  std::uint64_t cand_instructions = 0;
  double base_ipc = 0.0;
  double cand_ipc = 0.0;
  double base_cache_miss_rate = 0.0;
  double cand_cache_miss_rate = 0.0;

  bool base_has_mem = false;
  bool cand_has_mem = false;
  std::uint64_t base_peak_rss_kb = 0;
  std::uint64_t cand_peak_rss_kb = 0;

  /// Wall-clock change in percent (positive = candidate slower).
  [[nodiscard]] double pct() const {
    return base_seconds == 0.0
               ? 0.0
               : 100.0 * (cand_seconds - base_seconds) / base_seconds;
  }

  /// Instructions-retired change in percent (positive = candidate
  /// executes more); meaningful only when both sides have counters.
  [[nodiscard]] double instructions_pct() const {
    return base_instructions == 0
               ? 0.0
               : 100.0 *
                     (static_cast<double>(cand_instructions) -
                      static_cast<double>(base_instructions)) /
                     static_cast<double>(base_instructions);
  }
};

/// One symbol from the union of both runs' hot-symbol tables. Shares are
/// self samples over the run's total samples — sampling rates or run
/// lengths need not match for the comparison to be meaningful.
struct HotSymbolDelta {
  std::string name;
  bool in_base = false;
  bool in_cand = false;
  std::uint64_t base_self = 0;
  std::uint64_t cand_self = 0;
  double base_share = 0.0;  ///< base_self / base total samples, in [0,1].
  double cand_share = 0.0;

  /// Share change in percentage points; positive = the symbol costs a
  /// larger fraction of the candidate run. This is the ranking key of
  /// the hot-symbol regression section: the symbols that grew the most
  /// are the ones explaining an instructions-gate breach.
  [[nodiscard]] double share_delta_pp() const {
    return 100.0 * (cand_share - base_share);
  }
};

struct RunComparison {
  std::vector<CounterDelta> counters;    ///< Union of names, sorted.
  std::vector<QuantileDelta> quantiles;  ///< Common histograms × {p50,p95,p99}.
  std::vector<BenchRunDelta> runs;       ///< Thread-count-matched rows.
  std::vector<PhaseDelta> phases;        ///< Name-matched phases in both runs.
  /// Counter availability echoed by each document ("available" /
  /// "unavailable" / "" for pre-counter documents) — lets the gate say
  /// *why* a side has no counter columns instead of silently noting.
  std::string base_perf_counters;
  std::string cand_perf_counters;

  /// Hot-symbol regression attribution, present when both documents
  /// carry a profile section; sorted by share_delta_pp descending (the
  /// biggest riser — the likeliest culprit — first).
  bool base_has_profile = false;
  bool cand_has_profile = false;
  std::uint64_t base_profile_samples = 0;
  std::uint64_t cand_profile_samples = 0;
  std::vector<HotSymbolDelta> hot_symbols;
};

[[nodiscard]] RunComparison compare_runs(const ReadManifest& base,
                                         const ReadManifest& cand);

/// CI gate over a comparison. A regression is a candidate that is slower
/// than baseline by more than `max_regress_pct` percent on a gated
/// quantity: per-thread-count wall-clock seconds (equivalently a
/// throughput drop), named phases present in both runs, and the p95/p99
/// of time-like histograms (names ending in `_ns` / `_ms`). A phase
/// present in only one run is noted, never gated — an old baseline simply
/// predates the measurement. Counter drift is reported in `notes` but
/// never fails the gate — a changed workload makes timing comparisons
/// meaningless, which is a different problem than a slow one.
///
/// Phases where both sides carry hardware counters additionally gate on
/// instructions retired at the much tighter `counter_max_regress_pct`:
/// instruction counts for a deterministic user-mode workload have no
/// scheduler-jitter floor, so a 3% growth is real work, not noise. When
/// only one side has counters (old baseline, or a host without a PMU —
/// the availability echo says which) instructions are noted, never
/// gated. IPC and cache-miss-rate shifts are diagnostic notes: they
/// attribute *why* a phase got slower (memory-bound vs compute-bound)
/// but are machine-dependent, so they never fail the gate.
struct DiffGateConfig {
  double max_regress_pct = 25.0;
  /// Gate threshold for per-phase instructions retired, in percent.
  double counter_max_regress_pct = 3.0;
  /// Histogram quantiles where both sides sit below this many nanoseconds
  /// are ignored: at single-digit-microsecond latencies, scheduler and
  /// timer jitter routinely exceeds any useful percentage threshold.
  double quantile_floor_ns = 10'000.0;
};

struct DiffGateResult {
  bool pass = true;
  std::vector<std::string> violations;  ///< Human-readable, one per breach.
  std::vector<std::string> notes;       ///< Non-gating observations.
};

[[nodiscard]] DiffGateResult evaluate_gate(const RunComparison& comparison,
                                           const DiffGateConfig& config);

// ---------------------------------------------------------------------------
// Folded-profile parsing and bundle validation.

/// A parsed profile.folded (flamegraph.pl collapsed format). Parsing is
/// also validation: `problems` collects format breaches (empty stacks,
/// empty frames, missing or non-positive counts) with 1-based line
/// numbers, so `mpinspect check` reports them directly.
struct FoldedProfile {
  std::uint64_t total = 0;  ///< Sum of all stack counts.
  std::vector<std::pair<std::string, std::uint64_t>> stacks;
  /// Aggregated per-symbol self/total, same semantics as the manifest
  /// table (self = leaf occurrences, total = once per stack weighted by
  /// count), sorted by self descending — lets `mpinspect hotspots` rank
  /// symbols from the folded file alone.
  std::vector<ReadHotSymbol> symbols;
  std::vector<std::string> problems;
  [[nodiscard]] bool ok() const { return problems.empty(); }
};

[[nodiscard]] FoldedProfile read_folded_profile(std::istream& in);
[[nodiscard]] FoldedProfile read_folded_profile_file(const std::string& path);

struct BundleCheckResult {
  bool ok = true;
  std::vector<std::string> problems;
  /// Counts for the human summary.
  std::size_t journal_lines = 0;
  std::size_t tasks = 0;
  std::size_t verdicts = 0;
  std::size_t attacks = 0;
  std::size_t quorums = 0;
  /// profile.folded accounting (0 / false when the bundle has none).
  bool has_profile = false;
  std::uint64_t profile_samples = 0;
  /// timeseries.ndjson accounting (0 / false when the bundle has none).
  bool has_timeseries = false;
  std::size_t timeseries_ticks = 0;

  void fail(std::string problem) {
    ok = false;
    problems.push_back(std::move(problem));
  }
};

/// Validate the trace bundle in `dir` (journal.ndjson required;
/// trace.json and metrics.prom checked when present):
///   - journal parses with schema 1 and no line errors;
///   - meta header counts match the actual record counts;
///   - timestamps are monotone within each lane (task start_ns per
///     worker, attack announce_us, quorum virtual_us);
///   - trace.json is well-formed JSON with a traceEvents array;
///   - metrics.prom counters agree with the journal (tasks, and when a
///     run manifest is supplied via `manifest_path`, its counters too);
///   - profile.folded, when present, parses cleanly (non-empty
///     `;`-separated stacks, positive counts) and its sample total
///     agrees with the manifest's "profile" section when one is
///     supplied;
///   - timeseries.ndjson, when present, parses with timeseries_schema 1,
///     has strictly increasing tick ids (a tampered or interleaved file
///     fails with its line number), and its last tick's embedded
///     campaign.tasks_executed agrees with the journal task spans and —
///     when a manifest is supplied — the manifest counter. A file with
///     no "final" tick is fine (a killed run keeps every completed
///     tick); counter agreement is still checked against its last one.
[[nodiscard]] BundleCheckResult check_trace_bundle(
    const std::string& dir, const std::string& manifest_path = {});

}  // namespace marcopolo::obs
