#include "obs/mem_stats.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

namespace marcopolo::obs {

std::optional<std::uint64_t> parse_proc_status_kb(
    std::string_view status_text, std::string_view key) {
  // Lines look like "VmRSS:      1234 kB". Match the key at line start
  // only, so e.g. "RssAnon" never matches a search for "Rss".
  std::size_t pos = 0;
  while (pos < status_text.size()) {
    std::size_t eol = status_text.find('\n', pos);
    if (eol == std::string_view::npos) eol = status_text.size();
    std::string_view line = status_text.substr(pos, eol - pos);
    if (line.size() > key.size() && line.substr(0, key.size()) == key &&
        line[key.size()] == ':') {
      std::string_view rest = line.substr(key.size() + 1);
      std::size_t i = 0;
      while (i < rest.size() && (rest[i] == ' ' || rest[i] == '\t')) ++i;
      std::uint64_t value = 0;
      bool any = false;
      while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(rest[i] - '0');
        any = true;
        ++i;
      }
      if (any) return value;
      return std::nullopt;
    }
    pos = eol + 1;
  }
  return std::nullopt;
}

MemorySample read_memory_sample() {
  MemorySample sample;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return sample;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  auto rss = parse_proc_status_kb(text, "VmRSS");
  auto hwm = parse_proc_status_kb(text, "VmHWM");
  if (!rss || !hwm) return sample;
  sample.rss_kb = *rss;
  sample.peak_rss_kb = *hwm;
  sample.valid = true;
  return sample;
}

#ifdef MARCOPOLO_COUNT_ALLOCS
namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};
}  // namespace

AllocStats alloc_stats() {
  AllocStats s;
  s.allocs = g_allocs.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  s.enabled = true;
  return s;
}
#else
AllocStats alloc_stats() { return AllocStats{}; }
#endif

}  // namespace marcopolo::obs

#ifdef MARCOPOLO_COUNT_ALLOCS
// Global replacements live in this TU so that linking marcopolo_obs (which
// every binary already does for alloc_stats) pulls them in. Tallies use
// relaxed atomics: counts must be cheap, not ordered.
void* operator new(std::size_t size) {
  marcopolo::obs::g_allocs.fetch_add(1, std::memory_order_relaxed);
  marcopolo::obs::g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept {
  if (p != nullptr)
    marcopolo::obs::g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
#endif
