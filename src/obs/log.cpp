#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

#include <algorithm>

namespace marcopolo::obs {

namespace {

/// Render the live line exactly as ProgressReporter historically did:
/// leading \r, left-justified and padded to blank a longer predecessor,
/// newline only on the final update. Caller holds the guard mutex.
void render_live(std::FILE* out, std::string_view line, int* last_len,
                 bool final) {
  const int len = static_cast<int>(line.size());
  const int width = std::max(len, *last_len);
  *last_len = final ? 0 : len;
  std::fprintf(out, "\r%-*.*s%s", width, len, line.data(), final ? "\n" : "");
  std::fflush(out);
}

}  // namespace

void LineGuard::live_line(std::string_view line, bool final) {
  std::scoped_lock lock(mutex_);
  render_live(out_, line, &last_len_, final);
  live_ = final ? std::string() : std::string(line);
}

void LineGuard::println(std::string_view text) {
  std::scoped_lock lock(mutex_);
  if (last_len_ > 0) {
    // Blank the live line so the log line starts at column 0 instead of
    // splicing mid-line, then return the cursor for the write below.
    std::fprintf(out_, "\r%-*s\r", last_len_, "");
    last_len_ = 0;
  }
  std::fprintf(out_, "%.*s\n", static_cast<int>(text.size()), text.data());
  if (!live_.empty()) render_live(out_, live_, &last_len_, /*final=*/false);
  std::fflush(out_);
}

void LineGuard::finish_live_line() {
  std::scoped_lock lock(mutex_);
  if (live_.empty()) {
    last_len_ = 0;
    return;
  }
  std::string line = std::move(live_);
  live_.clear();
  render_live(out_, line, &last_len_, /*final=*/true);
}

LineGuard& LineGuard::stderr_guard() {
  static LineGuard instance(stderr);
  return instance;
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_stderr_sink(LogLevel level, bool timestamps) {
  set_level(level);
  // Both sinks format the whole line into a buffer and hand it to the
  // shared stderr LineGuard, so log lines scroll cleanly above a live
  // ProgressReporter line instead of corrupting it.
  if (!timestamps) {
    set_sink([](LogLevel lvl, std::string_view message) {
      char buf[512];
      const int len =
          std::snprintf(buf, sizeof buf, "[%s] %.*s", to_cstring(lvl),
                        static_cast<int>(message.size()), message.data());
      if (len < 0) return;
      LineGuard::stderr_guard().println(
          std::string_view(buf, std::min<std::size_t>(
                                    static_cast<std::size_t>(len),
                                    sizeof buf - 1)));
    });
    return;
  }
  set_sink([](LogLevel lvl, std::string_view message) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm{};
#if defined(_WIN32)
    localtime_s(&tm, &secs);
#else
    localtime_r(&secs, &tm);
#endif
    char buf[512];
    const int len = std::snprintf(
        buf, sizeof buf, "%02d:%02d:%02d.%03d [%s] %.*s", tm.tm_hour,
        tm.tm_min, tm.tm_sec, static_cast<int>(ms), to_cstring(lvl),
        static_cast<int>(message.size()), message.data());
    if (len < 0) return;
    LineGuard::stderr_guard().println(
        std::string_view(buf, std::min<std::size_t>(
                                  static_cast<std::size_t>(len),
                                  sizeof buf - 1)));
  });
}

}  // namespace marcopolo::obs
