#include "obs/log.hpp"

#include <cstdio>

namespace marcopolo::obs {

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_stderr_sink(LogLevel level) {
  set_level(level);
  set_sink([](LogLevel lvl, std::string_view message) {
    std::fprintf(stderr, "[%s] %.*s\n", to_cstring(lvl),
                 static_cast<int>(message.size()), message.data());
  });
}

}  // namespace marcopolo::obs
