#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace marcopolo::obs {

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_stderr_sink(LogLevel level, bool timestamps) {
  set_level(level);
  if (!timestamps) {
    set_sink([](LogLevel lvl, std::string_view message) {
      std::fprintf(stderr, "[%s] %.*s\n", to_cstring(lvl),
                   static_cast<int>(message.size()), message.data());
    });
    return;
  }
  set_sink([](LogLevel lvl, std::string_view message) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm{};
#if defined(_WIN32)
    localtime_s(&tm, &secs);
#else
    localtime_r(&secs, &tm);
#endif
    std::fprintf(stderr, "%02d:%02d:%02d.%03d [%s] %.*s\n", tm.tm_hour,
                 tm.tm_min, tm.tm_sec, static_cast<int>(ms), to_cstring(lvl),
                 static_cast<int>(message.size()), message.data());
  });
}

}  // namespace marcopolo::obs
