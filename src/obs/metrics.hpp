// Sharded metrics: named counters and log-bucketed histograms whose hot
// path is a relaxed atomic add into a per-thread shard.
//
// Design (BIRD-style uniform counters, adapted for lock-free writers):
//   - A MetricsRegistry interns metric names to dense ids. Handles
//     (Counter, Histogram) are {registry, id} pairs, cheap to copy and
//     null-safe: a default-constructed handle drops every update, so
//     instrumented code needs no "is observability on?" branches beyond
//     the one inside the handle.
//   - Every writer thread gets its own shard per registry. An update
//     touches only the calling thread's shard — no lock, no shared cache
//     line — which is what keeps the parallel campaign's workers
//     independent and the ResultStore byte-identical across thread
//     counts with metrics on or off.
//   - snapshot() merges all shards under the registry mutex. Shards
//     outlive their threads (the registry owns them), so counts from
//     joined campaign workers are never lost.
//
// Totals are therefore exact and deterministic for deterministic
// workloads: the merge is a sum, and addition commutes across any
// worker-to-shard assignment.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace marcopolo::obs {

class MetricsRegistry;

/// Monotonic named counter handle. Null (default-constructed) handles
/// discard updates.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t delta = 1) const;
  explicit operator bool() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::size_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Log2-bucketed histogram handle over non-negative integer samples
/// (typically nanoseconds or sizes). Sample v lands in the bucket whose
/// upper bound is the smallest 2^k - 1 >= v; bucket boundaries are thus
/// {0, 1, 3, 7, 15, ...}. Null handles discard updates.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(v) in [0, 64]

  Histogram() = default;

  void observe(std::uint64_t value) const;
  explicit operator bool() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::size_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Merged view of one histogram.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< Meaningful only when count > 0.
  std::uint64_t max = 0;
  /// Non-empty buckets only, ascending: {inclusive upper bound, count}.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  /// Estimated q-quantile by linear interpolation inside the log2
  /// bucket holding the target rank: bucket with upper bound `le` covers
  /// (le >> 1, le]. Documented edge behavior (locked by tests, relied on
  /// by `mpinspect diff`): empty histogram -> 0; q outside [0, 1] is
  /// clamped (so q<=0 -> min, q>=1 -> max); NaN q -> 0; every estimate
  /// is clamped to the observed [min, max].
  [[nodiscard]] double quantile(double q) const;
};

/// Merged view of a whole registry, sorted by name (deterministic output
/// order for manifests and tests).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name; 0 if absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Histogram by name; nullptr if absent.
  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Intern `name` (idempotent) and return a live handle.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  /// Convenience for null-safe call sites: handles from a null registry
  /// pointer are null handles.
  [[nodiscard]] static Counter counter(MetricsRegistry* registry,
                                       std::string_view name) {
    return registry == nullptr ? Counter{} : registry->counter(name);
  }
  [[nodiscard]] static Histogram histogram(MetricsRegistry* registry,
                                           std::string_view name) {
    return registry == nullptr ? Histogram{} : registry->histogram(name);
  }

  /// Merge every shard (including those of joined threads) into one view.
  /// Safe to call while writer threads register metrics, spawn shards,
  /// and update concurrently (the telemetry hub scrapes mid-run on every
  /// tick): totals are sums of monotone per-shard values, so a live
  /// scrape is tick-consistent — it may lag in-flight updates but never
  /// loses or invents counts. Exact cross-metric consistency holds once
  /// writers have quiesced.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Process-wide default registry.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  friend class Counter;
  friend class Histogram;

  struct HistogramShard {
    std::array<std::atomic<std::uint64_t>, Histogram::kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };

  /// One writer thread's slice of every metric. Deques: growth when a new
  /// metric is interned never moves existing atomics, so the owning
  /// thread's lock-free updates stay valid across registration.
  struct Shard {
    std::mutex grow_mutex;  ///< Held to resize; update paths never take it.
    std::deque<std::atomic<std::uint64_t>> counters;
    std::deque<HistogramShard> histograms;
  };

  void counter_add(std::size_t id, std::uint64_t delta);
  void histogram_observe(std::size_t id, std::uint64_t value);
  [[nodiscard]] Shard& local_shard();

  const std::uint64_t uid_;  ///< Never-reused key for thread-local lookup.

  mutable std::shared_mutex names_mutex_;
  std::unordered_map<std::string, std::size_t> counter_ids_;
  std::vector<std::string> counter_names_;
  std::unordered_map<std::string, std::size_t> histogram_ids_;
  std::vector<std::string> histogram_names_;

  mutable std::mutex shards_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

inline void Counter::add(std::uint64_t delta) const {
  if (registry_ != nullptr) registry_->counter_add(id_, delta);
}

inline void Histogram::observe(std::uint64_t value) const {
  if (registry_ != nullptr) registry_->histogram_observe(id_, value);
}

}  // namespace marcopolo::obs
