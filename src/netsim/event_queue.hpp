// Discrete-event simulator core.
//
// A Simulator owns a priority queue of (time, sequence, callback) events and
// advances virtual time by draining them in order. Sequence numbers make
// same-timestamp ordering deterministic (FIFO), which keeps whole campaigns
// bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "netsim/time.hpp"

namespace marcopolo::netsim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Starts at kEpoch.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `when`. Scheduling in the past
  /// clamps to now() (the event runs next).
  void schedule_at(TimePoint when, Callback cb);

  /// Schedule `cb` after a relative delay from now().
  void schedule_after(Duration delay, Callback cb) {
    schedule_at(now_ + std::max(delay, Duration::zero()), std::move(cb));
  }

  /// Run events until the queue is empty. Returns the number processed.
  std::size_t run();

  /// Run events with timestamps <= deadline; virtual time ends at
  /// max(deadline, last event time processed). Returns events processed.
  std::size_t run_until(TimePoint deadline);

  /// Process at most one event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void dispatch(Event&& ev);

  TimePoint now_ = kEpoch;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace marcopolo::netsim
