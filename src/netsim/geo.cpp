#include "netsim/geo.hpp"

#include <cmath>

namespace marcopolo::netsim {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;
constexpr double kDegToRad = kPi / 180.0;

// Fiber routes are rarely geodesic; 1.4 is a common path-stretch estimate.
constexpr double kPathStretch = 1.4;
// Speed of light in fiber, km per millisecond.
constexpr double kFiberKmPerMs = 200.0;
}  // namespace

double great_circle_km(GeoPoint a, GeoPoint b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s = std::sin(dlat / 2.0);
  const double t = std::sin(dlon / 2.0);
  const double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

Duration propagation_latency(double distance_km) {
  const double ms = distance_km * kPathStretch / kFiberKmPerMs;
  const auto transit = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(ms));
  return transit + milliseconds(2);  // per-path processing overhead
}

}  // namespace marcopolo::netsim
