#include "netsim/dns.hpp"

namespace marcopolo::netsim {

void DnsTable::add(std::string name, Ipv4Addr addr) {
  exact_[std::move(name)] = addr;
}

void DnsTable::add_wildcard(std::string zone, Ipv4Addr addr) {
  wildcard_[std::move(zone)] = addr;
}

void DnsTable::remove(std::string_view name) {
  exact_.erase(std::string(name));
  wildcard_.erase(std::string(name));
}

std::optional<Ipv4Addr> DnsTable::resolve(std::string_view name) const {
  if (auto it = exact_.find(std::string(name)); it != exact_.end()) {
    return it->second;
  }
  // Strip leading labels one at a time and look for a wildcard zone.
  std::string_view rest = name;
  while (true) {
    const auto dot = rest.find('.');
    if (dot == std::string_view::npos) break;
    rest.remove_prefix(dot + 1);
    if (auto it = wildcard_.find(std::string(rest)); it != wildcard_.end()) {
      return it->second;
    }
  }
  return std::nullopt;
}

}  // namespace marcopolo::netsim
