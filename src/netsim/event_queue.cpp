#include "netsim/event_queue.hpp"

#include <utility>

namespace marcopolo::netsim {

void Simulator::schedule_at(TimePoint when, Callback cb) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(cb)});
}

void Simulator::dispatch(Event&& ev) {
  now_ = ev.when;
  ++processed_;
  // Move the callback out before invoking: the callback may schedule new
  // events, which can reallocate the queue's underlying storage.
  Callback cb = std::move(ev.cb);
  cb();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  dispatch(std::move(ev));
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (!step()) break;
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace marcopolo::netsim
