#include "netsim/ip.hpp"

#include <charconv>

namespace marcopolo::netsim {

namespace {

// Parse a decimal octet from the front of `text`, advancing it.
std::optional<std::uint8_t> take_octet(std::string_view& text) {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint8_t>(value);
}

bool take_char(std::string_view& text, char c) {
  if (text.empty() || text.front() != c) return false;
  text.remove_prefix(1);
  return true;
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint8_t octets[4];
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && !take_char(text, '.')) return std::nullopt;
    auto o = take_octet(text);
    if (!o) return std::nullopt;
    octets[i] = *o;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr(octets[0], octets[1], octets[2], octets[3]);
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xff);
  }
  return out;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Addr network, std::uint8_t length)
    : length_(length) {
  if (length > 32) {
    throw std::invalid_argument("prefix length > 32");
  }
  const std::uint32_t m =
      length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  network_ = Ipv4Addr(network.value() & m);
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  auto len_text = text.substr(slash + 1);
  unsigned len = 0;
  auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      len > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix(*addr, static_cast<std::uint8_t>(len));
}

std::uint32_t Ipv4Prefix::mask() const {
  return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
}

bool Ipv4Prefix::contains(Ipv4Addr addr) const {
  return (addr.value() & mask()) == network_.value();
}

bool Ipv4Prefix::covers(const Ipv4Prefix& other) const {
  return other.length_ >= length_ && contains(other.network_);
}

Ipv4Addr Ipv4Prefix::address_at(std::uint32_t k) const {
  if (std::uint64_t{k} >= size()) {
    throw std::out_of_range("address index outside prefix");
  }
  return Ipv4Addr(network_.value() + k);
}

std::pair<Ipv4Prefix, Ipv4Prefix> Ipv4Prefix::split() const {
  if (length_ >= 32) throw std::logic_error("cannot split a /32");
  const auto half_len = static_cast<std::uint8_t>(length_ + 1);
  const std::uint32_t upper_bit = std::uint32_t{1} << (32 - half_len);
  return {Ipv4Prefix(network_, half_len),
          Ipv4Prefix(Ipv4Addr(network_.value() | upper_bit), half_len)};
}

std::string Ipv4Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace marcopolo::netsim
