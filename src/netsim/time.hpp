// Virtual time for the discrete-event simulator.
//
// All MarcoPolo orchestration code is written against this clock rather than
// the wall clock, so the paper's 5-minute BGP propagation waits and per-prefix
// announcement rate limits cost nothing to simulate while still producing
// realistic experiment-duration figures for the cost model (Appendix D).
#pragma once

#include <chrono>
#include <cstdint>

namespace marcopolo::netsim {

/// Clock type for simulated time. Satisfies the C++ Clock requirements
/// except for now(), which lives on the Simulator (time only advances as
/// events are processed).
struct VirtualClock {
  using rep = std::int64_t;
  using period = std::nano;
  using duration = std::chrono::duration<rep, period>;
  using time_point = std::chrono::time_point<VirtualClock>;
  static constexpr bool is_steady = true;
};

using Duration = VirtualClock::duration;
using TimePoint = VirtualClock::time_point;

/// Simulation epoch (t = 0).
inline constexpr TimePoint kEpoch{};

using std::chrono::hours;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::minutes;
using std::chrono::seconds;

/// Convert a duration to fractional seconds (for reports).
constexpr double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Convert a duration to fractional hours (for the cost model).
constexpr double to_hours(Duration d) {
  return std::chrono::duration<double, std::ratio<3600>>(d).count();
}

}  // namespace marcopolo::netsim
