// Plain-text HTTP messages carried over the simulated network.
//
// DCV's HTTP-01 challenge is fetched over insecure HTTP (that is precisely
// why BGP hijacks work against it), so a tiny request/response model is all
// the stack needs.
#pragma once

#include <map>
#include <string>

#include "netsim/ip.hpp"

namespace marcopolo::netsim {

struct HttpRequest {
  std::string method = "GET";
  std::string host;  ///< Host header (the validated domain).
  std::string path;  ///< e.g. /.well-known/acme-challenge/<token>
  std::map<std::string, std::string> headers;
  std::string body;
  Ipv4Addr source;  ///< Source address observed by the server.
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;

  [[nodiscard]] bool ok() const { return status >= 200 && status < 300; }

  static HttpResponse not_found() { return HttpResponse{404, {}, ""}; }
  static HttpResponse text(std::string body_text) {
    return HttpResponse{200, {{"content-type", "text/plain"}},
                        std::move(body_text)};
  }
};

}  // namespace marcopolo::netsim
