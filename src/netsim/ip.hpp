// IPv4 address and prefix value types.
//
// These are the network-layer vocabulary for the whole stack: BGP
// announcements carry Ipv4Prefix, DCV requests target Ipv4Addr, and the
// forwarding plane resolves destinations by longest-prefix match.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace marcopolo::netsim {

/// An IPv4 address, stored host-order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// Parse dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 prefix in CIDR form. Always canonical: host bits are zero.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Construct, canonicalizing (masking off host bits). Throws
  /// std::invalid_argument if length > 32.
  Ipv4Prefix(Ipv4Addr network, std::uint8_t length);

  /// Parse "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Addr network() const { return network_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }

  /// Network mask for this prefix length.
  [[nodiscard]] std::uint32_t mask() const;

  /// True if `addr` falls within this prefix.
  [[nodiscard]] bool contains(Ipv4Addr addr) const;

  /// True if `other` is equal to or more specific than this prefix.
  [[nodiscard]] bool covers(const Ipv4Prefix& other) const;

  /// The k-th address inside the prefix (k=0 is the network address).
  /// Throws std::out_of_range if k exceeds the prefix size.
  [[nodiscard]] Ipv4Addr address_at(std::uint32_t k) const;

  /// Number of addresses in the prefix (2^(32-len)), as 64-bit.
  [[nodiscard]] std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// The two halves of this prefix as (len+1)-prefixes, e.g. for
  /// sub-prefix hijacks. Throws std::logic_error on a /32.
  [[nodiscard]] std::pair<Ipv4Prefix, Ipv4Prefix> split() const;

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4Addr network_{};
  std::uint8_t length_ = 0;
};

}  // namespace marcopolo::netsim

template <>
struct std::hash<marcopolo::netsim::Ipv4Addr> {
  std::size_t operator()(marcopolo::netsim::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<marcopolo::netsim::Ipv4Prefix> {
  std::size_t operator()(const marcopolo::netsim::Ipv4Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.network().value()} << 8) | p.length());
  }
};
