// Simulated network: endpoints, forwarding, latency and loss.
//
// The key departure from a conventional socket model is the ForwardingPlane:
// during a BGP hijack two endpoints legitimately claim the same destination
// address, and which one a packet reaches depends on the *source's* routing
// state. The plane is injected by the bgp/cloud layers per attack scenario.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/geo.hpp"
#include "netsim/http.hpp"
#include "netsim/ip.hpp"
#include "netsim/random.hpp"

namespace marcopolo::netsim {

/// Opaque handle to an attached endpoint.
struct EndpointId {
  std::uint32_t value = UINT32_MAX;
  [[nodiscard]] bool valid() const { return value != UINT32_MAX; }
  friend constexpr auto operator<=>(EndpointId, EndpointId) = default;
};

/// Decides, per source endpoint, which endpoint a destination address
/// reaches. Implemented by the BGP scenario layer; the default plane routes
/// by exact address ownership and is ambiguous under hijacks by design.
class ForwardingPlane {
 public:
  virtual ~ForwardingPlane() = default;

  /// Resolve a destination for a packet from `src` to `dst`.
  /// Returns an invalid EndpointId if the destination is unreachable.
  [[nodiscard]] virtual EndpointId resolve(EndpointId src,
                                           Ipv4Addr dst) const = 0;
};

/// Loss model for request/response exchanges; exercised by the
/// orchestrator's retry logic (paper step 5: "the attack is run again if any
/// perspective requests were not received").
struct LossModel {
  double request_loss = 0.0;   ///< P(request never arrives).
  double response_loss = 0.0;  ///< P(response never arrives).
};

class Network {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  using ResponseCallback =
      std::function<void(std::optional<HttpResponse>)>;

  Network(Simulator& sim, std::uint64_t loss_seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attach an endpoint at `addr` located at `where`. The handler runs when
  /// a request is delivered. Multiple endpoints may share an address (that
  /// is the hijack case); disambiguation is the forwarding plane's job.
  EndpointId attach(Ipv4Addr addr, GeoPoint where, Handler handler);

  /// Replace an endpoint's request handler.
  void set_handler(EndpointId ep, Handler handler);

  /// Install the active forwarding plane (non-owning; must outlive use).
  /// Passing nullptr restores address-ownership forwarding.
  void set_forwarding_plane(const ForwardingPlane* plane) { plane_ = plane; }

  void set_loss_model(LossModel model) { loss_ = model; }

  /// Send a request from `src` to address `dst`. The callback fires exactly
  /// once: with the response, or with nullopt on unreachable destination or
  /// simulated loss (after a timeout).
  void send(EndpointId src, Ipv4Addr dst, HttpRequest request,
            ResponseCallback on_response);

  [[nodiscard]] Ipv4Addr address_of(EndpointId ep) const;
  [[nodiscard]] GeoPoint location_of(EndpointId ep) const;
  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }

  /// Round-trip timeout before a lost exchange reports failure.
  void set_timeout(Duration timeout) { timeout_ = timeout; }

  Simulator& simulator() { return sim_; }

 private:
  struct Endpoint {
    Ipv4Addr addr;
    GeoPoint where;
    Handler handler;
  };

  [[nodiscard]] EndpointId default_resolve(Ipv4Addr dst) const;
  [[nodiscard]] const Endpoint& ep(EndpointId id) const;

  Simulator& sim_;
  Rng loss_rng_;
  LossModel loss_;
  Duration timeout_ = seconds(10);
  const ForwardingPlane* plane_ = nullptr;
  std::vector<Endpoint> endpoints_;
  std::unordered_map<Ipv4Addr, EndpointId> owners_;
};

}  // namespace marcopolo::netsim
