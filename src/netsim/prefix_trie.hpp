// Binary (radix-1) trie keyed by IPv4 prefixes with longest-prefix match.
//
// Used by the forwarding plane (route lookup under sub-prefix hijacks) and
// by the RPKI ROA registry (covering-ROA lookup).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "netsim/ip.hpp"

namespace marcopolo::netsim {

/// Map from Ipv4Prefix to T with exact lookup, longest-prefix match, and
/// enumeration of all entries covering a prefix or address.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Insert or overwrite the value at `prefix`. Returns true if inserted
  /// (false if it replaced an existing value).
  bool insert(const Ipv4Prefix& prefix, T value) {
    Node* node = descend_create(prefix);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Remove the value at `prefix` exactly. Returns true if something was
  /// removed. (Nodes are not pruned; fine for this workload.)
  bool erase(const Ipv4Prefix& prefix) {
    Node* node = descend_find(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* find(const Ipv4Prefix& prefix) const {
    const Node* node = descend_find(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value
                                                        : nullptr;
  }

  [[nodiscard]] T* find(const Ipv4Prefix& prefix) {
    return const_cast<T*>(std::as_const(*this).find(prefix));
  }

  /// Longest-prefix match for an address. Returns the matched prefix and a
  /// pointer to its value, or nullopt if nothing covers `addr`.
  struct Match {
    Ipv4Prefix prefix;
    const T* value;
  };
  [[nodiscard]] std::optional<Match> longest_match(Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::optional<Match> best;
    std::uint32_t bits = addr.value();
    std::uint8_t depth = 0;
    while (node != nullptr) {
      if (node->value.has_value()) {
        best = Match{make_prefix(addr, depth), &*node->value};
      }
      if (depth == 32) break;
      const unsigned bit = (bits >> (31 - depth)) & 1u;
      node = node->child[bit].get();
      ++depth;
    }
    return best;
  }

  /// Invoke `fn(prefix, value)` for every stored prefix that covers `addr`,
  /// from least to most specific.
  void for_each_covering(Ipv4Addr addr,
                         const std::function<void(const Ipv4Prefix&,
                                                  const T&)>& fn) const {
    const Node* node = root_.get();
    std::uint8_t depth = 0;
    while (node != nullptr) {
      if (node->value.has_value()) {
        fn(make_prefix(addr, depth), *node->value);
      }
      if (depth == 32) break;
      const unsigned bit = (addr.value() >> (31 - depth)) & 1u;
      node = node->child[bit].get();
      ++depth;
    }
  }

  /// Invoke `fn(prefix, value)` for every entry, in trie (prefix) order.
  void for_each(const std::function<void(const Ipv4Prefix&, const T&)>& fn)
      const {
    walk(root_.get(), 0, 0, fn);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::optional<T> value;
    std::array<std::unique_ptr<Node>, 2> child;
  };

  static Ipv4Prefix make_prefix(Ipv4Addr addr, std::uint8_t len) {
    return Ipv4Prefix(addr, len);
  }

  Node* descend_create(const Ipv4Prefix& prefix) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const unsigned bit = (prefix.network().value() >> (31 - depth)) & 1u;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  const Node* descend_find(const Ipv4Prefix& prefix) const {
    const Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length() && node != nullptr;
         ++depth) {
      const unsigned bit = (prefix.network().value() >> (31 - depth)) & 1u;
      node = node->child[bit].get();
    }
    return node;
  }

  Node* descend_find(const Ipv4Prefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).descend_find(prefix));
  }

  void walk(const Node* node, std::uint32_t bits, std::uint8_t depth,
            const std::function<void(const Ipv4Prefix&, const T&)>& fn) const {
    if (node == nullptr) return;
    if (node->value.has_value()) {
      fn(Ipv4Prefix(Ipv4Addr(bits), depth), *node->value);
    }
    if (depth == 32) return;
    walk(node->child[0].get(), bits, static_cast<std::uint8_t>(depth + 1), fn);
    walk(node->child[1].get(),
         bits | (std::uint32_t{1} << (31 - depth)),
         static_cast<std::uint8_t>(depth + 1), fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace marcopolo::netsim
