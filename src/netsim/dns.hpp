// Minimal DNS resolution for the simulated network.
//
// MarcoPolo's Certbot workaround (paper §4.2.2) uses randomized subdomains to
// defeat CA-side challenge caching; the table therefore supports wildcard
// entries so "<random>.victim.example" resolves to the victim address.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "netsim/ip.hpp"

namespace marcopolo::netsim {

class DnsTable {
 public:
  /// Map an exact fully-qualified name to an address (overwrites).
  void add(std::string name, Ipv4Addr addr);

  /// Map "*.zone" so that any single-or-multi-label subdomain of `zone`
  /// resolves to `addr` (exact entries take precedence).
  void add_wildcard(std::string zone, Ipv4Addr addr);

  void remove(std::string_view name);

  /// Resolve a name: exact match first, then the longest matching wildcard
  /// zone. Returns nullopt if no entry matches.
  [[nodiscard]] std::optional<Ipv4Addr> resolve(std::string_view name) const;

  [[nodiscard]] std::size_t size() const {
    return exact_.size() + wildcard_.size();
  }

 private:
  std::unordered_map<std::string, Ipv4Addr> exact_;
  std::unordered_map<std::string, Ipv4Addr> wildcard_;  // keyed by zone
};

}  // namespace marcopolo::netsim
