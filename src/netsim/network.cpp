#include "netsim/network.hpp"

#include <stdexcept>
#include <utility>

namespace marcopolo::netsim {

Network::Network(Simulator& sim, std::uint64_t loss_seed)
    : sim_(sim), loss_rng_(loss_seed) {}

EndpointId Network::attach(Ipv4Addr addr, GeoPoint where, Handler handler) {
  const EndpointId id{static_cast<std::uint32_t>(endpoints_.size())};
  endpoints_.push_back(Endpoint{addr, where, std::move(handler)});
  // First attacher owns the address for default (no-hijack) forwarding.
  owners_.emplace(addr, id);
  return id;
}

void Network::set_handler(EndpointId id, Handler handler) {
  endpoints_.at(id.value).handler = std::move(handler);
}

const Network::Endpoint& Network::ep(EndpointId id) const {
  return endpoints_.at(id.value);
}

Ipv4Addr Network::address_of(EndpointId id) const { return ep(id).addr; }
GeoPoint Network::location_of(EndpointId id) const { return ep(id).where; }

EndpointId Network::default_resolve(Ipv4Addr dst) const {
  const auto it = owners_.find(dst);
  return it == owners_.end() ? EndpointId{} : it->second;
}

void Network::send(EndpointId src, Ipv4Addr dst, HttpRequest request,
                   ResponseCallback on_response) {
  const EndpointId target =
      plane_ != nullptr ? plane_->resolve(src, dst) : default_resolve(dst);
  if (!target.valid()) {
    // Unreachable: report asynchronously to keep callback timing uniform.
    sim_.schedule_after(milliseconds(1),
                        [cb = std::move(on_response)] { cb(std::nullopt); });
    return;
  }

  const Duration one_way =
      latency_between(ep(src).where, ep(target).where);

  if (loss_rng_.chance(loss_.request_loss)) {
    sim_.schedule_after(timeout_,
                        [cb = std::move(on_response)] { cb(std::nullopt); });
    return;
  }

  request.source = ep(src).addr;
  const bool drop_response = loss_rng_.chance(loss_.response_loss);
  sim_.schedule_after(
      one_way,
      [this, target, one_way, drop_response, req = std::move(request),
       cb = std::move(on_response)]() mutable {
        // Handler may have been swapped since send(); look it up now.
        HttpResponse resp = endpoints_.at(target.value).handler(req);
        if (drop_response) {
          sim_.schedule_after(timeout_,
                              [cb = std::move(cb)] { cb(std::nullopt); });
          return;
        }
        sim_.schedule_after(one_way, [resp = std::move(resp),
                                      cb = std::move(cb)]() mutable {
          cb(std::move(resp));
        });
      });
}

}  // namespace marcopolo::netsim
