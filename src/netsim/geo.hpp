// Geographic coordinates and distance/latency estimation.
//
// Region placement (cloud datacenters, Vultr sites, synthetic ASes) is
// embedded on the globe; great-circle distance drives both the latency model
// and the hot-/cold-potato egress selection in the cloud routing models.
#pragma once

#include <compare>

#include "netsim/time.hpp"

namespace marcopolo::netsim {

/// A point on the globe in decimal degrees.
struct GeoPoint {
  double lat = 0.0;  ///< Latitude in [-90, 90].
  double lon = 0.0;  ///< Longitude in [-180, 180].

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance in kilometers (haversine formula).
double great_circle_km(GeoPoint a, GeoPoint b);

/// One-way propagation latency estimate for a path of the given
/// great-circle length: light in fiber (~2/3 c) over a route ~1.4x longer
/// than the geodesic, plus fixed per-hop processing overhead.
Duration propagation_latency(double distance_km);

/// Convenience: latency between two points.
inline Duration latency_between(GeoPoint a, GeoPoint b) {
  return propagation_latency(great_circle_km(a, b));
}

}  // namespace marcopolo::netsim
