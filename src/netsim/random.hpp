// Deterministic randomness utilities.
//
// Every random decision in MarcoPolo flows from an explicit 64-bit seed so
// that a campaign re-run with the same seeds reproduces the same tables
// (DESIGN.md §5.6). SplitMix64 is used both as a cheap seeded generator and
// as a stable hash for tie-break coins.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>

namespace marcopolo::netsim {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Used for seed derivation and stable per-entity hash coins.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit values into one well-mixed value (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (splitmix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) +
                         (a >> 2)));
}

/// Deterministic RNG with explicit seeding. Thin wrapper over mt19937_64
/// exposing only the operations the codebase needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed)
      : engine_(splitmix64(seed)), seed_base_(splitmix64(seed)) {}

  /// Derive an independent child generator; children with distinct tags are
  /// statistically independent of each other and of the parent.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    return Rng(hash_combine(seed_base_, tag));
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Throws std::invalid_argument for n == 0
  /// (n - 1 would underflow to a uniform draw over all of uint64).
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index over empty range");
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Uniform real in [0, 1).
  double real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return real() < p; }

  /// Raw 64-bit draw.
  std::uint64_t next() { return engine_(); }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

  /// Expose the engine for std distributions when needed.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_base_;
};

}  // namespace marcopolo::netsim
