// Cloud provider routing models.
//
// Each provider is one backbone AS attached to the Internet at a POP per
// region. Route *collection* happens in the shared BGP propagation engine;
// route *selection for a given VM* happens here and is where providers
// differ (paper §5.2):
//
//   Hot potato (AWS, Azure): each region picks, among the routes that
//   survive the global BGP attribute comparison, the one whose ingress POP
//   is nearest — traffic leaves the backbone as early as possible, so
//   perspectives in different regions diversify.
//
//   Cold potato (GCP Premium Tier): the backbone picks one best route per
//   backbone zone (continent); all perspectives in a zone move together,
//   which reduces the effective perspective diversity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/scenario.hpp"
#include "bgpd/speaker.hpp"
#include "obs/flight_recorder.hpp"
#include "topo/internet.hpp"
#include "topo/region_catalog.hpp"

namespace marcopolo::cloud {

/// Decision provenance of one perspective resolution: which rule of the
/// egress decision picked the winning origin, and whether the decision
/// was contested (both origins' routes survived ROV at the backbone).
/// `decided_by == RouteAge` on a contested verdict marks the outcome as
/// rerun-sensitive (paper §4.4.4).
struct ResolveExplanation {
  bgp::OriginReached outcome = bgp::OriginReached::None;
  bool contested = false;
  obs::VerdictStep decided_by = obs::VerdictStep::Unopposed;
};

enum class EgressPolicy : std::uint8_t { HotPotato, ColdPotato };

/// How finely a cold-potato backbone partitions its egress decision.
/// Continent = one best route per continent; SuperRegion = one per
/// Americas / EMEA / APAC (heavier centralization, the GCP default).
enum class ZoneGranularity : std::uint8_t { Continent, SuperRegion };

/// Zone id of a continent under a granularity (dense, starting at 0).
[[nodiscard]] std::uint8_t zone_of(topo::Continent c, ZoneGranularity g);

[[nodiscard]] constexpr const char* to_cstring(EgressPolicy p) {
  return p == EgressPolicy::HotPotato ? "hot-potato" : "cold-potato";
}

struct CloudConfig {
  topo::CloudProvider provider = topo::CloudProvider::Aws;
  bgp::Asn asn{16509};
  EgressPolicy policy = EgressPolicy::HotPotato;
  /// Tier-1 transit contracts; each attaches at the POP nearest the
  /// tier-1's home location.
  int transit_tier1_count = 3;
  /// Settlement-free peering sessions established at every POP with nearby
  /// tier-2 networks. More peering = more egress diversity.
  int peers_per_pop = 2;
  /// Egress-decision partitioning for cold-potato backbones.
  ZoneGranularity zones = ZoneGranularity::Continent;
  /// Cold potato only: if one origin's best ingress POP is closer to the
  /// zone centroid than the other's by more than this factor, geography
  /// decides the zone; otherwise the zone is contested and the route-age
  /// coin decides. 0 = always coin; 1 = always geography.
  double geo_margin = 0.55;
  std::uint64_t wiring_seed = 7;
};

/// Default configs matching the paper's three providers: AWS and Azure hot
/// potato (Azure with the densest peering), GCP Premium Tier cold potato.
[[nodiscard]] CloudConfig default_config(topo::CloudProvider provider);

class CloudProviderModel {
 public:
  /// Wires the backbone AS into `internet` (one POP per catalog region).
  CloudProviderModel(topo::Internet& internet, const CloudConfig& config);

  [[nodiscard]] topo::CloudProvider provider() const {
    return config_.provider;
  }
  [[nodiscard]] EgressPolicy policy() const { return config_.policy; }
  [[nodiscard]] bgp::NodeId backbone() const { return backbone_; }
  [[nodiscard]] std::span<const topo::RegionInfo> regions() const {
    return regions_;
  }
  [[nodiscard]] std::size_t perspective_count() const {
    return regions_.size();
  }

  /// Which origin traffic from the VM in region `perspective` reaches under
  /// the scenario, applying this provider's egress policy over the
  /// backbone's Adj-RIB-In (using the scenario's own tie-break comparator).
  /// Optional `roas`: if non-null the backbone drops RPKI-invalid
  /// candidates before selection (ROV at the cloud edge).
  [[nodiscard]] bgp::OriginReached resolve(
      std::size_t perspective, const bgp::HijackScenario& scenario,
      const bgp::RoaRegistry* roas = nullptr) const;

  /// resolve() plus decision provenance. Shares the selection code path
  /// with resolve(), so `resolve_explained(...).outcome` is always equal
  /// to `resolve(...)` for the same inputs (asserted by tests).
  [[nodiscard]] ResolveExplanation resolve_explained(
      std::size_t perspective, const bgp::HijackScenario& scenario,
      const bgp::RoaRegistry* roas = nullptr) const;

  /// Egress selection over an explicit candidate list (exposed for tests).
  [[nodiscard]] const bgp::RouteCandidate* select_egress(
      std::size_t perspective, std::span<const bgp::RouteCandidate> rib,
      const bgp::RouteComparator& cmp,
      const bgp::RoaRegistry* roas = nullptr) const;

  /// select_egress() that also reports provenance (`outcome` is left for
  /// the caller; `contested` and `decided_by` are filled). `why` may be
  /// null, in which case this is exactly select_egress().
  [[nodiscard]] const bgp::RouteCandidate* select_egress_explained(
      std::size_t perspective, std::span<const bgp::RouteCandidate> rib,
      const bgp::RouteComparator& cmp, const bgp::RoaRegistry* roas,
      ResolveExplanation* why) const;

  /// Live variant: resolve a perspective from the backbone's event-driven
  /// speaker state. Equal-attribute ties break toward the oldest route
  /// (real route age), matching the speaker's own decision process.
  /// `sub_prefix`: more-specific prefix to consult first (longest-prefix
  /// match), or nullopt.
  [[nodiscard]] bgp::OriginReached resolve_live(
      std::size_t perspective, const bgpd::BgpSpeaker& backbone_speaker,
      const netsim::Ipv4Prefix& prefix,
      const std::optional<netsim::Ipv4Prefix>& sub_prefix = std::nullopt,
      const bgp::RoaRegistry* roas = nullptr) const;

 private:
  CloudConfig config_;
  const bgp::AsGraph* graph_ = nullptr;  // set at wiring; outlives the model
  bgp::NodeId backbone_;
  std::span<const topo::RegionInfo> regions_;
  std::vector<netsim::GeoPoint> pop_location_;  // by PopId
  std::vector<std::uint8_t> pop_zone_;           // by PopId (zone id)
  std::vector<netsim::GeoPoint> zone_centroid_;  // by zone id
};

}  // namespace marcopolo::cloud
