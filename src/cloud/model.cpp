#include "cloud/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace marcopolo::cloud {

std::uint8_t zone_of(topo::Continent c, ZoneGranularity g) {
  if (g == ZoneGranularity::Continent) return static_cast<std::uint8_t>(c);
  switch (c) {
    case topo::Continent::NorthAmerica:
    case topo::Continent::SouthAmerica:
      return 0;  // Americas
    case topo::Continent::Europe:
    case topo::Continent::Africa:
      return 1;  // EMEA
    case topo::Continent::Asia:
    case topo::Continent::Oceania:
      return 2;  // APAC
  }
  return 0;
}

CloudConfig default_config(topo::CloudProvider provider) {
  CloudConfig cfg;
  cfg.provider = provider;
  switch (provider) {
    case topo::CloudProvider::Aws:
      cfg.asn = bgp::Asn{16509};
      cfg.policy = EgressPolicy::HotPotato;
      cfg.peers_per_pop = 2;
      cfg.wiring_seed = 0xA05;
      break;
    case topo::CloudProvider::Gcp:
      cfg.asn = bgp::Asn{15169};
      cfg.policy = EgressPolicy::ColdPotato;  // Premium Tier (paper §5.2)
      cfg.peers_per_pop = 2;
      cfg.wiring_seed = 0x6C9;
      break;
    case topo::CloudProvider::Azure:
      cfg.asn = bgp::Asn{8075};
      cfg.policy = EgressPolicy::HotPotato;
      cfg.peers_per_pop = 3;  // densest peering fabric of the three
      cfg.wiring_seed = 0xA72;
      break;
    case topo::CloudProvider::Vultr:
      throw std::invalid_argument("Vultr is the node pool, not a perspective host");
  }
  return cfg;
}

CloudProviderModel::CloudProviderModel(topo::Internet& internet,
                                       const CloudConfig& config)
    : config_(config), regions_(topo::regions_of(config.provider)) {
  if (regions_.empty()) {
    throw std::invalid_argument("provider has no catalog regions");
  }
  netsim::Rng rng(config.wiring_seed);

  // The backbone AS "lives" at its first region for metadata purposes.
  graph_ = &internet.graph();
  backbone_ = internet.add_leaf_as(config.asn, regions_.front().location,
                                   regions_.front().continent);

  pop_location_.reserve(regions_.size());
  pop_zone_.reserve(regions_.size());
  for (const topo::RegionInfo& r : regions_) {
    pop_location_.push_back(r.location);
    pop_zone_.push_back(zone_of(r.continent, config.zones));
  }

  // Backbone-zone centroids for cold-potato egress selection.
  zone_centroid_.assign(topo::kAllContinents.size(), netsim::GeoPoint{});
  std::vector<std::size_t> zone_pop_count(topo::kAllContinents.size(), 0);
  for (std::size_t pop = 0; pop < regions_.size(); ++pop) {
    const auto z = static_cast<std::size_t>(pop_zone_[pop]);
    zone_centroid_[z].lat += pop_location_[pop].lat;
    zone_centroid_[z].lon += pop_location_[pop].lon;
    ++zone_pop_count[z];
  }
  for (std::size_t z = 0; z < zone_centroid_.size(); ++z) {
    if (zone_pop_count[z] > 0) {
      zone_centroid_[z].lat /= static_cast<double>(zone_pop_count[z]);
      zone_centroid_[z].lon /= static_cast<double>(zone_pop_count[z]);
    }
  }

  auto& graph = internet.graph();

  // Peering: at every POP, sessions with the nearest regional tier-2s.
  for (std::size_t pop = 0; pop < regions_.size(); ++pop) {
    const auto near2 = internet.nearest_tier2(pop_location_[pop], 6);
    std::set<std::uint32_t> used;
    int added = 0;
    for (int attempt = 0;
         attempt < 18 && added < config.peers_per_pop && !near2.empty();
         ++attempt) {
      const bgp::NodeId peer = near2[rng.index(near2.size())];
      if (used.contains(peer.value)) continue;
      used.insert(peer.value);
      graph.add_peering(backbone_, peer,
                        bgp::PopId{static_cast<std::uint16_t>(pop)},
                        bgp::PopId{});
      ++added;
    }
  }

  // Transit: contracts with distinct tier-1s, attached at the POP nearest
  // each tier-1's home.
  std::set<std::uint32_t> transit_used;
  for (int t = 0; t < config.transit_tier1_count; ++t) {
    bgp::NodeId tier1{};
    for (int attempt = 0; attempt < 16; ++attempt) {
      const bgp::NodeId cand = internet.tier1_for(
          netsim::hash_combine(config.wiring_seed, static_cast<std::uint64_t>(
                                                       t * 16 + attempt)));
      if (!transit_used.contains(cand.value)) {
        tier1 = cand;
        break;
      }
    }
    if (!tier1.valid()) break;
    transit_used.insert(tier1.value);

    std::size_t best_pop = 0;
    double best_km = std::numeric_limits<double>::max();
    for (std::size_t pop = 0; pop < pop_location_.size(); ++pop) {
      const double km = netsim::great_circle_km(internet.location(tier1),
                                                pop_location_[pop]);
      if (km < best_km) {
        best_km = km;
        best_pop = pop;
      }
    }
    graph.add_provider_customer(tier1, backbone_, bgp::PopId{},
                                bgp::PopId{static_cast<std::uint16_t>(best_pop)});
  }
}

// The journal-facing VerdictStep mirrors bgp::DecisionStep value-for-value
// (obs sits below bgp in the library stack, so it keeps its own copy).
static_assert(static_cast<int>(obs::VerdictStep::LocalPref) ==
              static_cast<int>(bgp::DecisionStep::LocalPref));
static_assert(static_cast<int>(obs::VerdictStep::PathLength) ==
              static_cast<int>(bgp::DecisionStep::PathLength));
static_assert(static_cast<int>(obs::VerdictStep::RouteAge) ==
              static_cast<int>(bgp::DecisionStep::RouteAge));
static_assert(static_cast<int>(obs::VerdictStep::NeighborAsn) ==
              static_cast<int>(bgp::DecisionStep::NeighborAsn));
static_assert(static_cast<int>(obs::VerdictStep::IngressPop) ==
              static_cast<int>(bgp::DecisionStep::IngressPop));

const bgp::RouteCandidate* CloudProviderModel::select_egress(
    std::size_t perspective, std::span<const bgp::RouteCandidate> rib,
    const bgp::RouteComparator& cmp, const bgp::RoaRegistry* roas) const {
  return select_egress_explained(perspective, rib, cmp, roas, nullptr);
}

const bgp::RouteCandidate* CloudProviderModel::select_egress_explained(
    std::size_t perspective, std::span<const bgp::RouteCandidate> rib,
    const bgp::RouteComparator& cmp, const bgp::RoaRegistry* roas,
    ResolveExplanation* why) const {
  if (perspective >= regions_.size()) {
    throw std::out_of_range("perspective index");
  }

  // Drop RPKI-invalid candidates if the backbone enforces ROV.
  std::vector<const bgp::RouteCandidate*> valid;
  valid.reserve(rib.size());
  for (const bgp::RouteCandidate& c : rib) {
    if (roas != nullptr && !c.ann.as_path.empty() &&
        roas->validate(c.ann.prefix, c.ann.origin()) ==
            bgp::RpkiValidity::Invalid) {
      continue;
    }
    valid.push_back(&c);
  }
  if (why != nullptr) {
    why->contested = false;
    why->decided_by = obs::VerdictStep::Unopposed;
  }
  if (valid.empty()) return nullptr;

  // Global BGP attribute comparison: best (local preference, path length)
  // class. Everything in this class is "equally good" to BGP; the egress
  // policy breaks the remaining tie.
  bgp::RouteSource best_src = bgp::RouteSource::Provider;
  for (const auto* c : valid) best_src = std::min(best_src, c->source);
  std::size_t best_len = std::numeric_limits<std::size_t>::max();
  for (const auto* c : valid) {
    if (c->source == best_src) best_len = std::min(best_len, c->ann.path_length());
  }
  std::vector<const bgp::RouteCandidate*> cls;
  for (const auto* c : valid) {
    if (c->source == best_src && c->ann.path_length() == best_len) {
      cls.push_back(c);
    }
  }

  // Provenance: contested means both origins survived ROV; the deciding
  // step is the first attribute whose per-role bests differ, falling
  // through to the egress-policy stage when both roles make the class.
  bool class_contested = false;
  if (why != nullptr) {
    bool has_role[2] = {false, false};
    bgp::RouteSource role_src[2] = {bgp::RouteSource::Provider,
                                    bgp::RouteSource::Provider};
    std::size_t role_len[2] = {std::numeric_limits<std::size_t>::max(),
                               std::numeric_limits<std::size_t>::max()};
    for (const auto* c : valid) {
      const auto r = static_cast<std::size_t>(c->ann.role);
      has_role[r] = true;
      role_src[r] = std::min(role_src[r], c->source);
      if (c->source == best_src) {
        role_len[r] = std::min(role_len[r], c->ann.path_length());
      }
    }
    why->contested = has_role[0] && has_role[1];
    if (why->contested) {
      if (role_src[0] != role_src[1]) {
        why->decided_by = obs::VerdictStep::LocalPref;
      } else if (role_len[0] != role_len[1]) {
        why->decided_by = obs::VerdictStep::PathLength;
      } else {
        // Both roles are in the best-attribute class; the policy stage
        // below reports IngressPop vs RouteAge.
        class_contested = true;
      }
    }
  }

  const auto attribute_tiebreak = [&](const bgp::RouteCandidate* a,
                                      const bgp::RouteCandidate* b) {
    // Same localpref and length by construction; fall through to the
    // route-age preference, then deterministic identifiers.
    if (a->ann.role != b->ann.role) {
      return a->ann.role == cmp.preferred_role(backbone_);
    }
    if (a->from_asn != b->from_asn) return a->from_asn < b->from_asn;
    return a->ingress_pop < b->ingress_pop;
  };

  if (config_.policy == EgressPolicy::HotPotato) {
    // Prefer the candidate whose ingress POP is nearest this region's VM.
    const netsim::GeoPoint here = regions_[perspective].location;
    const bgp::RouteCandidate* best = nullptr;
    double best_km = std::numeric_limits<double>::max();
    double role_km[2] = {std::numeric_limits<double>::max(),
                         std::numeric_limits<double>::max()};
    for (const auto* c : cls) {
      const double km =
          c->ingress_pop.valid()
              ? netsim::great_circle_km(here,
                                        pop_location_[c->ingress_pop.value])
              : 20037.0;  // unknown POP: treat as antipodal
      auto& slot = role_km[static_cast<std::size_t>(c->ann.role)];
      slot = std::min(slot, km);
      if (best == nullptr || km < best_km - 1e-9 ||
          (std::abs(km - best_km) <= 1e-9 && attribute_tiebreak(c, best))) {
        best = c;
        best_km = km;
      }
    }
    if (class_contested) {
      // Geography decided iff one role's nearest ingress is strictly
      // closer; an exact distance tie falls to the route-age preference.
      why->decided_by = std::abs(role_km[0] - role_km[1]) > 1e-9
                            ? obs::VerdictStep::IngressPop
                            : obs::VerdictStep::RouteAge;
    }
    return best;
  }

  // Cold potato: one winner per backbone zone, shared by every VM in the
  // zone — this is what erases intra-zone perspective diversity (§5.2).
  // Among the equal-attribute class, the zone's border routers prefer the
  // origin whose ingress is decisively closer to the zone (the backbone
  // carries traffic to the egress nearest the destination); when both
  // origins' ingresses are comparably close the zone is contested and the
  // per-attack, per-zone route-age coin decides arrival order.
  const auto zone = static_cast<std::size_t>(
      zone_of(regions_[perspective].continent, config_.zones));
  const netsim::GeoPoint anchor = zone_centroid_[zone];

  double best_km[2] = {std::numeric_limits<double>::max(),
                       std::numeric_limits<double>::max()};
  for (const auto* c : cls) {
    const double km =
        c->ingress_pop.valid()
            ? netsim::great_circle_km(anchor,
                                      pop_location_[c->ingress_pop.value])
            : 20037.0;
    auto& slot = best_km[static_cast<std::size_t>(c->ann.role)];
    slot = std::min(slot, km);
  }
  const double victim_km = best_km[static_cast<std::size_t>(
      bgp::OriginRole::Victim)];
  const double adversary_km = best_km[static_cast<std::size_t>(
      bgp::OriginRole::Adversary)];

  bgp::OriginRole preferred;
  bool geo_decided = true;
  if (adversary_km < config_.geo_margin * victim_km) {
    preferred = bgp::OriginRole::Adversary;
  } else if (victim_km < config_.geo_margin * adversary_km) {
    preferred = bgp::OriginRole::Victim;
  } else {
    preferred = cmp.preferred_role(backbone_, zone);
    geo_decided = false;
  }
  if (class_contested) {
    why->decided_by = geo_decided ? obs::VerdictStep::IngressPop
                                  : obs::VerdictStep::RouteAge;
  }

  const auto zone_tiebreak = [&](const bgp::RouteCandidate* a,
                                 const bgp::RouteCandidate* b) {
    if (a->ann.role != b->ann.role) return a->ann.role == preferred;
    if (a->from_asn != b->from_asn) return a->from_asn < b->from_asn;
    return a->ingress_pop < b->ingress_pop;
  };
  const bgp::RouteCandidate* best = nullptr;
  for (const auto* c : cls) {
    if (best == nullptr || zone_tiebreak(c, best)) best = c;
  }
  return best;
}

namespace {

/// Convert a live speaker RIB snapshot into engine-style candidates,
/// resolving each entry's ingress POP from the backbone's link metadata.
std::vector<bgp::RouteCandidate> live_candidates(
    const bgp::AsGraph& graph, bgp::NodeId backbone,
    const std::vector<bgpd::RibInEntry>& rib) {
  std::vector<bgp::RouteCandidate> out;
  out.reserve(rib.size());
  for (const bgpd::RibInEntry& entry : rib) {
    bgp::PopId ingress{};
    for (const bgp::Neighbor& nb : graph.neighbors(backbone)) {
      if (nb.id == entry.from) {
        ingress = nb.local_pop;
        break;
      }
    }
    out.push_back(bgp::RouteCandidate{entry.route, entry.source, entry.from,
                                      entry.from_asn, ingress});
  }
  return out;
}

/// The role-age preference among a live RIB: the oldest entry within the
/// best (localpref, path length) class "arrived first".
bgp::TieBreakMode live_tie_mode(const std::vector<bgpd::RibInEntry>& rib) {
  const bgpd::RibInEntry* oldest = nullptr;
  bgp::RouteSource best_src = bgp::RouteSource::Provider;
  for (const auto& e : rib) best_src = std::min(best_src, e.source);
  std::size_t best_len = std::numeric_limits<std::size_t>::max();
  for (const auto& e : rib) {
    if (e.source == best_src) {
      best_len = std::min(best_len, e.route.path_length());
    }
  }
  for (const auto& e : rib) {
    if (e.source != best_src || e.route.path_length() != best_len) continue;
    if (oldest == nullptr || e.arrived < oldest->arrived) oldest = &e;
  }
  if (oldest == nullptr || oldest->route.role == bgp::OriginRole::Victim) {
    return bgp::TieBreakMode::VictimFirst;
  }
  return bgp::TieBreakMode::AdversaryFirst;
}

}  // namespace

bgp::OriginReached CloudProviderModel::resolve_live(
    std::size_t perspective, const bgpd::BgpSpeaker& backbone_speaker,
    const netsim::Ipv4Prefix& prefix,
    const std::optional<netsim::Ipv4Prefix>& sub_prefix,
    const bgp::RoaRegistry* roas) const {
  if (sub_prefix) {
    const auto sub_rib = backbone_speaker.rib_in(*sub_prefix);
    if (!sub_rib.empty()) {
      const auto cands =
          live_candidates(*graph_, backbone_, sub_rib);
      const bgp::RouteComparator cmp(live_tie_mode(sub_rib), 0);
      if (select_egress(perspective, cands, cmp, roas) != nullptr) {
        return bgp::OriginReached::Adversary;
      }
    }
  }
  const auto rib = backbone_speaker.rib_in(prefix);
  if (rib.empty()) return bgp::OriginReached::None;
  const auto cands = live_candidates(*graph_, backbone_, rib);
  const bgp::RouteComparator cmp(live_tie_mode(rib), 0);
  const bgp::RouteCandidate* chosen =
      select_egress(perspective, cands, cmp, roas);
  if (chosen == nullptr) return bgp::OriginReached::None;
  return chosen->ann.role == bgp::OriginRole::Victim
             ? bgp::OriginReached::Victim
             : bgp::OriginReached::Adversary;
}

bgp::OriginReached CloudProviderModel::resolve(
    std::size_t perspective, const bgp::HijackScenario& scenario,
    const bgp::RoaRegistry* roas) const {
  const bgp::RouteComparator& cmp = scenario.comparator();
  // A more-specific route, if the backbone heard one, wins longest-prefix
  // match for the target no matter which egress a covering route would use.
  if (const auto* sub = scenario.sub_prefix()) {
    const auto& sub_rib = sub->rib_in[backbone_.value];
    if (select_egress(perspective, sub_rib, cmp, roas) != nullptr) {
      return bgp::OriginReached::Adversary;
    }
  }
  const auto& rib = scenario.primary_rib(backbone_);
  const bgp::RouteCandidate* chosen = select_egress(perspective, rib, cmp, roas);
  if (chosen == nullptr) return bgp::OriginReached::None;
  return chosen->ann.role == bgp::OriginRole::Victim
             ? bgp::OriginReached::Victim
             : bgp::OriginReached::Adversary;
}

ResolveExplanation CloudProviderModel::resolve_explained(
    std::size_t perspective, const bgp::HijackScenario& scenario,
    const bgp::RoaRegistry* roas) const {
  const bgp::RouteComparator& cmp = scenario.comparator();
  ResolveExplanation why;
  if (const auto* sub = scenario.sub_prefix()) {
    const auto& sub_rib = sub->rib_in[backbone_.value];
    if (select_egress(perspective, sub_rib, cmp, roas) != nullptr) {
      why.outcome = bgp::OriginReached::Adversary;
      why.decided_by = obs::VerdictStep::MoreSpecific;
      return why;
    }
  }
  const auto& rib = scenario.primary_rib(backbone_);
  const bgp::RouteCandidate* chosen =
      select_egress_explained(perspective, rib, cmp, roas, &why);
  if (chosen == nullptr) {
    why.outcome = bgp::OriginReached::None;
    return why;
  }
  why.outcome = chosen->ann.role == bgp::OriginRole::Victim
                    ? bgp::OriginReached::Victim
                    : bgp::OriginReached::Adversary;
  return why;
}

}  // namespace marcopolo::cloud
