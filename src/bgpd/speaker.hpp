// An event-driven BGP speaker: one per AS.
//
// Unlike the analytic engine in bgp/propagation.*, which computes the
// Gao-Rexford fixed point directly, a speaker processes UPDATE messages as
// they arrive: per-neighbor Adj-RIB-In, best-path selection with *actual
// arrival times* as the route-age tie break, valley-free export policy,
// per-neighbor MRAI batching, and optional route-flap dampening
// (§4.2.1's operational concern).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/as_graph.hpp"
#include "bgp/decision.hpp"
#include "bgp/rpki.hpp"
#include "bgpd/message.hpp"
#include "netsim/time.hpp"

namespace marcopolo::bgpd {

struct SpeakerConfig {
  /// Minimum Route Advertisement Interval per neighbor; updates for a
  /// prefix within the window are batched into the latest state.
  netsim::Duration mrai = netsim::seconds(5);
  /// Route-flap dampening (RFC 2439 / RFC 7196 style, in flap units of
  /// 1000 router units). Dampening is per (prefix, neighbor session):
  /// each *withdrawal* of a route previously held from that neighbor
  /// accrues 1.0 penalty; at or above `rfd_suppress_threshold` the
  /// session's route is excluded from best-path selection until the
  /// penalty decays below `rfd_reuse`. Re-advertisements are free, as in
  /// common router defaults. 0 disables dampening.
  double rfd_suppress_threshold = 0.0;
  double rfd_reuse = 2.0;
  netsim::Duration rfd_half_life = netsim::minutes(15);
  /// Drop RPKI-invalid routes on ingress (ROV).
  const bgp::RoaRegistry* roas = nullptr;
  bool rov_enforcing = false;
};

/// A route held in the Adj-RIB-In, with its arrival time.
struct RibInEntry {
  bgp::Announcement route;
  bgp::RouteSource source = bgp::RouteSource::Provider;
  bgp::NodeId from;
  bgp::Asn from_asn;
  netsim::TimePoint arrived;
};

class BgpSpeaker {
 public:
  /// `send` delivers an UPDATE to a neighbor (the network layer adds
  /// latency); `now`/`schedule` come from the simulator.
  using SendFn =
      std::function<void(bgp::NodeId to, const UpdateMessage& msg)>;
  using ScheduleFn =
      std::function<void(netsim::Duration delay, std::function<void()>)>;
  using NowFn = std::function<netsim::TimePoint()>;

  BgpSpeaker(const bgp::AsGraph& graph, bgp::NodeId self, SpeakerConfig config,
             SendFn send, ScheduleFn schedule, NowFn now);

  /// Locally originate a route (path as in SeededRoute: excludes self for
  /// a normal origination; {victim_asn} for a forged-origin hijack).
  void originate(bgp::Announcement route);

  /// Withdraw a locally originated prefix.
  void withdraw_origination(const netsim::Ipv4Prefix& prefix);

  /// Process an UPDATE received from `from` at the current sim time.
  void receive(bgp::NodeId from, const UpdateMessage& msg);

  /// Current best route for a prefix (nullopt if none / suppressed).
  [[nodiscard]] std::optional<RibInEntry> best(
      const netsim::Ipv4Prefix& prefix) const;

  /// Snapshot of every non-dampened Adj-RIB-In entry for a prefix (used by
  /// the cloud egress models in live campaigns).
  [[nodiscard]] std::vector<RibInEntry> rib_in(
      const netsim::Ipv4Prefix& prefix) const;

  /// Role of the origin this speaker currently routes toward.
  [[nodiscard]] std::optional<bgp::OriginRole> role_reached(
      const netsim::Ipv4Prefix& prefix) const;

  /// Re-run best-path selection and exports for a prefix. Needed to lift
  /// an RFD suppression after its penalty has decayed: suppression state
  /// is re-evaluated lazily, on the next decision touching the prefix.
  void reevaluate(const netsim::Ipv4Prefix& prefix) {
    decide_and_export(prefix);
  }

  /// Flap penalty accrued for a prefix (max across sessions; diagnostic).
  [[nodiscard]] double flap_penalty(const netsim::Ipv4Prefix& prefix) const;
  /// True if any session's route for the prefix is currently dampened.
  [[nodiscard]] bool suppressed(const netsim::Ipv4Prefix& prefix) const;

  [[nodiscard]] std::size_t updates_sent() const { return updates_sent_; }
  [[nodiscard]] std::size_t updates_received() const {
    return updates_received_;
  }
  [[nodiscard]] bgp::NodeId id() const { return self_; }

 private:
  struct FlapState {
    double penalty = 0.0;
    netsim::TimePoint updated{};
    bool suppressed = false;
  };

  struct PrefixState {
    /// Adj-RIB-In keyed by neighbor node id (plus self origination under
    /// the speaker's own id).
    std::map<std::uint32_t, RibInEntry> rib_in;
    /// The route last advertised to neighbors (for withdraw decisions);
    /// nullopt if nothing advertised.
    std::optional<RibInEntry> advertised;
    /// Per-session dampening state, keyed like rib_in. Mutable because
    /// penalty decay is lazy bookkeeping performed on read.
    mutable std::map<std::uint32_t, FlapState> flaps;
  };

  struct NeighborState {
    bgp::Relationship rel = bgp::Relationship::Peer;
    /// MRAI: earliest time the next batch may be sent, and whether a send
    /// is already scheduled.
    netsim::TimePoint next_allowed{};
    bool flush_scheduled = false;
    /// Pending per-prefix state to transmit at the next flush.
    std::map<netsim::Ipv4Prefix, UpdateMessage> pending;
  };

  void decide_and_export(const netsim::Ipv4Prefix& prefix);
  void enqueue(bgp::NodeId neighbor, UpdateMessage msg);
  void flush(bgp::NodeId neighbor);
  [[nodiscard]] const RibInEntry* select_best(const PrefixState& state)
      const;
  [[nodiscard]] bool exportable(bgp::RouteSource source,
                                bgp::Relationship to) const;
  void decay(FlapState& flap) const;
  void register_flap(PrefixState& state, std::uint32_t session);
  [[nodiscard]] bool session_suppressed(const PrefixState& state,
                                        std::uint32_t session) const;

  const bgp::AsGraph& graph_;
  bgp::NodeId self_;
  bgp::Asn self_asn_;
  SpeakerConfig config_;
  SendFn send_;
  ScheduleFn schedule_;
  NowFn now_;

  std::map<netsim::Ipv4Prefix, PrefixState> prefixes_;
  std::unordered_map<std::uint32_t, NeighborState> neighbors_;
  std::size_t updates_sent_ = 0;
  std::size_t updates_received_ = 0;
};

}  // namespace marcopolo::bgpd
