// BGP UPDATE messages for the event-driven session layer.
#pragma once

#include <optional>

#include "bgp/announcement.hpp"

namespace marcopolo::bgpd {

/// A single-prefix UPDATE: either an advertisement carrying a route or a
/// withdrawal of a previously advertised route.
struct UpdateMessage {
  netsim::Ipv4Prefix prefix;
  /// Advertised route (path as sent, sender prepended); nullopt = withdraw.
  std::optional<bgp::Announcement> route;

  [[nodiscard]] bool is_withdraw() const { return !route.has_value(); }

  static UpdateMessage announce(bgp::Announcement ann) {
    UpdateMessage m;
    m.prefix = ann.prefix;
    m.route = std::move(ann);
    return m;
  }
  static UpdateMessage withdraw(netsim::Ipv4Prefix prefix) {
    UpdateMessage m;
    m.prefix = prefix;
    return m;
  }
};

}  // namespace marcopolo::bgpd
