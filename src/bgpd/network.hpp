// Event-driven BGP network: a speaker per AS, sessions with geographic
// propagation delays, and convergence measurement.
//
// This layer answers the operational questions the analytic engine cannot:
// how long announcements take to settle (§4.2.1's five-minute wait), how
// many UPDATE messages an attack generates, what route-flap dampening does
// to a flapping prefix, and what happens when victim and adversary
// announce *at actual different times* (§4.4.4) rather than under a
// modeled tie-break.
#pragma once

#include <memory>
#include <vector>

#include "bgpd/speaker.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/geo.hpp"
#include "netsim/random.hpp"

namespace marcopolo::bgpd {

struct BgpNetworkConfig {
  SpeakerConfig speaker;
  /// Session delay jitter: each link gets a deterministic extra delay in
  /// [0, jitter] derived from `jitter_seed`.
  netsim::Duration jitter = netsim::milliseconds(50);
  std::uint64_t jitter_seed = 0xD31A7;
};

class BgpNetwork {
 public:
  /// `locations` supplies per-node coordinates for link latency (indexed
  /// by NodeId). ROV enforcement is taken per-node from the graph.
  BgpNetwork(const bgp::AsGraph& graph,
             std::vector<netsim::GeoPoint> locations, netsim::Simulator& sim,
             const BgpNetworkConfig& config = {});

  BgpNetwork(const BgpNetwork&) = delete;
  BgpNetwork& operator=(const BgpNetwork&) = delete;

  /// Originate a route at a node at the current sim time.
  void announce(bgp::NodeId at, bgp::Announcement route);
  void withdraw(bgp::NodeId at, const netsim::Ipv4Prefix& prefix);

  [[nodiscard]] BgpSpeaker& speaker(bgp::NodeId n) {
    return *speakers_[n.value];
  }
  [[nodiscard]] const BgpSpeaker& speaker(bgp::NodeId n) const {
    return *speakers_[n.value];
  }

  /// Run the simulator until no BGP events remain; returns the virtual
  /// time the last event fired (convergence instant).
  netsim::TimePoint run_to_convergence();

  /// Role each node routes toward after convergence.
  [[nodiscard]] std::optional<bgp::OriginRole> role_reached(
      bgp::NodeId n, const netsim::Ipv4Prefix& prefix) const {
    return speaker(n).role_reached(prefix);
  }

  [[nodiscard]] std::size_t total_updates_sent() const;
  [[nodiscard]] netsim::Simulator& simulator() { return sim_; }

 private:
  [[nodiscard]] netsim::Duration link_delay(bgp::NodeId a, bgp::NodeId b) const;

  const bgp::AsGraph& graph_;
  std::vector<netsim::GeoPoint> locations_;
  netsim::Simulator& sim_;
  BgpNetworkConfig config_;
  std::vector<std::unique_ptr<BgpSpeaker>> speakers_;
};

}  // namespace marcopolo::bgpd
