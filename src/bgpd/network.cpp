#include "bgpd/network.hpp"

namespace marcopolo::bgpd {

BgpNetwork::BgpNetwork(const bgp::AsGraph& graph,
                       std::vector<netsim::GeoPoint> locations,
                       netsim::Simulator& sim, const BgpNetworkConfig& config)
    : graph_(graph),
      locations_(std::move(locations)),
      sim_(sim),
      config_(config) {
  if (locations_.size() < graph.size()) {
    locations_.resize(graph.size());
  }
  speakers_.reserve(graph.size());
  for (std::uint32_t i = 0; i < graph.size(); ++i) {
    const bgp::NodeId self{i};
    SpeakerConfig sc = config_.speaker;
    sc.rov_enforcing = graph.rov_enforcing(self);
    speakers_.push_back(std::make_unique<BgpSpeaker>(
        graph, self, sc,
        /*send=*/
        [this, self](bgp::NodeId to, const UpdateMessage& msg) {
          sim_.schedule_after(link_delay(self, to), [this, self, to, msg] {
            speakers_[to.value]->receive(self, msg);
          });
        },
        /*schedule=*/
        [this](netsim::Duration delay, std::function<void()> fn) {
          sim_.schedule_after(delay, std::move(fn));
        },
        /*now=*/[this] { return sim_.now(); }));
  }
}

netsim::Duration BgpNetwork::link_delay(bgp::NodeId a, bgp::NodeId b) const {
  const netsim::Duration base =
      netsim::latency_between(locations_[a.value], locations_[b.value]);
  // Deterministic per-directed-link jitter (session processing variance).
  const std::uint64_t h = netsim::hash_combine(
      config_.jitter_seed,
      (std::uint64_t{a.value} << 32) | b.value);
  const auto jitter_ns = static_cast<std::int64_t>(
      h % static_cast<std::uint64_t>(
              std::max<std::int64_t>(1, config_.jitter.count())));
  return base + netsim::Duration(jitter_ns);
}

void BgpNetwork::announce(bgp::NodeId at, bgp::Announcement route) {
  speakers_[at.value]->originate(std::move(route));
}

void BgpNetwork::withdraw(bgp::NodeId at, const netsim::Ipv4Prefix& prefix) {
  speakers_[at.value]->withdraw_origination(prefix);
}

netsim::TimePoint BgpNetwork::run_to_convergence() {
  sim_.run();
  return sim_.now();
}

std::size_t BgpNetwork::total_updates_sent() const {
  std::size_t total = 0;
  for (const auto& s : speakers_) total += s->updates_sent();
  return total;
}

}  // namespace marcopolo::bgpd
