#include "bgpd/speaker.hpp"

#include <algorithm>
#include <cmath>

namespace marcopolo::bgpd {

BgpSpeaker::BgpSpeaker(const bgp::AsGraph& graph, bgp::NodeId self,
                       SpeakerConfig config, SendFn send, ScheduleFn schedule,
                       NowFn now)
    : graph_(graph),
      self_(self),
      self_asn_(graph.asn_of(self)),
      config_(std::move(config)),
      send_(std::move(send)),
      schedule_(std::move(schedule)),
      now_(std::move(now)) {
  for (const bgp::Neighbor& nb : graph.neighbors(self)) {
    neighbors_[nb.id.value].rel = nb.rel;
  }
}

void BgpSpeaker::originate(bgp::Announcement route) {
  PrefixState& state = prefixes_[route.prefix];
  RibInEntry entry;
  entry.route = std::move(route);
  entry.source = bgp::RouteSource::Self;
  entry.from = self_;
  entry.from_asn = self_asn_;
  entry.arrived = now_();
  state.rib_in[self_.value] = std::move(entry);
  decide_and_export(state.rib_in[self_.value].route.prefix);
}

void BgpSpeaker::withdraw_origination(const netsim::Ipv4Prefix& prefix) {
  const auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return;
  it->second.rib_in.erase(self_.value);
  decide_and_export(prefix);
}

void BgpSpeaker::receive(bgp::NodeId from, const UpdateMessage& msg) {
  ++updates_received_;
  const auto nb = neighbors_.find(from.value);
  if (nb == neighbors_.end()) return;  // not a session we hold

  PrefixState& state = prefixes_[msg.prefix];

  if (msg.is_withdraw()) {
    if (state.rib_in.erase(from.value) > 0) {
      register_flap(state, from.value);
      decide_and_export(msg.prefix);
    }
    return;
  }

  const bgp::Announcement& route = *msg.route;
  // Loop prevention: reject paths containing our own ASN.
  if (route.path_contains(self_asn_)) return;
  // ROV on ingress.
  if (config_.rov_enforcing && config_.roas != nullptr &&
      config_.roas->validate(route.prefix, route.origin()) ==
          bgp::RpkiValidity::Invalid) {
    return;
  }

  RibInEntry entry;
  entry.route = route;
  // The neighbor's role maps onto the receiving side's route source.
  switch (nb->second.rel) {
    case bgp::Relationship::Customer:
      entry.source = bgp::RouteSource::Customer;
      break;
    case bgp::Relationship::Peer:
      entry.source = bgp::RouteSource::Peer;
      break;
    case bgp::Relationship::Provider:
      entry.source = bgp::RouteSource::Provider;
      break;
  }
  entry.from = from;
  entry.from_asn = graph_.asn_of(from);
  entry.arrived = now_();
  state.rib_in[from.value] = std::move(entry);
  decide_and_export(msg.prefix);
}

const RibInEntry* BgpSpeaker::select_best(const PrefixState& state)
    const {
  const RibInEntry* best = nullptr;
  for (const auto& [from, entry] : state.rib_in) {
    if (session_suppressed(state, from)) continue;
    if (best == nullptr) {
      best = &entry;
      continue;
    }
    // Decision process: localpref class, path length, ROUTE AGE (earlier
    // arrival wins — the real tie break the analytic engine models with
    // TieBreakMode), lowest neighbor ASN.
    if (entry.source != best->source) {
      if (entry.source < best->source) best = &entry;
      continue;
    }
    if (entry.route.path_length() != best->route.path_length()) {
      if (entry.route.path_length() < best->route.path_length()) {
        best = &entry;
      }
      continue;
    }
    if (entry.arrived != best->arrived) {
      if (entry.arrived < best->arrived) best = &entry;
      continue;
    }
    if (entry.from_asn < best->from_asn) best = &entry;
  }
  return best;
}

bool BgpSpeaker::exportable(bgp::RouteSource source,
                            bgp::Relationship to) const {
  // Valley-free: customer/self routes go everywhere; peer and provider
  // routes go to customers only.
  if (source == bgp::RouteSource::Self ||
      source == bgp::RouteSource::Customer) {
    return true;
  }
  return to == bgp::Relationship::Customer;
}

void BgpSpeaker::decide_and_export(const netsim::Ipv4Prefix& prefix) {
  PrefixState& state = prefixes_[prefix];
  const RibInEntry* best = select_best(state);

  // Nothing changed in what we would tell the world?
  const bool had = state.advertised.has_value();
  const bool changed =
      had != (best != nullptr) ||
      (best != nullptr && had &&
       (state.advertised->route.as_path != best->route.as_path ||
        state.advertised->source != best->source ||
        state.advertised->from != best->from));
  if (!changed) return;

  if (best == nullptr) {
    // Lost the route: withdraw from everyone we advertised to.
    for (auto& [id, nb] : neighbors_) {
      if (exportable(state.advertised->source, nb.rel)) {
        enqueue(bgp::NodeId{id}, UpdateMessage::withdraw(prefix));
      }
    }
    state.advertised.reset();
    return;
  }

  // Advertise the new best (prepending self), withdraw where it is no
  // longer exportable.
  bgp::Announcement exported = best->route;
  exported.as_path.insert(exported.as_path.begin(), self_asn_);
  for (auto& [id, nb] : neighbors_) {
    const bgp::NodeId neighbor{id};
    // Split horizon: never advertise a route back to its sender.
    const bool to_sender =
        best->source != bgp::RouteSource::Self && neighbor == best->from;
    const bool can_now = exportable(best->source, nb.rel) && !to_sender;
    const bool could_before =
        had && exportable(state.advertised->source, nb.rel) &&
        !(state.advertised->source != bgp::RouteSource::Self &&
          neighbor == state.advertised->from);
    if (can_now) {
      enqueue(neighbor, UpdateMessage::announce(exported));
    } else if (could_before) {
      enqueue(neighbor, UpdateMessage::withdraw(prefix));
    }
  }
  state.advertised = *best;
}

void BgpSpeaker::enqueue(bgp::NodeId neighbor, UpdateMessage msg) {
  NeighborState& nb = neighbors_.at(neighbor.value);
  nb.pending[msg.prefix] = std::move(msg);  // latest state wins (MRAI batch)
  if (nb.flush_scheduled) return;
  const netsim::TimePoint t = now_();
  if (nb.next_allowed <= t) {
    flush(neighbor);
    return;
  }
  nb.flush_scheduled = true;
  schedule_(nb.next_allowed - t, [this, neighbor] {
    neighbors_.at(neighbor.value).flush_scheduled = false;
    flush(neighbor);
  });
}

void BgpSpeaker::flush(bgp::NodeId neighbor) {
  NeighborState& nb = neighbors_.at(neighbor.value);
  if (nb.pending.empty()) return;
  for (auto& [prefix, msg] : nb.pending) {
    ++updates_sent_;
    send_(neighbor, msg);
  }
  nb.pending.clear();
  nb.next_allowed = now_() + config_.mrai;
}

void BgpSpeaker::decay(FlapState& flap) const {
  if (flap.penalty <= 0.0) return;
  const netsim::TimePoint t = now_();
  const double elapsed = netsim::to_seconds(t - flap.updated);
  const double half_life = netsim::to_seconds(config_.rfd_half_life);
  if (elapsed > 0.0 && half_life > 0.0) {
    flap.penalty *= std::pow(0.5, elapsed / half_life);
    flap.updated = t;
  }
  if (flap.suppressed && flap.penalty < config_.rfd_reuse) {
    flap.suppressed = false;
  }
}

bool BgpSpeaker::session_suppressed(const PrefixState& state,
                                    std::uint32_t session) const {
  if (config_.rfd_suppress_threshold <= 0.0) return false;
  const auto it = state.flaps.find(session);
  if (it == state.flaps.end()) return false;
  decay(it->second);
  return it->second.suppressed;
}

void BgpSpeaker::register_flap(PrefixState& state, std::uint32_t session) {
  if (config_.rfd_suppress_threshold <= 0.0) return;
  FlapState& flap = state.flaps[session];
  decay(flap);
  flap.penalty += 1.0;
  flap.updated = now_();
  if (flap.penalty >= config_.rfd_suppress_threshold) {
    flap.suppressed = true;
  }
}

std::optional<RibInEntry> BgpSpeaker::best(
    const netsim::Ipv4Prefix& prefix) const {
  const auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return std::nullopt;
  const RibInEntry* entry = select_best(it->second);
  if (entry == nullptr) return std::nullopt;
  return *entry;
}

std::vector<RibInEntry> BgpSpeaker::rib_in(
    const netsim::Ipv4Prefix& prefix) const {
  std::vector<RibInEntry> out;
  const auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return out;
  for (const auto& [from, entry] : it->second.rib_in) {
    if (session_suppressed(it->second, from)) continue;
    out.push_back(entry);
  }
  return out;
}

std::optional<bgp::OriginRole> BgpSpeaker::role_reached(
    const netsim::Ipv4Prefix& prefix) const {
  const auto entry = best(prefix);
  if (!entry) return std::nullopt;
  return entry->route.role;
}

double BgpSpeaker::flap_penalty(const netsim::Ipv4Prefix& prefix) const {
  const auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return 0.0;
  double max_penalty = 0.0;
  for (auto& [session, flap] : it->second.flaps) {
    decay(flap);
    max_penalty = std::max(max_penalty, flap.penalty);
  }
  return max_penalty;
}

bool BgpSpeaker::suppressed(const netsim::Ipv4Prefix& prefix) const {
  const auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return false;
  for (auto& [session, flap] : it->second.flaps) {
    decay(flap);
    if (flap.suppressed) return true;
  }
  return false;
}

}  // namespace marcopolo::bgpd
