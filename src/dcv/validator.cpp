#include "dcv/validator.hpp"

namespace marcopolo::dcv {

PerspectiveAgent::PerspectiveAgent(netsim::Network& net,
                                   const netsim::DnsTable& dns,
                                   netsim::Ipv4Addr addr,
                                   netsim::GeoPoint where, std::string name)
    : net_(net), dns_(dns), addr_(addr), name_(std::move(name)) {
  // Perspectives only originate requests; inbound traffic gets a 404.
  endpoint_ = net_.attach(addr, where, [](const netsim::HttpRequest&) {
    return netsim::HttpResponse::not_found();
  });
}

void PerspectiveAgent::validate_routed(
    netsim::Ipv4Addr ns_addr, const ValidationJob& job,
    std::function<void(DcvResult)> done) {
  netsim::HttpRequest query;
  query.method = "DNS";
  query.path = job.domain;
  net_.send(
      endpoint_, ns_addr, std::move(query),
      [this, job, done = std::move(done)](
          std::optional<netsim::HttpResponse> answer) mutable {
        if (!answer || !answer->ok()) {
          done(DcvResult{false, answer.has_value()});
          return;
        }
        const auto target = netsim::Ipv4Addr::parse(answer->body);
        if (!target) {
          done(DcvResult{false, true});
          return;
        }
        netsim::HttpRequest req;
        req.method = "GET";
        req.host = job.domain;
        req.path = job.path;
        net_.send(endpoint_, *target, std::move(req),
                  [expected = job.expected_body, done = std::move(done)](
                      std::optional<netsim::HttpResponse> resp) {
                    DcvResult result;
                    result.responded = resp.has_value();
                    result.success = resp.has_value() && resp->ok() &&
                                     resp->body == expected;
                    done(result);
                  });
      });
}

void PerspectiveAgent::validate(const ValidationJob& job,
                                std::function<void(DcvResult)> done) {
  const auto target = dns_.resolve(job.domain);
  if (!target) {
    net_.simulator().schedule_after(netsim::milliseconds(1),
                                    [done = std::move(done)] {
                                      done(DcvResult{false, false});
                                    });
    return;
  }
  netsim::HttpRequest req;
  req.method = "GET";
  req.host = job.domain;
  req.path = job.path;
  net_.send(endpoint_, *target, std::move(req),
            [expected = job.expected_body, done = std::move(done)](
                std::optional<netsim::HttpResponse> resp) {
              DcvResult result;
              result.responded = resp.has_value();
              result.success =
                  resp.has_value() && resp->ok() && resp->body == expected;
              done(result);
            });
}

}  // namespace marcopolo::dcv
