#include "dcv/webserver.hpp"

namespace marcopolo::dcv {

SimWebServer::SimWebServer(netsim::Network& net, netsim::Ipv4Addr addr,
                           netsim::GeoPoint where, std::string name)
    : net_(net), addr_(addr), name_(std::move(name)) {
  endpoint_ = net_.attach(addr, where, [this](const netsim::HttpRequest& req) {
    return handle(req);
  });
}

void SimWebServer::serve(std::string path, std::string body) {
  local_paths_[std::move(path)] = std::move(body);
}

void SimWebServer::stop_serving(const std::string& path) {
  local_paths_.erase(path);
}

netsim::HttpResponse SimWebServer::handle(const netsim::HttpRequest& req) {
  requests_.push_back(
      RequestRecord{net_.simulator().now(), req.source, req.host, req.path});
  if (const auto it = local_paths_.find(req.path); it != local_paths_.end()) {
    return netsim::HttpResponse::text(it->second);
  }
  if (fallback_ != nullptr) {
    if (auto body = fallback_->get(req.path)) {
      return netsim::HttpResponse::text(std::move(*body));
    }
  }
  return netsim::HttpResponse::not_found();
}

}  // namespace marcopolo::dcv
