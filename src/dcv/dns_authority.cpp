#include "dcv/dns_authority.hpp"

namespace marcopolo::dcv {

DnsAuthority::DnsAuthority(netsim::Network& net, netsim::Ipv4Addr addr,
                           netsim::GeoPoint where, std::string name)
    : net_(net), addr_(addr), name_(std::move(name)) {
  endpoint_ = net_.attach(addr, where, [this](const netsim::HttpRequest& req) {
    return handle(req);
  });
}

void DnsAuthority::add_record(std::string fqdn, netsim::Ipv4Addr a) {
  records_.add(std::move(fqdn), a);
}

void DnsAuthority::add_wildcard(std::string zone, netsim::Ipv4Addr a) {
  records_.add_wildcard(std::move(zone), a);
}

netsim::HttpResponse DnsAuthority::handle(const netsim::HttpRequest& req) {
  queries_.push_back(
      DnsQueryRecord{net_.simulator().now(), req.source, req.path});
  if (req.method != "DNS") {
    return netsim::HttpResponse{400, {}, "expected a DNS query"};
  }
  const auto answer = records_.resolve(req.path);
  if (!answer) return netsim::HttpResponse{404, {}, "NXDOMAIN"};
  return netsim::HttpResponse::text(answer->to_string());
}

}  // namespace marcopolo::dcv
