// Authoritative nameserver endpoint: the routed half of DCV resolution.
//
// A static DnsTable models DNS that cannot be attacked. This class instead
// serves A records over the simulated network, so the resolution path
// itself is subject to hijacks: if the nameserver's prefix is captured,
// the adversary's authority answers the perspective's query with the
// adversary's web server address and wins validation no matter how the web
// prefix routes (the §6 DNS attack surface, at protocol level).
//
// Queries ride the HTTP message type with method "DNS" and the queried
// name as the path; the response body is the dotted-quad answer.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/dns.hpp"
#include "netsim/network.hpp"

namespace marcopolo::dcv {

struct DnsQueryRecord {
  netsim::TimePoint at;
  netsim::Ipv4Addr source;
  std::string name;
};

class DnsAuthority {
 public:
  DnsAuthority(netsim::Network& net, netsim::Ipv4Addr addr,
               netsim::GeoPoint where, std::string name);

  DnsAuthority(const DnsAuthority&) = delete;
  DnsAuthority& operator=(const DnsAuthority&) = delete;

  /// Answer `fqdn` with `a`.
  void add_record(std::string fqdn, netsim::Ipv4Addr a);
  /// Answer any subdomain of `zone` with `a` (exact records win).
  void add_wildcard(std::string zone, netsim::Ipv4Addr a);

  [[nodiscard]] netsim::EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] netsim::Ipv4Addr address() const { return addr_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<DnsQueryRecord>& queries() const {
    return queries_;
  }
  void clear_queries() { queries_.clear(); }

 private:
  netsim::HttpResponse handle(const netsim::HttpRequest& req);

  netsim::Network& net_;
  netsim::Ipv4Addr addr_;
  std::string name_;
  netsim::EndpointId endpoint_;
  netsim::DnsTable records_;
  std::vector<DnsQueryRecord> queries_;
};

}  // namespace marcopolo::dcv
