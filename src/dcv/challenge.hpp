// HTTP-01 domain-control-validation challenges.
//
// A CA proves domain control by fetching
//   http://<domain>/.well-known/acme-challenge/<token>
// and checking the response is the token's key authorization. The fetch is
// plain HTTP — which is exactly why BGP hijacks can defeat it (paper §1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "netsim/random.hpp"

namespace marcopolo::dcv {

inline constexpr std::string_view kChallengePathPrefix =
    "/.well-known/acme-challenge/";

struct Http01Challenge {
  std::string domain;
  std::string token;
  std::string key_authorization;

  [[nodiscard]] std::string url_path() const {
    return std::string(kChallengePathPrefix) + token;
  }
};

/// Generates unpredictable tokens/authorizations from a seeded stream.
class ChallengeIssuer {
 public:
  explicit ChallengeIssuer(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] Http01Challenge issue(std::string domain);

  /// Random lowercase-hex label, e.g. for randomized subdomains
  /// (the paper's workaround for CA challenge caching, §4.2.2).
  [[nodiscard]] std::string random_label(std::size_t chars = 12);

 private:
  netsim::Rng rng_;
};

}  // namespace marcopolo::dcv
