#include "dcv/challenge.hpp"

namespace marcopolo::dcv {

std::string ChallengeIssuer::random_label(std::size_t chars) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(chars);
  for (std::size_t i = 0; i < chars; ++i) {
    out.push_back(kHex[rng_.index(16)]);
  }
  return out;
}

Http01Challenge ChallengeIssuer::issue(std::string domain) {
  Http01Challenge ch;
  ch.domain = std::move(domain);
  ch.token = random_label(32);
  ch.key_authorization = ch.token + "." + random_label(16);
  return ch;
}

}  // namespace marcopolo::dcv
