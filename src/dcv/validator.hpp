// Perspective validation agent: performs one HTTP-01 check from one
// network vantage point.
//
// Mirrors the paper's per-perspective Flask worker (§4.3): resolve the
// domain, fetch the challenge URL from this perspective's network location,
// and report success/failure to whoever aggregates (REST MPIC service or
// ACME CA).
#pragma once

#include <functional>
#include <string>

#include "netsim/dns.hpp"
#include "netsim/network.hpp"

namespace marcopolo::dcv {

struct ValidationJob {
  std::string domain;         ///< Name to resolve and put in Host:.
  std::string path;           ///< Challenge URL path.
  std::string expected_body;  ///< Key authorization that must come back.
};

struct DcvResult {
  bool success = false;    ///< Body matched the key authorization.
  bool responded = false;  ///< Any HTTP response at all (vs loss/unreachable).
};

class PerspectiveAgent {
 public:
  PerspectiveAgent(netsim::Network& net, const netsim::DnsTable& dns,
                   netsim::Ipv4Addr addr, netsim::GeoPoint where,
                   std::string name);

  PerspectiveAgent(const PerspectiveAgent&) = delete;
  PerspectiveAgent& operator=(const PerspectiveAgent&) = delete;

  /// Run the check against the static table; `done` fires exactly once.
  void validate(const ValidationJob& job,
                std::function<void(DcvResult)> done);

  /// Routed variant: resolve the domain by querying the authoritative
  /// nameserver at `ns_addr` over the (hijackable) network, then fetch the
  /// challenge from whatever address the answering authority returned.
  /// This is the DNS attack surface at protocol level: a captured
  /// nameserver steers the whole validation.
  void validate_routed(netsim::Ipv4Addr ns_addr, const ValidationJob& job,
                       std::function<void(DcvResult)> done);

  [[nodiscard]] netsim::EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] netsim::Ipv4Addr address() const { return addr_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  netsim::Network& net_;
  const netsim::DnsTable& dns_;
  netsim::Ipv4Addr addr_;
  std::string name_;
  netsim::EndpointId endpoint_;
};

}  // namespace marcopolo::dcv
