// Simulated web server: serves challenge tokens and logs request sources.
//
// Victim and adversary nodes each run one of these. The request log — which
// perspective source addresses hit which node — is MarcoPolo's raw
// measurement (paper §4.1 step 5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dcv/token_store.hpp"
#include "netsim/network.hpp"

namespace marcopolo::dcv {

struct RequestRecord {
  netsim::TimePoint at;
  netsim::Ipv4Addr source;
  std::string host;
  std::string path;
};

class SimWebServer {
 public:
  /// Attach a server at `addr` / `where` on the network.
  SimWebServer(netsim::Network& net, netsim::Ipv4Addr addr,
               netsim::GeoPoint where, std::string name);

  SimWebServer(const SimWebServer&) = delete;
  SimWebServer& operator=(const SimWebServer&) = delete;

  [[nodiscard]] netsim::EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] netsim::Ipv4Addr address() const { return addr_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Serve `body` at `path` locally (exact match).
  void serve(std::string path, std::string body);
  void stop_serving(const std::string& path);

  /// Requests for unknown paths consult this store — the central-server
  /// forwarding trick that lets both attack endpoints pass pre-flight.
  void set_fallback(std::shared_ptr<const TokenStore> store) {
    fallback_ = std::move(store);
  }

  [[nodiscard]] const std::vector<RequestRecord>& requests() const {
    return requests_;
  }
  void clear_requests() { requests_.clear(); }

 private:
  netsim::HttpResponse handle(const netsim::HttpRequest& req);

  netsim::Network& net_;
  netsim::Ipv4Addr addr_;
  std::string name_;
  netsim::EndpointId endpoint_;
  std::unordered_map<std::string, std::string> local_paths_;
  std::shared_ptr<const TokenStore> fallback_;
  std::vector<RequestRecord> requests_;
};

}  // namespace marcopolo::dcv
