// Shared challenge-token store (the "central server" of paper §4.2.2).
//
// During a MarcoPolo attack the CA's pre-flight may route to either the
// victim or the adversary node; both must answer the challenge correctly
// for the experiment to proceed. The paper forwards unknown requests to the
// central server where the ACME client serves the token; we model that
// forwarding as a lookup in this shared store (the extra forwarding RTT is
// negligible at the fidelity of five-minute propagation waits).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

namespace marcopolo::dcv {

class TokenStore {
 public:
  /// Publish the body to serve at `path`.
  void put(std::string path, std::string body) {
    tokens_[std::move(path)] = std::move(body);
  }

  void remove(const std::string& path) { tokens_.erase(path); }
  void clear() { tokens_.clear(); }

  [[nodiscard]] std::optional<std::string> get(const std::string& path) const {
    const auto it = tokens_.find(path);
    if (it == tokens_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<std::string, std::string> tokens_;
};

}  // namespace marcopolo::dcv
