// The victim/adversary node pool: BGP-speaking sites wired as leaf ASes.
//
// Paper §4.4.2: Vultr locations sit in different tier-1 cones (e.g. Tokyo
// under NTT, Bangalore under Tata) with different transit mixes. Each site
// is modeled as its own leaf AS with a deterministic-but-distinct tier-1
// plus nearby regional tier-2 transit. The same builder wires any catalog
// of BGP-capable sites — e.g. the PEERING testbed muxes the paper proposes
// as a Vultr superset.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "topo/internet.hpp"
#include "topo/region_catalog.hpp"

namespace marcopolo::topo {

struct Site {
  std::string_view name;
  bgp::NodeId node;
  Rir rir;
  Continent continent;
  netsim::GeoPoint location;
};
using VultrSite = Site;

/// Wire every site of `catalog` into the Internet as a leaf AS with one
/// deterministic tier-1 uplink and two nearby tier-2 uplinks. ASNs are
/// assigned sequentially from `asn_base`.
[[nodiscard]] std::vector<Site> build_sites(Internet& internet,
                                            std::span<const RegionInfo>
                                                catalog,
                                            std::uint64_t seed,
                                            std::uint32_t asn_base = 64512);

/// The paper's pool: every catalog Vultr site, ASNs 64512+.
[[nodiscard]] std::vector<Site> build_vultr_sites(Internet& internet,
                                                  std::uint64_t seed);

}  // namespace marcopolo::topo
