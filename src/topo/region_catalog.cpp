#include "topo/region_catalog.hpp"

#include <algorithm>
#include <array>

namespace marcopolo::topo {

namespace {

using enum Rir;
using enum Continent;

constexpr CloudProvider kAws = CloudProvider::Aws;
constexpr CloudProvider kGcp = CloudProvider::Gcp;
constexpr CloudProvider kAzure = CloudProvider::Azure;
constexpr CloudProvider kVultr = CloudProvider::Vultr;
constexpr CloudProvider kPeering = CloudProvider::Peering;

constexpr std::array<RegionInfo, 27> kAwsRegions = {{
    {"af-south-1", kAws, {-33.92, 18.42}, Afrinic, Africa},
    {"ap-east-1", kAws, {22.30, 114.20}, Apnic, Asia},
    {"ap-northeast-1", kAws, {35.68, 139.69}, Apnic, Asia},
    {"ap-northeast-2", kAws, {37.57, 126.98}, Apnic, Asia},
    {"ap-northeast-3", kAws, {34.69, 135.50}, Apnic, Asia},
    {"ap-south-1", kAws, {19.08, 72.88}, Apnic, Asia},
    {"ap-south-2", kAws, {17.38, 78.48}, Apnic, Asia},
    {"ap-southeast-1", kAws, {1.35, 103.82}, Apnic, Asia},
    {"ap-southeast-2", kAws, {-33.87, 151.21}, Apnic, Oceania},
    {"ap-southeast-3", kAws, {-6.21, 106.85}, Apnic, Asia},
    {"ap-southeast-4", kAws, {-37.81, 144.96}, Apnic, Oceania},
    {"ca-central-1", kAws, {45.50, -73.57}, Arin, NorthAmerica},
    {"ca-west-1", kAws, {51.05, -114.07}, Arin, NorthAmerica},
    {"eu-central-1", kAws, {50.11, 8.68}, Ripe, Europe},
    {"eu-central-2", kAws, {47.37, 8.54}, Ripe, Europe},
    {"eu-north-1", kAws, {59.33, 18.07}, Ripe, Europe},
    {"eu-south-2", kAws, {41.65, -0.88}, Ripe, Europe},
    {"eu-west-1", kAws, {53.35, -6.26}, Ripe, Europe},
    {"eu-west-2", kAws, {51.51, -0.13}, Ripe, Europe},
    {"eu-west-3", kAws, {48.86, 2.35}, Ripe, Europe},
    {"il-central-1", kAws, {32.08, 34.78}, Ripe, Europe},
    {"me-central-1", kAws, {25.20, 55.27}, Ripe, Asia},
    {"sa-east-1", kAws, {-23.55, -46.63}, Lacnic, SouthAmerica},
    {"us-east-1", kAws, {38.95, -77.45}, Arin, NorthAmerica},
    {"us-east-2", kAws, {40.00, -83.00}, Arin, NorthAmerica},
    {"us-west-1", kAws, {37.35, -121.95}, Arin, NorthAmerica},
    {"us-west-2", kAws, {45.60, -122.70}, Arin, NorthAmerica},
}};

constexpr std::array<RegionInfo, 40> kGcpRegions = {{
    {"africa-south1", kGcp, {-26.20, 28.05}, Afrinic, Africa},
    {"asia-east1", kGcp, {24.05, 120.52}, Apnic, Asia},
    {"asia-east2", kGcp, {22.30, 114.20}, Apnic, Asia},
    {"asia-northeast1", kGcp, {35.68, 139.69}, Apnic, Asia},
    {"asia-northeast2", kGcp, {34.69, 135.50}, Apnic, Asia},
    {"asia-northeast3", kGcp, {37.57, 126.98}, Apnic, Asia},
    {"asia-south1", kGcp, {19.08, 72.88}, Apnic, Asia},
    {"asia-south2", kGcp, {28.61, 77.21}, Apnic, Asia},
    {"asia-southeast1", kGcp, {1.35, 103.82}, Apnic, Asia},
    {"asia-southeast2", kGcp, {-6.21, 106.85}, Apnic, Asia},
    {"australia-southeast1", kGcp, {-33.87, 151.21}, Apnic, Oceania},
    {"australia-southeast2", kGcp, {-37.81, 144.96}, Apnic, Oceania},
    {"europe-central2", kGcp, {52.23, 21.01}, Ripe, Europe},
    {"europe-north1", kGcp, {60.57, 27.19}, Ripe, Europe},
    {"europe-southwest1", kGcp, {40.42, -3.70}, Ripe, Europe},
    {"europe-west1", kGcp, {50.45, 3.82}, Ripe, Europe},
    {"europe-west10", kGcp, {52.52, 13.40}, Ripe, Europe},
    {"europe-west12", kGcp, {45.07, 7.69}, Ripe, Europe},
    {"europe-west2", kGcp, {51.51, -0.13}, Ripe, Europe},
    {"europe-west3", kGcp, {50.11, 8.68}, Ripe, Europe},
    {"europe-west4", kGcp, {53.44, 6.83}, Ripe, Europe},
    {"europe-west6", kGcp, {47.37, 8.54}, Ripe, Europe},
    {"europe-west8", kGcp, {45.46, 9.19}, Ripe, Europe},
    {"europe-west9", kGcp, {48.86, 2.35}, Ripe, Europe},
    {"me-central1", kGcp, {25.29, 51.53}, Ripe, Asia},
    {"me-west1", kGcp, {32.08, 34.78}, Ripe, Europe},
    {"northamerica-northeast1", kGcp, {45.50, -73.57}, Arin, NorthAmerica},
    {"northamerica-northeast2", kGcp, {43.65, -79.38}, Arin, NorthAmerica},
    {"northamerica-south1", kGcp, {20.59, -100.39}, Lacnic, NorthAmerica},
    {"southamerica-east1", kGcp, {-23.55, -46.63}, Lacnic, SouthAmerica},
    {"southamerica-west1", kGcp, {-33.45, -70.67}, Lacnic, SouthAmerica},
    {"us-central1", kGcp, {41.26, -95.86}, Arin, NorthAmerica},
    {"us-east1", kGcp, {33.19, -80.01}, Arin, NorthAmerica},
    {"us-east4", kGcp, {38.95, -77.45}, Arin, NorthAmerica},
    {"us-east5", kGcp, {40.00, -83.00}, Arin, NorthAmerica},
    {"us-south1", kGcp, {32.78, -96.80}, Arin, NorthAmerica},
    {"us-west1", kGcp, {45.60, -121.18}, Arin, NorthAmerica},
    {"us-west2", kGcp, {34.05, -118.24}, Arin, NorthAmerica},
    {"us-west3", kGcp, {40.76, -111.89}, Arin, NorthAmerica},
    {"us-west4", kGcp, {36.17, -115.14}, Arin, NorthAmerica},
}};

constexpr std::array<RegionInfo, 39> kAzureRegions = {{
    {"asia-east", kAzure, {22.30, 114.20}, Apnic, Asia},
    {"asia-southeast", kAzure, {1.35, 103.82}, Apnic, Asia},
    {"australia-central", kAzure, {-35.28, 149.13}, Apnic, Oceania},
    {"australia-east", kAzure, {-33.87, 151.21}, Apnic, Oceania},
    {"australia-southeast", kAzure, {-37.81, 144.96}, Apnic, Oceania},
    {"brazil-south", kAzure, {-23.55, -46.63}, Lacnic, SouthAmerica},
    {"canada-central", kAzure, {43.65, -79.38}, Arin, NorthAmerica},
    {"europe-north", kAzure, {53.35, -6.26}, Ripe, Europe},
    {"europe-west", kAzure, {52.37, 4.90}, Ripe, Europe},
    {"france-central", kAzure, {48.86, 2.35}, Ripe, Europe},
    {"germany-westcentral", kAzure, {50.11, 8.68}, Ripe, Europe},
    {"india-central", kAzure, {18.52, 73.86}, Apnic, Asia},
    {"india-south", kAzure, {13.08, 80.27}, Apnic, Asia},
    {"indonesia-central", kAzure, {-6.21, 106.85}, Apnic, Asia},
    {"israel-central", kAzure, {32.08, 34.78}, Ripe, Europe},
    {"italy-north", kAzure, {45.46, 9.19}, Ripe, Europe},
    {"japan-east", kAzure, {35.68, 139.69}, Apnic, Asia},
    {"japan-west", kAzure, {34.69, 135.50}, Apnic, Asia},
    {"korea-central", kAzure, {37.57, 126.98}, Apnic, Asia},
    {"mexico-central", kAzure, {20.59, -100.39}, Lacnic, NorthAmerica},
    {"newzealand-north", kAzure, {-36.85, 174.76}, Apnic, Oceania},
    {"norway-east", kAzure, {59.91, 10.75}, Ripe, Europe},
    {"poland-central", kAzure, {52.23, 21.01}, Ripe, Europe},
    {"southafrica-north", kAzure, {-26.20, 28.05}, Afrinic, Africa},
    {"spain-central", kAzure, {40.42, -3.70}, Ripe, Europe},
    {"sweden-central", kAzure, {60.67, 17.14}, Ripe, Europe},
    {"switzerland-north", kAzure, {47.37, 8.54}, Ripe, Europe},
    {"uae-north", kAzure, {25.20, 55.27}, Ripe, Asia},
    {"uk-south", kAzure, {51.51, -0.13}, Ripe, Europe},
    {"uk-west", kAzure, {51.48, -3.18}, Ripe, Europe},
    {"us-central", kAzure, {41.26, -93.62}, Arin, NorthAmerica},
    {"us-east", kAzure, {37.37, -79.82}, Arin, NorthAmerica},
    {"us-east2", kAzure, {36.85, -78.87}, Arin, NorthAmerica},
    {"us-northcentral", kAzure, {41.88, -87.63}, Arin, NorthAmerica},
    {"us-southcentral", kAzure, {29.42, -98.49}, Arin, NorthAmerica},
    {"us-west", kAzure, {37.78, -122.42}, Arin, NorthAmerica},
    {"us-west2", kAzure, {47.23, -119.85}, Arin, NorthAmerica},
    {"us-west3", kAzure, {33.45, -112.07}, Arin, NorthAmerica},
    {"us-westcentral", kAzure, {41.14, -104.82}, Arin, NorthAmerica},
}};

constexpr std::array<RegionInfo, 32> kVultrSites = {{
    {"Amsterdam", kVultr, {52.37, 4.90}, Ripe, Europe},
    {"Atlanta", kVultr, {33.75, -84.39}, Arin, NorthAmerica},
    {"Bangalore", kVultr, {12.97, 77.59}, Apnic, Asia},
    {"Chicago", kVultr, {41.88, -87.63}, Arin, NorthAmerica},
    {"Dallas", kVultr, {32.78, -96.80}, Arin, NorthAmerica},
    {"Delhi NCR", kVultr, {28.61, 77.21}, Apnic, Asia},
    {"Frankfurt", kVultr, {50.11, 8.68}, Ripe, Europe},
    {"Honolulu", kVultr, {21.31, -157.86}, Arin, NorthAmerica},
    {"Johannesburg", kVultr, {-26.20, 28.05}, Afrinic, Africa},
    {"London", kVultr, {51.51, -0.13}, Ripe, Europe},
    {"Los Angeles", kVultr, {34.05, -118.24}, Arin, NorthAmerica},
    {"Madrid", kVultr, {40.42, -3.70}, Ripe, Europe},
    {"Manchester", kVultr, {53.48, -2.24}, Ripe, Europe},
    {"Melbourne", kVultr, {-37.81, 144.96}, Apnic, Oceania},
    {"Mexico City", kVultr, {19.43, -99.13}, Lacnic, NorthAmerica},
    {"Miami", kVultr, {25.76, -80.19}, Arin, NorthAmerica},
    {"Mumbai", kVultr, {19.08, 72.88}, Apnic, Asia},
    {"New Jersey", kVultr, {40.74, -74.17}, Arin, NorthAmerica},
    {"Osaka", kVultr, {34.69, 135.50}, Apnic, Asia},
    {"Paris", kVultr, {48.86, 2.35}, Ripe, Europe},
    {"Santiago", kVultr, {-33.45, -70.67}, Lacnic, SouthAmerica},
    {"Sao Paulo", kVultr, {-23.55, -46.63}, Lacnic, SouthAmerica},
    {"Seattle", kVultr, {47.61, -122.33}, Arin, NorthAmerica},
    {"Seoul", kVultr, {37.57, 126.98}, Apnic, Asia},
    {"Silicon Valley", kVultr, {37.39, -122.08}, Arin, NorthAmerica},
    {"Singapore", kVultr, {1.35, 103.82}, Apnic, Asia},
    {"Stockholm", kVultr, {59.33, 18.07}, Ripe, Europe},
    {"Sydney", kVultr, {-33.87, 151.21}, Apnic, Oceania},
    {"Tel Aviv", kVultr, {32.08, 34.78}, Ripe, Europe},
    {"Tokyo", kVultr, {35.68, 139.69}, Apnic, Asia},
    {"Toronto", kVultr, {43.65, -79.38}, Arin, NorthAmerica},
    {"Warsaw", kVultr, {52.23, 21.01}, Ripe, Europe},
}};

// PEERING muxes (approximate host-institution coordinates).
constexpr std::array<RegionInfo, 15> kPeeringMuxes = {{
    {"amsterdam01", kPeering, {52.37, 4.90}, Ripe, Europe},
    {"clemson01", kPeering, {34.68, -82.84}, Arin, NorthAmerica},
    {"gatech01", kPeering, {33.78, -84.40}, Arin, NorthAmerica},
    {"grnet01", kPeering, {37.98, 23.73}, Ripe, Europe},
    {"isi01", kPeering, {33.98, -118.44}, Arin, NorthAmerica},
    {"neu01", kPeering, {42.34, -71.09}, Arin, NorthAmerica},
    {"sbu01", kPeering, {40.91, -73.12}, Arin, NorthAmerica},
    {"seattle01", kPeering, {47.61, -122.33}, Arin, NorthAmerica},
    {"saopaulo01", kPeering, {-23.55, -46.63}, Lacnic, SouthAmerica},
    {"ufmg01", kPeering, {-19.92, -43.94}, Lacnic, SouthAmerica},
    {"ufms01", kPeering, {-20.44, -54.65}, Lacnic, SouthAmerica},
    {"utah01", kPeering, {40.76, -111.89}, Arin, NorthAmerica},
    {"uw01", kPeering, {47.65, -122.31}, Arin, NorthAmerica},
    {"wisc01", kPeering, {43.07, -89.40}, Arin, NorthAmerica},
    {"tokyo01", kPeering, {35.68, 139.69}, Apnic, Asia},
}};

}  // namespace

std::span<const RegionInfo> aws_regions() { return kAwsRegions; }
std::span<const RegionInfo> peering_muxes() { return kPeeringMuxes; }
std::span<const RegionInfo> gcp_regions() { return kGcpRegions; }
std::span<const RegionInfo> azure_regions() { return kAzureRegions; }
std::span<const RegionInfo> vultr_sites() { return kVultrSites; }

std::span<const RegionInfo> regions_of(CloudProvider p) {
  switch (p) {
    case CloudProvider::Aws: return aws_regions();
    case CloudProvider::Gcp: return gcp_regions();
    case CloudProvider::Azure: return azure_regions();
    case CloudProvider::Vultr: return vultr_sites();
    case CloudProvider::Peering: return peering_muxes();
  }
  return {};
}

std::optional<RegionInfo> find_region(CloudProvider p, std::string_view name) {
  const auto regions = regions_of(p);
  const auto it =
      std::find_if(regions.begin(), regions.end(),
                   [&](const RegionInfo& r) { return r.name == name; });
  if (it == regions.end()) return std::nullopt;
  return *it;
}

}  // namespace marcopolo::topo
