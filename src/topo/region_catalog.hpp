// The full node catalog from the paper's Appendix E (Table 4): every cloud
// region and Vultr site used in the evaluation, with geographic coordinates
// and RIR membership.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "netsim/geo.hpp"
#include "topo/rir.hpp"

namespace marcopolo::topo {

enum class CloudProvider : std::uint8_t { Aws, Gcp, Azure, Vultr, Peering };

inline constexpr std::array<CloudProvider, 3> kPerspectiveProviders = {
    CloudProvider::Aws, CloudProvider::Gcp, CloudProvider::Azure};

[[nodiscard]] constexpr std::string_view to_string_view(CloudProvider p) {
  switch (p) {
    case CloudProvider::Aws: return "AWS";
    case CloudProvider::Gcp: return "GCP";
    case CloudProvider::Azure: return "Azure";
    case CloudProvider::Vultr: return "Vultr";
    case CloudProvider::Peering: return "PEERING";
  }
  return "?";
}

struct RegionInfo {
  std::string_view name;
  CloudProvider provider;
  netsim::GeoPoint location;
  Rir rir;
  Continent continent;
};

/// 27 AWS regions (paper Table 4).
[[nodiscard]] std::span<const RegionInfo> aws_regions();
/// 40 GCP regions.
[[nodiscard]] std::span<const RegionInfo> gcp_regions();
/// 39 Azure regions.
[[nodiscard]] std::span<const RegionInfo> azure_regions();
/// 32 Vultr sites (the victim/adversary node pool).
[[nodiscard]] std::span<const RegionInfo> vultr_sites();
/// PEERING testbed muxes (§4.4.2's proposed superset of Vultr): research
/// vantage points that can originate BGP announcements.
[[nodiscard]] std::span<const RegionInfo> peering_muxes();

[[nodiscard]] std::span<const RegionInfo> regions_of(CloudProvider p);

/// Look up a region by provider + name; nullopt if unknown.
[[nodiscard]] std::optional<RegionInfo> find_region(CloudProvider p,
                                                    std::string_view name);

}  // namespace marcopolo::topo
