#include "topo/internet.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace marcopolo::topo {

namespace {

struct ContinentSpec {
  Continent continent;
  netsim::GeoPoint centroid;
  double spread_deg;  ///< Jitter radius for AS placement.
  double weight;      ///< Share of ASes placed here.
};

constexpr std::array<ContinentSpec, 6> kContinents = {{
    {Continent::NorthAmerica, {40.0, -98.0}, 14.0, 0.26},
    {Continent::Europe, {50.0, 12.0}, 10.0, 0.27},
    {Continent::Asia, {26.0, 105.0}, 18.0, 0.25},
    {Continent::SouthAmerica, {-16.0, -60.0}, 10.0, 0.08},
    {Continent::Africa, {2.0, 24.0}, 14.0, 0.06},
    {Continent::Oceania, {-30.0, 146.0}, 9.0, 0.08},
}};

const ContinentSpec& spec_of(Continent c) {
  for (const ContinentSpec& s : kContinents) {
    if (s.continent == c) return s;
  }
  throw std::logic_error("unknown continent");
}

ContinentSpec pick_continent(netsim::Rng& rng) {
  double x = rng.real();
  for (const ContinentSpec& s : kContinents) {
    if (x < s.weight) return s;
    x -= s.weight;
  }
  return kContinents.front();
}

netsim::GeoPoint jitter(netsim::Rng& rng, const ContinentSpec& spec) {
  const double lat =
      spec.centroid.lat + (rng.real() * 2.0 - 1.0) * spec.spread_deg;
  const double lon =
      spec.centroid.lon + (rng.real() * 2.0 - 1.0) * spec.spread_deg * 1.6;
  return {std::clamp(lat, -85.0, 85.0),
          lon < -180.0 ? lon + 360.0 : (lon > 180.0 ? lon - 360.0 : lon)};
}

// ASN blocks per tier keep generated numbers readable in debug output, and
// stay ordered tier-1 < tier-2 < tier-3 < stub so the NeighborAsn
// tie-break's cross-tier behavior is size-independent. The tier-3 and stub
// blocks sit above every externally assigned ASN (cloud backbones 8075 /
// 15169 / 16509, Vultr sites 64512+) so a 50k+ AS topology cannot collide
// with them.
constexpr std::uint32_t kTier1Base = 100;
constexpr std::uint32_t kTier2Base = 1000;
constexpr std::uint32_t kTier3Base = 100000;
constexpr std::uint32_t kStubBase = 1000000;

}  // namespace

Internet::Internet(const InternetConfig& config) {
  if (config.num_tier1 < 2) {
    throw std::invalid_argument("need at least 2 tier-1 ASes");
  }
  netsim::Rng rng(config.seed);

  // --- Tier 1: global backbone clique. Spread across the three big
  // continents so every region has nearby backbone presence.
  netsim::Rng t1_rng = rng.fork(1);
  constexpr std::array<Continent, 3> kBackboneHomes = {
      Continent::NorthAmerica, Continent::Europe, Continent::Asia};
  for (int i = 0; i < config.num_tier1; ++i) {
    const ContinentSpec& spec =
        spec_of(kBackboneHomes[static_cast<std::size_t>(i) %
                               kBackboneHomes.size()]);
    const auto id = add_node(bgp::Asn{kTier1Base + static_cast<std::uint32_t>(i)},
                             jitter(t1_rng, spec), spec.continent,
                             AsTier::Tier1);
    tier1_.push_back(id);
  }
  for (std::size_t i = 0; i < tier1_.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1_.size(); ++j) {
      graph_.add_peering(tier1_[i], tier1_[j]);
    }
  }

  // --- Tier 2: regional transit. Customers of 2-3 tier-1s (biased to the
  // home continent) and peers of a handful of other tier-2s.
  netsim::Rng t2_rng = rng.fork(2);
  for (int i = 0; i < config.num_tier2; ++i) {
    const ContinentSpec spec = pick_continent(t2_rng);
    const auto id = add_node(bgp::Asn{kTier2Base + static_cast<std::uint32_t>(i)},
                             jitter(t2_rng, spec), spec.continent,
                             AsTier::Tier2);
    tier2_.push_back(id);
    const int uplinks = 2 + static_cast<int>(t2_rng.uniform(0, 1));
    std::set<std::uint32_t> used;
    for (int u = 0; u < uplinks; ++u) {
      // Prefer a same-continent tier-1 with the configured bias.
      bgp::NodeId provider{};
      for (int attempt = 0; attempt < 16; ++attempt) {
        const bgp::NodeId cand = tier1_[t2_rng.index(tier1_.size())];
        const bool same = continent(cand) == spec.continent;
        if ((same || t2_rng.real() > config.tier2_regional_bias) &&
            !used.contains(cand.value)) {
          provider = cand;
          break;
        }
      }
      if (!provider.valid()) {
        // Fall back to any unused tier-1 so every tier-2 has transit.
        for (const bgp::NodeId cand : tier1_) {
          if (!used.contains(cand.value)) {
            provider = cand;
            break;
          }
        }
      }
      if (!provider.valid()) continue;
      used.insert(provider.value);
      graph_.add_provider_customer(provider, id);
    }
  }
  // Tier-2 peering mesh, continent-biased.
  netsim::Rng peer_rng = rng.fork(3);
  std::set<std::pair<std::uint32_t, std::uint32_t>> peered;
  for (const bgp::NodeId a : tier2_) {
    for (int p = 0; p < config.tier2_peers; ++p) {
      for (int attempt = 0; attempt < 24; ++attempt) {
        const bgp::NodeId b = tier2_[peer_rng.index(tier2_.size())];
        if (b == a) continue;
        const bool same = continent(a) == continent(b);
        if (!same && peer_rng.real() < 0.7) continue;
        const auto key = std::minmax(a.value, b.value);
        if (peered.contains({key.first, key.second})) continue;
        peered.insert({key.first, key.second});
        graph_.add_peering(a, b);
        break;
      }
    }
  }

  // The tier-2 layer is complete; build the k-NN index every nearest_tier2
  // query below (and after construction) runs against.
  {
    std::vector<netsim::GeoPoint> tier2_points;
    tier2_points.reserve(tier2_.size());
    for (const bgp::NodeId n : tier2_) tier2_points.push_back(location(n));
    tier2_index_.emplace(tier2_points);
  }

  // --- Tier 3: access networks buying transit from nearby tier-2s.
  netsim::Rng t3_rng = rng.fork(4);
  for (int i = 0; i < config.num_tier3; ++i) {
    const ContinentSpec spec = pick_continent(t3_rng);
    const netsim::GeoPoint where = jitter(t3_rng, spec);
    const auto id = add_node(bgp::Asn{kTier3Base + static_cast<std::uint32_t>(i)},
                             where, spec.continent, AsTier::Tier3);
    tier3_.push_back(id);
    const auto candidates = nearest_tier2(where, 8);
    const int uplinks =
        std::min<int>(2, static_cast<int>(candidates.size()));
    std::set<std::uint32_t> used;
    for (int u = 0; u < uplinks; ++u) {
      // Redraw on a duplicate: giving up on a collision silently left an
      // AS configured for 2 uplinks single-homed.
      bgp::NodeId provider{};
      for (int attempt = 0; attempt < 16 && !provider.valid(); ++attempt) {
        const bgp::NodeId cand = candidates[t3_rng.index(candidates.size())];
        if (!used.contains(cand.value)) provider = cand;
      }
      if (!provider.valid()) continue;
      used.insert(provider.value);
      graph_.add_provider_customer(provider, id);
    }
    if (t3_rng.chance(config.tier3_tier1_uplink)) {
      graph_.add_provider_customer(tier1_[t3_rng.index(tier1_.size())], id);
    }
  }

  // --- Stubs: leaf ASes on tier-2/tier-3 providers.
  netsim::Rng stub_rng = rng.fork(5);
  for (int i = 0; i < config.num_stub; ++i) {
    const ContinentSpec spec = pick_continent(stub_rng);
    const netsim::GeoPoint where = jitter(stub_rng, spec);
    const auto id = add_node(bgp::Asn{kStubBase + static_cast<std::uint32_t>(i)},
                             where, spec.continent, AsTier::Stub);
    stubs_.push_back(id);
    const auto near2 = nearest_tier2(where, 6);
    const int uplinks = 1 + static_cast<int>(stub_rng.uniform(0, 1));
    std::set<std::uint32_t> used;
    for (int u = 0; u < uplinks; ++u) {
      // Redraw the whole provider choice (pool coin included) on a
      // duplicate instead of dropping the uplink.
      bgp::NodeId provider{};
      for (int attempt = 0; attempt < 16 && !provider.valid(); ++attempt) {
        bgp::NodeId cand{};
        if (!tier3_.empty() && stub_rng.chance(0.5)) {
          cand = tier3_[stub_rng.index(tier3_.size())];
        } else if (!near2.empty()) {
          cand = near2[stub_rng.index(near2.size())];
        }
        if (cand.valid() && !used.contains(cand.value)) provider = cand;
      }
      if (!provider.valid()) continue;
      used.insert(provider.value);
      graph_.add_provider_customer(provider, id);
    }
  }

  graph_.validate();
}

bgp::NodeId Internet::add_node(bgp::Asn asn, netsim::GeoPoint where,
                               Continent c, AsTier t) {
  const bgp::NodeId id = graph_.add_as(asn);
  location_.push_back(where);
  continent_.push_back(c);
  tier_.push_back(t);
  return id;
}

bgp::NodeId Internet::add_leaf_as(bgp::Asn asn, netsim::GeoPoint where,
                                  Continent c) {
  return add_node(asn, where, c, AsTier::Stub);
}

std::vector<bgp::NodeId> Internet::nearest_tier2(netsim::GeoPoint where,
                                                 std::size_t count) const {
  // The index returns positions into tier2_ ascending by distance with
  // ties broken by position — the same set and order the old full
  // stable_sort selected, without the O(T2 log T2) per query.
  const auto picked = tier2_index_->nearest(where, count);
  std::vector<bgp::NodeId> out;
  out.reserve(picked.size());
  for (const std::uint32_t i : picked) out.push_back(tier2_[i]);
  return out;
}

InternetConfig scaled_internet_config(int total_ases, std::uint64_t seed) {
  if (total_ases < 64) {
    throw std::invalid_argument("scaled_internet_config needs >= 64 ASes");
  }
  InternetConfig cfg;
  cfg.seed = seed;
  // 12-16 backbone networks regardless of size; the transit and access
  // layers grow with the population.
  cfg.num_tier1 = std::clamp(12 + total_ases / 16000, 12, 16);
  cfg.num_tier2 = std::max(8, total_ases * 3 / 100);
  cfg.num_tier3 = std::max(8, total_ases * 12 / 100);
  cfg.num_stub =
      std::max(8, total_ases - cfg.num_tier1 - cfg.num_tier2 - cfg.num_tier3);
  return cfg;
}

bgp::NodeId Internet::tier1_for(std::uint64_t salt) const {
  return tier1_[netsim::splitmix64(salt) % tier1_.size()];
}

void Internet::deploy_rov(double fraction, std::uint64_t seed) {
  netsim::Rng rng(seed);
  for (std::uint32_t i = 0; i < graph_.size(); ++i) {
    const bgp::NodeId n{i};
    if (n.value < tier_.size() && tier_[n.value] != AsTier::Stub &&
        rng.chance(fraction)) {
      graph_.set_rov_enforcing(n, true);
    }
  }
}

void Internet::deploy_otc(double fraction, std::uint64_t seed) {
  netsim::Rng rng(seed);
  for (std::uint32_t i = 0; i < graph_.size(); ++i) {
    const bgp::NodeId n{i};
    if (n.value < tier_.size() && tier_[n.value] != AsTier::Stub &&
        rng.chance(fraction)) {
      graph_.set_otc_enforcing(n, true);
    }
  }
}

}  // namespace marcopolo::topo
