// Exact k-nearest-neighbor index over a fixed set of geographic points.
//
// The Internet generator attaches every tier-3/stub AS (and every Vultr
// site and cloud POP) to its nearest tier-2 transit providers. Sorting the
// whole tier-2 vector per attachment is O(n * T2 log T2), which dominates
// topology generation at 50k+ ASes; this index answers the same queries
// from a lat/lon cell grid in roughly O(cells + answer) per query.
//
// Distances are compared as squared 3D chord lengths between unit vectors,
// which order identically to great-circle distance (the chord is a strictly
// monotone function of the central angle) without any per-pair
// trigonometry. Cell pruning uses the triangle inequality in R^3: a cell
// whose centroid is farther than (kth-best + cell radius) cannot contain a
// better member, so whole cells are skipped with one subtraction.
//
// Queries return exactly the points a full sort would select, in the same
// order: ascending distance with ties broken by insertion index (the order
// std::stable_sort preserved).
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/geo.hpp"

namespace marcopolo::topo {

class SpatialIndex {
 public:
  /// Build over `points`; result indices refer to positions in this vector.
  explicit SpatialIndex(const std::vector<netsim::GeoPoint>& points);

  /// Indices of the `count` nearest points to `where` (fewer if the index
  /// holds fewer), ascending by distance, ties by index.
  [[nodiscard]] std::vector<std::uint32_t> nearest(netsim::GeoPoint where,
                                                   std::size_t count) const;

  [[nodiscard]] std::size_t size() const { return x_.size(); }

 private:
  struct Vec3 {
    double x = 0.0, y = 0.0, z = 0.0;
  };

  struct Cell {
    std::vector<std::uint32_t> members;
    Vec3 centroid;        ///< Mean member unit vector (not re-normalized).
    double radius = 0.0;  ///< Max Euclidean distance centroid -> member.
  };

  [[nodiscard]] std::size_t cell_of(netsim::GeoPoint p) const;

  // Member unit vectors in structure-of-arrays layout for the inner
  // distance loop.
  std::vector<double> x_, y_, z_;
  std::vector<Cell> cells_;       ///< Non-empty cells only.
  std::vector<std::uint32_t> cell_slot_;  ///< Grid cell -> cells_ index or npos.
  std::size_t lat_bins_ = 0;
  std::size_t lon_bins_ = 0;
};

}  // namespace marcopolo::topo
