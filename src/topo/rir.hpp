// Regional Internet Registries and continents.
//
// RIR membership drives the paper's clustering analysis (§5.3, Appendix B):
// optimal N-Y quorum deployments place Y+1 perspectives per RIR.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace marcopolo::topo {

enum class Rir : std::uint8_t { Arin, Ripe, Apnic, Lacnic, Afrinic };

inline constexpr std::array<Rir, 5> kAllRirs = {
    Rir::Arin, Rir::Ripe, Rir::Apnic, Rir::Lacnic, Rir::Afrinic};

[[nodiscard]] constexpr std::string_view to_string_view(Rir r) {
  switch (r) {
    case Rir::Arin: return "ARIN";
    case Rir::Ripe: return "RIPE";
    case Rir::Apnic: return "APNIC";
    case Rir::Lacnic: return "LACNIC";
    case Rir::Afrinic: return "AFRINIC";
  }
  return "?";
}

/// Continental backbone zones; used for geographic embedding of the
/// synthetic Internet and for cold-potato egress zoning.
enum class Continent : std::uint8_t {
  NorthAmerica,
  SouthAmerica,
  Europe,
  Africa,
  Asia,
  Oceania,
};

inline constexpr std::array<Continent, 6> kAllContinents = {
    Continent::NorthAmerica, Continent::SouthAmerica, Continent::Europe,
    Continent::Africa,       Continent::Asia,         Continent::Oceania};

[[nodiscard]] constexpr std::string_view to_string_view(Continent c) {
  switch (c) {
    case Continent::NorthAmerica: return "NA";
    case Continent::SouthAmerica: return "SA";
    case Continent::Europe: return "EU";
    case Continent::Africa: return "AF";
    case Continent::Asia: return "AS";
    case Continent::Oceania: return "OC";
  }
  return "?";
}

/// The RIR that administers a continent (the Middle East is part of RIPE;
/// we fold it into Europe's zone for zoning purposes).
[[nodiscard]] constexpr Rir rir_of(Continent c) {
  switch (c) {
    case Continent::NorthAmerica: return Rir::Arin;
    case Continent::SouthAmerica: return Rir::Lacnic;
    case Continent::Europe: return Rir::Ripe;
    case Continent::Africa: return Rir::Afrinic;
    case Continent::Asia: return Rir::Apnic;
    case Continent::Oceania: return Rir::Apnic;
  }
  return Rir::Arin;
}

}  // namespace marcopolo::topo
