#include "topo/vultr.hpp"

namespace marcopolo::topo {

std::vector<Site> build_sites(Internet& internet,
                              std::span<const RegionInfo> catalog,
                              std::uint64_t seed, std::uint32_t asn_base) {
  netsim::Rng rng(seed);
  std::vector<Site> sites;
  sites.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const RegionInfo& info = catalog[i];
    const bgp::NodeId node = internet.add_leaf_as(
        bgp::Asn{asn_base + static_cast<std::uint32_t>(i)}, info.location,
        info.continent);

    // One tier-1 uplink, spread across the clique so sites land in
    // different tier-1 cones.
    const bgp::NodeId uplink = internet.tier1_for(seed ^ (i * 0x9e37ULL));
    internet.graph().add_provider_customer(uplink, node);

    // Two regional tier-2 uplinks drawn from the five nearest.
    const auto near2 = internet.nearest_tier2(info.location, 5);
    std::size_t added = 0;
    for (int attempt = 0; attempt < 12 && added < 2 && !near2.empty();
         ++attempt) {
      const bgp::NodeId t2 = near2[rng.index(near2.size())];
      bool dup = false;
      for (const auto& nb : internet.graph().neighbors(node)) {
        if (nb.id == t2) dup = true;
      }
      if (dup) continue;
      internet.graph().add_provider_customer(t2, node);
      ++added;
    }

    sites.push_back(
        Site{info.name, node, info.rir, info.continent, info.location});
  }
  return sites;
}

std::vector<Site> build_vultr_sites(Internet& internet, std::uint64_t seed) {
  return build_sites(internet, vultr_sites(), seed);
}

}  // namespace marcopolo::topo
