#include "topo/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace marcopolo::topo {

namespace {

constexpr std::uint32_t kNoCell = std::numeric_limits<std::uint32_t>::max();

// 12 degree x 15 degree cells: coarse enough that the 600-AS default fits
// in a handful of cells, fine enough that a 50k-AS query prunes nearly
// everything with one bound test per cell.
constexpr std::size_t kLatBins = 15;
constexpr std::size_t kLonBins = 24;

struct Unit {
  double x, y, z;
};

Unit unit_of(netsim::GeoPoint p) {
  const double lat = p.lat * std::numbers::pi / 180.0;
  const double lon = p.lon * std::numbers::pi / 180.0;
  const double c = std::cos(lat);
  return Unit{c * std::cos(lon), c * std::sin(lon), std::sin(lat)};
}

/// Ranked query hit; orders ascending by distance, ties by insertion index
/// (the order a stable sort over the original vector preserves).
struct Hit {
  double dist2;
  std::uint32_t index;

  [[nodiscard]] bool better_than(const Hit& o) const {
    return dist2 < o.dist2 || (dist2 == o.dist2 && index < o.index);
  }
};

}  // namespace

std::size_t SpatialIndex::cell_of(netsim::GeoPoint p) const {
  const double lat01 = std::clamp((p.lat + 90.0) / 180.0, 0.0, 1.0);
  const double lon01 = std::clamp((p.lon + 180.0) / 360.0, 0.0, 1.0);
  const std::size_t lat_bin = std::min(
      lat_bins_ - 1, static_cast<std::size_t>(lat01 * static_cast<double>(lat_bins_)));
  const std::size_t lon_bin = std::min(
      lon_bins_ - 1, static_cast<std::size_t>(lon01 * static_cast<double>(lon_bins_)));
  return lat_bin * lon_bins_ + lon_bin;
}

SpatialIndex::SpatialIndex(const std::vector<netsim::GeoPoint>& points)
    : lat_bins_(kLatBins), lon_bins_(kLonBins) {
  const std::size_t n = points.size();
  x_.resize(n);
  y_.resize(n);
  z_.resize(n);
  cell_slot_.assign(lat_bins_ * lon_bins_, kNoCell);
  for (std::size_t i = 0; i < n; ++i) {
    const Unit u = unit_of(points[i]);
    x_[i] = u.x;
    y_[i] = u.y;
    z_[i] = u.z;
    const std::size_t cell = cell_of(points[i]);
    if (cell_slot_[cell] == kNoCell) {
      cell_slot_[cell] = static_cast<std::uint32_t>(cells_.size());
      cells_.emplace_back();
    }
    cells_[cell_slot_[cell]].members.push_back(static_cast<std::uint32_t>(i));
  }
  for (Cell& cell : cells_) {
    Vec3 sum;
    for (const std::uint32_t i : cell.members) {
      sum.x += x_[i];
      sum.y += y_[i];
      sum.z += z_[i];
    }
    const double inv = 1.0 / static_cast<double>(cell.members.size());
    cell.centroid = Vec3{sum.x * inv, sum.y * inv, sum.z * inv};
    for (const std::uint32_t i : cell.members) {
      const double dx = x_[i] - cell.centroid.x;
      const double dy = y_[i] - cell.centroid.y;
      const double dz = z_[i] - cell.centroid.z;
      cell.radius =
          std::max(cell.radius, std::sqrt(dx * dx + dy * dy + dz * dz));
    }
  }
}

std::vector<std::uint32_t> SpatialIndex::nearest(netsim::GeoPoint where,
                                                 std::size_t count) const {
  std::vector<std::uint32_t> out;
  if (count == 0 || x_.empty()) return out;
  count = std::min(count, x_.size());

  const Unit q = unit_of(where);

  // `best` is kept sorted ascending (distance, index); the back is the
  // current kth-best, the pruning bound once full.
  std::vector<Hit> best;
  best.reserve(count);
  const auto offer = [&](std::uint32_t i) {
    const double dx = x_[i] - q.x;
    const double dy = y_[i] - q.y;
    const double dz = z_[i] - q.z;
    const Hit hit{dx * dx + dy * dy + dz * dz, i};
    if (best.size() == count && !hit.better_than(best.back())) return;
    auto pos = std::upper_bound(
        best.begin(), best.end(), hit,
        [](const Hit& a, const Hit& b) { return a.better_than(b); });
    best.insert(pos, hit);
    if (best.size() > count) best.pop_back();
  };
  const auto scan_cell = [&](std::uint32_t slot) {
    for (const std::uint32_t i : cells_[slot].members) offer(i);
  };

  // Prime the bound from the query's own cell neighborhood so the pass
  // over the remaining cells starts with a tight kth-best.
  const std::size_t home = cell_of(where);
  const std::size_t home_lat = home / lon_bins_;
  const std::size_t home_lon = home % lon_bins_;
  std::uint32_t primed[9];
  std::size_t n_primed = 0;
  for (int dlat = -1; dlat <= 1; ++dlat) {
    const long lat_bin = static_cast<long>(home_lat) + dlat;
    if (lat_bin < 0 || lat_bin >= static_cast<long>(lat_bins_)) continue;
    for (int dlon = -1; dlon <= 1; ++dlon) {
      const std::size_t lon_bin = (home_lon + lon_bins_ +
                                   static_cast<std::size_t>(dlon + 1) - 1) %
                                  lon_bins_;
      const std::uint32_t slot =
          cell_slot_[static_cast<std::size_t>(lat_bin) * lon_bins_ + lon_bin];
      if (slot == kNoCell) continue;
      bool seen = false;
      for (std::size_t s = 0; s < n_primed; ++s) {
        if (primed[s] == slot) seen = true;
      }
      if (seen) continue;
      primed[n_primed++] = slot;
      scan_cell(slot);
    }
  }

  // One pass over every other cell. A cell is skipped only when even its
  // closest possible member (triangle inequality: |q - centroid| - radius)
  // is strictly farther than the kth-best, which preserves distance ties —
  // and with them the index tie-break a full sort would apply.
  for (std::uint32_t slot = 0; slot < cells_.size(); ++slot) {
    bool was_primed = false;
    for (std::size_t s = 0; s < n_primed; ++s) {
      if (primed[s] == slot) was_primed = true;
    }
    if (was_primed) continue;
    if (best.size() == count) {
      const Vec3& c = cells_[slot].centroid;
      const double dx = c.x - q.x;
      const double dy = c.y - q.y;
      const double dz = c.z - q.z;
      const double lb =
          std::sqrt(dx * dx + dy * dy + dz * dz) - cells_[slot].radius;
      if (lb > 0.0 && lb * lb > best.back().dist2) continue;
    }
    scan_cell(slot);
  }

  out.reserve(best.size());
  for (const Hit& hit : best) out.push_back(hit.index);
  return out;
}

}  // namespace marcopolo::topo
