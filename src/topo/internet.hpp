// Seeded synthetic Internet generator.
//
// The paper measures hijack outcomes on the real Internet; we substitute a
// synthetic AS topology with the structural properties that matter for
// equally-specific hijacks (DESIGN.md §2): a tier-1 clique, a continental
// transit hierarchy, dense regional peering, and geographic embedding.
// Everything is driven by a single seed, so the same config regenerates the
// identical Internet.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/as_graph.hpp"
#include "netsim/geo.hpp"
#include "netsim/random.hpp"
#include "topo/rir.hpp"
#include "topo/spatial_index.hpp"

namespace marcopolo::topo {

struct InternetConfig {
  std::uint64_t seed = 42;
  /// Global backbone ASes, fully meshed by peering ("tier-1 clique").
  int num_tier1 = 12;
  /// Regional transit providers (customers of 2-3 tier-1s, peer regionally).
  int num_tier2 = 96;
  /// Access networks (customers of tier-2s).
  int num_tier3 = 280;
  /// Stub / edge ASes. They originate nothing in our experiments but make
  /// the topology realistic.
  int num_stub = 520;
  /// Probability that a tier-2's provider is chosen from its own continent.
  double tier2_regional_bias = 0.6;
  /// Peering links per tier-2 (drawn mostly within the continent).
  int tier2_peers = 4;
  /// Probability that a tier-3 additionally buys transit from a tier-1.
  double tier3_tier1_uplink = 0.15;
};

/// Config preset for an Internet-scale topology of roughly `total_ases`
/// ASes, keeping the default config's tier proportions near the real
/// Internet's (~3% regional transit, ~12% access, ~85% stubs) so the
/// single-perspective resilience calibration (~50%) carries over.
/// Requires total_ases >= 64.
[[nodiscard]] InternetConfig scaled_internet_config(int total_ases,
                                                    std::uint64_t seed = 42);

/// One AS tier, stored as metadata for attachment helpers.
enum class AsTier : std::uint8_t { Tier1 = 1, Tier2 = 2, Tier3 = 3, Stub = 4 };

/// A generated Internet: the graph plus per-AS metadata and index lists.
class Internet {
 public:
  explicit Internet(const InternetConfig& config);

  [[nodiscard]] bgp::AsGraph& graph() { return graph_; }
  [[nodiscard]] const bgp::AsGraph& graph() const { return graph_; }

  [[nodiscard]] netsim::GeoPoint location(bgp::NodeId n) const {
    return location_.at(n.value);
  }
  [[nodiscard]] Continent continent(bgp::NodeId n) const {
    return continent_.at(n.value);
  }
  [[nodiscard]] Rir rir(bgp::NodeId n) const {
    return rir_of(continent_.at(n.value));
  }
  [[nodiscard]] AsTier tier(bgp::NodeId n) const { return tier_.at(n.value); }

  [[nodiscard]] const std::vector<bgp::NodeId>& tier1() const { return tier1_; }
  [[nodiscard]] const std::vector<bgp::NodeId>& tier2() const { return tier2_; }
  [[nodiscard]] const std::vector<bgp::NodeId>& tier3() const { return tier3_; }
  [[nodiscard]] const std::vector<bgp::NodeId>& stubs() const { return stubs_; }

  /// Add a new leaf AS at `where` (used for Vultr sites and cloud
  /// backbones, which are wired by their own builders).
  bgp::NodeId add_leaf_as(bgp::Asn asn, netsim::GeoPoint where, Continent c);

  /// The `count` nearest tier-2 transit providers to a point.
  [[nodiscard]] std::vector<bgp::NodeId> nearest_tier2(netsim::GeoPoint where,
                                                       std::size_t count) const;

  /// Deterministically pick a tier-1 for an attachment, spreading choices
  /// across the clique ("different tier-1 cones", paper §4.4.2).
  [[nodiscard]] bgp::NodeId tier1_for(std::uint64_t salt) const;

  /// Mark a fraction of transit ASes (tier-1/2/3) as ROV-enforcing, chosen
  /// deterministically from `seed`.
  void deploy_rov(double fraction, std::uint64_t seed);

  /// Mark a fraction of transit ASes as enforcing RFC 9234 OTC (route-leak
  /// marking and rejection), chosen deterministically from `seed`.
  /// Independent of deploy_rov: distinct seeds give partially overlapping
  /// ROV/OTC deployments, as in the real Internet.
  void deploy_otc(double fraction, std::uint64_t seed);

 private:
  bgp::NodeId add_node(bgp::Asn asn, netsim::GeoPoint where, Continent c,
                       AsTier tier);

  bgp::AsGraph graph_;
  std::vector<netsim::GeoPoint> location_;
  std::vector<Continent> continent_;
  std::vector<AsTier> tier_;
  std::vector<bgp::NodeId> tier1_, tier2_, tier3_, stubs_;
  /// k-NN index over tier-2 locations, built once after the tier-2 layer is
  /// placed (the tier-2 set never changes afterwards) and used for every
  /// nearest_tier2 query, including the tier-3/stub attachment loops of the
  /// constructor itself.
  std::optional<SpatialIndex> tier2_index_;
};

}  // namespace marcopolo::topo
