// Experiment cost model — paper Appendix D (Table 3).
//
// The paper's bill: serverless Open MPIC on AWS rides the Lambda free tier
// (only API Gateway calls are billed), while Azure/GCP perspectives and the
// Vultr node pool run on the cheapest VM plans (B1s, e2-micro, vc2-1c-1gb)
// for the whole provisioned span of the experiment.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netsim/time.hpp"

namespace marcopolo::cost {

struct PriceCatalog {
  /// USD per API Gateway call (Lambda compute itself is free tier).
  double aws_api_gateway_per_call = 3.5e-6;
  double azure_b1s_hourly = 0.0104;
  double gcp_e2micro_hourly = 0.0063;
  double vultr_vc2_monthly = 3.50;
};

struct CostLine {
  std::string provider;
  std::size_t node_count = 0;
  double usd = 0.0;
};

struct ExperimentBill {
  std::vector<CostLine> lines;
  double total_usd = 0.0;
};

struct ExperimentShape {
  /// Wall-clock time VMs stay provisioned. Typically the campaign's
  /// virtual duration times an overhead factor (setup, reruns, both attack
  /// types, idle gaps).
  netsim::Duration provisioned;
  std::size_t aws_nodes = 0;
  std::size_t azure_nodes = 0;
  std::size_t gcp_nodes = 0;
  std::size_t vultr_nodes = 0;
  /// DCV validations served by the AWS serverless deployment (billed per
  /// API Gateway call).
  std::size_t aws_api_calls = 0;
};

class CostModel {
 public:
  explicit CostModel(PriceCatalog catalog = {}) : catalog_(catalog) {}

  [[nodiscard]] ExperimentBill estimate(const ExperimentShape& shape) const;

  [[nodiscard]] const PriceCatalog& catalog() const { return catalog_; }

 private:
  PriceCatalog catalog_;
};

}  // namespace marcopolo::cost
