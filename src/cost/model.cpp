#include "cost/model.hpp"

#include <cmath>

namespace marcopolo::cost {

ExperimentBill CostModel::estimate(const ExperimentShape& shape) const {
  const double hours = netsim::to_hours(shape.provisioned);
  const double months = hours / (30.0 * 24.0);

  ExperimentBill bill;
  const auto add = [&](std::string provider, std::size_t nodes, double usd) {
    // Round to cents like an invoice.
    usd = std::round(usd * 100.0) / 100.0;
    bill.lines.push_back(CostLine{std::move(provider), nodes, usd});
    bill.total_usd += usd;
  };

  add("AWS", shape.aws_nodes,
      static_cast<double>(shape.aws_api_calls) *
          catalog_.aws_api_gateway_per_call);
  add("Azure", shape.azure_nodes,
      static_cast<double>(shape.azure_nodes) * catalog_.azure_b1s_hourly *
          hours);
  add("GCP", shape.gcp_nodes,
      static_cast<double>(shape.gcp_nodes) * catalog_.gcp_e2micro_hourly *
          hours);
  add("Vultr", shape.vultr_nodes,
      static_cast<double>(shape.vultr_nodes) * catalog_.vultr_vc2_monthly *
          months);
  return bill;
}

}  // namespace marcopolo::cost
