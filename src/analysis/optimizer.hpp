// Deployment optimization — the paper's eqs. (6)-(7).
//
// Finds the perspective sets of size X (optionally plus a primary) with the
// highest median resilience under an N-Y quorum, breaking median ties by
// average resilience. Two strategies:
//
//   Exhaustive: depth-first walk of all C(n, X) candidate combinations.
//   Small sets (<= OptimizerConfig::direct_kernel_max_set) are scored with
//   the direct packed-word kernel (AND/OR/bit-sliced reductions over the
//   OutcomeMatrix, no per-pair counters); deeper walks fall back to
//   incremental per-pair count updates unpacked from the same matrix. This
//   is what produces the paper's optimal deployments and top-150 lists.
//
//   Beam: greedy beam search for large candidate pools; approximate but
//   orders of magnitude cheaper. Used for cross-provider sweeps.
//
// With a primary perspective, the optimizer ranks the top `primary_pool`
// remote sets from the no-primary search and then tries every allowed
// primary on each — the primary only adds a conjunct, so high-resilience
// remote sets remain the right starting pool (and the paper observes the
// optimal primary lives in its own RIR, i.e. outside the remote set).
#pragma once

#include <string>
#include <vector>

#include "analysis/resilience.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/profiler.hpp"
#include "topo/rir.hpp"

namespace marcopolo::analysis {

struct RankedDeployment {
  mpic::DeploymentSpec spec;
  ResilienceAnalyzer::Score score;
};

enum class SearchStrategy : std::uint8_t { Exhaustive, Beam };

/// Instrumentation filled by the exhaustive search (optional). The
/// upper-bound prune is observable here: without it every C(n, X)
/// complete set is scored; with it `complete_sets_scored` drops whenever
/// a partial set already scores below the worst retained deployment.
///
/// This struct is a thin per-call view kept for API compatibility; the
/// same totals accumulate on OptimizerConfig::metrics (when attached) as
/// "optimizer.complete_sets_scored" / "optimizer.subtrees_pruned".
struct SearchStats {
  std::size_t complete_sets_scored = 0;
  std::size_t subtrees_pruned = 0;
  /// Hardware counters over the exhaustive workers' DFS loops, summed
  /// across threads (each worker reads its own per-thread perf group).
  /// Invalid unless OptimizerConfig::hw_counters was on and the host
  /// allowed perf_event_open.
  obs::CounterSample counters;
};

struct OptimizerConfig {
  std::size_t set_size = 6;      ///< X remote perspectives.
  std::size_t max_failures = 2;  ///< Y in the N-Y quorum.
  bool with_primary = false;
  std::vector<PerspectiveIndex> candidates;
  /// Allowed primaries; empty = same as candidates.
  std::vector<PerspectiveIndex> primary_candidates;
  std::size_t top_k = 150;  ///< Deployments to retain (Appendix B uses 150).
  SearchStrategy strategy = SearchStrategy::Exhaustive;
  std::size_t beam_width = 64;
  /// Beam only: hill-climbing swap refinement applied to the best beam
  /// survivors (0 disables). Each pass tries every (member, non-member)
  /// swap and keeps strict improvements until a local optimum.
  std::size_t refine_top = 8;
  /// Remote sets carried into the primary-selection stage.
  std::size_t primary_pool = 150;
  /// Constrained search: cap on remote perspectives per RIR (0 = no cap).
  /// Requires `rir_of` indexed by global perspective id.
  std::size_t max_per_rir = 0;
  /// Worker threads for the exhaustive search (0 = hardware concurrency,
  /// 1 = single-threaded). The result is identical regardless of thread
  /// count: the search space is partitioned by first element and the
  /// per-thread top-k sets are merged deterministically.
  std::size_t threads = 0;
  /// Kernel selection for the exhaustive DFS: sets of at most this many
  /// perspectives are scored with the direct word-reduction kernel
  /// (OutcomeMatrix::success_mask — no per-pair counters); larger sets go
  /// through the incremental count workspace. Both kernels produce
  /// bit-identical scores, so this knob only moves work around; 0 forces
  /// the incremental path everywhere (useful for differential tests).
  std::size_t direct_kernel_max_set = 16;
  std::vector<topo::Rir> rir_of;
  std::string name_prefix = "opt";
  /// If non-null, the exhaustive search accumulates instrumentation here
  /// (summed across worker threads after the join).
  SearchStats* stats = nullptr;
  /// Optional metrics sink: search totals land under "optimizer.*"
  /// (sets scored, subtrees pruned, beam states, hill-climb swaps).
  /// Search workers accumulate locally and flush after the join, so the
  /// DFS hot path is untouched. Null = uninstrumented.
  obs::MetricsRegistry* metrics = nullptr;
  /// Attribute hardware counters to the exhaustive search: each worker
  /// opens a per-thread obs::PerfCounterGroup and brackets its whole DFS
  /// loop (two reads per worker — the hot path itself is untouched).
  /// Totals land in SearchStats::counters and, when `metrics` is
  /// attached, under "optimizer.instructions" etc. Degrades to off on
  /// hosts without perf_event_open, leaving output byte-identical.
  bool hw_counters = false;
  /// Optional sampling CPU profiler: exhaustive-search workers attach
  /// their threads for the DFS loop, attributing search CPU to the
  /// scoring kernels by function. Pure observer like `hw_counters`; null
  /// or unavailable changes nothing.
  obs::SamplingProfiler* profiler = nullptr;
};

/// Not thread-safe: the optimizer owns reusable scoring scratch (a count
/// workspace and a success-mask buffer, hoisted so beam restarts,
/// hill-climb seeds, and primary attachment never reallocate them), so
/// concurrent optimize()/hill_climb() calls need one DeploymentOptimizer
/// each. The exhaustive search's worker threads carry their own
/// per-thread state and are unaffected.
class DeploymentOptimizer {
 public:
  explicit DeploymentOptimizer(const ResilienceAnalyzer& analyzer)
      : analyzer_(analyzer) {}

  /// Ranked best-first (median, then average). Size <= top_k.
  [[nodiscard]] std::vector<RankedDeployment> optimize(
      const OptimizerConfig& config) const;

  /// Convenience: just the best deployment.
  [[nodiscard]] RankedDeployment best(const OptimizerConfig& config) const;

  /// Hill-climb from a seed set: repeatedly apply the best single
  /// (member, non-member) swap until a local optimum. The seed's size must
  /// equal config.set_size; candidates/quorum/RIR caps come from config.
  [[nodiscard]] RankedDeployment hill_climb(
      std::vector<PerspectiveIndex> seed, const OptimizerConfig& config)
      const;

 private:
  [[nodiscard]] std::vector<RankedDeployment> search_remotes(
      const OptimizerConfig& config) const;
  [[nodiscard]] std::vector<RankedDeployment> search_exhaustive(
      const OptimizerConfig& config) const;
  [[nodiscard]] std::vector<RankedDeployment> search_beam(
      const OptimizerConfig& config) const;
  [[nodiscard]] std::vector<RankedDeployment> attach_primaries(
      const OptimizerConfig& config,
      std::vector<RankedDeployment> remote_sets) const;
  /// Swap hill-climbing on (set, score) with ws holding the set's counts.
  void climb(std::vector<PerspectiveIndex>& set,
             ResilienceAnalyzer::Score& score,
             ResilienceAnalyzer::Workspace& ws, const OptimizerConfig& config,
             std::size_t required) const;
  /// Hoisted per-optimizer scratch, lazily sized on first use and never
  /// reallocated afterwards.
  [[nodiscard]] ResilienceAnalyzer::Workspace& workspace() const;
  [[nodiscard]] ResilienceAnalyzer::ScoreScratch& scratch() const;

  const ResilienceAnalyzer& analyzer_;
  mutable ResilienceAnalyzer::Workspace ws_;
  mutable ResilienceAnalyzer::ScoreScratch scratch_;
};

}  // namespace marcopolo::analysis
