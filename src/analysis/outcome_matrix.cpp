#include "analysis/outcome_matrix.hpp"

#include <algorithm>
#include <array>
#include <bit>

namespace marcopolo::analysis {

OutcomeMatrix::OutcomeMatrix(const core::ResultStore& store,
                             std::size_t attack)
    : num_sites_(store.num_sites()),
      num_perspectives_(store.num_perspectives()),
      words_per_row_(store.words_per_row()),
      words_(words_per_row_ * num_perspectives_),
      attackable_(words_per_row_, 0) {
  for (std::size_t p = 0; p < num_perspectives_; ++p) {
    const auto src =
        store.hijack_words(attack, static_cast<core::PerspectiveIndex>(p));
    std::copy(src.begin(), src.end(), words_.data() + p * words_per_row_);
  }
  for (std::size_t pair = 0; pair < num_pairs(); ++pair) {
    if (pair / num_sites_ == pair % num_sites_) continue;  // diagonal
    attackable_[pair / 64] |= std::uint64_t{1} << (pair % 64);
  }
}

void OutcomeMatrix::success_mask(std::span<const core::PerspectiveIndex> set,
                                 std::size_t required,
                                 std::span<std::uint64_t> out) const {
  const std::size_t words = words_per_row_;
  if (required == 0) {
    std::copy(attackable_.begin(), attackable_.end(), out.begin());
    return;
  }
  if (required > set.size()) {
    std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(words), 0);
    return;
  }
  const std::uint64_t* rows = words_.data();
  if (required == 1) {
    // (1, N): any hijacked perspective suffices — OR reduction.
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t acc = 0;
      for (const core::PerspectiveIndex p : set) {
        acc |= rows[static_cast<std::size_t>(p) * words + w];
      }
      out[w] = acc & attackable_[w];
    }
    return;
  }
  if (required == set.size()) {
    // (N, N): every perspective must be hijacked — AND reduction.
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t acc = ~std::uint64_t{0};
      for (const core::PerspectiveIndex p : set) {
        acc &= rows[static_cast<std::size_t>(p) * words + w];
      }
      out[w] = acc & attackable_[w];
    }
    return;
  }
  // Small-slack (X, N-Y) quorums — Y in {1, 2} covers every cab_minimum
  // policy that is not already the OR/AND path above. count >= |S| - Y is
  // "at most Y perspectives NOT hijacked", tracked by a branch-free
  // saturating unary counter over the row complements: ge_j = "more than
  // j-1 zeros seen so far", updated highest-first so each row costs a
  // handful of word ops instead of a carry-propagation loop.
  const std::size_t slack = set.size() - required;
  if (slack == 1) {
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t ge1 = 0;
      std::uint64_t ge2 = 0;
      for (const core::PerspectiveIndex p : set) {
        const std::uint64_t z = ~rows[static_cast<std::size_t>(p) * words + w];
        ge2 |= ge1 & z;
        ge1 |= z;
      }
      out[w] = ~ge2 & attackable_[w];
    }
    return;
  }
  if (slack == 2) {
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t ge1 = 0;
      std::uint64_t ge2 = 0;
      std::uint64_t ge3 = 0;
      for (const core::PerspectiveIndex p : set) {
        const std::uint64_t z = ~rows[static_cast<std::size_t>(p) * words + w];
        ge3 |= ge2 & z;
        ge2 |= ge1 & z;
        ge1 |= z;
      }
      out[w] = ~ge3 & attackable_[w];
    }
    return;
  }
  // General (X, N-Y): bit-sliced vertical counters. For each word, add
  // every row's bits into planes[] with a carry-save adder (plane j holds
  // bit j of the 64 per-pair counts), then compute count >= required as
  // the complement of the borrow out of count - required.
  const unsigned planes_n = static_cast<unsigned>(std::bit_width(set.size()));
  for (std::size_t w = 0; w < words; ++w) {
    std::array<std::uint64_t, 17> planes = {};  // bit_width(max set size)
    for (const core::PerspectiveIndex p : set) {
      std::uint64_t carry = rows[static_cast<std::size_t>(p) * words + w];
      for (unsigned j = 0; carry != 0 && j < planes_n; ++j) {
        const std::uint64_t t = planes[j];
        planes[j] = t ^ carry;
        carry = t & carry;
      }
    }
    std::uint64_t borrow = 0;
    for (unsigned j = 0; j < planes_n; ++j) {
      const std::uint64_t r =
          (required >> j) & 1 ? ~std::uint64_t{0} : std::uint64_t{0};
      borrow = (~planes[j] & (r | borrow)) | (r & borrow);
    }
    out[w] = ~borrow & attackable_[w];
  }
}

std::size_t OutcomeMatrix::successes_for_victim(
    std::span<const std::uint64_t> mask, std::size_t victim) const {
  const std::size_t begin = victim * num_sites_;
  const std::size_t end = begin + num_sites_;
  const std::size_t first_word = begin / 64;
  const std::size_t last_word = (end - 1) / 64;
  const std::uint64_t head = ~std::uint64_t{0} << (begin % 64);
  // end % 64 == 0 means the range ends on a word boundary: full tail word.
  const std::uint64_t tail =
      end % 64 == 0 ? ~std::uint64_t{0} : ~(~std::uint64_t{0} << (end % 64));
  if (first_word == last_word) {
    return static_cast<std::size_t>(
        std::popcount(mask[first_word] & head & tail));
  }
  std::size_t count =
      static_cast<std::size_t>(std::popcount(mask[first_word] & head));
  for (std::size_t w = first_word + 1; w < last_word; ++w) {
    count += static_cast<std::size_t>(std::popcount(mask[w]));
  }
  count += static_cast<std::size_t>(std::popcount(mask[last_word] & tail));
  return count;
}

}  // namespace marcopolo::analysis
