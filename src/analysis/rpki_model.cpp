#include "analysis/rpki_model.hpp"

#include <stdexcept>

namespace marcopolo::analysis {

RpkiWeightedAnalyzer::RpkiWeightedAnalyzer(const ResilienceAnalyzer& plain,
                                           const ResilienceAnalyzer& rpki)
    : plain_(plain), rpki_(rpki) {
  if (plain.num_sites() != rpki.num_sites() ||
      plain.num_perspectives() != rpki.num_perspectives()) {
    throw std::invalid_argument("mismatched campaign datasets");
  }
}

std::vector<double> RpkiWeightedAnalyzer::per_victim_resilience(
    const mpic::DeploymentSpec& spec, double w) const {
  spec.check();
  return per_victim_resilience(spec.remotes, spec.policy.required(),
                               spec.primary, w);
}

std::vector<double> RpkiWeightedAnalyzer::per_victim_resilience(
    std::span<const core::PerspectiveIndex> remotes, std::size_t required,
    std::optional<core::PerspectiveIndex> primary, double w) const {
  if (w < 0.0 || w > 1.0) {
    throw std::invalid_argument("rpki fraction must be in [0, 1]");
  }
  const std::vector<double> p =
      plain_.per_victim_resilience(remotes, required, primary);
  const std::vector<double> r =
      rpki_.per_victim_resilience(remotes, required, primary);
  std::vector<double> out(p.size());
  for (std::size_t v = 0; v < p.size(); ++v) {
    out[v] = w * r[v] + (1.0 - w) * p[v];
  }
  return out;
}

ResilienceSummary RpkiWeightedAnalyzer::evaluate(
    const mpic::DeploymentSpec& spec, double w) const {
  return summarize(per_victim_resilience(spec, w));
}

}  // namespace marcopolo::analysis
