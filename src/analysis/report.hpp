// Plain-text table rendering for benches and examples.
#pragma once

#include <string>
#include <vector>

namespace marcopolo::analysis {

/// Fixed-width ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Resilience rendered like the paper's tables: 0..100, no decimals
/// ("87"), computed by rounding half up.
[[nodiscard]] std::string format_resilience(double value01);

/// Percentage with one decimal ("63.8%").
[[nodiscard]] std::string format_share(double value01);

}  // namespace marcopolo::analysis
