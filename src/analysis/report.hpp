// Plain-text table rendering for benches and examples.
#pragma once

#include <string>
#include <vector>

#include "marcopolo/orchestrator.hpp"

namespace marcopolo::analysis {

/// Fixed-width ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Resilience rendered like the paper's tables: 0..100, no decimals
/// ("87"), computed by rounding half up.
[[nodiscard]] std::string format_resilience(double value01);

/// Percentage with one decimal ("63.8%").
[[nodiscard]] std::string format_share(double value01);

/// Orchestrator campaign accounting rendered as a two-column table —
/// attempts, retries, loss events, DCV totals, virtual duration. The
/// orchestrator collects these on every run; route all human-facing
/// output through here so no example/bench reinvents the layout.
[[nodiscard]] std::string format_campaign_stats(
    const core::CampaignStats& stats);

/// format_campaign_stats() plus derived latency percentiles when
/// `snapshot` (an orchestrator-instrumented metrics snapshot) carries
/// the `orchestrator.attack_virtual_ms` histogram: p50/p95/p99 rows via
/// HistogramSnapshot::quantile. Null snapshot = plain table.
[[nodiscard]] std::string format_campaign_stats(
    const core::CampaignStats& stats, const obs::MetricsSnapshot* snapshot);

}  // namespace marcopolo::analysis
