// RPKI deployment models — paper §5.4 and Figure 2.
//
// The campaign produces two datasets per pair: plain equally-specific
// attacks ("no RPKI") and forged-origin prepend attacks ("RPKI", the best
// attack against a ROA-protected prefix). A deployment's resilience under a
// partial-RPKI world is the per-victim weighted sum
//     R(v) = w * R_rpki(v) + (1 - w) * R_plain(v)
// with w the fraction of prefixes protected by a valid ROA. The paper uses
// w = 0.56 for "current" (NIST RPKI Monitor, May 2025) and w = 1 for full
// deployment.
#pragma once

#include <optional>
#include <span>

#include "analysis/resilience.hpp"

namespace marcopolo::analysis {

inline constexpr double kNoRpki = 0.0;
inline constexpr double kCurrentRpkiFraction = 0.56;  ///< May 2025 [21].
inline constexpr double kFullRpki = 1.0;

class RpkiWeightedAnalyzer {
 public:
  /// Both analyzers must be built over stores with identical dimensions.
  RpkiWeightedAnalyzer(const ResilienceAnalyzer& plain,
                       const ResilienceAnalyzer& rpki);

  /// Per-victim weighted resilience for a deployment.
  [[nodiscard]] std::vector<double> per_victim_resilience(
      const mpic::DeploymentSpec& spec, double rpki_fraction) const;

  /// Same, from the raw deployment pieces (no spec allocation).
  [[nodiscard]] std::vector<double> per_victim_resilience(
      std::span<const core::PerspectiveIndex> remotes, std::size_t required,
      std::optional<core::PerspectiveIndex> primary,
      double rpki_fraction) const;

  [[nodiscard]] ResilienceSummary evaluate(const mpic::DeploymentSpec& spec,
                                           double rpki_fraction) const;

  [[nodiscard]] const ResilienceAnalyzer& plain() const { return plain_; }
  [[nodiscard]] const ResilienceAnalyzer& rpki() const { return rpki_; }

 private:
  const ResilienceAnalyzer& plain_;
  const ResilienceAnalyzer& rpki_;
};

}  // namespace marcopolo::analysis
