// The attack × defense resilience matrix.
//
// ISSUE-10's headline artifact: for every registered attack type, how
// well does MPIC hold up as the two transit-level defenses are deployed —
// ROV (RPKI route-origin validation, the counter to origin hijacks) at
// {none, partial, full} and RFC 9234 OTC (route-leak rejection) at
// {off, partial, on}? Each (rov, otc) grid point builds one testbed
// (same Internet seed, per-victim prefixes, one ROA per victim) and runs
// a single multi-attack campaign whose per-attack store planes are then
// scored with the Appendix-A resilience kernels.
//
// The report is a flat cell list (attack-major, then rov, then otc) and
// serializes to a small self-describing JSON artifact; `mpinspect matrix`
// renders it, and examples/attack_matrix.cpp produces it. The builder is
// deterministic: same config, same bytes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/resilience.hpp"
#include "bgp/attack_model.hpp"
#include "topo/internet.hpp"

namespace marcopolo::analysis {

struct AttackMatrixConfig {
  /// Topology every grid point regenerates (same seed → same Internet,
  /// so cells differ only in deployed defenses).
  topo::InternetConfig internet;
  /// Attack types to sweep; empty = every registered type.
  std::vector<bgp::AttackType> attacks;
  /// Fractions of transit ASes enforcing ROV / RFC 9234 OTC. The paper's
  /// qualitative story needs only {none, partial, full}.
  std::vector<double> rov_levels = {0.0, 0.5, 1.0};
  std::vector<double> otc_levels = {0.0, 0.5, 1.0};
  bgp::TieBreakMode tie_break = bgp::TieBreakMode::Hashed;
  std::uint64_t tie_break_seed = 0xCAFE;
  std::uint64_t rov_seed = 0x50A;
  std::uint64_t otc_seed = 0x07C;
  /// Campaign worker threads (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Quorum threshold for the "quorum" resilience column: the attack
  /// succeeds only if at least this many perspectives (of all of them)
  /// are hijacked. 2 is the paper's minimal multi-vantage corroboration;
  /// the "single" column is always quorum 1.
  std::size_t quorum_required = 2;
};

/// One grid cell: one attack type under one defense deployment.
struct AttackMatrixCell {
  bgp::AttackType attack = bgp::AttackType::EquallySpecific;
  double rov_fraction = 0.0;
  double otc_fraction = 0.0;
  /// Fraction of (attackable pair, perspective) verdicts that reached
  /// the adversary — the raw capture rate before any quorum logic.
  double hijack_rate = 0.0;
  /// Median/average victim resilience with quorum 1 (any hijacked
  /// perspective defeats validation) and with config.quorum_required.
  double single_median = 0.0;
  double single_average = 0.0;
  double quorum_median = 0.0;
  double quorum_average = 0.0;
};

struct AttackMatrixReport {
  std::size_t sites = 0;
  std::size_t perspectives = 0;
  std::size_t quorum_required = 0;
  std::vector<bgp::AttackType> attacks;
  std::vector<double> rov_levels;
  std::vector<double> otc_levels;
  /// attack-major, then rov level, then otc level.
  std::vector<AttackMatrixCell> cells;
};

/// Build the full matrix: |rov_levels| x |otc_levels| testbeds, one
/// multi-attack campaign each. Throws std::invalid_argument on an empty
/// level list or a duplicate attack type.
[[nodiscard]] AttackMatrixReport build_attack_matrix(
    const AttackMatrixConfig& config = {});

/// Write the report as a self-describing JSON document (versioned with
/// "matrix_schema": 1; attack types by registry name).
void write_attack_matrix_json(std::ostream& out,
                              const AttackMatrixReport& report);

/// Parse write_attack_matrix_json() output.
struct ReadAttackMatrix {
  bool ok = false;
  std::string error;
  AttackMatrixReport report;
};
[[nodiscard]] ReadAttackMatrix read_attack_matrix_json(std::istream& in);

/// Render the report as fixed-width text tables (one per attack type,
/// ROV rows × OTC columns), the `mpinspect matrix` output.
[[nodiscard]] std::string render_attack_matrix(
    const AttackMatrixReport& report);

}  // namespace marcopolo::analysis
