#include "analysis/bootstrap.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "analysis/resilience.hpp"

namespace marcopolo::analysis {

ConfidenceInterval bootstrap_statistic(
    std::span<const double> per_victim,
    const std::function<double(std::vector<double>&)>& statistic,
    std::size_t resamples, double confidence, std::uint64_t seed) {
  if (per_victim.empty()) {
    throw std::invalid_argument("bootstrap over empty sample");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("confidence must be in (0, 1)");
  }
  if (resamples < 10) {
    throw std::invalid_argument("need at least 10 resamples");
  }

  std::vector<double> original(per_victim.begin(), per_victim.end());
  ConfidenceInterval ci;
  ci.point = statistic(original);

  netsim::Rng rng(seed);
  std::vector<double> stats(resamples);
  std::vector<double> sample(per_victim.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < sample.size(); ++i) {
      sample[i] = per_victim[rng.index(per_victim.size())];
    }
    stats[r] = statistic(sample);
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto lo_idx = static_cast<std::size_t>(
      alpha * static_cast<double>(resamples));
  const auto hi_idx = std::min(
      resamples - 1,
      static_cast<std::size_t>((1.0 - alpha) * static_cast<double>(resamples)));
  ci.low = stats[lo_idx];
  ci.high = stats[hi_idx];
  return ci;
}

ConfidenceInterval bootstrap_median(std::span<const double> per_victim,
                                    std::size_t resamples, double confidence,
                                    std::uint64_t seed) {
  return bootstrap_statistic(
      per_victim, [](std::vector<double>& v) { return median_of(v); },
      resamples, confidence, seed);
}

ConfidenceInterval bootstrap_deployment_median(
    const ResilienceAnalyzer& analyzer,
    std::span<const core::PerspectiveIndex> remotes, std::size_t required,
    std::optional<core::PerspectiveIndex> primary, std::size_t resamples,
    double confidence, std::uint64_t seed) {
  const std::vector<double> per_victim =
      analyzer.per_victim_resilience(remotes, required, primary);
  return bootstrap_median(per_victim, resamples, confidence, seed);
}

ConfidenceInterval bootstrap_average(std::span<const double> per_victim,
                                     std::size_t resamples, double confidence,
                                     std::uint64_t seed) {
  return bootstrap_statistic(
      per_victim,
      [](std::vector<double>& v) {
        return std::accumulate(v.begin(), v.end(), 0.0) /
               static_cast<double>(v.size());
      },
      resamples, confidence, seed);
}

}  // namespace marcopolo::analysis
