#include "analysis/weighted.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace marcopolo::analysis {

namespace {

void check_weights(std::span<const double> per_victim,
                   std::span<const double> weights) {
  if (per_victim.size() != weights.size()) {
    throw std::invalid_argument("weights size != victim count");
  }
  if (per_victim.empty()) {
    throw std::invalid_argument("empty victim set");
  }
  double sum = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("negative weight");
    sum += w;
  }
  if (sum <= 0.0) throw std::invalid_argument("weights sum to zero");
}

}  // namespace

double weighted_average(std::span<const double> per_victim,
                        std::span<const double> weights) {
  check_weights(per_victim, weights);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < per_victim.size(); ++i) {
    num += per_victim[i] * weights[i];
    den += weights[i];
  }
  return num / den;
}

double weighted_percentile(std::span<const double> per_victim,
                           std::span<const double> weights, double p) {
  check_weights(per_victim, weights);
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  std::vector<std::size_t> order(per_victim.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return per_victim[a] < per_victim[b];
  });
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  const double threshold = total * p / 100.0;
  double cumulative = 0.0;
  for (const std::size_t idx : order) {
    cumulative += weights[idx];
    if (cumulative >= threshold) return per_victim[idx];
  }
  return per_victim[order.back()];
}

double weighted_median(std::span<const double> per_victim,
                       std::span<const double> weights) {
  return weighted_percentile(per_victim, weights, 50.0);
}

WeightedSummary summarize_weighted(std::span<const double> per_victim,
                                   std::span<const double> weights) {
  WeightedSummary s;
  s.median = weighted_median(per_victim, weights);
  s.average = weighted_average(per_victim, weights);
  s.p25 = weighted_percentile(per_victim, weights, 25.0);
  return s;
}

WeightedSummary evaluate_weighted(const ResilienceAnalyzer& analyzer,
                                  const mpic::DeploymentSpec& spec,
                                  std::span<const double> weights) {
  spec.check();
  return evaluate_weighted(analyzer, spec.remotes, spec.policy.required(),
                           spec.primary, weights);
}

WeightedSummary evaluate_weighted(const ResilienceAnalyzer& analyzer,
                                  std::span<const PerspectiveIndex> remotes,
                                  std::size_t required,
                                  std::optional<PerspectiveIndex> primary,
                                  std::span<const double> weights) {
  const auto per_victim =
      analyzer.per_victim_resilience(remotes, required, primary);
  return summarize_weighted(per_victim, weights);
}

}  // namespace marcopolo::analysis
