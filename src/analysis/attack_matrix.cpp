#include "analysis/attack_matrix.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analysis/report.hpp"
#include "marcopolo/fast_campaign.hpp"
#include "obs/json.hpp"

namespace marcopolo::analysis {

namespace {

/// All perspective indices of a store, the universal deployment set.
std::vector<PerspectiveIndex> all_perspectives(const ResultStore& store) {
  std::vector<PerspectiveIndex> out(store.num_perspectives());
  for (std::size_t p = 0; p < out.size(); ++p) {
    out[p] = static_cast<PerspectiveIndex>(p);
  }
  return out;
}

double hijack_rate_of(const ResultStore& store, std::size_t attack,
                      std::span<const PerspectiveIndex> set) {
  std::size_t hijacked = 0;
  std::size_t total = 0;
  const auto n = static_cast<core::SiteIndex>(store.num_sites());
  for (core::SiteIndex v = 0; v < n; ++v) {
    for (core::SiteIndex a = 0; a < n; ++a) {
      if (v == a) continue;
      total += set.size();
      hijacked += store.hijacked_count(attack, v, a, set);
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hijacked) /
                          static_cast<double>(total);
}

}  // namespace

AttackMatrixReport build_attack_matrix(const AttackMatrixConfig& config) {
  if (config.rov_levels.empty() || config.otc_levels.empty()) {
    throw std::invalid_argument("attack matrix needs at least one defense "
                                "level per axis");
  }
  AttackMatrixReport report;
  report.quorum_required = config.quorum_required;
  report.rov_levels = config.rov_levels;
  report.otc_levels = config.otc_levels;
  report.attacks = config.attacks;
  if (report.attacks.empty()) {
    const auto all = bgp::all_attack_types();
    report.attacks.assign(all.begin(), all.end());
  }

  // Cells are produced grid-point-major (one campaign per deployment)
  // but reported attack-major; index into the final layout directly.
  const std::size_t grid =
      config.rov_levels.size() * config.otc_levels.size();
  report.cells.resize(report.attacks.size() * grid);

  for (std::size_t ri = 0; ri < config.rov_levels.size(); ++ri) {
    for (std::size_t oi = 0; oi < config.otc_levels.size(); ++oi) {
      core::TestbedConfig tb;
      tb.internet = config.internet;
      tb.rov_fraction = config.rov_levels[ri];
      tb.rov_seed = config.rov_seed;
      tb.otc_fraction = config.otc_levels[oi];
      tb.otc_seed = config.otc_seed;
      const core::Testbed testbed(tb);

      core::FastCampaignConfig run;
      run.attacks = report.attacks;
      run.tie_break = config.tie_break;
      run.tie_break_seed = config.tie_break_seed;
      run.threads = config.threads;
      // Per-victim prefixes + one ROA per victim: without real ROAs a
      // ROV fraction is a no-op (everything is NotFound), and MAX_LEN
      // absence is what makes sub-prefix announcements ROV-invalid.
      run.per_victim_prefix = true;
      // The matrix's ROV axis is *transit* deployment; with edge ROV on,
      // the cloud perspectives would drop invalid origins at every grid
      // point and flatten the axis to a constant.
      run.cloud_edge_rov = false;
      bgp::RoaRegistry roas;
      for (std::size_t v = 0; v < testbed.sites().size(); ++v) {
        roas.add(bgp::Roa{
            run.victim_prefix(v),
            testbed.internet().graph().asn_of(testbed.sites()[v].node),
            std::nullopt});
      }
      run.roas = &roas;
      const ResultStore store = core::run_fast_campaign(testbed, run);

      report.sites = store.num_sites();
      report.perspectives = store.num_perspectives();
      const std::vector<PerspectiveIndex> everyone = all_perspectives(store);

      for (std::size_t ai = 0; ai < report.attacks.size(); ++ai) {
        // Plane-at-a-time scoring: the analyzer's kernels see a
        // single-attack store, so nothing downstream of extract_attack
        // knows the campaign was multi-attack.
        const ResultStore plane = store.extract_attack(ai);
        const ResilienceAnalyzer analyzer(plane);
        AttackMatrixCell& cell =
            report.cells[ai * grid + ri * config.otc_levels.size() + oi];
        cell.attack = report.attacks[ai];
        cell.rov_fraction = config.rov_levels[ri];
        cell.otc_fraction = config.otc_levels[oi];
        cell.hijack_rate = hijack_rate_of(store, ai, everyone);
        const ResilienceSummary single = summarize(
            analyzer.per_victim_resilience(everyone, 1, std::nullopt));
        cell.single_median = single.median;
        cell.single_average = single.average;
        const ResilienceSummary quorum =
            summarize(analyzer.per_victim_resilience(
                everyone, config.quorum_required, std::nullopt));
        cell.quorum_median = quorum.median;
        cell.quorum_average = quorum.average;
      }
    }
  }
  return report;
}

void write_attack_matrix_json(std::ostream& out,
                              const AttackMatrixReport& report) {
  out << "{\n  \"matrix_schema\": 1,\n"
      << "  \"sites\": " << report.sites << ",\n"
      << "  \"perspectives\": " << report.perspectives << ",\n"
      << "  \"quorum_required\": " << report.quorum_required << ",\n"
      << "  \"attacks\": [";
  for (std::size_t i = 0; i < report.attacks.size(); ++i) {
    out << (i ? ", " : "") << '"' << bgp::to_cstring(report.attacks[i])
        << '"';
  }
  out << "],\n  \"rov_levels\": [";
  for (std::size_t i = 0; i < report.rov_levels.size(); ++i) {
    out << (i ? ", " : "") << report.rov_levels[i];
  }
  out << "],\n  \"otc_levels\": [";
  for (std::size_t i = 0; i < report.otc_levels.size(); ++i) {
    out << (i ? ", " : "") << report.otc_levels[i];
  }
  out << "],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const AttackMatrixCell& c = report.cells[i];
    out << "    {\"attack\": \"" << bgp::to_cstring(c.attack)
        << "\", \"rov\": " << c.rov_fraction
        << ", \"otc\": " << c.otc_fraction
        << ", \"hijack_rate\": " << c.hijack_rate
        << ", \"single_median\": " << c.single_median
        << ", \"single_average\": " << c.single_average
        << ", \"quorum_median\": " << c.quorum_median
        << ", \"quorum_average\": " << c.quorum_average << "}"
        << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

ReadAttackMatrix read_attack_matrix_json(std::istream& in) {
  ReadAttackMatrix out;
  std::ostringstream buf;
  buf << in.rdbuf();
  obs::json::Value doc;
  try {
    doc = obs::json::parse(buf.str());
  } catch (const obs::json::ParseError& e) {
    out.error = e.what();
    return out;
  }
  if (!doc.is_object()) {
    out.error = "matrix document is not a JSON object";
    return out;
  }
  if (doc.u64_or("matrix_schema", 0) != 1) {
    out.error = "unsupported matrix_schema";
    return out;
  }
  AttackMatrixReport& r = out.report;
  r.sites = doc.u64_or("sites", 0);
  r.perspectives = doc.u64_or("perspectives", 0);
  r.quorum_required = doc.u64_or("quorum_required", 0);
  const auto read_levels = [&doc](const char* key,
                                  std::vector<double>& levels) {
    if (const obs::json::Value* arr = doc.find(key);
        arr != nullptr && arr->is_array()) {
      for (const obs::json::Value& v : arr->array()) {
        if (v.is_number()) levels.push_back(v.number());
      }
    }
  };
  read_levels("rov_levels", r.rov_levels);
  read_levels("otc_levels", r.otc_levels);
  if (const obs::json::Value* arr = doc.find("attacks");
      arr != nullptr && arr->is_array()) {
    for (const obs::json::Value& v : arr->array()) {
      if (!v.is_string()) continue;
      const auto type = bgp::attack_type_from_string(v.str());
      if (!type.has_value()) {
        out.error = "unknown attack type \"" + v.str() + "\"";
        return out;
      }
      r.attacks.push_back(*type);
    }
  }
  if (const obs::json::Value* arr = doc.find("cells");
      arr != nullptr && arr->is_array()) {
    for (const obs::json::Value& v : arr->array()) {
      if (!v.is_object()) continue;
      AttackMatrixCell cell;
      const auto type =
          bgp::attack_type_from_string(v.string_or("attack", ""));
      if (!type.has_value()) {
        out.error = "cell with unknown attack type";
        return out;
      }
      cell.attack = *type;
      cell.rov_fraction = v.number_or("rov", 0.0);
      cell.otc_fraction = v.number_or("otc", 0.0);
      cell.hijack_rate = v.number_or("hijack_rate", 0.0);
      cell.single_median = v.number_or("single_median", 0.0);
      cell.single_average = v.number_or("single_average", 0.0);
      cell.quorum_median = v.number_or("quorum_median", 0.0);
      cell.quorum_average = v.number_or("quorum_average", 0.0);
      r.cells.push_back(cell);
    }
  }
  if (r.cells.size() !=
      r.attacks.size() * r.rov_levels.size() * r.otc_levels.size()) {
    out.error = "cell count does not match attacks x rov x otc grid";
    return out;
  }
  out.ok = true;
  return out;
}

std::string render_attack_matrix(const AttackMatrixReport& report) {
  std::ostringstream out;
  out << "attack x defense resilience matrix (" << report.sites
      << " sites, " << report.perspectives << " perspectives; quorum "
      << report.quorum_required << ")\n"
      << "cells: median resilience single/quorum (0-100, higher = harder "
         "to attack), capture = raw hijacked verdict share\n";
  const std::size_t grid =
      report.rov_levels.size() * report.otc_levels.size();
  const auto level_name = [](double f) -> std::string {
    if (f <= 0.0) return "off";
    if (f >= 1.0) return "full";
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.0f%%", f * 100.0);
    return buf;
  };
  for (std::size_t ai = 0; ai < report.attacks.size(); ++ai) {
    std::vector<std::string> headers = {"ROV \\ OTC"};
    for (const double otc : report.otc_levels) {
      headers.push_back("otc " + level_name(otc));
    }
    TextTable table(std::move(headers));
    for (std::size_t ri = 0; ri < report.rov_levels.size(); ++ri) {
      std::vector<std::string> row = {"rov " +
                                      level_name(report.rov_levels[ri])};
      for (std::size_t oi = 0; oi < report.otc_levels.size(); ++oi) {
        const AttackMatrixCell& c =
            report.cells[ai * grid + ri * report.otc_levels.size() + oi];
        row.push_back(format_resilience(c.single_median) + "/" +
                      format_resilience(c.quorum_median) + " cap " +
                      format_share(c.hijack_rate));
      }
      table.add_row(std::move(row));
    }
    out << "\n[" << bgp::to_cstring(report.attacks[ai]) << "]\n"
        << table.to_string();
  }
  return out.str();
}

}  // namespace marcopolo::analysis
