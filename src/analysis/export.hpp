// JSON export of campaign results and analysis reports.
//
// The paper publishes its raw logs and ranked deployment lists on the MPIC
// Labs site; this module produces the equivalent machine-readable
// artifacts. Writer only — no JSON parsing happens anywhere in the stack.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "analysis/optimizer.hpp"
#include "marcopolo/testbed.hpp"

namespace marcopolo::analysis {

/// Escape a string for embedding in a JSON document.
[[nodiscard]] std::string json_escape(std::string_view text);

/// One deployment with its scores, e.g.
/// {"name":"...","policy":"(6, N-2)","primary":"us-east-1",
///  "remotes":["..."],"median":0.97,"average":0.86}
[[nodiscard]] std::string deployment_to_json(
    const RankedDeployment& deployment, const core::Testbed& testbed);

/// Ranked deployment list as a JSON array (pretty, one entry per line).
void write_ranked_json(std::ostream& out,
                       std::span<const RankedDeployment> deployments,
                       const core::Testbed& testbed);

/// Full per-victim resilience of one deployment:
/// {"deployment":..., "summary":{...}, "per_victim":{"Tokyo":0.9,...}}
void write_evaluation_json(std::ostream& out,
                           const mpic::DeploymentSpec& spec,
                           const ResilienceSummary& summary,
                           const core::Testbed& testbed);

}  // namespace marcopolo::analysis
