#include "analysis/export.hpp"

#include <ostream>
#include <sstream>

namespace marcopolo::analysis {

namespace {

std::string number(double v) {
  std::ostringstream out;
  out.precision(10);
  out << v;
  return out.str();
}

std::string perspective_name(const core::Testbed& testbed,
                             PerspectiveIndex p) {
  const auto& rec = testbed.perspectives().at(p);
  return std::string(topo::to_string_view(rec.provider)) + ":" +
         std::string(rec.region_name);
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string deployment_to_json(const RankedDeployment& deployment,
                               const core::Testbed& testbed) {
  std::ostringstream out;
  out << "{\"name\":\"" << json_escape(deployment.spec.name) << "\","
      << "\"policy\":\"" << json_escape(deployment.spec.policy.to_string())
      << "\",";
  if (deployment.spec.primary) {
    out << "\"primary\":\""
        << json_escape(perspective_name(testbed, *deployment.spec.primary))
        << "\",";
  }
  out << "\"remotes\":[";
  for (std::size_t i = 0; i < deployment.spec.remotes.size(); ++i) {
    if (i > 0) out << ",";
    out << "\""
        << json_escape(
               perspective_name(testbed, deployment.spec.remotes[i]))
        << "\"";
  }
  out << "],\"median\":" << number(deployment.score.median)
      << ",\"average\":" << number(deployment.score.average) << "}";
  return out.str();
}

void write_ranked_json(std::ostream& out,
                       std::span<const RankedDeployment> deployments,
                       const core::Testbed& testbed) {
  out << "[\n";
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    out << "  " << deployment_to_json(deployments[i], testbed);
    if (i + 1 < deployments.size()) out << ",";
    out << "\n";
  }
  out << "]\n";
}

void write_evaluation_json(std::ostream& out,
                           const mpic::DeploymentSpec& spec,
                           const ResilienceSummary& summary,
                           const core::Testbed& testbed) {
  out << "{\n  \"deployment\": "
      << deployment_to_json(
             RankedDeployment{
                 spec, ResilienceAnalyzer::Score{summary.median,
                                                 summary.average}},
             testbed)
      << ",\n  \"summary\": {\"median\":" << number(summary.median)
      << ",\"average\":" << number(summary.average)
      << ",\"p25\":" << number(summary.p25)
      << ",\"p5\":" << number(summary.p5) << "},\n  \"per_victim\": {";
  for (std::size_t v = 0; v < summary.per_victim.size(); ++v) {
    if (v > 0) out << ",";
    out << "\"" << json_escape(std::string(testbed.sites()[v].name))
        << "\":" << number(summary.per_victim[v]);
  }
  out << "}\n}\n";
}

}  // namespace marcopolo::analysis
