// RIR clustering analysis — paper §5.3 and Appendix B.
//
// A deployment's cluster signature is the tuple of per-RIR perspective
// counts sorted descending, e.g. (3,3,0,0,0) for six remotes split 3+3
// across two RIRs. The paper observes that top N-Y deployments cluster
// Y+1 perspectives per RIR, and place the primary in a separate RIR.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "analysis/optimizer.hpp"
#include "topo/rir.hpp"

namespace marcopolo::analysis {

/// Per-RIR remote counts, sorted descending (5 RIRs).
using ClusterSignature = std::array<std::uint8_t, 5>;

/// Signature of a set of remote perspectives.
[[nodiscard]] ClusterSignature cluster_signature(
    std::span<const PerspectiveIndex> remotes, std::span<const topo::Rir> rir_of);

/// Signature of a deployment's *remote* perspectives.
[[nodiscard]] ClusterSignature cluster_signature(
    const mpic::DeploymentSpec& spec, std::span<const topo::Rir> rir_of);

/// "(3,3,0,0,0)" — or "(3,3,1*,0,0)" when `primary_separate` marks a
/// primary perspective in its own (otherwise empty) RIR.
[[nodiscard]] std::string format_signature(const ClusterSignature& sig,
                                           bool primary_separate);

struct ClusterStats {
  /// Signature string -> fraction of analyzed deployments.
  std::map<std::string, double> frequency;
  /// Most common signature and its share.
  std::string top_signature;
  double top_share = 0.0;
  /// Fraction whose remotes form exactly ceil(X / (Y+1)) clusters of
  /// (Y+1) perspectives (the paper's hypothesis shape).
  double quorum_cluster_share = 0.0;
  /// Among deployments with a primary: share whose primary sits in an RIR
  /// with no remote perspective.
  double primary_separate_share = 0.0;
  std::size_t analyzed = 0;
};

/// Analyze the top-ranked deployments (Appendix B uses at most 150).
[[nodiscard]] ClusterStats analyze_clusters(
    std::span<const RankedDeployment> deployments,
    std::span<const topo::Rir> rir_of, std::size_t max_failures);

}  // namespace marcopolo::analysis
