// Resilience metrics — the paper's Appendix A, verbatim.
//
//   sigma(P, q, v, a) = 1 iff hijacked(P, v, a) < q                    (1)
//   R_victim(P, q, v) = sum_a sigma / (|N| - 1)                        (2)
//   R_avg(P, q)       = mean over victims                              (3)
//   R_med(P, q)       = median over victims (eq. 5's even/odd rule)    (5)
//
// Primary perspectives (§5.1) are an additional conjunct: an attack only
// succeeds if the primary is also hijacked.
//
// All kernels run on the packed OutcomeMatrix (see outcome_matrix.hpp),
// snapshotted from the store at construction. Two paths exist:
//
//   * the incremental Workspace (running per-pair hijack counts, updated
//     by unpacking packed words) for deep DFS walks where sets change by
//     one perspective per step, and
//   * the direct path (ScoreScratch + success_mask) that scores a whole
//     set with word-level AND/OR/bit-sliced reductions and popcounts,
//     skipping per-pair counters entirely.
//
// Both produce bit-identical scores; DESIGN.md §10 has the selection rule.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "analysis/outcome_matrix.hpp"
#include "marcopolo/result_store.hpp"
#include "mpic/deployment.hpp"

namespace marcopolo::analysis {

using core::PerspectiveIndex;
using core::ResultStore;

struct ResilienceSummary {
  double median = 0.0;
  double average = 0.0;
  double p25 = 0.0;  ///< 25th percentile (Fig. 2's blue line).
  double p5 = 0.0;   ///< §4.1's example custom metric.
  std::vector<double> per_victim;
};

/// Median per the paper's eq. (5): middle element, or mean of the two
/// middles for even counts. Values need not be sorted.
[[nodiscard]] double median_of(std::vector<double> values);

/// Nearest-rank percentile (p in [0,100]).
[[nodiscard]] double percentile_of(std::vector<double> values, double p);

/// Summary statistics from a per-victim resilience vector.
[[nodiscard]] ResilienceSummary summarize(std::vector<double> per_victim);

class ResilienceAnalyzer {
 public:
  explicit ResilienceAnalyzer(const ResultStore& store);

  [[nodiscard]] const ResultStore& store() const { return store_; }
  [[nodiscard]] const OutcomeMatrix& matrix() const { return matrix_; }
  [[nodiscard]] std::size_t num_sites() const { return store_.num_sites(); }
  [[nodiscard]] std::size_t num_perspectives() const {
    return store_.num_perspectives();
  }

  /// R_victim for every victim under the deployment.
  [[nodiscard]] std::vector<double> per_victim_resilience(
      const mpic::DeploymentSpec& spec) const;

  /// R_victim from the raw pieces of a deployment (no spec allocation).
  [[nodiscard]] std::vector<double> per_victim_resilience(
      std::span<const PerspectiveIndex> remotes, std::size_t required,
      std::optional<PerspectiveIndex> primary) const;

  /// Full Appendix A evaluation.
  [[nodiscard]] ResilienceSummary evaluate(
      const mpic::DeploymentSpec& spec) const;

  // ---- Incremental kernel (optimizer deep-walk path) ----

  struct Workspace {
    /// hijacked-count per ordered pair for the current candidate set.
    /// 16-bit: a deployment can legitimately contain every perspective
    /// (PerspectiveIndex is 16-bit), and an 8-bit counter silently wraps
    /// past 255 perspectives, corrupting every score downstream.
    /// Padded to words_per_row * 64 entries so add/remove can unpack
    /// whole 64-bit words without a tail branch.
    std::vector<std::uint16_t> counts;
  };

  [[nodiscard]] Workspace make_workspace() const {
    return Workspace{
        std::vector<std::uint16_t>(matrix_.words_per_row() * 64, 0)};
  }
  void add_perspective(Workspace& ws, PerspectiveIndex p) const;
  void remove_perspective(Workspace& ws, PerspectiveIndex p) const;
  /// True when every count is zero — the state a balanced add/remove walk
  /// must return the workspace to (debug-asserted by the optimizer).
  [[nodiscard]] static bool is_zero(const Workspace& ws);

  struct Score {
    double median = 0.0;
    double average = 0.0;
    /// Ordering per eqs. (6)-(7): median first, average as tie break.
    [[nodiscard]] friend bool operator<(const Score& a, const Score& b) {
      if (a.median != b.median) return a.median < b.median;
      return a.average < b.average;
    }
    [[nodiscard]] friend bool operator==(const Score& a,
                                         const Score& b) = default;
  };

  /// Score the workspace's current set under quorum `required` (= X - Y),
  /// optionally conditioning on a primary perspective.
  [[nodiscard]] Score score(const Workspace& ws, std::size_t required,
                            std::optional<PerspectiveIndex> primary) const;

  // ---- Direct kernel (whole-set word reductions, no counters) ----

  /// Reusable scratch for the direct path. Allocate once (make_scratch),
  /// reuse across any number of build/score calls — nothing in it persists
  /// between calls except capacity.
  struct ScoreScratch {
    std::vector<std::uint64_t> mask;    ///< success mask, words_per_row
    std::vector<std::uint64_t> masked;  ///< mask ∧ primary row
    /// Histogram of integer defended-counts, num_sites bins (a victim can
    /// defend against at most num_sites - 1 adversaries). Every
    /// per-victim value is defended / (n - 1) with integer defended, so
    /// the median comes from a counting scan instead of a sort — division
    /// by a positive constant is monotone, making the result bit-identical
    /// to sorting the doubles.
    std::vector<std::uint32_t> defended_hist;
  };

  [[nodiscard]] ScoreScratch make_scratch() const;

  /// Build the attack-success mask for `set` under `required` into
  /// scratch.mask. Splitting this from scoring lets one mask serve many
  /// primaries (attach_primaries walks exactly that pattern).
  void build_success_mask(std::span<const PerspectiveIndex> set,
                          std::size_t required, ScoreScratch& scratch) const;

  /// Score scratch.mask, optionally ANDing in a primary row first.
  [[nodiscard]] Score score_from_mask(
      ScoreScratch& scratch, std::optional<PerspectiveIndex> primary) const;

  /// build_success_mask + score_from_mask in one call.
  [[nodiscard]] Score score_set(std::span<const PerspectiveIndex> set,
                                std::size_t required,
                                std::optional<PerspectiveIndex> primary,
                                ScoreScratch& scratch) const;

 private:
  const ResultStore& store_;
  OutcomeMatrix matrix_;
  /// resilience_of_[d] = d / (n - 1) for every possible integer
  /// defended-count, computed once with the exact expression the scoring
  /// loops used to evaluate per victim. Indexing the cached result of the
  /// identical IEEE division is bit-identical to redoing it — and removes
  /// n divides from every score in the optimizer's hot loop.
  std::vector<double> resilience_of_;
};

}  // namespace marcopolo::analysis
