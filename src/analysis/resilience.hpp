// Resilience metrics — the paper's Appendix A, verbatim.
//
//   sigma(P, q, v, a) = 1 iff hijacked(P, v, a) < q                    (1)
//   R_victim(P, q, v) = sum_a sigma / (|N| - 1)                        (2)
//   R_avg(P, q)       = mean over victims                              (3)
//   R_med(P, q)       = median over victims (eq. 5's even/odd rule)    (5)
//
// Primary perspectives (§5.1) are an additional conjunct: an attack only
// succeeds if the primary is also hijacked.
//
// The analyzer also exposes an incremental workspace (running per-pair
// hijack counts) so the optimizer can walk combination space with O(pairs)
// updates per step instead of re-summing each candidate set.
#pragma once

#include <optional>
#include <vector>

#include "marcopolo/result_store.hpp"
#include "mpic/deployment.hpp"

namespace marcopolo::analysis {

using core::PerspectiveIndex;
using core::ResultStore;

struct ResilienceSummary {
  double median = 0.0;
  double average = 0.0;
  double p25 = 0.0;  ///< 25th percentile (Fig. 2's blue line).
  double p5 = 0.0;   ///< §4.1's example custom metric.
  std::vector<double> per_victim;
};

/// Median per the paper's eq. (5): middle element, or mean of the two
/// middles for even counts. Values need not be sorted.
[[nodiscard]] double median_of(std::vector<double> values);

/// Nearest-rank percentile (p in [0,100]).
[[nodiscard]] double percentile_of(std::vector<double> values, double p);

/// Summary statistics from a per-victim resilience vector.
[[nodiscard]] ResilienceSummary summarize(std::vector<double> per_victim);

class ResilienceAnalyzer {
 public:
  explicit ResilienceAnalyzer(const ResultStore& store);

  [[nodiscard]] const ResultStore& store() const { return store_; }
  [[nodiscard]] std::size_t num_sites() const { return store_.num_sites(); }
  [[nodiscard]] std::size_t num_perspectives() const {
    return store_.num_perspectives();
  }

  /// R_victim for every victim under the deployment.
  [[nodiscard]] std::vector<double> per_victim_resilience(
      const mpic::DeploymentSpec& spec) const;

  /// Full Appendix A evaluation.
  [[nodiscard]] ResilienceSummary evaluate(
      const mpic::DeploymentSpec& spec) const;

  // ---- Incremental kernel (optimizer fast path) ----

  struct Workspace {
    /// hijacked-count per ordered pair for the current candidate set.
    /// 16-bit: a deployment can legitimately contain every perspective
    /// (PerspectiveIndex is 16-bit), and an 8-bit counter silently wraps
    /// past 255 perspectives, corrupting every score downstream.
    std::vector<std::uint16_t> counts;
  };

  [[nodiscard]] Workspace make_workspace() const {
    return Workspace{std::vector<std::uint16_t>(store_.num_pairs(), 0)};
  }
  void add_perspective(Workspace& ws, PerspectiveIndex p) const;
  void remove_perspective(Workspace& ws, PerspectiveIndex p) const;

  struct Score {
    double median = 0.0;
    double average = 0.0;
    /// Ordering per eqs. (6)-(7): median first, average as tie break.
    [[nodiscard]] friend bool operator<(const Score& a, const Score& b) {
      if (a.median != b.median) return a.median < b.median;
      return a.average < b.average;
    }
    [[nodiscard]] friend bool operator==(const Score& a,
                                         const Score& b) = default;
  };

  /// Score the workspace's current set under quorum `required` (= X - Y),
  /// optionally conditioning on a primary perspective.
  [[nodiscard]] Score score(const Workspace& ws, std::size_t required,
                            std::optional<PerspectiveIndex> primary) const;

 private:
  const ResultStore& store_;
};

}  // namespace marcopolo::analysis
