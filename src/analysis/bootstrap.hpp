// Bootstrap confidence intervals for resilience statistics.
//
// The campaign measures |N| = 32 victims; median/percentile statistics on
// 32 samples carry real estimation noise. Resampling victims with
// replacement gives percentile-bootstrap intervals, so reported resilience
// can be published as "97 [90, 100]" instead of a bare point estimate.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "analysis/resilience.hpp"
#include "netsim/random.hpp"

namespace marcopolo::analysis {

struct ConfidenceInterval {
  double point = 0.0;
  double low = 0.0;
  double high = 0.0;
};

/// Percentile-bootstrap CI of an arbitrary statistic of the per-victim
/// resilience vector. `statistic` is called on each resample (the vector
/// may be reordered freely). `confidence` in (0, 1), e.g. 0.95.
[[nodiscard]] ConfidenceInterval bootstrap_statistic(
    std::span<const double> per_victim,
    const std::function<double(std::vector<double>&)>& statistic,
    std::size_t resamples = 2000, double confidence = 0.95,
    std::uint64_t seed = 0xB007);

/// CI of the median (paper eq. (5) semantics).
[[nodiscard]] ConfidenceInterval bootstrap_median(
    std::span<const double> per_victim, std::size_t resamples = 2000,
    double confidence = 0.95, std::uint64_t seed = 0xB007);

/// CI of the mean.
[[nodiscard]] ConfidenceInterval bootstrap_average(
    std::span<const double> per_victim, std::size_t resamples = 2000,
    double confidence = 0.95, std::uint64_t seed = 0xB007);

/// CI of a deployment's median resilience, computed straight from the
/// packed analyzer (per_victim_resilience over the OutcomeMatrix) without
/// materializing a DeploymentSpec.
[[nodiscard]] ConfidenceInterval bootstrap_deployment_median(
    const ResilienceAnalyzer& analyzer,
    std::span<const core::PerspectiveIndex> remotes, std::size_t required,
    std::optional<core::PerspectiveIndex> primary,
    std::size_t resamples = 2000, double confidence = 0.95,
    std::uint64_t seed = 0xB007);

}  // namespace marcopolo::analysis
