// Victim-weighted resilience — the paper's §4.4.2 open question.
//
// All victims are equal in R_med, but real attack exposure is not uniform:
// cryptocurrency platforms are hijacked far more often than average
// domains. These helpers compute resilience statistics under an arbitrary
// victim weighting, so a CA can optimize for the victims attackers
// actually target.
#pragma once

#include <optional>
#include <span>

#include "analysis/resilience.hpp"

namespace marcopolo::analysis {

/// Weighted mean of per-victim resilience. Weights need not be normalized;
/// they must be non-negative with a positive sum.
[[nodiscard]] double weighted_average(std::span<const double> per_victim,
                                      std::span<const double> weights);

/// Weighted median: the smallest resilience value v such that victims with
/// resilience <= v hold at least half the total weight.
[[nodiscard]] double weighted_median(std::span<const double> per_victim,
                                     std::span<const double> weights);

/// Weighted p-th percentile by the same cumulative-weight rule.
[[nodiscard]] double weighted_percentile(std::span<const double> per_victim,
                                         std::span<const double> weights,
                                         double p);

struct WeightedSummary {
  double median = 0.0;
  double average = 0.0;
  double p25 = 0.0;
};

[[nodiscard]] WeightedSummary summarize_weighted(
    std::span<const double> per_victim, std::span<const double> weights);

/// Evaluate a deployment under victim weights.
[[nodiscard]] WeightedSummary evaluate_weighted(
    const ResilienceAnalyzer& analyzer, const mpic::DeploymentSpec& spec,
    std::span<const double> weights);

/// Same, from the raw deployment pieces (no spec allocation).
[[nodiscard]] WeightedSummary evaluate_weighted(
    const ResilienceAnalyzer& analyzer,
    std::span<const PerspectiveIndex> remotes, std::size_t required,
    std::optional<PerspectiveIndex> primary, std::span<const double> weights);

}  // namespace marcopolo::analysis
