#include "analysis/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace marcopolo::analysis {

double median_of(std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("median of empty set");
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double percentile_of(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile of empty set");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return values[rank == 0 ? 0 : rank - 1];
}

ResilienceSummary summarize(std::vector<double> per_victim) {
  ResilienceSummary s;
  s.median = median_of(per_victim);
  s.average = std::accumulate(per_victim.begin(), per_victim.end(), 0.0) /
              static_cast<double>(per_victim.size());
  s.p25 = percentile_of(per_victim, 25.0);
  s.p5 = percentile_of(per_victim, 5.0);
  s.per_victim = std::move(per_victim);
  return s;
}

ResilienceAnalyzer::ResilienceAnalyzer(const ResultStore& store)
    : store_(store) {
  if (store_.num_sites() < 2) {
    throw std::invalid_argument("need at least two BGP nodes");
  }
}

std::vector<double> ResilienceAnalyzer::per_victim_resilience(
    const mpic::DeploymentSpec& spec) const {
  spec.check();
  Workspace ws = make_workspace();
  for (const PerspectiveIndex p : spec.remotes) add_perspective(ws, p);

  const std::size_t n = store_.num_sites();
  const std::size_t required = spec.policy.required();
  const std::uint8_t* primary_bytes =
      spec.primary ? store_.hijack_bytes(*spec.primary) : nullptr;

  std::vector<double> out(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t defended = 0;
    for (std::size_t a = 0; a < n; ++a) {
      if (a == v) continue;
      const std::size_t idx = v * n + a;
      const bool attack_ok =
          ws.counts[idx] >= required &&
          (primary_bytes == nullptr || primary_bytes[idx] != 0);
      if (!attack_ok) ++defended;
    }
    out[v] = static_cast<double>(defended) / static_cast<double>(n - 1);
  }
  return out;
}

ResilienceSummary ResilienceAnalyzer::evaluate(
    const mpic::DeploymentSpec& spec) const {
  return summarize(per_victim_resilience(spec));
}

void ResilienceAnalyzer::add_perspective(Workspace& ws,
                                         PerspectiveIndex p) const {
  const std::uint8_t* bytes = store_.hijack_bytes(p);
  const std::size_t n = ws.counts.size();
  for (std::size_t i = 0; i < n; ++i) {
    ws.counts[i] = static_cast<std::uint16_t>(ws.counts[i] + bytes[i]);
  }
}

void ResilienceAnalyzer::remove_perspective(Workspace& ws,
                                            PerspectiveIndex p) const {
  const std::uint8_t* bytes = store_.hijack_bytes(p);
  const std::size_t n = ws.counts.size();
  for (std::size_t i = 0; i < n; ++i) {
    ws.counts[i] = static_cast<std::uint16_t>(ws.counts[i] - bytes[i]);
  }
}

ResilienceAnalyzer::Score ResilienceAnalyzer::score(
    const Workspace& ws, std::size_t required,
    std::optional<PerspectiveIndex> primary) const {
  const std::size_t n = store_.num_sites();
  const std::uint8_t* primary_bytes =
      primary ? store_.hijack_bytes(*primary) : nullptr;

  // Per-victim resilience values; kept on the stack-ish small vector.
  std::vector<double> per_victim(n);
  double sum = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t defended = 0;
    const std::size_t row = v * n;
    for (std::size_t a = 0; a < n; ++a) {
      if (a == v) continue;
      const bool attack_ok =
          ws.counts[row + a] >= required &&
          (primary_bytes == nullptr || primary_bytes[row + a] != 0);
      if (!attack_ok) ++defended;
    }
    per_victim[v] = static_cast<double>(defended) / static_cast<double>(n - 1);
    sum += per_victim[v];
  }
  Score s;
  s.average = sum / static_cast<double>(n);
  s.median = median_of(std::move(per_victim));
  return s;
}

}  // namespace marcopolo::analysis
