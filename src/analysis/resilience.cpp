#include "analysis/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace marcopolo::analysis {

double median_of(std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("median of empty set");
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double percentile_of(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile of empty set");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return values[rank == 0 ? 0 : rank - 1];
}

ResilienceSummary summarize(std::vector<double> per_victim) {
  ResilienceSummary s;
  s.median = median_of(per_victim);
  s.average = std::accumulate(per_victim.begin(), per_victim.end(), 0.0) /
              static_cast<double>(per_victim.size());
  s.p25 = percentile_of(per_victim, 25.0);
  s.p5 = percentile_of(per_victim, 5.0);
  s.per_victim = std::move(per_victim);
  return s;
}

ResilienceAnalyzer::ResilienceAnalyzer(const ResultStore& store)
    : store_(store), matrix_(store) {
  if (store_.num_sites() < 2) {
    throw std::invalid_argument("need at least two BGP nodes");
  }
  const std::size_t n = store_.num_sites();
  resilience_of_.resize(n);
  for (std::size_t d = 0; d < n; ++d) {
    resilience_of_[d] = static_cast<double>(d) / static_cast<double>(n - 1);
  }
}

std::vector<double> ResilienceAnalyzer::per_victim_resilience(
    const mpic::DeploymentSpec& spec) const {
  spec.check();
  return per_victim_resilience(spec.remotes, spec.policy.required(),
                               spec.primary);
}

std::vector<double> ResilienceAnalyzer::per_victim_resilience(
    std::span<const PerspectiveIndex> remotes, std::size_t required,
    std::optional<PerspectiveIndex> primary) const {
  ScoreScratch scratch = make_scratch();
  build_success_mask(remotes, required, scratch);
  std::span<const std::uint64_t> mask = scratch.mask;
  if (primary) {
    const auto row = matrix_.row(*primary);
    for (std::size_t w = 0; w < row.size(); ++w) {
      scratch.masked[w] = scratch.mask[w] & row[w];
    }
    mask = scratch.masked;
  }
  const std::size_t n = store_.num_sites();
  std::vector<double> out(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t defended =
        (n - 1) - matrix_.successes_for_victim(mask, v);
    out[v] = resilience_of_[defended];
  }
  return out;
}

ResilienceSummary ResilienceAnalyzer::evaluate(
    const mpic::DeploymentSpec& spec) const {
  return summarize(per_victim_resilience(spec));
}

void ResilienceAnalyzer::add_perspective(Workspace& ws,
                                         PerspectiveIndex p) const {
  const auto row = matrix_.row(p);
  std::uint16_t* counts = ws.counts.data();
  for (std::size_t w = 0; w < row.size(); ++w) {
    const std::uint64_t bits = row[w];
    std::uint16_t* chunk = counts + w * 64;
    for (unsigned j = 0; j < 64; ++j) {
      chunk[j] = static_cast<std::uint16_t>(chunk[j] + ((bits >> j) & 1));
    }
  }
}

void ResilienceAnalyzer::remove_perspective(Workspace& ws,
                                            PerspectiveIndex p) const {
  const auto row = matrix_.row(p);
  std::uint16_t* counts = ws.counts.data();
  for (std::size_t w = 0; w < row.size(); ++w) {
    const std::uint64_t bits = row[w];
    std::uint16_t* chunk = counts + w * 64;
    for (unsigned j = 0; j < 64; ++j) {
      chunk[j] = static_cast<std::uint16_t>(chunk[j] - ((bits >> j) & 1));
    }
  }
}

bool ResilienceAnalyzer::is_zero(const Workspace& ws) {
  return std::all_of(ws.counts.begin(), ws.counts.end(),
                     [](std::uint16_t c) { return c == 0; });
}

ResilienceAnalyzer::Score ResilienceAnalyzer::score(
    const Workspace& ws, std::size_t required,
    std::optional<PerspectiveIndex> primary) const {
  const std::size_t n = store_.num_sites();
  const std::uint64_t* primary_row =
      primary ? matrix_.row(*primary).data() : nullptr;

  // Per-victim resilience values; kept on the stack-ish small vector.
  std::vector<double> per_victim(n);
  double sum = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t defended = 0;
    const std::size_t row = v * n;
    for (std::size_t a = 0; a < n; ++a) {
      if (a == v) continue;
      const std::size_t idx = row + a;
      const bool attack_ok =
          ws.counts[idx] >= required &&
          (primary_row == nullptr ||
           ((primary_row[idx / 64] >> (idx % 64)) & 1) != 0);
      if (!attack_ok) ++defended;
    }
    per_victim[v] = resilience_of_[defended];
    sum += per_victim[v];
  }
  Score s;
  s.average = sum / static_cast<double>(n);
  s.median = median_of(std::move(per_victim));
  return s;
}

ResilienceAnalyzer::ScoreScratch ResilienceAnalyzer::make_scratch() const {
  ScoreScratch scratch;
  scratch.mask.resize(matrix_.words_per_row());
  scratch.masked.resize(matrix_.words_per_row());
  scratch.defended_hist.resize(store_.num_sites());
  return scratch;
}

void ResilienceAnalyzer::build_success_mask(
    std::span<const PerspectiveIndex> set, std::size_t required,
    ScoreScratch& scratch) const {
  matrix_.success_mask(set, required, scratch.mask);
}

ResilienceAnalyzer::Score ResilienceAnalyzer::score_from_mask(
    ScoreScratch& scratch, std::optional<PerspectiveIndex> primary) const {
  std::span<const std::uint64_t> mask = scratch.mask;
  if (primary) {
    const auto row = matrix_.row(*primary);
    for (std::size_t w = 0; w < row.size(); ++w) {
      scratch.masked[w] = scratch.mask[w] & row[w];
    }
    mask = scratch.masked;
  }
  const std::size_t n = store_.num_sites();
  std::uint32_t* hist = scratch.defended_hist.data();
  std::fill_n(hist, n, 0);
  const double* values = resilience_of_.data();
  const std::uint64_t* words = mask.data();
  // Victim rows are n consecutive bits in pair order; walk them with a
  // running (word, bit-offset) cursor so each row costs one or two
  // popcounts and no per-victim index arithmetic.
  const std::uint64_t row_mask =
      n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  double sum = 0.0;
  std::size_t w = 0;
  std::size_t off = 0;
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t successes;
    if (off + n <= 64) {
      successes = static_cast<std::size_t>(
          std::popcount((words[w] >> off) & row_mask));
      off += n;
      if (off == 64) {
        off = 0;
        ++w;
      }
    } else {
      const std::size_t hi = off + n - 64;
      successes = static_cast<std::size_t>(std::popcount(words[w] >> off)) +
                  static_cast<std::size_t>(std::popcount(
                      words[w + 1] & ((std::uint64_t{1} << hi) - 1)));
      ++w;
      off = hi;
    }
    const std::size_t defended = (n - 1) - successes;
    ++hist[defended];
    // Same value and accumulation order as the scalar loop — the double
    // sum must stay bit-identical.
    sum += values[defended];
  }
  // Median via a counting scan over the integer defended values instead
  // of sorting doubles: every per-victim value is d / (n-1), and division
  // by a positive constant is monotone, so rank order over the doubles
  // equals rank order over the integers. The element(s) std::sort would
  // put at ranks n/2 - 1 and n/2 are found by cumulative count and
  // converted through the same resilience_of_ table — a bit-identical
  // median under eq. (5)'s even/odd rule, at O(n) instead of O(n log n)
  // per score.
  const auto value_at_rank = [&](std::size_t rank) {
    std::size_t seen = 0;
    for (std::size_t d = 0; d < n; ++d) {
      seen += hist[d];
      if (seen > rank) return values[d];
    }
    return 1.0;  // unreachable: every rank < n is covered above
  };
  Score s;
  s.average = sum / static_cast<double>(n);
  s.median = n % 2 == 1
                 ? value_at_rank(n / 2)
                 : (value_at_rank(n / 2 - 1) + value_at_rank(n / 2)) / 2.0;
  return s;
}

ResilienceAnalyzer::Score ResilienceAnalyzer::score_set(
    std::span<const PerspectiveIndex> set, std::size_t required,
    std::optional<PerspectiveIndex> primary, ScoreScratch& scratch) const {
  if (required > set.size()) {
    // No quorum can form, so every pair is defended regardless of primary:
    // each per-victim value is (n-1)/(n-1), exactly 1.0, and the integer
    // sum n * 1.0 divides back to exactly 1.0 — the kernels can be skipped
    // without changing a bit.
    return Score{1.0, 1.0};
  }
  build_success_mask(set, required, scratch);
  return score_from_mask(scratch, primary);
}

}  // namespace marcopolo::analysis
