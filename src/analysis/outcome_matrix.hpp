// The columnar hijack matrix every analysis kernel runs on.
//
// One bit per ordered (victim, adversary) pair, perspective-major: row p,
// bit pair_index(v, a) = v * num_sites + a is 1 iff perspective p was
// hijacked for that pair. Rows are packed 64 pairs to a std::uint64_t,
// words_per_row() = ceil(num_pairs / 64) words each; bits at positions
// >= num_pairs() in a row's tail word are always zero (the tail-mask
// invariant), so whole-word reductions never see garbage.
//
// Built once from a completed ResultStore (a snapshot — later record()
// calls on the store are not reflected), the matrix serves two kernels:
//
//   * success_mask(): for a perspective set S and quorum threshold
//     `required`, compute the bit mask of pairs where the attack succeeds
//     (hijacked count within S >= required). required == 1 is an OR
//     reduction over rows, required == |S| an AND reduction; anything in
//     between runs a bit-sliced vertical counter (carry-save adders per
//     word, borrow-propagating >= compare), so cost is
//     O(words * |S| * bit_width(|S|)) with no per-pair counters.
//   * per-victim popcounts over the resulting mask, which is all eq. (2)
//     of Appendix A needs.
//
// The mask is pre-ANDed with attackable() — the off-diagonal, tail-masked
// pair set — so diagonal (v == v) bits can never leak into scores.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "marcopolo/result_store.hpp"

namespace marcopolo::analysis {

class OutcomeMatrix {
 public:
  /// Snapshot of the store's first attack plane (the whole store for a
  /// single-attack campaign).
  explicit OutcomeMatrix(const core::ResultStore& store)
      : OutcomeMatrix(store, 0) {}
  /// Snapshot of one attack plane of a multi-attack store; throws
  /// std::out_of_range past num_attacks().
  OutcomeMatrix(const core::ResultStore& store, std::size_t attack);

  [[nodiscard]] std::size_t num_sites() const { return num_sites_; }
  [[nodiscard]] std::size_t num_perspectives() const {
    return num_perspectives_;
  }
  [[nodiscard]] std::size_t num_pairs() const {
    return num_sites_ * num_sites_;
  }
  [[nodiscard]] std::size_t words_per_row() const { return words_per_row_; }

  /// One perspective's packed hijack row (tail bits zero).
  [[nodiscard]] std::span<const std::uint64_t> row(
      core::PerspectiveIndex p) const {
    return {words_.data() + static_cast<std::size_t>(p) * words_per_row_,
            words_per_row_};
  }

  /// Pairs that exist as attacks: off-diagonal (a != v) and < num_pairs().
  [[nodiscard]] std::span<const std::uint64_t> attackable() const {
    return attackable_;
  }

  [[nodiscard]] bool bit(core::PerspectiveIndex p, std::size_t pair) const {
    return (row(p)[pair / 64] >> (pair % 64)) & 1;
  }

  /// Fill `out` (words_per_row() words) with the attack-success mask for
  /// quorum threshold `required` over perspective set `set`: bit pair is 1
  /// iff at least `required` perspectives of `set` are hijacked for the
  /// pair AND the pair is attackable. required == 0 means every attackable
  /// pair succeeds; required > |set| means none can.
  void success_mask(std::span<const core::PerspectiveIndex> set,
                    std::size_t required, std::span<std::uint64_t> out) const;

  /// Popcount of mask bits in victim v's pair range [v*n, v*n + n) — the
  /// number of adversaries whose attack succeeds against v.
  [[nodiscard]] std::size_t successes_for_victim(
      std::span<const std::uint64_t> mask, std::size_t victim) const;

 private:
  std::size_t num_sites_ = 0;
  std::size_t num_perspectives_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;       // perspective-major packed rows
  std::vector<std::uint64_t> attackable_;  // off-diagonal ∧ tail mask
};

}  // namespace marcopolo::analysis
