#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace marcopolo::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width != header width");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  const auto emit_rule = [&] {
    out << "+";
    for (const std::size_t w : width) out << std::string(w + 2, '-') << "+";
    out << "\n";
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string format_resilience(double value01) {
  const long rounded = std::lround(value01 * 100.0);
  return std::to_string(rounded);
}

std::string format_share(double value01) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  out << value01 * 100.0 << "%";
  return out.str();
}

std::string format_campaign_stats(const core::CampaignStats& stats) {
  return format_campaign_stats(stats, nullptr);
}

std::string format_campaign_stats(const core::CampaignStats& stats,
                                  const obs::MetricsSnapshot* snapshot) {
  TextTable table({"Campaign stat", "Value"});
  table.add_row({"attacks completed", std::to_string(stats.attacks_completed)});
  table.add_row({"attack attempts", std::to_string(stats.attack_attempts)});
  table.add_row({"retries", std::to_string(stats.retries)});
  table.add_row({"incomplete attacks",
                 std::to_string(stats.incomplete_attacks)});
  table.add_row({"announcements", std::to_string(stats.announcements)});
  table.add_row({"DCV validations", std::to_string(stats.validations)});
  table.add_row({"corroborations passed",
                 std::to_string(stats.dcv_corroborations_passed)});
  table.add_row({"perspective losses",
                 std::to_string(stats.perspective_losses)});
  std::ostringstream duration;
  duration.setf(std::ios::fixed);
  duration.precision(1);
  duration << netsim::to_hours(stats.duration) << " h virtual";
  table.add_row({"duration", duration.str()});
  if (snapshot != nullptr) {
    if (const obs::HistogramSnapshot* h =
            snapshot->histogram("orchestrator.attack_virtual_ms")) {
      const auto row = [&](const char* label, double q) {
        std::ostringstream cell;
        cell.setf(std::ios::fixed);
        cell.precision(0);
        cell << h->quantile(q) << " ms virtual";
        table.add_row({label, cell.str()});
      };
      row("attack latency p50", 0.50);
      row("attack latency p95", 0.95);
      row("attack latency p99", 0.99);
    }
  }
  return table.to_string();
}

}  // namespace marcopolo::analysis
