#include "analysis/optimizer.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <memory>
#include <queue>
#include <set>
#include <stdexcept>
#include <thread>

namespace marcopolo::analysis {

namespace {

/// Bounded collector keeping the top-k scored perspective sets. The
/// ordering is total — score first, then lexicographically smaller set —
/// so collection order (and hence threading) cannot change the result.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  void offer(const std::vector<PerspectiveIndex>& set,
             ResilienceAnalyzer::Score score) {
    if (heap_.size() < k_) {
      heap_.push(Entry{score, set});
      return;
    }
    if (worse(heap_.top(), Entry{score, set})) {
      heap_.pop();
      heap_.push(Entry{score, set});
    }
  }

  /// True if a score would currently be admitted (pruning hint; ignores
  /// the lexicographic tail so it may over-admit on exact ties).
  [[nodiscard]] bool admits(ResilienceAnalyzer::Score score) const {
    return heap_.size() < k_ || !(score < heap_.top().score);
  }

  /// True once k entries are held, i.e. admits() has a real bar.
  [[nodiscard]] bool full() const { return heap_.size() >= k_; }

  /// Drain, best first.
  [[nodiscard]] std::vector<std::pair<std::vector<PerspectiveIndex>,
                                      ResilienceAnalyzer::Score>>
  sorted() {
    std::vector<std::pair<std::vector<PerspectiveIndex>,
                          ResilienceAnalyzer::Score>>
        out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.emplace_back(heap_.top().set, heap_.top().score);
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  struct Entry {
    ResilienceAnalyzer::Score score;
    std::vector<PerspectiveIndex> set;
    // min-heap: the WORST entry sits on top. a < b = "a is better".
    friend bool operator<(const Entry& a, const Entry& b) {
      return TopK::worse(b, a);
    }
  };

 public:
  /// Total order: is `a` strictly worse than `b`?
  static bool worse(const Entry& a, const Entry& b) {
    if (a.score < b.score) return true;
    if (b.score < a.score) return false;
    return b.set < a.set;  // larger lexicographic set loses ties
  }

 private:

  std::size_t k_;
  std::priority_queue<Entry> heap_;
};

mpic::DeploymentSpec make_spec(const OptimizerConfig& cfg,
                               std::vector<PerspectiveIndex> remotes,
                               std::optional<PerspectiveIndex> primary,
                               std::size_t rank) {
  mpic::DeploymentSpec spec;
  spec.name = cfg.name_prefix + "#" + std::to_string(rank);
  spec.remotes = std::move(remotes);
  spec.primary = primary;
  spec.policy = mpic::QuorumPolicy(cfg.set_size, cfg.max_failures,
                                   primary.has_value());
  spec.check();
  return spec;
}

}  // namespace

ResilienceAnalyzer::Workspace& DeploymentOptimizer::workspace() const {
  if (ws_.counts.empty()) ws_ = analyzer_.make_workspace();
  return ws_;
}

ResilienceAnalyzer::ScoreScratch& DeploymentOptimizer::scratch() const {
  if (scratch_.mask.empty()) scratch_ = analyzer_.make_scratch();
  return scratch_;
}

std::vector<RankedDeployment> DeploymentOptimizer::search_exhaustive(
    const OptimizerConfig& cfg) const {
  const auto& cands = cfg.candidates;
  const std::size_t k = cfg.set_size;
  const std::size_t required = k - cfg.max_failures;
  // Per-level kernel rule: sets up to the threshold go through the direct
  // packed kernel (score straight from `chosen`, no counters); deeper
  // levels need the incremental workspace, which is then maintained on
  // every tree edge. When the whole search fits the direct kernel the
  // workspace (and its O(pairs) add/remove per edge) disappears entirely.
  const std::size_t direct_max = cfg.direct_kernel_max_set;
  const bool maintain_counts = k > direct_max;

  // One worker explores all combinations whose FIRST element index is in
  // its share; the DFS below each first element is independent, so workers
  // need no synchronization beyond the final merge.
  const std::size_t hw = std::max<unsigned>(1, std::thread::hardware_concurrency());
  const std::size_t n_threads = std::min<std::size_t>(
      cfg.threads == 0 ? hw : cfg.threads, std::max<std::size_t>(1, cands.size()));

  std::vector<TopK> tops(n_threads, TopK(cfg.top_k));
  std::vector<SearchStats> stats(n_threads);
  std::atomic<std::size_t> next_first{0};

  const bool hw_counters =
      cfg.hw_counters && obs::PerfCounterGroup::probe();

  auto worker = [&](std::size_t t) {
    // Attach this worker thread to the sampling profiler (no-op when
    // null/unavailable) so search CPU attributes to the scoring kernels.
    obs::ProfiledThread profiled(cfg.profiler);
    // Per-thread perf group bracketing the whole work loop: two reads
    // per worker, zero cost inside the DFS itself.
    std::unique_ptr<obs::PerfCounterGroup> perf;
    obs::CounterSample perf_start;
    if (hw_counters) {
      perf = std::make_unique<obs::PerfCounterGroup>();
      if (perf->available()) {
        perf_start = perf->read();
      } else {
        perf.reset();
      }
    }
    // Allocated once per worker and reused across every stolen subtree.
    ResilienceAnalyzer::Workspace ws =
        maintain_counts ? analyzer_.make_workspace()
                        : ResilienceAnalyzer::Workspace{};
    ResilienceAnalyzer::ScoreScratch sc = analyzer_.make_scratch();
    std::vector<PerspectiveIndex> chosen;
    chosen.reserve(k);
    std::array<std::size_t, 5> rir_counts{};
    TopK& top = tops[t];
    SearchStats& st = stats[t];

    const auto node_score = [&]() {
      if (chosen.size() <= direct_max) {
        return analyzer_.score_set(chosen, required, std::nullopt, sc);
      }
      return analyzer_.score(ws, required, std::nullopt);
    };

    auto dfs = [&](auto&& self, std::size_t next) -> void {
      if (chosen.size() == k) {
        ++st.complete_sets_scored;
        top.offer(chosen, node_score());
        return;
      }
      // Upper-bound prune: per-pair hijack counts only grow as
      // perspectives are added, so (with the final quorum fixed) every
      // per-victim resilience — hence the median and the average — is
      // non-increasing along a DFS path. The partial set's score therefore
      // bounds every completion from above; if it cannot enter the top-k,
      // nothing below it can. admits() over-admits on exact score ties,
      // which only costs work, never drops a valid result.
      if (top.full() && !top.admits(node_score())) {
        ++st.subtrees_pruned;
        return;
      }
      const std::size_t remaining = k - chosen.size();
      for (std::size_t i = next; i + remaining <= cands.size(); ++i) {
        std::size_t rir = 0;
        if (cfg.max_per_rir > 0) {
          rir = static_cast<std::size_t>(cfg.rir_of.at(cands[i]));
          if (rir_counts[rir] >= cfg.max_per_rir) continue;
          ++rir_counts[rir];
        }
        chosen.push_back(cands[i]);
        if (maintain_counts) analyzer_.add_perspective(ws, cands[i]);
        self(self, i + 1);
        if (maintain_counts) analyzer_.remove_perspective(ws, cands[i]);
        chosen.pop_back();
        if (cfg.max_per_rir > 0) --rir_counts[rir];
      }
    };

    // Dynamic work stealing over first elements: early indices carry far
    // more combinations than late ones.
    while (true) {
      const std::size_t first = next_first.fetch_add(1);
      if (first >= cands.size() || first + k > cands.size()) break;
      std::size_t rir = 0;
      if (cfg.max_per_rir > 0) {
        rir = static_cast<std::size_t>(cfg.rir_of.at(cands[first]));
        ++rir_counts[rir];
      }
      chosen.push_back(cands[first]);
      if (maintain_counts) analyzer_.add_perspective(ws, cands[first]);
      dfs(dfs, first + 1);
      if (maintain_counts) analyzer_.remove_perspective(ws, cands[first]);
      chosen.pop_back();
      if (cfg.max_per_rir > 0) --rir_counts[rir];
      // The balanced add/remove walk above must leave no residue; a
      // corrupted workspace would silently skew every later subtree.
      assert(!maintain_counts || ResilienceAnalyzer::is_zero(ws));
    }
    if (perf != nullptr) st.counters = perf->read() - perf_start;
  };

  if (n_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (auto& th : pool) th.join();
  }

  SearchStats totals;
  for (const SearchStats& st : stats) {
    totals.complete_sets_scored += st.complete_sets_scored;
    totals.subtrees_pruned += st.subtrees_pruned;
    totals.counters += st.counters;
  }
  if (cfg.stats != nullptr) {
    cfg.stats->complete_sets_scored += totals.complete_sets_scored;
    cfg.stats->subtrees_pruned += totals.subtrees_pruned;
    cfg.stats->counters += totals.counters;
  }
  if (cfg.metrics != nullptr) {
    cfg.metrics->counter("optimizer.exhaustive_searches").add(1);
    cfg.metrics->counter("optimizer.complete_sets_scored")
        .add(totals.complete_sets_scored);
    cfg.metrics->counter("optimizer.subtrees_pruned")
        .add(totals.subtrees_pruned);
    if (totals.counters.valid) {
      // Interned only when a group actually counted, so uninstrumented
      // and counter-less runs keep a byte-identical metrics section.
      cfg.metrics->counter("optimizer.instructions")
          .add(totals.counters.instructions);
      cfg.metrics->counter("optimizer.cycles").add(totals.counters.cycles);
      cfg.metrics->counter("optimizer.cache_references")
          .add(totals.counters.cache_references);
      cfg.metrics->counter("optimizer.cache_misses")
          .add(totals.counters.cache_misses);
      cfg.metrics->counter("optimizer.branch_misses")
          .add(totals.counters.branch_misses);
    }
  }

  // Deterministic merge: every candidate set appears in exactly one
  // thread's TopK, so pooling + one global TopK yields the same result as
  // a single-threaded run.
  TopK merged(cfg.top_k);
  for (auto& top : tops) {
    for (auto& [set, score] : top.sorted()) {
      merged.offer(set, score);
    }
  }

  std::vector<RankedDeployment> out;
  std::size_t rank = 0;
  for (auto& [set, score] : merged.sorted()) {
    out.push_back(
        RankedDeployment{make_spec(cfg, set, std::nullopt, rank++), score});
  }
  return out;
}

std::vector<RankedDeployment> DeploymentOptimizer::search_beam(
    const OptimizerConfig& cfg) const {
  struct State {
    std::vector<PerspectiveIndex> set;
    ResilienceAnalyzer::Score score;
  };
  std::vector<State> beam{State{{}, {}}};
  ResilienceAnalyzer::ScoreScratch& sc = scratch();
  std::uint64_t states_scored = 0;

  for (std::size_t depth = 1; depth <= cfg.set_size; ++depth) {
    // Partial sets are scored with the final quorum scaled down
    // proportionally (ceil), so early picks already reflect the ratio of
    // required successes — scoring with an absolute `depth - Y` would make
    // small partial sets nearly unconstrained and reward redundancy.
    const std::size_t final_required = cfg.set_size - cfg.max_failures;
    const std::size_t partial_required = std::max<std::size_t>(
        1, (depth * final_required + cfg.set_size - 1) / cfg.set_size);
    std::vector<State> next;
    std::set<std::vector<PerspectiveIndex>> seen;
    for (const State& state : beam) {
      for (const PerspectiveIndex c : cfg.candidates) {
        if (std::find(state.set.begin(), state.set.end(), c) !=
            state.set.end()) {
          continue;
        }
        if (cfg.max_per_rir > 0) {
          std::size_t same = 1;
          for (const PerspectiveIndex p : state.set) {
            if (cfg.rir_of.at(p) == cfg.rir_of.at(c)) ++same;
          }
          if (same > cfg.max_per_rir) continue;
        }
        std::vector<PerspectiveIndex> set = state.set;
        set.push_back(c);
        std::sort(set.begin(), set.end());
        if (!seen.insert(set).second) continue;

        ++states_scored;
        const auto score =
            analyzer_.score_set(set, partial_required, std::nullopt, sc);
        next.push_back(State{std::move(set), score});
      }
    }
    const std::size_t keep = std::min(cfg.beam_width, next.size());
    std::partial_sort(next.begin(), next.begin() + static_cast<std::ptrdiff_t>(keep),
                      next.end(), [](const State& a, const State& b) {
                        return b.score < a.score;
                      });
    next.resize(keep);
    beam = std::move(next);
    if (beam.empty()) break;
  }

  // Re-score survivors with the exact final quorum, then refine the best
  // few by hill climbing over single-perspective swaps.
  const std::size_t final_required = cfg.set_size - cfg.max_failures;
  struct Final {
    std::vector<PerspectiveIndex> set;
    ResilienceAnalyzer::Score score;
  };
  std::vector<Final> finals;
  for (const State& state : beam) {
    if (state.set.size() != cfg.set_size) continue;
    finals.push_back(Final{
        state.set,
        analyzer_.score_set(state.set, final_required, std::nullopt, sc)});
  }
  std::sort(finals.begin(), finals.end(),
            [](const Final& a, const Final& b) { return b.score < a.score; });

  // The swap refinement walks the incremental workspace; one hoisted
  // workspace serves every refined survivor — each climb is entered by
  // adding the set's perspectives and exited by removing them, so the
  // counts return to zero between seeds instead of being reallocated.
  const std::size_t refine = std::min(cfg.refine_top, finals.size());
  ResilienceAnalyzer::Workspace& ws = workspace();
  for (std::size_t f = 0; f < refine; ++f) {
    auto& current = finals[f];
    for (const PerspectiveIndex p : current.set) {
      analyzer_.add_perspective(ws, p);
    }
    climb(current.set, current.score, ws, cfg, final_required);
    for (const PerspectiveIndex p : current.set) {
      analyzer_.remove_perspective(ws, p);
    }
    assert(ResilienceAnalyzer::is_zero(ws));
    std::sort(current.set.begin(), current.set.end());
  }
  std::sort(finals.begin(), finals.end(),
            [](const Final& a, const Final& b) { return b.score < a.score; });

  std::vector<RankedDeployment> out;
  std::set<std::vector<PerspectiveIndex>> emitted;
  std::size_t rank = 0;
  for (const Final& final : finals) {
    if (!emitted.insert(final.set).second) continue;
    out.push_back(RankedDeployment{
        make_spec(cfg, final.set, std::nullopt, rank++), final.score});
    if (out.size() >= cfg.top_k) break;
  }
  if (cfg.metrics != nullptr) {
    cfg.metrics->counter("optimizer.beam_searches").add(1);
    cfg.metrics->counter("optimizer.beam_states_scored").add(states_scored);
  }
  return out;
}

void DeploymentOptimizer::climb(std::vector<PerspectiveIndex>& set,
                                ResilienceAnalyzer::Score& score,
                                ResilienceAnalyzer::Workspace& ws,
                                const OptimizerConfig& cfg,
                                std::size_t required) const {
  std::uint64_t swaps_tried = 0;
  std::uint64_t swaps_kept = 0;
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t m = 0; m < set.size() && !improved; ++m) {
      const PerspectiveIndex out_p = set[m];
      analyzer_.remove_perspective(ws, out_p);
      for (const PerspectiveIndex c : cfg.candidates) {
        if (std::find(set.begin(), set.end(), c) != set.end()) continue;
        if (cfg.max_per_rir > 0) {
          std::size_t same = 1;
          for (const PerspectiveIndex p : set) {
            if (p != out_p && cfg.rir_of.at(p) == cfg.rir_of.at(c)) ++same;
          }
          if (same > cfg.max_per_rir) continue;
        }
        analyzer_.add_perspective(ws, c);
        ++swaps_tried;
        const auto candidate_score = analyzer_.score(ws, required,
                                                     std::nullopt);
        if (score < candidate_score) {
          set[m] = c;
          score = candidate_score;
          improved = true;
          ++swaps_kept;
          break;
        }
        analyzer_.remove_perspective(ws, c);
      }
      if (!improved) analyzer_.add_perspective(ws, out_p);
    }
  }
  if (cfg.metrics != nullptr) {
    cfg.metrics->counter("optimizer.climb_swaps_tried").add(swaps_tried);
    cfg.metrics->counter("optimizer.climb_swaps_kept").add(swaps_kept);
  }
}

RankedDeployment DeploymentOptimizer::hill_climb(
    std::vector<PerspectiveIndex> seed, const OptimizerConfig& cfg) const {
  if (seed.size() != cfg.set_size) {
    throw std::invalid_argument("seed size != config set_size");
  }
  ResilienceAnalyzer::Workspace& ws = workspace();
  for (const PerspectiveIndex p : seed) analyzer_.add_perspective(ws, p);
  const std::size_t required = cfg.set_size - cfg.max_failures;
  ResilienceAnalyzer::Score score =
      analyzer_.score(ws, required, std::nullopt);
  climb(seed, score, ws, cfg, required);
  for (const PerspectiveIndex p : seed) analyzer_.remove_perspective(ws, p);
  assert(ResilienceAnalyzer::is_zero(ws));
  std::sort(seed.begin(), seed.end());
  return RankedDeployment{make_spec(cfg, std::move(seed), std::nullopt, 0),
                          score};
}

std::vector<RankedDeployment> DeploymentOptimizer::search_remotes(
    const OptimizerConfig& cfg) const {
  if (cfg.set_size == 0 || cfg.set_size > cfg.candidates.size()) {
    throw std::invalid_argument("set_size out of range");
  }
  if (cfg.max_failures >= cfg.set_size) {
    throw std::invalid_argument("quorum would allow all remotes to fail");
  }
  return cfg.strategy == SearchStrategy::Exhaustive ? search_exhaustive(cfg)
                                                    : search_beam(cfg);
}

std::vector<RankedDeployment> DeploymentOptimizer::attach_primaries(
    const OptimizerConfig& cfg,
    std::vector<RankedDeployment> remote_sets) const {
  const auto& primaries = cfg.primary_candidates.empty()
                              ? cfg.candidates
                              : cfg.primary_candidates;
  if (remote_sets.size() > cfg.primary_pool) {
    remote_sets.resize(cfg.primary_pool);
  }
  TopK top(cfg.top_k);
  ResilienceAnalyzer::ScoreScratch& sc = scratch();
  const std::size_t required = cfg.set_size - cfg.max_failures;

  for (const RankedDeployment& rd : remote_sets) {
    // One success mask per remote set; each primary only ANDs its own row
    // into the mask, so trying every primary is popcount-cheap.
    analyzer_.build_success_mask(rd.spec.remotes, required, sc);
    for (const PerspectiveIndex primary : primaries) {
      if (std::find(rd.spec.remotes.begin(), rd.spec.remotes.end(), primary) !=
          rd.spec.remotes.end()) {
        continue;
      }
      // Encode (remotes, primary) as remotes + trailing primary; decoded
      // below when building specs.
      std::vector<PerspectiveIndex> encoded = rd.spec.remotes;
      encoded.push_back(primary);
      top.offer(encoded, analyzer_.score_from_mask(sc, primary));
    }
  }

  std::vector<RankedDeployment> out;
  std::size_t rank = 0;
  for (auto& [encoded, score] : top.sorted()) {
    std::vector<PerspectiveIndex> remotes(encoded.begin(),
                                          encoded.end() - 1);
    out.push_back(RankedDeployment{
        make_spec(cfg, std::move(remotes), encoded.back(), rank++), score});
  }
  return out;
}

std::vector<RankedDeployment> DeploymentOptimizer::optimize(
    const OptimizerConfig& cfg) const {
  if (!cfg.with_primary) return search_remotes(cfg);
  // Make sure the remote-set pool feeding primary selection is large enough.
  OptimizerConfig pool_cfg = cfg;
  pool_cfg.top_k = std::max(cfg.top_k, cfg.primary_pool);
  return attach_primaries(cfg, search_remotes(pool_cfg));
}

RankedDeployment DeploymentOptimizer::best(const OptimizerConfig& cfg) const {
  auto all = optimize(cfg);
  if (all.empty()) throw std::runtime_error("optimizer found no deployment");
  return std::move(all.front());
}

}  // namespace marcopolo::analysis
