// Byte-per-pair scalar reference implementation of the Appendix A kernels.
//
// This is the seed implementation the packed OutcomeMatrix kernels are
// verified against: one std::uint8_t per (perspective, pair) cell, a
// uint16 per-pair count workspace, and the straightforward per-victim
// loops. It is deliberately kept OUT of the production analysis path —
// its only callers are the differential property tests and the
// packed-vs-scalar benchmark series. Every result here must stay
// bit-identical to ResilienceAnalyzer; if the two ever disagree, the
// packed kernel is wrong.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "analysis/resilience.hpp"
#include "marcopolo/result_store.hpp"

namespace marcopolo::analysis {

class ScalarReference {
 public:
  explicit ScalarReference(const core::ResultStore& store)
      : num_sites_(store.num_sites()),
        num_perspectives_(store.num_perspectives()),
        bytes_(store.num_pairs() * store.num_perspectives(), 0) {
    for (std::size_t p = 0; p < num_perspectives_; ++p) {
      for (std::size_t v = 0; v < num_sites_; ++v) {
        for (std::size_t a = 0; a < num_sites_; ++a) {
          const bool hit = store.hijacked(static_cast<core::SiteIndex>(v),
                                          static_cast<core::SiteIndex>(a),
                                          static_cast<core::PerspectiveIndex>(p));
          bytes_[p * store.num_pairs() + v * num_sites_ + a] = hit ? 1 : 0;
        }
      }
    }
  }

  [[nodiscard]] std::size_t num_sites() const { return num_sites_; }
  [[nodiscard]] std::size_t num_pairs() const {
    return num_sites_ * num_sites_;
  }

  [[nodiscard]] const std::uint8_t* hijack_bytes(
      core::PerspectiveIndex p) const {
    return bytes_.data() + static_cast<std::size_t>(p) * num_pairs();
  }

  [[nodiscard]] std::vector<std::uint16_t> make_counts() const {
    return std::vector<std::uint16_t>(num_pairs(), 0);
  }

  void add(std::vector<std::uint16_t>& counts, core::PerspectiveIndex p) const {
    const std::uint8_t* bytes = hijack_bytes(p);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] = static_cast<std::uint16_t>(counts[i] + bytes[i]);
    }
  }

  void remove(std::vector<std::uint16_t>& counts,
              core::PerspectiveIndex p) const {
    const std::uint8_t* bytes = hijack_bytes(p);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] = static_cast<std::uint16_t>(counts[i] - bytes[i]);
    }
  }

  /// The seed's scoring loop, verbatim: per-pair count-vs-threshold with
  /// the optional primary-hijacked conjunct, accumulated in victim order.
  [[nodiscard]] ResilienceAnalyzer::Score score(
      const std::vector<std::uint16_t>& counts, std::size_t required,
      std::optional<core::PerspectiveIndex> primary) const {
    const std::size_t n = num_sites_;
    const std::uint8_t* primary_bytes = primary ? hijack_bytes(*primary)
                                                : nullptr;
    std::vector<double> per_victim(n);
    double sum = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      std::size_t defended = 0;
      const std::size_t row = v * n;
      for (std::size_t a = 0; a < n; ++a) {
        if (a == v) continue;
        const bool attack_ok =
            counts[row + a] >= required &&
            (primary_bytes == nullptr || primary_bytes[row + a] != 0);
        if (!attack_ok) ++defended;
      }
      per_victim[v] =
          static_cast<double>(defended) / static_cast<double>(n - 1);
      sum += per_victim[v];
    }
    ResilienceAnalyzer::Score s;
    s.average = sum / static_cast<double>(n);
    s.median = median_of(std::move(per_victim));
    return s;
  }

  /// R_victim vector for a set, built through the same count workspace.
  [[nodiscard]] std::vector<double> per_victim(
      std::span<const core::PerspectiveIndex> set, std::size_t required,
      std::optional<core::PerspectiveIndex> primary) const {
    std::vector<std::uint16_t> counts = make_counts();
    for (const core::PerspectiveIndex p : set) add(counts, p);
    const std::size_t n = num_sites_;
    const std::uint8_t* primary_bytes = primary ? hijack_bytes(*primary)
                                                : nullptr;
    std::vector<double> out(n, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      std::size_t defended = 0;
      for (std::size_t a = 0; a < n; ++a) {
        if (a == v) continue;
        const std::size_t idx = v * n + a;
        const bool attack_ok =
            counts[idx] >= required &&
            (primary_bytes == nullptr || primary_bytes[idx] != 0);
        if (!attack_ok) ++defended;
      }
      out[v] = static_cast<double>(defended) / static_cast<double>(n - 1);
    }
    return out;
  }

 private:
  std::size_t num_sites_ = 0;
  std::size_t num_perspectives_ = 0;
  std::vector<std::uint8_t> bytes_;  // [perspective][pair], 0/1
};

struct ScalarSearchBest {
  ResilienceAnalyzer::Score score{-1.0, -1.0};
  std::vector<core::PerspectiveIndex> set;
};

/// Mirror of DeploymentOptimizer::search_exhaustive at top_k = 1 on the
/// seed's byte-per-pair data path: incremental counts maintained on every
/// DFS edge, the same partial-set upper-bound prune against the incumbent,
/// the same score-then-lexicographic tie break. Same algorithm, same
/// traversal order — benchmarking it against the packed optimizer isolates
/// the kernel speedup, and its result must match the packed search
/// exactly.
[[nodiscard]] inline ScalarSearchBest scalar_exhaustive_best(
    const ScalarReference& scalar,
    std::span<const core::PerspectiveIndex> cands, std::size_t k,
    std::size_t required) {
  ScalarSearchBest best;
  bool have_best = false;
  auto counts = scalar.make_counts();
  std::vector<core::PerspectiveIndex> chosen;
  chosen.reserve(k);
  auto dfs = [&](auto&& self, std::size_t next) -> void {
    const auto score = scalar.score(counts, required, std::nullopt);
    if (chosen.size() == k) {
      if (!have_best || best.score < score ||
          (score == best.score && chosen < best.set)) {
        best.score = score;
        best.set = chosen;
        have_best = true;
      }
      return;
    }
    if (have_best && score < best.score) return;  // upper-bound prune
    const std::size_t remaining = k - chosen.size();
    for (std::size_t i = next; i + remaining <= cands.size(); ++i) {
      chosen.push_back(cands[i]);
      scalar.add(counts, cands[i]);
      self(self, i + 1);
      scalar.remove(counts, cands[i]);
      chosen.pop_back();
    }
  };
  dfs(dfs, 0);
  return best;
}

}  // namespace marcopolo::analysis
