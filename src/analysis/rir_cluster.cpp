#include "analysis/rir_cluster.hpp"

#include <algorithm>

namespace marcopolo::analysis {

ClusterSignature cluster_signature(std::span<const PerspectiveIndex> remotes,
                                   std::span<const topo::Rir> rir_of) {
  ClusterSignature counts{};
  for (const PerspectiveIndex p : remotes) {
    ++counts[static_cast<std::size_t>(rir_of[p])];
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  return counts;
}

ClusterSignature cluster_signature(const mpic::DeploymentSpec& spec,
                                   std::span<const topo::Rir> rir_of) {
  return cluster_signature(std::span<const PerspectiveIndex>(spec.remotes),
                           rir_of);
}

std::string format_signature(const ClusterSignature& sig,
                             bool primary_separate) {
  std::string out = "(";
  bool primary_emitted = !primary_separate;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (i > 0) out += ",";
    // Splice the primary's own RIR ("1*") after the last nonzero remote
    // cluster, matching the paper's (3,3,1*,0,0) notation.
    if (!primary_emitted && sig[i] == 0) {
      out += "1*";
      primary_emitted = true;
      // Shift: remaining zeros minus the slot consumed.
      for (std::size_t j = i + 1; j < sig.size(); ++j) out += ",0";
      out += ")";
      return out;
    }
    out += std::to_string(sig[i]);
  }
  if (!primary_emitted) out += ",1*";
  out += ")";
  return out;
}

ClusterStats analyze_clusters(std::span<const RankedDeployment> deployments,
                              std::span<const topo::Rir> rir_of,
                              std::size_t max_failures) {
  ClusterStats stats;
  if (deployments.empty()) return stats;
  stats.analyzed = deployments.size();

  std::map<std::string, std::size_t> counts;
  std::size_t quorum_shape = 0;
  std::size_t primary_total = 0;
  std::size_t primary_separate = 0;

  for (const RankedDeployment& rd : deployments) {
    const ClusterSignature sig = cluster_signature(rd.spec, rir_of);

    bool separate = false;
    if (rd.spec.primary) {
      ++primary_total;
      std::array<std::size_t, 5> remote_counts{};
      for (const PerspectiveIndex p : rd.spec.remotes) {
        ++remote_counts[static_cast<std::size_t>(rir_of[p])];
      }
      separate =
          remote_counts[static_cast<std::size_t>(rir_of[*rd.spec.primary])] ==
          0;
      if (separate) ++primary_separate;
    }
    ++counts[format_signature(sig, separate)];

    // Paper hypothesis: clusters of exactly Y+1 perspectives.
    const std::uint8_t cluster_size =
        static_cast<std::uint8_t>(max_failures + 1);
    const bool shape_ok = std::all_of(
        sig.begin(), sig.end(), [&](std::uint8_t c) {
          return c == 0 || c == cluster_size;
        });
    if (shape_ok) ++quorum_shape;
  }

  for (const auto& [sig, count] : counts) {
    const double share =
        static_cast<double>(count) / static_cast<double>(stats.analyzed);
    stats.frequency[sig] = share;
    if (share > stats.top_share) {
      stats.top_share = share;
      stats.top_signature = sig;
    }
  }
  stats.quorum_cluster_share = static_cast<double>(quorum_shape) /
                               static_cast<double>(stats.analyzed);
  stats.primary_separate_share =
      primary_total == 0 ? 0.0
                         : static_cast<double>(primary_separate) /
                               static_cast<double>(primary_total);
  return stats;
}

}  // namespace marcopolo::analysis
