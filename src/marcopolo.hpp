// Umbrella header: the MarcoPolo public API in one include.
//
//   #include "marcopolo.hpp"
//
//   marcopolo::core::Testbed testbed{{}};
//   auto dataset = marcopolo::core::run_paper_campaigns(
//       testbed, marcopolo::bgp::TieBreakMode::Hashed, 0xCAFE);
//   marcopolo::analysis::ResilienceAnalyzer plain(dataset.no_rpki);
//   ...
//
// Individual module headers remain includable on their own; this header is
// a convenience for applications.
#pragma once

// Simulation substrate.
#include "netsim/dns.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/geo.hpp"
#include "netsim/http.hpp"
#include "netsim/ip.hpp"
#include "netsim/network.hpp"
#include "netsim/prefix_trie.hpp"
#include "netsim/random.hpp"
#include "netsim/time.hpp"

// BGP: analytic engine and event-driven session layer.
#include "bgp/as_graph.hpp"
#include "bgp/announcement.hpp"
#include "bgp/decision.hpp"
#include "bgp/propagation.hpp"
#include "bgp/rpki.hpp"
#include "bgp/scenario.hpp"
#include "bgpd/network.hpp"
#include "bgpd/speaker.hpp"

// Topology and cloud models.
#include "cloud/model.hpp"
#include "topo/internet.hpp"
#include "topo/region_catalog.hpp"
#include "topo/rir.hpp"
#include "topo/vultr.hpp"

// DCV and MPIC systems.
#include "dcv/challenge.hpp"
#include "dcv/dns_authority.hpp"
#include "dcv/token_store.hpp"
#include "dcv/validator.hpp"
#include "dcv/webserver.hpp"
#include "mpic/acme_ca.hpp"
#include "mpic/certbot_client.hpp"
#include "mpic/deployment.hpp"
#include "mpic/quorum.hpp"
#include "mpic/rest_service.hpp"

// The MarcoPolo core.
#include "marcopolo/attack_plane.hpp"
#include "marcopolo/fast_campaign.hpp"
#include "marcopolo/live_campaign.hpp"
#include "marcopolo/orchestrator.hpp"
#include "marcopolo/production_systems.hpp"
#include "marcopolo/result_store.hpp"
#include "marcopolo/testbed.hpp"

// Analysis.
#include "analysis/bootstrap.hpp"
#include "analysis/export.hpp"
#include "analysis/optimizer.hpp"
#include "analysis/report.hpp"
#include "analysis/resilience.hpp"
#include "analysis/rir_cluster.hpp"
#include "analysis/rpki_model.hpp"
#include "analysis/weighted.hpp"

// Cost model.
#include "cost/model.hpp"
