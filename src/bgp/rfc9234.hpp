// RFC 9234 route-leak prevention: the Only-To-Customer attribute rules.
//
// RFC 9234 detects valley violations (a route learned from a provider or
// peer re-exported provider- or peer-ward) by stamping routes with an OTC
// attribute the moment they start traveling customer-ward. Both engines —
// the full three-phase propagation and the incremental delta replay —
// funnel every inter-AS delivery through the two functions below so the
// semantics cannot drift apart:
//
//   egress (sender side, §5 rules 1-2):
//     - advertising to a customer: if OTC is unset, set it to the sender's
//       ASN (the route is now below the "ridge line");
//     - advertising to a peer: same marking, but a route that already
//       carries OTC must not be sent at all;
//     - advertising to a provider: a route carrying OTC must not be sent.
//
//   ingress (receiver side, §5 rules 3-5):
//     - received from a customer with OTC set: route leak, drop;
//     - received from a peer with OTC set to anything but that peer's own
//       ASN: route leak, drop;
//     - received from a provider or peer with OTC unset: set it to the
//       sender's ASN (so a later leak of this route is detectable even if
//       no AS on the rest of the down-path enforces).
//
// Every rule is gated on the acting AS's own enforcement flag
// (AsGraph::otc_enforcing): a non-enforcing AS neither marks nor drops,
// it just carries the attribute verbatim. The adversary of a RouteLeak
// attack is modeled as attribute-preserving (a misconfigured router leaks
// the route, OTC and all); an attacker that strips the optional transitive
// attribute defeats OTC the same way a forged-origin prepend defeats ROV.
//
// The relationship is expressed as the RouteSource the *receiver* assigns
// the route — Customer means the receiver learned it from its customer,
// i.e. the sender advertised provider-ward — so both engines can pass the
// value they already have in hand.
#pragma once

#include <optional>

#include "bgp/decision.hpp"

namespace marcopolo::bgp {

/// Sender-side OTC transform for one advertisement. Returns the attribute
/// value as sent, or nullopt when an enforcing sender must not advertise
/// the route across this edge at all (RFC 9234 §5 rule 2).
[[nodiscard]] constexpr std::optional<Asn> otc_egress(
    Asn otc, Asn sender_asn, bool sender_enforcing,
    RouteSource source_at_receiver) {
  if (!sender_enforcing) return otc;
  switch (source_at_receiver) {
    case RouteSource::Customer:  // sender -> its provider
      if (otc.value != 0) return std::nullopt;
      return otc;
    case RouteSource::Peer:  // sender -> its peer
      if (otc.value != 0) return std::nullopt;
      return sender_asn;
    case RouteSource::Provider:  // sender -> its customer
      return otc.value != 0 ? otc : sender_asn;
    case RouteSource::Self:
      break;  // seeds are not advertisements
  }
  return otc;
}

/// Receiver-side OTC check and marking for one delivery. Returns the
/// attribute value to store in the Adj-RIB-In, or nullopt when an
/// enforcing receiver must treat the route as a leak and drop it
/// (RFC 9234 §5 rules 3-4).
[[nodiscard]] constexpr std::optional<Asn> otc_ingress(
    Asn otc_as_sent, Asn sender_asn, bool receiver_enforcing,
    RouteSource source_at_receiver) {
  if (!receiver_enforcing) return otc_as_sent;
  switch (source_at_receiver) {
    case RouteSource::Customer:
      if (otc_as_sent.value != 0) return std::nullopt;
      return otc_as_sent;
    case RouteSource::Peer:
      if (otc_as_sent.value != 0 && otc_as_sent != sender_asn) {
        return std::nullopt;
      }
      return otc_as_sent.value != 0 ? otc_as_sent : sender_asn;
    case RouteSource::Provider:
      return otc_as_sent.value != 0 ? otc_as_sent : sender_asn;
    case RouteSource::Self:
      break;  // seeds bypass delivery filters
  }
  return otc_as_sent;
}

}  // namespace marcopolo::bgp
