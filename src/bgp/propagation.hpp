// Gao-Rexford route propagation over an AsGraph.
//
// Computes, for one prefix announced by one or more origins, the converged
// best route at every AS under valley-free export policy:
//   - routes learned from customers are exported to everyone;
//   - routes learned from peers or providers are exported only to customers.
//
// The engine runs the standard three ranked phases (up / peer / down) which
// yields the unique policy-routing fixed point for these preferences. The
// full Adj-RIB-In of every node is retained so the cloud routing models can
// re-run per-perspective egress selection (hot/cold potato) over all
// candidate routes a backbone AS heard.
#pragma once

#include <optional>
#include <vector>

#include "bgp/as_graph.hpp"
#include "bgp/decision.hpp"
#include "bgp/rpki.hpp"

namespace marcopolo::bgp {

struct PropagationConfig {
  TieBreakMode tie_break = TieBreakMode::VictimFirst;
  std::uint64_t tie_break_seed = 0;
  /// ROAs used by ROV-enforcing ASes to drop Invalid announcements.
  /// May be null (no RPKI filtering anywhere).
  const RoaRegistry* roas = nullptr;
};

struct PropagationResult {
  /// Best route per node (indexed by NodeId), nullopt if unreachable.
  std::vector<std::optional<RouteCandidate>> best;
  /// Every candidate each node received (Adj-RIB-In), indexed by NodeId.
  std::vector<std::vector<RouteCandidate>> rib_in;

  [[nodiscard]] bool reachable(NodeId n) const {
    return best[n.value].has_value();
  }
  /// Role of the origin this node routes toward, if any.
  [[nodiscard]] std::optional<OriginRole> role_reached(NodeId n) const {
    if (!best[n.value]) return std::nullopt;
    return best[n.value]->ann.role;
  }
};

/// Propagate the seeded routes (all must share one prefix) and return the
/// converged state. Throws std::invalid_argument if seeds disagree on the
/// prefix or a seed's node is invalid.
[[nodiscard]] PropagationResult propagate(const AsGraph& graph,
                                          const std::vector<SeededRoute>& seeds,
                                          const PropagationConfig& config);

}  // namespace marcopolo::bgp
