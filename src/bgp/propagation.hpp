// Gao-Rexford route propagation over an AsGraph.
//
// Computes, for one prefix announced by one or more origins, the converged
// best route at every AS under valley-free export policy:
//   - routes learned from customers are exported to everyone;
//   - routes learned from peers or providers are exported only to customers.
//
// The engine runs the standard three ranked phases (up / peer / down) which
// yields the unique policy-routing fixed point for these preferences. The
// full Adj-RIB-In of every node is retained so the cloud routing models can
// re-run per-perspective egress selection (hot/cold potato) over all
// candidate routes a backbone AS heard.
//
// Hot path: the customer-rank processing order is cached inside AsGraph
// (AsGraph::rank_order()), and callers that run many propagations over one
// graph should reuse a PropagationWorkspace + PropagationResult via
// propagate_into() so the per-node vector-of-vectors is allocated once and
// recycled, not rebuilt per scenario.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "bgp/as_graph.hpp"
#include "bgp/decision.hpp"
#include "bgp/rpki.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace marcopolo::bgp {

/// Pre-interned handles for the engine's per-run metrics flush. Campaigns
/// running thousands of propagations intern the names once (create()) and
/// hand the same struct to every run, so a flush is a handful of sharded
/// counter adds — no name lookups, no allocation. A default-constructed
/// instance holds null handles and drops everything.
struct PropagationMetrics {
  obs::Counter runs;
  obs::Counter delivered;
  obs::Counter loop_dropped;
  obs::Counter rov_dropped;
  obs::Counter otc_dropped;
  obs::Counter rank_reuse;
  obs::Counter rib_reuse;
  std::array<obs::Counter, kDecisionStepCount> decided;

  /// Intern all handles in `reg` (null handles for a null registry).
  [[nodiscard]] static PropagationMetrics create(obs::MetricsRegistry* reg);
};

struct PropagationConfig {
  TieBreakMode tie_break = TieBreakMode::VictimFirst;
  std::uint64_t tie_break_seed = 0;
  /// ROAs used by ROV-enforcing ASes to drop Invalid announcements.
  /// May be null (no RPKI filtering anywhere).
  const RoaRegistry* roas = nullptr;
  /// Optional metrics sink (announcements delivered/dropped, decision
  /// steps by kind, workspace reuse). The engine accumulates plain local
  /// counts and flushes once per run through these pre-interned handles,
  /// so instrumentation adds nothing to the per-candidate hot path; null
  /// disables the flush entirely.
  const PropagationMetrics* metrics = nullptr;
  /// Optional flight-recorder lane of the calling worker thread. When set,
  /// the engine appends one PropagationRunRecord (wall-clock span + the
  /// same local counts the metrics flush sums) per run; null reads no
  /// clock and records nothing.
  obs::FlightBuffer* flight = nullptr;
};

struct PropagationResult {
  /// Best route per node (indexed by NodeId), nullopt if unreachable.
  std::vector<std::optional<RouteCandidate>> best;
  /// Every candidate each node received (Adj-RIB-In), indexed by NodeId.
  std::vector<std::vector<RouteCandidate>> rib_in;

  [[nodiscard]] bool reachable(NodeId n) const {
    return best[n.value].has_value();
  }
  /// Role of the origin this node routes toward, if any.
  [[nodiscard]] std::optional<OriginRole> role_reached(NodeId n) const {
    if (!best[n.value]) return std::nullopt;
    return best[n.value]->ann.role;
  }
};

/// Reusable scratch for repeated propagations. Owning one per worker thread
/// (never shared concurrently) keeps the phase-2 export staging buffer and
/// the rank snapshot off the per-scenario allocation path.
struct PropagationWorkspace {
  struct PeerExport {
    NodeId from;
    const Neighbor* to;
    RouteCandidate route;
  };
  /// Phase-2 staging: exports computed against the phase-1 state before any
  /// delivery (valley-free peer exchange). Cleared per run, capacity kept.
  std::vector<PeerExport> peer_exports;
  /// Seed staging for callers that rebuild seed lists per scenario.
  std::vector<SeededRoute> seeds;
  /// Rank snapshot for the graph last propagated; refreshed per run from
  /// AsGraph's shared cache (a shared_ptr copy, not a recompute).
  std::shared_ptr<const AsGraph::RankOrder> ranks;
};

/// Propagate the seeded routes (all must share one prefix) into `out`,
/// reusing both the workspace's scratch buffers and `out`'s existing
/// vectors (inner rib vectors are cleared, not reallocated). Throws
/// std::invalid_argument if seeds disagree on the prefix or a seed's node
/// is invalid.
void propagate_into(const AsGraph& graph, const std::vector<SeededRoute>& seeds,
                    const PropagationConfig& config, PropagationWorkspace& ws,
                    PropagationResult& out);

/// Convenience wrapper: one-shot propagation with a private workspace.
[[nodiscard]] PropagationResult propagate(const AsGraph& graph,
                                          const std::vector<SeededRoute>& seeds,
                                          const PropagationConfig& config);

}  // namespace marcopolo::bgp
